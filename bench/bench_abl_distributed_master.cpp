// Ablation: distributing the KVS master (the paper's stated future work,
// §VII: "We plan to address [KVS scalability] by distributing the KVS
// master itself").
//
// Emulation (documented in DESIGN.md): k masters are modelled as k
// independent comms sessions sharing one simulated clock, each owning 1/k of
// the producers and its own keyspace shard. The reported latency is the max
// across shards — what a client of a sharded KVS would observe for a
// whole-job fence. This isolates exactly the effect §VII targets: the single
// master's inbound link / apply serialization.
#include <algorithm>
#include <cstdio>
#include <vector>

#include "api/handle.hpp"
#include "base/rng.hpp"
#include "bench_util.hpp"
#include "broker/session.hpp"
#include "kvs/kvs_client.hpp"

using namespace flux;
using namespace flux::bench;

namespace {

/// Fence latency for `producers` clients spread over one session.
Duration sharded_fence(std::uint32_t nnodes, std::uint32_t producers,
                       std::uint32_t shards, std::size_t vsize) {
  SimExecutor ex;
  std::vector<std::unique_ptr<Session>> sessions;
  std::vector<std::unique_ptr<Handle>> handles;
  std::vector<TimePoint> done_at(shards, TimePoint{0});

  const std::uint32_t nodes_per_shard = nnodes / shards;
  const std::uint32_t procs_per_shard = producers / shards;
  for (std::uint32_t s = 0; s < shards; ++s) {
    SessionConfig cfg;
    cfg.size = nodes_per_shard;
    cfg.modules = {"hb", "barrier", "kvs"};
    cfg.module_config =
        Json::object({{"hb", Json::object({{"period_us", 100000}})}});
    sessions.push_back(Session::create_sim(ex, cfg));
  }
  while (true) {
    bool all = true;
    for (auto& s : sessions) all &= s->all_online();
    if (all) break;
    if (!ex.run_one()) std::abort();
  }

  std::vector<std::uint32_t> remaining(shards, procs_per_shard);
  for (std::uint32_t s = 0; s < shards; ++s) {
    for (std::uint32_t p = 0; p < procs_per_shard; ++p) {
      handles.push_back(sessions[s]->attach(p % nodes_per_shard));
      co_spawn(
          ex,
          [](Handle* h, std::uint32_t shard, std::uint32_t proc,
             std::uint32_t nprocs, std::size_t vs,
             std::vector<std::uint32_t>* rem,
             std::vector<TimePoint>* done) -> Task<void> {
            KvsClient kvs(*h);
            Rng rng((shard << 20) ^ proc);
            co_await kvs.put("shard.k" + std::to_string(proc), rng.bytes(vs));
            co_await kvs.fence("abl", nprocs);
            if (--(*rem)[shard] == 0)
              (*done)[shard] = h->executor().now();
          }(handles.back().get(), s, p, procs_per_shard, vsize, &remaining,
            &done_at),
          "producer");
    }
  }
  const TimePoint t0 = ex.now();
  ex.run();
  TimePoint worst{0};
  for (TimePoint t : done_at) worst = std::max(worst, t);
  return worst - t0;
}

}  // namespace

int main() {
  print_header(
      "Ablation — distributed KVS master (paper §VII future work)",
      "Ahn et al., ICPP'14, §VII (\"distributing the KVS master itself\")",
      "fence latency drops toward 1/k with k masters: the single master's "
      "serialization is the bottleneck the paper identified");

  const std::uint32_t nnodes = quick_mode() ? 64 : 256;
  const std::uint32_t producers = nnodes * procs_per_node();
  const std::size_t vsize = 4096;
  std::printf("workload: %u producers, %zu-byte unique values, one fence\n\n",
              producers, vsize);
  std::printf("%8s %16s %10s\n", "masters", "fence max (ms)", "speedup");
  double base = 0;
  for (std::uint32_t shards : {1u, 2u, 4u, 8u}) {
    const Duration d = sharded_fence(nnodes, producers, shards, vsize);
    if (shards == 1) base = ms(d);
    std::printf("%8u %16.3f %9.2fx\n", shards, ms(d), base / ms(d));
  }
  std::printf("\n(emulated: k masters = k independent shard sessions on one "
              "simulated clock; see DESIGN.md substitutions)\n");
  return 0;
}
