// Ablation: sharded KVS masters (the paper's stated future work, §VII:
// "We plan to address [KVS scalability] by distributing the KVS master
// itself").
//
// This drives the REAL subsystem, not an emulation: ONE session whose kvs
// module runs with {"shards": k}. The namespace is hash-partitioned over k
// master brokers (rendezvous hashing on the top-level directory); every
// producer writes a unique value under its own top-level directory and joins
// one whole-job fence, which completes via the root's ShardCoordinator
// fusing the per-shard version vector into a single event. With k=1 the wire
// format and latencies are byte-for-byte the classic single-master path, so
// the k=1 row is the true baseline.
//
// The interesting output is the crossover: at small producer counts the
// cross-shard fence's extra coordination (every participant counts in at
// every shard, k setroot events, one fuse) costs more than the single
// master's apply; as producers grow, splitting the master's inbound link and
// apply serialization k ways wins.
#include <cstdio>
#include <memory>
#include <vector>

#include "api/handle.hpp"
#include "base/rng.hpp"
#include "bench_util.hpp"
#include "broker/session.hpp"
#include "kvs/kvs_client.hpp"

using namespace flux;
using namespace flux::bench;

namespace {

/// Latency of one whole-job fence with `producers` writers spread over a
/// single `nnodes` session running `shards` KVS masters.
Duration sharded_fence(std::uint32_t nnodes, std::uint32_t producers,
                       std::uint32_t shards, std::size_t vsize) {
  SimExecutor ex;
  SessionConfig cfg;
  cfg.size = nnodes;
  cfg.modules = {"hb", "barrier", "kvs"};
  cfg.module_config = Json::object(
      {{"hb", Json::object({{"period_us", 100000}})},
       {"kvs", Json::object({{"shards", static_cast<std::int64_t>(shards)}})}});
  auto session = Session::create_sim(ex, cfg);
  while (!session->all_online())
    if (!ex.run_one()) std::abort();

  std::vector<std::unique_ptr<Handle>> handles;
  std::uint32_t remaining = producers;
  TimePoint done_at{0};
  for (std::uint32_t p = 0; p < producers; ++p) {
    handles.push_back(session->attach(p % nnodes));
    co_spawn(
        ex,
        [](Handle* h, std::uint32_t proc, std::uint32_t nprocs,
           std::size_t vs, std::uint32_t* rem,
           TimePoint* done) -> Task<void> {
          KvsClient kvs(*h);
          Rng rng(0x5eedu ^ proc);
          // Unique top-level directory per producer: keys spread over the
          // shards by the rendezvous hash, like distinct jobs' keyspaces.
          co_await kvs.put("p" + std::to_string(proc) + "/v", rng.bytes(vs));
          co_await kvs.fence("abl", nprocs);
          if (--*rem == 0) *done = h->executor().now();
        }(handles.back().get(), p, producers, vsize, &remaining, &done_at),
        "producer");
  }
  const TimePoint t0 = ex.now();
  ex.run();
  return done_at - t0;
}

}  // namespace

int main() {
  print_header(
      "Ablation — sharded KVS masters (paper §VII future work)",
      "Ahn et al., ICPP'14, §VII (\"distributing the KVS master itself\")",
      "one fused fence over k shard masters beats the single master once "
      "producers saturate its apply serialization; tiny jobs pay a small "
      "coordination tax");
  metrics_open("bench_abl_distributed_master");

  const std::uint32_t nnodes = quick_mode() ? 32 : 128;
  const std::size_t vsize = 4096;
  const std::vector<std::uint32_t> producer_grid =
      quick_mode() ? std::vector<std::uint32_t>{8, 32, 128}
                   : std::vector<std::uint32_t>{16, 64, 256, 1024};
  const std::vector<std::uint32_t> shard_grid = {1, 2, 4, 8};

  std::printf("session: %u brokers, %zu-byte unique values, one fence\n\n",
              nnodes, vsize);
  std::printf("%10s", "producers");
  for (std::uint32_t k : shard_grid) std::printf("  k=%-2u ms     ", k);
  std::printf("best\n");

  for (std::uint32_t producers : producer_grid) {
    double base = 0;
    double best = 0;
    std::uint32_t best_k = 1;
    std::printf("%10u", producers);
    for (std::uint32_t k : shard_grid) {
      const Duration d = sharded_fence(nnodes, producers, k, vsize);
      const double m = ms(d);
      if (k == 1) base = m;
      if (k == 1 || m < best) {
        best = m;
        best_k = k;
      }
      std::printf("  %-10.3f", m);
      metrics_add(Json::object(
          {{"nnodes", static_cast<std::int64_t>(nnodes)},
           {"producers", static_cast<std::int64_t>(producers)},
           {"shards", static_cast<std::int64_t>(k)},
           {"value_size", static_cast<std::int64_t>(vsize)},
           {"fence_ms", m},
           {"speedup_vs_single", base / m}}));
    }
    std::printf("  k=%u (%.2fx)\n", best_k, base / best);
  }
  std::printf(
      "\n(real subsystem: one session, kvs module config {\"shards\": k}; "
      "k=1 is the byte-identical classic path)\n");
  return 0;
}
