// Ablation: module placement depth. Paper §IV-A: "A comms module may thus
// be loaded at a configurable tree depth to tune its level of distribution
// or to conserve node resources for application workloads toward the
// leaves." Loads the kvs module only down to depth D and measures the cost
// of pushing KVS service away from the leaves.
#include <cstdio>

#include "api/handle.hpp"
#include "bench_util.hpp"
#include "broker/session.hpp"
#include "kvs/kvs_client.hpp"

using namespace flux;
using namespace flux::bench;

namespace {

struct Result {
  Duration put_commit{0};
  Duration get_cold{0};
  std::uint32_t kvs_instances = 0;
};

Result measure(std::uint32_t nnodes, unsigned max_depth) {
  SimExecutor ex;
  SessionConfig cfg;
  cfg.size = nnodes;
  cfg.modules = {"hb", "barrier", "kvs"};
  cfg.module_max_depth["kvs"] = max_depth;
  auto session = Session::create_sim(ex, cfg);
  session->run_until_online();

  Result out;
  for (NodeId r = 0; r < nnodes; ++r)
    if (session->broker(r).find_module("kvs") != nullptr) ++out.kvs_instances;

  auto h = session->attach(nnodes - 1);  // deepest leaf
  {
    const TimePoint t0 = ex.now();
    bool done = false;
    co_spawn(ex, [](Handle* hd, bool* d) -> Task<void> {
      KvsClient kvs(*hd);
      co_await kvs.put("abl.depth", std::string(512, 'x'));
      co_await kvs.commit();
      *d = true;
    }(h.get(), &done));
    ex.run();
    if (!done) std::abort();
    out.put_commit = ex.now() - t0;
  }
  {
    auto reader = session->attach(nnodes - 2);
    const TimePoint t0 = ex.now();
    bool done = false;
    co_spawn(ex, [](Handle* hd, bool* d) -> Task<void> {
      KvsClient kvs(*hd);
      (void)co_await kvs.get("abl.depth");
      *d = true;
    }(reader.get(), &done));
    ex.run();
    if (!done) std::abort();
    out.get_cold = ex.now() - t0;
  }
  return out;
}

}  // namespace

int main() {
  print_header("Ablation — kvs module placement depth",
               "Ahn et al., ICPP'14, §IV-A (module loaded at configurable "
               "tree depth)",
               "shallower placement saves leaf memory/instances at the cost "
               "of extra routing hops per operation");

  const std::uint32_t nodes = quick_mode() ? 32 : 128;
  const auto full_depth = Topology::tree(nodes, 2).height();
  std::printf("%10s %14s %16s %14s\n", "max-depth", "kvs-instances",
              "put+commit(us)", "cold-get(us)");
  for (unsigned d = 0; d <= full_depth; ++d) {
    const Result r = measure(nodes, d);
    std::printf("%10u %14u %16.1f %14.1f\n", d, r.kvs_instances,
                us(r.put_commit), us(r.get_cold));
  }
  std::printf("\n(depth %u = every broker, the paper's default; depth 0 = "
              "fully centralized at the session root)\n", full_depth);
  return 0;
}
