// Ablation: rank-addressed ring vs service-routed tree RPC. Paper §IV-A:
// the ring "allows ranks to be trivially reached without routing tables ...
// the high latency of a ring is manageable and preferable over additional
// complexity" for debugging tools.
//
// A ring round trip always crosses all N links (request distance d, response
// rides forward the remaining N-d), so its latency grows linearly with the
// session size; a tree-routed service RPC from the deepest leaf crosses
// O(log N) hops. This bench quantifies that trade across session sizes.
#include <cstdio>

#include "api/handle.hpp"
#include "bench_util.hpp"
#include "broker/session.hpp"
#include "net/topology.hpp"

using namespace flux;
using namespace flux::bench;

namespace {

struct Rtts {
  double ring_us = 0;
  double tree_us = 0;
  unsigned depth = 0;
};

Rtts measure(std::uint32_t nodes) {
  SimExecutor ex;
  SessionConfig cfg;
  cfg.size = nodes;
  auto session = Session::create_sim(ex, cfg);
  session->run_until_online();
  auto h = session->attach(nodes - 1);  // deepest leaf

  Rtts out;
  out.depth = Topology::tree(nodes, 2).height();
  {
    const TimePoint t0 = ex.now();
    bool done = false;
    co_spawn(ex, [](Handle* hd, bool* d) -> Task<void> {
      co_await hd->request("group.list").call();  // served at the root
      *d = true;
    }(h.get(), &done));
    ex.run();
    if (!done) std::abort();
    out.tree_us = us(ex.now() - t0);
  }
  {
    const TimePoint t0 = ex.now();
    bool done = false;
    co_spawn(ex, [](Handle* hd, NodeId target, bool* d) -> Task<void> {
      (void)co_await hd->ping(target);
      *d = true;
    }(h.get(), nodes / 2, &done));
    ex.run();
    if (!done) std::abort();
    out.ring_us = us(ex.now() - t0);
  }
  return out;
}

}  // namespace

int main() {
  print_header("Ablation — ring-addressed RPC vs tree-routed RPC",
               "Ahn et al., ICPP'14, §IV-A (secondary overlay discussion)",
               "ring RTT ~linear in session size (always N hops round trip); "
               "tree service RTT ~logarithmic");

  std::printf("%8s %8s %14s %16s %10s\n", "brokers", "depth", "ring rtt(us)",
              "tree rtt(us)", "ratio");
  const std::vector<std::uint32_t> sizes =
      quick_mode() ? std::vector<std::uint32_t>{16, 64}
                   : std::vector<std::uint32_t>{16, 64, 128, 256, 512};
  double ring_lo = 0, ring_hi = 0, tree_lo = 0, tree_hi = 0;
  for (std::uint32_t n : sizes) {
    const Rtts r = measure(n);
    std::printf("%8u %8u %14.1f %16.1f %9.1fx\n", n, r.depth, r.ring_us,
                r.tree_us, r.ring_us / r.tree_us);
    if (n == sizes.front()) { ring_lo = r.ring_us; tree_lo = r.tree_us; }
    if (n == sizes.back()) { ring_hi = r.ring_us; tree_hi = r.tree_us; }
  }
  std::printf("\nshape: brokers x%.0f -> ring x%.1f (linear), tree x%.1f "
              "(log) — the paper keeps the ring for rank-targeted "
              "diagnostics only, where 'the high latency of a ring is "
              "manageable'\n",
              static_cast<double>(sizes.back()) / sizes.front(),
              ring_hi / ring_lo, tree_hi / tree_lo);
  return 0;
}
