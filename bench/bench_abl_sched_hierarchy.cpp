// Ablation: centralized vs hierarchical scheduling. Paper §II/§III: "the
// hierarchical, multilevel job scheduling will then facilitate scheduler
// parallelism, and this will allow the RJMS to scale to massive numbers of
// jobs scheduled across the center."
//
// The same workload — K x J small jobs over N nodes — is run (a) through one
// center-wide scheduler and (b) through K sibling child instances of N/K
// nodes each. Scheduling passes cost virtual time and serialize per
// scheduler, so the centralized run pays the full decision load on one
// critical path while siblings decide concurrently.
#include <cstdio>

#include "bench_util.hpp"
#include "core/instance.hpp"
#include "exec/sim_executor.hpp"

using namespace flux;
using namespace flux::bench;

namespace {

struct Outcome {
  double makespan_ms = 0;
  double sched_busy_ms = 0;
  std::uint64_t jobs = 0;
  std::uint64_t instances = 0;
};

JobSpec small_job(int i) {
  return JobSpec::app("j" + std::to_string(i), 1,
                      std::chrono::microseconds(200 + (i % 7) * 50));
}

/// Center-wide scheduling passes are expensive: each decision evaluates
/// rich multi-resource constraints over the full queue and resource view
/// (the regime the paper argues centralized RJMS cannot sustain).
Scheduler::CostModel center_costs() {
  Scheduler::CostModel cost;
  cost.pass_base = std::chrono::microseconds(50);
  cost.per_queued_job = std::chrono::microseconds(2);
  cost.per_free_node = std::chrono::nanoseconds(500);
  return cost;
}

Outcome centralized(unsigned nodes, int jobs) {
  SimExecutor ex;
  ResourceGraph graph =
      ResourceGraph::build_center("c", 1, 1, nodes, 16, 32, 350, 100);
  FluxInstance root(ex, "central", graph, "fcfs", center_costs());
  for (int i = 0; i < jobs; ++i) (void)root.submit(small_job(i));
  const TimePoint t0 = ex.now();
  ex.run();
  const auto st = root.tree_stats();
  return Outcome{static_cast<double>((ex.now() - t0).count()) / 1e6,
                 static_cast<double>(st.sched_busy.count()) / 1e6,
                 st.jobs_completed, st.instances};
}

Outcome hierarchical(unsigned nodes, int jobs, int children) {
  SimExecutor ex;
  ResourceGraph graph =
      ResourceGraph::build_center("c", 1, 1, nodes, 16, 32, 350, 100);
  FluxInstance root(ex, "site", graph, "fcfs", center_costs());
  const int per_child = jobs / children;
  for (int c = 0; c < children; ++c) {
    std::vector<JobSpec> work;
    for (int i = 0; i < per_child; ++i)
      work.push_back(small_job(c * per_child + i));
    (void)root.submit(JobSpec::instance(
        "child" + std::to_string(c),
        static_cast<std::int64_t>(nodes) / children, "fcfs", std::move(work)));
  }
  const TimePoint t0 = ex.now();
  ex.run();
  const auto st = root.tree_stats();
  return Outcome{static_cast<double>((ex.now() - t0).count()) / 1e6,
                 static_cast<double>(st.sched_busy.count()) / 1e6,
                 st.jobs_completed, st.instances};
}

}  // namespace

int main() {
  print_header("Ablation — centralized vs hierarchical scheduling",
               "Ahn et al., ICPP'14, §II-§III (scheduler parallelism)",
               "hierarchy cuts makespan for massive job counts; scheduling "
               "work spreads across concurrent per-instance schedulers");

  const unsigned nodes = quick_mode() ? 32 : 128;
  const int jobs = quick_mode() ? 512 : 4096;
  std::printf("workload: %d one-node jobs over %u nodes\n\n", jobs, nodes);
  std::printf("%-16s %10s %14s %14s %10s\n", "configuration", "instances",
              "makespan(ms)", "sched-busy(ms)", "jobs");

  const Outcome c = centralized(nodes, jobs);
  std::printf("%-16s %10llu %14.2f %14.2f %10llu\n", "centralized",
              static_cast<unsigned long long>(c.instances), c.makespan_ms,
              c.sched_busy_ms, static_cast<unsigned long long>(c.jobs));
  double best = 0;
  for (int children : {2, 4, 8, 16}) {
    const Outcome o = hierarchical(nodes, jobs, children);
    std::printf("%-16s %10llu %14.2f %14.2f %10llu\n",
                ("hier-" + std::to_string(children) + "way").c_str(),
                static_cast<unsigned long long>(o.instances), o.makespan_ms,
                o.sched_busy_ms, static_cast<unsigned long long>(o.jobs));
    best = std::max(best, c.makespan_ms / o.makespan_ms);
  }
  std::printf("\nbest hierarchical speedup over centralized: %.2fx "
              "(paper's motivation for multilevel scheduling)\n", best);
  return 0;
}
