// Ablation: tree arity. Paper §IV-A: "Although a binary RPC/reduction tree
// is pictured, the tree shape is configurable." Sweeps the fan-out of the
// request/reduction tree and reports its effect on every KAP phase: higher
// arity shortens the tree (fewer fault hops) but concentrates reduction
// traffic on fewer interior brokers.
#include "bench_util.hpp"
#include "net/topology.hpp"

int main() {
  using namespace flux;
  using namespace flux::bench;

  print_header("Ablation — RPC/reduction tree arity",
               "Ahn et al., ICPP'14, §IV-A (configurable tree shape)",
               "shallower trees cut consumer fault chains; fence stays "
               "root-bound regardless of arity");

  const std::uint32_t nodes = quick_mode() ? 32 : 256;
  std::printf("%8s %8s %8s %14s %14s %14s\n", "nodes", "arity", "depth",
              "fence(ms)", "consume(ms)", "wireup(us)");
  for (std::uint32_t arity : {1u, 2u, 3u, 4u, 8u, 16u}) {
    kap::KapConfig cfg;
    cfg.nnodes = nodes;
    cfg.tree_arity = arity;
    cfg.value_size = 2048;
    cfg.gets_per_consumer = 16;
    cfg.single_directory = false;
    const kap::KapResult r = run(cfg);
    const auto topo = Topology::tree(nodes, arity);
    std::printf("%8u %8u %8u %14.3f %14.3f %14.1f\n", nodes, arity,
                topo.height(), ms(r.sync.max), ms(r.consumer.max),
                us(r.wireup));
  }
  std::printf("\n(arity 1 is a chain — the degenerate worst case; the "
              "paper's default is the binary tree)\n");
  return 0;
}
