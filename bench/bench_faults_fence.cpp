// Fence latency under injected faults.
//
// The paper's resilience pitch (§III, §VI) is that faults are ordinary
// events: brokers die and links flap while the session keeps scheduling. This
// harness quantifies what that costs the hot collective: a session-wide
// kvs_fence, measured fault-free and then under seeded FaultPlan schedules —
// lossy links at increasing drop rates, injected delay jitter, and an
// interior broker crash mid-run (survivors ride the healed tree; the round's
// fence taints with a typed error instead of hanging).
//
// Reported per scenario: rounds completed / tainted, and the per-round fence
// latency (max across writers) for completed rounds.
#include <cstdio>
#include <string>
#include <vector>

#include "api/handle.hpp"
#include "bench_util.hpp"
#include "broker/session.hpp"
#include "fault/plan.hpp"
#include "kvs/kvs_client.hpp"

using namespace flux;
using namespace flux::bench;

namespace {

struct Scenario {
  const char* name;
  double drop = 0.0;
  double delay = 0.0;     // probability; 20-200us when it hits
  bool crash = false;     // interior broker dies mid-run
};

struct Result {
  int completed = 0;
  int tainted = 0;
  Duration worst{0};
  Duration total{0};
};

Result run_scenario(const Scenario& sc, std::uint32_t nnodes, int writers,
                    int rounds) {
  SimExecutor ex;
  SessionConfig cfg;
  cfg.size = nnodes;
  cfg.tree_arity = 2;
  // Deadline + retries so a faulted fence taints instead of hanging.
  cfg.rpc = RetryPolicy{std::chrono::milliseconds(20), 2,
                        std::chrono::microseconds(500)};
  cfg.module_config = Json::object(
      {{"hb", Json::object({{"period_us", 200}})},
       {"live", Json::object({{"missed_max", 3}})}});
  auto session = Session::create_sim(ex, cfg);
  session->run_until_online();

  fault::FaultPlan plan(42);
  if (sc.drop > 0.0) {
    fault::LinkPolicy p;
    p.drop = sc.drop;
    plan.link(p);
  }
  if (sc.delay > 0.0) {
    fault::LinkPolicy p;
    p.delay = sc.delay;
    p.delay_min = std::chrono::microseconds(20);
    p.delay_max = std::chrono::microseconds(200);
    plan.link(p);
  }
  // Mid-round-0: the fault-free fence completes in ~35-50us, so a crash a
  // few microseconds in catches fences in flight. Rank 3 is interior (on
  // writer 16's path to the root) but hosts no writer itself at either grid
  // size. Round 0 taints; later rounds run on the healed tree.
  if (sc.crash) plan.crash_at(3, std::chrono::microseconds(15));
  plan.arm(*session);

  std::vector<std::unique_ptr<Handle>> handles;
  for (int w = 0; w < writers; ++w)
    handles.push_back(session->attach(
        static_cast<NodeId>((static_cast<std::uint32_t>(w) * 7 + 2) % nnodes)));

  // Latency is recorded inside each fencer at the moment its fence resolves.
  // ex.run() itself drains 20ms past the last RPC (uncancelled timeout
  // timers no-op when they fire), so wall-clocking the drain would just
  // measure the RetryPolicy deadline.
  struct Round {
    int ok = 0;
    int bad = 0;
    TimePoint last{};
  };

  Result res;
  for (int round = 0; round < rounds; ++round) {
    const TimePoint t0 = ex.now();
    Round st;
    for (int w = 0; w < writers; ++w) {
      co_spawn(ex, [](SimExecutor* x, Handle* h, int id, int r, int n,
                      Round* st) -> Task<void> {
        KvsClient kvs(*h);
        try {
          co_await kvs.put("ff.w" + std::to_string(id), r);
          co_await kvs.fence("ff.r" + std::to_string(r), n);
          ++st->ok;
          if (x->now() > st->last) st->last = x->now();
        } catch (const FluxException&) {
          ++st->bad;  // cleanly tainted (timeout / host_down), never hung
        }
      }(&ex, handles[static_cast<std::size_t>(w)].get(), w, round, writers,
        &st),
      "fencer");
    }
    ex.run();
    if (st.ok == writers) {
      const Duration took = st.last - t0;
      ++res.completed;
      res.total += took;
      if (took > res.worst) res.worst = took;
    } else {
      ++res.tainted;
    }
  }
  return res;
}

}  // namespace

int main() {
  metrics_open("faults_fence");
  print_header(
      "Fence latency under injected faults (chaos harness, FaultPlan)",
      "Ahn et al., ICPP'14 §III/§VI resilience argument + §V-A fence",
      "delay jitter inflates fence latency; silent loss and a mid-fence "
      "crash taint rounds with typed errors, never hangs; the healed tree "
      "returns to fault-free latency");

  const std::uint32_t nnodes = quick_mode() ? 32 : 64;
  const int writers = quick_mode() ? 8 : 16;
  const int rounds = quick_mode() ? 6 : 12;

  const std::vector<Scenario> grid = {
      {"fault-free", 0.0, 0.0, false},
      {"drop 0.5%", 0.005, 0.0, false},
      {"drop 2%", 0.02, 0.0, false},
      {"delay 1% (20-200us)", 0.0, 0.01, false},
      {"delay 5% (20-200us)", 0.0, 0.05, false},
      {"interior crash", 0.0, 0.0, true},
  };

  std::printf("%-22s %10s %8s %12s %12s\n", "scenario", "completed", "tainted",
              "avg(us)", "worst(us)");
  double baseline = 0.0;
  for (const Scenario& sc : grid) {
    const Result r = run_scenario(sc, nnodes, writers, rounds);
    const double avg =
        r.completed > 0 ? us(r.total) / r.completed : 0.0;
    if (baseline == 0.0 && r.completed > 0) baseline = avg;
    std::printf("%-22s %10d %8d %12.1f %12.1f\n", sc.name, r.completed,
                r.tainted, avg, us(r.worst));
    Json row = Json::object({{"scenario", sc.name},
                             {"nnodes", static_cast<std::int64_t>(nnodes)},
                             {"writers", writers},
                             {"rounds", rounds},
                             {"completed", r.completed},
                             {"tainted", r.tainted},
                             {"avg_us", avg},
                             {"worst_us", us(r.worst)}});
    metrics_add(std::move(row));
  }
  std::printf("\nshape: every round completes or taints with a typed error "
              "(no hangs) against the %.1f us fault-free fence; crash "
              "recovery restores fault-free latency, while sustained silent "
              "loss keeps tainting (only declared-dead brokers are healed "
              "around)\n", baseline);
  return 0;
}
