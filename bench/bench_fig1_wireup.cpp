// Figure 1: the comms-session wire-up — the three persistent overlay planes
// (event pub-sub bus, request-response/reduction tree, rank-addressed ring).
//
// The paper's Figure 1 is an architecture diagram rather than a measurement;
// this harness builds sessions at increasing scale, measures the wire-up
// reduction (hello tree -> "cmb.online" broadcast), and then exercises each
// of the three planes end-to-end, reporting a per-plane round-trip latency.
#include <cstdio>

#include "api/handle.hpp"
#include "bench_util.hpp"
#include "broker/session.hpp"

using namespace flux;
using namespace flux::bench;

namespace {

struct PlaneLatencies {
  Duration wireup{0};
  Duration tree_rpc{0};
  Duration ring_rpc{0};
  Duration event{0};
};

PlaneLatencies measure(std::uint32_t nnodes, std::uint32_t arity) {
  PlaneLatencies out;
  SimExecutor ex;
  SessionConfig cfg;
  cfg.size = nnodes;
  cfg.tree_arity = arity;
  auto session = Session::create_sim(ex, cfg);
  out.wireup = session->run_until_online();

  const NodeId deepest = nnodes - 1;
  auto h = session->attach(deepest);

  // Tree plane: a leaf's request routed upstream to the root's module.
  {
    const TimePoint t0 = ex.now();
    bool done = false;
    co_spawn(ex, [](Handle* hd, bool* d) -> Task<void> {
      co_await hd->request("group.list").call();
      *d = true;
    }(h.get(), &done));
    ex.run();
    if (!done) std::abort();
    out.tree_rpc = ex.now() - t0;
  }
  // Ring plane: rank-addressed ping halfway around the ring.
  {
    const TimePoint t0 = ex.now();
    bool done = false;
    co_spawn(ex, [](Handle* hd, NodeId target, bool* d) -> Task<void> {
      (void)co_await hd->ping(target);
      *d = true;
    }(h.get(), deepest / 2, &done));
    ex.run();
    if (!done) std::abort();
    out.ring_rpc = ex.now() - t0;
  }
  // Event plane: publish from the deepest leaf, measure delivery at another.
  {
    auto sub = session->attach(nnodes / 2);
    const TimePoint t0 = ex.now();
    TimePoint seen{0};
    Subscription guard =
        sub->subscribe("bench.ev", [&](const Message&) { seen = ex.now(); });
    h->publish("bench.ev");
    ex.run();
    out.event = seen - t0;
  }
  return out;
}

}  // namespace

int main() {
  metrics_open("fig1_wireup");
  print_header(
      "Figure 1 — comms session wire-up and the three overlay planes",
      "Ahn et al., ICPP'14, Figure 1 (architecture) + §V-A session setup",
      "wire-up grows ~logarithmically with broker count; all three planes "
      "functional at every scale");

  std::printf("%8s %8s %12s %12s %12s %12s\n", "brokers", "arity",
              "wireup(us)", "tree-rpc(us)", "ring-rpc(us)", "event(us)");
  std::vector<double> wireups;
  const std::vector<std::uint32_t> sizes =
      quick_mode() ? std::vector<std::uint32_t>{16, 64}
                   : std::vector<std::uint32_t>{16, 64, 128, 256, 512};
  for (std::uint32_t n : sizes) {
    const PlaneLatencies p = measure(n, 2);
    std::printf("%8u %8u %12.1f %12.1f %12.1f %12.1f\n", n, 2u, us(p.wireup),
                us(p.tree_rpc), us(p.ring_rpc), us(p.event));
    wireups.push_back(us(p.wireup));
    Json row = Json::object({{"brokers", static_cast<std::int64_t>(n)},
                             {"arity", 2},
                             {"wireup_us", us(p.wireup)},
                             {"tree_rpc_us", us(p.tree_rpc)},
                             {"ring_rpc_us", us(p.ring_rpc)},
                             {"event_us", us(p.event)}});
    metrics_add(std::move(row));
  }
  const double grow = wireups.back() / wireups.front();
  const double scale = static_cast<double>(sizes.back()) /
                       static_cast<double>(sizes.front());
  std::printf("\nshape: brokers x%.0f -> wire-up x%.2f (%s)\n", scale, grow,
              grow < scale / 2 ? "sub-linear: tree-parallel hello reduction"
                               : "UNEXPECTED: wire-up scaling poorly");

  std::printf("\ntree shape is configurable (paper: \"although a binary "
              "RPC/reduction tree is pictured\"):\n");
  std::printf("%8s %8s %12s\n", "brokers", "arity", "wireup(us)");
  for (std::uint32_t arity : {2u, 4u, 16u}) {
    const PlaneLatencies p = measure(sizes.back(), arity);
    std::printf("%8u %8u %12.1f\n", sizes.back(), arity, us(p.wireup));
    Json row =
        Json::object({{"brokers", static_cast<std::int64_t>(sizes.back())},
                      {"arity", static_cast<std::int64_t>(arity)},
                      {"wireup_us", us(p.wireup)}});
    metrics_add(std::move(row));
  }
  return 0;
}
