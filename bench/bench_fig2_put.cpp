// Figure 2: "maximum latency of the producer phase ... how well kvs_put
// scales as we increase the number of producers", one series per value size.
//
// Paper finding: "the kvs_put simply performs and scales well. This matches
// our expectations because objects are cached in write-back mode at kvs_put
// time and flushed to the master at the next consistency event."
#include "bench_util.hpp"

int main() {
  using namespace flux;
  using namespace flux::bench;

  metrics_open("fig2_put");
  print_header(
      "Figure 2 — producer-phase (kvs_put) max latency vs #producers",
      "Ahn et al., ICPP'14, Figure 2",
      "low & near-flat across producer counts; ordered by value size");

  std::printf("%8s %8s", "nodes", "nprocs");
  for (std::size_t v : vsize_grid()) std::printf("  vsize-%-6zu", v);
  std::printf("   (max producer-phase latency, ms)\n");

  // Shape checks accumulated across the grid.
  double first_col_small = 0, last_col_small = 0;
  for (std::uint32_t nodes : node_grid()) {
    std::printf("%8u %8u", nodes, nodes * procs_per_node());
    for (std::size_t vsize : vsize_grid()) {
      kap::KapConfig cfg;
      cfg.nnodes = nodes;
      cfg.value_size = vsize;
      cfg.gets_per_consumer = 0;  // producer phase only
      const kap::KapResult r = run(cfg);
      std::printf("  %-12.4f", ms(r.producer.max));
      if (vsize == vsize_grid().front()) {
        if (nodes == node_grid().front()) first_col_small = ms(r.producer.max);
        if (nodes == node_grid().back()) last_col_small = ms(r.producer.max);
      }
    }
    std::printf("\n");
  }

  const double growth = last_col_small / first_col_small;
  const double scale_factor = static_cast<double>(node_grid().back()) /
                              static_cast<double>(node_grid().front());
  std::printf("\nshape: producer latency grew %.2fx while producers grew "
              "%.0fx -> %s (paper: put \"performs and scales well\")\n",
              growth, scale_factor,
              growth < scale_factor / 2 ? "SUB-LINEAR, as in the paper"
                                        : "UNEXPECTED growth");
  return 0;
}
