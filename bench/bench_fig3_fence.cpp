// Figure 3: "how kvs_fence scales as the number of producers increase",
// unique values (vsize-k) vs redundant values (red-vsize-k).
//
// Paper findings: the unique-value fence "perform[s] linearly with respect
// to the number of producers because these values are simply being
// concatenated while being sent up the tree"; the redundant-value fence is
// far cheaper because "redundant values are reduced", but "fails short of
// logarithmic scaling ... because while values are reduced, the (key, SHA1)
// tuples referring to them are still concatenated."
#include <cmath>

#include "bench_util.hpp"

int main() {
  using namespace flux;
  using namespace flux::bench;

  metrics_open("fig3_fence");
  print_header(
      "Figure 3 — synchronization-phase (kvs_fence) max latency vs #producers",
      "Ahn et al., ICPP'14, Figure 3 (vsize-k and red-vsize-k series)",
      "unique ~linear in producers; redundant much cheaper yet "
      "super-logarithmic (tuple concatenation)");

  std::printf("%8s %8s", "nodes", "nprocs");
  for (std::size_t v : vsize_grid()) std::printf("  vsize-%-6zu", v);
  for (std::size_t v : vsize_grid()) std::printf("  red-vsize-%-3zu", v);
  std::printf("   (max fence latency, ms)\n");

  struct Point {
    double procs, unique_ms, red_ms;
  };
  std::vector<Point> big;  // largest value size across node counts

  for (std::uint32_t nodes : node_grid()) {
    std::printf("%8u %8u", nodes, nodes * procs_per_node());
    Point pt{static_cast<double>(nodes) * procs_per_node(), 0, 0};
    for (int redundant = 0; redundant <= 1; ++redundant) {
      for (std::size_t vsize : vsize_grid()) {
        kap::KapConfig cfg;
        cfg.nnodes = nodes;
        cfg.value_size = vsize;
        cfg.redundant_values = (redundant == 1);
        cfg.gets_per_consumer = 0;  // stop after the sync phase
        const kap::KapResult r = run(cfg);
        std::printf(redundant ? "  %-14.3f" : "  %-12.3f", ms(r.sync.max));
        if (vsize == vsize_grid().back()) {
          (redundant ? pt.red_ms : pt.unique_ms) = ms(r.sync.max);
        }
      }
    }
    big.push_back(pt);
    std::printf("\n");
  }

  // Shape verdicts on the largest-vsize series.
  const Point& lo = big.front();
  const Point& hi = big.back();
  const double pgrow = hi.procs / lo.procs;
  const double ugrow = hi.unique_ms / lo.unique_ms;
  const double rgrow = hi.red_ms / lo.red_ms;
  const double log_grow =
      std::log2(hi.procs) / std::log2(lo.procs);
  std::printf("\nshape (vsize-%zu): producers x%.0f -> unique fence x%.2f "
              "(linear would be x%.0f), redundant x%.2f (log would be x%.2f)\n",
              vsize_grid().back(), pgrow, ugrow, pgrow, rgrow, log_grow);
  std::printf("verdicts: unique %s; redundant %s; redundant/unique speedup at "
              "largest scale = %.1fx\n",
              ugrow > pgrow * 0.4 ? "~LINEAR (as in the paper)"
                                  : "unexpectedly flat",
              (rgrow > log_grow && rgrow < ugrow)
                  ? "between log and linear (as in the paper)"
                  : "outside the paper's band",
              hi.unique_ms / hi.red_ms);
  return 0;
}
