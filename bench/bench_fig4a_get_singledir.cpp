// Figure 4(a): "maximum latency of kvs_get when the target keys are all
// stored in a single KVS directory object", one series per per-consumer
// access count.
//
// Paper finding: "The latency is quite high and also increases linearly as
// we increase the number of consumers ... the small objects being consumed
// in the test cannot be retrieved without faulting in the entire directory
// object containing them, through the tree of CMB slave cache instances."
#include "bench_util.hpp"

int main() {
  using namespace flux;
  using namespace flux::bench;

  metrics_open("fig4a_get_singledir");
  print_header(
      "Figure 4(a) — consumer-phase (kvs_get) max latency, SINGLE directory",
      "Ahn et al., ICPP'14, Figure 4(a) (8-byte values)",
      "high latency, ~linear growth with consumer count (the directory "
      "object grows with scale and is faulted whole)");

  const std::vector<std::uint32_t> accesses =
      quick_mode() ? std::vector<std::uint32_t>{1, 4}
                   : std::vector<std::uint32_t>{1, 4, 16, 64};

  std::printf("%8s %8s", "nodes", "ncons");
  for (std::uint32_t a : accesses) std::printf("  access-%-5u", a);
  std::printf("   (max consumer-phase latency, ms)\n");

  std::vector<double> access1;
  for (std::uint32_t nodes : node_grid()) {
    std::printf("%8u %8u", nodes, nodes * procs_per_node());
    for (std::uint32_t a : accesses) {
      kap::KapConfig cfg;
      cfg.nnodes = nodes;
      cfg.value_size = 8;
      cfg.gets_per_consumer = a;
      cfg.single_directory = true;
      const kap::KapResult r = run(cfg);
      std::printf("  %-12.3f", ms(r.consumer.max));
      if (a == accesses.front()) access1.push_back(ms(r.consumer.max));
    }
    std::printf("\n");
  }

  const double cgrow = access1.back() / access1.front();
  const double pgrow = static_cast<double>(node_grid().back()) /
                       static_cast<double>(node_grid().front());
  std::printf("\nshape (access-%u): consumers x%.0f -> latency x%.2f; %s\n",
              accesses.front(), pgrow, cgrow,
              cgrow > pgrow * 0.4
                  ? "~LINEAR growth, as in the paper"
                  : "flatter than the paper's linear finding");
  return 0;
}
