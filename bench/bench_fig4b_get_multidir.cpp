// Figure 4(b): consumer-phase max latency when keys are distributed into
// "multiple directories of at most 128 objects each".
//
// Paper finding: latencies drop dramatically versus the single-directory
// layout and grow near-logarithmically — each consumer's fault set G stays
// bounded, so max latency follows log2(C) * T(G).
#include <cmath>

#include "bench_util.hpp"

int main() {
  using namespace flux;
  using namespace flux::bench;

  metrics_open("fig4b_get_multidir");
  print_header(
      "Figure 4(b) — consumer-phase (kvs_get) max latency, dirs of <=128",
      "Ahn et al., ICPP'14, Figure 4(b) (8-byte values)",
      "far cheaper than 4(a); near-logarithmic growth in consumer count");

  const std::vector<std::uint32_t> accesses =
      quick_mode() ? std::vector<std::uint32_t>{1, 4}
                   : std::vector<std::uint32_t>{1, 4, 16, 64};

  std::printf("%8s %8s", "nodes", "ncons");
  for (std::uint32_t a : accesses) std::printf("  access-%-5u", a);
  std::printf("   (max consumer-phase latency, ms)\n");

  std::vector<double> access1_multi;
  double single_dir_big = 0, multi_dir_big = 0;
  for (std::uint32_t nodes : node_grid()) {
    std::printf("%8u %8u", nodes, nodes * procs_per_node());
    for (std::uint32_t a : accesses) {
      kap::KapConfig cfg;
      cfg.nnodes = nodes;
      cfg.value_size = 8;
      cfg.gets_per_consumer = a;
      cfg.single_directory = false;
      cfg.dir_fanout = 128;
      const kap::KapResult r = run(cfg);
      std::printf("  %-12.3f", ms(r.consumer.max));
      if (a == accesses.front()) access1_multi.push_back(ms(r.consumer.max));
      if (a == accesses.front() && nodes == node_grid().back())
        multi_dir_big = ms(r.consumer.max);
    }
    std::printf("\n");
  }

  // Head-to-head vs the single-directory layout at the largest scale.
  {
    kap::KapConfig cfg;
    cfg.nnodes = node_grid().back();
    cfg.value_size = 8;
    cfg.gets_per_consumer = accesses.front();
    cfg.single_directory = true;
    single_dir_big = ms(run(cfg).consumer.max);
  }

  const double cgrow = access1_multi.back() / access1_multi.front();
  const double pgrow = static_cast<double>(node_grid().back()) /
                       static_cast<double>(node_grid().front());
  const double log_grow = std::log2(static_cast<double>(node_grid().back()) *
                                    procs_per_node()) /
                          std::log2(static_cast<double>(node_grid().front()) *
                                    procs_per_node());
  std::printf("\nshape (access-%u): consumers x%.0f -> latency x%.2f "
              "(log-like would be ~x%.2f, linear x%.0f) -> %s\n",
              accesses.front(), pgrow, cgrow, log_grow, pgrow,
              cgrow < pgrow * 0.4 ? "NEAR-LOG, as in the paper"
                                  : "steeper than the paper");
  std::printf("single-dir vs multi-dir at %u nodes (access-%u): %.3f ms vs "
              "%.3f ms -> %.1fx improvement (paper: dramatic drop)\n",
              node_grid().back(), accesses.front(), single_dir_big,
              multi_dir_big, single_dir_big / multi_dir_big);
  return 0;
}
