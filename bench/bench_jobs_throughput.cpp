// Job-lifecycle throughput: sustained jobs/sec through the full pipeline
// (job.submit validation -> root jobid assignment -> job-manager queue ->
// scheduler -> resvc allocation -> wexec dispatch -> KVS fold-back ->
// waiter response) versus broker count and submission-window depth.
//
// The paper's thesis is that a session-scoped framework keeps per-job
// overhead flat as the instance grows; here that reads as throughput
// degrading only mildly with broker count (the critical path is the root's
// scheduling loop, not the tree fan-out) and rising with window depth until
// the scheduler pass dominates.
//
//   $ ./bench_jobs_throughput [--quick]
//
// Time is virtual (discrete-event sim): jobs/sec is jobs over the virtual
// makespan from first submit to last completion. host_seconds records the
// real cost of simulating each cell.
#include <chrono>
#include <cstring>
#include <memory>
#include <vector>

#include "api/job_client.hpp"
#include "bench_util.hpp"
#include "broker/session.hpp"
#include "exec/sim_executor.hpp"

namespace {

using namespace flux;
using namespace flux::bench;

struct Cell {
  double jobs_per_sec = 0;
  double makespan_ms = 0;
  double alloc_mean_us = 0;
  std::int64_t completed = 0;
  double host_seconds = 0;
};

Task<void> submitter(Handle* h, int jobs, int* completed) {
  for (int i = 0; i < jobs; ++i) {
    JobHandle jh = co_await h->job()
                       .name("bench")
                       .walltime(std::chrono::microseconds(200))
                       .submit();
    (void)co_await jh.wait();
    ++*completed;
  }
}

Cell run_cell(std::uint32_t nodes, int depth, int total_jobs) {
  const auto host_start = std::chrono::steady_clock::now();
  SimExecutor ex;
  SessionConfig cfg;
  cfg.size = nodes;
  auto session = Session::create_sim(ex, cfg);
  session->run_until_online();

  // `depth` concurrent submitters, each with one job in flight, keeps the
  // pending queue at ~depth without modeling client think time.
  const int window = std::min(depth, std::max(1, total_jobs / 2));
  std::vector<std::unique_ptr<Handle>> handles;
  int completed = 0;
  const TimePoint t0 = ex.now();
  for (int w = 0; w < window; ++w) {
    handles.push_back(session->attach(
        static_cast<NodeId>(1 + static_cast<std::uint32_t>(w) % (nodes - 1))));
    const int share =
        total_jobs / window + (w < total_jobs % window ? 1 : 0);
    co_spawn(ex, submitter(handles.back().get(), share, &completed),
             "bench-submitter");
  }
  ex.run();
  const Duration makespan = ex.now() - t0;

  Cell cell;
  cell.completed = completed;
  cell.makespan_ms = ms(makespan);
  cell.jobs_per_sec = makespan.count() > 0
                          ? static_cast<double>(completed) * 1e9 /
                                static_cast<double>(makespan.count())
                          : 0;

  // Mean allocation latency from the job-manager's registry histogram.
  auto probe = session->attach(0);
  co_spawn(ex, [](Handle* h, Cell* out) -> Task<void> {
    Message resp = co_await h->request("job-manager.stats.get").call();
    const Json& hist = resp.payload().at("histograms");
    if (hist.is_object() && hist.at("job-manager.alloc_ns").is_object())
      out->alloc_mean_us =
          hist.at("job-manager.alloc_ns").get_double("mean") / 1e3;
  }(probe.get(), &cell), "bench-stats");
  ex.run();

  cell.host_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    host_start)
          .count();
  return cell;
}

}  // namespace

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i)
    if (std::strcmp(argv[i], "--quick") == 0) setenv("FLUX_BENCH_QUICK", "1", 1);

  metrics_open("jobs_throughput");
  print_header(
      "Job throughput — jobs/sec through the full lifecycle pipeline",
      "framework thesis (§III): session-scoped job management keeps per-job "
      "overhead flat as the instance grows",
      "throughput rises with window depth, degrades only mildly with broker "
      "count");

  const std::vector<std::uint32_t> nodes =
      quick_mode() ? std::vector<std::uint32_t>{8, 16, 32}
                   : std::vector<std::uint32_t>{16, 64, 256};
  const std::vector<int> depths =
      quick_mode() ? std::vector<int>{4, 16} : std::vector<int>{4, 32, 256};
  const int total_jobs = quick_mode() ? 120 : 600;

  std::printf("%8s %8s %10s %12s %12s %14s %10s\n", "brokers", "window",
              "jobs", "jobs/sec", "makespan_ms", "alloc_mean_us", "host_s");
  for (const std::uint32_t n : nodes) {
    for (const int d : depths) {
      const Cell c = run_cell(n, d, total_jobs);
      std::printf("%8u %8d %10lld %12.0f %12.3f %14.2f %10.2f\n", n, d,
                  static_cast<long long>(c.completed), c.jobs_per_sec,
                  c.makespan_ms, c.alloc_mean_us, c.host_seconds);
      if (c.completed != total_jobs)
        std::printf("  WARNING: only %lld/%d jobs completed\n",
                    static_cast<long long>(c.completed), total_jobs);
      Json row = Json::object(
          {{"brokers", static_cast<std::int64_t>(n)},
           {"window", static_cast<std::int64_t>(d)},
           {"jobs", static_cast<std::int64_t>(total_jobs)},
           {"completed", c.completed},
           {"jobs_per_sec", c.jobs_per_sec},
           {"makespan_ms", c.makespan_ms},
           {"alloc_mean_us", c.alloc_mean_us},
           {"host_seconds", c.host_seconds}});
      metrics_add(std::move(row));
    }
  }
  return 0;
}
