// Wall-clock micro-benchmarks of the run-time building blocks (google-benchmark).
#include <benchmark/benchmark.h>

#include "base/rng.hpp"
#include "hash/sha1.hpp"
#include "json/json.hpp"
#include "kvs/content_store.hpp"
#include "msg/codec.hpp"

namespace {

using namespace flux;

void BM_Sha1(benchmark::State& state) {
  Rng rng(1);
  const std::string data = rng.bytes(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(Sha1::of(data));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_Sha1)->Arg(64)->Arg(1024)->Arg(32768);

void BM_JsonParse(benchmark::State& state) {
  Json obj = Json::object();
  Rng rng(2);
  for (int i = 0; i < state.range(0); ++i)
    obj["key" + std::to_string(i)] = rng.bytes(24);
  const std::string text = obj.dump();
  for (auto _ : state) {
    auto v = Json::parse(text);
    benchmark::DoNotOptimize(v);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(text.size()));
}
BENCHMARK(BM_JsonParse)->Arg(4)->Arg(64)->Arg(512);

void BM_JsonDump(benchmark::State& state) {
  Json obj = Json::object();
  Rng rng(3);
  for (int i = 0; i < state.range(0); ++i)
    obj["key" + std::to_string(i)] = rng.bytes(24);
  for (auto _ : state) {
    benchmark::DoNotOptimize(obj.dump());
  }
}
BENCHMARK(BM_JsonDump)->Arg(4)->Arg(64)->Arg(512);

void BM_MessageCodecRoundTrip(benchmark::State& state) {
  Rng rng(4);
  Message m = Message::request("kvs.put", Json::object({{"key", "a.b.c"}}));
  m.route = {RouteHop{RouteHop::Kind::Client, 3, 12},
             RouteHop{RouteHop::Kind::Broker, 1, 0}};
  m.set_data(std::make_shared<const std::string>(
      rng.bytes(static_cast<std::size_t>(state.range(0)))));
  for (auto _ : state) {
    auto wire = encode(m);
    auto back = decode(wire);
    benchmark::DoNotOptimize(back);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(m.wire_size()));
}
BENCHMARK(BM_MessageCodecRoundTrip)->Arg(8)->Arg(512)->Arg(32768);

// Forwarding-hop encode cost. An interior broker re-encodes each message it
// relays; the body encoding (JSON dump + data + attachment) is memoized on
// the Message, so hop N memcpys the cached bytes instead of re-serializing.
// Arg 1 selects the path: 1 = cached (forwarding steady state), 0 = the
// cache invalidated every iteration (the pre-memoization cost, kept as the
// comparison baseline).
void BM_MessageForwardEncode(benchmark::State& state) {
  const bool cached = state.range(1) != 0;
  Rng rng(6);
  Message m = Message::request(
      "kvs.load", Json::object({{"refs", Json::array()}, {"shard", 0}}));
  m.route = {RouteHop{RouteHop::Kind::Client, 3, 12},
             RouteHop{RouteHop::Kind::Broker, 1, 0}};
  m.set_data(std::make_shared<const std::string>(
      rng.bytes(static_cast<std::size_t>(state.range(0)))));
  auto warm = encode(m);
  benchmark::DoNotOptimize(warm);
  for (auto _ : state) {
    if (!cached) m.set_payload(Json(m.payload()));
    auto wire = encode(m);
    benchmark::DoNotOptimize(wire);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(m.wire_size()));
}
BENCHMARK(BM_MessageForwardEncode)
    ->Args({512, 0})
    ->Args({512, 1})
    ->Args({32768, 0})
    ->Args({32768, 1});

void BM_KvsApplyTransaction(benchmark::State& state) {
  const auto ntuples = static_cast<std::size_t>(state.range(0));
  Rng rng(5);
  for (auto _ : state) {
    state.PauseTiming();
    ContentStore store;
    ObjPtr root = empty_dir_object();
    store.put(root);
    std::vector<Tuple> tuples;
    tuples.reserve(ntuples);
    for (std::size_t i = 0; i < ntuples; ++i) {
      ObjPtr obj = make_val_object(rng.bytes(16));
      store.put(obj);
      tuples.push_back(Tuple{"d" + std::to_string(i / 128) + ".k" +
                                 std::to_string(i),
                             obj->id});
    }
    state.ResumeTiming();
    benchmark::DoNotOptimize(apply_transaction(store, root->id, tuples));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_KvsApplyTransaction)->Arg(16)->Arg(256)->Arg(4096);

}  // namespace

BENCHMARK_MAIN();
