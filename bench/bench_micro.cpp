// Wall-clock micro-benchmarks of the run-time building blocks (google-benchmark).
#include <benchmark/benchmark.h>

#include "base/rng.hpp"
#include "hash/sha1.hpp"
#include "json/json.hpp"
#include "kvs/content_store.hpp"
#include "msg/codec.hpp"

namespace {

using namespace flux;

void BM_Sha1(benchmark::State& state) {
  Rng rng(1);
  const std::string data = rng.bytes(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(Sha1::of(data));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_Sha1)->Arg(64)->Arg(1024)->Arg(32768);

// The three document shapes the data plane actually serializes: a small RPC
// payload (the per-message steady state), a deeply nested directory treeobj
// (stresses recursion + key sorting), and a ~4 KB jobspec (the largest doc a
// single job submission moves).
Json shape_small_payload() {
  return Json::object(
      {{"key", "job.42.state"}, {"flags", 3}, {"val", "running"}});
}

Json shape_deep_dir_treeobj() {
  Json doc = Json::object();
  Json* cur = &doc;
  for (int depth = 0; depth < 32; ++depth) {
    (*cur)["t"] = "dir";
    (*cur)["e"] = Json::object(
        {{"a", "da39a3ee5e6b4b0d3255bfef95601890afd80709"},
         {"b", "da39a3ee5e6b4b0d3255bfef95601890afd80709"}});
    cur = &(*cur)["e"]["sub"];
  }
  *cur = Json::object({{"t", "val"}, {"d", "leaf"}});
  return doc;
}

Json shape_jobspec_4k() {
  Rng rng(7);
  Json env = Json::object();
  for (int i = 0; i < 44; ++i)
    env["FLUX_JOB_ENV_" + std::to_string(i)] = rng.bytes(56);
  Json core = Json::object({{"type", "core"}, {"count", 16}});
  Json node = Json::object(
      {{"type", "node"}, {"count", 4}, {"with", Json::array({std::move(core)})}});
  Json task = Json::object(
      {{"command", Json::array({"app", "--verbose", "--input=/scratch/x"})},
       {"slot", "task"},
       {"count", Json::object({{"per_slot", 1}})}});
  return Json::object(
      {{"version", 1},
       {"resources", Json::array({std::move(node)})},
       {"tasks", Json::array({std::move(task)})},
       {"attributes",
        Json::object({{"system", Json::object({{"duration", 3600},
                                               {"environment", std::move(env)}})}})}});
}

void BM_JsonParse(benchmark::State& state, Json doc) {
  const std::string text = doc.dump();
  for (auto _ : state) {
    auto v = Json::parse(text);
    benchmark::DoNotOptimize(v);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(text.size()));
}
BENCHMARK_CAPTURE(BM_JsonParse, small_payload, shape_small_payload());
BENCHMARK_CAPTURE(BM_JsonParse, deep_dir_treeobj, shape_deep_dir_treeobj());
BENCHMARK_CAPTURE(BM_JsonParse, jobspec_4k, shape_jobspec_4k());

void BM_JsonSerialize(benchmark::State& state, Json doc) {
  std::string buf;
  for (auto _ : state) {
    buf.clear();
    doc.dump_into(buf);
    benchmark::DoNotOptimize(buf);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(buf.size()));
}
BENCHMARK_CAPTURE(BM_JsonSerialize, small_payload, shape_small_payload());
BENCHMARK_CAPTURE(BM_JsonSerialize, deep_dir_treeobj, shape_deep_dir_treeobj());
BENCHMARK_CAPTURE(BM_JsonSerialize, jobspec_4k, shape_jobspec_4k());

void BM_MessageCodecRoundTrip(benchmark::State& state) {
  Rng rng(4);
  Message m = Message::request("kvs.put", Json::object({{"key", "a.b.c"}}));
  m.route = {RouteHop{RouteHop::Kind::Client, 3, 12},
             RouteHop{RouteHop::Kind::Broker, 1, 0}};
  m.set_data(std::make_shared<const std::string>(
      rng.bytes(static_cast<std::size_t>(state.range(0)))));
  for (auto _ : state) {
    auto wire = encode(m);
    auto back = decode(wire);
    benchmark::DoNotOptimize(back);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(m.wire_size()));
}
BENCHMARK(BM_MessageCodecRoundTrip)->Arg(8)->Arg(512)->Arg(32768);

// Forwarding-hop encode cost. An interior broker re-encodes each message it
// relays; the body encoding (JSON dump + data + attachment) is memoized on
// the Message, so hop N memcpys the cached bytes instead of re-serializing.
// Arg 1 selects the path: 1 = cached (forwarding steady state), 0 = the
// cache invalidated every iteration (the pre-memoization cost, kept as the
// comparison baseline).
void BM_MessageForwardEncode(benchmark::State& state) {
  const bool cached = state.range(1) != 0;
  Rng rng(6);
  Message m = Message::request(
      "kvs.load", Json::object({{"refs", Json::array()}, {"shard", 0}}));
  m.route = {RouteHop{RouteHop::Kind::Client, 3, 12},
             RouteHop{RouteHop::Kind::Broker, 1, 0}};
  m.set_data(std::make_shared<const std::string>(
      rng.bytes(static_cast<std::size_t>(state.range(0)))));
  auto warm = encode(m);
  benchmark::DoNotOptimize(warm);
  for (auto _ : state) {
    if (!cached) m.set_payload(Json(m.payload()));
    auto wire = encode(m);
    benchmark::DoNotOptimize(wire);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(m.wire_size()));
}
BENCHMARK(BM_MessageForwardEncode)
    ->Args({512, 0})
    ->Args({512, 1})
    ->Args({32768, 0})
    ->Args({32768, 1});

void BM_KvsApplyTransaction(benchmark::State& state) {
  const auto ntuples = static_cast<std::size_t>(state.range(0));
  Rng rng(5);
  for (auto _ : state) {
    state.PauseTiming();
    ContentStore store;
    ObjPtr root = empty_dir_object();
    store.put(root);
    std::vector<Tuple> tuples;
    tuples.reserve(ntuples);
    for (std::size_t i = 0; i < ntuples; ++i) {
      ObjPtr obj = make_val_object(rng.bytes(16));
      store.put(obj);
      tuples.push_back(Tuple{"d" + std::to_string(i / 128) + ".k" +
                                 std::to_string(i),
                             obj->id});
    }
    state.ResumeTiming();
    benchmark::DoNotOptimize(apply_transaction(store, root->id, tuples));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_KvsApplyTransaction)->Arg(16)->Arg(256)->Arg(4096);

}  // namespace

BENCHMARK_MAIN();
