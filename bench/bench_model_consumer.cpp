// §V-B analytic model: "With our access pattern where G objects are read
// collectively by C consumers, and the time to replicate G objects in a
// single slave cache from its CMB-tree parent is given by T(G), the maximum
// consumer latency is given by log2(C) x T(G)."
//
// This harness measures T(G) directly (one leaf, cold caches, G objects
// faulted from its parent chain collapsed to one hop) and compares the
// model's prediction against the full simulated consumer latency.
#include <cmath>
#include <cstdio>

#include "api/handle.hpp"
#include "base/rng.hpp"
#include "bench_util.hpp"
#include "broker/session.hpp"
#include "kvs/kvs_client.hpp"

using namespace flux;
using namespace flux::bench;

namespace {

/// T(G): replicate G objects into one slave cache from its parent (a
/// two-broker session: master + one slave).
Duration measure_t_of_g(std::uint64_t g, std::size_t vsize) {
  SimExecutor ex;
  SessionConfig cfg;
  cfg.size = 2;
  cfg.modules = {"hb", "barrier", "kvs"};
  auto session = Session::create_sim(ex, cfg);
  session->run_until_online();

  auto writer = session->attach(0);
  bool done = false;
  co_spawn(ex, [](Handle* h, std::uint64_t n, std::size_t vs, bool* d) -> Task<void> {
    KvsClient kvs(*h);
    Rng rng(7);
    for (std::uint64_t i = 0; i < n; ++i)
      co_await kvs.put("m.d" + std::to_string(i / 128) + ".k" + std::to_string(i),
                       rng.bytes(vs));
    co_await kvs.commit();
    *d = true;
  }(writer.get(), g, vsize, &done));
  ex.run();
  if (!done) std::abort();

  auto reader = session->attach(1);
  const TimePoint t0 = ex.now();
  done = false;
  co_spawn(ex, [](Handle* h, std::uint64_t n, bool* d) -> Task<void> {
    KvsClient kvs(*h);
    for (std::uint64_t i = 0; i < n; ++i)
      (void)co_await kvs.get("m.d" + std::to_string(i / 128) + ".k" +
                             std::to_string(i));
    *d = true;
  }(reader.get(), g, &done));
  ex.run();
  if (!done) std::abort();
  return ex.now() - t0;
}

}  // namespace

int main() {
  print_header(
      "§V-B model — max consumer latency ≈ log2(C) x T(G)",
      "Ahn et al., ICPP'14, Section V-B scaling model",
      "model prediction within a small factor of the simulated latency; "
      "ratio stable across scales");

  const std::uint32_t g = 16;  // objects per consumer
  const Duration t_of_g = measure_t_of_g(g, 8);
  std::printf("measured T(G=%u, 8B values) = %.1f us\n\n", g, us(t_of_g));

  std::printf("%8s %8s %14s %14s %8s\n", "nodes", "C", "model(ms)",
              "simulated(ms)", "ratio");
  double ratio_min = 1e9, ratio_max = 0;
  for (std::uint32_t nodes : node_grid()) {
    kap::KapConfig cfg;
    cfg.nnodes = nodes;
    cfg.value_size = 8;
    cfg.gets_per_consumer = g;
    cfg.single_directory = false;  // bounded G, the model's regime
    const kap::KapResult r = run(cfg);
    const double consumers = static_cast<double>(nodes) * procs_per_node();
    const double model_ms = std::log2(consumers) * ms(t_of_g);
    const double sim_ms = ms(r.consumer.max);
    const double ratio = sim_ms / model_ms;
    ratio_min = std::min(ratio_min, ratio);
    ratio_max = std::max(ratio_max, ratio);
    std::printf("%8u %8.0f %14.3f %14.3f %8.2f\n", nodes, consumers, model_ms,
                sim_ms, ratio);
  }
  std::printf("\nratio spread across scales: %.2f .. %.2f -> %s\n", ratio_min,
              ratio_max,
              (ratio_max / ratio_min < 4.0)
                  ? "model tracks the simulation (stable ratio)"
                  : "model diverges from the simulation");
  std::printf("(the paper's own caveat applies: with a single directory, G "
              "grows with scale and the model predicts linear growth — see "
              "bench_fig4a)\n");
  return 0;
}
