// Restart-to-serving and GC pause: the two operational costs of the durable
// content store (DESIGN.md persistence section).
//
//   restart_to_serving_ms  host time from "cold session start against an
//                          existing log" to "first KVS get served" — broker
//                          wire-up, log replay into the master's store, and
//                          the recovery-epoch re-announce all included.
//   recover_ms             just the log scan + object replay, measured
//                          offline against the same file.
//   gc_pause_ms            one mark_and_sweep pass over the recovered store
//                          (retention 0: sweep everything unreachable).
//   compact_ms             log rewrite to live contents + one checkpoint.
//
//   $ ./bench_restart [--quick]
//
// The populate phase drives real commits through a persisting sim session
// and shuts down cleanly (final checkpoint); keys rotate through a small
// keyspace so superseded values accumulate as garbage for the GC phase.
// All four metrics are host wall-clock — file I/O does not run on the
// virtual sim clock — so the gate bands are the loose host-time ones.
#include <unistd.h>

#include <chrono>
#include <cstring>
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "broker/session.hpp"
#include "exec/sim_executor.hpp"
#include "kvs/content_backend.hpp"
#include "kvs/content_store.hpp"
#include "kvs/kvs_client.hpp"

namespace {

using namespace flux;
using namespace flux::bench;
using HostClock = std::chrono::steady_clock;

double host_ms(HostClock::time_point t0) {
  return std::chrono::duration<double, std::milli>(HostClock::now() - t0)
      .count();
}

struct Cell {
  std::int64_t commits = 0;
  double populate_s = 0;
  double log_mb = 0;
  std::int64_t objects = 0;
  double recover_ms = 0;
  double restart_to_serving_ms = 0;
  double gc_pause_ms = 0;
  std::int64_t swept = 0;
  double compact_ms = 0;
  double compacted_mb = 0;
};

SessionConfig persist_config(const std::string& path) {
  SessionConfig cfg;
  cfg.size = 4;
  // Checkpoint on a realistic cadence; GC stays manual so the offline pass
  // below has the whole run's garbage to collect.
  cfg.module_config = Json::object(
      {{"kvs", Json::object({{"persist", Json::object({{"path", path},
                                                       {"checkpoint_every", 64},
                                                       {"gc_every", 0},
                                                       {"retention", 4}})}})}});
  return cfg;
}

std::string cell_key(int i) {
  return "g" + std::to_string(i % 24) + ".k" + std::to_string(i % 96);
}

Task<void> writer(KvsClient* kvs, int commits) {
  for (int i = 0; i < commits; ++i) {
    Json v = Json::object({{"i", i}});
    co_await kvs->put(cell_key(i), std::move(v));
    (void)co_await kvs->commit();
  }
}

Task<void> reader(KvsClient* kvs, bool* served) {
  (void)co_await kvs->get(cell_key(0));
  *served = true;
}

Cell run_cell(int commits) {
  Cell cell;
  cell.commits = commits;
  const std::string path =
      (std::filesystem::temp_directory_path() /
       ("flux-bench-restart-" + std::to_string(::getpid()) + "-" +
        std::to_string(commits) + ".log"))
          .string();
  std::error_code ec;
  std::filesystem::remove(path, ec);

  {  // -- populate: real commits through a persisting session --------------
    const auto t0 = HostClock::now();
    SimExecutor ex;
    auto session = Session::create_sim(ex, persist_config(path));
    session->run_until_online();
    auto handle = session->attach(1);
    KvsClient kvs(*handle);
    co_spawn(ex, writer(&kvs, commits), "bench-writer");
    ex.run();
    cell.populate_s = host_ms(t0) / 1e3;
  }  // clean shutdown: final checkpoint + close

  cell.log_mb =
      static_cast<double>(std::filesystem::file_size(path, ec)) / 1e6;

  {  // -- restart-to-serving: cold start against the log, first get -------
    const auto t0 = HostClock::now();
    SimExecutor ex;
    auto session = Session::create_sim(ex, persist_config(path));
    session->run_until_online();
    auto handle = session->attach(1);
    KvsClient kvs(*handle);
    bool served = false;
    co_spawn(ex, reader(&kvs, &served), "bench-reader");
    ex.run();
    cell.restart_to_serving_ms = host_ms(t0);
    if (!served) std::printf("  WARNING: restart read not served\n");
  }

  {  // -- offline: recover, one GC pass, compaction ------------------------
    ContentStore store;
    FileLogBackend backend(path);
    const auto t_rec = HostClock::now();
    const ContentBackend::Recovered rec = backend.recover(store);
    cell.recover_ms = host_ms(t_rec);
    cell.objects = static_cast<std::int64_t>(rec.objects);

    GcOptions opt;
    opt.current_version = rec.versions.empty() ? 0 : rec.versions[0];
    opt.retention = 0;
    const auto t_gc = HostClock::now();
    const GcStats stats = mark_and_sweep(store, rec.roots, opt);
    cell.gc_pause_ms = host_ms(t_gc);
    cell.swept = static_cast<std::int64_t>(stats.swept);

    const auto t_cp = HostClock::now();
    backend.compact(store, rec.roots, rec.versions);
    cell.compact_ms = host_ms(t_cp);
    cell.compacted_mb =
        static_cast<double>(backend.stats().compacted_bytes) / 1e6;
    backend.close();
  }

  std::filesystem::remove(path, ec);
  std::filesystem::remove(path + ".tmp", ec);
  return cell;
}

}  // namespace

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i)
    if (std::strcmp(argv[i], "--quick") == 0) setenv("FLUX_BENCH_QUICK", "1", 1);

  metrics_open("restart");
  print_header(
      "Restart + GC — recovery-to-serving time and sweep pause vs log size",
      "durability extension (DESIGN.md): checkpointed content log, "
      "mark-and-sweep GC, compaction",
      "all four costs grow roughly linearly with live log size; GC pause "
      "stays well under the restart cost it avoids");

  // The quick grid shares its top cell with the full grid so the verify.sh
  // bench gate has a comparable row against the committed baseline.
  const std::vector<int> grid =
      quick_mode() ? std::vector<int>{300, 1000}
                   : std::vector<int>{1000, 5000, 20000};

  std::printf("%9s %8s %9s %11s %12s %11s %8s %11s\n", "commits", "log_mb",
              "objects", "recover_ms", "restart_ms", "gc_pause_ms", "swept",
              "compact_ms");
  for (const int n : grid) {
    const Cell c = run_cell(n);
    std::printf("%9lld %8.2f %9lld %11.2f %12.2f %11.2f %8lld %11.2f\n",
                static_cast<long long>(c.commits), c.log_mb,
                static_cast<long long>(c.objects), c.recover_ms,
                c.restart_to_serving_ms, c.gc_pause_ms,
                static_cast<long long>(c.swept), c.compact_ms);
    Json row = Json::object({{"commits", c.commits},
                             {"log_mb", c.log_mb},
                             {"objects", c.objects},
                             {"recover_ms", c.recover_ms},
                             {"restart_to_serving_ms", c.restart_to_serving_ms},
                             {"gc_pause_ms", c.gc_pause_ms},
                             {"swept", c.swept},
                             {"compact_ms", c.compact_ms},
                             {"compacted_mb", c.compacted_mb},
                             {"host_seconds", c.populate_s}});
    metrics_add(std::move(row));
  }
  return 0;
}
