// Data-plane saturation: sustained mixed put/get/commit ops/sec versus
// broker count, in both execution modes.
//
// The ROADMAP target is a million-ops data plane: the simulator is the
// instrument (SST/CGSim argument), so per-op constant factors — JSON
// parse/serialize, root transitions per commit, wakeups per message —
// bound every experiment the harness can run. This bench measures them
// end to end:
//
//  - sim rows: N brokers on one SimExecutor, C concurrent clients each
//    looping {put, commit, get own key, get shared key}. ops/sec_host
//    (total ops over host wall-clock) is the headline: it is what the
//    JSON fast path and KVS apply-batching buy. Virtual-time throughput
//    is reported alongside (apply-batching also collapses root
//    transitions, which virtual time sees).
//  - threaded rows: real reactor threads + wire codec round-trip, driven
//    by SyncHandle client threads. This is where transport drain
//    batching (N messages per wakeup) shows up.
//
//   $ ./bench_saturation [--quick]
//
// Emits saturation.metrics.json (collected as BENCH_saturation.json).
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstring>
#include <memory>
#include <thread>
#include <vector>

#include "api/handle.hpp"
#include "api/sync_handle.hpp"
#include "bench_util.hpp"
#include "broker/session.hpp"
#include "exec/sim_executor.hpp"
#include "kvs/kvs_client.hpp"
#include "kvs/kvs_module.hpp"

namespace {

using namespace flux;
using namespace flux::bench;

struct Cell {
  std::int64_t ops = 0;
  double host_seconds = 0;
  double ops_per_sec_host = 0;
  double virtual_ms = 0;
  double ops_per_sec_virtual = 0;
  std::int64_t apply_batches = 0;
  double apply_batch_mean = 0;
  std::int64_t announces = 0;
  double announce_batch_mean = 0;
};

// One client: `rounds` iterations of the mixed op sequence. Four ops per
// round — a staged put, the commit that ships it, and two gets (own key is
// the RYW read, the shared key is the hot-directory read every client hits).
Task<void> sim_client(Handle* h, int id, int rounds, std::int64_t* ops) {
  KvsClient kvs(*h);
  const std::string own = "sat.c" + std::to_string(id);
  for (int r = 0; r < rounds; ++r) {
    // GCC's coroutine lowering chokes on initializer-list temporaries, so
    // build the payload imperatively.
    Json payload = Json::object();
    payload["r"] = r;
    payload["who"] = id;
    co_await kvs.put(own, std::move(payload));
    (void)co_await kvs.commit();
    (void)co_await kvs.get(own);
    (void)co_await kvs.get("sat.shared");
    *ops += 4;
  }
}

Cell run_sim_cell(std::uint32_t nodes, int clients, int rounds) {
  SimExecutor ex;
  SessionConfig cfg;
  cfg.size = nodes;
  cfg.modules = {"hb", "live", "barrier", "kvs"};
  cfg.module_config = Json::object(
      {{"hb", Json::object({{"period_us", 100000}})},
       {"live", Json::object({{"missed_max", 100}})}});
  auto session = Session::create_sim(ex, cfg);
  session->run_until_online();

  // Seed the shared key so the measured loop never sees ENOENT.
  std::vector<std::unique_ptr<Handle>> handles;
  handles.push_back(session->attach(0));
  co_spawn(ex, [](Handle* h) -> Task<void> {
    KvsClient kvs(*h);
    Json payload = Json::object();
    payload["seed"] = true;
    co_await kvs.put("sat.shared", std::move(payload));
    (void)co_await kvs.commit();
  }(handles[0].get()), "sat-seed");
  ex.run();

  std::int64_t ops = 0;
  for (int c = 0; c < clients; ++c) {
    const NodeId rank =
        static_cast<NodeId>(static_cast<std::uint32_t>(c) % nodes);
    handles.push_back(session->attach(rank));
    co_spawn(ex, sim_client(handles.back().get(), c, rounds, &ops),
             "sat-client");
  }
  const TimePoint t0 = ex.now();
  const auto host_start = std::chrono::steady_clock::now();
  ex.run();
  const double host_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    host_start)
          .count();
  const Duration span = ex.now() - t0;

  Cell cell;
  cell.ops = ops;
  cell.host_seconds = host_seconds;
  cell.ops_per_sec_host =
      host_seconds > 0 ? static_cast<double>(ops) / host_seconds : 0;
  cell.virtual_ms = ms(span);
  cell.ops_per_sec_virtual =
      span.count() > 0 ? static_cast<double>(ops) * 1e9 /
                             static_cast<double>(span.count())
                       : 0;

  // Master-side apply coalescing (0 for builds without apply-batching).
  co_spawn(ex, [](Handle* h, Cell* out) -> Task<void> {
    Message resp = co_await h->request("kvs.stats").call();
    out->apply_batches = resp.payload().get_int("apply_batches", 0);
    out->apply_batch_mean = resp.payload().get_double("apply_batch_mean", 0.0);
    out->announces = resp.payload().get_int("announces", 0);
    out->announce_batch_mean =
        resp.payload().get_double("announce_batch_mean", 0.0);
  }(handles[0].get(), &cell), "sat-stats");
  ex.run();
  return cell;
}

Cell run_threaded_cell(std::uint32_t nodes, int clients, int rounds) {
  SessionConfig cfg;
  cfg.size = nodes;
  cfg.modules = {"hb", "live", "barrier", "kvs"};
  // Wall-clock heartbeats; liveness detection effectively off (a client
  // thread storm can deschedule a reactor past many periods).
  cfg.module_config = Json::object(
      {{"hb", Json::object({{"period_us", 2000}})},
       {"live", Json::object({{"missed_max", 1 << 20}})}});
  auto session = Session::create_threaded(cfg);
  if (!session->wait_online()) return {};

  {
    SyncHandle seed(*session, 0);
    seed.kvs_put("sat.shared", Json::object({{"seed", true}}));
    (void)seed.kvs_commit();
  }

  std::atomic<std::int64_t> ops{0};
  const auto host_start = std::chrono::steady_clock::now();
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(clients));
  for (int c = 0; c < clients; ++c) {
    threads.emplace_back([&session, &ops, c, rounds, nodes] {
      SyncHandle h(*session,
                   static_cast<NodeId>(static_cast<std::uint32_t>(c) % nodes));
      const std::string own = "sat.t" + std::to_string(c);
      for (int r = 0; r < rounds; ++r) {
        h.kvs_put(own, Json::object({{"r", r}, {"who", c}}));
        (void)h.kvs_commit();
        (void)h.kvs_get(own);
        (void)h.kvs_get("sat.shared");
        ops.fetch_add(4, std::memory_order_relaxed);
      }
    });
  }
  for (auto& t : threads) t.join();
  const double host_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    host_start)
          .count();

  Cell cell;
  cell.ops = ops.load();
  cell.host_seconds = host_seconds;
  cell.ops_per_sec_host =
      host_seconds > 0 ? static_cast<double>(cell.ops) / host_seconds : 0;
  SyncHandle probe(*session, 0);
  Message stats = probe.request("kvs.stats").call();
  cell.apply_batches = stats.payload().get_int("apply_batches", 0);
  cell.apply_batch_mean = stats.payload().get_double("apply_batch_mean", 0.0);
  cell.announces = stats.payload().get_int("announces", 0);
  cell.announce_batch_mean =
      stats.payload().get_double("announce_batch_mean", 0.0);
  return cell;
}

void emit(const char* mode, std::uint32_t nodes, int clients, int rounds,
          const Cell& c) {
  std::printf("%9s %8u %8d %10lld %14.0f %14.0f %12.3f %9lld %8.2f %8.2f\n",
              mode, nodes, clients, static_cast<long long>(c.ops),
              c.ops_per_sec_host, c.ops_per_sec_virtual, c.host_seconds,
              static_cast<long long>(c.apply_batches), c.apply_batch_mean,
              c.announce_batch_mean);
  metrics_add(Json::object(
      {{"mode", mode},
       {"brokers", static_cast<std::int64_t>(nodes)},
       {"clients", static_cast<std::int64_t>(clients)},
       {"rounds", static_cast<std::int64_t>(rounds)},
       {"ops", c.ops},
       {"ops_per_sec_host", c.ops_per_sec_host},
       {"ops_per_sec_virtual", c.ops_per_sec_virtual},
       {"virtual_ms", c.virtual_ms},
       {"host_seconds", c.host_seconds},
       {"apply_batches", c.apply_batches},
       {"apply_batch_mean", c.apply_batch_mean},
       {"announces", c.announces},
       {"announce_batch_mean", c.announce_batch_mean}}));
}

}  // namespace

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i)
    if (std::strcmp(argv[i], "--quick") == 0) setenv("FLUX_BENCH_QUICK", "1", 1);

  metrics_open("saturation");
  print_header(
      "Saturation — sustained mixed put/get/commit ops/sec",
      "ROADMAP \"raw-speed data plane\": the simulator is the instrument, so "
      "per-op constant factors bound every experiment",
      "ops/sec_host roughly flat with broker count; apply batches << commits "
      "when the master coalesces");

  const std::vector<std::uint32_t> sim_nodes =
      quick_mode() ? std::vector<std::uint32_t>{1, 16, 64}
                   : std::vector<std::uint32_t>{1, 4, 16, 64, 256};
  const int sim_ops_target = quick_mode() ? 4000 : 16000;
  const std::vector<std::uint32_t> thr_nodes =
      quick_mode() ? std::vector<std::uint32_t>{2} : std::vector<std::uint32_t>{2, 8};
  const int thr_rounds = quick_mode() ? 60 : 250;

  std::printf("%9s %8s %8s %10s %14s %14s %12s %9s %8s %8s\n", "mode",
              "brokers", "clients", "ops", "ops/s_host", "ops/s_virt",
              "host_s", "batches", "batch_mu", "ann_mu");
  for (const std::uint32_t n : sim_nodes) {
    const int clients = static_cast<int>(std::min<std::uint32_t>(2 * n, 32));
    const int rounds = std::max(1, sim_ops_target / (4 * clients));
    emit("sim", n, clients, rounds, run_sim_cell(n, clients, rounds));
  }
  for (const std::uint32_t n : thr_nodes) {
    const int clients = 8;
    emit("threaded", n, clients, thr_rounds,
         run_threaded_cell(n, clients, thr_rounds));
  }
  return 0;
}
