// Table I: the prototyped comms modules. Loads every module on a simulated
// session, exercises each one end-to-end, and reports a representative
// operation latency (simulated time) per module — regenerating the table's
// inventory with a live functionality check per row.
#include <cstdio>
#include <string>

#include "api/handle.hpp"
#include "bench_util.hpp"
#include "broker/session.hpp"
#include "kvs/kvs_client.hpp"

using namespace flux;
using namespace flux::bench;

namespace {

struct Row {
  const char* module;
  const char* description;
  std::string op;
  double latency_us;
  bool ok;
};

}  // namespace

int main() {
  metrics_open("table1_modules");
  print_header("Table I — prototyped comms modules",
               "Ahn et al., ICPP'14, Table I",
               "all nine modules load and serve their representative "
               "operation on one session");

  const std::uint32_t nnodes = quick_mode() ? 16 : 64;
  SimExecutor ex;
  SessionConfig cfg;
  cfg.size = nnodes;
  cfg.module_config =
      Json::object({{"hb", Json::object({{"period_us", 500}})},
                    {"mon", Json::object({{"interval_epochs", 2}})}});
  auto session = Session::create_sim(ex, cfg);
  session->run_until_online();
  auto h = session->attach(nnodes - 1);

  std::vector<Row> rows;
  auto timed = [&](const char* module, const char* description,
                   std::string op, Task<void> task) {
    const TimePoint t0 = ex.now();
    bool ok = true, done = false;
    co_spawn(ex,
             [](Task<void> t, bool* okp, bool* dp) -> Task<void> {
               try {
                 co_await std::move(t);
               } catch (const std::exception&) {
                 *okp = false;
               }
               *dp = true;
             }(std::move(task), &ok, &done),
             op);
    ex.run();
    rows.push_back(Row{module, description, std::move(op),
                       us(ex.now() - t0), ok && done});
  };

  timed("hb", "periodic heartbeat event synchronizes background activity",
        "hb.get", [](Handle* hd) -> Task<void> {
          // Let a few heartbeats fire first.
          co_await hd->sleep(std::chrono::milliseconds(2));
          Message r = co_await hd->request("hb.get").call();
          if (r.payload().get_int("epoch") < 1)
            throw FluxException(Error(errc::proto, "no heartbeats"));
        }(h.get()));

  timed("live", "heartbeat-synchronized hellos detect dead children",
        "live.status", [](Handle* hd) -> Task<void> {
          co_await hd->request("live.status").to(0).call();
        }(h.get()));

  timed("log", "records reduced & filtered to a session-root log",
        "log.append+get", [](Handle* hd) -> Task<void> {
          Json rec = Json::object({{"level", 3},
                                   {"component", "bench"},
                                   {"text", "table1"}});
          co_await hd->request("log.append").payload(std::move(rec)).call();
          Json query = Json::object({{"max", 1}});
          co_await hd->request("log.get").payload(std::move(query)).call();
        }(h.get()));

  timed("mon", "KVS-activated heartbeat-synchronized sampling, tree-reduced",
        "kvs-activate+sample", [](Handle* hd) -> Task<void> {
          KvsClient kvs(*hd);
          Json samplers = Json::array({"load"});
          co_await kvs.put("mon.samplers", std::move(samplers));
          co_await kvs.commit();
          co_await hd->sleep(std::chrono::milliseconds(4));
          (void)co_await kvs.list_dir("mon.data.load");
        }(h.get()));

  timed("group", "process collections for collective operations",
        "group.join+info", [](Handle* hd) -> Task<void> {
          Json j = Json::object({{"name", "t1"}});
          co_await hd->request("group.join").payload(std::move(j)).call();
          Json q = Json::object({{"name", "t1"}});
          Message info = co_await hd->request("group.info").payload(std::move(q)).call();
          if (info.payload().get_int("size") != 1)
            throw FluxException(Error(errc::proto, "bad group size"));
        }(h.get()));

  timed("barrier", "collective synchronization across Flux groups",
        "barrier.enter", [](Handle* hd) -> Task<void> {
          co_await hd->barrier("t1", 1);
        }(h.get()));

  timed("kvs", "distributed key-value store (hash tree + caches)",
        "put+commit+get", [](Handle* hd) -> Task<void> {
          KvsClient kvs(*hd);
          co_await kvs.put("table1.k", "v");
          co_await kvs.commit();
          (void)co_await kvs.get("table1.k");
        }(h.get()));

  timed("wexec", "bulk remote processes with stdio captured in the KVS",
        "wexec.run(hostname)", [](Handle* hd) -> Task<void> {
          Json payload = Json::object({{"jobid", "t1"},
                                       {"cmd", "hostname"},
                                       {"args", Json::object()},
                                       {"ranks", Json()}});
          Message r = co_await hd->request("wexec.run").payload(std::move(payload)).call();
          if (!r.payload().get_bool("success"))
            throw FluxException(Error(errc::proto, "job failed"));
        }(h.get()));

  timed("resvc", "resources enumerated in the KVS and allocated",
        "resvc.alloc+free", [](Handle* hd) -> Task<void> {
          Json a = Json::object({{"jobid", "t1"}, {"nnodes", 4}});
          co_await hd->request("resvc.alloc").payload(std::move(a)).call();
          Json f = Json::object({{"jobid", "t1"}});
          co_await hd->request("resvc.free").payload(std::move(f)).call();
        }(h.get()));

  std::printf("%-8s %-8s %-24s %12s  %s\n", "module", "status", "operation",
              "latency(us)", "description");
  bool all_ok = true;
  for (const Row& row : rows) {
    std::printf("%-8s %-8s %-24s %12.1f  %s\n", row.module,
                row.ok ? "OK" : "FAILED", row.op.c_str(), row.latency_us,
                row.description);
    all_ok &= row.ok;
    Json metric = Json::object({{"module", row.module},
                                {"op", row.op},
                                {"latency_us", row.latency_us},
                                {"ok", row.ok}});
    metrics_add(std::move(metric));
  }
  std::printf("\n%s: %zu/%zu Table-I modules functional on a %u-broker "
              "session\n",
              all_ok ? "PASS" : "FAIL", rows.size(), rows.size(), nnodes);
  return all_ok ? 0 : 1;
}
