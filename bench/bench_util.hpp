// Shared helpers for the paper-figure benchmark harnesses.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "kap/kap.hpp"

namespace flux::bench {

/// FLUX_BENCH_QUICK=1 trims the grids for smoke runs; the default grid is
/// the paper's (§V-A: 64..512 nodes fully populated with 16 processes).
inline bool quick_mode() {
  const char* env = std::getenv("FLUX_BENCH_QUICK");
  return env != nullptr && env[0] == '1';
}

inline std::vector<std::uint32_t> node_grid() {
  if (quick_mode()) return {16, 32, 64};
  return {64, 128, 256, 512};
}

inline std::vector<std::size_t> vsize_grid() {
  if (quick_mode()) return {8, 512, 32768};
  return {8, 32, 128, 512, 2048, 8192, 32768};
}

inline std::uint32_t procs_per_node() { return quick_mode() ? 4 : 16; }

inline double ms(Duration d) { return static_cast<double>(d.count()) / 1e6; }
inline double us(Duration d) { return static_cast<double>(d.count()) / 1e3; }

inline void print_header(const char* title, const char* paper_ref,
                         const char* expectation) {
  std::printf("================================================================\n");
  std::printf("%s\n", title);
  std::printf("Reproduces: %s\n", paper_ref);
  std::printf("Expected shape: %s\n", expectation);
  if (quick_mode()) std::printf("(FLUX_BENCH_QUICK=1: reduced grid)\n");
  std::printf("================================================================\n");
}

/// One KAP run with the benchmark defaults applied.
inline kap::KapResult run(kap::KapConfig cfg) {
  cfg.procs_per_node = procs_per_node();
  return kap::run_kap(cfg);
}

}  // namespace flux::bench
