// Shared helpers for the paper-figure benchmark harnesses.
#pragma once

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "json/json.hpp"
#include "kap/kap.hpp"

namespace flux::bench {

/// FLUX_BENCH_QUICK=1 trims the grids for smoke runs; the default grid is
/// the paper's (§V-A: 64..512 nodes fully populated with 16 processes).
inline bool quick_mode() {
  const char* env = std::getenv("FLUX_BENCH_QUICK");
  return env != nullptr && env[0] == '1';
}

inline std::vector<std::uint32_t> node_grid() {
  if (quick_mode()) return {16, 32, 64};
  return {64, 128, 256, 512};
}

inline std::vector<std::size_t> vsize_grid() {
  if (quick_mode()) return {8, 512, 32768};
  return {8, 32, 128, 512, 2048, 8192, 32768};
}

inline std::uint32_t procs_per_node() { return quick_mode() ? 4 : 16; }

inline double ms(Duration d) { return static_cast<double>(d.count()) / 1e6; }
inline double us(Duration d) { return static_cast<double>(d.count()) / 1e3; }

inline void print_header(const char* title, const char* paper_ref,
                         const char* expectation) {
  std::printf("================================================================\n");
  std::printf("%s\n", title);
  std::printf("Reproduces: %s\n", paper_ref);
  std::printf("Expected shape: %s\n", expectation);
  if (quick_mode()) std::printf("(FLUX_BENCH_QUICK=1: reduced grid)\n");
  std::printf("================================================================\n");
}

/// JSON metrics sidecar. The benchmarks print human-readable tables; the
/// sidecar writes the same measurements as machine-readable JSON so plots and
/// regression checks don't have to scrape stdout. Rows accumulate during the
/// run and "<name>.metrics.json" is written at process exit into the current
/// directory (FLUX_BENCH_METRICS_DIR overrides the directory,
/// FLUX_BENCH_METRICS=0 disables the file entirely).
class MetricsSidecar {
 public:
  void open(std::string name) {
    if (name_.empty()) std::atexit(&MetricsSidecar::write_at_exit);
    name_ = std::move(name);
  }
  void add(Json row) { rows_.push_back(std::move(row)); }

  static MetricsSidecar& instance() {
    static MetricsSidecar m;
    return m;
  }

 private:
  void write() const {
    if (name_.empty() || rows_.empty()) return;
    const char* toggle = std::getenv("FLUX_BENCH_METRICS");
    if (toggle != nullptr && toggle[0] == '0') return;
    const char* dir = std::getenv("FLUX_BENCH_METRICS_DIR");
    const std::string path =
        (dir != nullptr ? std::string(dir) + "/" : std::string()) + name_ +
        ".metrics.json";
    Json rows = Json::array();
    for (const Json& r : rows_) rows.push_back(r);
    Json doc = Json::object({{"bench", name_},
                             {"quick", quick_mode()},
                             {"rows", std::move(rows)}});
    if (FILE* f = std::fopen(path.c_str(), "w")) {
      const std::string text = doc.dump_pretty();
      std::fputs(text.c_str(), f);
      std::fputc('\n', f);
      std::fclose(f);
      std::printf("[metrics] wrote %s (%zu rows)\n", path.c_str(),
                  rows_.size());
    }
  }
  static void write_at_exit() { instance().write(); }

  std::string name_;
  std::vector<Json> rows_;
};

/// Name the sidecar file for this benchmark (call once, early in main).
inline void metrics_open(std::string name) {
  MetricsSidecar::instance().open(std::move(name));
}

/// Append one measurement row to the sidecar.
inline void metrics_add(Json row) {
  MetricsSidecar::instance().add(std::move(row));
}

/// One KAP run with the benchmark defaults applied. Every run contributes a
/// sidecar row with the config knobs and headline results.
inline kap::KapResult run(kap::KapConfig cfg) {
  cfg.procs_per_node = procs_per_node();
  kap::KapResult r = kap::run_kap(cfg);
  Json row = Json::object(
      {{"nnodes", static_cast<std::int64_t>(cfg.nnodes)},
       {"procs_per_node", static_cast<std::int64_t>(cfg.procs_per_node)},
       {"value_size", static_cast<std::int64_t>(cfg.value_size)},
       {"gets_per_consumer", static_cast<std::int64_t>(cfg.gets_per_consumer)},
       {"redundant_values", cfg.redundant_values},
       {"single_directory", cfg.single_directory},
       {"wireup_us", us(r.wireup)},
       {"producer_max_ms", ms(r.producer.max)},
       {"sync_max_ms", ms(r.sync.max)},
       {"consumer_max_ms", ms(r.consumer.max)},
       {"total_objects", static_cast<std::int64_t>(r.total_objects)},
       {"net_messages", static_cast<std::int64_t>(r.net_messages)},
       {"net_bytes", static_cast<std::int64_t>(r.net_bytes)},
       {"cache_hits", static_cast<std::int64_t>(r.cache_hits)},
       {"cache_misses", static_cast<std::int64_t>(r.cache_misses)},
       {"host_seconds", r.host_seconds}});
  MetricsSidecar::instance().add(std::move(row));
  return r;
}

}  // namespace flux::bench
