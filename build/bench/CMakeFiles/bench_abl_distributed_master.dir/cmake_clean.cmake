file(REMOVE_RECURSE
  "CMakeFiles/bench_abl_distributed_master.dir/bench_abl_distributed_master.cpp.o"
  "CMakeFiles/bench_abl_distributed_master.dir/bench_abl_distributed_master.cpp.o.d"
  "bench_abl_distributed_master"
  "bench_abl_distributed_master.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_abl_distributed_master.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
