# Empty compiler generated dependencies file for bench_abl_distributed_master.
# This may be replaced when dependencies are built.
