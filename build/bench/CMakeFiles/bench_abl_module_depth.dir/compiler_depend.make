# Empty compiler generated dependencies file for bench_abl_module_depth.
# This may be replaced when dependencies are built.
