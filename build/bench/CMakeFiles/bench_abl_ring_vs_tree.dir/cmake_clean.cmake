file(REMOVE_RECURSE
  "CMakeFiles/bench_abl_ring_vs_tree.dir/bench_abl_ring_vs_tree.cpp.o"
  "CMakeFiles/bench_abl_ring_vs_tree.dir/bench_abl_ring_vs_tree.cpp.o.d"
  "bench_abl_ring_vs_tree"
  "bench_abl_ring_vs_tree.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_abl_ring_vs_tree.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
