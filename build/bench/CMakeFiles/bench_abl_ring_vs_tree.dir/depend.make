# Empty dependencies file for bench_abl_ring_vs_tree.
# This may be replaced when dependencies are built.
