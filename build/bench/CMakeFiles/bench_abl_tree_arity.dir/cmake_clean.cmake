file(REMOVE_RECURSE
  "CMakeFiles/bench_abl_tree_arity.dir/bench_abl_tree_arity.cpp.o"
  "CMakeFiles/bench_abl_tree_arity.dir/bench_abl_tree_arity.cpp.o.d"
  "bench_abl_tree_arity"
  "bench_abl_tree_arity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_abl_tree_arity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
