# Empty compiler generated dependencies file for bench_abl_tree_arity.
# This may be replaced when dependencies are built.
