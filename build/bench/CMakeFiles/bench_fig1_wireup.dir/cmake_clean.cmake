file(REMOVE_RECURSE
  "CMakeFiles/bench_fig1_wireup.dir/bench_fig1_wireup.cpp.o"
  "CMakeFiles/bench_fig1_wireup.dir/bench_fig1_wireup.cpp.o.d"
  "bench_fig1_wireup"
  "bench_fig1_wireup.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig1_wireup.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
