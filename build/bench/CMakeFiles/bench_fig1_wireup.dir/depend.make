# Empty dependencies file for bench_fig1_wireup.
# This may be replaced when dependencies are built.
