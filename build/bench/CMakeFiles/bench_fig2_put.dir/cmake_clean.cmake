file(REMOVE_RECURSE
  "CMakeFiles/bench_fig2_put.dir/bench_fig2_put.cpp.o"
  "CMakeFiles/bench_fig2_put.dir/bench_fig2_put.cpp.o.d"
  "bench_fig2_put"
  "bench_fig2_put.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2_put.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
