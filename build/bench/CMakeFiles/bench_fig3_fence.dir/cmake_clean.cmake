file(REMOVE_RECURSE
  "CMakeFiles/bench_fig3_fence.dir/bench_fig3_fence.cpp.o"
  "CMakeFiles/bench_fig3_fence.dir/bench_fig3_fence.cpp.o.d"
  "bench_fig3_fence"
  "bench_fig3_fence.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_fence.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
