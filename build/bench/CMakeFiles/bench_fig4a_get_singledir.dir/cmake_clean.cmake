file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4a_get_singledir.dir/bench_fig4a_get_singledir.cpp.o"
  "CMakeFiles/bench_fig4a_get_singledir.dir/bench_fig4a_get_singledir.cpp.o.d"
  "bench_fig4a_get_singledir"
  "bench_fig4a_get_singledir.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4a_get_singledir.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
