# Empty dependencies file for bench_fig4a_get_singledir.
# This may be replaced when dependencies are built.
