file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4b_get_multidir.dir/bench_fig4b_get_multidir.cpp.o"
  "CMakeFiles/bench_fig4b_get_multidir.dir/bench_fig4b_get_multidir.cpp.o.d"
  "bench_fig4b_get_multidir"
  "bench_fig4b_get_multidir.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4b_get_multidir.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
