# Empty dependencies file for bench_fig4b_get_multidir.
# This may be replaced when dependencies are built.
