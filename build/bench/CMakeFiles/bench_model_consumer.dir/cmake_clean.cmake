file(REMOVE_RECURSE
  "CMakeFiles/bench_model_consumer.dir/bench_model_consumer.cpp.o"
  "CMakeFiles/bench_model_consumer.dir/bench_model_consumer.cpp.o.d"
  "bench_model_consumer"
  "bench_model_consumer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_model_consumer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
