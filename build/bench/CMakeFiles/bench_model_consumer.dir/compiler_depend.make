# Empty compiler generated dependencies file for bench_model_consumer.
# This may be replaced when dependencies are built.
