file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_modules.dir/bench_table1_modules.cpp.o"
  "CMakeFiles/bench_table1_modules.dir/bench_table1_modules.cpp.o.d"
  "bench_table1_modules"
  "bench_table1_modules.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_modules.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
