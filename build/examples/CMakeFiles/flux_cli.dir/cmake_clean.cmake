file(REMOVE_RECURSE
  "CMakeFiles/flux_cli.dir/flux_cli.cpp.o"
  "CMakeFiles/flux_cli.dir/flux_cli.cpp.o.d"
  "flux_cli"
  "flux_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flux_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
