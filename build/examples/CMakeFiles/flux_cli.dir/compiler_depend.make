# Empty compiler generated dependencies file for flux_cli.
# This may be replaced when dependencies are built.
