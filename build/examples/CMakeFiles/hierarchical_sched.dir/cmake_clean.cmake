file(REMOVE_RECURSE
  "CMakeFiles/hierarchical_sched.dir/hierarchical_sched.cpp.o"
  "CMakeFiles/hierarchical_sched.dir/hierarchical_sched.cpp.o.d"
  "hierarchical_sched"
  "hierarchical_sched.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hierarchical_sched.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
