# Empty dependencies file for hierarchical_sched.
# This may be replaced when dependencies are built.
