file(REMOVE_RECURSE
  "CMakeFiles/io_coscheduling.dir/io_coscheduling.cpp.o"
  "CMakeFiles/io_coscheduling.dir/io_coscheduling.cpp.o.d"
  "io_coscheduling"
  "io_coscheduling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/io_coscheduling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
