# Empty compiler generated dependencies file for io_coscheduling.
# This may be replaced when dependencies are built.
