file(REMOVE_RECURSE
  "CMakeFiles/kap_demo.dir/kap_demo.cpp.o"
  "CMakeFiles/kap_demo.dir/kap_demo.cpp.o.d"
  "kap_demo"
  "kap_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kap_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
