# Empty dependencies file for kap_demo.
# This may be replaced when dependencies are built.
