file(REMOVE_RECURSE
  "CMakeFiles/mpi_bootstrap.dir/mpi_bootstrap.cpp.o"
  "CMakeFiles/mpi_bootstrap.dir/mpi_bootstrap.cpp.o.d"
  "mpi_bootstrap"
  "mpi_bootstrap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mpi_bootstrap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
