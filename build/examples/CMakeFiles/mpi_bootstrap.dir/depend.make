# Empty dependencies file for mpi_bootstrap.
# This may be replaced when dependencies are built.
