file(REMOVE_RECURSE
  "CMakeFiles/threaded_session.dir/threaded_session.cpp.o"
  "CMakeFiles/threaded_session.dir/threaded_session.cpp.o.d"
  "threaded_session"
  "threaded_session.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/threaded_session.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
