# Empty compiler generated dependencies file for threaded_session.
# This may be replaced when dependencies are built.
