file(REMOVE_RECURSE
  "CMakeFiles/wexec_demo.dir/wexec_demo.cpp.o"
  "CMakeFiles/wexec_demo.dir/wexec_demo.cpp.o.d"
  "wexec_demo"
  "wexec_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wexec_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
