# Empty dependencies file for wexec_demo.
# This may be replaced when dependencies are built.
