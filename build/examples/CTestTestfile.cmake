# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example.quickstart "/root/repo/build/examples/quickstart" "8")
set_tests_properties(example.quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;18;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example.mpi_bootstrap "/root/repo/build/examples/mpi_bootstrap" "16" "2")
set_tests_properties(example.mpi_bootstrap PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;19;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example.hierarchical_sched "/root/repo/build/examples/hierarchical_sched")
set_tests_properties(example.hierarchical_sched PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;20;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example.power_capping "/root/repo/build/examples/power_capping")
set_tests_properties(example.power_capping PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;21;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example.wexec_demo "/root/repo/build/examples/wexec_demo" "4")
set_tests_properties(example.wexec_demo PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;22;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example.kap_demo "/root/repo/build/examples/kap_demo" "8" "4" "64" "2")
set_tests_properties(example.kap_demo PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;23;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example.threaded_session "/root/repo/build/examples/threaded_session" "4" "8")
set_tests_properties(example.threaded_session PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;24;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example.flux_cli "/root/repo/build/examples/flux_cli" "-n" "2" "info")
set_tests_properties(example.flux_cli PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;25;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example.io_coscheduling "/root/repo/build/examples/io_coscheduling")
set_tests_properties(example.io_coscheduling PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;26;add_test;/root/repo/examples/CMakeLists.txt;0;")
