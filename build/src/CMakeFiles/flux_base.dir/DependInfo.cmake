
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/base/error.cpp" "src/CMakeFiles/flux_base.dir/base/error.cpp.o" "gcc" "src/CMakeFiles/flux_base.dir/base/error.cpp.o.d"
  "/root/repo/src/base/hex.cpp" "src/CMakeFiles/flux_base.dir/base/hex.cpp.o" "gcc" "src/CMakeFiles/flux_base.dir/base/hex.cpp.o.d"
  "/root/repo/src/base/log.cpp" "src/CMakeFiles/flux_base.dir/base/log.cpp.o" "gcc" "src/CMakeFiles/flux_base.dir/base/log.cpp.o.d"
  "/root/repo/src/base/rng.cpp" "src/CMakeFiles/flux_base.dir/base/rng.cpp.o" "gcc" "src/CMakeFiles/flux_base.dir/base/rng.cpp.o.d"
  "/root/repo/src/hash/sha1.cpp" "src/CMakeFiles/flux_base.dir/hash/sha1.cpp.o" "gcc" "src/CMakeFiles/flux_base.dir/hash/sha1.cpp.o.d"
  "/root/repo/src/json/json.cpp" "src/CMakeFiles/flux_base.dir/json/json.cpp.o" "gcc" "src/CMakeFiles/flux_base.dir/json/json.cpp.o.d"
  "/root/repo/src/msg/codec.cpp" "src/CMakeFiles/flux_base.dir/msg/codec.cpp.o" "gcc" "src/CMakeFiles/flux_base.dir/msg/codec.cpp.o.d"
  "/root/repo/src/msg/message.cpp" "src/CMakeFiles/flux_base.dir/msg/message.cpp.o" "gcc" "src/CMakeFiles/flux_base.dir/msg/message.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
