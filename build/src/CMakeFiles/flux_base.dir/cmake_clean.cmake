file(REMOVE_RECURSE
  "CMakeFiles/flux_base.dir/base/error.cpp.o"
  "CMakeFiles/flux_base.dir/base/error.cpp.o.d"
  "CMakeFiles/flux_base.dir/base/hex.cpp.o"
  "CMakeFiles/flux_base.dir/base/hex.cpp.o.d"
  "CMakeFiles/flux_base.dir/base/log.cpp.o"
  "CMakeFiles/flux_base.dir/base/log.cpp.o.d"
  "CMakeFiles/flux_base.dir/base/rng.cpp.o"
  "CMakeFiles/flux_base.dir/base/rng.cpp.o.d"
  "CMakeFiles/flux_base.dir/hash/sha1.cpp.o"
  "CMakeFiles/flux_base.dir/hash/sha1.cpp.o.d"
  "CMakeFiles/flux_base.dir/json/json.cpp.o"
  "CMakeFiles/flux_base.dir/json/json.cpp.o.d"
  "CMakeFiles/flux_base.dir/msg/codec.cpp.o"
  "CMakeFiles/flux_base.dir/msg/codec.cpp.o.d"
  "CMakeFiles/flux_base.dir/msg/message.cpp.o"
  "CMakeFiles/flux_base.dir/msg/message.cpp.o.d"
  "libflux_base.a"
  "libflux_base.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flux_base.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
