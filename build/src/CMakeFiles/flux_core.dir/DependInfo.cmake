
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/instance.cpp" "src/CMakeFiles/flux_core.dir/core/instance.cpp.o" "gcc" "src/CMakeFiles/flux_core.dir/core/instance.cpp.o.d"
  "/root/repo/src/core/jobspec.cpp" "src/CMakeFiles/flux_core.dir/core/jobspec.cpp.o" "gcc" "src/CMakeFiles/flux_core.dir/core/jobspec.cpp.o.d"
  "/root/repo/src/core/rt_bridge.cpp" "src/CMakeFiles/flux_core.dir/core/rt_bridge.cpp.o" "gcc" "src/CMakeFiles/flux_core.dir/core/rt_bridge.cpp.o.d"
  "/root/repo/src/resource/pool.cpp" "src/CMakeFiles/flux_core.dir/resource/pool.cpp.o" "gcc" "src/CMakeFiles/flux_core.dir/resource/pool.cpp.o.d"
  "/root/repo/src/resource/resource.cpp" "src/CMakeFiles/flux_core.dir/resource/resource.cpp.o" "gcc" "src/CMakeFiles/flux_core.dir/resource/resource.cpp.o.d"
  "/root/repo/src/sched/policy.cpp" "src/CMakeFiles/flux_core.dir/sched/policy.cpp.o" "gcc" "src/CMakeFiles/flux_core.dir/sched/policy.cpp.o.d"
  "/root/repo/src/sched/scheduler.cpp" "src/CMakeFiles/flux_core.dir/sched/scheduler.cpp.o" "gcc" "src/CMakeFiles/flux_core.dir/sched/scheduler.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/flux_rt.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/flux_exec.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/flux_base.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
