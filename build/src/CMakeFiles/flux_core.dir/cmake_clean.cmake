file(REMOVE_RECURSE
  "CMakeFiles/flux_core.dir/core/instance.cpp.o"
  "CMakeFiles/flux_core.dir/core/instance.cpp.o.d"
  "CMakeFiles/flux_core.dir/core/jobspec.cpp.o"
  "CMakeFiles/flux_core.dir/core/jobspec.cpp.o.d"
  "CMakeFiles/flux_core.dir/core/rt_bridge.cpp.o"
  "CMakeFiles/flux_core.dir/core/rt_bridge.cpp.o.d"
  "CMakeFiles/flux_core.dir/resource/pool.cpp.o"
  "CMakeFiles/flux_core.dir/resource/pool.cpp.o.d"
  "CMakeFiles/flux_core.dir/resource/resource.cpp.o"
  "CMakeFiles/flux_core.dir/resource/resource.cpp.o.d"
  "CMakeFiles/flux_core.dir/sched/policy.cpp.o"
  "CMakeFiles/flux_core.dir/sched/policy.cpp.o.d"
  "CMakeFiles/flux_core.dir/sched/scheduler.cpp.o"
  "CMakeFiles/flux_core.dir/sched/scheduler.cpp.o.d"
  "libflux_core.a"
  "libflux_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flux_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
