
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/exec/executor.cpp" "src/CMakeFiles/flux_exec.dir/exec/executor.cpp.o" "gcc" "src/CMakeFiles/flux_exec.dir/exec/executor.cpp.o.d"
  "/root/repo/src/exec/sim_executor.cpp" "src/CMakeFiles/flux_exec.dir/exec/sim_executor.cpp.o" "gcc" "src/CMakeFiles/flux_exec.dir/exec/sim_executor.cpp.o.d"
  "/root/repo/src/exec/thread_executor.cpp" "src/CMakeFiles/flux_exec.dir/exec/thread_executor.cpp.o" "gcc" "src/CMakeFiles/flux_exec.dir/exec/thread_executor.cpp.o.d"
  "/root/repo/src/net/simnet.cpp" "src/CMakeFiles/flux_exec.dir/net/simnet.cpp.o" "gcc" "src/CMakeFiles/flux_exec.dir/net/simnet.cpp.o.d"
  "/root/repo/src/net/topology.cpp" "src/CMakeFiles/flux_exec.dir/net/topology.cpp.o" "gcc" "src/CMakeFiles/flux_exec.dir/net/topology.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/flux_base.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
