file(REMOVE_RECURSE
  "CMakeFiles/flux_exec.dir/exec/executor.cpp.o"
  "CMakeFiles/flux_exec.dir/exec/executor.cpp.o.d"
  "CMakeFiles/flux_exec.dir/exec/sim_executor.cpp.o"
  "CMakeFiles/flux_exec.dir/exec/sim_executor.cpp.o.d"
  "CMakeFiles/flux_exec.dir/exec/thread_executor.cpp.o"
  "CMakeFiles/flux_exec.dir/exec/thread_executor.cpp.o.d"
  "CMakeFiles/flux_exec.dir/net/simnet.cpp.o"
  "CMakeFiles/flux_exec.dir/net/simnet.cpp.o.d"
  "CMakeFiles/flux_exec.dir/net/topology.cpp.o"
  "CMakeFiles/flux_exec.dir/net/topology.cpp.o.d"
  "libflux_exec.a"
  "libflux_exec.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flux_exec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
