file(REMOVE_RECURSE
  "libflux_exec.a"
)
