# Empty compiler generated dependencies file for flux_exec.
# This may be replaced when dependencies are built.
