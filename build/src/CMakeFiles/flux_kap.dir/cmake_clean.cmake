file(REMOVE_RECURSE
  "CMakeFiles/flux_kap.dir/kap/kap.cpp.o"
  "CMakeFiles/flux_kap.dir/kap/kap.cpp.o.d"
  "libflux_kap.a"
  "libflux_kap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flux_kap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
