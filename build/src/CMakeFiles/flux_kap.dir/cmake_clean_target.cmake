file(REMOVE_RECURSE
  "libflux_kap.a"
)
