# Empty dependencies file for flux_kap.
# This may be replaced when dependencies are built.
