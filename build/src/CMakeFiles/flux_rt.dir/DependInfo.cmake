
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/api/handle.cpp" "src/CMakeFiles/flux_rt.dir/api/handle.cpp.o" "gcc" "src/CMakeFiles/flux_rt.dir/api/handle.cpp.o.d"
  "/root/repo/src/api/pmi.cpp" "src/CMakeFiles/flux_rt.dir/api/pmi.cpp.o" "gcc" "src/CMakeFiles/flux_rt.dir/api/pmi.cpp.o.d"
  "/root/repo/src/api/sync_handle.cpp" "src/CMakeFiles/flux_rt.dir/api/sync_handle.cpp.o" "gcc" "src/CMakeFiles/flux_rt.dir/api/sync_handle.cpp.o.d"
  "/root/repo/src/broker/broker.cpp" "src/CMakeFiles/flux_rt.dir/broker/broker.cpp.o" "gcc" "src/CMakeFiles/flux_rt.dir/broker/broker.cpp.o.d"
  "/root/repo/src/broker/module.cpp" "src/CMakeFiles/flux_rt.dir/broker/module.cpp.o" "gcc" "src/CMakeFiles/flux_rt.dir/broker/module.cpp.o.d"
  "/root/repo/src/broker/session.cpp" "src/CMakeFiles/flux_rt.dir/broker/session.cpp.o" "gcc" "src/CMakeFiles/flux_rt.dir/broker/session.cpp.o.d"
  "/root/repo/src/kvs/content_store.cpp" "src/CMakeFiles/flux_rt.dir/kvs/content_store.cpp.o" "gcc" "src/CMakeFiles/flux_rt.dir/kvs/content_store.cpp.o.d"
  "/root/repo/src/kvs/kvs_client.cpp" "src/CMakeFiles/flux_rt.dir/kvs/kvs_client.cpp.o" "gcc" "src/CMakeFiles/flux_rt.dir/kvs/kvs_client.cpp.o.d"
  "/root/repo/src/kvs/kvs_module.cpp" "src/CMakeFiles/flux_rt.dir/kvs/kvs_module.cpp.o" "gcc" "src/CMakeFiles/flux_rt.dir/kvs/kvs_module.cpp.o.d"
  "/root/repo/src/kvs/object_bundle.cpp" "src/CMakeFiles/flux_rt.dir/kvs/object_bundle.cpp.o" "gcc" "src/CMakeFiles/flux_rt.dir/kvs/object_bundle.cpp.o.d"
  "/root/repo/src/kvs/treeobj.cpp" "src/CMakeFiles/flux_rt.dir/kvs/treeobj.cpp.o" "gcc" "src/CMakeFiles/flux_rt.dir/kvs/treeobj.cpp.o.d"
  "/root/repo/src/modules/barrier.cpp" "src/CMakeFiles/flux_rt.dir/modules/barrier.cpp.o" "gcc" "src/CMakeFiles/flux_rt.dir/modules/barrier.cpp.o.d"
  "/root/repo/src/modules/group.cpp" "src/CMakeFiles/flux_rt.dir/modules/group.cpp.o" "gcc" "src/CMakeFiles/flux_rt.dir/modules/group.cpp.o.d"
  "/root/repo/src/modules/hb.cpp" "src/CMakeFiles/flux_rt.dir/modules/hb.cpp.o" "gcc" "src/CMakeFiles/flux_rt.dir/modules/hb.cpp.o.d"
  "/root/repo/src/modules/live.cpp" "src/CMakeFiles/flux_rt.dir/modules/live.cpp.o" "gcc" "src/CMakeFiles/flux_rt.dir/modules/live.cpp.o.d"
  "/root/repo/src/modules/logmod.cpp" "src/CMakeFiles/flux_rt.dir/modules/logmod.cpp.o" "gcc" "src/CMakeFiles/flux_rt.dir/modules/logmod.cpp.o.d"
  "/root/repo/src/modules/mon.cpp" "src/CMakeFiles/flux_rt.dir/modules/mon.cpp.o" "gcc" "src/CMakeFiles/flux_rt.dir/modules/mon.cpp.o.d"
  "/root/repo/src/modules/resvc.cpp" "src/CMakeFiles/flux_rt.dir/modules/resvc.cpp.o" "gcc" "src/CMakeFiles/flux_rt.dir/modules/resvc.cpp.o.d"
  "/root/repo/src/modules/wexec.cpp" "src/CMakeFiles/flux_rt.dir/modules/wexec.cpp.o" "gcc" "src/CMakeFiles/flux_rt.dir/modules/wexec.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/flux_exec.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/flux_base.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
