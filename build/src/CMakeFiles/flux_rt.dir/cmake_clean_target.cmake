file(REMOVE_RECURSE
  "libflux_rt.a"
)
