# Empty dependencies file for flux_rt.
# This may be replaced when dependencies are built.
