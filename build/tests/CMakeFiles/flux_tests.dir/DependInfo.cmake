
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_base.cpp" "tests/CMakeFiles/flux_tests.dir/test_base.cpp.o" "gcc" "tests/CMakeFiles/flux_tests.dir/test_base.cpp.o.d"
  "/root/repo/tests/test_broker.cpp" "tests/CMakeFiles/flux_tests.dir/test_broker.cpp.o" "gcc" "tests/CMakeFiles/flux_tests.dir/test_broker.cpp.o.d"
  "/root/repo/tests/test_exec.cpp" "tests/CMakeFiles/flux_tests.dir/test_exec.cpp.o" "gcc" "tests/CMakeFiles/flux_tests.dir/test_exec.cpp.o.d"
  "/root/repo/tests/test_failure.cpp" "tests/CMakeFiles/flux_tests.dir/test_failure.cpp.o" "gcc" "tests/CMakeFiles/flux_tests.dir/test_failure.cpp.o.d"
  "/root/repo/tests/test_handle.cpp" "tests/CMakeFiles/flux_tests.dir/test_handle.cpp.o" "gcc" "tests/CMakeFiles/flux_tests.dir/test_handle.cpp.o.d"
  "/root/repo/tests/test_instance.cpp" "tests/CMakeFiles/flux_tests.dir/test_instance.cpp.o" "gcc" "tests/CMakeFiles/flux_tests.dir/test_instance.cpp.o.d"
  "/root/repo/tests/test_integration.cpp" "tests/CMakeFiles/flux_tests.dir/test_integration.cpp.o" "gcc" "tests/CMakeFiles/flux_tests.dir/test_integration.cpp.o.d"
  "/root/repo/tests/test_json.cpp" "tests/CMakeFiles/flux_tests.dir/test_json.cpp.o" "gcc" "tests/CMakeFiles/flux_tests.dir/test_json.cpp.o.d"
  "/root/repo/tests/test_kap.cpp" "tests/CMakeFiles/flux_tests.dir/test_kap.cpp.o" "gcc" "tests/CMakeFiles/flux_tests.dir/test_kap.cpp.o.d"
  "/root/repo/tests/test_kvs.cpp" "tests/CMakeFiles/flux_tests.dir/test_kvs.cpp.o" "gcc" "tests/CMakeFiles/flux_tests.dir/test_kvs.cpp.o.d"
  "/root/repo/tests/test_kvs_property.cpp" "tests/CMakeFiles/flux_tests.dir/test_kvs_property.cpp.o" "gcc" "tests/CMakeFiles/flux_tests.dir/test_kvs_property.cpp.o.d"
  "/root/repo/tests/test_modules.cpp" "tests/CMakeFiles/flux_tests.dir/test_modules.cpp.o" "gcc" "tests/CMakeFiles/flux_tests.dir/test_modules.cpp.o.d"
  "/root/repo/tests/test_msg.cpp" "tests/CMakeFiles/flux_tests.dir/test_msg.cpp.o" "gcc" "tests/CMakeFiles/flux_tests.dir/test_msg.cpp.o.d"
  "/root/repo/tests/test_resource.cpp" "tests/CMakeFiles/flux_tests.dir/test_resource.cpp.o" "gcc" "tests/CMakeFiles/flux_tests.dir/test_resource.cpp.o.d"
  "/root/repo/tests/test_resvc_pmi.cpp" "tests/CMakeFiles/flux_tests.dir/test_resvc_pmi.cpp.o" "gcc" "tests/CMakeFiles/flux_tests.dir/test_resvc_pmi.cpp.o.d"
  "/root/repo/tests/test_rt_bridge.cpp" "tests/CMakeFiles/flux_tests.dir/test_rt_bridge.cpp.o" "gcc" "tests/CMakeFiles/flux_tests.dir/test_rt_bridge.cpp.o.d"
  "/root/repo/tests/test_sched.cpp" "tests/CMakeFiles/flux_tests.dir/test_sched.cpp.o" "gcc" "tests/CMakeFiles/flux_tests.dir/test_sched.cpp.o.d"
  "/root/repo/tests/test_session.cpp" "tests/CMakeFiles/flux_tests.dir/test_session.cpp.o" "gcc" "tests/CMakeFiles/flux_tests.dir/test_session.cpp.o.d"
  "/root/repo/tests/test_sha1.cpp" "tests/CMakeFiles/flux_tests.dir/test_sha1.cpp.o" "gcc" "tests/CMakeFiles/flux_tests.dir/test_sha1.cpp.o.d"
  "/root/repo/tests/test_simnet.cpp" "tests/CMakeFiles/flux_tests.dir/test_simnet.cpp.o" "gcc" "tests/CMakeFiles/flux_tests.dir/test_simnet.cpp.o.d"
  "/root/repo/tests/test_threaded.cpp" "tests/CMakeFiles/flux_tests.dir/test_threaded.cpp.o" "gcc" "tests/CMakeFiles/flux_tests.dir/test_threaded.cpp.o.d"
  "/root/repo/tests/test_topology.cpp" "tests/CMakeFiles/flux_tests.dir/test_topology.cpp.o" "gcc" "tests/CMakeFiles/flux_tests.dir/test_topology.cpp.o.d"
  "/root/repo/tests/test_treeobj.cpp" "tests/CMakeFiles/flux_tests.dir/test_treeobj.cpp.o" "gcc" "tests/CMakeFiles/flux_tests.dir/test_treeobj.cpp.o.d"
  "/root/repo/tests/test_wexec.cpp" "tests/CMakeFiles/flux_tests.dir/test_wexec.cpp.o" "gcc" "tests/CMakeFiles/flux_tests.dir/test_wexec.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/flux_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/flux_kap.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/flux_rt.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/flux_exec.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/flux_base.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
