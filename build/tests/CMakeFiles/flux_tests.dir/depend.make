# Empty dependencies file for flux_tests.
# This may be replaced when dependencies are built.
