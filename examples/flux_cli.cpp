// The `flux` utility (paper §IV-A: "A flux utility wraps command line
// access to about two dozen modular Flux sub-commands, and a custom PMI
// library allows MPI run-times to access the Flux KVS...").
//
// Spins up a threaded comms session in-process and executes sub-commands
// against it through the blocking client API:
//
//   $ ./flux_cli [-n brokers] <subcommand> [args...]     one-shot
//   $ ./flux_cli [-n brokers] script                     commands from stdin
//
//   $ ./flux_cli help                                    lists everything
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <iostream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "api/sync_handle.hpp"
#include "broker/session.hpp"
#include "core/jobspec.hpp"
#include "obs/stats_client.hpp"

using namespace flux;

namespace {

using Args = std::vector<std::string>;

struct Cli {
  Session* session = nullptr;
  SyncHandle* h = nullptr;
};

Json parse_value(const std::string& text) {
  auto parsed = Json::parse(text);
  if (parsed.has_value()) return std::move(parsed).value();
  return Json(text);  // bare words are strings
}

int need(const Args& args, std::size_t n, const char* usage) {
  if (args.size() >= n) return 0;
  std::fprintf(stderr, "usage: %s\n", usage);
  return 2;
}

struct Command {
  const char* usage;
  const char* help;
  std::function<int(Cli&, const Args&)> run;
};

// Shared by run/submit: args are <cmd> [nnodes] [json-args] [priority].
// Routes through the full lifecycle pipeline (job.submit -> job-manager).
std::uint64_t submit_job(Cli& c, const Args& a) {
  long long nnodes = 1;
  if (a.size() > 1) {
    try {
      nnodes = std::stoll(a[1]);
    } catch (const std::exception&) {
      throw FluxException(
          Error(errc::inval, "nnodes must be a number, got '" + a[1] +
                                 "' (usage: <cmd> [nnodes] [json-args])"));
    }
  }
  JobSpec spec = JobSpec::app("cli", nnodes, std::chrono::seconds(60));
  spec.command = a[0];
  if (a.size() > 2) spec.args = parse_value(a[2]);
  if (a.size() > 3) spec.priority = std::stoi(a[3]);
  Json payload = Json::object({{"jobspec", spec.to_json()}});
  Message r = c.h->rpc("job.submit", std::move(payload));
  Handle::check(r);  // surface job_rejected / alloc_unsatisfiable as errors
  return static_cast<std::uint64_t>(r.payload().get_int("id"));
}

const std::map<std::string, Command>& commands() {
  static const std::map<std::string, Command> table = {
      // --- session / cmb -----------------------------------------------------
      {"info",
       {"info", "broker identity, size, depth",
        [](Cli& c, const Args&) {
          Message r = c.h->rpc("cmb.info");
          std::printf("%s\n", r.payload().dump_pretty().c_str());
          return r.errnum;
        }}},
      {"ping",
       {"ping <rank>", "ring-addressed round trip to a broker rank",
        [](Cli& c, const Args& a) {
          if (int rc = need(a, 1, "ping <rank>")) return rc;
          Json pong = c.h->ping(static_cast<NodeId>(std::stoul(a[0])));
          std::printf("rank %lld: pong\n",
                      static_cast<long long>(pong.get_int("rank")));
          return 0;
        }}},
      {"lsmod",
       {"lsmod [rank]", "list comms modules loaded on a broker",
        [](Cli& c, const Args& a) {
          auto req = c.h->request("cmb.lsmod");
          if (!a.empty()) req.to(static_cast<NodeId>(std::stoul(a[0])));
          Message r = req.get();
          for (const Json& m : r.payload().at("modules").as_array())
            std::printf("%s\n", m.as_string().c_str());
          return r.errnum;
        }}},
      {"hb",
       {"hb", "current heartbeat epoch",
        [](Cli& c, const Args&) {
          Message r = c.h->rpc("hb.get");
          std::printf("epoch %lld (period %lld us)\n",
                      static_cast<long long>(r.payload().get_int("epoch")),
                      static_cast<long long>(r.payload().get_int("period_us")));
          return r.errnum;
        }}},
      {"live",
       {"live <rank>", "liveness status tracked by a broker",
        [](Cli& c, const Args& a) {
          if (int rc = need(a, 1, "live <rank>")) return rc;
          Message r = c.h->request("live.status")
                          .to(static_cast<NodeId>(std::stoul(a[0])))
                          .get();
          std::printf("%s\n", r.payload().dump_pretty().c_str());
          return r.errnum;
        }}},
      {"event-pub",
       {"event-pub <topic> [json]", "publish an event",
        [](Cli& c, const Args& a) {
          if (int rc = need(a, 1, "event-pub <topic> [json]")) return rc;
          c.h->publish(a[0], a.size() > 1 ? parse_value(a[1]) : Json::object());
          return 0;
        }}},
      {"barrier",
       {"barrier <name> <nprocs>", "enter a collective barrier",
        [](Cli& c, const Args& a) {
          if (int rc = need(a, 2, "barrier <name> <nprocs>")) return rc;
          c.h->barrier(a[0], std::stoll(a[1]));
          std::printf("barrier '%s' complete\n", a[0].c_str());
          return 0;
        }}},
      // --- kvs ---------------------------------------------------------------
      {"kvs-put",
       {"kvs-put <key> <value> [more pairs...]", "put + commit",
        [](Cli& c, const Args& a) {
          if (int rc = need(a, 2, "kvs-put <key> <value> ...")) return rc;
          for (std::size_t i = 0; i + 1 < a.size(); i += 2)
            c.h->kvs_put(a[i], parse_value(a[i + 1]));
          const CommitResult r = c.h->kvs_commit();
          std::printf("committed version %llu\n",
                      static_cast<unsigned long long>(r.version));
          return 0;
        }}},
      {"kvs-get",
       {"kvs-get <key>", "read a committed value",
        [](Cli& c, const Args& a) {
          if (int rc = need(a, 1, "kvs-get <key>")) return rc;
          std::printf("%s\n", c.h->kvs_get(a[0]).dump().c_str());
          return 0;
        }}},
      {"kvs-dir",
       {"kvs-dir [key]", "list a KVS directory",
        [](Cli& c, const Args& a) {
          for (const auto& name : c.h->kvs_list_dir(a.empty() ? "." : a[0]))
            std::printf("%s\n", name.c_str());
          return 0;
        }}},
      {"kvs-unlink",
       {"kvs-unlink <key>", "remove a key (+ commit)",
        [](Cli& c, const Args& a) {
          if (int rc = need(a, 1, "kvs-unlink <key>")) return rc;
          c.h->kvs_unlink(a[0]);
          c.h->kvs_commit();
          return 0;
        }}},
      {"kvs-version",
       {"kvs-version", "current root version",
        [](Cli& c, const Args&) {
          std::printf("%llu\n",
                      static_cast<unsigned long long>(c.h->kvs_get_version()));
          return 0;
        }}},
      {"kvs-wait",
       {"kvs-wait <version>", "block until the root reaches a version",
        [](Cli& c, const Args& a) {
          if (int rc = need(a, 1, "kvs-wait <version>")) return rc;
          c.h->kvs_wait_version(std::stoull(a[0]));
          return 0;
        }}},
      {"kvs-stats",
       {"kvs-stats [rank]", "kvs module statistics",
        [](Cli& c, const Args& a) {
          auto req = c.h->request("kvs.stats");
          if (!a.empty()) req.to(static_cast<NodeId>(std::stoul(a[0])));
          Message r = req.get();
          std::printf("%s\n", r.payload().dump_pretty().c_str());
          return r.errnum;
        }}},
      {"kvs-drop-cache",
       {"kvs-drop-cache <rank>", "drop a broker's slave cache",
        [](Cli& c, const Args& a) {
          if (int rc = need(a, 1, "kvs-drop-cache <rank>")) return rc;
          Message r = c.h->request("kvs.drop_cache")
                          .to(static_cast<NodeId>(std::stoul(a[0])))
                          .get();
          std::printf("evicted %lld\n",
                      static_cast<long long>(r.payload().get_int("evicted")));
          return r.errnum;
        }}},
      // --- jobs ---------------------------------------------------------------
      {"run",
       {"run <cmd> [nnodes] [json-args]", "submit a job and wait for it",
        [](Cli& c, const Args& a) {
          if (int rc = need(a, 1, "run <cmd> [nnodes] [json-args]")) return rc;
          const std::uint64_t id = submit_job(c, a);
          Json wait = Json::object({{"id", static_cast<std::int64_t>(id)}});
          Message r = c.h->rpc("job-manager.wait", std::move(wait));
          std::printf("%s\n", r.payload().dump_pretty().c_str());
          return r.errnum;
        }}},
      {"submit",
       {"submit <cmd> [nnodes] [json-args] [priority]",
        "submit a job, print its id",
        [](Cli& c, const Args& a) {
          if (int rc = need(a, 1, "submit <cmd> [nnodes] [json-args]"))
            return rc;
          std::printf("%llu\n",
                      static_cast<unsigned long long>(submit_job(c, a)));
          return 0;
        }}},
      {"job-wait",
       {"job-wait <id>", "block until a job reaches a terminal state",
        [](Cli& c, const Args& a) {
          if (int rc = need(a, 1, "job-wait <id>")) return rc;
          Json payload = Json::object({{"id", std::stoll(a[0])}});
          Message r = c.h->rpc("job-manager.wait", std::move(payload));
          std::printf("%s\n", r.payload().dump_pretty().c_str());
          return r.errnum;
        }}},
      {"job-state",
       {"job-state <id>", "current lifecycle state of a job",
        [](Cli& c, const Args& a) {
          if (int rc = need(a, 1, "job-state <id>")) return rc;
          Json payload = Json::object({{"id", std::stoll(a[0])}});
          Message r = c.h->rpc("job-manager.state", std::move(payload));
          std::printf("%s\n", r.payload().get_string("state").c_str());
          return r.errnum;
        }}},
      {"cancel",
       {"cancel <id>", "cancel a pending or running job",
        [](Cli& c, const Args& a) {
          if (int rc = need(a, 1, "cancel <id>")) return rc;
          Json payload = Json::object({{"id", std::stoll(a[0])}});
          Message r = c.h->rpc("job-manager.cancel", std::move(payload));
          return r.errnum;
        }}},
      {"jobs",
       {"jobs", "list active jobs known to the job manager",
        [](Cli& c, const Args&) {
          Message r = c.h->rpc("job-manager.list");
          for (const Json& j : r.payload().at("jobs").as_array())
            std::printf("%-8lld %s\n",
                        static_cast<long long>(j.get_int("id")),
                        j.get_string("state").c_str());
          return r.errnum;
        }}},
      {"ps",
       {"ps <rank>", "list running wexec tasks on a broker",
        [](Cli& c, const Args& a) {
          if (int rc = need(a, 1, "ps <rank>")) return rc;
          Message r = c.h->request("wexec.ps")
                          .to(static_cast<NodeId>(std::stoul(a[0])))
                          .get();
          std::printf("%s\n", r.payload().dump_pretty().c_str());
          return r.errnum;
        }}},
      // --- log ---------------------------------------------------------------
      {"log",
       {"log [max]", "tail the session log at the root",
        [](Cli& c, const Args& a) {
          Json query =
              Json::object({{"max", a.empty() ? 20 : std::stoll(a[0])}});
          Message r = c.h->rpc("log.get", std::move(query));
          for (const Json& rec : r.payload().at("records").as_array())
            std::printf("[%lld] rank%lld %s: %s\n",
                        static_cast<long long>(rec.get_int("level")),
                        static_cast<long long>(rec.get_int("rank")),
                        rec.get_string("component").c_str(),
                        rec.get_string("text").c_str());
          return r.errnum;
        }}},
      {"log-append",
       {"log-append <level> <component> <text>", "append a log record",
        [](Cli& c, const Args& a) {
          if (int rc = need(a, 3, "log-append <level> <component> <text>"))
            return rc;
          Json rec = Json::object({{"level", std::stoll(a[0])},
                                   {"component", a[1]},
                                   {"text", a[2]}});
          Message r = c.h->rpc("log.append", std::move(rec));
          return r.errnum;
        }}},
      {"log-dump",
       {"log-dump <rank>", "dump a broker's circular debug buffer",
        [](Cli& c, const Args& a) {
          if (int rc = need(a, 1, "log-dump <rank>")) return rc;
          Message r = c.h->request("log.dump")
                          .to(static_cast<NodeId>(std::stoul(a[0])))
                          .get();
          std::printf("%zu records in ring\n", r.payload().at("records").size());
          return r.errnum;
        }}},
      // --- resources ----------------------------------------------------------
      {"resource-status",
       {"resource-status", "free/allocated/down node counts",
        [](Cli& c, const Args&) {
          Message r = c.h->rpc("resvc.status");
          std::printf("%s\n", r.payload().dump_pretty().c_str());
          return r.errnum;
        }}},
      {"resource-alloc",
       {"resource-alloc <jobid> <nnodes>", "allocate nodes to a job",
        [](Cli& c, const Args& a) {
          if (int rc = need(a, 2, "resource-alloc <jobid> <nnodes>")) return rc;
          Json payload =
              Json::object({{"jobid", a[0]}, {"nnodes", std::stoll(a[1])}});
          Message r = c.h->rpc("resvc.alloc", std::move(payload));
          std::printf("%s\n", r.payload().dump().c_str());
          return r.errnum;
        }}},
      {"resource-free",
       {"resource-free <jobid>", "release a job's nodes",
        [](Cli& c, const Args& a) {
          if (int rc = need(a, 1, "resource-free <jobid>")) return rc;
          Json payload = Json::object({{"jobid", a[0]}});
          Message r = c.h->rpc("resvc.free", std::move(payload));
          return r.errnum;
        }}},
      // --- groups -------------------------------------------------------------
      {"group-join",
       {"group-join <name>", "join a Flux group",
        [](Cli& c, const Args& a) {
          if (int rc = need(a, 1, "group-join <name>")) return rc;
          Json payload =
              Json::object({{"name", a[0]}, {"member", std::string("cli")}});
          Message r = c.h->rpc("group.join", std::move(payload));
          return r.errnum;
        }}},
      {"group-info",
       {"group-info <name>", "group membership",
        [](Cli& c, const Args& a) {
          if (int rc = need(a, 1, "group-info <name>")) return rc;
          Json payload = Json::object({{"name", a[0]}});
          Message r = c.h->rpc("group.info", std::move(payload));
          std::printf("%s\n", r.payload().dump_pretty().c_str());
          return r.errnum;
        }}},
      {"group-list",
       {"group-list", "list all groups",
        [](Cli& c, const Args&) {
          Message r = c.h->rpc("group.list");
          for (const Json& g : r.payload().at("groups").as_array())
            std::printf("%s\n", g.as_string().c_str());
          return r.errnum;
        }}},
      // --- observability ------------------------------------------------------
      {"stats",
       {"stats [service] [all]", "aggregated session-wide counters/histograms",
        [](Cli& c, const Args& a) {
          std::string service = "cmb";
          bool all = false;
          for (const auto& arg : a) {
            if (arg == "all")
              all = true;
            else
              service = arg;
          }
          Json merged = c.h->stats(service, all);
          std::printf("%s (%lld ranks)\n%s", service.c_str(),
                      static_cast<long long>(merged.get_int("ranks")),
                      obs::format_snapshot(merged).c_str());
          const Json& counters = merged.at("counters");
          if (counters.is_object()) {
            const std::int64_t hits = counters.get_int("kvs.cache.hits");
            const std::int64_t misses = counters.get_int("kvs.cache.misses");
            if (hits + misses > 0)
              std::printf("%-36s %11.1f%%\n", "kvs.cache.hit_rate",
                          100.0 * static_cast<double>(hits) /
                              static_cast<double>(hits + misses));
          }
          return 0;
        }}},
      {"trace",
       {"trace <topic> [rank] [json]", "send a traced request, print each hop",
        [](Cli& c, const Args& a) {
          if (int rc = need(a, 1, "trace <topic> [rank] [json]")) return rc;
          auto req = c.h->request(a[0]).trace();
          if (a.size() > 1) req.to(static_cast<NodeId>(std::stoul(a[1])));
          if (a.size() > 2) req.payload(parse_value(a[2]));
          Message r = req.get();
          std::int64_t prev = r.trace.empty() ? 0 : r.trace.front().t_ns;
          for (const TraceHop& hop : r.trace) {
            std::printf("rank %-4u %-6s t=%lldns (+%lldns)\n", hop.rank,
                        std::string(trace_plane_name(hop.plane)).c_str(),
                        static_cast<long long>(hop.t_ns),
                        static_cast<long long>(hop.t_ns - prev));
            prev = hop.t_ns;
          }
          std::printf("%zu hops, errnum %d\n", r.trace.size(), r.errnum);
          return r.errnum;
        }}},
      // --- mon ----------------------------------------------------------------
      {"mon-activate",
       {"mon-activate <sampler> [...]", "activate samplers through the KVS",
        [](Cli& c, const Args& a) {
          if (int rc = need(a, 1, "mon-activate <sampler> ...")) return rc;
          Json samplers = Json::array();
          for (const auto& s : a) samplers.push_back(s);
          c.h->kvs_put("mon.samplers", std::move(samplers));
          c.h->kvs_commit();
          return 0;
        }}},
  };
  return table;
}

int run_command(Cli& cli, const std::string& name, const Args& args) {
  if (name == "help") {
    std::printf("flux sub-commands (%zu):\n", commands().size());
    for (const auto& [cmd_name, cmd] : commands())
      std::printf("  %-44s %s\n", cmd.usage, cmd.help);
    return 0;
  }
  auto it = commands().find(name);
  if (it == commands().end()) {
    std::fprintf(stderr, "flux: unknown sub-command '%s' (try help)\n",
                 name.c_str());
    return 2;
  }
  try {
    return it->second.run(cli, args);
  } catch (const FluxException& e) {
    std::fprintf(stderr, "flux %s: %s\n", name.c_str(), e.what());
    return 1;
  }
}

}  // namespace

int main(int argc, char** argv) {
  std::uint32_t nbrokers = 4;
  int argi = 1;
  if (argi + 1 < argc && std::strcmp(argv[argi], "-n") == 0) {
    nbrokers = static_cast<std::uint32_t>(std::atoi(argv[argi + 1]));
    argi += 2;
  }
  if (argi >= argc) {
    std::fprintf(stderr,
                 "usage: flux_cli [-n brokers] <subcommand> [args...]\n"
                 "       flux_cli [-n brokers] script   (commands on stdin)\n"
                 "       flux_cli help\n");
    return 2;
  }
  const std::string sub = argv[argi++];
  if (sub == "help") {
    Cli no_session;
    return run_command(no_session, "help", {});
  }

  SessionConfig cfg;
  cfg.size = nbrokers;
  auto session = Session::create_threaded(cfg);
  if (!session->wait_online()) {
    std::fprintf(stderr, "flux: session failed to come online\n");
    return 1;
  }
  SyncHandle handle(*session, 0);
  Cli cli{session.get(), &handle};

  if (sub == "script") {
    std::string line;
    int rc = 0;
    while (std::getline(std::cin, line)) {
      if (line.empty() || line[0] == '#') continue;
      std::istringstream is(line);
      std::string name;
      is >> name;
      Args args;
      std::string word;
      while (is >> word) args.push_back(word);
      std::printf("flux> %s\n", line.c_str());
      rc = run_command(cli, name, args);
      if (rc != 0) break;
    }
    return rc;
  }

  Args args;
  for (; argi < argc; ++argi) args.emplace_back(argv[argi]);
  return run_command(cli, sub, args);
}
