// Hierarchical, multilevel job scheduling (paper §III).
//
// Builds a center-wide Flux instance over a resource graph (2 clusters x 4
// racks x 16 nodes), then submits an Uncertainty-Quantification-style
// campaign: nested instance jobs that recursively schedule ensembles of
// small apps with per-level policy specialization — the paper's
// "ensembles of jobs ... becoming increasingly commonplace" workload.
//
//   $ ./hierarchical_sched
#include <cstdio>

#include "core/instance.hpp"
#include "exec/sim_executor.hpp"

using namespace flux;

int main() {
  SimExecutor ex;
  ResourceGraph center =
      ResourceGraph::build_center("center", 2, 4, 16, 16, 32, 350, 100);
  std::printf("resource graph: %zu vertices, %zu nodes, %.0f kW site power\n",
              center.size(), center.find("node").size(),
              center.total_capacity("power") / 1000);

  // Site-wide instance uses EASY backfill (site policy).
  FluxInstance site(ex, "center", center, "easy");

  // A UQ campaign: 4 ensembles, each an instance job running 12 samples.
  std::vector<JobSpec> ensembles;
  for (int e = 0; e < 4; ++e) {
    std::vector<JobSpec> samples;
    for (int s = 0; s < 12; ++s)
      samples.push_back(JobSpec::app(
          "sample" + std::to_string(s), 4,
          std::chrono::milliseconds(5 + (s % 3) * 2), /*power=*/4 * 300));
    // Ensembles specialize scheduling: throughput-oriented first-fit.
    ensembles.push_back(JobSpec::instance("ensemble" + std::to_string(e), 16,
                                          "firstfit", std::move(samples)));
  }
  JobSpec campaign = JobSpec::instance("uq-campaign", 64, "fcfs", ensembles);

  // Plus a classic monolithic job competing at the site level.
  JobSpec hero = JobSpec::app("hero-run", 48, std::chrono::milliseconds(30),
                              48 * 340);

  auto campaign_id = site.submit(campaign);
  auto hero_id = site.submit(hero);
  if (!campaign_id || !hero_id) {
    std::fprintf(stderr, "submission failed\n");
    return 1;
  }

  const TimePoint t0 = ex.now();
  ex.run();
  const double makespan_ms =
      static_cast<double>((ex.now() - t0).count()) / 1e6;

  const auto stats = site.tree_stats();
  std::printf("\ncampaign %s, hero %s\n",
              job_state_name(site.state(*campaign_id)).data(),
              job_state_name(site.state(*hero_id)).data());
  std::printf("hierarchy: %llu instances existed; %llu jobs completed\n",
              static_cast<unsigned long long>(stats.instances),
              static_cast<unsigned long long>(stats.jobs_completed));
  std::printf("makespan: %.2f ms (simulated); scheduler passes: %llu, "
              "scheduler busy: %.2f ms\n",
              makespan_ms, static_cast<unsigned long long>(stats.sched_passes),
              static_cast<double>(stats.sched_busy.count()) / 1e6);
  std::printf("\nthe same workload through ONE centralized scheduler is the "
              "bench_abl_sched_hierarchy comparison\n");
  return site.quiescent() ? 0 : 1;
}
