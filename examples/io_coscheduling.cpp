// Co-scheduling compute AND shared-filesystem bandwidth (paper §I):
//
//   "this paradigm cannot effectively schedule applications that utilize
//    site-wide shared resources such as file systems. Without scheduling
//    file I/O-intensive jobs to both compute resources and file systems,
//    overlapping I/O bursts coming from only a handful of unrelated jobs
//    can disrupt the entire center."
//
// The same checkpoint-heavy workload is scheduled twice over one cluster
// whose parallel filesystem sustains 100 GB/s:
//   (a) traditionally — the scheduler sees only nodes; I/O demands overlap
//       unchecked, and we record the oversubscription of the filesystem;
//   (b) with Flux's generalized resource model — jobs declare io_bw_gbs and
//       the pool admits them only while aggregate demand fits.
//
//   $ ./io_coscheduling
#include <algorithm>
#include <cstdio>
#include <vector>

#include "core/instance.hpp"
#include "exec/sim_executor.hpp"

using namespace flux;

namespace {

struct IoJob {
  std::int64_t nnodes;
  double io_gbs;      // sustained checkpoint bandwidth demand
  Duration walltime;
};

std::vector<IoJob> workload() {
  std::vector<IoJob> jobs;
  // A handful of checkpoint-heavy jobs plus many compute-bound ones.
  for (int i = 0; i < 6; ++i)
    jobs.push_back({8, 45.0, std::chrono::milliseconds(20)});
  for (int i = 0; i < 20; ++i)
    jobs.push_back({2, 2.0, std::chrono::milliseconds(8)});
  return jobs;
}

struct Outcome {
  double peak_io = 0;       // max aggregate demand seen (GB/s)
  double makespan_ms = 0;
  std::uint64_t completed = 0;
};

Outcome run(bool declare_io) {
  SimExecutor ex;
  // One cluster: 64 nodes, fs capacity 100 GB/s.
  ResourceGraph graph =
      ResourceGraph::build_center("center", 1, 4, 16, 16, 32, 350, 100);
  FluxInstance cluster(ex, "cluster", graph, "firstfit");

  // Track the *actual* aggregate I/O demand of running jobs, whether or not
  // the scheduler knows about it.
  double current_io = 0, peak_io = 0;
  std::map<std::uint64_t, double> running_io;
  std::map<std::uint64_t, double> declared_io;
  cluster.scheduler().on_start([&](std::uint64_t id, const Allocation&) {
    current_io += declared_io[id];
    peak_io = std::max(peak_io, current_io);
    running_io[id] = declared_io[id];
  });
  cluster.scheduler().on_end([&](std::uint64_t id) {
    current_io -= running_io[id];
    running_io.erase(id);
  });

  for (const IoJob& job : workload()) {
    JobSpec spec = JobSpec::app("io", job.nnodes, job.walltime);
    if (declare_io) spec.request.io_bw_gbs = job.io_gbs;  // Flux's model
    auto id = cluster.submit(spec);
    if (id) declared_io[*id] = job.io_gbs;
  }
  const TimePoint t0 = ex.now();
  ex.run();
  return Outcome{peak_io,
                 static_cast<double>((ex.now() - t0).count()) / 1e6,
                 cluster.tree_stats().jobs_completed};
}

}  // namespace

int main() {
  const double fs_capacity = 100.0;
  const Outcome naive = run(/*declare_io=*/false);
  const Outcome flux = run(/*declare_io=*/true);

  std::printf("shared parallel filesystem capacity: %.0f GB/s\n\n",
              fs_capacity);
  std::printf("%-28s %14s %16s %10s\n", "scheduler", "peak I/O (GB/s)",
              "oversubscribed", "makespan");
  std::printf("%-28s %14.0f %15.1fx %8.1fms\n",
              "traditional (nodes only)", naive.peak_io,
              naive.peak_io / fs_capacity, naive.makespan_ms);
  std::printf("%-28s %14.0f %15.1fx %8.1fms\n",
              "flux (nodes + io bandwidth)", flux.peak_io,
              flux.peak_io / fs_capacity, flux.makespan_ms);

  const bool reproduced =
      naive.peak_io > fs_capacity && flux.peak_io <= fs_capacity + 1e-9 &&
      naive.completed == flux.completed;
  std::printf(
      "\n%s: the traditional scheduler lets I/O bursts overlap to %.1fx the "
      "file system ('disrupt the entire center', §I); co-scheduling bounds "
      "demand at %.0f%% of capacity, trading %.0f%% extra makespan.\n",
      reproduced ? "REPRODUCED" : "UNEXPECTED",
      naive.peak_io / fs_capacity, 100 * flux.peak_io / fs_capacity,
      100 * (flux.makespan_ms / naive.makespan_ms - 1));
  return reproduced ? 0 : 1;
}
