// Run one KAP (KVS Access Patterns, paper §V) configuration from the
// command line and print every phase metric.
//
//   $ ./kap_demo [nnodes] [procs_per_node] [value_size] [gets] [flags...]
//     flags: redundant  multidir  waitversion
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "kap/kap.hpp"

using namespace flux;
using namespace flux::kap;

int main(int argc, char** argv) {
  KapConfig cfg;
  cfg.nnodes = argc > 1 ? static_cast<std::uint32_t>(std::atoi(argv[1])) : 32;
  cfg.procs_per_node =
      argc > 2 ? static_cast<std::uint32_t>(std::atoi(argv[2])) : 16;
  cfg.value_size = argc > 3 ? static_cast<std::size_t>(std::atoi(argv[3])) : 64;
  cfg.gets_per_consumer =
      argc > 4 ? static_cast<std::uint32_t>(std::atoi(argv[4])) : 4;
  for (int i = 5; i < argc; ++i) {
    if (std::strcmp(argv[i], "redundant") == 0) cfg.redundant_values = true;
    if (std::strcmp(argv[i], "multidir") == 0) cfg.single_directory = false;
    if (std::strcmp(argv[i], "waitversion") == 0)
      cfg.sync = KapConfig::Sync::WaitVersion;
  }

  std::printf("KAP: %u nodes x %u procs = %u testers; vsize=%zu, "
              "access=%u, values=%s, layout=%s, sync=%s\n",
              cfg.nnodes, cfg.procs_per_node, total_procs(cfg),
              cfg.value_size, cfg.gets_per_consumer,
              cfg.redundant_values ? "redundant" : "unique",
              cfg.single_directory ? "single-dir" : "multi-dir(<=128)",
              cfg.sync == KapConfig::Sync::Fence ? "kvs_fence"
                                                 : "kvs_wait_version");

  const KapResult r = run_kap(cfg);
  auto row = [](const char* phase, const PhaseStats& st) {
    std::printf("  %-10s max %10.3f ms   p99 %10.3f ms   p50 %10.3f ms   "
                "mean %10.3f ms\n",
                phase, static_cast<double>(st.max.count()) / 1e6,
                static_cast<double>(st.p99.count()) / 1e6,
                static_cast<double>(st.p50.count()) / 1e6,
                static_cast<double>(st.mean.count()) / 1e6);
  };
  std::printf("\nsession wire-up: %.1f us (simulated)\n",
              static_cast<double>(r.wireup.count()) / 1e3);
  row("producer", r.producer);
  row("sync", r.sync);
  row("consumer", r.consumer);
  std::printf("\nobjects: %llu;  network: %llu msgs, %.2f MB;  faults: %llu; "
              "cache hits/misses: %llu/%llu\n",
              static_cast<unsigned long long>(r.total_objects),
              static_cast<unsigned long long>(r.net_messages),
              static_cast<double>(r.net_bytes) / 1e6,
              static_cast<unsigned long long>(r.faults_issued),
              static_cast<unsigned long long>(r.cache_hits),
              static_cast<unsigned long long>(r.cache_misses));
  std::printf("simulator: %llu events in %.2f s host time\n",
              static_cast<unsigned long long>(r.sim_events), r.host_seconds);
  return 0;
}
