// MPI-style bootstrap over the Flux PMI library (paper §IV-A: "a custom PMI
// library allows MPI run-times to access the Flux KVS and collective barrier
// modules"; §V: the KAP workload models exactly this exchange).
//
// Simulates an "MPI" job of NPROCS ranks across a comms session: every rank
// publishes its business card (endpoint address), fences, then builds its
// connection table by reading all peers — the LIBI/PMI bootstrap pattern.
//
//   $ ./mpi_bootstrap [nnodes] [procs_per_node]
#include <cstdio>
#include <cstdlib>

#include "api/pmi.hpp"
#include "broker/session.hpp"

using namespace flux;

namespace {

struct Shared {
  int finished = 0;
  int procs = 0;
};

Task<void> mpi_rank(Handle* h, int rank, int nprocs, Shared* sh) {
  Pmi pmi(*h, "mpijob", rank, nprocs);
  co_await pmi.init();

  // Publish our business card, as MPICH/Open MPI do through PMI.
  co_await pmi.put("card." + std::to_string(rank),
                   "ib0:node" + std::to_string(h->rank()) + ":port" +
                       std::to_string(40000 + rank));
  co_await pmi.barrier();

  // Build the connection table: read every peer's card.
  int neighbors_ok = 0;
  for (int peer = 0; peer < nprocs; ++peer) {
    std::string card = co_await pmi.get("card." + std::to_string(peer));
    if (!card.empty()) ++neighbors_ok;
  }
  if (neighbors_ok != nprocs)
    throw FluxException(Error(errc::proto, "incomplete connection table"));

  co_await pmi.finalize();
  ++sh->finished;
}

}  // namespace

int main(int argc, char** argv) {
  const std::uint32_t nnodes =
      argc > 1 ? static_cast<std::uint32_t>(std::atoi(argv[1])) : 64;
  const std::uint32_t ppn =
      argc > 2 ? static_cast<std::uint32_t>(std::atoi(argv[2])) : 4;
  const int nprocs = static_cast<int>(nnodes * ppn);

  SimExecutor ex;
  SessionConfig cfg;
  cfg.size = nnodes;
  auto session = Session::create_sim(ex, cfg);
  const Duration wireup = session->run_until_online();
  std::printf("session: %u brokers online in %.1f us\n", nnodes,
              static_cast<double>(wireup.count()) / 1e3);

  Shared sh;
  sh.procs = nprocs;
  std::vector<std::unique_ptr<Handle>> handles;
  handles.reserve(static_cast<std::size_t>(nprocs));
  const TimePoint t0 = ex.now();
  for (int p = 0; p < nprocs; ++p) {
    handles.push_back(session->attach(static_cast<NodeId>(p) % nnodes));
    co_spawn(ex, mpi_rank(handles.back().get(), p, nprocs, &sh),
             "mpi-rank" + std::to_string(p));
  }
  ex.run();

  if (sh.finished != nprocs) {
    std::fprintf(stderr, "bootstrap failed: %d/%d ranks finished\n",
                 sh.finished, nprocs);
    return 1;
  }
  std::printf("bootstrap: %d MPI ranks exchanged business cards in %.2f ms "
              "(simulated)\n",
              nprocs, static_cast<double>((ex.now() - t0).count()) / 1e6);
  std::printf("that is the put/fence/get pattern the paper's KAP benchmark "
              "models (see bench/bench_fig3_fence)\n");
  return 0;
}
