// Dynamic, hierarchical power capping (paper §II Challenge 1: "complex,
// multidimensional resource bounds at any scale", and §III's multilevel
// elasticity: "the elasticity can be expressed for many resources such as
// power").
//
// A site instance hosts two cluster instances. Mid-run the site power cap
// drops (e.g. a demand-response event); the cap cascades down the hierarchy:
// malleable jobs shed power in place, child instances are re-capped
// proportionally, and subsequent scheduling honors the tighter bound.
//
//   $ ./power_capping
#include <cstdio>

#include "core/instance.hpp"
#include "exec/sim_executor.hpp"

using namespace flux;

namespace {

void report(const char* when, FluxInstance& site) {
  std::printf("%-22s site: budget %6.0f W, in use %6.0f W, %s\n", when,
              site.pool().power_budget(), site.pool().power_in_use(),
              site.pool().over_power_budget() ? "OVER BUDGET" : "within budget");
  for (FluxInstance* child : site.children())
    std::printf("%-22s   %-18s budget %6.0f W, in use %6.0f W\n", "",
                child->name().c_str(), child->pool().power_budget(),
                child->pool().power_in_use());
}

}  // namespace

int main() {
  SimExecutor ex;
  // 32 nodes x 350 W = 11.2 kW physical.
  ResourceGraph center =
      ResourceGraph::build_center("center", 2, 2, 8, 16, 32, 350, 100);
  FluxInstance site(ex, "site", center, "fcfs");

  // Two cluster instances, each powered at 4 kW, running malleable work.
  for (int c = 0; c < 2; ++c) {
    std::vector<JobSpec> work;
    for (int j = 0; j < 3; ++j) {
      JobSpec app = JobSpec::app("sim" + std::to_string(j), 4,
                                 std::chrono::milliseconds(50), 1200);
      app.malleable = true;  // accepts in-place power shrink
      work.push_back(app);
    }
    JobSpec cluster =
        JobSpec::instance("cluster" + std::to_string(c), 14, "fcfs", work);
    cluster.request.power_w = 4000;
    cluster.child_power_budget_w = 4000;
    if (!site.submit(cluster)) {
      std::fprintf(stderr, "cluster submission failed\n");
      return 1;
    }
  }

  ex.run_for(std::chrono::milliseconds(10));
  report("steady state:", site);

  // Demand-response: the utility asks the site to drop to 5 kW.
  std::printf("\n>>> site power cap: %.0f W -> 5000 W\n\n",
              site.pool().power_budget());
  site.set_power_cap(5000);
  report("after cap:", site);

  bool ok = !site.pool().over_power_budget();
  for (FluxInstance* child : site.children())
    ok = ok && !child->pool().over_power_budget();
  std::printf("\n%s: every level honors its (new) bound — the parent "
              "bounding rule under dynamic constraints\n",
              ok ? "PASS" : "FAIL");

  ex.run();  // drain remaining work
  return ok ? 0 : 1;
}
