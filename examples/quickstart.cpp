// Quickstart: stand up a simulated Flux comms session, use the KVS, run a
// collective barrier, subscribe to events, and run a job through the full
// lifecycle pipeline with the fluent h.job() builder.
//
//   $ ./quickstart [nnodes]
//
// Everything here runs on the deterministic discrete-event simulator; see
// threaded_session.cpp for the same API on real threads.
#include <cstdio>
#include <cstdlib>

#include "api/handle.hpp"
#include "api/job_client.hpp"
#include "broker/session.hpp"
#include "kvs/kvs_client.hpp"

using namespace flux;

namespace {

Task<void> demo(Handle* h, std::uint32_t size) {
  KvsClient kvs(*h);

  // 1. KVS: write-back puts become visible at commit.
  co_await kvs.put("demo.greeting", "hello from rank 3");
  co_await kvs.put("demo.answer", 42);
  CommitResult commit = co_await kvs.commit();
  std::printf("committed: version=%llu root=%.8s...\n",
              static_cast<unsigned long long>(commit.version),
              commit.rootref.c_str());

  Json greeting = co_await kvs.get("demo.greeting");
  std::printf("kvs_get(demo.greeting) = \"%s\"\n",
              greeting.as_string().c_str());

  // 2. Ring-addressed RPC: ping a specific broker rank.
  Json pong = co_await h->ping(size - 1);
  std::printf("cmb.ping rank %u -> ok\n",
              static_cast<unsigned>(pong.get_int("rank")));

  // 3. Submit a job through the full lifecycle pipeline (ingest -> queue ->
  // schedule -> execute) with stdio captured in the KVS, then wait for it.
  JobHandle jh = co_await h->job().name("qs").command("hostname").submit();
  JobResult r = co_await jh.wait();
  std::printf("job %llu: %lld tasks, success=%s\n",
              static_cast<unsigned long long>(jh.id()),
              static_cast<long long>(r.ntasks), r.success ? "true" : "false");

  // Each task's output landed in the KVS under lwj.<jobid>.<rank>.stdout.
  const std::string out_key = "lwj." + std::to_string(jh.id()) + ".0.stdout";
  Json out0 = co_await kvs.get(out_key);
  std::printf("%s[0] = \"%s\"\n", out_key.c_str(),
              out0.as_array().at(0).as_string().c_str());

  // 4. Collective barrier (trivial here: one participant).
  co_await h->barrier("quickstart.done", 1);
  std::printf("barrier complete\n");
}

}  // namespace

int main(int argc, char** argv) {
  const std::uint32_t nnodes =
      argc > 1 ? static_cast<std::uint32_t>(std::atoi(argv[1])) : 16;

  SimExecutor ex;
  SessionConfig cfg;
  cfg.size = nnodes;
  auto session = Session::create_sim(ex, cfg);
  const Duration wireup = session->run_until_online();
  std::printf("comms session of %u brokers online in %.1f us (sim time)\n",
              nnodes, static_cast<double>(wireup.count()) / 1e3);

  auto handle = session->attach(3 % nnodes);
  int events_seen = 0;
  Subscription setroot_sub =
      handle->subscribe("kvs.setroot", [&](const Message& ev) {
        ++events_seen;
        (void)ev;
      });

  bool failed = false;
  co_spawn(ex, [](Handle* h, std::uint32_t n, bool* fail) -> Task<void> {
    try {
      co_await demo(h, n);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "demo failed: %s\n", e.what());
      *fail = true;
    }
  }(handle.get(), nnodes, &failed));
  ex.run();

  std::printf("observed %d kvs.setroot events\n", events_seen);
  return failed ? 1 : 0;
}
