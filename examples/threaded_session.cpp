// The same Flux API on real reactor threads: one thread per CMB broker,
// messages crossing the binary wire codec, clients on plain std::threads
// using the blocking SyncHandle.
//
//   $ ./threaded_session [nbrokers] [nclients]
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <thread>

#include "api/sync_handle.hpp"
#include "broker/session.hpp"

using namespace flux;

int main(int argc, char** argv) {
  const std::uint32_t nbrokers =
      argc > 1 ? static_cast<std::uint32_t>(std::atoi(argv[1])) : 8;
  const int nclients = argc > 2 ? std::atoi(argv[2]) : 16;

  SessionConfig cfg;
  cfg.size = nbrokers;
  auto session = Session::create_threaded(cfg);
  if (!session->wait_online()) {
    std::fprintf(stderr, "session failed to come online\n");
    return 1;
  }
  std::printf("threaded session: %u broker reactors online\n", nbrokers);

  const auto t0 = std::chrono::steady_clock::now();
  std::atomic<int> ok{0};
  std::vector<std::thread> clients;
  clients.reserve(static_cast<std::size_t>(nclients));
  for (int c = 0; c < nclients; ++c) {
    clients.emplace_back([&session, c, nclients, nbrokers, &ok] {
      SyncHandle h(*session, static_cast<NodeId>(c) % nbrokers);
      // Business-card exchange, PMI style, but fully synchronous.
      h.kvs_put("cards.c" + std::to_string(c),
                Json::object({{"pid", c}, {"broker", h.rank()}}));
      h.kvs_fence("exchange", nclients);
      int seen = 0;
      for (int peer = 0; peer < nclients; ++peer) {
        Json card = h.kvs_get("cards.c" + std::to_string(peer));
        if (card.get_int("pid") == peer) ++seen;
      }
      h.barrier("done", nclients);
      if (seen == nclients) ++ok;
    });
  }
  for (auto& t : clients) t.join();
  const double wall_ms =
      std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() -
                                                t0)
          .count();

  std::printf("%d/%d clients exchanged %d cards each in %.1f ms wall time\n",
              ok.load(), nclients, nclients, wall_ms);
  return ok.load() == nclients ? 0 : 1;
}
