// The job lifecycle pipeline end to end (paper §III + Table I): jobs are
// submitted with the fluent h.job() builder, validated by job-ingest,
// queued and scheduled by job-manager, executed in bulk through wexec with
// standard I/O captured in the KVS, and their status folded back under
// job.<id>. for anyone to watch.
//
//   $ ./wexec_demo [nnodes]
#include <cstdio>
#include <cstdlib>

#include "api/job_client.hpp"
#include "broker/session.hpp"
#include "kvs/kvs_client.hpp"
#include "modules/wexec.hpp"

using namespace flux;

namespace {

Task<void> demo(Handle* h, std::uint32_t nnodes) {
  KvsClient kvs(*h);

  // 1. Bulk hostname across every node, through the full pipeline.
  {
    JobHandle jh = co_await h->job()
                       .name("hostnames")
                       .command("hostname")
                       .nnodes(nnodes)
                       .submit();
    JobResult r = co_await jh.wait();
    std::printf("job %llu: ran 'hostname' on %lld ranks, state=%s\n",
                static_cast<unsigned long long>(jh.id()),
                static_cast<long long>(r.ntasks),
                std::string(job_state_name(r.state)).c_str());
    const std::string base = "lwj." + std::to_string(jh.id()) + ".";
    for (std::uint32_t rank = 0; rank < std::min(nnodes, 4u); ++rank) {
      Json out = co_await kvs.get(base + std::to_string(rank) + ".stdout");
      std::printf("  rank %u stdout: %s\n", rank,
                  out.as_array().at(0).as_string().c_str());
    }
  }

  // 2. A custom analysis tool registered in-process (the paper's tool
  // ecosystem: daemons co-launched with jobs).
  modules::CommandRegistry::instance().add(
      "probe", [](modules::ProcessCtx& p) -> Task<int> {
        // Tools get first-class KVS access through their own handle.
        Json sample = Json::object({{"rank", p.rank()}, {"metric", 0.25}});
        co_await p.kvs().put(
            "tool.probe." + std::to_string(p.rank()), std::move(sample));
        co_await p.kvs().commit();
        p.out("probe done");
        co_return 0;
      });
  {
    JobHandle jh =
        co_await h->job().name("probes").command("probe").nnodes(3).submit();
    JobResult r = co_await jh.wait();
    std::printf("job %llu: tool daemons on 3 ranks, success=%s\n",
                static_cast<unsigned long long>(jh.id()),
                r.success ? "true" : "false");
    auto keys = co_await kvs.list_dir("tool.probe");
    std::printf("  tool data in KVS: %zu entries under tool.probe\n",
                keys.size());
  }

  // 3. Cancellation: spinners killed with SIGTERM, job ends Canceled, and
  // the KVS event log records the whole story.
  {
    JobHandle jh =
        co_await h->job().name("spinners").command("spin").nnodes(nnodes).submit();
    while (co_await jh.state() != JobState::Running)
      co_await h->sleep(std::chrono::microseconds(200));
    co_await jh.cancel();
    JobResult r = co_await jh.wait();
    std::printf("job %llu: spinners canceled; exit histogram: %s\n",
                static_cast<unsigned long long>(jh.id()),
                r.exits.dump().c_str());
    Json log = co_await jh.events();
    std::printf("  event log:");
    for (const Json& e : log.as_array())
      std::printf(" %s", e.get_string("name").c_str());
    std::printf("\n");
  }
}

}  // namespace

int main(int argc, char** argv) {
  const std::uint32_t nnodes =
      argc > 1 ? static_cast<std::uint32_t>(std::atoi(argv[1])) : 8;
  SimExecutor ex;
  SessionConfig cfg;
  cfg.size = nnodes;
  auto session = Session::create_sim(ex, cfg);
  session->run_until_online();
  auto handle = session->attach(nnodes / 2);
  bool failed = false;
  co_spawn(ex, [](Handle* h, std::uint32_t n, bool* fail) -> Task<void> {
    try {
      co_await demo(h, n);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "job demo failed: %s\n", e.what());
      *fail = true;
    }
  }(handle.get(), nnodes, &failed));
  ex.run();
  return failed ? 1 : 0;
}
