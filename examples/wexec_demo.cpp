// Bulk process launch with the wexec comms module (paper Table I: "Remote
// processes can be launched in bulk, monitored, receive signals, and have
// standard I/O captured in the KVS").
//
//   $ ./wexec_demo [nnodes]
#include <cstdio>
#include <cstdlib>

#include "api/handle.hpp"
#include "broker/session.hpp"
#include "kvs/kvs_client.hpp"
#include "modules/wexec.hpp"

using namespace flux;

namespace {

Task<void> demo(Handle* h, std::uint32_t nnodes) {
  KvsClient kvs(*h);

  // 1. Bulk hostname across every rank.
  {
    Json payload = Json::object({{"jobid", "lwj1"},
                                 {"cmd", "hostname"},
                                 {"args", Json::object()},
                                 {"ranks", Json()}});
    Message r = co_await h->request("wexec.run").payload(std::move(payload)).call();
    std::printf("lwj1: ran 'hostname' on %lld ranks, success=%s\n",
                static_cast<long long>(r.payload().get_int("ntasks")),
                r.payload().get_bool("success") ? "true" : "false");
    for (std::uint32_t rank = 0; rank < std::min(nnodes, 4u); ++rank) {
      Json out =
          co_await kvs.get("lwj.lwj1." + std::to_string(rank) + ".stdout");
      std::printf("  rank %u stdout: %s\n", rank,
                  out.as_array().at(0).as_string().c_str());
    }
  }

  // 2. A custom analysis tool registered in-process (the paper's tool
  // ecosystem: daemons co-launched with jobs).
  modules::CommandRegistry::instance().add(
      "probe", [](modules::ProcessCtx& p) -> Task<int> {
        // Tools get first-class KVS access through their own handle.
        Json sample = Json::object({{"rank", p.rank()}, {"metric", 0.25}});
        co_await p.kvs().put(
            "tool.probe." + std::to_string(p.rank()), std::move(sample));
        co_await p.kvs().commit();
        p.out("probe done");
        co_return 0;
      });
  {
    Json payload = Json::object({{"jobid", "lwj2"},
                                 {"cmd", "probe"},
                                 {"args", Json::object()},
                                 {"ranks", Json::array({0, 1, 2})}});
    Message r = co_await h->request("wexec.run").payload(std::move(payload)).call();
    std::printf("lwj2: tool daemons on 3 ranks, success=%s\n",
                r.payload().get_bool("success") ? "true" : "false");
    auto keys = co_await kvs.list_dir("tool.probe");
    std::printf("  tool data in KVS: %zu entries under tool.probe\n",
                keys.size());
  }

  // 3. Signal delivery: spinners killed with SIGTERM.
  {
    Json payload = Json::object({{"jobid", "lwj3"},
                                 {"cmd", "spin"},
                                 {"args", Json::object()},
                                 {"ranks", Json()}});
    auto pending = h->request("wexec.run").payload(std::move(payload)).send();
    co_await h->sleep(std::chrono::milliseconds(2));
    Json kill = Json::object({{"jobid", "lwj3"}, {"signum", 15}});
    co_await h->request("wexec.kill").payload(std::move(kill)).call();
    Message done = co_await pending;
    Handle::check(done);
    std::printf("lwj3: spinners signalled; exit histogram: %s\n",
                done.payload().at("exits").dump().c_str());
  }
}

}  // namespace

int main(int argc, char** argv) {
  const std::uint32_t nnodes =
      argc > 1 ? static_cast<std::uint32_t>(std::atoi(argv[1])) : 8;
  SimExecutor ex;
  SessionConfig cfg;
  cfg.size = nnodes;
  auto session = Session::create_sim(ex, cfg);
  session->run_until_online();
  auto handle = session->attach(nnodes / 2);
  bool failed = false;
  co_spawn(ex, [](Handle* h, std::uint32_t n, bool* fail) -> Task<void> {
    try {
      co_await demo(h, n);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "wexec demo failed: %s\n", e.what());
      *fail = true;
    }
  }(handle.get(), nnodes, &failed));
  ex.run();
  return failed ? 1 : 0;
}
