#!/usr/bin/env bash
# Record the perf trajectory: run the paper-figure benches (Fig. 2 put,
# Fig. 3 fence, Fig. 4a/4b get) plus the codec micro-benchmarks and emit
# machine-readable BENCH_*.json sidecars.
#
#   scripts/bench.sh                          # full grids into bench/results/
#   FLUX_BENCH_QUICK=1 scripts/bench.sh       # smoke grids (CI / verify.sh)
#   scripts/bench.sh /some/dir                # alternate output directory
#
# The fig benches print their tables to stdout and write <name>.metrics.json
# via bench_util's MetricsSidecar; this script collects those under the
# committed BENCH_<name>.json names. bench_micro is google-benchmark and
# writes its own JSON report.
set -euo pipefail
cd "$(dirname "$0")/.."

out="${1:-bench/results}"
mkdir -p "$out"
out="$(cd "$out" && pwd)"
jobs=$(nproc 2>/dev/null || echo 4)

cmake --preset bench
cmake --build --preset bench -j "$jobs" --target \
  bench_fig2_put bench_fig3_fence bench_fig4a_get_singledir \
  bench_fig4b_get_multidir bench_jobs_throughput bench_saturation \
  bench_restart bench_micro

for b in fig2_put fig3_fence fig4a_get_singledir fig4b_get_multidir \
         jobs_throughput saturation restart; do
  echo "=== bench_$b ==="
  FLUX_BENCH_METRICS_DIR="$out" "build-bench/bench/bench_$b"
  mv "$out/$b.metrics.json" "$out/BENCH_$b.json"
done

echo "=== bench_micro (codec / KVS micro-cases) ==="
micro_args=(--benchmark_filter='BM_Json|BM_Message|BM_KvsApplyTransaction'
            --benchmark_out="$out/BENCH_micro_codec.json"
            --benchmark_out_format=json)
if [ "${FLUX_BENCH_QUICK:-0}" = 1 ]; then
  micro_args+=(--benchmark_min_time=0.05)
fi
build-bench/bench/bench_micro "${micro_args[@]}"

echo "bench: sidecars written to $out/"
ls -1 "$out"/BENCH_*.json
