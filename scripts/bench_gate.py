#!/usr/bin/env python3
"""Perf-regression gate: diff fresh BENCH_*.json against a baseline set.

Usage: scripts/bench_gate.py FRESH_DIR [BASELINE_DIR]

Compares every BENCH_<name>.json present in both directories and prints a
one-line verdict per bench. Two formats are understood:

  - bench_util sidecars: {"bench": ..., "rows": [...]} — rows are matched
    by their identity fields (config knobs) and compared metric by metric.
  - google-benchmark reports (BENCH_micro_codec.json): entries matched by
    benchmark name, compared on cpu_time.

Tolerances are per-metric-class, not per-bench: virtual-time metrics are
deterministic (discrete-event sim) and get a tight band; host wall-clock
metrics are noisy on shared CI hardware and get a loose one. Improvements
always pass. Exit status is non-zero iff any metric regresses past its
band — the gate fails loudly, it does not average away a regression.
"""
import json
import math
import os
import sys

# metric field -> (direction, allowed_worsening_factor)
#   "lower"  = smaller is better;  fresh > base * factor  ==> FAIL
#   "higher" = bigger is better;   fresh < base / factor  ==> FAIL
METRICS = {
    # Virtual-time (deterministic sim clock): tight band.
    "wireup_us": ("lower", 1.25),
    "producer_max_ms": ("lower", 1.25),
    "sync_max_ms": ("lower", 1.25),
    "consumer_max_ms": ("lower", 1.25),
    "makespan_ms": ("lower", 1.25),
    "virtual_ms": ("lower", 1.25),
    "alloc_mean_us": ("lower", 1.25),
    "jobs_per_sec": ("higher", 1.25),
    "ops_per_sec_virtual": ("higher", 1.25),
    # Deterministic traffic volume: batching may only shrink it (band
    # absorbs incidental retries).
    "net_messages": ("lower", 1.3),
    # Host wall-clock: noisy, loose band. Still catches the 2x+ cliffs the
    # gate exists for.
    "host_seconds": ("lower", 2.0),
    "ops_per_sec_host": ("higher", 2.0),
    # Persistence costs (bench_restart) are host wall-clock too: the content
    # log lives on the real filesystem, not the sim clock.
    "recover_ms": ("lower", 2.0),
    "restart_to_serving_ms": ("lower", 2.0),
    "gc_pause_ms": ("lower", 2.0),
    "compact_ms": ("lower", 2.0),
}
MICRO_TOL = 2.0  # google-benchmark cpu_time band (host time)


# Config knobs that identify a grid cell. Everything else in a row is a
# measurement (possibly an integer one, like cache_hits) and must not
# contribute to identity, or a shifted counter silently unpairs the rows.
IDENTITY = frozenset({
    "mode", "nnodes", "brokers", "procs_per_node", "value_size",
    "gets_per_consumer", "redundant_values", "single_directory",
    "access_stride", "window", "jobs", "clients", "rounds", "shards",
    "arity", "commits",
})


def identity(row):
    return tuple(sorted((k, v) for k, v in row.items() if k in IDENTITY))


def load(path):
    with open(path) as f:
        return json.load(f)


def compare_sidecar(name, base, fresh):
    base_rows = {identity(r): r for r in base.get("rows", [])}
    fails, worst = [], (0.0, "")
    compared = 0
    for row in fresh.get("rows", []):
        b = base_rows.get(identity(row))
        if b is None:
            continue
        for field, (direction, tol) in METRICS.items():
            if field not in row or field not in b:
                continue
            fv, bv = float(row[field]), float(b[field])
            if not (math.isfinite(fv) and math.isfinite(bv)) or bv <= 0:
                continue
            compared += 1
            ratio = fv / bv if direction == "lower" else bv / fv
            delta = (fv / bv - 1.0) * 100.0
            label = "%s %+.0f%% @%s" % (
                field, delta,
                ",".join("%s=%s" % (k, v) for k, v in identity(row)
                         if k not in ("bench", "quick")))
            if ratio > worst[0]:
                worst = (ratio, label)
            if ratio > tol:
                fails.append("%s (band %.2fx)" % (label, tol))
    return compared, fails, worst


def compare_micro(name, base, fresh):
    base_by_name = {b["name"]: b for b in base.get("benchmarks", [])
                    if b.get("run_type") != "aggregate"}
    fails, worst = [], (0.0, "")
    compared = 0
    for b in fresh.get("benchmarks", []):
        if b.get("run_type") == "aggregate":
            continue
        ref = base_by_name.get(b["name"])
        if ref is None:
            continue
        fv, bv = float(b.get("cpu_time", 0)), float(ref.get("cpu_time", 0))
        if bv <= 0 or fv <= 0:
            continue
        compared += 1
        ratio = fv / bv
        label = "%s cpu_time %+.0f%%" % (b["name"], (ratio - 1.0) * 100.0)
        if ratio > worst[0]:
            worst = (ratio, label)
        if ratio > MICRO_TOL:
            fails.append("%s (band %.2fx)" % (label, MICRO_TOL))
    return compared, fails, worst


def main():
    if len(sys.argv) < 2:
        print(__doc__)
        return 2
    fresh_dir = sys.argv[1]
    base_dir = sys.argv[2] if len(sys.argv) > 2 else "bench/results/baseline"

    failed = False
    names = sorted(n for n in os.listdir(fresh_dir)
                   if n.startswith("BENCH_") and n.endswith(".json"))
    if not names:
        print("bench_gate: no BENCH_*.json in %s" % fresh_dir)
        return 2
    for fname in names:
        name = fname[len("BENCH_"):-len(".json")]
        base_path = os.path.join(base_dir, fname)
        if not os.path.exists(base_path):
            print("gate: %-22s SKIP (no baseline)" % name)
            continue
        base, fresh = load(base_path), load(os.path.join(fresh_dir, fname))
        if "benchmarks" in fresh:
            compared, fails, worst = compare_micro(name, base, fresh)
        else:
            compared, fails, worst = compare_sidecar(name, base, fresh)
        if fails:
            failed = True
            print("gate: %-22s FAIL  %s" % (name, "; ".join(fails)))
        elif compared == 0:
            print("gate: %-22s SKIP (no comparable rows)" % name)
        else:
            print("gate: %-22s OK    (%d metrics, worst %s)"
                  % (name, compared, worst[1]))
    if failed:
        print("bench_gate: REGRESSION — fresh results in %s, baseline in %s"
              % (fresh_dir, base_dir))
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
