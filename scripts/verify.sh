#!/usr/bin/env bash
# Full verification sweep: every preset, plus explicit chaos and DST passes.
#
#   scripts/verify.sh            # default + asan + tsan, then chaos+dst under asan
#   scripts/verify.sh default    # just one preset
#   FLUX_CHAOS_SEEDS=200 scripts/verify.sh   # dial up the seeded schedules
#   FLUX_DST_SEEDS=500 scripts/verify.sh     # dial up the simulation sweeps
#   FLUX_PERSIST_SEEDS=200 scripts/verify.sh # dial up the persistence matrix
#
# The chaos suite (ctest -L chaos) runs seeded fault-injection schedules; on
# failure, gtest SCOPED_TRACE prints "chaos seed N" so a single failing
# schedule can be replayed in isolation:
#
#   FLUX_CHAOS_SEEDS=1 build-asan/tests/flux_chaos_tests \
#     --gtest_filter='Chaos.CrashRestartSeeds'   # then bisect by seed range
#
# The DST suite (ctest -L dst) sweeps the deterministic-simulation harness
# (240 schedules per run at the default widths) through the consistency
# oracle; a failing seed prints in the gtest output and replays with
# FLUX_TEST_SEED=<seed>. See DESIGN.md §5.
set -euo pipefail
cd "$(dirname "$0")/.."

presets=("$@")
[ ${#presets[@]} -eq 0 ] && presets=(default asan tsan)

jobs=$(nproc 2>/dev/null || echo 4)

for p in "${presets[@]}"; do
  echo "=== [$p] configure + build + test ==="
  cmake --preset "$p"
  cmake --build --preset "$p" -j "$jobs"
  # The tsan test preset filters to the threaded suites (^Thread); the sim
  # suites are single-threaded by construction and covered by default/asan.
  ctest --preset "$p"
done

# Explicit chaos pass under the sanitizer that catches lifetime bugs the
# schedules are designed to provoke (use-after-free in callbacks, doubled
# settles). Skipped if asan wasn't among the requested presets.
for p in "${presets[@]}"; do
  if [ "$p" = asan ]; then
    echo "=== [asan] chaos label (seeded fault schedules) ==="
    ASAN_OPTIONS=detect_leaks=0 UBSAN_OPTIONS=print_stacktrace=1 \
      ctest --test-dir build-asan -L chaos --output-on-failure
    echo "=== [asan] dst label (simulation sweeps + oracle + repros) ==="
    ASAN_OPTIONS=detect_leaks=0 UBSAN_OPTIONS=print_stacktrace=1 \
      ctest --test-dir build-asan -L dst --output-on-failure
    echo "=== [asan] jobs label (lifecycle pipeline + crash-mid-dispatch) ==="
    ASAN_OPTIONS=detect_leaks=0 UBSAN_OPTIONS=print_stacktrace=1 \
      ctest --test-dir build-asan -L jobs --output-on-failure
    echo "=== [asan] persist label (durable log recovery + restart matrix) ==="
    ASAN_OPTIONS=detect_leaks=0 UBSAN_OPTIONS=print_stacktrace=1 \
      ctest --test-dir build-asan -L persist --output-on-failure
  fi
done

# Bench smoke: quick-grid run of the Fig. 2/3/4 + saturation + micro benches
# into a scratch dir, so a perf-path regression that crashes or hangs a bench
# is caught here rather than at the next trajectory recording. Only part of
# the full sweep (no preset args). With FLUX_BENCH_GATE=1 (the default) the
# fresh sidecars are then diffed against bench/results/baseline by
# scripts/bench_gate.py — a regression past the tolerance band fails verify.
if [ $# -eq 0 ]; then
  echo "=== bench smoke (FLUX_BENCH_QUICK=1) ==="
  bench_out="$(mktemp -d)"
  FLUX_BENCH_QUICK=1 scripts/bench.sh "$bench_out"
  if [ "${FLUX_BENCH_GATE:-1}" = 1 ]; then
    echo "=== bench gate (fresh quick grid vs bench/results/baseline) ==="
    python3 scripts/bench_gate.py "$bench_out" bench/results/baseline
  fi
fi

echo "verify: all requested presets green"
