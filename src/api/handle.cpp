#include "api/handle.hpp"

#include <algorithm>

#include "broker/session.hpp"

namespace flux {

Handle::Handle(Broker& broker)
    : broker_(broker),
      sub_state_(std::make_shared<detail::SubOwner>()),
      policy_(broker.session().config().rpc) {
  sub_state_->owner = this;
  endpoint_ = broker_.add_endpoint([this](Message msg) { deliver(std::move(msg)); });
}

Handle::~Handle() {
  // Detach outstanding Subscription guards first: after this, a guard that
  // outlives the handle locks the state, sees owner == nullptr, and no-ops
  // instead of calling back into a destroyed object.
  sub_state_->owner = nullptr;
  broker_.remove_endpoint(endpoint_);
}

void Subscription::reset() noexcept {
  if (id_ == 0) return;
  if (auto s = state_.lock(); s && s->owner) s->owner->unsubscribe_impl(id_);
  id_ = 0;
  state_.reset();
}

RetryPolicy RequestBuilder::effective_policy() const noexcept {
  RetryPolicy pol = handle_->retry_policy();
  if (timeout_.count() > 0) pol.timeout = timeout_;
  if (timeout_.count() < 0) pol.timeout = Duration{0};  // .no_retry()
  if (retries_ >= 0) {
    pol.retries = retries_;
    pol.backoff = backoff_;
  }
  return pol;
}

namespace {

/// Retry driver. Deliberately captures the Broker and endpoint id, not the
/// Handle: the handle (and the builder) may be destroyed while an attempt is
/// in flight, but brokers outlive all handles within a session.
Task<void> retry_rpc(Broker& broker, std::uint64_t endpoint, Message req,
                     RetryPolicy pol, Promise<Message> promise) {
  Duration wait = pol.backoff;
  for (int attempt = 0;; ++attempt) {
    try {
      // Each attempt re-sends a fresh copy; the broker assigns a new
      // matchtag per attempt, so a straggler response to a timed-out
      // attempt is dropped as stale rather than matched to a retry.
      Message copy = req;
      Message resp = co_await broker.rpc(endpoint, std::move(copy), pol.timeout);
      promise.set_value(std::move(resp));
      co_return;
    } catch (const FluxException& e) {
      const errc code = e.error().code;
      const bool retryable = code == errc::timeout || code == errc::host_down;
      if (!retryable || attempt >= pol.retries) {
        Error err = e.error();
        if (attempt > 0)
          err.message += " (after " + std::to_string(attempt + 1) + " attempts)";
        promise.set_error(std::move(err));
        co_return;
      }
    }
    if (wait.count() > 0) {
      co_await sleep_for(broker.executor(), wait);
      wait += wait;  // exponential backoff
    }
  }
}

}  // namespace

Future<Message> RequestBuilder::send() {
  Handle& h = *handle_;
  RetryPolicy pol = effective_policy();
  if (pol.has_retries()) {
    Promise<Message> promise(h.executor());
    Future<Message> fut = promise.future();
    co_spawn(h.executor(),
             retry_rpc(h.broker(), h.endpoint(), std::move(req_), pol,
                       std::move(promise)),
             "rpc.retry");
    return fut;
  }
  if (pol.has_timeout())
    return h.broker().rpc(h.endpoint(), std::move(req_), pol.timeout);
  return h.broker().rpc(h.endpoint(), std::move(req_));
}

namespace {
Task<Message> checked(Future<Message> fut) {
  // Awaiting the future throws on transport-level errors (timeout, broker
  // failure); check() covers service-level errnum in the response.
  Message resp = co_await fut;
  Handle::check(resp);
  co_return resp;
}
}  // namespace

Task<Message> RequestBuilder::call() { return checked(send()); }

void Handle::check(const Message& response) {
  if (response.ok()) return;
  throw FluxException(Error(response.error(),
                            response.topic + ": " +
                                response.payload().get_string("errmsg", "error")));
}

void Handle::publish(std::string topic, Json payload) {
  Message ev = Message::event(std::move(topic), std::move(payload));
  broker_.publish(std::move(ev));
}

Subscription Handle::subscribe(std::string topic_prefix,
                               std::function<void(const Message&)> fn) {
  const std::uint64_t id = next_sub_++;
  broker_.subscribe(endpoint_, topic_prefix);
  subs_.push_back(Sub{id, std::move(topic_prefix), std::move(fn)});
  return Subscription{sub_state_, id};
}

void Handle::unsubscribe_impl(std::uint64_t subscription_id) {
  auto it = std::find_if(subs_.begin(), subs_.end(), [&](const Sub& s) {
    return s.id == subscription_id;
  });
  if (it == subs_.end()) return;
  broker_.unsubscribe(endpoint_, it->prefix);
  subs_.erase(it);
}

void Handle::deliver(Message msg) {
  if (!msg.is_event()) return;
  // A handle may hold several subscriptions; dispatch to each matching one.
  // Snapshot ids and re-check membership per callback: callbacks may
  // (un)subscribe reentrantly, and a stale std::function copy could hold
  // dangling captures.
  std::vector<std::uint64_t> ids;
  ids.reserve(subs_.size());
  for (const auto& sub : subs_)
    if (Message::topic_matches(sub.prefix, msg.topic)) ids.push_back(sub.id);
  for (const std::uint64_t id : ids) {
    auto it = std::find_if(subs_.begin(), subs_.end(),
                           [&](const Sub& s) { return s.id == id; });
    if (it != subs_.end()) it->fn(msg);
  }
}

Task<void> Handle::barrier(std::string name, std::int64_t nprocs) {
  // Payloads are built in separate statements throughout this codebase:
  // gcc 12 miscompiles non-empty initializer-list temporaries appearing in
  // the same statement as a co_await ("array used as initializer").
  Json payload = Json::object({{"name", std::move(name)}, {"nprocs", nprocs}});
  (void)co_await request("barrier.enter").payload(std::move(payload)).call();
}

Task<Json> Handle::ping(NodeId target) {
  Json payload = Json::object({{"from", rank()}});
  Message resp =
      co_await request("cmb.ping").to(target).payload(std::move(payload)).call();
  co_return resp.payload();
}

}  // namespace flux
