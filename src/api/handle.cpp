#include "api/handle.hpp"

#include <algorithm>

namespace flux {

Handle::Handle(Broker& broker) : broker_(broker) {
  endpoint_ = broker_.add_endpoint([this](Message msg) { deliver(std::move(msg)); });
}

Handle::~Handle() { broker_.remove_endpoint(endpoint_); }

Future<Message> RequestBuilder::send() {
  Handle& h = *handle_;
  if (timeout_.count() > 0)
    return h.broker().rpc(h.endpoint(), std::move(req_), timeout_);
  return h.broker().rpc(h.endpoint(), std::move(req_));
}

namespace {
Task<Message> checked(Future<Message> fut) {
  // Awaiting the future throws on transport-level errors (timeout, broker
  // failure); check() covers service-level errnum in the response.
  Message resp = co_await fut;
  Handle::check(resp);
  co_return resp;
}
}  // namespace

Task<Message> RequestBuilder::call() { return checked(send()); }

void Handle::check(const Message& response) {
  if (response.errnum == 0) return;
  throw FluxException(Error(static_cast<Errc>(response.errnum),
                            response.topic + ": " +
                                response.payload.get_string("errmsg", "error")));
}

void Handle::publish(std::string topic, Json payload) {
  Message ev = Message::event(std::move(topic), std::move(payload));
  broker_.publish(std::move(ev));
}

std::uint64_t Handle::subscribe(std::string topic_prefix,
                                std::function<void(const Message&)> fn) {
  const std::uint64_t id = next_sub_++;
  broker_.subscribe(endpoint_, topic_prefix);
  subs_.push_back(Subscription{id, std::move(topic_prefix), std::move(fn)});
  return id;
}

void Handle::unsubscribe(std::uint64_t subscription_id) {
  auto it = std::find_if(subs_.begin(), subs_.end(), [&](const Subscription& s) {
    return s.id == subscription_id;
  });
  if (it == subs_.end()) return;
  broker_.unsubscribe(endpoint_, it->prefix);
  subs_.erase(it);
}

void Handle::deliver(Message msg) {
  if (!msg.is_event()) return;
  // A handle may hold several subscriptions; dispatch to each matching one.
  // Copy the list head-first so callbacks may (un)subscribe reentrantly.
  const auto snapshot = subs_;
  for (const auto& sub : snapshot)
    if (Message::topic_matches(sub.prefix, msg.topic)) sub.fn(msg);
}

Task<void> Handle::barrier(std::string name, std::int64_t nprocs) {
  // Payloads are built in separate statements throughout this codebase:
  // gcc 12 miscompiles non-empty initializer-list temporaries appearing in
  // the same statement as a co_await ("array used as initializer").
  Json payload = Json::object({{"name", std::move(name)}, {"nprocs", nprocs}});
  (void)co_await request("barrier.enter").payload(std::move(payload)).call();
}

Task<Json> Handle::ping(NodeId target) {
  Json payload = Json::object({{"from", rank()}});
  Message resp =
      co_await request("cmb.ping").to(target).payload(std::move(payload)).call();
  co_return resp.payload;
}

}  // namespace flux
