// Client handle: a process's connection to its local CMB broker.
//
// In the paper's prototype, "external programs communicate with the CMB over
// a UNIX domain socket"; here a Handle is an endpoint on its broker and every
// submitted request crosses the node-local transport hop (so local operations
// have realistic, size-dependent cost in simulation).
//
// The async API returns awaitable Futures/Tasks; client code is written as
// coroutines spawned on the broker's executor. SyncHandle (sync_handle.hpp)
// wraps this for blocking use from ordinary threads in threaded sessions.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "broker/broker.hpp"
#include "exec/future.hpp"
#include "exec/task.hpp"
#include "msg/message.hpp"

namespace flux {

class RequestBuilder;

class Handle {
 public:
  explicit Handle(Broker& broker);
  ~Handle();
  Handle(const Handle&) = delete;
  Handle& operator=(const Handle&) = delete;

  [[nodiscard]] Broker& broker() noexcept { return broker_; }
  [[nodiscard]] Executor& executor() noexcept { return broker_.executor(); }
  [[nodiscard]] NodeId rank() const noexcept { return broker_.rank(); }
  [[nodiscard]] std::uint32_t size() const noexcept { return broker_.size(); }
  [[nodiscard]] std::uint64_t endpoint() const noexcept { return endpoint_; }

  /// Start a fluent request:
  ///   co_await h.request("kvs.get").payload(j).to(rank).timeout(d).trace()
  /// The builder is awaitable (resolves with the raw response); use .call()
  /// for the checked form that throws FluxException on errnum != 0.
  [[nodiscard]] RequestBuilder request(std::string topic);

  /// Throw FluxException if the response carries an error.
  static void check(const Message& response);

  /// Publish an event into the session.
  void publish(std::string topic, Json payload = Json::object());

  /// Subscribe to an event topic prefix; returns a subscription id.
  std::uint64_t subscribe(std::string topic_prefix,
                          std::function<void(const Message&)> fn);
  void unsubscribe(std::uint64_t subscription_id);

  /// Collective barrier across `nprocs` participants session-wide
  /// (paper Table I: the `barrier` comms module).
  Task<void> barrier(std::string name, std::int64_t nprocs);

  /// Ring-addressed ping of a specific broker rank (cmb.ping).
  Task<Json> ping(NodeId rank);

  /// Sleep on this handle's executor (virtual time under simulation).
  [[nodiscard]] SleepAwaiter sleep(Duration d) {
    return sleep_for(executor(), d);
  }

 private:
  void deliver(Message msg);

  struct Subscription {
    std::uint64_t id;
    std::string prefix;
    std::function<void(const Message&)> fn;
  };

  Broker& broker_;
  std::uint64_t endpoint_ = 0;
  std::uint64_t next_sub_ = 1;
  std::vector<Subscription> subs_;
};

/// Fluent request descriptor. Defaults: route upstream on the tree plane,
/// empty payload, no deadline, no trace. Setters return *this so requests
/// read as one chain; the terminal operation is one of
///  - co_await (or .send()): Future with the raw response (errnum may be set)
///  - co_await .call(): checked response; throws FluxException on errnum
/// Sending happens at the terminal call, so a builder can be prepared and
/// fired later; each builder sends at most once.
class RequestBuilder {
 public:
  /// Destination rank: rides the ring plane (paper: "trivially reached
  /// without routing tables"). kNodeAny restores tree routing.
  RequestBuilder& to(NodeId rank) noexcept {
    req_.nodeid = rank;
    return *this;
  }

  /// Skip the local broker's modules, then route upstream as usual — the
  /// idiom for "ask my parent's view of this service".
  RequestBuilder& upstream() noexcept {
    req_.nodeid = kNodeUpstream;
    return *this;
  }

  RequestBuilder& payload(Json j) {
    req_.payload = std::move(j);
    return *this;
  }

  /// Attach a bulk data frame (travels outside the JSON payload).
  RequestBuilder& data(std::shared_ptr<const std::string> d) noexcept {
    req_.data = std::move(d);
    return *this;
  }

  /// Attach a structured bulk attachment (e.g. a KVS ObjectBundle).
  RequestBuilder& attachment(std::shared_ptr<const Attachment> a) noexcept {
    req_.attachment = std::move(a);
    return *this;
  }

  /// Resolve the future with ETIMEDOUT if no response arrives in time.
  RequestBuilder& timeout(Duration d) noexcept {
    timeout_ = d;
    return *this;
  }

  /// Collect per-broker route stamps; the response's Message::trace holds
  /// the full forward+return path.
  RequestBuilder& trace(bool on = true) noexcept {
    if (on)
      req_.flags |= kMsgFlagTrace;
    else
      req_.flags &= static_cast<std::uint8_t>(~kMsgFlagTrace);
    return *this;
  }

  /// Send now; the future resolves with the raw response message.
  [[nodiscard]] Future<Message> send();

  /// Send now; awaiting throws FluxException if the response carries an
  /// error (including ETIMEDOUT from timeout()).
  [[nodiscard]] Task<Message> call();

  /// `co_await builder` == `co_await builder.send()`.
  [[nodiscard]] Future<Message> operator co_await() { return send(); }

 private:
  friend class Handle;
  RequestBuilder(Handle& h, std::string topic)
      : handle_(&h), req_(Message::request(std::move(topic))) {}

  Handle* handle_;
  Message req_;
  Duration timeout_{0};
};

inline RequestBuilder Handle::request(std::string topic) {
  return RequestBuilder(*this, std::move(topic));
}

}  // namespace flux
