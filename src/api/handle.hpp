// Client handle: a process's connection to its local CMB broker.
//
// In the paper's prototype, "external programs communicate with the CMB over
// a UNIX domain socket"; here a Handle is an endpoint on its broker and every
// submitted request crosses the node-local transport hop (so local operations
// have realistic, size-dependent cost in simulation).
//
// The async API returns awaitable Futures/Tasks; client code is written as
// coroutines spawned on the broker's executor. SyncHandle (sync_handle.hpp)
// wraps this for blocking use from ordinary threads in threaded sessions.
//
// Lifetimes are RAII: subscribe() returns a move-only Subscription guard that
// auto-unsubscribes when destroyed. A guard may safely outlive its Handle —
// it holds weak state, so destruction after the Handle is gone is a no-op
// (no dangling unsubscribe, no dangling callback).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "base/retry.hpp"
#include "broker/broker.hpp"
#include "exec/future.hpp"
#include "exec/task.hpp"
#include "msg/message.hpp"

namespace flux {

class RequestBuilder;
class JobBuilder;
class Handle;

namespace detail {
/// Shared liveness anchor between a Handle and its Subscription guards. The
/// Handle nulls `owner` in its destructor; a guard that outlives the Handle
/// locks the state, sees nullptr, and does nothing.
struct SubOwner {
  Handle* owner = nullptr;
};
}  // namespace detail

/// Move-only RAII guard for an event subscription. Destroying (or reset()ing)
/// it unsubscribes; destroying it after the owning Handle is gone is a no-op.
class [[nodiscard]] Subscription {
 public:
  Subscription() noexcept = default;
  Subscription(Subscription&& o) noexcept
      : state_(std::move(o.state_)), id_(std::exchange(o.id_, 0)) {}
  Subscription& operator=(Subscription&& o) noexcept {
    if (this != &o) {
      reset();
      state_ = std::move(o.state_);
      id_ = std::exchange(o.id_, 0);
    }
    return *this;
  }
  ~Subscription() { reset(); }
  Subscription(const Subscription&) = delete;
  Subscription& operator=(const Subscription&) = delete;

  /// Unsubscribe now (idempotent).
  void reset() noexcept;

  [[nodiscard]] std::uint64_t id() const noexcept { return id_; }
  [[nodiscard]] bool active() const noexcept { return id_ != 0; }
  explicit operator bool() const noexcept { return active(); }

 private:
  friend class Handle;
  Subscription(std::weak_ptr<detail::SubOwner> s, std::uint64_t id) noexcept
      : state_(std::move(s)), id_(id) {}

  std::weak_ptr<detail::SubOwner> state_;
  std::uint64_t id_ = 0;
};

class Handle {
 public:
  explicit Handle(Broker& broker);
  ~Handle();
  Handle(const Handle&) = delete;
  Handle& operator=(const Handle&) = delete;

  [[nodiscard]] Broker& broker() noexcept { return broker_; }
  [[nodiscard]] Executor& executor() noexcept { return broker_.executor(); }
  [[nodiscard]] NodeId rank() const noexcept { return broker_.rank(); }
  [[nodiscard]] std::uint32_t size() const noexcept { return broker_.size(); }
  [[nodiscard]] std::uint64_t endpoint() const noexcept { return endpoint_; }

  /// Start a fluent request:
  ///   co_await h.request("kvs.get").payload(j).to(rank).timeout(d).trace()
  /// The builder is awaitable (resolves with the raw response); use .call()
  /// for the checked form that throws FluxException on an error response.
  [[nodiscard]] RequestBuilder request(std::string topic);

  /// Start a fluent job submission (api/job_client.hpp):
  ///   JobHandle jh = co_await h.job().command("echo").nnodes(2).submit();
  [[nodiscard]] JobBuilder job();

  /// Throw FluxException if the response carries an error.
  static void check(const Message& response);

  /// This handle's default RPC policy. Initialized from the session-wide
  /// default (SessionConfig::rpc); per-request .timeout()/.retry() override.
  [[nodiscard]] const RetryPolicy& retry_policy() const noexcept { return policy_; }
  void set_retry_policy(RetryPolicy p) noexcept { policy_ = p; }

  /// Publish an event into the session.
  void publish(std::string topic, Json payload = Json::object());

  /// Subscribe to an event topic prefix. The returned guard owns the
  /// subscription: it auto-unsubscribes on destruction.
  Subscription subscribe(std::string topic_prefix,
                         std::function<void(const Message&)> fn);

  /// Deprecated: raw-id unsubscribe. Prefer holding the Subscription guard
  /// from subscribe() and letting it reset()/destruct.
  [[deprecated("hold the Subscription guard instead")]]
  void unsubscribe(std::uint64_t subscription_id) {
    unsubscribe_impl(subscription_id);
  }

  /// Collective barrier across `nprocs` participants session-wide
  /// (paper Table I: the `barrier` comms module).
  Task<void> barrier(std::string name, std::int64_t nprocs);

  /// Ring-addressed ping of a specific broker rank (cmb.ping).
  Task<Json> ping(NodeId rank);

  /// Sleep on this handle's executor (virtual time under simulation).
  [[nodiscard]] SleepAwaiter sleep(Duration d) {
    return sleep_for(executor(), d);
  }

 private:
  friend class Subscription;
  void deliver(Message msg);
  void unsubscribe_impl(std::uint64_t subscription_id);

  struct Sub {
    std::uint64_t id;
    std::string prefix;
    std::function<void(const Message&)> fn;
  };

  Broker& broker_;
  std::uint64_t endpoint_ = 0;
  std::uint64_t next_sub_ = 1;
  std::vector<Sub> subs_;
  std::shared_ptr<detail::SubOwner> sub_state_;
  RetryPolicy policy_;
};

/// Fluent request descriptor. Defaults: route upstream on the tree plane,
/// empty payload, the handle's default retry policy, no trace. Setters return
/// *this so requests read as one chain; the terminal operation is one of
///  - co_await (or .send()): Future with the raw response (errnum may be set)
///  - co_await .call(): checked response; throws FluxException on errnum
/// Sending happens at the terminal call, so a builder can be prepared and
/// fired later; each builder sends at most once.
class RequestBuilder {
 public:
  /// Destination rank: rides the ring plane (paper: "trivially reached
  /// without routing tables"). kNodeAny restores tree routing.
  RequestBuilder& to(NodeId rank) noexcept {
    req_.nodeid = rank;
    return *this;
  }

  /// Skip the local broker's modules, then route upstream as usual — the
  /// idiom for "ask my parent's view of this service".
  RequestBuilder& upstream() noexcept {
    req_.nodeid = kNodeUpstream;
    return *this;
  }

  RequestBuilder& payload(Json j) {
    req_.set_payload(std::move(j));
    return *this;
  }

  /// Attach a bulk data frame (travels outside the JSON payload).
  RequestBuilder& data(std::shared_ptr<const std::string> d) noexcept {
    req_.set_data(std::move(d));
    return *this;
  }

  /// Attach a structured bulk attachment (e.g. a KVS ObjectBundle).
  RequestBuilder& attachment(std::shared_ptr<const Attachment> a) noexcept {
    req_.set_attachment(std::move(a));
    return *this;
  }

  /// Per-attempt deadline: resolve with errc::timeout if no response in
  /// time. Overrides the handle/session default policy's timeout.
  RequestBuilder& timeout(Duration d) noexcept {
    timeout_ = d;
    return *this;
  }

  /// Retry a timed-out (or host-down) attempt up to `n` more times, waiting
  /// `backoff` before the first retry and doubling it each retry. Needs a
  /// deadline: pairs with .timeout() or the session default timeout.
  /// Overrides the handle/session default policy's retry settings.
  RequestBuilder& retry(int n, Duration backoff = std::chrono::milliseconds(1)) noexcept {
    retries_ = n;
    backoff_ = backoff;
    return *this;
  }

  /// Disable retries and the default deadline for this request.
  RequestBuilder& no_retry() noexcept {
    retries_ = 0;
    timeout_ = Duration{-1};
    return *this;
  }

  /// Collect per-broker route stamps; the response's Message::trace holds
  /// the full forward+return path.
  RequestBuilder& trace(bool on = true) noexcept {
    if (on)
      req_.flags |= kMsgFlagTrace;
    else
      req_.flags &= static_cast<std::uint8_t>(~kMsgFlagTrace);
    return *this;
  }

  /// Send now; the future resolves with the raw response message.
  [[nodiscard]] Future<Message> send();

  /// Send now; awaiting throws FluxException if the response carries an
  /// error (including errc::timeout after the configured retries).
  [[nodiscard]] Task<Message> call();

  /// `co_await builder` == `co_await builder.send()`.
  [[nodiscard]] Future<Message> operator co_await() { return send(); }

 private:
  friend class Handle;
  RequestBuilder(Handle& h, std::string topic)
      : handle_(&h), req_(Message::request(std::move(topic))) {}

  /// The policy this request will run under: the handle default overlaid
  /// with this builder's .timeout()/.retry()/.no_retry() calls.
  [[nodiscard]] RetryPolicy effective_policy() const noexcept;

  Handle* handle_;
  Message req_;
  Duration timeout_{0};   // 0 = inherit; <0 = explicitly none
  int retries_ = -1;      // -1 = inherit
  Duration backoff_{0};
};

inline RequestBuilder Handle::request(std::string topic) {
  return RequestBuilder(*this, std::move(topic));
}

}  // namespace flux
