// Client handle: a process's connection to its local CMB broker.
//
// In the paper's prototype, "external programs communicate with the CMB over
// a UNIX domain socket"; here a Handle is an endpoint on its broker and every
// submitted request crosses the node-local transport hop (so local operations
// have realistic, size-dependent cost in simulation).
//
// The async API returns awaitable Futures/Tasks; client code is written as
// coroutines spawned on the broker's executor. SyncHandle (sync_handle.hpp)
// wraps this for blocking use from ordinary threads in threaded sessions.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "broker/broker.hpp"
#include "exec/future.hpp"
#include "exec/task.hpp"
#include "msg/message.hpp"

namespace flux {

struct RpcOptions {
  /// Destination: kNodeAny routes upstream on the tree; kNodeUpstream skips
  /// the local broker's modules; a concrete rank rides the ring plane.
  NodeId nodeid = kNodeAny;
  /// Optional bulk data frame.
  std::shared_ptr<const std::string> data;
  /// Zero means no timeout.
  Duration timeout{0};
};

class Handle {
 public:
  explicit Handle(Broker& broker);
  ~Handle();
  Handle(const Handle&) = delete;
  Handle& operator=(const Handle&) = delete;

  [[nodiscard]] Broker& broker() noexcept { return broker_; }
  [[nodiscard]] Executor& executor() noexcept { return broker_.executor(); }
  [[nodiscard]] NodeId rank() const noexcept { return broker_.rank(); }
  [[nodiscard]] std::uint32_t size() const noexcept { return broker_.size(); }
  [[nodiscard]] std::uint64_t endpoint() const noexcept { return endpoint_; }

  /// Issue a request; the future resolves with the raw response (which may
  /// carry errnum != 0 — see check()).
  Future<Message> rpc(std::string topic, Json payload = Json::object(),
                      RpcOptions opts = {});

  /// Await the response and throw FluxException if errnum != 0.
  Task<Message> rpc_check(std::string topic, Json payload = Json::object(),
                          RpcOptions opts = {});

  /// Throw FluxException if the response carries an error.
  static void check(const Message& response);

  /// Publish an event into the session.
  void publish(std::string topic, Json payload = Json::object());

  /// Subscribe to an event topic prefix; returns a subscription id.
  std::uint64_t subscribe(std::string topic_prefix,
                          std::function<void(const Message&)> fn);
  void unsubscribe(std::uint64_t subscription_id);

  /// Collective barrier across `nprocs` participants session-wide
  /// (paper Table I: the `barrier` comms module).
  Task<void> barrier(std::string name, std::int64_t nprocs);

  /// Ring-addressed ping of a specific broker rank (cmb.ping).
  Task<Json> ping(NodeId rank);

  /// Sleep on this handle's executor (virtual time under simulation).
  [[nodiscard]] SleepAwaiter sleep(Duration d) {
    return sleep_for(executor(), d);
  }

 private:
  void deliver(Message msg);

  struct Subscription {
    std::uint64_t id;
    std::string prefix;
    std::function<void(const Message&)> fn;
  };

  Broker& broker_;
  std::uint64_t endpoint_ = 0;
  std::uint64_t next_sub_ = 1;
  std::vector<Subscription> subs_;
};

}  // namespace flux
