#include "api/job_client.hpp"

#include "kvs/kvs_client.hpp"

namespace flux {

JobBuilder Handle::job() { return JobBuilder(*this); }

std::string JobHandle::kvs_dir() const {
  return "job." + std::to_string(id_);
}

Task<JobHandle> JobBuilder::submit() {
  const Json payload = Json::object({{"jobspec", spec_.to_json()}});
  Message resp =
      co_await h_->request("job.submit").payload(payload).call();
  co_return JobHandle(*h_, static_cast<std::uint64_t>(
                               resp.payload().get_int("id", 0)));
}

Task<JobResult> JobHandle::wait() {
  const Json payload =
      Json::object({{"id", static_cast<std::int64_t>(id_)}});
  Message resp =
      co_await h_->request("job-manager.wait").payload(payload).call();
  JobResult r;
  r.id = static_cast<std::uint64_t>(resp.payload().get_int("id", 0));
  r.state = job_state_from_name(resp.payload().get_string("state"));
  r.success = resp.payload().get_bool("success", false);
  r.exits = resp.payload().contains("exits") ? resp.payload().at("exits")
                                             : Json::object();
  r.ntasks = resp.payload().get_int("ntasks", 0);
  co_return r;
}

Task<void> JobHandle::cancel() {
  const Json payload =
      Json::object({{"id", static_cast<std::int64_t>(id_)}});
  (void)co_await h_->request("job-manager.cancel").payload(payload).call();
}

Task<JobState> JobHandle::state() {
  const Json payload =
      Json::object({{"id", static_cast<std::int64_t>(id_)}});
  Message resp =
      co_await h_->request("job-manager.state").payload(payload).call();
  co_return job_state_from_name(resp.payload().get_string("state"));
}

Task<Json> JobHandle::events() {
  KvsClient kvs(*h_);
  Json log = co_await kvs.get(kvs_dir() + ".eventlog");
  co_return log;
}

Task<Message> wexec_run(Handle& h, std::string jobid, std::string cmd,
                        Json args, Json ranks) {
  const Json payload = Json::object({{"jobid", std::move(jobid)},
                                     {"cmd", std::move(cmd)},
                                     {"args", std::move(args)},
                                     {"ranks", std::move(ranks)}});
  Message resp = co_await h.request("wexec.run").payload(payload).call();
  co_return resp;
}

}  // namespace flux
