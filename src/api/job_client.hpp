// Fluent job client: the public face of the job lifecycle pipeline.
//
//   JobHandle jh = co_await h.job()
//                      .name("hello")
//                      .command("echo", Json::object({{"text", "hi"}}))
//                      .nnodes(2)
//                      .priority(10)
//                      .submit();
//   JobResult r = co_await jh.wait();
//
// submit() routes through the job module (first-hop validation, root jobid
// assignment) into the job-manager; the returned JobHandle is a light value
// (handle pointer + jobid) whose methods are RPCs — .wait() parks until the
// job reaches a terminal state, .cancel() works in any phase, .state() and
// .events() read the authoritative machine / KVS event log. Errors surface
// as FluxException with the job-domain errc codes (job_rejected,
// alloc_unsatisfiable, job_unknown, ...), the PR 3 typed-error convention.
#pragma once

#include <cstdint>
#include <string>

#include "api/handle.hpp"
#include "core/jobspec.hpp"

namespace flux {

/// Terminal outcome of a job (the job-manager.wait payload).
struct JobResult {
  std::uint64_t id = 0;
  JobState state = JobState::Pending;
  bool success = false;
  Json exits = Json::object();  ///< exit code -> task count
  std::int64_t ntasks = 0;
};

/// A submitted job. Light, copyable; all methods are RPCs on the handle the
/// job was submitted through.
class JobHandle {
 public:
  JobHandle() = default;
  JobHandle(Handle& h, std::uint64_t id) : h_(&h), id_(id) {}

  [[nodiscard]] std::uint64_t id() const noexcept { return id_; }
  [[nodiscard]] bool valid() const noexcept { return h_ != nullptr && id_ != 0; }
  /// The job's KVS directory ("job.<id>").
  [[nodiscard]] std::string kvs_dir() const;

  /// Park until the job reaches a terminal state; returns the result.
  [[nodiscard]] Task<JobResult> wait();
  /// Request cancellation (kills running tasks with SIGTERM).
  Task<void> cancel();
  /// The job's current state.
  [[nodiscard]] Task<JobState> state();
  /// The committed KVS event log (array of {t, name, ...} entries).
  [[nodiscard]] Task<Json> events();

 private:
  Handle* h_ = nullptr;
  std::uint64_t id_ = 0;
};

/// Fluent submission builder; h.job() starts one. Setters return *this;
/// submit() is the terminal operation (at most once per builder).
class JobBuilder {
 public:
  /// Start from a complete JobSpec (overwrites prior setter calls).
  JobBuilder& spec(JobSpec js) {
    spec_ = std::move(js);
    return *this;
  }
  JobBuilder& name(std::string n) {
    spec_.name = std::move(n);
    return *this;
  }
  /// wexec CommandRegistry command + args. Unset means the synthetic
  /// workload (built-in "sleep" for the walltime).
  JobBuilder& command(std::string cmd, Json args = Json::object()) {
    spec_.command = std::move(cmd);
    spec_.args = std::move(args);
    return *this;
  }
  JobBuilder& nnodes(std::int64_t n) {
    spec_.request.nnodes = n;
    return *this;
  }
  JobBuilder& walltime(Duration d) {
    spec_.walltime = d;
    return *this;
  }
  JobBuilder& priority(int p) {
    spec_.priority = p;
    return *this;
  }

  /// Submit; resolves with the JobHandle once the root accepted the job.
  /// Throws FluxException(job_rejected / alloc_unsatisfiable / ...) on
  /// refusal.
  [[nodiscard]] Task<JobHandle> submit();

 private:
  friend class Handle;
  explicit JobBuilder(Handle& h) : h_(&h) {
    spec_.name = "job";
    spec_.request.nnodes = 1;
  }

  Handle* h_;
  JobSpec spec_;
};

/// Deprecated direct-to-wexec submission path (pre-job-pipeline API): runs
/// `cmd` under `jobid` on `ranks` (all ranks when null) and resolves with
/// the raw wexec.run response. Bypasses ingest validation, queueing,
/// scheduling, and the job.<id>.* KVS fold-back.
[[deprecated("use h.job().command(...).submit() instead")]]
Task<Message> wexec_run(Handle& h, std::string jobid, std::string cmd,
                        Json args = Json::object(), Json ranks = Json());

}  // namespace flux
