#include "api/pmi.hpp"

namespace flux {

Pmi::Pmi(Handle& h, std::string kvsname, int rank, int size)
    : h_(h), kvs_(h), kvsname_(std::move(kvsname)), rank_(rank), size_(size) {}

std::string Pmi::fence_name() {
  return kvsname_ + "#pmi." + std::to_string(generation_++);
}

Task<void> Pmi::init() {
  Json card = Json::object({{"broker_rank", h_.rank()}});
  co_await kvs_.put(kvsname_ + ".proc." + std::to_string(rank_),
                    std::move(card));
  co_await kvs_.fence(fence_name(), size_);
  initialized_ = true;
}

Task<void> Pmi::put(std::string key, std::string value) {
  co_await kvs_.put(kvsname_ + ".kvs." + std::move(key), std::move(value));
}

Task<std::string> Pmi::get(std::string key) {
  Json v = co_await kvs_.get(kvsname_ + ".kvs." + std::move(key));
  co_return v.as_string();
}

Task<void> Pmi::barrier() { co_await kvs_.fence(fence_name(), size_); }

Task<void> Pmi::finalize() {
  co_await kvs_.fence(fence_name(), size_);
  initialized_ = false;
}

}  // namespace flux
