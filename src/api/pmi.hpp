// PMI-1-style process management interface over the Flux KVS + barrier.
//
// Paper §IV-A: "a custom PMI library allows MPI run-times to access the Flux
// KVS and collective barrier modules over this transport." This is that
// library: the put / barrier(=fence) / get exchange MPI implementations use
// to trade business cards during bootstrap — also exactly the access pattern
// KAP models (§V).
#pragma once

#include <cstdint>
#include <string>

#include "api/handle.hpp"
#include "kvs/kvs_client.hpp"

namespace flux {

class Pmi {
 public:
  /// One Pmi per process; `rank`/`size` are the *job's* process ranks (not
  /// broker ranks). All processes of one job share `kvsname`.
  Pmi(Handle& h, std::string kvsname, int rank, int size);

  [[nodiscard]] int rank() const noexcept { return rank_; }
  [[nodiscard]] int size() const noexcept { return size_; }
  [[nodiscard]] const std::string& kvsname() const noexcept { return kvsname_; }
  [[nodiscard]] bool initialized() const noexcept { return initialized_; }

  /// PMI_Init: announce ourselves and synchronize job start.
  Task<void> init();
  /// PMI_KVS_Put: stage a key under the job's KVS namespace.
  Task<void> put(std::string key, std::string value);
  /// PMI_KVS_Get: read a (committed) key from the job's namespace.
  Task<std::string> get(std::string key);
  /// PMI_Barrier: collective fence — after it returns, every put made by any
  /// process before its barrier call is visible everywhere.
  Task<void> barrier();
  /// PMI_Finalize.
  Task<void> finalize();

 private:
  [[nodiscard]] std::string fence_name();

  Handle& h_;
  KvsClient kvs_;
  std::string kvsname_;
  int rank_;
  int size_;
  int generation_ = 0;
  bool initialized_ = false;
};

}  // namespace flux
