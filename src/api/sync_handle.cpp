#include "api/sync_handle.hpp"

#include <cassert>

#include "exec/thread_executor.hpp"
#include "obs/stats_client.hpp"

namespace flux {

namespace {
void assert_not_reactor(Executor& ex) {
  auto* tex = dynamic_cast<ThreadExecutor*>(&ex);
  assert((tex == nullptr || !tex->in_loop_thread()) &&
         "SyncHandle used from its own reactor thread");
  (void)tex;
}
}  // namespace

template <class T>
T SyncHandle::run(std::function<Task<T>()> make) {
  Executor& ex = session_.executor(rank_);
  assert_not_reactor(ex);
  Promise<T> promise(ex);
  ex.post([&ex, make = std::move(make), promise] {
    co_spawn(ex,
             [](std::function<Task<T>()> factory, Promise<T> p) -> Task<void> {
               try {
                 p.set_value(co_await factory());
               } catch (const FluxException& e) {
                 p.set_error(e.error());
               } catch (const std::exception& e) {
                 p.set_error(Error(errc::proto, e.what()));
               }
             }(std::move(make), promise),
             "sync-op");
  });
  return promise.future().wait();
}

SyncHandle::SyncHandle(Session& session, NodeId rank)
    : session_(session), rank_(rank) {
  Executor& ex = session_.executor(rank_);
  assert_not_reactor(ex);
  Promise<Unit> done(ex);
  ex.post([this, done] {
    handle_ = std::make_unique<Handle>(session_.broker(rank_));
    kvs_ = std::make_unique<KvsClient>(*handle_);
    done.set_value(Unit{});
  });
  done.future().wait();
}

SyncHandle::~SyncHandle() {
  Executor& ex = session_.executor(rank_);
  Promise<Unit> done(ex);
  ex.post([this, done] {
    kvs_.reset();
    handle_.reset();
    done.set_value(Unit{});
  });
  done.future().wait();
}

Message SyncHandle::Request::get() {
  return h_->run<Message>(
      [h = h_, topic = std::move(topic_), payload = std::move(payload_),
       nodeid = nodeid_, data = std::move(data_), timeout = timeout_,
       retries = retries_, backoff = backoff_,
       trace = trace_]() mutable -> Task<Message> {
    RequestBuilder b = h->async().request(std::move(topic));
    b.payload(std::move(payload)).to(nodeid).data(std::move(data)).trace(trace);
    // Replicate this Request's overrides onto the builder; sentinel values
    // (timeout 0 / retries -1) mean "inherit" in both places.
    if (timeout.count() != 0) b.timeout(timeout);
    if (retries >= 0) b.retry(retries, backoff);
    Message resp = co_await b.send();
    co_return resp;
  });
}

Message SyncHandle::Request::call() {
  Message resp = get();
  Handle::check(resp);
  return resp;
}

Message SyncHandle::rpc(std::string topic, Json payload) {
  return request(std::move(topic)).payload(std::move(payload)).get();
}

Json SyncHandle::ping(NodeId target) {
  return run<Json>([this, target]() { return handle_->ping(target); });
}

Json SyncHandle::stats(std::string service, bool all) {
  return run<Json>(
      [this, service = std::move(service), all]() mutable -> Task<Json> {
    obs::FluxStats fs(*handle_);
    Json merged = co_await fs.aggregate(std::move(service), all);
    co_return merged;
  });
}

void SyncHandle::barrier(std::string name, std::int64_t nprocs) {
  run<Unit>([this, name = std::move(name), nprocs]() -> Task<Unit> {
    co_await handle_->barrier(name, nprocs);
    co_return Unit{};
  });
}

void SyncHandle::publish(std::string topic, Json payload) {
  run<Unit>([this, topic = std::move(topic),
             payload = std::move(payload)]() mutable -> Task<Unit> {
    handle_->publish(std::move(topic), std::move(payload));
    co_return Unit{};
  });
}

void SyncHandle::kvs_put(std::string key, Json value) {
  run<Unit>([this, key = std::move(key),
             value = std::move(value)]() mutable -> Task<Unit> {
    co_await kvs_->put(std::move(key), std::move(value));
    co_return Unit{};
  });
}

void SyncHandle::kvs_unlink(std::string key) {
  run<Unit>([this, key = std::move(key)]() mutable -> Task<Unit> {
    co_await kvs_->unlink(std::move(key));
    co_return Unit{};
  });
}

Json SyncHandle::kvs_get(std::string key) {
  return run<Json>([this, key = std::move(key)]() mutable {
    return kvs_->get(std::move(key));
  });
}

std::vector<std::string> SyncHandle::kvs_list_dir(std::string key) {
  return run<std::vector<std::string>>([this, key = std::move(key)]() mutable {
    return kvs_->list_dir(std::move(key));
  });
}

CommitResult SyncHandle::kvs_commit() {
  return run<CommitResult>([this]() { return kvs_->commit(); });
}

CommitResult SyncHandle::kvs_fence(std::string name, std::int64_t nprocs) {
  return run<CommitResult>([this, name = std::move(name), nprocs]() mutable {
    return kvs_->fence(std::move(name), nprocs);
  });
}

std::uint64_t SyncHandle::kvs_get_version() {
  return run<std::uint64_t>([this]() { return kvs_->get_version(); });
}

void SyncHandle::kvs_wait_version(std::uint64_t version) {
  run<Unit>([this, version]() -> Task<Unit> {
    co_await kvs_->wait_version(version);
    co_return Unit{};
  });
}

}  // namespace flux
