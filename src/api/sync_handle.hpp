// Blocking facade over the async Handle API for threaded sessions.
//
// Ordinary (non-reactor) threads — example main()s, the flux CLI — call
// these methods; each call posts a coroutine onto the broker's reactor and
// blocks on its future. Never call from a reactor thread (it would deadlock
// waiting on itself); an assertion guards this in debug builds.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "api/handle.hpp"
#include "broker/session.hpp"
#include "kvs/kvs_client.hpp"

namespace flux {

class SyncHandle {
 public:
  /// Attach to the broker at `rank` (handle creation itself runs on the
  /// broker's reactor).
  SyncHandle(Session& session, NodeId rank);
  ~SyncHandle();
  SyncHandle(const SyncHandle&) = delete;
  SyncHandle& operator=(const SyncHandle&) = delete;

  [[nodiscard]] NodeId rank() const noexcept { return rank_; }
  [[nodiscard]] std::uint32_t size() const noexcept { return session_.size(); }
  /// The underlying async handle (only touch it from the reactor).
  [[nodiscard]] Handle& async() noexcept { return *handle_; }

  Message rpc(std::string topic, Json payload = Json::object(),
              RpcOptions opts = {});
  Json ping(NodeId target);
  void barrier(std::string name, std::int64_t nprocs);
  void publish(std::string topic, Json payload = Json::object());

  // KVS convenience (mirrors KvsClient).
  void kvs_put(std::string key, Json value);
  void kvs_unlink(std::string key);
  Json kvs_get(std::string key);
  std::vector<std::string> kvs_list_dir(std::string key);
  CommitResult kvs_commit();
  CommitResult kvs_fence(std::string name, std::int64_t nprocs);
  std::uint64_t kvs_get_version();
  void kvs_wait_version(std::uint64_t version);

 private:
  /// Run a coroutine factory on the reactor; block for its result.
  template <class T>
  T run(std::function<Task<T>()> make);

  Session& session_;
  NodeId rank_;
  std::unique_ptr<Handle> handle_;
  std::unique_ptr<KvsClient> kvs_;
};

}  // namespace flux
