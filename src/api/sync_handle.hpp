// Blocking facade over the async Handle API for threaded sessions.
//
// Ordinary (non-reactor) threads — example main()s, the flux CLI — call
// these methods; each call posts a coroutine onto the broker's reactor and
// blocks on its future. Never call from a reactor thread (it would deadlock
// waiting on itself); an assertion guards this in debug builds.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "api/handle.hpp"
#include "broker/session.hpp"
#include "kvs/kvs_client.hpp"

namespace flux {

class SyncHandle {
 public:
  /// Attach to the broker at `rank` (handle creation itself runs on the
  /// broker's reactor).
  SyncHandle(Session& session, NodeId rank);
  ~SyncHandle();
  SyncHandle(const SyncHandle&) = delete;
  SyncHandle& operator=(const SyncHandle&) = delete;

  [[nodiscard]] NodeId rank() const noexcept { return rank_; }
  [[nodiscard]] std::uint32_t size() const noexcept { return session_.size(); }
  /// The underlying async handle (only touch it from the reactor).
  [[nodiscard]] Handle& async() noexcept { return *handle_; }

  /// Blocking mirror of Handle::request():
  ///   sh.request("kvs.get").payload(j).to(rank).get()
  /// .get() blocks for the raw response; .call() additionally throws
  /// FluxException if the response carries an error.
  class Request {
   public:
    Request& to(NodeId rank) noexcept {
      nodeid_ = rank;
      return *this;
    }
    Request& payload(Json j) {
      payload_ = std::move(j);
      return *this;
    }
    Request& data(std::shared_ptr<const std::string> d) noexcept {
      data_ = std::move(d);
      return *this;
    }
    Request& timeout(Duration d) noexcept {
      timeout_ = d;
      return *this;
    }
    /// Mirror of RequestBuilder::retry(): retry timed-out / host-down
    /// attempts with exponential backoff (needs a timeout, per-request or
    /// session default).
    Request& retry(int n, Duration backoff = std::chrono::milliseconds(1)) noexcept {
      retries_ = n;
      backoff_ = backoff;
      return *this;
    }
    /// Disable retries and the default deadline for this request.
    Request& no_retry() noexcept {
      retries_ = 0;
      timeout_ = Duration{-1};
      return *this;
    }
    Request& trace(bool on = true) noexcept {
      trace_ = on;
      return *this;
    }
    Message get();   ///< block for the raw response
    Message call();  ///< get() + Handle::check()

   private:
    friend class SyncHandle;
    Request(SyncHandle& h, std::string topic)
        : h_(&h), topic_(std::move(topic)) {}

    SyncHandle* h_;
    std::string topic_;
    Json payload_;
    NodeId nodeid_ = kNodeAny;
    std::shared_ptr<const std::string> data_;
    Duration timeout_{0};  // 0 = inherit; <0 = explicitly none
    int retries_ = -1;     // -1 = inherit
    Duration backoff_{0};
    bool trace_ = false;
  };

  [[nodiscard]] Request request(std::string topic) {
    return Request(*this, std::move(topic));
  }

  /// Deprecated: thin wrapper over request(topic).payload(p).get().
  Message rpc(std::string topic, Json payload = Json::object());
  Json ping(NodeId target);
  /// Session-wide merged stats snapshot (obs::FluxStats::aggregate).
  Json stats(std::string service, bool all = false);
  void barrier(std::string name, std::int64_t nprocs);
  void publish(std::string topic, Json payload = Json::object());

  // KVS convenience (mirrors KvsClient).
  void kvs_put(std::string key, Json value);
  void kvs_unlink(std::string key);
  Json kvs_get(std::string key);
  std::vector<std::string> kvs_list_dir(std::string key);
  CommitResult kvs_commit();
  CommitResult kvs_fence(std::string name, std::int64_t nprocs);
  std::uint64_t kvs_get_version();
  void kvs_wait_version(std::uint64_t version);

 private:
  friend class Request;

  /// Run a coroutine factory on the reactor; block for its result.
  template <class T>
  T run(std::function<Task<T>()> make);

  Session& session_;
  NodeId rank_;
  std::unique_ptr<Handle> handle_;
  std::unique_ptr<KvsClient> kvs_;
};

}  // namespace flux
