#include "base/error.hpp"

namespace flux {

std::string_view errc_name(errc e) noexcept {
  switch (e) {
    case errc::ok: return "OK";
    case errc::nosys: return "ENOSYS";
    case errc::noent: return "ENOENT";
    case errc::exist: return "EEXIST";
    case errc::inval: return "EINVAL";
    case errc::io: return "EIO";
    case errc::proto: return "EPROTO";
    case errc::host_down: return "EHOSTDOWN";
    case errc::timeout: return "ETIMEDOUT";
    case errc::not_dir: return "ENOTDIR";
    case errc::is_dir: return "EISDIR";
    case errc::perm: return "EPERM";
    case errc::again: return "EAGAIN";
    case errc::no_spc: return "ENOSPC";
    case errc::canceled: return "ECANCELED";
    case errc::overflow: return "EOVERFLOW";
    case errc::job_unknown: return "ESRCH";
    case errc::job_canceled: return "EINTR";
    case errc::job_rejected: return "EACCES";
    case errc::alloc_unsatisfiable: return "ERANGE";
  }
  return "EUNKNOWN";
}

namespace {

class FluxCategory final : public std::error_category {
 public:
  [[nodiscard]] const char* name() const noexcept override { return "flux"; }
  [[nodiscard]] std::string message(int condition) const override {
    switch (static_cast<errc>(condition)) {
      case errc::ok: return "success";
      case errc::nosys: return "no module matched the request topic";
      case errc::noent: return "key, object, or rank not found";
      case errc::exist: return "object already exists";
      case errc::inval: return "malformed request payload";
      case errc::io: return "durable-storage read/write failure";
      case errc::proto: return "malformed wire message";
      case errc::host_down: return "peer declared dead by the live module";
      case errc::timeout: return "rpc timeout expired";
      case errc::not_dir: return "path component is not a directory";
      case errc::is_dir: return "terminal path component is a directory";
      case errc::perm: return "operation not permitted at this level";
      case errc::again: return "resource temporarily unavailable";
      case errc::no_spc: return "resource request cannot fit allocation bounds";
      case errc::canceled: return "operation canceled";
      case errc::overflow: return "version or sequence regression detected";
      case errc::job_unknown: return "no such job";
      case errc::job_canceled: return "operation lost to a job cancellation";
      case errc::job_rejected: return "job submission rejected";
      case errc::alloc_unsatisfiable:
        return "allocation request can never be satisfied";
    }
    return "unknown flux error " + std::to_string(condition);
  }
};

}  // namespace

const std::error_category& flux_category() noexcept {
  static const FluxCategory category;
  return category;
}

std::error_code make_error_code(errc e) noexcept {
  return {static_cast<int>(e), flux_category()};
}

std::string Error::to_string() const {
  std::string out{errc_name(code)};
  if (!message.empty() && message != errc_name(code)) {
    out += ": ";
    out += message;
  }
  return out;
}

}  // namespace flux
