#include "base/error.hpp"

namespace flux {

std::string_view errc_name(Errc e) noexcept {
  switch (e) {
    case Errc::Ok: return "OK";
    case Errc::NoSys: return "ENOSYS";
    case Errc::NoEnt: return "ENOENT";
    case Errc::Exist: return "EEXIST";
    case Errc::Inval: return "EINVAL";
    case Errc::Proto: return "EPROTO";
    case Errc::HostDown: return "EHOSTDOWN";
    case Errc::TimedOut: return "ETIMEDOUT";
    case Errc::NotDir: return "ENOTDIR";
    case Errc::IsDir: return "EISDIR";
    case Errc::Perm: return "EPERM";
    case Errc::Again: return "EAGAIN";
    case Errc::NoSpc: return "ENOSPC";
    case Errc::Canceled: return "ECANCELED";
    case Errc::Overflow: return "EOVERFLOW";
  }
  return "EUNKNOWN";
}

std::string Error::to_string() const {
  std::string out{errc_name(code)};
  if (!message.empty() && message != errc_name(code)) {
    out += ": ";
    out += message;
  }
  return out;
}

}  // namespace flux
