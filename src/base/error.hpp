// Error model shared across all Flux subsystems.
//
// Flux distinguishes *expected* failures (routing misses, missing keys, dead
// peers) from programming errors. Expected failures travel as `Errc` codes in
// response messages and as the error arm of `Expected<T>`; programming errors
// throw (and terminate tests loudly).
#pragma once

#include <stdexcept>
#include <string>
#include <string_view>
#include <utility>
#include <variant>

namespace flux {

/// POSIX-flavoured error codes used in CMB response messages (the paper's
/// prototype reuses errno values; so do we, with stable numeric values).
enum class Errc : int {
  Ok = 0,
  NoSys = 38,        ///< ENOSYS: no module matched the request topic
  NoEnt = 2,         ///< ENOENT: key/object/rank not found
  Exist = 17,        ///< EEXIST: object already exists
  Inval = 22,        ///< EINVAL: malformed request payload
  Proto = 71,        ///< EPROTO: malformed wire message
  HostDown = 112,    ///< EHOSTDOWN: peer declared dead by the live module
  TimedOut = 110,    ///< ETIMEDOUT: rpc timeout expired
  NotDir = 20,       ///< ENOTDIR: path component is not a directory
  IsDir = 21,        ///< EISDIR: terminal path component is a directory
  Perm = 1,          ///< EPERM: operation not permitted at this level
  Again = 11,        ///< EAGAIN: resource temporarily unavailable
  NoSpc = 28,        ///< ENOSPC: resource request cannot fit allocation bounds
  Canceled = 125,    ///< ECANCELED: operation canceled (shutdown, job kill)
  Overflow = 75,     ///< EOVERFLOW: version/sequence regression detected
};

/// Human-readable name for an error code ("ENOSYS", ...).
std::string_view errc_name(Errc e) noexcept;

/// An error: code plus free-form context message.
struct Error {
  Errc code = Errc::Ok;
  std::string message;

  Error() = default;
  Error(Errc c, std::string msg) : code(c), message(std::move(msg)) {}
  explicit Error(Errc c) : code(c), message(std::string(errc_name(c))) {}

  [[nodiscard]] bool ok() const noexcept { return code == Errc::Ok; }
  [[nodiscard]] std::string to_string() const;
};

/// Exception wrapper for the rare places where an Error must propagate as a
/// C++ exception (coroutine results, SyncHandle).
class FluxException : public std::runtime_error {
 public:
  explicit FluxException(Error e)
      : std::runtime_error(e.to_string()), error_(std::move(e)) {}
  [[nodiscard]] const Error& error() const noexcept { return error_; }

 private:
  Error error_;
};

/// Minimal expected<T, Error> (std::expected is C++23; we target C++20).
template <class T>
class Expected {
 public:
  Expected(T value) : state_(std::move(value)) {}  // NOLINT(google-explicit-constructor)
  Expected(Error err) : state_(std::move(err)) {}  // NOLINT(google-explicit-constructor)

  [[nodiscard]] bool has_value() const noexcept {
    return std::holds_alternative<T>(state_);
  }
  explicit operator bool() const noexcept { return has_value(); }

  [[nodiscard]] T& value() & {
    if (!has_value()) throw FluxException(error());
    return std::get<T>(state_);
  }
  [[nodiscard]] const T& value() const& {
    if (!has_value()) throw FluxException(error());
    return std::get<T>(state_);
  }
  [[nodiscard]] T&& value() && {
    if (!has_value()) throw FluxException(error());
    return std::get<T>(std::move(state_));
  }

  [[nodiscard]] const Error& error() const {
    return std::get<Error>(state_);
  }

  T& operator*() & { return value(); }
  const T& operator*() const& { return value(); }
  T* operator->() { return &value(); }
  const T* operator->() const { return &value(); }

  /// value_or for cheap defaults.
  [[nodiscard]] T value_or(T fallback) const& {
    return has_value() ? std::get<T>(state_) : std::move(fallback);
  }

 private:
  std::variant<T, Error> state_;
};

/// Expected<void> specialization stand-in.
class Status {
 public:
  Status() = default;
  Status(Error err) : error_(std::move(err)) {}  // NOLINT(google-explicit-constructor)
  static Status ok() { return {}; }

  [[nodiscard]] bool has_value() const noexcept { return error_.ok(); }
  explicit operator bool() const noexcept { return has_value(); }
  [[nodiscard]] const Error& error() const noexcept { return error_; }
  void value() const {
    if (!has_value()) throw FluxException(error_);
  }

 private:
  Error error_;
};

}  // namespace flux
