// Error model shared across all Flux subsystems.
//
// Flux distinguishes *expected* failures (routing misses, missing keys, dead
// peers) from programming errors. Expected failures travel as `flux::errc`
// codes in response messages and as the error arm of `Expected<T>`;
// programming errors throw (and terminate tests loudly).
//
// `errc` is a registered std::error_code enum: flux_category() gives every
// code a name and message, `std::error_code ec = errc::timeout;` works, and
// comparisons against response codes are typed instead of raw-int. Numeric
// values are POSIX errno values and are part of the wire format — stable
// forever.
#pragma once

#include <stdexcept>
#include <string>
#include <string_view>
#include <system_error>
#include <utility>
#include <variant>

namespace flux {

/// POSIX-flavoured error codes used in CMB response messages (the paper's
/// prototype reuses errno values; so do we, with stable numeric values).
/// The PascalCase enumerators are deprecated aliases kept for source
/// compatibility; new code uses the snake_case spellings.
enum class errc : int {
  ok = 0,
  nosys = 38,       ///< ENOSYS: no module matched the request topic
  noent = 2,        ///< ENOENT: key/object/rank not found
  exist = 17,       ///< EEXIST: object already exists
  inval = 22,       ///< EINVAL: malformed request payload
  io = 5,           ///< EIO: durable-storage read/write failure
  proto = 71,       ///< EPROTO: malformed wire message
  host_down = 112,  ///< EHOSTDOWN: peer declared dead by the live module
  timeout = 110,    ///< ETIMEDOUT: rpc timeout expired
  not_dir = 20,     ///< ENOTDIR: path component is not a directory
  is_dir = 21,      ///< EISDIR: terminal path component is a directory
  perm = 1,         ///< EPERM: operation not permitted at this level
  again = 11,       ///< EAGAIN: resource temporarily unavailable
  no_spc = 28,      ///< ENOSPC: resource request cannot fit allocation bounds
  canceled = 125,   ///< ECANCELED: operation canceled (shutdown, job kill)
  overflow = 75,    ///< EOVERFLOW: version/sequence regression detected

  // Job domain (job-ingest / job-manager pipeline). Same rule as above:
  // numeric values are POSIX errno values and part of the wire format.
  job_unknown = 3,          ///< ESRCH: no job with that id (active or in KVS)
  job_canceled = 4,         ///< EINTR: operation lost to a cancellation
  job_rejected = 13,        ///< EACCES: submission refused (validation/admission)
  alloc_unsatisfiable = 34, ///< ERANGE: request can never fit the session pool

  // Deprecated spellings (pre-error_category API).
  Ok = ok,
  NoSys = nosys,
  NoEnt = noent,
  Exist = exist,
  Inval = inval,
  Proto = proto,
  HostDown = host_down,
  TimedOut = timeout,
  NotDir = not_dir,
  IsDir = is_dir,
  Perm = perm,
  Again = again,
  NoSpc = no_spc,
  Canceled = canceled,
  Overflow = overflow,
};

/// Deprecated alias; new code spells it flux::errc.
using Errc = errc;

/// Human-readable name for an error code ("ENOSYS", ...).
std::string_view errc_name(errc e) noexcept;

/// The std::error_category for flux::errc ("flux").
const std::error_category& flux_category() noexcept;

/// ADL hook: lets `std::error_code ec = errc::timeout;` compile.
std::error_code make_error_code(errc e) noexcept;

/// An error: code plus free-form context message.
struct Error {
  errc code = errc::ok;
  std::string message;

  Error() = default;
  Error(errc c, std::string msg) : code(c), message(std::move(msg)) {}
  explicit Error(errc c) : code(c), message(std::string(errc_name(c))) {}

  [[nodiscard]] bool ok() const noexcept { return code == errc::ok; }
  /// This error as a std::error_code in flux_category().
  [[nodiscard]] std::error_code error_code() const noexcept {
    return make_error_code(code);
  }
  [[nodiscard]] std::string to_string() const;
};

/// Exception wrapper for the rare places where an Error must propagate as a
/// C++ exception (coroutine results, SyncHandle).
class FluxException : public std::runtime_error {
 public:
  explicit FluxException(Error e)
      : std::runtime_error(e.to_string()), error_(std::move(e)) {}
  [[nodiscard]] const Error& error() const noexcept { return error_; }
  /// The typed code this exception carries, as a std::error_code.
  [[nodiscard]] std::error_code code() const noexcept {
    return error_.error_code();
  }

 private:
  Error error_;
};

/// Minimal expected<T, Error> (std::expected is C++23; we target C++20).
template <class T>
class Expected {
 public:
  Expected(T value) : state_(std::move(value)) {}  // NOLINT(google-explicit-constructor)
  Expected(Error err) : state_(std::move(err)) {}  // NOLINT(google-explicit-constructor)

  [[nodiscard]] bool has_value() const noexcept {
    return std::holds_alternative<T>(state_);
  }
  explicit operator bool() const noexcept { return has_value(); }

  [[nodiscard]] T& value() & {
    if (!has_value()) throw FluxException(error());
    return std::get<T>(state_);
  }
  [[nodiscard]] const T& value() const& {
    if (!has_value()) throw FluxException(error());
    return std::get<T>(state_);
  }
  [[nodiscard]] T&& value() && {
    if (!has_value()) throw FluxException(error());
    return std::get<T>(std::move(state_));
  }

  [[nodiscard]] const Error& error() const {
    return std::get<Error>(state_);
  }

  T& operator*() & { return value(); }
  const T& operator*() const& { return value(); }
  T* operator->() { return &value(); }
  const T* operator->() const { return &value(); }

  /// value_or for cheap defaults.
  [[nodiscard]] T value_or(T fallback) const& {
    return has_value() ? std::get<T>(state_) : std::move(fallback);
  }

 private:
  std::variant<T, Error> state_;
};

/// Expected<void> specialization stand-in.
class Status {
 public:
  Status() = default;
  Status(Error err) : error_(std::move(err)) {}  // NOLINT(google-explicit-constructor)
  static Status ok() { return {}; }

  [[nodiscard]] bool has_value() const noexcept { return error_.ok(); }
  explicit operator bool() const noexcept { return has_value(); }
  [[nodiscard]] const Error& error() const noexcept { return error_; }
  void value() const {
    if (!has_value()) throw FluxException(error_);
  }

 private:
  Error error_;
};

}  // namespace flux

template <>
struct std::is_error_code_enum<flux::errc> : std::true_type {};
