#include "base/hex.hpp"

#include <array>

namespace flux {

namespace {
constexpr char kDigits[] = "0123456789abcdef";

// Byte -> two hex digits in one table lookup. Hex refs (40-char SHA1s) are
// emitted on every directory serialization and setroot announce, so encode
// and decode both sit on the data plane's hot path.
constexpr std::array<std::array<char, 2>, 256> make_pairs() {
  std::array<std::array<char, 2>, 256> t{};
  for (int b = 0; b < 256; ++b)
    t[static_cast<std::size_t>(b)] = {kDigits[b >> 4], kDigits[b & 0x0f]};
  return t;
}
constexpr auto kPairs = make_pairs();

// Char -> nibble value, -1 for non-hex.
constexpr std::array<std::int8_t, 256> make_nibbles() {
  std::array<std::int8_t, 256> t{};
  for (auto& v : t) v = -1;
  for (int i = 0; i < 10; ++i)
    t[static_cast<std::size_t>('0') + static_cast<std::size_t>(i)] =
        static_cast<std::int8_t>(i);
  for (int i = 0; i < 6; ++i) {
    t[static_cast<std::size_t>('a') + static_cast<std::size_t>(i)] =
        static_cast<std::int8_t>(10 + i);
    t[static_cast<std::size_t>('A') + static_cast<std::size_t>(i)] =
        static_cast<std::int8_t>(10 + i);
  }
  return t;
}
constexpr auto kNibbles = make_nibbles();
}  // namespace

std::string hex_encode(std::span<const std::uint8_t> bytes) {
  std::string out;
  out.resize(bytes.size() * 2);
  char* p = out.data();
  for (std::uint8_t b : bytes) {
    *p++ = kPairs[b][0];
    *p++ = kPairs[b][1];
  }
  return out;
}

std::optional<std::vector<std::uint8_t>> hex_decode(std::string_view hex) {
  if (hex.size() % 2 != 0) return std::nullopt;
  std::vector<std::uint8_t> out;
  out.resize(hex.size() / 2);
  std::uint8_t* p = out.data();
  // Accumulate validity instead of branching per character: a single bad
  // digit poisons the sign bit of `bad`.
  int bad = 0;
  for (std::size_t i = 0; i < hex.size(); i += 2) {
    const int hi = kNibbles[static_cast<std::uint8_t>(hex[i])];
    const int lo = kNibbles[static_cast<std::uint8_t>(hex[i + 1])];
    bad |= hi | lo;
    *p++ = static_cast<std::uint8_t>((hi << 4) | lo);
  }
  if (bad < 0) return std::nullopt;
  return out;
}

}  // namespace flux
