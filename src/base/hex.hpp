// Hex encoding/decoding helpers used by content addressing and diagnostics.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace flux {

/// Lower-case hex encoding of a byte span.
std::string hex_encode(std::span<const std::uint8_t> bytes);

/// Decode a hex string; returns nullopt for odd length or non-hex characters.
std::optional<std::vector<std::uint8_t>> hex_decode(std::string_view hex);

}  // namespace flux
