#include "base/log.hpp"

#include <atomic>
#include <cstdio>

namespace flux::log {

namespace {

std::atomic<int> g_level{static_cast<int>(Level::Warn)};
std::mutex g_sink_mu;
Sink g_sink;  // empty => default stderr sink

void default_sink(Level lvl, std::string_view component, std::string_view msg) {
  std::fprintf(stderr, "[flux:%.*s] %.*s: %.*s\n",
               static_cast<int>(level_name(lvl).size()), level_name(lvl).data(),
               static_cast<int>(component.size()), component.data(),
               static_cast<int>(msg.size()), msg.data());
}

}  // namespace

std::string_view level_name(Level lvl) noexcept {
  switch (lvl) {
    case Level::Debug: return "debug";
    case Level::Info: return "info";
    case Level::Warn: return "warn";
    case Level::Error: return "error";
    case Level::Off: return "off";
  }
  return "?";
}

void set_level(Level lvl) noexcept { g_level.store(static_cast<int>(lvl)); }
Level level() noexcept { return static_cast<Level>(g_level.load()); }

void set_sink(Sink sink) {
  std::lock_guard lk(g_sink_mu);
  g_sink = std::move(sink);
}

void reset_sink() {
  std::lock_guard lk(g_sink_mu);
  g_sink = nullptr;
}

void emit(Level lvl, std::string_view component, std::string_view msg) {
  if (lvl < level()) return;
  std::lock_guard lk(g_sink_mu);
  if (g_sink)
    g_sink(lvl, component, msg);
  else
    default_sink(lvl, component, msg);
}

}  // namespace flux::log
