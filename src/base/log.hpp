// Lightweight leveled logger for host-side diagnostics.
//
// This is the *library's* logger (stderr / test capture). The distributed,
// tree-reduced log facility the paper describes is the `log` comms module in
// src/modules/logmod.hpp; that module can use this sink at the session root.
#pragma once

#include <functional>
#include <mutex>
#include <sstream>
#include <string>
#include <string_view>

namespace flux::log {

enum class Level : int { Debug = 0, Info = 1, Warn = 2, Error = 3, Off = 4 };

std::string_view level_name(Level lvl) noexcept;

/// Global minimum level (default Warn so tests/benches stay quiet).
void set_level(Level lvl) noexcept;
Level level() noexcept;

/// Replace the sink (default writes to stderr). Thread-safe.
using Sink = std::function<void(Level, std::string_view component, std::string_view msg)>;
void set_sink(Sink sink);
void reset_sink();

/// Emit one record if `lvl` passes the global threshold.
void emit(Level lvl, std::string_view component, std::string_view msg);

namespace detail {
template <class... Args>
std::string concat(Args&&... args) {
  std::ostringstream os;
  (os << ... << std::forward<Args>(args));
  return os.str();
}
}  // namespace detail

template <class... Args>
void debug(std::string_view component, Args&&... args) {
  if (level() <= Level::Debug)
    emit(Level::Debug, component, detail::concat(std::forward<Args>(args)...));
}
template <class... Args>
void info(std::string_view component, Args&&... args) {
  if (level() <= Level::Info)
    emit(Level::Info, component, detail::concat(std::forward<Args>(args)...));
}
template <class... Args>
void warn(std::string_view component, Args&&... args) {
  if (level() <= Level::Warn)
    emit(Level::Warn, component, detail::concat(std::forward<Args>(args)...));
}
template <class... Args>
void error(std::string_view component, Args&&... args) {
  if (level() <= Level::Error)
    emit(Level::Error, component, detail::concat(std::forward<Args>(args)...));
}

}  // namespace flux::log
