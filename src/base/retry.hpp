// RPC retry/timeout/backoff policy — the single policy surface shared by the
// fluent RequestBuilder, SyncHandle::Request, and the session-wide default
// (SessionConfig::rpc).
//
// Semantics: each attempt gets `timeout`; a timed-out (or host-down) attempt
// is retried up to `retries` more times, sleeping `backoff * 2^n` before the
// n-th retry (exponential). `retries` without a timeout is inert — an RPC
// with no deadline never fails locally, so there is nothing to retry; the
// builder applies the session default timeout in that case.
#pragma once

#include <chrono>

namespace flux {

struct RetryPolicy {
  /// Per-attempt deadline; zero = no deadline (and no retries).
  std::chrono::nanoseconds timeout{0};
  /// Additional attempts after the first.
  int retries = 0;
  /// Delay before the first retry; doubles per retry.
  std::chrono::nanoseconds backoff{0};

  [[nodiscard]] bool has_timeout() const noexcept { return timeout.count() > 0; }
  [[nodiscard]] bool has_retries() const noexcept {
    return retries > 0 && has_timeout();
  }
};

}  // namespace flux
