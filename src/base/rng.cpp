#include "base/rng.hpp"

namespace flux {

namespace {
inline std::uint64_t rotl(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

Rng::Rng(std::uint64_t seed) noexcept {
  std::uint64_t sm = seed;
  for (auto& s : s_) s = splitmix64(sm);
}

Rng::result_type Rng::operator()() noexcept {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::below(std::uint64_t bound) noexcept {
  if (bound == 0) return 0;
  // Lemire's nearly-divisionless reduction.
  unsigned __int128 m =
      static_cast<unsigned __int128>(operator()()) * static_cast<unsigned __int128>(bound);
  auto lo = static_cast<std::uint64_t>(m);
  if (lo < bound) {
    const std::uint64_t threshold = (0 - bound) % bound;
    while (lo < threshold) {
      m = static_cast<unsigned __int128>(operator()()) *
          static_cast<unsigned __int128>(bound);
      lo = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

double Rng::uniform() noexcept {
  return static_cast<double>(operator()() >> 11) * 0x1.0p-53;
}

std::string Rng::bytes(std::size_t n) {
  static constexpr char kAlphabet[] =
      "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789+/";
  std::string out;
  out.reserve(n);
  while (out.size() < n) {
    std::uint64_t word = operator()();
    for (int i = 0; i < 8 && out.size() < n; ++i) {
      out.push_back(kAlphabet[word & 63]);
      word >>= 6;
    }
  }
  return out;
}

}  // namespace flux
