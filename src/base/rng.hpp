// Deterministic random number generation for workloads and simulations.
//
// Every stochastic component takes an explicit seed so simulation runs are
// reproducible bit-for-bit; we use splitmix64 for seeding and xoshiro256**
// for the stream (fast, high-quality, no global state).
#pragma once

#include <cstdint>
#include <string>

namespace flux {

/// splitmix64 step — used to expand one seed into xoshiro state.
std::uint64_t splitmix64(std::uint64_t& state) noexcept;

/// xoshiro256** generator. Satisfies UniformRandomBitGenerator.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) noexcept;

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ULL; }

  result_type operator()() noexcept;

  /// Uniform integer in [0, bound) without modulo bias (Lemire reduction).
  std::uint64_t below(std::uint64_t bound) noexcept;

  /// Uniform double in [0, 1).
  double uniform() noexcept;

  /// Fill a string with `n` printable pseudo-random bytes (payload synthesis).
  std::string bytes(std::size_t n);

 private:
  std::uint64_t s_[4];
};

}  // namespace flux
