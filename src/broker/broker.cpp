#include "broker/broker.hpp"

#include <algorithm>
#include <cassert>

#include "base/log.hpp"
#include "broker/session.hpp"
#include "net/topology.hpp"

namespace flux {

Broker::Broker(Session& session, NodeId rank, Executor& ex)
    : session_(session), rank_(rank), ex_(ex), topo_(session.topology()) {
  net_rx_msgs_ = &registry_.counter("cmb.net.rx_msgs");
  net_rx_bytes_ = &registry_.counter("cmb.net.rx_bytes");
  net_tx_msgs_ = &registry_.counter("cmb.net.tx_msgs");
  net_tx_bytes_ = &registry_.counter("cmb.net.tx_bytes");
}

Broker::~Broker() {
  // Modules may own client Handles (e.g. job-manager's KVS connection) whose
  // destructors unregister endpoints; destroy them while the endpoint table
  // and the rest of the broker state are still alive.
  modules_by_name_.clear();
  modules_.clear();
}

std::uint32_t Broker::size() const noexcept { return session_.size(); }

bool Broker::is_root() const noexcept { return rank_ == 0; }

unsigned Broker::depth() const { return topology().depth(rank_); }

std::optional<NodeId> Broker::parent() const {
  return topology().parent(rank_);
}

std::vector<NodeId> Broker::children() const {
  return topology().children(rank_);
}

const Topology& Broker::topology() const { return topo_; }

Json Broker::module_config(std::string_view module_name) const {
  return session_.config().module_config.at(module_name);
}

// ---------------------------------------------------------------------------
// Lifecycle
// ---------------------------------------------------------------------------

void Broker::add_module(std::unique_ptr<Module> m) {
  Module* raw = m.get();
  raw->set_endpoint_id(add_endpoint([](Message) {
    // Module RPC responses resolve through pending_; nothing reaches here.
  }));
  modules_by_name_.insert_or_assign(std::string(raw->name()), raw);
  modules_.push_back(std::move(m));
}

void Broker::start() {
  for (auto& m : modules_) m->start();
  // Leaf brokers kick off the hello wire-up reduction; interior brokers wait
  // for all children (maybe_complete_hello fires as counts arrive).
  maybe_complete_hello();
}

void Broker::shutdown() {
  for (auto& m : modules_) m->shutdown();
  // Settle outstanding RPCs: a coroutine parked on a Future owns the Future
  // and the Future's state owns the coroutine handle, so an unsettled promise
  // strands the whole frame (Session::~Session drains the posted resumes).
  for (auto& [tag, pending] : pending_) {
    ex_.cancel(pending.timer);
    pending.promise.set_error(Error(errc::canceled, "session shutdown"));
  }
  pending_.clear();
}

Module* Broker::find_module(std::string_view service) noexcept {
  auto it = modules_by_name_.find(service);
  return it == modules_by_name_.end() ? nullptr : it->second;
}

std::vector<std::string_view> Broker::module_names() const {
  std::vector<std::string_view> out;
  out.reserve(modules_.size());
  for (const auto& m : modules_) out.push_back(m->name());
  return out;
}

// ---------------------------------------------------------------------------
// Endpoints
// ---------------------------------------------------------------------------

std::uint64_t Broker::add_endpoint(EndpointFn deliver) {
  const std::uint64_t id = next_endpoint_++;
  endpoints_.emplace(id, Endpoint{std::move(deliver), {}});
  return id;
}

void Broker::remove_endpoint(std::uint64_t id) { endpoints_.erase(id); }

void Broker::subscribe(std::uint64_t endpoint, std::string topic_prefix) {
  auto it = endpoints_.find(endpoint);
  if (it != endpoints_.end())
    it->second.subscriptions.push_back(std::move(topic_prefix));
}

void Broker::unsubscribe(std::uint64_t endpoint, std::string_view topic_prefix) {
  auto it = endpoints_.find(endpoint);
  if (it == endpoints_.end()) return;
  auto& subs = it->second.subscriptions;
  subs.erase(std::remove(subs.begin(), subs.end(), topic_prefix), subs.end());
}

// ---------------------------------------------------------------------------
// Entry points
// ---------------------------------------------------------------------------

void Broker::receive(Message msg) {
  if (failed_) return;
  net_rx_msgs_->inc();
  net_rx_bytes_->inc(static_cast<std::uint64_t>(msg.wire_size()));
  if (msg.traced()) {
    // Stamp the hop. The plane is inferred from how the message got here:
    // the first stamp on a request is the node-local client hop; after that,
    // rank-addressed requests ride the ring and kNodeAny requests the tree.
    // Responses retrace the tree unless the next route hop lives on another
    // rank (ring-origin request riding home).
    TraceHop hop;
    hop.rank = rank_;
    hop.t_ns = ex_.now().count();
    switch (msg.type) {
      case MsgType::Request:
        if (msg.trace.empty())
          hop.plane = TraceHop::Plane::Local;
        else if (msg.nodeid != kNodeAny && msg.nodeid != kNodeUpstream)
          hop.plane = TraceHop::Plane::Ring;
        else
          hop.plane = TraceHop::Plane::Tree;
        break;
      case MsgType::Response:
        // Direct-edge responses (sharded KVS overlay) cross one tree-like
        // hop; only Client/Module hops on a foreign rank imply the ring.
        hop.plane = (!msg.route.empty() && msg.route.back().rank != rank_ &&
                     msg.route.back().kind != RouteHop::Kind::Direct)
                        ? TraceHop::Plane::Ring
                        : TraceHop::Plane::Tree;
        break;
      case MsgType::Event:
        hop.plane = TraceHop::Plane::Event;
        break;
      case MsgType::Keepalive:
        hop.plane = TraceHop::Plane::Local;
        break;
    }
    msg.trace.push_back(hop);
  }
  switch (msg.type) {
    case MsgType::Request:
      route_request(std::move(msg));
      return;
    case MsgType::Response:
      route_response(std::move(msg));
      return;
    case MsgType::Event:
      if (msg.seq == 0)
        on_event_from_below(std::move(msg));
      else
        deliver_event(msg);
      return;
    case MsgType::Keepalive:
      return;
  }
}

Future<Message> Broker::rpc(std::uint64_t endpoint, Message req) {
  Promise<Message> promise(ex_);
  if (failed_) {
    // The local socket's peer is dead: refuse instead of registering a
    // pending entry no response will ever match (a module timer that
    // outlives fail() would otherwise park its coroutine forever). The
    // matchtag is still burned: the timeout overloads arm against
    // next_matchtag_ - 1, which must not alias an older live RPC.
    next_matchtag_++;
    promise.set_error(Error(errc::host_down, "broker failed"));
    return promise.future();
  }
  req.matchtag = next_matchtag_++;
  req.route.push_back(RouteHop{RouteHop::Kind::Client, rank_, endpoint});
  pending_.emplace(req.matchtag, PendingRpc{promise, ex_.now()});
  // The node-local hop: client -> broker (the paper's UNIX-domain socket).
  session_.send(rank_, rank_, std::move(req));
  return promise.future();
}

Future<Message> Broker::rpc(std::uint64_t endpoint, Message req,
                            Duration timeout) {
  std::string topic = req.topic;
  auto fut = rpc(endpoint, std::move(req));
  arm_rpc_timeout(next_matchtag_ - 1, timeout, std::move(topic));
  return fut;
}

void Broker::arm_rpc_timeout(std::uint32_t tag, Duration timeout,
                             std::string topic) {
  // A request to a module on this rank can be delivered and answered inline,
  // in which case the RPC settled before we got here — arming would leave a
  // dead timer pinning the simulation until the deadline.
  auto armed = pending_.find(tag);
  if (armed == pending_.end()) return;
  armed->second.timer =
      ex_.post_cancelable_after(timeout, [this, tag, topic = std::move(topic)] {
        auto it = pending_.find(tag);
        if (it == pending_.end()) return;
        auto promise = it->second.promise;
        pending_.erase(it);
        ++stats_.rpc_timeouts;
        registry_.counter("cmb.rpc_timeouts").inc();
        promise.set_error(Error(errc::timeout, "rpc timeout: " + topic));
      });
}

void Broker::submit(std::uint64_t endpoint, Message req) {
  req.route.push_back(RouteHop{RouteHop::Kind::Client, rank_, endpoint});
  session_.send(rank_, rank_, std::move(req));
}

// ---------------------------------------------------------------------------
// Routing
// ---------------------------------------------------------------------------

void Broker::route_request(Message msg) {
  // Rank-addressed requests ride the ring plane (paper: debugging tools,
  // "high latency of a ring is manageable").
  if (msg.nodeid != kNodeAny && msg.nodeid != kNodeUpstream) {
    if (msg.nodeid >= size()) {
      respond(msg.respond_error(errc::noent, "no such rank"));
      return;
    }
    if (msg.nodeid == rank_) {
      if (msg.service() == "cmb") {
        handle_cmb_request(std::move(msg));
        return;
      }
      if (Module* m = find_module(msg.service())) {
        dispatch_local(std::move(msg), *m);
      } else {
        respond(msg.respond_error(
            errc::nosys, "rank has no module '" + std::string(msg.service()) + "'"));
      }
      return;
    }
    ++stats_.ring_forwarded;
    send(topology().ring_next(rank_), std::move(msg));
    return;
  }

  // Tree plane: first matching module wins; otherwise upstream.
  const bool skip_local = (msg.nodeid == kNodeUpstream);
  msg.nodeid = kNodeAny;
  if (!skip_local) {
    if (msg.service() == "cmb") {
      handle_cmb_request(std::move(msg));
      return;
    }
    if (Module* m = find_module(msg.service())) {
      dispatch_local(std::move(msg), *m);
      return;
    }
  }
  const auto up = parent();
  if (!up) {
    respond(msg.respond_error(
        errc::nosys, "no service matched '" + msg.topic + "'"));
    return;
  }
  ++stats_.requests_forwarded;
  msg.route.push_back(RouteHop{RouteHop::Kind::Broker, rank_, 0});
  send(*up, std::move(msg));
}

void Broker::dispatch_local(Message msg, Module& m) {
  ++stats_.requests_dispatched;
  m.handle_request(std::move(msg));
}

void Broker::route_response(Message msg) {
  ++stats_.responses_routed;
  while (!msg.route.empty()) {
    const RouteHop hop = msg.route.back();
    if (hop.kind == RouteHop::Kind::Broker) {
      msg.route.pop_back();
      if (hop.rank == rank_) continue;  // self hop (shouldn't occur)
      send(hop.rank, std::move(msg));
      return;
    }
    // Client/Module/Direct endpoint hop.
    if (hop.rank != rank_) {
      if (hop.kind == RouteHop::Kind::Direct) {
        // Direct-edge origin (sharded-KVS overlay): return point-to-point.
        send(hop.rank, std::move(msg));
        return;
      }
      // Ring-addressed request origin: ride the ring home.
      send(topology().ring_next(rank_), std::move(msg));
      return;
    }
    msg.route.pop_back();
    auto pending = pending_.find(msg.matchtag);
    if (pending != pending_.end()) {
      auto promise = pending->second.promise;
      registry_.histogram("cmb.rpc_ns").record(ex_.now() - pending->second.start);
      ex_.cancel(pending->second.timer);
      pending_.erase(pending);
      promise.set_value(std::move(msg));
    } else {
      // Late response: the matchtag was already settled (rpc timeout fired).
      ++stats_.responses_dropped;
      registry_.counter("cmb.responses_dropped").inc();
      log::debug("broker", "rank ", rank_, ": dropped response tag ",
                 msg.matchtag, " topic ", msg.topic);
    }
    return;
  }
  log::warn("broker", "rank ", rank_, ": response with empty route for topic ",
            msg.topic);
}

void Broker::respond(Message resp) {
  assert(resp.is_response());
  route_response(std::move(resp));
}

void Broker::forward_upstream(Message req) {
  const auto up = parent();
  if (!up) {
    // Either a module bug (forwarding from the root) or an orphaned broker
    // whose parent link was healed away. Dropping is the resilient choice —
    // a throw here would take the whole reactor down.
    log::error("broker", "rank ", rank_,
               ": forward_upstream with no parent, dropping ", req.topic);
    return;
  }
  ++stats_.requests_forwarded;
  req.nodeid = kNodeAny;
  req.route.push_back(RouteHop{RouteHop::Kind::Broker, rank_, 0});
  send(*up, std::move(req));
}

Future<Message> Broker::module_rpc(Module& m, Message req) {
  Promise<Message> promise(ex_);
  if (failed_) {  // see rpc(): dead broker refuses, never strands a caller
    next_matchtag_++;
    promise.set_error(Error(errc::host_down, "broker failed"));
    return promise.future();
  }
  req.matchtag = next_matchtag_++;
  req.route.push_back(
      RouteHop{RouteHop::Kind::Module, rank_, m.endpoint_id()});
  pending_.emplace(req.matchtag, PendingRpc{promise, ex_.now()});
  // Module requests originate inside the broker: route directly, no local
  // transport hop (comms modules share the CMB address space).
  route_request(std::move(req));
  return promise.future();
}

Future<Message> Broker::module_rpc(Module& m, Message req, Duration timeout) {
  std::string topic = req.topic;
  auto fut = module_rpc(m, std::move(req));
  arm_rpc_timeout(next_matchtag_ - 1, timeout, std::move(topic));
  return fut;
}

Future<Message> Broker::direct_rpc(Module& m, NodeId to, Message req) {
  Promise<Message> promise(ex_);
  if (failed_) {  // see rpc(): dead broker refuses, never strands a caller
    next_matchtag_++;
    promise.set_error(Error(errc::host_down, "broker failed"));
    return promise.future();
  }
  req.matchtag = next_matchtag_++;
  req.nodeid = to;
  req.route.push_back(
      RouteHop{RouteHop::Kind::Direct, rank_, m.endpoint_id()});
  pending_.emplace(req.matchtag, PendingRpc{promise, ex_.now(), to});
  if (to == rank_)
    route_request(std::move(req));
  else
    send(to, std::move(req));
  return promise.future();
}

Future<Message> Broker::direct_rpc(Module& m, NodeId to, Message req,
                                   Duration timeout) {
  std::string topic = req.topic;
  auto fut = direct_rpc(m, to, std::move(req));
  arm_rpc_timeout(next_matchtag_ - 1, timeout, std::move(topic));
  return fut;
}

void Broker::forward_direct(NodeId to, Message req) {
  req.nodeid = to;
  if (to == rank_) {
    route_request(std::move(req));
    return;
  }
  ++stats_.requests_forwarded;
  send(to, std::move(req));
}

void Broker::module_subscribe(Module& m, std::string topic_prefix) {
  module_subs_.emplace_back(std::move(topic_prefix), &m);
}

// ---------------------------------------------------------------------------
// Event plane
// ---------------------------------------------------------------------------

void Broker::publish(Message ev) {
  assert(ev.is_event());
  ++stats_.events_published;
  if (!is_root()) {
    ev.seq = 0;  // unsequenced until the root stamps it
    const auto up = parent();
    send(*up, std::move(ev));
    return;
  }
  ev.seq = next_event_seq_++;
  deliver_event(ev);
}

void Broker::publish(std::string topic, Json payload) {
  publish(Message::event(std::move(topic), std::move(payload)));
}

void Broker::on_event_from_below(Message msg) {
  // An unsequenced event bubbling toward the root.
  if (!is_root()) {
    send(*parent(), std::move(msg));
    return;
  }
  msg.seq = next_event_seq_++;
  deliver_event(msg);
}

void Broker::deliver_event(const Message& msg) {
  if (msg.seq <= last_event_seq_) return;  // duplicate suppression
  last_event_seq_ = msg.seq;
  ++stats_.events_delivered;
  if (msg.topic == "cmb.online")
    online_.store(true, std::memory_order_release);
  if (msg.topic == "cmb.rejoin") {
    // A restarted broker was re-admitted by the root. Adopt the root's
    // authoritative parent relation BEFORE forwarding down — the event must
    // reach the rejoined rank through its brand-new parent link, the same
    // heal-then-forward discipline live.down uses.
    const auto back = static_cast<NodeId>(msg.payload().get_int("rank", -1));
    if (back < size() && msg.payload().contains("parents") &&
        msg.payload().at("parents").is_array() &&
        msg.payload().at("parents").size() == size()) {
      const auto& arr = msg.payload().at("parents").as_array();
      std::vector<std::optional<NodeId>> rel(size());
      for (std::uint32_t r = 0; r < size(); ++r) {
        const std::int64_t p = arr[r].is_int() ? arr[r].as_int() : -1;
        if (p >= 0) rel[r] = static_cast<NodeId>(p);
      }
      topo_.set_parents(std::move(rel));
      dead_ranks_.erase(back);
      if (back == rank_) {
        // Our own re-admission doubles as wire-up confirmation.
        online_.store(true, std::memory_order_release);
        log::info("broker", "rank ", rank_, ": rejoined under parent ",
                  msg.payload().get_int("parent", -1));
      }
    }
  }
  if (msg.topic == "live.down") {
    // Self-heal BEFORE forwarding: re-parent the dead rank's children to
    // its grandparent in this broker's topology replica, so the adopting
    // parent forwards this very event (and everything after it) to the
    // re-attached subtree. The computation is deterministic, so all
    // replicas converge. A broker never heals around itself: a falsely-
    // declared broker keeps its links and simply rejoins when hellos
    // resume (full split-brain recovery is future work, matching the
    // paper: "a design for comprehensive fault tolerance ... is a
    // near-term project activity").
    const auto dead = static_cast<NodeId>(msg.payload().get_int("rank", -1));
    if (dead < size() && dead != rank_) dead_ranks_.insert(dead);
    if (dead < size() && dead != 0 && dead != rank_ && topo_.parent(dead)) {
      const auto moved = topo_.heal_around(dead);
      if (!moved.empty())
        log::info("broker", "rank ", rank_, ": healed around dead rank ", dead);
    }
    // Direct RPCs to the dead rank will never see a response (the transport
    // drops traffic to failed brokers); settle them so callers don't hang.
    if (dead < size() && dead != rank_) {
      for (auto it = pending_.begin(); it != pending_.end();) {
        if (it->second.target == dead) {
          auto promise = it->second.promise;
          ex_.cancel(it->second.timer);
          it = pending_.erase(it);
          promise.set_error(Error(errc::host_down, "direct rpc target died"));
        } else {
          ++it;
        }
      }
    }
  }
  // Forward down the (possibly just-healed) tree first.
  for (NodeId c : children()) send(c, msg);
  // Local module subscribers.
  for (auto& [prefix, mod] : module_subs_)
    if (Message::topic_matches(prefix, msg.topic)) mod->handle_event(msg);
  // Local client subscribers. A callback may attach/detach handles (mutating
  // endpoints_) or destroy the very Handle being iterated, so never hold an
  // iterator across a deliver: snapshot the matching ids, then re-look each
  // one up and only deliver if it still exists.
  std::vector<std::uint64_t> matched;
  for (const auto& [id, ep] : endpoints_) {
    for (const auto& prefix : ep.subscriptions) {
      if (Message::topic_matches(prefix, msg.topic)) {
        matched.push_back(id);
        break;
      }
    }
  }
  for (const std::uint64_t id : matched) {
    auto it = endpoints_.find(id);
    if (it != endpoints_.end()) it->second.deliver(msg);
  }
}

// ---------------------------------------------------------------------------
// Broker-internal "cmb" service
// ---------------------------------------------------------------------------

void Broker::handle_cmb_request(Message msg) {
  const auto method = msg.method();
  if (method == "ping") {
    Json payload = msg.payload();
    payload["rank"] = rank_;
    respond(msg.respond(std::move(payload)));
    return;
  }
  if (method == "info") {
    respond(msg.respond(Json::object({{"rank", rank_},
                                      {"size", size()},
                                      {"depth", depth()},
                                      {"arity", topology().arity()},
                                      {"online", online()}})));
    return;
  }
  if (method == "hello") {
    // Wire-up reduction: count descendants reporting in.
    hello_count_ += static_cast<std::uint32_t>(msg.payload().get_int("count", 1));
    maybe_complete_hello();
    return;
  }
  if (method == "rejoin") {
    // Root-only re-admission of a restarted broker (sent direct to rank 0,
    // fire-and-forget: the "cmb.rejoin" event is the acknowledgement). The
    // rejoiner attaches under its nearest live static-tree ancestor — the
    // deterministic dual of grandparent healing.
    const auto back = static_cast<NodeId>(msg.payload().get_int("rank", -1));
    if (!is_root() || back >= size() || back == 0) {
      log::warn("broker", "rank ", rank_, ": ignoring bad rejoin for rank ",
                msg.payload().get_int("rank", -1));
      return;
    }
    dead_ranks_.erase(back);
    NodeId new_parent = 0;
    for (NodeId a = (back - 1) / topology().arity(); a != 0;
         a = (a - 1) / topology().arity()) {
      if (!dead_ranks_.contains(a)) {
        new_parent = a;
        break;
      }
    }
    if (topo_.parent(back) != new_parent) topo_.reparent(back, new_parent);
    Json parents = Json::array();
    for (const auto& p : topo_.parents())
      parents.push_back(p ? Json(static_cast<std::int64_t>(*p)) : Json(-1));
    Json payload = Json::object(
        {{"rank", back}, {"parent", new_parent}, {"parents", std::move(parents)}});
    publish("cmb.rejoin", std::move(payload));
    return;
  }
  if (method == "lsmod") {
    Json mods = Json::array();
    for (auto name : module_names()) mods.push_back(std::string(name));
    respond(msg.respond(Json::object({{"rank", rank_}, {"modules", mods}})));
    return;
  }
  if (method == "stats.get") {
    respond(msg.respond(stats_json(msg.payload().get_bool("all", false))));
    return;
  }
  respond(msg.respond_error(errc::nosys,
                            "cmb has no method '" + std::string(method) + "'"));
}

Json Broker::stats_json(bool all) const {
  Json out = all ? registry_.snapshot() : registry_.snapshot("cmb");
  out["rank"] = rank_;
  // Fold the core routing counters in under the registry's naming scheme so
  // aggregation code sees one uniform counter map.
  Json& counters = out["counters"];
  counters["cmb.requests_dispatched"] = stats_.requests_dispatched;
  counters["cmb.requests_forwarded"] = stats_.requests_forwarded;
  counters["cmb.responses_routed"] = stats_.responses_routed;
  counters["cmb.events_published"] = stats_.events_published;
  counters["cmb.events_delivered"] = stats_.events_delivered;
  counters["cmb.ring_forwarded"] = stats_.ring_forwarded;
  counters["cmb.rpc_timeouts"] = stats_.rpc_timeouts;
  counters["cmb.responses_dropped"] = stats_.responses_dropped;
  return out;
}

void Broker::maybe_complete_hello() {
  const std::uint32_t descendants =
      static_cast<std::uint32_t>(topology().subtree(rank_).size()) - 1;
  if (hello_sent_ || hello_count_ < descendants) return;
  hello_sent_ = true;
  if (is_root()) {
    publish("cmb.online", Json::object({{"size", size()}}));
    return;
  }
  Message hello = Message::request("cmb.hello");
  hello.nodeid = *parent();
  hello.mutable_payload()["count"] = hello_count_ + 1;
  // Direct tree hop: hello is consumed by the parent broker.
  send(*parent(), std::move(hello));
}

// ---------------------------------------------------------------------------

void Broker::send(NodeId to, Message msg) {
  net_tx_msgs_->inc();
  net_tx_bytes_->inc(static_cast<std::uint64_t>(msg.wire_size()));
  session_.send(rank_, to, std::move(msg));
}

void Broker::fail() {
  failed_ = true;
  // Give modules with durable state their crash hook (torn-write injection)
  // before anything else observes the failure.
  for (auto& m : modules_) m->on_fail();
  // Settle outstanding local RPCs so client coroutines do not leak.
  for (auto& [tag, pending] : pending_) {
    ex_.cancel(pending.timer);
    pending.promise.set_error(Error(errc::host_down, "broker failed"));
  }
  pending_.clear();
}

void Broker::restart() {
  if (!failed_) return;
  failed_ = false;
  online_.store(false, std::memory_order_release);

  // A restarted CMB is a fresh process: tear down the crashed instance's
  // modules (their endpoints and event subscriptions with them) and build
  // new ones from the session config. Client endpoints that were attached
  // to this broker died with it and are NOT preserved.
  for (auto& m : modules_) remove_endpoint(m->endpoint_id());
  module_subs_.clear();
  modules_by_name_.clear();
  modules_.clear();
  // RPCs submitted while the broker was down piled up in pending_ (their
  // sends were dropped). Settle them — silently clearing would strand each
  // caller's timeout timer against a missing entry, parking the coroutine
  // forever.
  for (auto& [tag, pending] : pending_) {
    ex_.cancel(pending.timer);
    pending.promise.set_error(Error(errc::host_down, "broker restarted"));
  }
  pending_.clear();
  dead_ranks_.clear();
  if (!is_root()) {
    last_event_seq_ = 0;  // accept the next sequenced event, whatever it is
    next_event_seq_ = 1;
  }
  // Root restart keeps its sequencer counters: it is the event sequencer,
  // and resetting would re-issue seq numbers downstream brokers already saw
  // (deliver_event suppresses duplicates), silencing the whole event plane.
  // The hello reduction completed long ago; suppress a re-send.
  hello_count_ = 0;
  hello_sent_ = true;
  // Start from the session's base topology; the cmb.rejoin event overwrites
  // it with the root's authoritative (healed) parent relation.
  topo_ = session_.topology();

  session_.add_modules(*this);
  for (auto& m : modules_) m->start();

  if (is_root()) {
    // No upstream to rejoin through (handle_cmb_request refuses a rejoin
    // for rank 0): the root readmits itself. Modules recover durable state
    // in start() — the KVS master republishes its recovered root.
    online_.store(true, std::memory_order_release);
    log::info("broker", "rank 0: restarted in place (session root)");
    return;
  }
  log::info("broker", "rank ", rank_, ": restarting, requesting rejoin");
  Message req = Message::request("cmb.rejoin");
  req.nodeid = 0;
  req.mutable_payload()["rank"] = rank_;
  send(0, std::move(req));
}

}  // namespace flux
