// The Comms Message Broker (CMB).
//
// One Broker runs per (simulated or threaded) node of a comms session. It is
// a pure reactor: all activity enters through receive()/submit() callbacks on
// its executor. The broker implements the three overlay planes of Figure 1:
//
//  - request/response + reduction TREE: requests addressed to kNodeAny are
//    dispatched to the first loaded module whose name matches the topic's
//    leading component, else forwarded to the tree parent ("routed upstream
//    ... to the first comms module that matches"). Each forwarding hop is
//    pushed on the route stack; responses unwind it "through the same set of
//    hops, in reverse".
//  - EVENT plane: publish() forwards to the session root, which assigns a
//    global sequence number and broadcasts down the tree; brokers deliver to
//    local subscribers in sequence order.
//  - RING plane: requests addressed to a concrete rank hop around the ring
//    ("allows ranks to be trivially reached without routing tables");
//    responses ride the ring back to the originating rank.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "broker/module.hpp"
#include "exec/executor.hpp"
#include "exec/future.hpp"
#include "msg/message.hpp"
#include "net/topology.hpp"
#include "obs/stats.hpp"

namespace flux {

class Session;

class Broker {
 public:
  Broker(Session& session, NodeId rank, Executor& ex);
  ~Broker();
  Broker(const Broker&) = delete;
  Broker& operator=(const Broker&) = delete;

  // -- identity -------------------------------------------------------------
  [[nodiscard]] NodeId rank() const noexcept { return rank_; }
  [[nodiscard]] std::uint32_t size() const noexcept;
  [[nodiscard]] bool is_root() const noexcept;
  [[nodiscard]] unsigned depth() const;
  [[nodiscard]] std::optional<NodeId> parent() const;
  [[nodiscard]] std::vector<NodeId> children() const;
  [[nodiscard]] Executor& executor() noexcept { return ex_; }
  [[nodiscard]] Session& session() noexcept { return session_; }
  [[nodiscard]] const Topology& topology() const;

  /// Per-module configuration subtree from SessionConfig::module_config.
  [[nodiscard]] Json module_config(std::string_view module_name) const;

  // -- lifecycle --------------------------------------------------------------
  void add_module(std::unique_ptr<Module> m);
  void start();     ///< start modules, then begin hello wire-up reduction
  void shutdown();  ///< stop modules
  [[nodiscard]] Module* find_module(std::string_view service) noexcept;
  [[nodiscard]] std::vector<std::string_view> module_names() const;

  // -- endpoints (clients attach here; each module also gets one) -----------
  using EndpointFn = std::function<void(Message)>;
  std::uint64_t add_endpoint(EndpointFn deliver);
  void remove_endpoint(std::uint64_t id);
  void subscribe(std::uint64_t endpoint, std::string topic_prefix);
  void unsubscribe(std::uint64_t endpoint, std::string_view topic_prefix);

  // -- message entry points --------------------------------------------------
  /// Transport delivery (posted on this broker's executor).
  void receive(Message msg);
  /// A local endpoint submits a request; the response resolves the future.
  /// Travels through the node-local transport hop (models the UNIX-domain
  /// socket clients use in the paper's prototype).
  Future<Message> rpc(std::uint64_t endpoint, Message req);
  /// rpc() with a deadline; resolves ETIMEDOUT if no response in time.
  Future<Message> rpc(std::uint64_t endpoint, Message req, Duration timeout);
  /// Submit a request expecting no response.
  void submit(std::uint64_t endpoint, Message req);

  // -- services for modules ---------------------------------------------------
  /// Send a fully-built response on its way (unwinds the route stack).
  void respond(Message resp);
  /// Forward (an possibly rewritten/aggregated) request to the tree parent.
  /// Must not be called on the root.
  void forward_upstream(Message req);
  /// Publish an event (sequenced by the session root, broadcast to all).
  void publish(Message ev);
  void publish(std::string topic, Json payload = Json::object());
  /// Module-initiated RPC (routed like any request).
  Future<Message> module_rpc(Module& m, Message req);
  /// module_rpc() with a per-attempt deadline; resolves errc::timeout if no
  /// response in time (module-internal RPCs otherwise never fail locally,
  /// which turns a dropped request into a permanent hang).
  Future<Message> module_rpc(Module& m, Message req, Duration timeout);
  /// Module-initiated RPC sent straight to `to` over the transport; the
  /// response also returns direct (RouteHop::Kind::Direct). This is the
  /// sharded-KVS overlay hop: per-shard reduction trees are not session
  /// topology, so their edges bypass both tree and ring routing. If `to`
  /// is later declared dead ("live.down"), the pending RPC settles with
  /// EHOSTDOWN instead of hanging.
  Future<Message> direct_rpc(Module& m, NodeId to, Message req);
  /// direct_rpc() with a per-attempt deadline (see module_rpc overload).
  Future<Message> direct_rpc(Module& m, NodeId to, Message req, Duration timeout);
  /// Fire-and-forget request sent straight to `to` (no response expected);
  /// the direct-edge analogue of forward_upstream.
  void forward_direct(NodeId to, Message req);
  /// Subscribe a module to an event topic prefix.
  void module_subscribe(Module& m, std::string topic_prefix);

  // -- fault injection ---------------------------------------------------------
  [[nodiscard]] bool failed() const noexcept { return failed_; }
  /// Stop participating: all subsequent receives are dropped.
  void fail();
  /// Come back from fail() as a fresh process: new module instances, no
  /// pending RPCs, no event history. Sends "cmb.rejoin" straight to the
  /// root; the root re-attaches this rank under its nearest live ancestor
  /// and broadcasts the new parent relation, which doubles as this broker's
  /// wire-up confirmation (online() flips when the event arrives).
  void restart();
  /// Ranks this broker has seen declared dead (via "live.down") and not yet
  /// rejoined. The root consults this to pick a rejoin parent.
  [[nodiscard]] const std::set<NodeId>& dead_ranks() const noexcept {
    return dead_ranks_;
  }

  /// True once the session-wide hello reduction reached the root and the
  /// "cmb.online" event came back down.
  [[nodiscard]] bool online() const noexcept {
    return online_.load(std::memory_order_acquire);
  }

  struct Stats {
    std::uint64_t requests_dispatched = 0;
    std::uint64_t requests_forwarded = 0;
    std::uint64_t responses_routed = 0;
    std::uint64_t events_published = 0;
    std::uint64_t events_delivered = 0;
    std::uint64_t ring_forwarded = 0;
    std::uint64_t rpc_timeouts = 0;        ///< local RPCs resolved ETIMEDOUT
    std::uint64_t responses_dropped = 0;   ///< late/unmatched responses
  };
  [[nodiscard]] const Stats& stats() const noexcept { return stats_; }

  /// This broker's observability registry. Reactor-confined: only touch it
  /// from this broker's executor (see obs/stats.hpp).
  [[nodiscard]] obs::StatsRegistry& stats_registry() noexcept { return registry_; }
  [[nodiscard]] const obs::StatsRegistry& stats_registry() const noexcept {
    return registry_;
  }

  /// The "cmb" service's stats.get payload: core routing counters plus the
  /// registry's cmb.* instruments (all registry services with all=true).
  [[nodiscard]] Json stats_json(bool all = false) const;

 private:
  struct Endpoint {
    EndpointFn deliver;
    std::vector<std::string> subscriptions;
  };

  void route_request(Message msg);
  void route_response(Message msg);
  void dispatch_local(Message msg, Module& m);
  void handle_cmb_request(Message msg);  ///< broker-internal "cmb.*" service
  void on_event_from_below(Message msg);
  void deliver_event(const Message& msg);
  void send(NodeId to, Message msg);
  void maybe_complete_hello();
  /// Settle the pending RPC `tag` with errc::timeout after `timeout` passes
  /// (no-op if the response already arrived).
  void arm_rpc_timeout(std::uint32_t tag, Duration timeout, std::string topic);

  Session& session_;
  NodeId rank_;
  Executor& ex_;
  /// Broker-local replica of the overlay topology. Healing ("live.down"
  /// events) mutates each replica on its own reactor, so threaded sessions
  /// never share mutable topology state across threads.
  Topology topo_;
  bool failed_ = false;
  std::set<NodeId> dead_ranks_;
  // Read by Session::wait_online from a foreign thread in threaded sessions;
  // written only on this broker's reactor.
  std::atomic<bool> online_{false};

  std::vector<std::unique_ptr<Module>> modules_;
  std::map<std::string, Module*, std::less<>> modules_by_name_;

  std::uint64_t next_endpoint_ = 1;
  std::map<std::uint64_t, Endpoint> endpoints_;
  // Module event subscriptions: (prefix, module).
  std::vector<std::pair<std::string, Module*>> module_subs_;

  // Pending RPCs issued from this broker's endpoints/modules. The issue
  // timestamp feeds the cmb.rpc_ns latency histogram at resolution.
  struct PendingRpc {
    Promise<Message> promise;
    TimePoint start;
    /// Concrete destination rank for direct RPCs (settled on "live.down");
    /// kNodeAny for tree/ring RPCs whose destination routing decides.
    NodeId target = kNodeAny;
    /// Cancelable timeout event (0 = none armed); canceled on resolution so
    /// a settled RPC's deadline does not keep the simulation alive.
    std::uint64_t timer = 0;
  };
  std::uint32_t next_matchtag_ = 1;
  std::map<std::uint32_t, PendingRpc> pending_;

  // Event sequencing (root) and delivery ordering (all).
  std::uint64_t next_event_seq_ = 1;
  std::uint64_t last_event_seq_ = 0;

  // Wire-up hello reduction state.
  std::uint32_t hello_count_ = 0;  // descendants reported (excluding self)
  bool hello_sent_ = false;

  Stats stats_;
  obs::StatsRegistry registry_;
  // Net traffic counters, resolved once in the constructor (receive/send are
  // the hottest broker paths; no per-message registry lookup).
  obs::Counter* net_rx_msgs_ = nullptr;
  obs::Counter* net_rx_bytes_ = nullptr;
  obs::Counter* net_tx_msgs_ = nullptr;
  obs::Counter* net_tx_bytes_ = nullptr;
};

}  // namespace flux
