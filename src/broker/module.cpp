#include "broker/module.hpp"

#include "broker/broker.hpp"

namespace flux {

void ModuleBase::handle_request(Message msg) {
  if (requests_counter_ == nullptr) {
    requests_counter_ =
        &broker().stats_registry().counter(std::string(name()) + ".requests");
  }
  requests_counter_->inc();
  const auto method = msg.method();
  auto it = handlers_.find(method);
  if (it == handlers_.end()) {
    if (method == "stats.get") {
      respond_ok(msg, stats_json());
      return;
    }
    respond_error(msg, errc::nosys,
                  "module '" + std::string(name()) + "' has no method '" +
                      std::string(method) + "'");
    return;
  }
  it->second(msg);
}

Json ModuleBase::stats_json() const {
  Json out = broker().stats_registry().snapshot(name());
  out["rank"] = broker().rank();
  return out;
}

void ModuleBase::respond_error(const Message& req, Errc code,
                               std::string_view what) {
  broker().respond(req.respond_error(code, what));
}

void ModuleBase::respond_ok(const Message& req, Json payload) {
  broker().respond(req.respond(std::move(payload)));
}

}  // namespace flux
