#include "broker/module.hpp"

#include "broker/broker.hpp"

namespace flux {

void ModuleBase::handle_request(Message msg) {
  const auto method = msg.method();
  auto it = handlers_.find(method);
  if (it == handlers_.end()) {
    respond_error(msg, Errc::NoSys,
                  "module '" + std::string(name()) + "' has no method '" +
                      std::string(method) + "'");
    return;
  }
  it->second(msg);
}

void ModuleBase::respond_error(const Message& req, Errc code,
                               std::string_view what) {
  broker().respond(req.respond_error(code, what));
}

void ModuleBase::respond_ok(const Message& req, Json payload) {
  broker().respond(req.respond(std::move(payload)));
}

}  // namespace flux
