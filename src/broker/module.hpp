// Comms module interface (paper §IV-A, Table I).
//
// Comms modules are "plugins which are loaded into the CMB address space and
// pass messages over shared memory". A module owns a service name (the
// leading topic component); requests whose topic matches are dispatched to it
// on the broker where routing first finds the module loaded. Modules may be
// loaded only up to a configurable tree depth "to tune [their] level of
// distribution"; requests from deeper brokers route upstream transparently.
#pragma once

#include <functional>
#include <map>
#include <string>
#include <string_view>

#include "json/json.hpp"
#include "msg/message.hpp"
#include "obs/stats.hpp"

namespace flux {

class Broker;

class Module {
 public:
  explicit Module(Broker& broker) : broker_(broker) {}
  virtual ~Module() = default;
  Module(const Module&) = delete;
  Module& operator=(const Module&) = delete;

  /// Service name == leading topic component this module owns ("kvs").
  [[nodiscard]] virtual std::string_view name() const = 0;

  /// Called once after every module of the broker is registered.
  virtual void start() {}
  /// Called at session teardown (before executors stop).
  virtual void shutdown() {}
  /// Called when the owning broker fails (crash injection). The module is
  /// about to be destroyed without shutdown(); durable state must decide
  /// what a crash leaves on disk (see Injector::on_crash_unsynced).
  virtual void on_fail() {}

  /// Dispatch a request addressed to this module.
  virtual void handle_request(Message msg) = 0;
  /// Deliver an event matching one of this module's subscriptions.
  virtual void handle_event(const Message& msg) { (void)msg; }

  /// Broker-assigned endpoint id for module-initiated RPCs.
  [[nodiscard]] std::uint64_t endpoint_id() const noexcept { return endpoint_id_; }
  void set_endpoint_id(std::uint64_t id) noexcept { endpoint_id_ = id; }

 protected:
  [[nodiscard]] Broker& broker() noexcept { return broker_; }
  [[nodiscard]] const Broker& broker() const noexcept { return broker_; }

 private:
  Broker& broker_;
  std::uint64_t endpoint_id_ = 0;
};

/// Convenience base: method-name handler table plus small helpers, the idiom
/// every in-tree module uses. Every ModuleBase answers "<name>.stats.get"
/// with stats_json() and counts dispatched requests in the broker's
/// observability registry as "<name>.requests".
class ModuleBase : public Module {
 public:
  using Module::Module;

  void handle_request(Message msg) override;

  /// The "<name>.stats.get" payload: this module's slice of the broker's
  /// registry ("<name>.*" instruments) plus {"rank"}. Override to fold in
  /// module-internal gauges; call the base and extend its result.
  [[nodiscard]] virtual Json stats_json() const;

 protected:
  using Handler = std::function<void(Message&)>;

  /// Register a handler for topic "<name>.<method>".
  void on(std::string method, Handler h) {
    handlers_.insert_or_assign(std::move(method), std::move(h));
  }

  /// Respond with {errmsg} + code.
  void respond_error(const Message& req, Errc code, std::string_view what = {});
  /// Respond with payload.
  void respond_ok(const Message& req, Json payload = Json::object());

 private:
  std::map<std::string, Handler, std::less<>> handlers_;
  obs::Counter* requests_counter_ = nullptr;  // lazy: name() needs a built vtable
};

}  // namespace flux
