#include "broker/session.hpp"

#include <stdexcept>
#include <thread>

#include "api/handle.hpp"
#include "base/log.hpp"
#include "fault/injector.hpp"
#include "modules/barrier.hpp"
#include "modules/group.hpp"
#include "modules/hb.hpp"
#include "modules/live.hpp"
#include "modules/logmod.hpp"
#include "modules/mon.hpp"
#include "modules/job_ingest.hpp"
#include "modules/job_manager.hpp"
#include "modules/resvc.hpp"
#include "modules/wexec.hpp"
#include "kvs/kvs_module.hpp"
#include "msg/codec.hpp"

namespace flux {

std::unique_ptr<Module> make_module(std::string_view name, Broker& broker) {
  if (name == "hb") return std::make_unique<modules::Heartbeat>(broker);
  if (name == "live") return std::make_unique<modules::Live>(broker);
  if (name == "log") return std::make_unique<modules::Log>(broker);
  if (name == "mon") return std::make_unique<modules::Mon>(broker);
  if (name == "group") return std::make_unique<modules::Group>(broker);
  if (name == "barrier") return std::make_unique<modules::Barrier>(broker);
  if (name == "kvs") return std::make_unique<KvsModule>(broker);
  if (name == "wexec") return std::make_unique<modules::Wexec>(broker);
  if (name == "resvc") return std::make_unique<modules::Resvc>(broker);
  if (name == "job") return std::make_unique<modules::JobIngest>(broker);
  if (name == "job-manager")
    return std::make_unique<modules::JobManager>(broker);
  throw std::invalid_argument("unknown module: " + std::string(name));
}

Session::Session(SessionConfig cfg)
    : cfg_(std::move(cfg)),
      topo_(Topology::tree(cfg_.size, cfg_.tree_arity)) {}

Session::~Session() {
  if (sim_ex_) {
    // Failed brokers shut down too: their modules may hold parked coroutines
    // (e.g. KVS version waiters) that must settle before teardown.
    for (auto& b : brokers_)
      if (b) b->shutdown();
    // Shutdown settles outstanding RPCs, which posts coroutine resumes; run
    // them now, while brokers are still alive, so parked frames unwind
    // instead of leaking. Modules are stopped, so only settle-error unwinds
    // remain and run() ignores daemon (timer) events.
    sim_ex_->run();
    return;
  }
  // Threaded: each broker's state belongs to its reactor, so shut down there.
  // The reactor drains all ready work (including the posted shutdown and the
  // resumes it triggers) before stop() lets it exit.
  for (NodeId r = 0; r < brokers_.size(); ++r) {
    Broker* b = brokers_[r].get();
    if (b) thread_ex_[r]->post([b] { b->shutdown(); });
  }
  for (auto& ex : thread_ex_) ex->stop();
}

bool Session::module_enabled_at(const std::string& name, NodeId rank) const {
  auto it = cfg_.module_max_depth.find(name);
  if (it == cfg_.module_max_depth.end()) return true;
  return topo_.depth(rank) <= it->second;
}

void Session::add_modules(Broker& b) {
  for (const auto& name : cfg_.modules)
    if (module_enabled_at(name, b.rank())) b.add_module(make_module(name, b));
}

void Session::build_brokers() {
  brokers_.reserve(cfg_.size);
  for (NodeId r = 0; r < cfg_.size; ++r) {
    auto& ex = executor(r);
    auto b = std::make_unique<Broker>(*this, r, ex);
    add_modules(*b);
    brokers_.push_back(std::move(b));
  }
  for (NodeId r = 0; r < cfg_.size; ++r) {
    Broker* b = brokers_[r].get();
    executor(r).post([b] { b->start(); });
  }
}

std::unique_ptr<Session> Session::create_sim(SimExecutor& ex, SessionConfig cfg) {
  auto s = std::unique_ptr<Session>(new Session(std::move(cfg)));
  s->sim_ex_ = &ex;
  s->simnet_ = std::make_unique<SimNet>(ex, s->cfg_.net, s->cfg_.size);
  s->simnet_->set_delivery([self = s.get()](NodeId to, Message msg) {
    self->broker(to).receive(std::move(msg));
  });
  s->build_brokers();
  return s;
}

std::unique_ptr<Session> Session::create_threaded(SessionConfig cfg) {
  auto s = std::unique_ptr<Session>(new Session(std::move(cfg)));
  // Real-thread reactors compete for host cores with clients (and sanitizers),
  // so one can be descheduled past several 1 ms heartbeats.  A false positive
  // is fatal — a wrongly-declared broker never rejoins — so unless the caller
  // tuned the detector, give it wall-clock slack (~1 s at the default period).
  Json& live_cfg = s->cfg_.module_config["live"];
  if (live_cfg.get_int("missed_max", -1) < 0) live_cfg["missed_max"] = 1000;
  s->thread_ex_.reserve(s->cfg_.size);
  for (std::uint32_t r = 0; r < s->cfg_.size; ++r)
    s->thread_ex_.push_back(std::make_unique<ThreadExecutor>());
  s->build_brokers();
  s->inboxes_.reserve(s->cfg_.size);
  for (std::uint32_t r = 0; r < s->cfg_.size; ++r) {
    Broker* b = s->brokers_[r].get();
    s->inboxes_.push_back(std::make_unique<MsgInbox>(
        *s->thread_ex_[r], [b](Message m) { b->receive(std::move(m)); }));
  }
  for (auto& ex : s->thread_ex_) ex->start();
  return s;
}

Executor& Session::executor(NodeId rank) {
  if (sim_ex_) return *sim_ex_;
  return *thread_ex_.at(rank);
}

std::unique_ptr<Handle> Session::attach(NodeId rank) {
  return std::make_unique<Handle>(broker(rank));
}

void Session::send(NodeId from, NodeId to, Message msg) {
  if (fault::Injector* inj = injector_.load(std::memory_order_acquire)) {
    const fault::Verdict v = inj->on_send(from, to, msg);
    switch (v.action) {
      case fault::Verdict::Action::deliver:
        break;
      case fault::Verdict::Action::drop:
        return;
      case fault::Verdict::Action::delay:
        // Park on the sender's reactor, then take the real transport hop
        // (bypassing re-injection). Later traffic on the link overtakes the
        // parked message, so delay doubles as reordering.
        executor(from).post_after(v.delay,
                                  [this, from, to, m = std::move(msg)]() mutable {
                                    send_now(from, to, std::move(m));
                                  });
        return;
      case fault::Verdict::Action::corrupt: {
        // Bit-flip one byte of the encoded frame. If the frame no longer
        // decodes, the link "dropped a mangled packet"; if it does, the
        // receiver sees the altered message and must cope.
        auto wire = encode(msg);
        if (wire.empty()) return;
        wire[v.corrupt_pos % wire.size()] ^= v.corrupt_xor;
        auto decoded = decode(wire);
        if (!decoded) return;
        send_now(from, to, std::move(decoded).value());
        return;
      }
    }
  }
  send_now(from, to, std::move(msg));
}

void Session::send_now(NodeId from, NodeId to, Message msg) {
  // Unroutable address (possible under fault-injected corruption of route
  // hops): the transport refuses it rather than indexing out of range.
  if (from >= cfg_.size || to >= cfg_.size) return;
  if (simnet_) {
    simnet_->send(from, to, std::move(msg));
    return;
  }
  // Threaded transport: round-trip through the wire codec (serialization is
  // exercised for real), then hand the shared frame to the destination's
  // inbox. The inbox batches delivery — a burst of frames costs one reactor
  // wakeup, and the receiver drains up to MsgInbox::kMaxDrain per turn. The
  // receiver decodes zero-copy: the message's body aliases the frame, so a
  // forwarding hop re-emits it without re-serializing.
  if (broker(from).failed() || broker(to).failed()) return;
  inboxes_.at(to)->push(encode_shared(msg));
}

void Session::fail(NodeId rank) {
  Broker* b = brokers_.at(rank).get();
  executor(rank).post([b] { b->fail(); });
  if (simnet_) simnet_->fail(rank);
}

void Session::restart(NodeId rank) {
  Broker* b = brokers_.at(rank).get();
  if (simnet_) simnet_->restore(rank);
  executor(rank).post([b] { b->restart(); });
}

void Session::heal_around(NodeId dead) { topo_.heal_around(dead); }

bool Session::all_online() const {
  for (const auto& b : brokers_)
    if (!b->failed() && !b->online()) return false;
  return true;
}

Duration Session::run_until_online() {
  if (!sim_ex_) throw std::logic_error("run_until_online: sim sessions only");
  const TimePoint start = sim_ex_->now();
  while (!all_online()) {
    if (!sim_ex_->run_one())
      throw std::runtime_error("session wire-up stalled (simulator idle)");
  }
  return sim_ex_->now() - start;
}

bool Session::wait_online(Duration timeout) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::duration_cast<std::chrono::nanoseconds>(timeout);
  while (!all_online()) {
    if (std::chrono::steady_clock::now() > deadline) return false;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  return true;
}

}  // namespace flux
