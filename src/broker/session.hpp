// A comms session: the set of CMB brokers wired into the three overlay
// planes, plus the transport that connects them.
//
// Two factory modes share every line of broker/module/KVS logic:
//  - create_sim: all brokers share one SimExecutor; messages travel through
//    the SimNet latency/bandwidth model. Deterministic, scales to the
//    paper's 512 nodes × 16 processes in one address space.
//  - create_threaded: one reactor thread per broker; messages are encoded
//    with the wire codec, handed to the destination thread, and decoded —
//    real concurrency, real serialization.
#pragma once

#include <atomic>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "base/retry.hpp"
#include "broker/broker.hpp"
#include "exec/sim_executor.hpp"
#include "exec/thread_executor.hpp"
#include "net/inbox.hpp"
#include "net/simnet.hpp"
#include "net/topology.hpp"

namespace flux {

class Handle;

namespace fault {
class Injector;
}  // namespace fault

struct SessionConfig {
  std::uint32_t size = 1;
  std::uint32_t tree_arity = 2;
  NetParams net{};

  /// Modules to load, by name. The default set is Table I of the paper plus
  /// the job pipeline (job = ingest, job-manager = queue/schedule/dispatch).
  std::vector<std::string> modules{"hb",    "live",  "log",   "mon",
                                   "group", "barrier", "kvs", "wexec",
                                   "resvc", "job",   "job-manager"};

  /// Per-module configuration: {"hb": {"period_us": 1000}, ...}.
  Json module_config = Json::object();

  /// Optional per-module maximum tree depth: a module is loaded only on
  /// brokers with depth(rank) <= depth; deeper brokers route its requests
  /// upstream ("loaded at a configurable tree depth to tune its level of
  /// distribution or to conserve node resources", §IV-A).
  std::map<std::string, unsigned, std::less<>> module_max_depth;

  /// Session-wide default RPC policy. Every Handle starts from this;
  /// RequestBuilder::timeout()/retry() override per request. The zero
  /// default means "no deadline, no retries" (pre-existing behavior).
  RetryPolicy rpc{};

  std::uint64_t seed = 1;
};

class Session {
 public:
  ~Session();
  Session(const Session&) = delete;
  Session& operator=(const Session&) = delete;

  /// Build a simulated session. Brokers exist immediately; run the executor
  /// (e.g. run_until_online()) to complete the wire-up reduction.
  static std::unique_ptr<Session> create_sim(SimExecutor& ex, SessionConfig cfg);

  /// Build a threaded session; brokers start immediately on their threads.
  static std::unique_ptr<Session> create_threaded(SessionConfig cfg);

  [[nodiscard]] std::uint32_t size() const noexcept { return cfg_.size; }
  [[nodiscard]] const SessionConfig& config() const noexcept { return cfg_; }
  [[nodiscard]] bool threaded() const noexcept { return !thread_ex_.empty(); }

  [[nodiscard]] Topology& topology() noexcept { return topo_; }
  [[nodiscard]] const Topology& topology() const noexcept { return topo_; }

  [[nodiscard]] Broker& broker(NodeId rank) { return *brokers_.at(rank); }
  [[nodiscard]] Executor& executor(NodeId rank);

  /// SimNet when simulated, nullptr when threaded.
  [[nodiscard]] SimNet* simnet() noexcept { return simnet_.get(); }

  /// Attach a client handle to the broker at `rank` (the paper's UNIX-domain
  /// socket connection).
  std::unique_ptr<Handle> attach(NodeId rank);

  /// Transport send (used by brokers). from==to is the node-local hop.
  void send(NodeId from, NodeId to, Message msg);

  /// Fault injection: broker stops processing; its traffic is dropped.
  void fail(NodeId rank);
  /// Restart a failed broker: fresh module instances, fresh event/RPC state,
  /// then the cmb.rejoin handshake with the root re-attaches it to the tree
  /// (and modules resync — e.g. KVS roots from the content store).
  void restart(NodeId rank);
  /// Heal the tree around a (failed) rank: its children re-parent to their
  /// grandparent. Normally triggered by the live module's "live.down" event.
  void heal_around(NodeId dead);

  /// Install (or clear, with nullptr) a transport fault injector. Every
  /// send() consults it; it may drop, delay, or corrupt messages. The
  /// injector must outlive the session or be cleared before destruction.
  /// Atomic because threaded reactors read it concurrently with arming.
  void set_fault_injector(fault::Injector* injector) noexcept {
    injector_.store(injector, std::memory_order_release);
  }

  /// The installed injector (nullptr if none). Modules with durable state
  /// consult it on broker failure (Injector::on_crash_unsynced).
  [[nodiscard]] fault::Injector* fault_injector() const noexcept {
    return injector_.load(std::memory_order_acquire);
  }

  /// Instantiate the configured module set on `b` (per module_max_depth).
  /// Used at session build and again by Broker::restart for a rejoin.
  void add_modules(Broker& b);

  /// Sim only: run the executor until every live broker reports online.
  /// Returns simulated wire-up duration. Throws if the sim goes idle first.
  Duration run_until_online();

  /// True when all live brokers are online.
  [[nodiscard]] bool all_online() const;

  /// Threaded only: block until all brokers are online (with timeout).
  bool wait_online(Duration timeout = std::chrono::seconds(5));

 private:
  Session(SessionConfig cfg);
  void build_brokers();
  [[nodiscard]] bool module_enabled_at(const std::string& name, NodeId rank) const;
  /// send() after fault injection: the real transport hop.
  void send_now(NodeId from, NodeId to, Message msg);

  SessionConfig cfg_;
  std::atomic<fault::Injector*> injector_{nullptr};
  Topology topo_;
  SimExecutor* sim_ex_ = nullptr;                  // sim mode
  std::unique_ptr<SimNet> simnet_;                 // sim mode
  std::vector<std::unique_ptr<ThreadExecutor>> thread_ex_;  // threaded mode
  std::vector<std::unique_ptr<MsgInbox>> inboxes_;          // threaded mode
  std::vector<std::unique_ptr<Broker>> brokers_;
};

/// Instantiate a module by Table-I name ("hb", "live", "log", "mon", "group",
/// "barrier", "kvs", "wexec", "resvc", "job", "job-manager"). Throws
/// std::invalid_argument for unknown names.
std::unique_ptr<Module> make_module(std::string_view name, Broker& broker);

}  // namespace flux
