#include "check/explorer.hpp"

#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <utility>
#include <vector>

#include "api/handle.hpp"
#include "api/job_client.hpp"
#include "base/retry.hpp"
#include "broker/session.hpp"
#include "check/history.hpp"
#include "exec/sim_executor.hpp"
#include "fault/plan.hpp"
#include "kvs/content_backend.hpp"
#include "kvs/kvs_client.hpp"
#include "kvs/shard_map.hpp"
#include "obs/stats.hpp"

namespace flux::check {

namespace {

/// Separate stream for fault-plan synthesis so the jitter stream (seeded with
/// the run seed directly) stays independent of whether faults are on.
constexpr std::uint64_t kFaultStream = 0x9e3779b97f4a7c15ULL;

SessionConfig dst_config(std::uint64_t seed, const DstOptions& opt,
                         const std::string& persist_path) {
  SessionConfig cfg;
  cfg.size = opt.size;
  cfg.tree_arity = opt.arity;
  cfg.seed = seed;
  Json kvs = Json::object();
  if (opt.shards > 1) {
    kvs["shards"] = static_cast<std::int64_t>(opt.shards);
    if (opt.failover) kvs["failover"] = true;
  }
  if (!persist_path.empty()) {
    // Tight cadences so a short DST run still crosses checkpoint and GC
    // boundaries (the interesting recovery states live there).
    kvs["persist"] = Json::object({{"path", persist_path},
                                   {"checkpoint_every", 8},
                                   {"gc_every", 16},
                                   {"retention", 4}});
  }
  cfg.module_config =
      Json::object({{"hb", Json::object({{"period_us", 100}})},
                    {"live", Json::object({{"missed_max", 3}})},
                    {"kvs", std::move(kvs)}});
  // No-hang safety net (the chaos-suite idiom): every client RPC gets a
  // deadline plus retries, so a lost message surfaces as a typed error the
  // recorder logs instead of wedging the run.
  // With the job workload on, waits span queueing + scheduling + execution,
  // so the per-attempt deadline is widened (virtual time is free; this only
  // bounds how long a genuinely lost message can wedge a client).
  cfg.rpc = opt.jobs ? RetryPolicy{std::chrono::milliseconds(20), 3,
                                   std::chrono::microseconds(200)}
                     : RetryPolicy{std::chrono::milliseconds(2), 3,
                                   std::chrono::microseconds(100)};
  cfg.net.jitter_max = opt.jitter_max;
  cfg.net.jitter_seed = seed;
  return cfg;
}

/// A read that tolerates its own typed failure. The recorder logged the get
/// (absent, or with its errc) either way; swallowing here keeps one failed
/// read — possibly the very violation a mutation injects — from skipping the
/// rest of the round, in particular the peer fence read that distinguishes
/// fence-atomicity from read-your-writes.
Task<void> try_get(KvsClient* kvs, std::string key) {
  try {
    (void)co_await kvs->get(std::move(key));
  } catch (const FluxException&) {
  }
}

Task<void> dst_client(Handle* h, KvsClient* kvs, int id, int nclients,
                      int rounds, int* done) {
  for (int r = 0; r < rounds; ++r) {
    try {
      co_await h->sleep(std::chrono::microseconds(150 + 70 * id));
      if (id == 0) {
        // The watched key: rewritten once per round by client 0 only, so
        // every other commit below is a root update that does NOT change it.
        // (Json literals are hoisted out of the co_await expressions here and
        // below: gcc 12 cannot keep an initializer_list temporary alive
        // across a suspension point — "array used as initializer".)
        Json wv = Json::object({{"r", r}});
        co_await kvs->put("w.main", std::move(wv));
        co_await kvs->commit();
      }
      // Solo commit + own read-back (read-your-writes). Top-level dirs are
      // per client, so sharded sessions spread these across shards.
      const std::string own =
          "c" + std::to_string(id) + ".k" + std::to_string(r);
      Json ov = Json::object({{"c", id}, {"r", r}});
      co_await kvs->put(own, std::move(ov));
      co_await kvs->commit();
      co_await try_get(kvs, own);
      // Collective fence + own and peer reads (fence atomicity).
      const std::string fkey =
          "f" + std::to_string(id) + ".r" + std::to_string(r);
      Json fv = Json::object({{"f", id}, {"r", r}});
      co_await kvs->put(fkey, std::move(fv));
      co_await kvs->fence("dstfence.r" + std::to_string(r), nclients);
      co_await try_get(kvs, fkey);
      co_await try_get(kvs, "f" + std::to_string((id + 1) % nclients) + ".r" +
                                std::to_string(r));
    } catch (const FluxException&) {
      // Typed failure under faults: the recorder taps logged it with its
      // errc; the oracle excuses the affected keys.
    }
  }
  ++*done;
}

/// Job-lifecycle client: submits jobs_per_client jobs through the full
/// pipeline, cycling through three shapes — a synthetic walltime sleep, a
/// registered command, and a spinner that gets canceled mid-flight. Every
/// observed jobid lands in `ids` in submission order (the monotonicity
/// oracle's input). Typed failures under faults are tolerated: the job
/// oracles run on what the KVS says afterwards, not on this client's view.
Task<void> jobs_dst_client(Handle* h, int id, int rounds,
                           std::vector<std::uint64_t>* ids, int* done) {
  for (int r = 0; r < rounds; ++r) {
    try {
      co_await h->sleep(std::chrono::microseconds(100 + 80 * id + 17 * r));
      std::optional<JobHandle> jh;
      switch ((id + r) % 3) {
        case 0: {
          JobHandle j = co_await h->job().name("dst-sleep").walltime(
              std::chrono::microseconds(300)).submit();
          jh.emplace(j);
          break;
        }
        case 1: {
          Json args = Json::object({{"text", "dst"}});
          JobHandle j = co_await h->job()
                            .name("dst-echo")
                            .command("echo", std::move(args))
                            .submit();
          jh.emplace(j);
          break;
        }
        default: {
          JobHandle j =
              co_await h->job().name("dst-spin").command("spin").submit();
          jh.emplace(j);
          break;
        }
      }
      ids->push_back(jh->id());
      if ((id + r) % 3 == 2) {
        for (int i = 0; i < 50; ++i) {
          if (co_await jh->state() != JobState::Pending) break;
          co_await h->sleep(std::chrono::microseconds(100));
        }
        co_await jh->cancel();
      }
      (void)co_await jh->wait();
    } catch (const FluxException&) {
      // Lost RPC or dead broker under faults: the submission either never
      // happened or will finish without this client watching. Both are
      // legitimate; the post-run oracles judge the outcome.
    }
  }
  ++*done;
}

/// Post-run job oracles, evaluated against the committed KVS record and the
/// live resvc, not against client-side bookkeeping.
Task<void> jobs_post_check(Handle* h, const std::vector<std::uint64_t>* ids,
                           std::vector<std::string>* out) {
  KvsClient kvs(*h);
  // Per-rank busy intervals [alloc, finish] from each job's eventlog. A
  // job's resources are freed only after its finish event, and the next
  // alloc strictly follows the free, so any overlap is a real
  // double-allocation, never a release-in-flight artifact.
  std::map<std::int64_t, std::vector<std::pair<std::int64_t, std::int64_t>>>
      busy;
  for (const std::uint64_t id : *ids) {
    const std::string base = "job." + std::to_string(id) + ".";
    Json log;
    try {
      log = co_await kvs.get(base + "eventlog");
    } catch (const FluxException&) {
      continue;  // submission raced a fault before the first commit
    }
    std::int64_t t_alloc = -1, t_finish = -1;
    for (const Json& e : log.as_array()) {
      const std::string name = e.get_string("name");
      if (name == "alloc") t_alloc = e.get_int("t");
      if (name == "finish") t_finish = e.get_int("t");
    }
    if (t_alloc >= 0 && t_finish >= 0) {
      try {
        Json ranks = co_await kvs.get(base + "ranks");
        for (const Json& rk : ranks.as_array())
          busy[rk.as_int()].emplace_back(t_alloc, t_finish);
      } catch (const FluxException&) {
      }
    }
    try {
      Json st = co_await kvs.get(base + "state");
      const std::string s = st.as_string();
      if (s != "complete" && s != "canceled" && s != "failed")
        out->push_back("job " + std::to_string(id) +
                       " ended in non-terminal state '" + s + "'");
    } catch (const FluxException&) {
    }
  }
  for (auto& [rank, iv] : busy) {
    std::sort(iv.begin(), iv.end());
    for (std::size_t i = 1; i < iv.size(); ++i)
      if (iv[i].first < iv[i - 1].second)
        out->push_back("rank " + std::to_string(rank) +
                       " double-allocated: [" +
                       std::to_string(iv[i - 1].first) + "," +
                       std::to_string(iv[i - 1].second) + "] overlaps [" +
                       std::to_string(iv[i].first) + "," +
                       std::to_string(iv[i].second) + "]");
  }
  // End state: every allocation returned (a crashed broker's job must Fail
  // or requeue, never leave resvc holding nodes for a dead job).
  try {
    Message st = co_await h->request("resvc.status").call();
    const Json& p = st.payload();
    if (!p.at("jobs").as_array().empty())
      out->push_back("resvc still holds " +
                     std::to_string(p.at("jobs").size()) +
                     " allocation(s) after all jobs finished: " +
                     p.at("jobs").dump());
    const std::int64_t total = p.get_int("total");
    const std::int64_t reachable = p.get_int("free") + p.get_int("down");
    if (reachable != total)
      out->push_back("resvc accounting leak: free+down=" +
                     std::to_string(reachable) + " of " +
                     std::to_string(total) + " nodes");
  } catch (const FluxException&) {
    // Status unreachable under a still-degraded session; the KVS-side
    // oracles above already ran.
  }
}

/// Resolve `key` under `root` in a recovered store by walking directory
/// objects, exactly as the KVS master would. nullopt = not reachable.
std::optional<Json> resolve_key(const ContentStore& store, const Sha1& root,
                                const std::string& key) {
  Sha1 cur = root;
  for (const std::string& comp : split_key(key)) {
    ObjPtr obj = store.get(cur);
    if (!obj || !obj->is_dir()) return std::nullopt;
    const JsonObject& entries = obj->entries();
    const auto it = entries.find(comp);
    if (it == entries.end()) return std::nullopt;
    const std::optional<Sha1> ref = Sha1::parse(it->second.as_string());
    if (!ref) return std::nullopt;
    cur = *ref;
  }
  ObjPtr leaf = store.get(cur);
  if (!leaf || !leaf->is_val()) return std::nullopt;
  return leaf->value();
}

/// The persistence-aware oracle: an offline durability audit run after the
/// session (and with it every backend) is gone. From the recorded history it
/// derives what the workload was *told* is durable — every key staged by a
/// put and covered by a commit/fence that returned ok — then reopens the
/// on-disk log(s), recovers into a fresh store, and requires each acked key
/// to be reachable under the recovered root. Values are compared only for
/// keys written exactly once: for a rewritten key a lost commit *response*
/// legitimately leaves the store one write ahead of the last ack.
///
/// Excuse (mirrors the consistency oracle's taint model): with failover on,
/// a shard whose home master crashed may have served acks from a promoted
/// in-memory master, which by design persists nothing — those shards are
/// skipped. Everything else is a hard violation: ack-after-sync means a
/// crash, even with a torn unsynced tail, never loses an acked commit.
void audit_durability(const std::vector<OpRecord>& ops, const DstOptions& opt,
                      const std::optional<fault::FaultPlan>& plan,
                      const std::string& path,
                      std::vector<std::string>* out) {
  std::map<std::string, Json> acked;
  std::map<std::string, int> writes;
  std::map<int, std::map<std::string, Json>> staged;
  for (const OpRecord& op : ops) {
    switch (op.kind) {
      case OpKind::put:
        if (op.err == errc::ok) {
          staged[op.client][op.key] = op.value;
          ++writes[op.key];
        }
        break;
      case OpKind::commit:
      case OpKind::fence:
        // ok => every put staged since the client's last commit is durable.
        // Failure => conservatively drop them: the commit may still have
        // applied server-side (lost response), which leaves extra data on
        // disk — never audited as missing, never a violation.
        if (op.err == errc::ok)
          for (auto& [k, v] : staged[op.client]) acked[k] = v;
        staged[op.client].clear();
        break;
      default:
        break;
    }
  }
  if (acked.empty()) return;

  std::set<NodeId> crashed;
  if (plan)
    for (const fault::NodeEvent& ev : plan->events())
      if (ev.kind == fault::NodeEvent::Kind::crash) crashed.insert(ev.rank);

  const std::uint32_t nshards = std::max(1u, opt.shards);
  const ShardMap sm(opt.size, nshards, opt.arity);
  std::vector<std::optional<Sha1>> roots(nshards);
  std::vector<std::unique_ptr<ContentStore>> stores(nshards);
  for (std::uint32_t s = 0; s < nshards; ++s) {
    const std::string file =
        nshards > 1 ? path + ".s" + std::to_string(s) : path;
    std::error_code ec;
    if (!std::filesystem::exists(file, ec)) continue;
    stores[s] = std::make_unique<ContentStore>();
    try {
      FileLogBackend backend(file);
      const ContentBackend::Recovered rec = backend.recover(*stores[s]);
      backend.close();
      if (rec.has_root(s)) roots[s] = rec.roots[s];
    } catch (const FluxException& e) {
      out->push_back("shard " + std::to_string(s) +
                     " log unrecoverable: " + std::string(e.what()));
      stores[s].reset();
    }
  }

  for (const auto& [key, value] : acked) {
    const std::uint32_t s = nshards > 1 ? sm.shard_of(key) : 0;
    if (opt.failover && crashed.count(sm.master_rank(s)) != 0) continue;
    if (!stores[s] || !roots[s]) {
      out->push_back("acked key '" + key + "' lost: shard " +
                     std::to_string(s) + " has no recovered root");
      continue;
    }
    const std::optional<Json> got = resolve_key(*stores[s], *roots[s], key);
    if (!got) {
      out->push_back("acked key '" + key +
                     "' not reachable from the recovered root");
      continue;
    }
    if (writes[key] == 1 && got->dump() != value.dump())
      out->push_back("acked key '" + key + "' recovered with wrong value: " +
                     got->dump() + " != acked " + value.dump());
  }
}

/// Best-effort removal of a run's backing files (log, per-shard logs, and
/// compaction temp files).
void remove_persist_files(const std::string& path, std::uint32_t shards) {
  std::error_code ec;
  std::filesystem::remove(path, ec);
  std::filesystem::remove(path + ".tmp", ec);
  for (std::uint32_t s = 0; s < std::max(1u, shards); ++s) {
    std::filesystem::remove(path + ".s" + std::to_string(s), ec);
    std::filesystem::remove(path + ".s" + std::to_string(s) + ".tmp", ec);
  }
}

DstResult run_impl(std::uint64_t seed, const DstOptions& opt,
                   std::optional<fault::FaultPlan> plan) {
  DstResult out;
  out.seed = seed;
  if (plan) out.fault_plan = plan->to_json();

  // Unique backing file per run: pid + process-wide counter + seed, so
  // parallel ctest invocations and repeated seeds never collide.
  std::string persist_path;
  if (opt.persist) {
    static std::atomic<std::uint64_t> counter{0};
    persist_path =
        (std::filesystem::temp_directory_path() /
         ("flux-dst-" + std::to_string(::getpid()) + "-" +
          std::to_string(counter.fetch_add(1)) + "-" + std::to_string(seed) +
          ".log"))
            .string();
  }

  HistoryRecorder rec;
  try {
    SimExecutor ex;
    SessionConfig cfg = dst_config(seed, opt, persist_path);
    auto session = Session::create_sim(ex, cfg);
    session->run_until_online();
    if (plan) plan->arm(*session);

    const int nclients = std::max(1, opt.clients);
    std::vector<NodeId> ranks;
    std::vector<std::unique_ptr<Handle>> handles;
    std::vector<std::unique_ptr<KvsClient>> clients;
    std::vector<WatchHandle> watches;
    for (int i = 0; i < nclients; ++i) {
      // Spread clients over non-root ranks (the root's kvs instance is the
      // master in single-master mode; slaves are where the contract can
      // break), falling back to rank 0 in a 1-node session.
      const NodeId rank =
          opt.size > 1 ? 1 + static_cast<NodeId>(i) % (opt.size - 1) : 0;
      ranks.push_back(rank);
      handles.push_back(session->attach(rank));
      clients.push_back(std::make_unique<KvsClient>(*handles.back()));
      clients.back()->set_recorder(&rec, i);
      watches.push_back(
          clients.back()->watch("w.main", [](const std::optional<Json>&) {}));
    }

    int done = 0;
    for (int i = 0; i < nclients; ++i)
      co_spawn(ex,
               dst_client(handles[static_cast<std::size_t>(i)].get(),
                          clients[static_cast<std::size_t>(i)].get(), i,
                          nclients, opt.rounds, &done),
               "dst-client");

    // Job-lifecycle workload: its clients run concurrently with the KVS
    // clients, sharing the same network, faults, and jitter stream.
    const int njobs_clients = opt.jobs ? nclients : 0;
    std::vector<std::unique_ptr<Handle>> job_handles;
    std::vector<std::vector<std::uint64_t>> job_ids(
        static_cast<std::size_t>(njobs_clients));
    int jobs_done = 0;
    for (int i = 0; i < njobs_clients; ++i) {
      const NodeId rank =
          opt.size > 1 ? 1 + static_cast<NodeId>(nclients + i) % (opt.size - 1)
                       : 0;
      job_handles.push_back(session->attach(rank));
      co_spawn(ex,
               jobs_dst_client(job_handles.back().get(), i,
                               opt.jobs_per_client,
                               &job_ids[static_cast<std::size_t>(i)],
                               &jobs_done),
               "dst-jobs-client");
    }

    ex.run();
    ex.run_for(std::chrono::milliseconds(3));  // heal / failover epochs
    ex.run();                                  // late restarts, rejoins
    out.stalled_clients = (nclients - done) + (njobs_clients - jobs_done);

    if (opt.jobs) {
      // Jobid oracle: per-client submission order is strictly increasing
      // (the root hands ids out monotonically) and no id is ever reused.
      std::set<std::uint64_t> seen;
      std::vector<std::uint64_t> all_ids;
      for (int i = 0; i < njobs_clients; ++i) {
        const auto& ids = job_ids[static_cast<std::size_t>(i)];
        for (std::size_t k = 0; k < ids.size(); ++k) {
          if (k > 0 && ids[k] <= ids[k - 1])
            out.job_violations.push_back(
                "client " + std::to_string(i) + " saw non-monotonic jobids " +
                std::to_string(ids[k - 1]) + " -> " + std::to_string(ids[k]));
          if (!seen.insert(ids[k]).second)
            out.job_violations.push_back("jobid " + std::to_string(ids[k]) +
                                         " assigned twice");
          all_ids.push_back(ids[k]);
        }
      }
      auto checker = session->attach(0);
      co_spawn(ex,
               jobs_post_check(checker.get(), &all_ids, &out.job_violations),
               "dst-jobs-oracle");
      ex.run();
    }

    // Clients on ranks a fault schedule crashed (or restarted): their local
    // version vector may legitimately regress mid-resync.
    OracleOptions oracle_opt;
    if (plan) {
      for (const fault::NodeEvent& ev : plan->events())
        for (int i = 0; i < nclients; ++i)
          if (ranks[static_cast<std::size_t>(i)] == ev.rank)
            oracle_opt.tainted_clients.push_back(i);
    }
    out.history_len = rec.size();
    out.report = check_history(rec.ops(), oracle_opt,
                               &session->broker(0).stats_registry());

    // Drop watches and recorder taps before the session goes away.
    watches.clear();
    for (auto& c : clients) c->set_recorder(nullptr, -1);
    session->set_fault_injector(nullptr);
  } catch (const std::exception& e) {
    out.workload_error = true;
    out.error = e.what();
  }

  // The session (and with it every backend) is destroyed by now — the clean
  // shutdown wrote its final checkpoint, a crashed broker left its torn
  // tail. Audit the on-disk state against the acked history, then clean up.
  if (!persist_path.empty()) {
    if (!out.workload_error)
      audit_durability(rec.ops(), opt, plan, persist_path,
                       &out.durability_violations);
    remove_persist_files(persist_path, opt.shards);
  }
  return out;
}

}  // namespace

DstResult run_schedule(std::uint64_t seed, const DstOptions& opt) {
  std::optional<fault::FaultPlan> plan;
  const bool root_crash = opt.persist && opt.master_crash;
  if (opt.faults || root_crash) {
    fault::FaultPlan::RandomOptions fo;
    fo.size = opt.size;
    fo.horizon = std::chrono::milliseconds(8);
    fo.crashes = opt.faults && opt.crashes;
    fo.restarts = opt.faults && opt.restarts;
    fo.drops = opt.faults && opt.drops;
    fo.delays = opt.faults && opt.delays;
    fo.corruption = false;  // see header: corruption blinds the oracle
    fo.max_crashes = opt.max_crashes;
    // The kill-and-restart scenario: crash the root (the persisting KVS
    // master) and torn-write its unsynced tail; recovery must still serve
    // every acked commit.
    fo.crash_root = root_crash;
    fo.torn_writes = opt.persist;
    plan.emplace(fault::FaultPlan::random(seed ^ kFaultStream, fo));
  }
  return run_impl(seed, opt, std::move(plan));
}

DstResult run_schedule(std::uint64_t seed, const DstOptions& opt,
                       const Json& fault_plan) {
  std::optional<fault::FaultPlan> plan;
  if (!fault_plan.is_null()) plan.emplace(fault::FaultPlan::from_json(fault_plan));
  return run_impl(seed, opt, std::move(plan));
}

std::vector<DstResult> explore(std::uint64_t first, int n,
                               const DstOptions& opt) {
  std::vector<DstResult> failures;
  for (int i = 0; i < n; ++i) {
    const std::uint64_t seed = first + static_cast<std::uint64_t>(i);
    DstResult res = run_schedule(seed, opt);
    if (res.failed()) {
      std::fprintf(stderr, "dst: seed %llu FAILED: %s\n",
                   static_cast<unsigned long long>(seed),
                   res.workload_error ? res.error.c_str()
                                      : res.report.to_string().c_str());
      for (const std::string& v : res.job_violations)
        std::fprintf(stderr, "dst:   job oracle: %s\n", v.c_str());
      for (const std::string& v : res.durability_violations)
        std::fprintf(stderr, "dst:   durability: %s\n", v.c_str());
      failures.push_back(std::move(res));
    }
  }
  return failures;
}

}  // namespace flux::check
