// DST schedule explorer: run a standard KVS workload on a simulated session
// under a 64-bit seed and hand the recorded history to the consistency
// oracle.
//
// One seed fixes everything about a run — the SimNet delivery-jitter stream
// (NetParams::jitter_seed, the tie-break hook), the composed FaultPlan (when
// enabled), and the workload itself — so a failing seed replays bit-for-bit.
// explore() sweeps N consecutive seeds and returns the failures; the
// shrinker (check/shrink.hpp) minimizes one failure into a committed repro.
//
// The workload exercises every checked property: per-client solo commits and
// read-backs (read-your-writes), collective fences with own- and peer-key
// reads after completion (fence atomicity), a watched key one client
// rewrites each round while unrelated commits churn the root (watch order),
// and the setroot/version-vector observations every op samples (monotonic
// reads, setroot sequence).
#pragma once

#include <cstdint>
#include <string>

#include "check/oracle.hpp"
#include "exec/executor.hpp"
#include "json/json.hpp"

namespace flux::check {

struct DstOptions {
  std::uint32_t size = 4;    ///< session size
  std::uint32_t arity = 2;   ///< tree arity
  std::uint32_t shards = 1;  ///< >1 = sharded KVS masters
  bool failover = false;     ///< hb-driven shard-master failover
  int clients = 3;           ///< client handles, spread over ranks 1..size-1
  int rounds = 2;            ///< workload rounds

  /// SimNet delivery perturbation bound; 0 disables the tie-break hook and
  /// the network model is byte-identical to the unperturbed baseline.
  Duration jitter_max{2000};

  /// Compose a FaultPlan synthesized from the run seed. Corruption is
  /// deliberately excluded: a decodable-but-corrupted setroot event would
  /// make the oracle flag the *transport*, not the KVS contract.
  bool faults = false;
  bool crashes = false;
  bool restarts = false;
  bool drops = false;
  bool delays = false;
  int max_crashes = 1;

  /// Persistence matrix dimension: give every KVS master a durable content
  /// backend (file-log, unique temp path per run, removed afterwards) and,
  /// after the session tears down, run the offline durability audit — reopen
  /// the log(s), recover into a fresh store, and require every acked commit's
  /// data to be reachable under the recovered root. Crashes automatically
  /// compose a torn-write rule so unsynced tails are lost realistically.
  bool persist = false;
  /// Crash the session root mid-run and restart it (composed into the fault
  /// plan even when `faults` is off). Requires `persist`: without a durable
  /// backend the master's state is unrecoverable by design. This is the
  /// kill-and-restart scenario: the audit then proves no acked commit from
  /// before the crash was lost.
  bool master_crash = false;

  /// Add a job-lifecycle workload (submit / cancel / complete through the
  /// full ingest -> job-manager -> resvc -> wexec pipeline) alongside the
  /// KVS clients, with its own oracles: jobids are per-client monotone and
  /// globally unique, every job reaches a terminal state, no node is
  /// allocated to two jobs at once (per-rank busy intervals from the
  /// committed eventlogs are disjoint), and the run ends with no orphaned
  /// allocation in resvc.
  bool jobs = false;
  int jobs_per_client = 2;  ///< submissions per job client per run
};

struct DstResult {
  std::uint64_t seed = 0;
  OracleReport report;
  std::size_t history_len = 0;
  /// Workload coroutines that never completed (a hang is a failure too).
  int stalled_clients = 0;
  /// An untyped exception escaped the workload (always a bug).
  bool workload_error = false;
  std::string error;
  /// The fault plan the run composed (null when opt.faults is false).
  Json fault_plan;
  /// Violations of the job-lifecycle oracles (empty when opt.jobs is false).
  std::vector<std::string> job_violations;
  /// Violations of the post-run durability audit (empty when opt.persist is
  /// false): acked commits whose data is not recoverable from the on-disk
  /// log, or a log that fails to recover at all.
  std::vector<std::string> durability_violations;

  [[nodiscard]] bool failed() const noexcept {
    return !report.ok() || stalled_clients > 0 || workload_error ||
           !job_violations.empty() || !durability_violations.empty();
  }
};

/// Run one schedule under `seed` (jitter stream + synthesized fault plan +
/// workload all derive from it).
DstResult run_schedule(std::uint64_t seed, const DstOptions& opt);

/// Same, but replay an explicit fault-plan JSON (FaultPlan::from_json
/// format; pass a null Json for no faults). The shrinker's path.
DstResult run_schedule(std::uint64_t seed, const DstOptions& opt,
                       const Json& fault_plan);

/// Run seeds [first, first + n); returns only the failing results. Each
/// failure's seed is printed to stderr so a human can replay it.
std::vector<DstResult> explore(std::uint64_t first, int n,
                               const DstOptions& opt);

}  // namespace flux::check
