// DST history recorder: the per-session, per-client operation log.
//
// Every client-visible KVS operation (put / get / commit / fence / watch
// callback) plus every observed "kvs.setroot*" event is appended as one
// OpRecord, together with version-vector samples taken from the client's
// *local* kvs module instance at op begin and end. The log's append order is
// the serialization order of the single-threaded simulation, so a completed
// history is a total order the consistency oracle (check/oracle.hpp) can
// replay without re-running anything.
//
// Taps live in KvsClient (kvs/kvs_client.cpp): KvsClient::set_recorder()
// installs the recorder for one logical client id. The recorder itself is
// deliberately dumb — all judgment lives in the oracle.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "base/error.hpp"
#include "json/json.hpp"

namespace flux::check {

enum class OpKind : std::uint8_t { put, get, commit, fence, watch, setroot };

inline std::string_view op_kind_name(OpKind k) noexcept {
  switch (k) {
    case OpKind::put: return "put";
    case OpKind::get: return "get";
    case OpKind::commit: return "commit";
    case OpKind::fence: return "fence";
    case OpKind::watch: return "watch";
    case OpKind::setroot: return "setroot";
  }
  return "?";
}

/// One recorded operation. Which fields are meaningful depends on `kind`;
/// unused fields keep their defaults.
struct OpRecord {
  int client = -1;
  OpKind kind = OpKind::get;

  std::string key;    ///< put/get/watch key; commit/fence: the fence name
  Json value;         ///< put: staged value; get/watch: observed value
  std::string ref;    ///< watch: content address observed ("" = absent)
  bool absent = false;  ///< get/watch: the key did not exist
  errc err = errc::ok;  ///< typed failure (op threw / event malformed)

  /// Local kvs instance's version vector sampled at op begin / end
  /// (single-master sessions: a 1-vector holding the scalar root version).
  std::vector<std::uint64_t> vv_begin;
  std::vector<std::uint64_t> vv_end;

  /// commit/fence response fields.
  std::uint64_t result_version = 0;
  std::vector<std::uint64_t> result_vv;

  /// setroot observation fields.
  std::uint64_t seq = 0;      ///< global event sequence number
  std::int64_t shard = -1;    ///< shard index (-1 = single-master setroot)
  std::uint64_t version = 0;  ///< published root version

  std::int64_t t_ns = 0;  ///< virtual time at the record
};

/// Append-only operation log shared by every tapped client of one session.
class HistoryRecorder {
 public:
  void record(OpRecord r) { ops_.push_back(std::move(r)); }
  [[nodiscard]] const std::vector<OpRecord>& ops() const noexcept {
    return ops_;
  }
  [[nodiscard]] std::size_t size() const noexcept { return ops_.size(); }
  void clear() { ops_.clear(); }

 private:
  std::vector<OpRecord> ops_;
};

}  // namespace flux::check
