#include "check/mutation.hpp"

#include <algorithm>
#include <atomic>
#include <mutex>
#include <vector>

namespace flux::check {

namespace {
// Process-wide registry. Sim tests are single-threaded, but threaded
// sessions exist; the slow path takes a mutex, the hot path only reads the
// counter.
std::atomic<int> g_enabled_count{0};
std::mutex g_mu;
std::vector<std::string>& names() {
  static std::vector<std::string> v;
  return v;
}
}  // namespace

bool mutation(std::string_view name) noexcept {
  if (g_enabled_count.load(std::memory_order_relaxed) == 0) return false;
  std::lock_guard lk(g_mu);
  const auto& v = names();
  return std::find(v.begin(), v.end(), name) != v.end();
}

void mutation_enable(std::string_view name) {
  std::lock_guard lk(g_mu);
  auto& v = names();
  if (std::find(v.begin(), v.end(), name) != v.end()) return;
  v.emplace_back(name);
  g_enabled_count.store(static_cast<int>(v.size()), std::memory_order_relaxed);
}

void mutation_disable(std::string_view name) {
  std::lock_guard lk(g_mu);
  auto& v = names();
  std::erase(v, std::string(name));
  g_enabled_count.store(static_cast<int>(v.size()), std::memory_order_relaxed);
}

void mutation_clear() noexcept {
  std::lock_guard lk(g_mu);
  names().clear();
  g_enabled_count.store(0, std::memory_order_relaxed);
}

}  // namespace flux::check
