// Test-only mutation registry for the DST oracle's "teeth" tests.
//
// A mutation is a named, deliberately-broken code path compiled into the
// runtime but dead unless a test enables it: skip a kvs.setroot version bump,
// fuse a fence after one shard, re-fire an unchanged watch. Each mutation
// breaks exactly one consistency property the oracle (check/oracle.hpp)
// claims to check, so a mutation run that the oracle passes means the oracle
// is blind — that's what tests/test_dst.cpp asserts against.
//
// The query is designed to be free in production paths: when no mutation is
// enabled (always, outside the mutation tests) it is a single relaxed atomic
// load of a zero counter.
#pragma once

#include <string>
#include <string_view>

namespace flux::check {

/// True if `name` is currently enabled. One relaxed atomic load when the
/// registry is empty (the always case outside mutation tests).
[[nodiscard]] bool mutation(std::string_view name) noexcept;

/// Enable / disable a named mutation (idempotent).
void mutation_enable(std::string_view name);
void mutation_disable(std::string_view name);

/// Disable everything (test teardown safety net).
void mutation_clear() noexcept;

/// RAII enable-for-scope, the form the mutation tests use.
class MutationGuard {
 public:
  explicit MutationGuard(std::string_view name) : name_(name) {
    mutation_enable(name_);
  }
  ~MutationGuard() { mutation_disable(name_); }
  MutationGuard(const MutationGuard&) = delete;
  MutationGuard& operator=(const MutationGuard&) = delete;

 private:
  std::string name_;
};

}  // namespace flux::check
