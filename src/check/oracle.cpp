#include "check/oracle.hpp"

#include <algorithm>
#include <map>
#include <set>
#include <sstream>

#include "obs/stats.hpp"

namespace flux::check {

namespace {

/// One value a writer put under a key, in staging order.
struct StagedWrite {
  std::size_t put_index;     ///< history index of the put record
  std::size_t commit_index;  ///< index of the commit/fence that carried it
  bool committed = false;    ///< that commit/fence succeeded
  Json value;
};

std::string vv_str(const std::vector<std::uint64_t>& vv) {
  std::string out = "[";
  for (std::size_t i = 0; i < vv.size(); ++i) {
    if (i) out += ",";
    out += std::to_string(vv[i]);
  }
  return out + "]";
}

}  // namespace

std::vector<std::string> OracleReport::properties() const {
  std::set<std::string> props;
  for (const Violation& v : violations) props.insert(v.property);
  return {props.begin(), props.end()};
}

bool OracleReport::violates(std::string_view property) const {
  return std::any_of(violations.begin(), violations.end(),
                     [&](const Violation& v) { return v.property == property; });
}

std::string OracleReport::to_string() const {
  if (ok()) return "oracle: ok";
  std::ostringstream os;
  os << "oracle: " << violations.size() << " violation(s)";
  for (const Violation& v : violations)
    os << "\n  [" << v.property << "] op#" << v.index << ": " << v.detail;
  return os.str();
}

OracleReport check_history(const std::vector<OpRecord>& ops,
                           const OracleOptions& opt, obs::StatsRegistry* stats) {
  OracleReport rep;
  const auto flag = [&](const char* prop, std::size_t idx, std::string detail) {
    if (stats) stats->counter(std::string("check.violation.") + prop).inc();
    rep.violations.push_back(Violation{prop, idx, std::move(detail)});
  };
  const std::set<int> tainted(opt.tainted_clients.begin(),
                              opt.tainted_clients.end());
  const auto ok_client = [&](int c) { return tainted.find(c) == tainted.end(); };

  // -- pass 1: associate staged puts with the commit/fence that carried them,
  // identify single-writer keys, and mark keys tainted by failed flushes.
  std::map<std::string, std::set<int>> writers;        // key -> writer clients
  std::map<std::string, std::vector<StagedWrite>> kv;  // key -> staged writes
  std::set<std::string> tainted_keys;  // a failed commit/fence touched these
  // Successful fence completion index per (fence name, client).
  std::map<std::string, std::map<int, std::size_t>> fence_done;
  {
    // Puts staged by a client since its last commit/fence, as kv[] positions.
    std::map<int, std::vector<std::pair<std::string, std::size_t>>> pending;
    for (std::size_t i = 0; i < ops.size(); ++i) {
      const OpRecord& op = ops[i];
      switch (op.kind) {
        case OpKind::put: {
          writers[op.key].insert(op.client);
          kv[op.key].push_back(StagedWrite{i, 0, false, op.value});
          pending[op.client].emplace_back(op.key, kv[op.key].size() - 1);
          break;
        }
        case OpKind::commit:
        case OpKind::fence: {
          const bool good = op.err == errc::ok;
          for (const auto& [key, slot] : pending[op.client]) {
            StagedWrite& w = kv[key][slot];
            w.commit_index = i;
            w.committed = good;
            if (!good) tainted_keys.insert(key);
          }
          pending[op.client].clear();
          if (op.kind == OpKind::fence && good)
            fence_done[op.key][op.client] = i;
          break;
        }
        default:
          break;
      }
    }
    // Puts never flushed: no visibility expectations, but they still count
    // as writes for the single-writer restriction (already in writers[]).
  }

  // Checkable key: exactly one writer, that writer untainted, and no failed
  // flush touched it.
  const auto checkable_key = [&](const std::string& key) -> int {
    const auto wit = writers.find(key);
    if (wit == writers.end() || wit->second.size() != 1) return -1;
    const int w = *wit->second.begin();
    if (!ok_client(w)) return -1;
    if (tainted_keys.count(key)) return -1;
    return w;
  };

  // Visibility index of staged write `w` (on a checkable key, writer wr) for
  // reader `c`: the point in the history after which c must see it.
  //   - reader == writer: the commit/fence record itself (read-your-writes);
  //   - reader != writer and the carrier was a fence the reader completed
  //     successfully too: the reader's own fence record (fence-atomicity);
  //   - otherwise: never guaranteed (eventual only) -> SIZE_MAX.
  const auto visible_at = [&](const StagedWrite& w, int wr,
                             int c) -> std::size_t {
    if (!w.committed) return SIZE_MAX;
    const OpRecord& carrier = ops[w.commit_index];
    if (c == wr) return w.commit_index;
    if (carrier.kind != OpKind::fence) return SIZE_MAX;
    const auto fit = fence_done.find(carrier.key);
    if (fit == fence_done.end()) return SIZE_MAX;
    const auto cit = fit->second.find(c);
    if (cit == fit->second.end()) return SIZE_MAX;
    return cit->second;
  };

  // -- pass 2: per-record checks ---------------------------------------------
  // monotonic-reads state: last observed vv per client.
  std::map<int, std::vector<std::uint64_t>> last_vv;
  // setroot-sequence state.
  std::map<int, std::uint64_t> last_seq;                       // per client
  std::map<int, std::map<std::int64_t, std::uint64_t>> last_ver;  // client -> shard -> version
  struct SeqFact {
    std::int64_t shard;
    std::uint64_t version;
    std::string ref;
  };
  std::map<std::uint64_t, SeqFact> seq_facts;  // global seq -> content
  // watch-order state: client -> key -> (last absent, last ref); plus a
  // cursor into the writer's staged values for the subsequence check.
  std::map<int, std::map<std::string, std::pair<bool, std::string>>> last_watch;
  std::map<int, std::map<std::string, std::size_t>> watch_cursor;

  for (std::size_t i = 0; i < ops.size(); ++i) {
    const OpRecord& op = ops[i];
    if (!ok_client(op.client)) continue;

    // monotonic-reads: the completion-time sample must be component-wise >=
    // the client's previous completion-time sample. Only vv_end qualifies:
    // vv_begin is sampled when the op *starts*, but the record lands in the
    // history at completion, so a watch callback firing in between leaves a
    // fresher sample earlier in the log than a staler begin-sample — an
    // artifact of recording order, not a regression.
    for (const std::vector<std::uint64_t>* vv : {&op.vv_end}) {
      if (vv->empty()) continue;
      auto& prev = last_vv[op.client];
      if (prev.size() == vv->size()) {
        for (std::size_t s = 0; s < vv->size(); ++s) {
          if ((*vv)[s] < prev[s]) {
            flag("monotonic-reads", i,
                 "client " + std::to_string(op.client) + " " +
                     op_kind_name(op.kind).data() + ": local vv regressed " +
                     vv_str(prev) + " -> " + vv_str(*vv));
            break;
          }
        }
      }
      // Keep the component-wise max so one bad sample flags once, not on
      // every later op.
      if (prev.size() != vv->size()) {
        prev = *vv;
      } else {
        for (std::size_t s = 0; s < vv->size(); ++s)
          prev[s] = std::max(prev[s], (*vv)[s]);
      }
    }

    switch (op.kind) {
      case OpKind::get: {
        if (op.err != errc::ok && !op.absent) break;  // transport error
        const int wr = checkable_key(op.key);
        if (wr < 0) break;
        const auto kit = kv.find(op.key);
        if (kit == kv.end()) break;
        const std::vector<StagedWrite>& writes = kit->second;
        // The newest write that must be visible to this reader.
        std::size_t required = SIZE_MAX;  // index into writes
        for (std::size_t wi = 0; wi < writes.size(); ++wi) {
          if (visible_at(writes[wi], wr, op.client) < i) required = wi;
        }
        if (required == SIZE_MAX) break;  // nothing guaranteed yet
        const char* prop =
            op.client == wr ? "read-your-writes" : "fence-atomicity";
        if (op.absent) {
          flag(prop, i,
               "client " + std::to_string(op.client) + " get '" + op.key +
                   "': absent after a completed " +
                   std::string(op_kind_name(ops[writes[required].commit_index].kind)) +
                   " made it visible");
          break;
        }
        // Allowed observations: the required value or any later staged value
        // whose put preceded this get (a newer commit racing in is fine —
        // monotonic, not stale).
        bool allowed = false;
        for (std::size_t wi = required; wi < writes.size(); ++wi) {
          if (wi > required && writes[wi].put_index >= i) break;
          if (writes[wi].value == op.value) {
            allowed = true;
            break;
          }
        }
        if (!allowed)
          flag(prop, i,
               "client " + std::to_string(op.client) + " get '" + op.key +
                   "': observed a stale value (expected write #" +
                   std::to_string(required) + " of the key's " +
                   std::to_string(writes.size()) + ")");
        break;
      }

      case OpKind::commit:
      case OpKind::fence: {
        // Read-your-writes at the response boundary: the local instance must
        // have adopted the committed root before the client saw the result.
        if (op.err != errc::ok) break;
        if (!op.result_vv.empty() && op.vv_end.size() == op.result_vv.size()) {
          for (std::size_t s = 0; s < op.result_vv.size(); ++s) {
            if (op.vv_end[s] < op.result_vv[s]) {
              flag("read-your-writes", i,
                   "client " + std::to_string(op.client) + " " +
                       std::string(op_kind_name(op.kind)) +
                       ": local vv " + vv_str(op.vv_end) +
                       " behind committed vv " + vv_str(op.result_vv) +
                       " at response time");
              break;
            }
          }
        }
        break;
      }

      case OpKind::setroot: {
        if (op.err != errc::ok) break;  // malformed event payload
        auto [sit, fresh] = last_seq.emplace(op.client, op.seq);
        if (!fresh) {
          if (op.seq <= sit->second)
            flag("setroot-sequence", i,
                 "client " + std::to_string(op.client) +
                     ": event seq went " + std::to_string(sit->second) +
                     " -> " + std::to_string(op.seq));
          sit->second = std::max(sit->second, op.seq);
        }
        auto& per_shard = last_ver[op.client];
        auto [vit, first] = per_shard.emplace(op.shard, op.version);
        if (!first) {
          if (op.version <= vit->second)
            flag("setroot-sequence", i,
                 "client " + std::to_string(op.client) + ": shard " +
                     std::to_string(op.shard) + " setroot version went " +
                     std::to_string(vit->second) + " -> " +
                     std::to_string(op.version));
          vit->second = std::max(vit->second, op.version);
        }
        // Cross-observer agreement: one global seq, one content.
        auto [fit, unseen] =
            seq_facts.emplace(op.seq, SeqFact{op.shard, op.version, op.ref});
        if (!unseen && (fit->second.shard != op.shard ||
                        fit->second.version != op.version ||
                        fit->second.ref != op.ref))
          flag("setroot-sequence", i,
               "event seq " + std::to_string(op.seq) +
                   " observed with conflicting contents across clients");
        break;
      }

      case OpKind::watch: {
        auto& prev = last_watch[op.client];
        const auto wit = prev.find(op.key);
        if (wit != prev.end() && wit->second.first == op.absent &&
            wit->second.second == op.ref)
          flag("watch-order", i,
               "client " + std::to_string(op.client) + " watch '" + op.key +
                   "': callback re-fired for unchanged ref '" + op.ref + "'");
        prev[op.key] = {op.absent, op.ref};

        // Value ordering: observed values must follow the writer's staging
        // order (watch coalescing may skip, never reorder).
        if (op.absent || op.value.is_null()) break;
        const int wr = checkable_key(op.key);
        if (wr < 0) break;
        const auto kit = kv.find(op.key);
        if (kit == kv.end()) break;
        const std::vector<StagedWrite>& writes = kit->second;
        std::size_t& cur = watch_cursor[op.client][op.key];
        std::size_t match = SIZE_MAX;
        for (std::size_t wi = cur; wi < writes.size(); ++wi) {
          if (writes[wi].value == op.value) {
            match = wi;
            break;
          }
        }
        if (match == SIZE_MAX) {
          flag("watch-order", i,
               "client " + std::to_string(op.client) + " watch '" + op.key +
                   "': delivered a value out of the writer's commit order");
        } else {
          cur = match + 1;
        }
        break;
      }

      default:
        break;
    }
  }

  return rep;
}

}  // namespace flux::check
