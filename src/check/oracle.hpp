// KVS consistency oracle: replays a completed DST history (check/history.hpp)
// and checks the consistency contract the paper claims for the KVS (§IV-B,
// Vogels' taxonomy) plus the sharded-master extensions (§VII):
//
//   monotonic-reads    a client's sampled version vector never regresses
//                      component-wise across its operations.
//   read-your-writes   after a client's commit/fence succeeds, that client's
//                      reads of its own keys observe the committed value (or
//                      a later one it staged), never an older state.
//   fence-atomicity    a completed collective fence is all-or-nothing: every
//                      participant's post-fence reads see every participant's
//                      fence writes — no client observes the fence partially
//                      applied across shards.
//   setroot-sequence   observed "kvs.setroot*" events carry strictly
//                      increasing global sequence numbers, per-shard strictly
//                      increasing versions, and agree across observers.
//   watch-order        watch callbacks on one key never fire twice for the
//                      same root ref, and the values they deliver follow the
//                      writer's commit order.
//
// The oracle is a pure function of the history — it re-runs nothing — so a
// violation pins the blame on the recorded run, which the seed replays
// bit-for-bit. Soundness under fault schedules: value-level checks restrict
// themselves to single-writer keys, keys touched by a failed commit/fence
// are excused (the write may or may not have applied), and clients whose
// broker crashed are excused entirely via OracleOptions::tainted_clients.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "check/history.hpp"

namespace flux::obs {
class StatsRegistry;
}  // namespace flux::obs

namespace flux::check {

struct Violation {
  std::string property;  ///< "monotonic-reads", "read-your-writes", ...
  std::size_t index = 0;  ///< history index of the offending record
  std::string detail;
};

struct OracleReport {
  std::vector<Violation> violations;
  [[nodiscard]] bool ok() const noexcept { return violations.empty(); }
  /// Distinct violated property names, sorted.
  [[nodiscard]] std::vector<std::string> properties() const;
  [[nodiscard]] bool violates(std::string_view property) const;
  [[nodiscard]] std::string to_string() const;
};

struct OracleOptions {
  /// Clients attached to a broker that crashed (or restarted) during the
  /// run: their local version vector may legitimately regress mid-resync,
  /// so every per-client check skips them.
  std::vector<int> tainted_clients;
};

/// Check a completed history. With a non-null `stats`, every violation bumps
/// the counter "check.violation.<property>".
OracleReport check_history(const std::vector<OpRecord>& ops,
                           const OracleOptions& opt = {},
                           obs::StatsRegistry* stats = nullptr);

}  // namespace flux::check
