#include "check/shrink.hpp"

#include <memory>

#include "base/error.hpp"
#include "check/mutation.hpp"

namespace flux::check {

namespace {

Json strings_to_json(const std::vector<std::string>& v) {
  Json out = Json::array();
  for (const std::string& s : v) out.push_back(s);
  return out;
}

std::vector<std::string> strings_from_json(const Json& j) {
  std::vector<std::string> out;
  if (!j.is_array()) return out;
  for (const Json& s : j.as_array()) out.push_back(s.as_string());
  return out;
}

}  // namespace

Json Repro::to_json() const {
  return Json::object({{"seed", static_cast<std::int64_t>(seed)},
                       {"size", static_cast<std::int64_t>(opt.size)},
                       {"arity", static_cast<std::int64_t>(opt.arity)},
                       {"shards", static_cast<std::int64_t>(opt.shards)},
                       {"failover", opt.failover},
                       {"clients", opt.clients},
                       {"rounds", opt.rounds},
                       {"jitter_max_ns", opt.jitter_max.count()},
                       {"persist", opt.persist},
                       {"master_crash", opt.master_crash},
                       {"fault_plan", fault_plan},
                       {"mutations", strings_to_json(mutations)},
                       {"expect", strings_to_json(expect)}});
}

Repro Repro::from_json(const Json& j) {
  if (!j.is_object())
    throw FluxException(Error(errc::inval, "repro: not an object"));
  Repro r;
  r.seed = static_cast<std::uint64_t>(j.get_int("seed", 1));
  r.opt.size = static_cast<std::uint32_t>(j.get_int("size", 4));
  r.opt.arity = static_cast<std::uint32_t>(j.get_int("arity", 2));
  r.opt.shards = static_cast<std::uint32_t>(j.get_int("shards", 1));
  r.opt.failover = j.get_bool("failover", false);
  r.opt.clients = static_cast<int>(j.get_int("clients", 3));
  r.opt.rounds = static_cast<int>(j.get_int("rounds", 2));
  r.opt.jitter_max = Duration{j.get_int("jitter_max_ns", 0)};
  r.opt.persist = j.get_bool("persist", false);
  r.opt.master_crash = j.get_bool("master_crash", false);
  r.fault_plan = j.at("fault_plan");
  r.mutations = strings_from_json(j.at("mutations"));
  r.expect = strings_from_json(j.at("expect"));
  return r;
}

DstResult replay(const Repro& r) {
  std::vector<std::unique_ptr<MutationGuard>> guards;
  guards.reserve(r.mutations.size());
  for (const std::string& m : r.mutations)
    guards.push_back(std::make_unique<MutationGuard>(m));
  return run_schedule(r.seed, r.opt, r.fault_plan);
}

Repro shrink(Repro failing, int max_rounds) {
  const auto fails = [](const Repro& c) { return replay(c).failed(); };

  bool progress = true;
  while (progress && max_rounds-- > 0) {
    progress = false;

    // Delete fault-plan components one at a time, back to front (so kept
    // indices stay valid across erases).
    for (const char* list : {"events", "links", "nth", "torn"}) {
      if (!failing.fault_plan.is_object() ||
          !failing.fault_plan.at(list).is_array())
        continue;
      for (std::size_t n = failing.fault_plan.at(list).size(); n-- > 0;) {
        Repro cand = failing;
        JsonArray& arr = cand.fault_plan[list].as_array();
        arr.erase(arr.begin() + static_cast<std::ptrdiff_t>(n));
        if (fails(cand)) {
          failing = std::move(cand);
          progress = true;
        }
      }
    }
    // A plan shrunk to nothing becomes "no plan at all".
    if (failing.fault_plan.is_object() &&
        failing.fault_plan.at("events").size() == 0 &&
        failing.fault_plan.at("links").size() == 0 &&
        failing.fault_plan.at("nth").size() == 0 &&
        failing.fault_plan.at("torn").size() == 0) {
      Repro cand = failing;
      cand.fault_plan = Json();
      if (fails(cand)) {
        failing = std::move(cand);
        progress = true;
      }
    }

    // Perturbation off: does the failure even need the jitter?
    if (failing.opt.jitter_max.count() > 0) {
      Repro cand = failing;
      cand.opt.jitter_max = Duration{0};
      if (fails(cand)) {
        failing = std::move(cand);
        progress = true;
      }
    }

    // Fewer workload rounds.
    while (failing.opt.rounds > 1) {
      Repro cand = failing;
      --cand.opt.rounds;
      if (!fails(cand)) break;
      failing = std::move(cand);
      progress = true;
    }
  }

  failing.expect = replay(failing).report.properties();
  return failing;
}

}  // namespace flux::check
