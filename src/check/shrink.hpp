// Schedule shrinker: minimize a failing DST run to a smallest-known repro.
//
// A Repro is everything needed to replay one schedule bit-for-bit: the seed
// (jitter stream + workload), the scenario shape, an explicit fault-plan
// JSON (FaultPlan::from_json format), and any test-only mutations that were
// enabled. shrink() greedily deletes fault-plan components (node events,
// link policies, nth rules), zeroes the jitter, and trims workload rounds,
// keeping each deletion only if the run still fails — the classic
// delta-debugging loop, converging on a local minimum.
//
// Repros serialize to JSON so a failing schedule can be committed under
// tests/repro/ and replayed deterministically by a ctest forever after.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "check/explorer.hpp"
#include "json/json.hpp"

namespace flux::check {

struct Repro {
  std::uint64_t seed = 1;
  DstOptions opt;                      ///< scenario shape (faults flags unused)
  Json fault_plan;                     ///< explicit plan; null = none
  std::vector<std::string> mutations;  ///< check/mutation.hpp names to enable
  std::vector<std::string> expect;     ///< properties violated when captured

  [[nodiscard]] Json to_json() const;
  static Repro from_json(const Json& j);  ///< throws FluxException(inval)
};

/// Replay a repro (enabling its mutations for the duration of the run).
DstResult replay(const Repro& r);

/// Greedily minimize `failing` (which must currently fail — replay() first).
/// Runs at most `max_rounds` full passes over the component list; each kept
/// deletion re-replays, so cost is O(components * rounds) runs. The result's
/// `expect` is refreshed from the minimized run's actual violations.
Repro shrink(Repro failing, int max_rounds = 4);

}  // namespace flux::check
