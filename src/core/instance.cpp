#include "core/instance.hpp"

#include <algorithm>

#include "base/log.hpp"

namespace flux {

FluxInstance::FluxInstance(Executor& ex, std::string name,
                           const ResourceGraph& graph, std::string policy,
                           Scheduler::CostModel cost)
    : ex_(ex),
      name_(std::move(name)),
      graph_(graph),
      cost_(cost),
      pool_(graph),
      sched_(ex, pool_, make_policy(policy), cost) {
  sched_.on_start([this](std::uint64_t id, const Allocation& a) {
    job_started(id, a);
  });
  sched_.on_end([this](std::uint64_t id) { job_ended(id); });
  sched_.on_idle([this] {
    if (on_quiescent_) on_quiescent_();
  });
}

FluxInstance::FluxInstance(Executor& ex, std::string name,
                           const ResourceGraph& graph,
                           std::vector<ResourceId> nodes,
                           double power_budget_w, double io_bw_budget_gbs,
                           std::string policy, FluxInstance* parent,
                           Scheduler::CostModel cost)
    : ex_(ex),
      name_(std::move(name)),
      graph_(graph),
      parent_(parent),
      level_(parent ? parent->level_ + 1 : 0),
      cost_(cost),
      pool_(graph, std::move(nodes), power_budget_w, io_bw_budget_gbs),
      sched_(ex, pool_, make_policy(policy), cost) {
  sched_.on_start([this](std::uint64_t id, const Allocation& a) {
    job_started(id, a);
  });
  sched_.on_end([this](std::uint64_t id) { job_ended(id); });
  sched_.on_idle([this] {
    if (on_quiescent_) on_quiescent_();
  });
}

FluxInstance::~FluxInstance() = default;

Expected<std::uint64_t> FluxInstance::submit(const JobSpec& spec) {
  const bool manual = spec.type == JobType::Instance;
  auto jobid = sched_.submit(spec.request, spec.walltime, spec.priority, manual);
  if (!jobid) return jobid.error();
  jobs_.emplace(*jobid, JobRecord{spec, JobState::Pending, 0});
  return *jobid;
}

JobState FluxInstance::state(std::uint64_t jobid) const {
  auto it = jobs_.find(jobid);
  return it == jobs_.end() ? JobState::Canceled : it->second.state;
}

bool FluxInstance::quiescent() const { return sched_.idle(); }

void FluxInstance::job_started(std::uint64_t jobid, const Allocation& alloc) {
  auto it = jobs_.find(jobid);
  if (it == jobs_.end()) return;
  JobRecord& rec = it->second;
  rec.state = JobState::Running;
  if (rec.spec.type != JobType::Instance) return;

  // Child empowerment: build the child's bounded pool from this allocation.
  double child_power = rec.spec.child_power_budget_w;
  if (child_power <= 0) child_power = alloc.power_w;
  if (child_power <= 0) {
    // Default bound: the physical power capacity of the granted nodes.
    for (ResourceId n : alloc.nodes)
      child_power += graph_.total_capacity("power", n);
  }
  const std::uint64_t key = next_child_key_++;
  rec.child_key = key;
  auto child = std::make_unique<FluxInstance>(
      ex_, name_ + "/" + rec.spec.name, graph_, alloc.nodes, child_power,
      alloc.io_bw_gbs, rec.spec.child_policy, this, cost_);
  child->backing_alloc_ = alloc.id;
  FluxInstance* raw = child.get();
  children_.emplace(key, std::move(child));
  raw->on_quiescent([this, jobid] { child_quiescent(jobid); });
  for (const JobSpec& sub : rec.spec.subjobs) {
    auto sub_id = raw->submit(sub);
    if (!sub_id)
      log::warn("instance", name_, ": subjob '", sub.name,
                "' rejected by child: ", sub_id.error().to_string());
  }
  if (raw->quiescent()) {
    // Nothing to run (or everything rejected): finish the instance job.
    ex_.post([this, jobid] { sched_.finish(jobid); });
  }
}

void FluxInstance::child_quiescent(std::uint64_t jobid) {
  // Defer: the child's scheduler may still be unwinding its final pass.
  ex_.post([this, jobid] {
    auto it = jobs_.find(jobid);
    if (it == jobs_.end() || it->second.state != JobState::Running) return;
    sched_.finish(jobid);
  });
}

void FluxInstance::job_ended(std::uint64_t jobid) {
  auto it = jobs_.find(jobid);
  if (it == jobs_.end()) return;
  JobRecord& rec = it->second;
  rec.state = JobState::Complete;
  if (rec.spec.type == JobType::Instance && rec.child_key != 0) {
    auto cit = children_.find(rec.child_key);
    if (cit != children_.end()) {
      const TreeStats finished = cit->second->tree_stats();
      retired_.instances += finished.instances;
      retired_.jobs_completed += finished.jobs_completed;
      retired_.sched_busy += finished.sched_busy;
      retired_.sched_passes += finished.sched_passes;
      children_.erase(cit);
    }
  }
  if (on_job_complete_) on_job_complete_(jobid, rec.spec);
}

Status FluxInstance::request_grow(const ResourceRequest& delta) {
  if (parent_ == nullptr)
    return Error(errc::perm, "grow: the root instance has no parent to ask");
  // Parental consent: the parent grants from its own pool, recursively
  // asking *its* parent when it cannot (constraint aggregation up the
  // hierarchy, §III).
  auto granted = parent_->pool_.grow(backing_alloc_, delta);
  if (!granted) {
    if (auto st = parent_->request_grow(delta); !st) return st;
    granted = parent_->pool_.grow(backing_alloc_, delta);
    if (!granted) return granted.error();
  }
  pool_.adopt(*granted, delta.power_w, delta.io_bw_gbs);
  sched_.kick();
  return {};
}

Status FluxInstance::release_shrink(const ResourceRequest& delta) {
  if (parent_ == nullptr)
    return Error(errc::perm, "shrink: the root instance has no parent");
  auto freed = pool_.cede(delta);
  if (!freed) return freed.error();
  auto st = parent_->pool_.shrink_nodes(backing_alloc_, *freed, delta.power_w,
                                        delta.io_bw_gbs);
  if (!st) return st;
  parent_->sched_.kick();
  return {};
}

void FluxInstance::set_power_cap(double watts) {
  pool_.set_power_budget(watts);
  if (!pool_.over_power_budget()) return;
  double excess = pool_.power_in_use() - watts;

  // Shed 1: shrink malleable running app jobs' power proportionally.
  double malleable_power = 0;
  for (const std::uint64_t jobid : sched_.running_jobs()) {
    auto it = jobs_.find(jobid);
    if (it == jobs_.end() || !it->second.spec.malleable) continue;
    if (const Allocation* a = sched_.allocation_of(jobid))
      malleable_power += a->power_w;
  }
  if (malleable_power > 0) {
    const double ratio = std::min(1.0, excess / malleable_power);
    for (const std::uint64_t jobid : sched_.running_jobs()) {
      auto it = jobs_.find(jobid);
      if (it == jobs_.end() || !it->second.spec.malleable) continue;
      const Allocation* a = sched_.allocation_of(jobid);
      if (a == nullptr || a->power_w <= 0) continue;
      ResourceRequest shed;
      shed.nnodes = 0;
      shed.power_w = a->power_w * ratio;
      (void)pool_.shrink(a->id, shed);
      excess -= shed.power_w;
    }
  }

  // Shed 2: cap child instances proportionally to their budgets. The
  // child's *backing allocation* in this pool shrinks by the same amount,
  // so this level's books reflect the shed immediately.
  if (excess > 1e-9) {
    double child_power = 0;
    for (const auto& [key, child] : children_)
      child_power += child->pool().power_budget();
    if (child_power > 0) {
      const double scale =
          std::max(0.0, (child_power - excess) / child_power);
      for (auto& [key, child] : children_) {
        const double old_budget = child->pool().power_budget();
        const double new_budget = old_budget * scale;
        child->set_power_cap(new_budget);
        if (child->backing_alloc_ != 0) {
          const Allocation* alloc = pool_.lookup(child->backing_alloc_);
          if (alloc != nullptr) {
            ResourceRequest shed;
            shed.nnodes = 0;
            shed.power_w = std::min(alloc->power_w, old_budget - new_budget);
            if (shed.power_w > 0) (void)pool_.shrink(alloc->id, shed);
          }
        }
      }
    }
  }
}

std::vector<FluxInstance*> FluxInstance::children() const {
  std::vector<FluxInstance*> out;
  out.reserve(children_.size());
  for (const auto& [key, child] : children_) out.push_back(child.get());
  return out;
}

FluxInstance::TreeStats FluxInstance::tree_stats() const {
  TreeStats out;
  out.instances = 1 + retired_.instances;
  out.jobs_completed = sched_.stats().completed + retired_.jobs_completed;
  out.sched_busy = sched_.stats().sched_busy + retired_.sched_busy;
  out.sched_passes = sched_.stats().passes + retired_.sched_passes;
  for (const auto& [key, child] : children_) {
    const TreeStats c = child->tree_stats();
    out.instances += c.instances;
    out.jobs_completed += c.jobs_completed;
    out.sched_busy += c.sched_busy;
    out.sched_passes += c.sched_passes;
  }
  return out;
}

}  // namespace flux
