// FluxInstance: the recursive resource-management instance (paper §III).
//
// An instance owns a bounded ResourcePool (parent bounding rule), a
// Scheduler with its own policy (resource-subset specialization), and a job
// table. Running a JobSpec of type Instance allocates resources and creates
// a *child* FluxInstance over them, which recursively accepts sub-jobs —
// "hierarchical, multilevel resource management and job scheduling".
//
// The three hierarchy rules map directly onto methods:
//  - parent bounding: the child pool is built from the parent allocation;
//  - child empowerment: the child schedules its pool independently (its
//    scheduler's virtual-time passes run concurrently with siblings');
//  - parental consent: request_grow()/release_shrink() negotiate allocation
//    changes with the parent, cascading up until satisfiable.
//
// Dynamic power capping (§II Challenge 1 / §III elasticity) is implemented:
// set_power_cap() lowers the pool budget and sheds load by shrinking
// malleable running jobs and recursively capping child instances.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/jobspec.hpp"
#include "sched/scheduler.hpp"

namespace flux {

class FluxInstance {
 public:
  /// Root instance over a whole resource graph.
  FluxInstance(Executor& ex, std::string name, const ResourceGraph& graph,
               std::string policy = "fcfs",
               Scheduler::CostModel cost = {});

  /// Child instance over an explicit node set (created by instance jobs or
  /// directly for static partitioning experiments).
  FluxInstance(Executor& ex, std::string name, const ResourceGraph& graph,
               std::vector<ResourceId> nodes, double power_budget_w,
               double io_bw_budget_gbs, std::string policy,
               FluxInstance* parent = nullptr,
               Scheduler::CostModel cost = {});

  ~FluxInstance();
  FluxInstance(const FluxInstance&) = delete;
  FluxInstance& operator=(const FluxInstance&) = delete;

  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  [[nodiscard]] FluxInstance* parent() noexcept { return parent_; }
  [[nodiscard]] unsigned level() const noexcept { return level_; }
  [[nodiscard]] ResourcePool& pool() noexcept { return pool_; }
  [[nodiscard]] Scheduler& scheduler() noexcept { return sched_; }

  /// Submit a job (App or Instance) to this instance's scheduler.
  Expected<std::uint64_t> submit(const JobSpec& spec);

  /// Job state lookup.
  [[nodiscard]] JobState state(std::uint64_t jobid) const;

  /// True when this instance and every descendant have no pending/running
  /// jobs.
  [[nodiscard]] bool quiescent() const;

  /// Callback when this instance becomes quiescent (fires each time the
  /// last job drains).
  void on_quiescent(std::function<void()> fn) { on_quiescent_ = std::move(fn); }

  /// Per-job completion callback (app jobs and instance jobs alike).
  void on_job_complete(std::function<void(std::uint64_t, const JobSpec&)> fn) {
    on_job_complete_ = std::move(fn);
  }

  // -- elasticity (parental consent rule) ------------------------------------
  /// Child asks its parent for more resources for its own pool. The parent
  /// may in turn ask *its* parent ("aggregated up the job hierarchy"), the
  /// request carrying a power demand that must satisfy every cap en route.
  Status request_grow(const ResourceRequest& delta);
  /// Child returns resources to its parent.
  Status release_shrink(const ResourceRequest& delta);

  // -- dynamic power capping ---------------------------------------------------
  /// Impose a power cap on this instance. If current use exceeds the cap,
  /// load is shed: malleable running jobs lose power proportionally, and
  /// child instances receive proportional recursive caps.
  void set_power_cap(double watts);

  /// Children created by instance jobs (observability for tests/benches).
  [[nodiscard]] std::vector<FluxInstance*> children() const;

  struct TreeStats {
    std::uint64_t instances = 1;
    std::uint64_t jobs_completed = 0;
    Duration sched_busy{0};
    std::uint64_t sched_passes = 0;
  };
  [[nodiscard]] TreeStats tree_stats() const;

 private:
  struct JobRecord {
    JobSpec spec;
    JobState state = JobState::Pending;
    std::uint64_t child_key = 0;  // key into children_ for instance jobs
  };

  void job_started(std::uint64_t jobid, const Allocation& alloc);
  void job_ended(std::uint64_t jobid);
  void child_quiescent(std::uint64_t jobid);

  Executor& ex_;
  std::string name_;
  const ResourceGraph& graph_;
  FluxInstance* parent_ = nullptr;
  unsigned level_ = 0;
  Scheduler::CostModel cost_;  ///< inherited by child instances
  ResourcePool pool_;
  Scheduler sched_;
  /// Allocation id in the *parent's* pool backing this instance (0 = root
  /// or externally-managed child).
  std::uint64_t backing_alloc_ = 0;

  std::map<std::uint64_t, JobRecord> jobs_;
  std::map<std::uint64_t, std::unique_ptr<FluxInstance>> children_;
  std::uint64_t next_child_key_ = 1;
  TreeStats retired_{0, 0, Duration{0}, 0};  ///< folded-in stats of finished children
  std::function<void()> on_quiescent_;
  std::function<void(std::uint64_t, const JobSpec&)> on_job_complete_;
};

}  // namespace flux
