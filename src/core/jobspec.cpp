#include "core/jobspec.hpp"

namespace flux {

std::string_view job_state_name(JobState s) noexcept {
  switch (s) {
    case JobState::Pending: return "pending";
    case JobState::Running: return "running";
    case JobState::Complete: return "complete";
    case JobState::Canceled: return "canceled";
    case JobState::Failed: return "failed";
  }
  return "?";
}

JobState job_state_from_name(std::string_view name) noexcept {
  if (name == "running") return JobState::Running;
  if (name == "complete") return JobState::Complete;
  if (name == "canceled") return JobState::Canceled;
  if (name == "failed") return JobState::Failed;
  return JobState::Pending;
}

Json JobSpec::to_json() const {
  Json subs = Json::array();
  for (const JobSpec& s : subjobs) subs.push_back(s.to_json());
  return Json::object({{"name", name},
                       {"type", type == JobType::App ? "app" : "instance"},
                       {"request", request.to_json()},
                       {"walltime_us", walltime.count() / 1000},
                       {"priority", priority},
                       {"command", command},
                       {"args", args},
                       {"malleable", malleable},
                       {"child_policy", child_policy},
                       {"child_power_budget_w", child_power_budget_w},
                       {"subjobs", std::move(subs)}});
}

JobSpec JobSpec::from_json(const Json& j) {
  JobSpec spec;
  spec.name = j.get_string("name");
  spec.type = j.get_string("type") == "instance" ? JobType::Instance
                                                 : JobType::App;
  spec.request = ResourceRequest::from_json(j.at("request"));
  spec.walltime = std::chrono::microseconds(j.get_int("walltime_us", 1000));
  spec.priority = static_cast<int>(j.get_int("priority", 0));
  spec.command = j.get_string("command", "");
  spec.args = j.at("args").is_null() ? Json::object() : j.at("args");
  spec.malleable = j.get_bool("malleable", false);
  spec.child_policy = j.get_string("child_policy", "fcfs");
  spec.child_power_budget_w = j.get_double("child_power_budget_w", 0);
  if (j.at("subjobs").is_array())
    for (const Json& s : j.at("subjobs").as_array())
      spec.subjobs.push_back(from_json(s));
  return spec;
}

JobSpec JobSpec::app(std::string name, std::int64_t nnodes, Duration walltime,
                     double power_w) {
  JobSpec spec;
  spec.name = std::move(name);
  spec.type = JobType::App;
  spec.request.nnodes = nnodes;
  spec.request.power_w = power_w;
  spec.walltime = walltime;
  return spec;
}

JobSpec JobSpec::instance(std::string name, std::int64_t nnodes,
                          std::string policy, std::vector<JobSpec> subjobs) {
  JobSpec spec;
  spec.name = std::move(name);
  spec.type = JobType::Instance;
  spec.request.nnodes = nnodes;
  spec.child_policy = std::move(policy);
  spec.subjobs = std::move(subjobs);
  // Instance walltime is advisory (completion is child-quiescence driven).
  spec.walltime = std::chrono::seconds(1);
  return spec;
}

}  // namespace flux
