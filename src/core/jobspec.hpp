// Unified job model (paper §III).
//
// "Flux ... abstracts [a job] to an independent RJMS instance that can
// either be used to run a single application or that can run its own job
// management services, which then can recursively accept and schedule
// (sub-)jobs." A JobSpec therefore describes either an App (leaf work) or an
// Instance (a child Flux instance with its own policy and workload).
#pragma once

#include <string>
#include <vector>

#include "exec/executor.hpp"
#include "resource/pool.hpp"

namespace flux {

enum class JobType { App, Instance };
enum class JobState { Pending, Running, Complete, Canceled, Failed };

std::string_view job_state_name(JobState s) noexcept;
/// Inverse of job_state_name (unknown strings map to Pending).
JobState job_state_from_name(std::string_view name) noexcept;

struct JobSpec {
  std::string name;
  JobType type = JobType::App;
  ResourceRequest request;
  Duration walltime{std::chrono::milliseconds(1)};
  int priority = 0;
  /// What to execute, by wexec CommandRegistry name. Empty means a synthetic
  /// workload: the job-manager runs the built-in "sleep" for `walltime`.
  std::string command;
  Json args = Json::object();  ///< command arguments (wexec args payload)
  /// Malleable jobs accept grow/shrink of their allocation while running
  /// (the paper's rigid vs moldable vs malleable distinction).
  bool malleable = false;

  // Instance jobs only:
  std::string child_policy = "fcfs";  ///< scheduling specialization (§III)
  std::vector<JobSpec> subjobs;       ///< the child instance's workload
  /// Fraction of the parent allocation's power passed to the child
  /// (parent bounding rule); <=0 means inherit request.power_w.
  double child_power_budget_w = 0;

  [[nodiscard]] Json to_json() const;
  static JobSpec from_json(const Json& j);

  /// Leaf application job.
  static JobSpec app(std::string name, std::int64_t nnodes, Duration walltime,
                     double power_w = 0);
  /// Nested instance job running `subjobs` under `policy`.
  static JobSpec instance(std::string name, std::int64_t nnodes,
                          std::string policy, std::vector<JobSpec> subjobs);
};

}  // namespace flux
