#include "core/rt_bridge.hpp"

#include "base/log.hpp"

namespace flux {

RtInstance::RtInstance(Session& session, std::string policy)
    : session_(session) {
  handle_ = session_.attach(0);
  kvs_ = std::make_unique<KvsClient>(*handle_);

  // One schedulable "node" per broker rank (cores from the resvc default).
  const ResourceId root = graph_.add_root("session", "rt");
  const auto cores = static_cast<unsigned>(
      session_.config().module_config.at("resvc").get_int("cores_per_node", 16));
  for (NodeId r = 0; r < session_.size(); ++r) {
    const ResourceId node = graph_.add(root, "node", "n" + std::to_string(r));
    for (unsigned c = 0; c < cores; ++c)
      graph_.add(node, "core", "c" + std::to_string(c));
  }
  pool_ = std::make_unique<ResourcePool>(graph_);
  sched_ = std::make_unique<Scheduler>(handle_->executor(), *pool_,
                                       make_policy(policy));
  sched_->on_start([this](std::uint64_t jobid, const Allocation& alloc) {
    auto it = jobs_.find(jobid);
    if (it == jobs_.end()) return;
    it->second.state = JobState::Running;
    co_spawn(handle_->executor(), launch(jobid, alloc),
             "rt-launch" + std::to_string(jobid));
  });
  sched_->on_end([this](std::uint64_t jobid) {
    auto it = jobs_.find(jobid);
    if (it == jobs_.end()) return;
    it->second.state = it->second.success ? JobState::Complete
                                          : JobState::Failed;
    if (on_complete_) on_complete_(jobid, it->second.success);
  });
}

RtInstance::~RtInstance() = default;

Expected<std::uint64_t> RtInstance::submit(const JobSpec& spec,
                                           std::string cmd, Json args) {
  auto jobid = sched_->submit(spec.request, spec.walltime, spec.priority,
                              /*manual_completion=*/true);
  if (!jobid) return jobid.error();
  jobs_.emplace(*jobid, RtJob{spec, std::move(cmd), std::move(args),
                              JobState::Pending, false});
  return *jobid;
}

JobState RtInstance::state(std::uint64_t jobid) const {
  auto it = jobs_.find(jobid);
  return it == jobs_.end() ? JobState::Canceled : it->second.state;
}

Task<void> RtInstance::launch(std::uint64_t jobid, Allocation alloc) {
  auto it = jobs_.find(jobid);
  if (it == jobs_.end()) co_return;
  RtJob& job = it->second;

  // Resource vertices -> broker ranks ("n<rank>" by construction).
  Json ranks = Json::array();
  for (ResourceId node : alloc.nodes)
    ranks.push_back(std::stoll(graph_.at(node).name.substr(1)));

  Json run = Json::object({{"jobid", lwj_name(jobid)},
                           {"cmd", job.cmd},
                           {"args", job.args},
                           {"ranks", std::move(ranks)}});
  bool success = false;
  try {
    Message resp = co_await handle_->request("wexec.run").payload(std::move(run)).call();
    success = resp.payload().get_bool("success");
  } catch (const FluxException& e) {
    log::warn("rt", "job ", jobid, " launch failed: ", e.what());
  }
  job.success = success;

  // Job provenance: final record into the KVS next to wexec's stdio capture.
  try {
    Json record = Json::object({{"state", success ? "complete" : "failed"},
                                {"nnodes", job.spec.request.nnodes},
                                {"name", job.spec.name}});
    co_await kvs_->put("lwj." + lwj_name(jobid) + ".record",
                       std::move(record));
    co_await kvs_->commit();
  } catch (const FluxException& e) {
    log::warn("rt", "job ", jobid, " record write failed: ", e.what());
  }
  sched_->finish(jobid);
}

}  // namespace flux
