// RtInstance: the bridge between the conceptual job hierarchy (§III) and the
// prototyped run-time (§IV).
//
// A FluxInstance schedules in virtual time over an abstract resource graph;
// an RtInstance additionally *executes* its app jobs on a live comms
// session: node allocations map to broker ranks (via the resvc module's
// inventory), job processes launch in bulk through wexec, their stdio and
// exit codes land in the KVS under lwj.<jobid>.*, and the job table itself
// is mirrored into the KVS — the paper's "richer provenance on jobs".
#pragma once

#include <map>
#include <memory>
#include <string>

#include "api/handle.hpp"
#include "broker/session.hpp"
#include "core/jobspec.hpp"
#include "kvs/kvs_client.hpp"
#include "sched/scheduler.hpp"

namespace flux {

class RtInstance {
 public:
  /// Bind to a wired-up session. One broker rank == one schedulable node.
  RtInstance(Session& session, std::string policy = "fcfs");
  ~RtInstance();
  RtInstance(const RtInstance&) = delete;
  RtInstance& operator=(const RtInstance&) = delete;

  /// Submit an app job that runs `cmd` (a CommandRegistry entry) with
  /// `args` on request.nnodes broker ranks. Walltime bounds scheduling
  /// (EASY backfill); the job actually ends when its processes exit.
  Expected<std::uint64_t> submit(const JobSpec& spec, std::string cmd,
                                 Json args = Json::object());

  [[nodiscard]] JobState state(std::uint64_t jobid) const;
  [[nodiscard]] bool idle() const { return sched_->idle(); }
  [[nodiscard]] Scheduler& scheduler() { return *sched_; }

  /// Fires after a job's processes exited and its record is in the KVS.
  using CompleteFn = std::function<void(std::uint64_t jobid, bool success)>;
  void on_complete(CompleteFn fn) { on_complete_ = std::move(fn); }

 private:
  struct RtJob {
    JobSpec spec;
    std::string cmd;
    Json args;
    JobState state = JobState::Pending;
    bool success = false;
  };

  Task<void> launch(std::uint64_t jobid, Allocation alloc);
  [[nodiscard]] std::string lwj_name(std::uint64_t jobid) const {
    return "rt" + std::to_string(jobid);
  }

  Session& session_;
  std::unique_ptr<Handle> handle_;
  std::unique_ptr<KvsClient> kvs_;
  ResourceGraph graph_;  // one "node" vertex per broker rank
  std::unique_ptr<ResourcePool> pool_;
  std::unique_ptr<Scheduler> sched_;
  std::map<std::uint64_t, RtJob> jobs_;
  CompleteFn on_complete_;
};

}  // namespace flux
