#include "exec/executor.hpp"

// Executor is header-only today; this TU anchors the vtable.
namespace flux {
static_assert(sizeof(Executor*) > 0);
}  // namespace flux
