// Executor abstraction.
//
// Every Flux broker is a reactor: it only ever runs as callbacks posted to an
// Executor. The same broker/module/KVS code therefore runs either under the
// deterministic discrete-event simulator (SimExecutor — virtual time,
// single-threaded, 8192-rank scale) or on real reactor threads
// (ThreadExecutor — wall-clock time, one thread per broker).
#pragma once

#include <chrono>
#include <cstdint>
#include <functional>

namespace flux {

/// Nanosecond durations everywhere; TimePoint is ns since session epoch.
using Duration = std::chrono::nanoseconds;
using TimePoint = std::chrono::nanoseconds;

using namespace std::chrono_literals;  // NOLINT: pervasive in this codebase

class Executor {
 public:
  virtual ~Executor() = default;

  /// Run `fn` as soon as possible, in FIFO order w.r.t. other posts.
  virtual void post(std::function<void()> fn) = 0;

  /// Run `fn` at absolute time `when` (>= now(); earlier clamps to now).
  virtual void post_at(TimePoint when, std::function<void()> fn) = 0;

  /// Schedule background periodic work (e.g. heartbeat ticks). The simulator
  /// overrides this so daemon work does not keep a run-until-idle loop alive;
  /// wall-clock executors treat it like post_at.
  virtual void post_daemon_at(TimePoint when, std::function<void()> fn) {
    post_at(when, std::move(fn));
  }

  /// Current time on this executor's clock.
  [[nodiscard]] virtual TimePoint now() const noexcept = 0;

  /// Schedule a cancelable deferred event (RPC timeout arming). cancel()
  /// prevents the callback from running, and on the simulator also stops the
  /// queued event from keeping a run-until-idle loop alive — an RPC that
  /// resolved must not force the sim to play out its dead deadline.
  /// Executors without native support return 0 (not cancelable; callbacks
  /// must tolerate firing after resolution).
  virtual std::uint64_t post_cancelable_at(TimePoint when,
                                           std::function<void()> fn) {
    post_at(when, std::move(fn));
    return 0;
  }
  /// Cancel a post_cancelable_at event; no-op for id 0 or already-fired.
  virtual void cancel(std::uint64_t /*id*/) {}

  void post_after(Duration delay, std::function<void()> fn) {
    post_at(now() + delay, std::move(fn));
  }
  void post_daemon_after(Duration delay, std::function<void()> fn) {
    post_daemon_at(now() + delay, std::move(fn));
  }
  std::uint64_t post_cancelable_after(Duration delay,
                                      std::function<void()> fn) {
    return post_cancelable_at(now() + delay, std::move(fn));
  }
};

}  // namespace flux
