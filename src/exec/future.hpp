// One-shot Promise/Future pair bridging callbacks and coroutines.
//
// RPC plumbing resolves a Promise when the response message arrives; the
// awaiting coroutine is resumed via the executor captured at creation (so
// resumption is always a posted reactor event — never a re-entrant call in
// the middle of broker dispatch). Future<T> is also blocking-waitable from a
// foreign thread, which is how SyncHandle exposes a synchronous API in
// threaded sessions.
#pragma once

#include <condition_variable>
#include <coroutine>
#include <memory>
#include <mutex>
#include <optional>
#include <variant>
#include <vector>

#include "base/error.hpp"
#include "exec/executor.hpp"

namespace flux {

/// Empty result type for futures that only signal completion.
struct Unit {};

namespace detail {

template <class T>
struct FutureState {
  explicit FutureState(Executor& ex) : executor(&ex) {}

  Executor* executor;
  std::mutex mu;
  std::condition_variable cv;
  std::variant<std::monostate, T, Error> result;
  std::vector<std::coroutine_handle<>> waiters;

  bool settled_locked() const noexcept { return result.index() != 0; }

  void settle(std::variant<std::monostate, T, Error> value) {
    std::vector<std::coroutine_handle<>> to_resume;
    {
      std::lock_guard lk(mu);
      if (settled_locked()) return;  // first settle wins
      result = std::move(value);
      to_resume.swap(waiters);
    }
    cv.notify_all();
    for (auto h : to_resume)
      executor->post([h] { h.resume(); });
  }
};

}  // namespace detail

template <class T>
class Future;

/// Producer side. Copyable (multiple potential resolvers; first settle wins).
template <class T>
class Promise {
 public:
  explicit Promise(Executor& ex)
      : state_(std::make_shared<detail::FutureState<T>>(ex)) {}

  void set_value(T value) const { state_->settle(std::move(value)); }
  void set_error(Error err) const { state_->settle(std::move(err)); }

  [[nodiscard]] bool settled() const {
    std::lock_guard lk(state_->mu);
    return state_->settled_locked();
  }

  [[nodiscard]] Future<T> future() const { return Future<T>(state_); }

 private:
  std::shared_ptr<detail::FutureState<T>> state_;
};

/// Consumer side: awaitable (throws FluxException on error) and
/// blocking-waitable from non-reactor threads.
template <class T>
class Future {
 public:
  bool await_ready() const noexcept {
    std::lock_guard lk(state_->mu);
    return state_->settled_locked();
  }
  bool await_suspend(std::coroutine_handle<> h) {
    std::lock_guard lk(state_->mu);
    if (state_->settled_locked()) return false;  // resume immediately
    state_->waiters.push_back(h);                // many awaiters allowed
    return true;
  }
  T await_resume() { return take(); }

  /// Block the calling thread until settled (threaded sessions only; must
  /// not be called from the reactor that resolves this future).
  T wait() {
    std::unique_lock lk(state_->mu);
    state_->cv.wait(lk, [&] { return state_->settled_locked(); });
    lk.unlock();
    return take();
  }

  [[nodiscard]] bool ready() const noexcept {
    std::lock_guard lk(state_->mu);
    return state_->settled_locked();
  }

 private:
  friend class Promise<T>;
  explicit Future(std::shared_ptr<detail::FutureState<T>> s)
      : state_(std::move(s)) {}

  // Copies (rather than moves) the result: a Future may have several
  // awaiters (e.g. coalesced KVS object faults), each of which consumes it.
  T take() {
    std::lock_guard lk(state_->mu);
    if (auto* err = std::get_if<Error>(&state_->result))
      throw FluxException(*err);
    return std::get<T>(state_->result);
  }

  std::shared_ptr<detail::FutureState<T>> state_;
};

}  // namespace flux
