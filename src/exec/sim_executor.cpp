#include "exec/sim_executor.hpp"

#include <utility>

namespace flux {

void SimExecutor::post(std::function<void()> fn) {
  queue_.push(Event{now_, next_seq_++, false, std::move(fn)});
  ++normal_pending_;
}

void SimExecutor::post_at(TimePoint when, std::function<void()> fn) {
  if (when < now_) when = now_;
  queue_.push(Event{when, next_seq_++, false, std::move(fn)});
  ++normal_pending_;
}

void SimExecutor::post_daemon_at(TimePoint when, std::function<void()> fn) {
  if (when < now_) when = now_;
  queue_.push(Event{when, next_seq_++, true, std::move(fn)});
}

std::uint64_t SimExecutor::post_cancelable_at(TimePoint when,
                                              std::function<void()> fn) {
  if (when < now_) when = now_;
  const std::uint64_t id = next_seq_++;
  queue_.push(Event{when, id, false, std::move(fn), id});
  live_cancelable_.insert(id);
  ++normal_pending_;
  return id;
}

void SimExecutor::cancel(std::uint64_t id) {
  // The queued Event stays behind as a tombstone (priority_queue has no
  // random removal); it stops counting as pending work right now and is
  // skipped by purge_canceled() when it reaches the head.
  if (id != 0 && live_cancelable_.erase(id) > 0) --normal_pending_;
}

void SimExecutor::purge_canceled() {
  while (!queue_.empty()) {
    const Event& top = queue_.top();
    if (top.cancel_id == 0 ||
        live_cancelable_.find(top.cancel_id) != live_cancelable_.end())
      return;
    queue_.pop();
  }
}

bool SimExecutor::run_one() {
  purge_canceled();
  if (queue_.empty()) return false;
  // priority_queue::top() is const; the handler is moved out via const_cast,
  // which is safe because we pop immediately and never re-inspect the slot.
  auto& slot = const_cast<Event&>(queue_.top());
  auto fn = std::move(slot.fn);
  now_ = slot.when;
  if (!slot.daemon) --normal_pending_;
  if (slot.cancel_id != 0) live_cancelable_.erase(slot.cancel_id);
  queue_.pop();
  ++executed_;
  fn();
  return true;
}

std::size_t SimExecutor::run() {
  std::size_t n = 0;
  while (!idle() && run_one()) ++n;
  return n;
}

std::size_t SimExecutor::run_until(TimePoint deadline) {
  std::size_t n = 0;
  for (;;) {
    purge_canceled();
    if (queue_.empty() || queue_.top().when > deadline) break;
    run_one();
    ++n;
  }
  if (now_ < deadline) now_ = deadline;
  return n;
}

}  // namespace flux
