#include "exec/sim_executor.hpp"

#include <utility>

namespace flux {

void SimExecutor::post(std::function<void()> fn) {
  queue_.push(Event{now_, next_seq_++, false, std::move(fn)});
  ++normal_pending_;
}

void SimExecutor::post_at(TimePoint when, std::function<void()> fn) {
  if (when < now_) when = now_;
  queue_.push(Event{when, next_seq_++, false, std::move(fn)});
  ++normal_pending_;
}

void SimExecutor::post_daemon_at(TimePoint when, std::function<void()> fn) {
  if (when < now_) when = now_;
  queue_.push(Event{when, next_seq_++, true, std::move(fn)});
}

bool SimExecutor::run_one() {
  if (queue_.empty()) return false;
  // priority_queue::top() is const; the handler is moved out via const_cast,
  // which is safe because we pop immediately and never re-inspect the slot.
  auto& slot = const_cast<Event&>(queue_.top());
  auto fn = std::move(slot.fn);
  now_ = slot.when;
  if (!slot.daemon) --normal_pending_;
  queue_.pop();
  ++executed_;
  fn();
  return true;
}

std::size_t SimExecutor::run() {
  std::size_t n = 0;
  while (!idle() && run_one()) ++n;
  return n;
}

std::size_t SimExecutor::run_until(TimePoint deadline) {
  std::size_t n = 0;
  while (!queue_.empty() && queue_.top().when <= deadline) {
    run_one();
    ++n;
  }
  if (now_ < deadline) now_ = deadline;
  return n;
}

}  // namespace flux
