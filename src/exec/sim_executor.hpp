// Discrete-event simulation executor.
//
// A single-threaded virtual-time event loop: events execute in (time, FIFO)
// order and now() jumps to each event's timestamp. This is the engine behind
// the paper-scale experiments — 512 brokers × 16 client processes run as
// callbacks/coroutines over one SimExecutor, with the network model
// (net/simnet.hpp) scheduling message deliveries at computed times.
#pragma once

#include <cstdint>
#include <queue>
#include <unordered_set>
#include <vector>

#include "exec/executor.hpp"

namespace flux {

class SimExecutor final : public Executor {
 public:
  SimExecutor() = default;
  SimExecutor(const SimExecutor&) = delete;
  SimExecutor& operator=(const SimExecutor&) = delete;

  void post(std::function<void()> fn) override;
  void post_at(TimePoint when, std::function<void()> fn) override;
  [[nodiscard]] TimePoint now() const noexcept override { return now_; }

  /// Schedule a *daemon* event: background periodic work (heartbeat ticks)
  /// that should not keep the simulation alive. run() stops once only
  /// daemon events remain; run_until() executes them like any other event.
  void post_daemon_at(TimePoint when, std::function<void()> fn) override;

  /// Cancelable normal event (see Executor). A canceled event becomes a
  /// tombstone: skipped when reached, and no longer counted as pending work,
  /// so run() is not forced to simulate out dead RPC deadlines.
  std::uint64_t post_cancelable_at(TimePoint when,
                                   std::function<void()> fn) override;
  void cancel(std::uint64_t id) override;

  /// Execute the next event; false if the queue is empty.
  bool run_one();

  /// Run until only daemon events (or nothing) remain. Returns events run.
  std::size_t run();

  /// Run events with timestamp <= deadline; clock ends at deadline.
  std::size_t run_until(TimePoint deadline);
  std::size_t run_for(Duration d) { return run_until(now_ + d); }

  /// No non-daemon work pending.
  [[nodiscard]] bool idle() const noexcept { return normal_pending_ == 0; }
  [[nodiscard]] std::size_t pending() const noexcept { return queue_.size(); }
  [[nodiscard]] std::uint64_t executed() const noexcept { return executed_; }

 private:
  struct Event {
    TimePoint when;
    std::uint64_t seq;  // tie-break: FIFO among same-time events
    bool daemon;
    std::function<void()> fn;
    std::uint64_t cancel_id = 0;  // nonzero: cancelable, keyed in live set
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const noexcept {
      if (a.when != b.when) return a.when > b.when;
      return a.seq > b.seq;
    }
  };

  /// Drop canceled tombstones off the queue head so top() is a real event.
  void purge_canceled();

  std::priority_queue<Event, std::vector<Event>, Later> queue_;
  std::unordered_set<std::uint64_t> live_cancelable_;
  TimePoint now_{0};
  std::uint64_t next_seq_ = 0;
  std::uint64_t executed_ = 0;
  std::size_t normal_pending_ = 0;
};

}  // namespace flux
