// C++20 coroutine task type used for all client-side Flux operations.
//
// `Task<T>` is lazy: it starts when awaited, and completion resumes the
// awaiter by symmetric transfer. Detached work (KAP producers, simulated
// wexec processes) is launched with `co_spawn(executor, task)`, which owns
// the chain's lifetime and logs uncaught exceptions.
#pragma once

#include <coroutine>
#include <exception>
#include <optional>
#include <string>
#include <utility>
#include <variant>

#include "base/log.hpp"
#include "exec/executor.hpp"

namespace flux {

template <class T>
class Task;

namespace detail {

template <class T>
struct TaskPromiseBase {
  std::coroutine_handle<> continuation;

  struct FinalAwaiter {
    bool await_ready() const noexcept { return false; }
    template <class Promise>
    std::coroutine_handle<> await_suspend(
        std::coroutine_handle<Promise> h) noexcept {
      auto cont = h.promise().continuation;
      return cont ? cont : std::noop_coroutine();
    }
    void await_resume() const noexcept {}
  };

  std::suspend_always initial_suspend() noexcept { return {}; }
  FinalAwaiter final_suspend() noexcept { return {}; }
  void unhandled_exception() noexcept { exception = std::current_exception(); }

  std::exception_ptr exception;
};

}  // namespace detail

/// A lazily-started coroutine returning T. Move-only; owns its frame.
template <class T>
class Task {
 public:
  struct promise_type : detail::TaskPromiseBase<T> {
    std::optional<T> value;

    Task get_return_object() {
      return Task(std::coroutine_handle<promise_type>::from_promise(*this));
    }
    template <class U>
    void return_value(U&& v) {
      value.emplace(std::forward<U>(v));
    }
  };

  Task(Task&& o) noexcept : handle_(std::exchange(o.handle_, nullptr)) {}
  Task(const Task&) = delete;
  Task& operator=(Task&& o) noexcept {
    if (this != &o) {
      destroy();
      handle_ = std::exchange(o.handle_, nullptr);
    }
    return *this;
  }
  ~Task() { destroy(); }

  bool await_ready() const noexcept { return false; }
  std::coroutine_handle<> await_suspend(std::coroutine_handle<> cont) noexcept {
    handle_.promise().continuation = cont;
    return handle_;
  }
  T await_resume() {
    auto& p = handle_.promise();
    if (p.exception) std::rethrow_exception(p.exception);
    return std::move(*p.value);
  }

 private:
  friend struct promise_type;
  explicit Task(std::coroutine_handle<promise_type> h) : handle_(h) {}
  void destroy() {
    if (handle_) {
      handle_.destroy();
      handle_ = nullptr;
    }
  }
  std::coroutine_handle<promise_type> handle_;
};

template <>
class Task<void> {
 public:
  struct promise_type : detail::TaskPromiseBase<void> {
    Task get_return_object() {
      return Task(std::coroutine_handle<promise_type>::from_promise(*this));
    }
    void return_void() noexcept {}
  };

  Task(Task&& o) noexcept : handle_(std::exchange(o.handle_, nullptr)) {}
  Task(const Task&) = delete;
  Task& operator=(Task&& o) noexcept {
    if (this != &o) {
      destroy();
      handle_ = std::exchange(o.handle_, nullptr);
    }
    return *this;
  }
  ~Task() { destroy(); }

  bool await_ready() const noexcept { return false; }
  std::coroutine_handle<> await_suspend(std::coroutine_handle<> cont) noexcept {
    handle_.promise().continuation = cont;
    return handle_;
  }
  void await_resume() {
    if (handle_.promise().exception)
      std::rethrow_exception(handle_.promise().exception);
  }

 private:
  friend struct promise_type;
  explicit Task(std::coroutine_handle<promise_type> h) : handle_(h) {}
  void destroy() {
    if (handle_) {
      handle_.destroy();
      handle_ = nullptr;
    }
  }
  std::coroutine_handle<promise_type> handle_;
};

namespace detail {

/// Self-destroying root coroutine used by co_spawn.
struct Detached {
  struct promise_type {
    std::string name{"task"};
    Detached get_return_object() {
      return Detached{std::coroutine_handle<promise_type>::from_promise(*this)};
    }
    std::suspend_always initial_suspend() noexcept { return {}; }
    std::suspend_never final_suspend() noexcept { return {}; }
    void return_void() noexcept {}
    void unhandled_exception() noexcept {
      try {
        std::rethrow_exception(std::current_exception());
      } catch (const std::exception& e) {
        log::error("task", "uncaught exception in '", name, "': ", e.what());
      } catch (...) {
        log::error("task", "uncaught non-std exception in '", name, "'");
      }
    }
  };
  std::coroutine_handle<promise_type> handle;
};

inline Detached detached_runner(Task<void> t) { co_await std::move(t); }

}  // namespace detail

/// Launch a detached task on `ex`. The coroutine chain owns itself; uncaught
/// exceptions are logged, never propagated.
inline void co_spawn(Executor& ex, Task<void> task, std::string name = "task") {
  auto d = detail::detached_runner(std::move(task));
  d.handle.promise().name = std::move(name);
  ex.post([h = d.handle] { h.resume(); });
}

/// Awaitable that reschedules the coroutine onto `ex` after `delay`.
class SleepAwaiter {
 public:
  SleepAwaiter(Executor& ex, Duration delay) : ex_(ex), delay_(delay) {}
  bool await_ready() const noexcept { return false; }
  void await_suspend(std::coroutine_handle<> h) {
    if (delay_.count() <= 0)
      ex_.post([h] { h.resume(); });
    else
      ex_.post_after(delay_, [h] { h.resume(); });
  }
  void await_resume() const noexcept {}

 private:
  Executor& ex_;
  Duration delay_;
};

/// co_await sleep_for(ex, 5ms): suspend for simulated/wall time.
inline SleepAwaiter sleep_for(Executor& ex, Duration d) { return {ex, d}; }
/// co_await yield_to(ex): reschedule to the back of the run queue.
inline SleepAwaiter yield_to(Executor& ex) { return {ex, Duration{0}}; }

}  // namespace flux
