#include "exec/thread_executor.hpp"

#include "base/log.hpp"

namespace flux {

namespace {
/// One process-wide epoch so every ThreadExecutor reports comparable times.
std::chrono::steady_clock::time_point process_epoch() {
  static const auto epoch = std::chrono::steady_clock::now();
  return epoch;
}
}  // namespace

ThreadExecutor::ThreadExecutor() { (void)process_epoch(); }

ThreadExecutor::~ThreadExecutor() { stop(); }

TimePoint ThreadExecutor::now() const noexcept {
  return std::chrono::duration_cast<Duration>(std::chrono::steady_clock::now() -
                                              process_epoch());
}

void ThreadExecutor::post(std::function<void()> fn) {
  {
    std::lock_guard lk(mu_);
    ready_.push(std::move(fn));
  }
  cv_.notify_one();
}

void ThreadExecutor::post_at(TimePoint when, std::function<void()> fn) {
  {
    std::lock_guard lk(mu_);
    timers_.push(Timed{when, next_seq_++, std::move(fn)});
  }
  cv_.notify_one();
}

void ThreadExecutor::start() {
  std::lock_guard lk(mu_);
  if (started_) return;
  started_ = true;
  stopping_ = false;
  thread_ = std::thread([this] { loop(); });
}

void ThreadExecutor::stop() {
  {
    std::lock_guard lk(mu_);
    if (!started_) return;
    stopping_ = true;
  }
  cv_.notify_one();
  if (thread_.joinable()) thread_.join();
  std::lock_guard lk(mu_);
  started_ = false;
}

bool ThreadExecutor::in_loop_thread() const noexcept {
  return std::this_thread::get_id() == thread_.get_id();
}

void ThreadExecutor::loop() {
  std::vector<std::function<void()>> batch;
  batch.reserve(kDrainBatch);
  std::unique_lock lk(mu_);
  while (true) {
    // Promote due timers.
    const TimePoint t = now();
    while (!timers_.empty() && timers_.top().when <= t) {
      ready_.push(std::move(const_cast<Timed&>(timers_.top()).fn));
      timers_.pop();
    }
    if (!ready_.empty()) {
      // Drain a bounded batch per lock acquisition: one mutex round-trip
      // covers up to kDrainBatch tasks, and timers are re-promoted between
      // batches so they stay responsive under a flooded ready queue.
      while (!ready_.empty() && batch.size() < kDrainBatch) {
        batch.push_back(std::move(ready_.front()));
        ready_.pop();
      }
      lk.unlock();
      for (auto& fn : batch) {
        try {
          fn();
        } catch (const std::exception& e) {
          log::error("exec", "uncaught exception in reactor: ", e.what());
        }
      }
      batch.clear();
      lk.lock();
      continue;
    }
    if (stopping_) return;
    if (timers_.empty()) {
      cv_.wait(lk);
    } else {
      const auto wake = process_epoch() + timers_.top().when;
      cv_.wait_until(lk, wake);
    }
  }
}

}  // namespace flux
