// Wall-clock reactor executor: one event-loop thread.
//
// Threaded Flux sessions give each broker a ThreadExecutor, so brokers run
// truly concurrently the way CMB daemons do on separate cluster nodes. All
// ThreadExecutors share one epoch so cross-broker timestamps are comparable.
#pragma once

#include <condition_variable>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

#include "exec/executor.hpp"

namespace flux {

class ThreadExecutor final : public Executor {
 public:
  ThreadExecutor();
  ~ThreadExecutor() override;
  ThreadExecutor(const ThreadExecutor&) = delete;
  ThreadExecutor& operator=(const ThreadExecutor&) = delete;

  void post(std::function<void()> fn) override;
  void post_at(TimePoint when, std::function<void()> fn) override;
  [[nodiscard]] TimePoint now() const noexcept override;

  /// Launch the loop thread. Idempotent.
  void start();
  /// Request stop, wake the loop, join. Pending timers are discarded;
  /// already-due posts drain first.
  void stop();

  /// True when the calling thread is this executor's loop thread.
  [[nodiscard]] bool in_loop_thread() const noexcept;

  /// Ready tasks run per lock acquisition. Draining a batch amortizes the
  /// mutex + condvar handshake across a burst of posts; the bound keeps due
  /// timers from waiting behind an unbounded ready queue.
  static constexpr std::size_t kDrainBatch = 64;

 private:
  struct Timed {
    TimePoint when;
    std::uint64_t seq;
    std::function<void()> fn;
    bool operator>(const Timed& o) const noexcept {
      return when != o.when ? when > o.when : seq > o.seq;
    }
  };

  void loop();

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::queue<std::function<void()>> ready_;
  std::priority_queue<Timed, std::vector<Timed>, std::greater<>> timers_;
  std::uint64_t next_seq_ = 0;
  bool stopping_ = false;
  bool started_ = false;
  std::thread thread_;
};

}  // namespace flux
