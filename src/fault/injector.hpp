// Transport fault-injection hook.
//
// The paper's reliability argument ("self-healing overlay networks",
// "resilience to somewhat unreliable hardware") is only credible if the
// failure paths are exercised. Session::send() consults an installed
// Injector on every message; the injector returns a verdict — deliver,
// drop, delay, or corrupt — before the message reaches the transport.
// FaultPlan (plan.hpp) is the seeded, deterministic implementation.
#pragma once

#include "exec/executor.hpp"
#include "msg/message.hpp"

namespace flux::fault {

/// What to do with one in-flight message.
struct Verdict {
  enum class Action : std::uint8_t {
    deliver,  ///< pass through untouched
    drop,     ///< silently lose it (lossy link)
    delay,    ///< deliver after `delay` (also models reordering: a delayed
              ///< message lands behind later traffic on the same link)
    corrupt,  ///< flip one encoded byte; undecodable results are dropped
  };
  Action action = Action::deliver;
  Duration delay{0};          ///< for Action::delay
  std::size_t corrupt_pos = 0;   ///< byte index (mod wire size) to flip
  std::uint8_t corrupt_xor = 1;  ///< non-zero xor mask for the flipped byte

  static Verdict deliver_v() { return {}; }
  static Verdict drop_v() { return {Action::drop, Duration{0}, 0, 1}; }
  static Verdict delay_v(Duration d) { return {Action::delay, d, 0, 1}; }
  static Verdict corrupt_v(std::size_t pos, std::uint8_t mask) {
    return {Action::corrupt, Duration{0}, pos, mask == 0 ? std::uint8_t{1} : mask};
  }
};

/// Interface installed via Session::set_fault_injector. Called on the
/// sender's reactor for every transport send (including the node-local
/// client hop, from == to).
class Injector {
 public:
  virtual ~Injector() = default;
  virtual Verdict on_send(NodeId from, NodeId to, const Message& msg) = 0;

  /// Durable-storage crash hook: when a broker fails with `unsynced_bytes`
  /// buffered in a persistence backend, the return value is how many of
  /// those bytes survive as a torn partial flush (0 = clean tail loss,
  /// `unsynced_bytes` = everything made it). Lets a FaultPlan model
  /// torn-write / crash-mid-checkpoint storage damage deterministically.
  virtual std::uint64_t on_crash_unsynced(NodeId rank,
                                          std::uint64_t unsynced_bytes) {
    (void)rank;
    (void)unsynced_bytes;
    return 0;
  }
};

}  // namespace flux::fault
