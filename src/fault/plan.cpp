#include "fault/plan.hpp"

#include <algorithm>
#include <string>

#include "base/error.hpp"
#include "broker/session.hpp"

namespace flux::fault {

namespace {

bool rank_matches(NodeId pattern, NodeId rank) noexcept {
  return pattern == kNodeAny || pattern == rank;
}

Duration us(std::int64_t n) { return std::chrono::microseconds(n); }

NodeId rank_from_json(const Json& j, const char* key) {
  const std::int64_t r = j.get_int(key, -1);
  return r < 0 ? kNodeAny : static_cast<NodeId>(r);
}

/// Duration field with both spellings: "<key>_ns" wins over "<key>_us".
Duration duration_from_json(const Json& j, const std::string& key,
                            std::int64_t default_us = 0) {
  const std::string ns_key = key + "_ns";
  if (j.contains(ns_key)) return Duration{j.get_int(ns_key)};
  return us(j.get_int(key + "_us", default_us));
}

std::int64_t rank_to_json(NodeId r) {
  return r == kNodeAny ? -1 : static_cast<std::int64_t>(r);
}

const char* action_name(Verdict::Action a) {
  switch (a) {
    case Verdict::Action::drop: return "drop";
    case Verdict::Action::corrupt: return "corrupt";
    case Verdict::Action::delay: return "delay";
    case Verdict::Action::deliver: return "deliver";
  }
  return "?";
}

const char* torn_mode_name(TornRule::Mode m) {
  switch (m) {
    case TornRule::Mode::none: return "none";
    case TornRule::Mode::all: return "all";
    case TornRule::Mode::random: return "random";
  }
  return "?";
}

}  // namespace

FaultPlan::FaultPlan(std::uint64_t seed) : seed_(seed), rng_(seed) {}

FaultPlan& FaultPlan::crash_at(NodeId rank, Duration at) {
  events_.push_back({NodeEvent::Kind::crash, rank, at});
  return *this;
}

FaultPlan& FaultPlan::restart_at(NodeId rank, Duration at) {
  events_.push_back({NodeEvent::Kind::restart, rank, at});
  return *this;
}

FaultPlan& FaultPlan::link(LinkPolicy policy) {
  links_.push_back(policy);
  return *this;
}

FaultPlan& FaultPlan::drop_nth(NodeId from, NodeId to, std::uint64_t nth,
                               std::string topic) {
  nth_rules_.push_back({from, to, nth, Verdict::Action::drop, Duration{0},
                        std::move(topic), false, 0});
  return *this;
}

FaultPlan& FaultPlan::corrupt_nth(NodeId from, NodeId to, std::uint64_t nth,
                                  std::string topic) {
  nth_rules_.push_back({from, to, nth, Verdict::Action::corrupt, Duration{0},
                        std::move(topic), false, 0});
  return *this;
}

FaultPlan& FaultPlan::delay_nth(NodeId from, NodeId to, std::uint64_t nth,
                                Duration d, std::string topic) {
  nth_rules_.push_back(
      {from, to, nth, Verdict::Action::delay, d, std::move(topic), false, 0});
  return *this;
}

FaultPlan& FaultPlan::torn_write(NodeId rank, TornRule::Mode mode) {
  torn_rules_.push_back({rank, mode});
  return *this;
}

FaultPlan FaultPlan::from_json(const Json& j) {
  FaultPlan plan(static_cast<std::uint64_t>(j.get_int("seed", 1)));
  if (j.contains("events")) {
    if (!j.at("events").is_array())
      throw FluxException(Error(errc::inval, "fault plan: events not an array"));
    for (const Json& e : j.at("events").as_array()) {
      const std::string kind = e.get_string("kind");
      const auto rank = static_cast<NodeId>(e.get_int("rank", 0));
      const Duration at = duration_from_json(e, "at");
      if (kind == "crash")
        plan.crash_at(rank, at);
      else if (kind == "restart")
        plan.restart_at(rank, at);
      else
        throw FluxException(
            Error(errc::inval, "fault plan: unknown event kind '" + kind + "'"));
    }
  }
  if (j.contains("links")) {
    if (!j.at("links").is_array())
      throw FluxException(Error(errc::inval, "fault plan: links not an array"));
    for (const Json& l : j.at("links").as_array()) {
      LinkPolicy p;
      p.from = rank_from_json(l, "from");
      p.to = rank_from_json(l, "to");
      p.drop = l.get_double("drop", 0.0);
      p.corrupt = l.get_double("corrupt", 0.0);
      p.delay = l.get_double("delay", 0.0);
      p.delay_min = duration_from_json(l, "delay_min");
      p.delay_max = duration_from_json(l, "delay_max");
      plan.link(p);
    }
  }
  if (j.contains("nth")) {
    if (!j.at("nth").is_array())
      throw FluxException(Error(errc::inval, "fault plan: nth not an array"));
    for (const Json& r : j.at("nth").as_array()) {
      const NodeId from = rank_from_json(r, "from");
      const NodeId to = rank_from_json(r, "to");
      const auto nth = static_cast<std::uint64_t>(r.get_int("n", 1));
      std::string topic = r.get_string("topic");
      const std::string action = r.get_string("action");
      if (action == "drop")
        plan.drop_nth(from, to, nth, std::move(topic));
      else if (action == "corrupt")
        plan.corrupt_nth(from, to, nth, std::move(topic));
      else if (action == "delay")
        plan.delay_nth(from, to, nth, duration_from_json(r, "delay", 100),
                       std::move(topic));
      else
        throw FluxException(Error(
            errc::inval, "fault plan: unknown nth action '" + action + "'"));
    }
  }
  if (j.contains("torn")) {
    if (!j.at("torn").is_array())
      throw FluxException(Error(errc::inval, "fault plan: torn not an array"));
    for (const Json& t : j.at("torn").as_array()) {
      const std::string mode = t.get_string("mode", "random");
      TornRule::Mode m;
      if (mode == "none")
        m = TornRule::Mode::none;
      else if (mode == "all")
        m = TornRule::Mode::all;
      else if (mode == "random")
        m = TornRule::Mode::random;
      else
        throw FluxException(Error(
            errc::inval, "fault plan: unknown torn mode '" + mode + "'"));
      plan.torn_write(rank_from_json(t, "rank"), m);
    }
  }
  return plan;
}

Json FaultPlan::to_json() const {
  Json events = Json::array();
  for (const NodeEvent& e : events_)
    events.push_back(Json::object(
        {{"kind", e.kind == NodeEvent::Kind::crash ? "crash" : "restart"},
         {"rank", static_cast<std::int64_t>(e.rank)},
         {"at_ns", e.at.count()}}));
  Json links = Json::array();
  for (const LinkPolicy& p : links_)
    links.push_back(Json::object({{"from", rank_to_json(p.from)},
                                  {"to", rank_to_json(p.to)},
                                  {"drop", p.drop},
                                  {"corrupt", p.corrupt},
                                  {"delay", p.delay},
                                  {"delay_min_ns", p.delay_min.count()},
                                  {"delay_max_ns", p.delay_max.count()}}));
  Json nth = Json::array();
  for (const NthRule& r : nth_rules_)
    nth.push_back(Json::object({{"from", rank_to_json(r.from)},
                                {"to", rank_to_json(r.to)},
                                {"n", static_cast<std::int64_t>(r.nth)},
                                {"action", action_name(r.action)},
                                {"delay_ns", r.delay.count()},
                                {"topic", r.topic}}));
  Json torn = Json::array();
  for (const TornRule& t : torn_rules_)
    torn.push_back(Json::object({{"rank", rank_to_json(t.rank)},
                                 {"mode", torn_mode_name(t.mode)}}));
  return Json::object({{"seed", static_cast<std::int64_t>(seed_)},
                       {"events", std::move(events)},
                       {"links", std::move(links)},
                       {"nth", std::move(nth)},
                       {"torn", std::move(torn)}});
}

FaultPlan FaultPlan::random(std::uint64_t seed, const RandomOptions& opt) {
  FaultPlan plan(seed);
  // A separate stream for schedule synthesis so per-message draws in
  // on_send() don't depend on how many schedule decisions were made.
  Rng r(seed ^ 0xfa017be9cdb97d1ULL);
  const auto frac = [&](double lo, double hi) {
    return lo + (hi - lo) * r.uniform();
  };
  const auto within = [&](double lo_frac, double hi_frac) {
    return std::chrono::duration_cast<Duration>(opt.horizon *
                                                frac(lo_frac, hi_frac));
  };

  if (opt.crashes && opt.size > 1) {
    const int n =
        1 + static_cast<int>(r.below(static_cast<std::uint64_t>(
                std::max(1, std::min(opt.max_crashes,
                                     static_cast<int>(opt.size) - 1)))));
    std::vector<NodeId> victims;
    while (static_cast<int>(victims.size()) < n) {
      // Rank 0 hosts the session root (KVS coordinator, event sequencer);
      // the paper treats its loss as session-fatal, so plans spare it.
      const auto v = static_cast<NodeId>(1 + r.below(opt.size - 1));
      if (std::find(victims.begin(), victims.end(), v) == victims.end())
        victims.push_back(v);
    }
    for (const NodeId v : victims) {
      const Duration at = within(0.1, 0.5);
      plan.crash_at(v, at);
      if (opt.restarts && r.uniform() < 0.75)
        plan.restart_at(v, at + within(0.2, 0.4));
    }
  }
  if (opt.crash_root) {
    // Root loss is survivable only with a persistent KVS master, and only
    // if it comes back: always schedule the restart.
    const Duration at = within(0.15, 0.45);
    plan.crash_at(0, at);
    plan.restart_at(0, at + within(0.1, 0.3));
  }
  if (opt.torn_writes) plan.torn_write(kNodeAny, TornRule::Mode::random);
  if (opt.drops) {
    LinkPolicy p;
    p.drop = frac(0.005, 0.05);
    plan.link(p);
  }
  if (opt.delays) {
    LinkPolicy p;
    p.delay = frac(0.02, 0.15);
    p.delay_min = us(5);
    p.delay_max = us(static_cast<std::int64_t>(frac(50, 500)));
    plan.link(p);
  }
  if (opt.corruption) {
    LinkPolicy p;
    p.corrupt = frac(0.005, 0.03);
    plan.link(p);
  }
  return plan;
}

void FaultPlan::arm(Session& session) {
  if (armed_) return;
  armed_ = true;
  session.set_fault_injector(this);
  for (const NodeEvent& e : events_) {
    Session* s = &session;
    const NodeEvent ev = e;
    // Posted on rank 0's executor: in sim mode that is THE executor (so
    // events land at exact virtual times); in threaded mode any reactor
    // works because Session::fail/restart re-post onto the target's own.
    session.executor(0).post_after(ev.at, [s, ev] {
      if (ev.kind == NodeEvent::Kind::crash)
        s->fail(ev.rank);
      else
        s->restart(ev.rank);
    });
  }
}

std::uint64_t FaultPlan::messages_seen() const noexcept {
  std::lock_guard lk(mu_);
  return seen_;
}

std::uint64_t FaultPlan::faults_injected() const noexcept {
  std::lock_guard lk(mu_);
  return injected_;
}

std::uint64_t FaultPlan::on_crash_unsynced(NodeId rank,
                                           std::uint64_t unsynced_bytes) {
  std::lock_guard lk(mu_);
  for (const TornRule& t : torn_rules_) {
    if (!rank_matches(t.rank, rank)) continue;
    switch (t.mode) {
      case TornRule::Mode::none:
        return 0;
      case TornRule::Mode::all:
        return unsynced_bytes;
      case TornRule::Mode::random:
        return unsynced_bytes == 0 ? 0 : rng_.below(unsynced_bytes + 1);
    }
  }
  return 0;
}

Verdict FaultPlan::on_send(NodeId from, NodeId to, const Message& msg) {
  std::lock_guard lk(mu_);
  ++seen_;
  const std::uint64_t n = ++counts_[{from, to}];
  for (NthRule& rule : nth_rules_) {
    if (rule.spent || !rank_matches(rule.from, from) ||
        !rank_matches(rule.to, to))
      continue;
    // Topic rules keep their own count of matching messages; plain rules
    // index into the link pair's full message stream (legacy semantics).
    std::uint64_t k = n;
    if (!rule.topic.empty()) {
      if (!Message::topic_matches(rule.topic, msg.topic)) continue;
      k = ++rule.matched;
    }
    if (rule.nth != k) continue;
    rule.spent = true;
    ++injected_;
    switch (rule.action) {
      case Verdict::Action::drop:
        return Verdict::drop_v();
      case Verdict::Action::delay:
        return Verdict::delay_v(rule.delay);
      case Verdict::Action::corrupt:
        return Verdict::corrupt_v(static_cast<std::size_t>(rng_()),
                                  static_cast<std::uint8_t>(rng_() | 1));
      case Verdict::Action::deliver:
        return Verdict::deliver_v();
    }
  }
  for (const LinkPolicy& p : links_) {
    if (!rank_matches(p.from, from) || !rank_matches(p.to, to)) continue;
    const double u = rng_.uniform();
    if (u < p.drop) {
      ++injected_;
      return Verdict::drop_v();
    }
    if (u < p.drop + p.corrupt) {
      ++injected_;
      return Verdict::corrupt_v(static_cast<std::size_t>(rng_()),
                                static_cast<std::uint8_t>(rng_() | 1));
    }
    if (u < p.drop + p.corrupt + p.delay) {
      ++injected_;
      const auto span = p.delay_max - p.delay_min;
      const Duration d =
          p.delay_min +
          (span.count() > 0
               ? Duration{static_cast<Duration::rep>(
                     rng_.below(static_cast<std::uint64_t>(span.count())))}
               : Duration{0});
      return Verdict::delay_v(d);
    }
  }
  return Verdict::deliver_v();
}

}  // namespace flux::fault
