// Seed-driven deterministic fault schedules.
//
// A FaultPlan is the concrete Injector: it owns a timed schedule of
// node-level faults (broker crashes, restarts with tree rejoin) plus per-link
// message policies (probabilistic drop/delay/corrupt and exact
// nth-message triggers). Everything a plan does derives from its seed and the
// order of transport sends, so a simulated run replays bit-for-bit: rerunning
// a failing chaos seed reproduces the failure.
//
// Construction is programmatic (fluent setters) or from JSON:
//
//   {
//     "events": [{"kind": "crash",   "rank": 3, "at_us": 2000},
//                {"kind": "restart", "rank": 3, "at_us": 9000}],
//     "links":  [{"from": -1, "to": -1, "drop": 0.02,
//                 "delay": 0.05, "delay_min_us": 20, "delay_max_us": 400,
//                 "corrupt": 0.01}],
//     "nth":    [{"from": 0, "to": 1, "n": 7, "action": "drop"}]
//   }
//
// (-1 is the wildcard rank.) FaultPlan::random(seed, opts) synthesizes a
// schedule from a single seed — the chaos suite's generator.
//
// Usage: bring the session online first, then arm(session). Arming installs
// the injector and posts the timed node events; link policies apply to every
// send from that point on. The plan must outlive the session (or the session
// must clear the injector first).
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "base/rng.hpp"
#include "fault/injector.hpp"
#include "json/json.hpp"

namespace flux {
class Session;
}  // namespace flux

namespace flux::fault {

/// One scheduled node-level fault.
struct NodeEvent {
  enum class Kind : std::uint8_t { crash, restart };
  Kind kind = Kind::crash;
  NodeId rank = 0;
  Duration at{0};  ///< relative to arm() time
};

/// Probabilistic per-message policy for a link (or, with wildcard ranks, a
/// set of links). Probabilities are evaluated in the order drop, corrupt,
/// delay against one uniform draw, so their sum should stay <= 1.
struct LinkPolicy {
  NodeId from = kNodeAny;  ///< kNodeAny = any sender
  NodeId to = kNodeAny;    ///< kNodeAny = any receiver
  double drop = 0.0;
  double corrupt = 0.0;
  double delay = 0.0;
  Duration delay_min{0};
  Duration delay_max{0};
};

/// Exact-count trigger: act on the nth matching message of a link. Fires
/// once; counts are kept per (from, to) pair, wildcards match any pair.
/// With a non-empty topic prefix the rule counts only messages whose topic
/// matches it (per-rule count), so e.g. "the 2nd kvs.load from 3 to 1" is
/// addressable regardless of interleaved heartbeat/event traffic.
struct NthRule {
  NodeId from = kNodeAny;
  NodeId to = kNodeAny;
  std::uint64_t nth = 1;  ///< 1-based
  Verdict::Action action = Verdict::Action::drop;
  Duration delay{0};      ///< for Action::delay
  std::string topic;      ///< topic prefix filter; empty = any message
  bool spent = false;
  std::uint64_t matched = 0;  ///< per-rule count (topic rules only)
};

/// Torn-write rule: when a matching rank crashes with unsynced bytes in a
/// durable-storage backend, decide how much of that tail reached disk as a
/// partial flush (Injector::on_crash_unsynced). Without any matching rule a
/// crash loses the whole unsynced tail (keep = 0).
struct TornRule {
  enum class Mode : std::uint8_t {
    none,    ///< clean tail loss (keep 0 bytes)
    all,     ///< the flush completed just in time (keep everything)
    random,  ///< torn: keep a uniform prefix in [0, unsynced]
  };
  NodeId rank = kNodeAny;
  Mode mode = Mode::random;
};

class FaultPlan final : public Injector {
 public:
  explicit FaultPlan(std::uint64_t seed = 1);

  /// Movable so the factory functions below can return by value. Must not be
  /// moved after arm() — the session holds a pointer to the armed plan.
  FaultPlan(FaultPlan&& o) noexcept
      : seed_(o.seed_),
        rng_(o.rng_),
        events_(std::move(o.events_)),
        links_(std::move(o.links_)),
        nth_rules_(std::move(o.nth_rules_)),
        torn_rules_(std::move(o.torn_rules_)),
        counts_(std::move(o.counts_)),
        seen_(o.seen_),
        injected_(o.injected_),
        armed_(o.armed_) {}
  FaultPlan(const FaultPlan&) = delete;
  FaultPlan& operator=(const FaultPlan&) = delete;
  FaultPlan& operator=(FaultPlan&&) = delete;

  // -- programmatic construction ---------------------------------------------
  FaultPlan& crash_at(NodeId rank, Duration at);
  FaultPlan& restart_at(NodeId rank, Duration at);
  FaultPlan& link(LinkPolicy policy);
  FaultPlan& drop_nth(NodeId from, NodeId to, std::uint64_t nth,
                      std::string topic = {});
  FaultPlan& corrupt_nth(NodeId from, NodeId to, std::uint64_t nth,
                         std::string topic = {});
  FaultPlan& delay_nth(NodeId from, NodeId to, std::uint64_t nth, Duration d,
                       std::string topic = {});
  FaultPlan& torn_write(NodeId rank, TornRule::Mode mode = TornRule::Mode::random);

  /// Parse the JSON schedule format above. Throws FluxException(inval) on
  /// malformed input. Nanosecond-precision variants of every duration field
  /// (at_ns, delay_min_ns, delay_max_ns, delay_ns) are accepted and win over
  /// the microsecond ones — to_json() emits those, so a synthesized schedule
  /// round-trips exactly.
  static FaultPlan from_json(const Json& j);

  /// Serialize the schedule (seed + events + links + nth rules) so that
  /// from_json(to_json()) rebuilds an identically-behaving plan. This is the
  /// shrinker's repro format (check/shrink.hpp).
  [[nodiscard]] Json to_json() const;

  /// Options for random(): which fault categories a synthesized schedule may
  /// draw from, sized to the session.
  struct RandomOptions {
    std::uint32_t size = 1;          ///< session size (rank 0 never crashes)
    Duration horizon{std::chrono::milliseconds(50)};  ///< schedule window
    bool crashes = false;
    bool restarts = false;  ///< crashed brokers may restart + rejoin
    bool drops = false;
    bool delays = false;
    bool corruption = false;
    /// Crash (and always restart) the session root too — only meaningful
    /// for sessions whose KVS master persists, since root state is
    /// otherwise unrecoverable.
    bool crash_root = false;
    /// Add a wildcard torn-write rule: crashes keep a random prefix of any
    /// unsynced durable-storage tail.
    bool torn_writes = false;
    int max_crashes = 1;
  };

  /// Deterministically synthesize a schedule from one seed.
  static FaultPlan random(std::uint64_t seed, const RandomOptions& opt);

  /// Install this plan on a session: set the injector and post the timed
  /// node events (times are relative to now). Call once, after wire-up.
  void arm(Session& session);

  [[nodiscard]] std::uint64_t seed() const noexcept { return seed_; }
  [[nodiscard]] const std::vector<NodeEvent>& events() const noexcept {
    return events_;
  }

  /// Messages considered (total transport sends seen since arm()).
  [[nodiscard]] std::uint64_t messages_seen() const noexcept;
  /// Messages dropped / delayed / corrupted so far.
  [[nodiscard]] std::uint64_t faults_injected() const noexcept;

  // Injector:
  Verdict on_send(NodeId from, NodeId to, const Message& msg) override;
  std::uint64_t on_crash_unsynced(NodeId rank,
                                  std::uint64_t unsynced_bytes) override;

 private:
  std::uint64_t seed_;
  Rng rng_;
  // Threaded sessions call on_send from every broker's reactor thread.
  mutable std::mutex mu_;
  std::vector<NodeEvent> events_;
  std::vector<LinkPolicy> links_;
  std::vector<NthRule> nth_rules_;
  std::vector<TornRule> torn_rules_;
  std::map<std::pair<NodeId, NodeId>, std::uint64_t> counts_;
  std::uint64_t seen_ = 0;
  std::uint64_t injected_ = 0;
  bool armed_ = false;
};

}  // namespace flux::fault
