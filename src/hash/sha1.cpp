#include "hash/sha1.hpp"

#include <cstring>

#include "base/hex.hpp"

namespace flux {

namespace {
inline std::uint32_t rotl32(std::uint32_t x, int n) noexcept {
  return (x << n) | (x >> (32 - n));
}
}  // namespace

Sha1Stream::Sha1Stream() {
  h_[0] = 0x67452301u;
  h_[1] = 0xEFCDAB89u;
  h_[2] = 0x98BADCFEu;
  h_[3] = 0x10325476u;
  h_[4] = 0xC3D2E1F0u;
}

void Sha1Stream::process_block(const std::uint8_t* block) {
  std::uint32_t w[80];
  for (int i = 0; i < 16; ++i) {
    w[i] = (static_cast<std::uint32_t>(block[i * 4]) << 24) |
           (static_cast<std::uint32_t>(block[i * 4 + 1]) << 16) |
           (static_cast<std::uint32_t>(block[i * 4 + 2]) << 8) |
           static_cast<std::uint32_t>(block[i * 4 + 3]);
  }
  for (int i = 16; i < 80; ++i)
    w[i] = rotl32(w[i - 3] ^ w[i - 8] ^ w[i - 14] ^ w[i - 16], 1);

  std::uint32_t a = h_[0], b = h_[1], c = h_[2], d = h_[3], e = h_[4];
  for (int i = 0; i < 80; ++i) {
    std::uint32_t f, k;
    if (i < 20) {
      f = (b & c) | ((~b) & d);
      k = 0x5A827999u;
    } else if (i < 40) {
      f = b ^ c ^ d;
      k = 0x6ED9EBA1u;
    } else if (i < 60) {
      f = (b & c) | (b & d) | (c & d);
      k = 0x8F1BBCDCu;
    } else {
      f = b ^ c ^ d;
      k = 0xCA62C1D6u;
    }
    const std::uint32_t tmp = rotl32(a, 5) + f + e + k + w[i];
    e = d;
    d = c;
    c = rotl32(b, 30);
    b = a;
    a = tmp;
  }
  h_[0] += a;
  h_[1] += b;
  h_[2] += c;
  h_[3] += d;
  h_[4] += e;
}

void Sha1Stream::update(std::span<const std::uint8_t> data) {
  total_bytes_ += data.size();
  std::size_t offset = 0;
  if (buffered_ > 0) {
    const std::size_t take = std::min(data.size(), buffer_.size() - buffered_);
    std::memcpy(buffer_.data() + buffered_, data.data(), take);
    buffered_ += take;
    offset = take;
    if (buffered_ == buffer_.size()) {
      process_block(buffer_.data());
      buffered_ = 0;
    }
  }
  while (offset + 64 <= data.size()) {
    process_block(data.data() + offset);
    offset += 64;
  }
  if (offset < data.size()) {
    std::memcpy(buffer_.data(), data.data() + offset, data.size() - offset);
    buffered_ = data.size() - offset;
  }
}

void Sha1Stream::update(std::string_view data) {
  update(std::span<const std::uint8_t>(
      reinterpret_cast<const std::uint8_t*>(data.data()), data.size()));
}

Sha1 Sha1Stream::digest() {
  const std::uint64_t bit_len = total_bytes_ * 8;
  const std::uint8_t one = 0x80;
  update(std::span<const std::uint8_t>(&one, 1));
  const std::uint8_t zero = 0x00;
  while (buffered_ != 56) update(std::span<const std::uint8_t>(&zero, 1));
  std::uint8_t len_be[8];
  for (int i = 0; i < 8; ++i)
    len_be[i] = static_cast<std::uint8_t>(bit_len >> (56 - i * 8));
  std::memcpy(buffer_.data() + 56, len_be, 8);
  process_block(buffer_.data());
  buffered_ = 0;

  std::array<std::uint8_t, Sha1::kSize> out{};
  for (int i = 0; i < 5; ++i) {
    out[static_cast<std::size_t>(i * 4)] = static_cast<std::uint8_t>(h_[i] >> 24);
    out[static_cast<std::size_t>(i * 4 + 1)] = static_cast<std::uint8_t>(h_[i] >> 16);
    out[static_cast<std::size_t>(i * 4 + 2)] = static_cast<std::uint8_t>(h_[i] >> 8);
    out[static_cast<std::size_t>(i * 4 + 3)] = static_cast<std::uint8_t>(h_[i]);
  }
  return Sha1(out);
}

Sha1 Sha1::of(std::span<const std::uint8_t> data) {
  Sha1Stream s;
  s.update(data);
  return s.digest();
}

Sha1 Sha1::of(std::string_view data) {
  Sha1Stream s;
  s.update(data);
  return s.digest();
}

std::optional<Sha1> Sha1::parse(std::string_view hex) {
  auto bytes = hex_decode(hex);
  if (!bytes || bytes->size() != kSize) return std::nullopt;
  std::array<std::uint8_t, kSize> raw{};
  std::memcpy(raw.data(), bytes->data(), kSize);
  return Sha1(raw);
}

std::string Sha1::hex() const { return hex_encode(raw_); }

std::string Sha1::short_hex() const { return hex().substr(0, 8); }

}  // namespace flux
