// SHA1 content digests for the Flux KVS object store.
//
// The paper's KVS places JSON objects in a content-addressable store "hashed
// by their SHA1 digests" (§IV-B). This is a from-scratch FIPS-180-1
// implementation; cryptographic strength is irrelevant here — we only need a
// stable, well-distributed content address with negligible collision odds.
#pragma once

#include <array>
#include <compare>
#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <string_view>

namespace flux {

/// A 160-bit SHA1 digest; the object address in the KVS content store.
class Sha1 {
 public:
  static constexpr std::size_t kSize = 20;

  Sha1() = default;
  explicit Sha1(const std::array<std::uint8_t, kSize>& raw) : raw_(raw) {}

  /// Digest of a byte span.
  static Sha1 of(std::span<const std::uint8_t> data);
  /// Digest of a string's bytes.
  static Sha1 of(std::string_view data);

  /// Parse a 40-char lower/upper hex reference ("1c002dde...").
  static std::optional<Sha1> parse(std::string_view hex);

  [[nodiscard]] const std::array<std::uint8_t, kSize>& raw() const noexcept {
    return raw_;
  }
  [[nodiscard]] std::string hex() const;
  /// Abbreviated reference for logs ("1c002dde").
  [[nodiscard]] std::string short_hex() const;

  friend auto operator<=>(const Sha1&, const Sha1&) = default;

 private:
  std::array<std::uint8_t, kSize> raw_{};
};

/// Streaming SHA1 for incremental hashing of serialized objects.
class Sha1Stream {
 public:
  Sha1Stream();
  void update(std::span<const std::uint8_t> data);
  void update(std::string_view data);
  /// Finalize and return the digest. The stream must not be reused after.
  Sha1 digest();

 private:
  void process_block(const std::uint8_t* block);

  std::uint32_t h_[5];
  std::uint64_t total_bytes_ = 0;
  std::array<std::uint8_t, 64> buffer_{};
  std::size_t buffered_ = 0;
};

}  // namespace flux

template <>
struct std::hash<flux::Sha1> {
  std::size_t operator()(const flux::Sha1& s) const noexcept {
    // The digest is already uniformly distributed; fold the first 8 bytes.
    std::size_t out = 0;
    for (std::size_t i = 0; i < sizeof(std::size_t); ++i)
      out = (out << 8) | s.raw()[i];
    return out;
  }
};
