#include "json/json.hpp"

#include <algorithm>
#include <cassert>
#include <charconv>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <limits>
#include <stdexcept>

namespace flux {

namespace {
const Json kNull{};

[[noreturn]] void type_error(const char* what) {
  throw FluxException(Error(errc::inval, std::string("json: not a ") + what));
}
}  // namespace

const Json& JsonObject::at(std::string_view key) const {
  auto it = find(key);
  if (it == end())
    throw std::out_of_range("JsonObject::at: no key " + std::string(key));
  return it->second;
}

Json::Json(unsigned long v) {
  if (v > static_cast<unsigned long>(std::numeric_limits<std::int64_t>::max()))
    value_ = static_cast<double>(v);
  else
    value_ = static_cast<std::int64_t>(v);
}

Json::Json(unsigned long long v) {
  if (v > static_cast<unsigned long long>(std::numeric_limits<std::int64_t>::max()))
    value_ = static_cast<double>(v);
  else
    value_ = static_cast<std::int64_t>(v);
}

Json Json::array(std::initializer_list<Json> items) {
  return Json(JsonArray(items));
}

Json Json::object(
    std::initializer_list<std::pair<const std::string, Json>> items) {
  return Json(JsonObject(items));
}

Json::Type Json::type() const noexcept {
  return static_cast<Type>(value_.index());
}

bool Json::as_bool() const {
  if (auto* b = std::get_if<bool>(&value_)) return *b;
  type_error("bool");
}

std::int64_t Json::as_int() const {
  if (auto* i = std::get_if<std::int64_t>(&value_)) return *i;
  type_error("int");
}

double Json::as_double() const {
  if (auto* d = std::get_if<double>(&value_)) return *d;
  if (auto* i = std::get_if<std::int64_t>(&value_))
    return static_cast<double>(*i);
  type_error("number");
}

const std::string& Json::as_string() const {
  if (auto* s = std::get_if<std::string>(&value_)) return *s;
  type_error("string");
}

const JsonArray& Json::as_array() const {
  if (auto* a = std::get_if<JsonArray>(&value_)) return *a;
  type_error("array");
}

JsonArray& Json::as_array() {
  if (auto* a = std::get_if<JsonArray>(&value_)) return *a;
  type_error("array");
}

const JsonObject& Json::as_object() const {
  if (auto* o = std::get_if<JsonObject>(&value_)) return *o;
  type_error("object");
}

JsonObject& Json::as_object() {
  if (auto* o = std::get_if<JsonObject>(&value_)) return *o;
  type_error("object");
}

bool Json::contains(std::string_view key) const noexcept {
  auto* o = std::get_if<JsonObject>(&value_);
  return o != nullptr && o->find(key) != o->end();
}

const Json& Json::at(std::string_view key) const {
  if (auto* o = std::get_if<JsonObject>(&value_)) {
    auto it = o->find(key);
    if (it != o->end()) return it->second;
  }
  return kNull;
}

Json& Json::operator[](std::string_view key) {
  if (is_null()) value_ = JsonObject{};
  auto& obj = as_object();
  return obj.emplace(std::string(key), Json()).first->second;
}

std::int64_t Json::get_int(std::string_view key, std::int64_t dflt) const {
  const Json& v = at(key);
  if (v.is_int()) return v.as_int();
  if (v.is_double()) return static_cast<std::int64_t>(v.as_double());
  return dflt;
}

std::string Json::get_string(std::string_view key, std::string dflt) const {
  const Json& v = at(key);
  return v.is_string() ? v.as_string() : std::move(dflt);
}

bool Json::get_bool(std::string_view key, bool dflt) const {
  const Json& v = at(key);
  return v.is_bool() ? v.as_bool() : dflt;
}

double Json::get_double(std::string_view key, double dflt) const {
  const Json& v = at(key);
  return v.is_number() ? v.as_double() : dflt;
}

std::size_t Json::size() const noexcept {
  switch (type()) {
    case Type::Array: return std::get<JsonArray>(value_).size();
    case Type::Object: return std::get<JsonObject>(value_).size();
    case Type::String: return std::get<std::string>(value_).size();
    default: return 0;
  }
}

void Json::push_back(Json v) {
  if (is_null()) value_ = JsonArray{};
  as_array().push_back(std::move(v));
}

bool operator==(const Json& a, const Json& b) noexcept {
  return a.value_ == b.value_;
}

// ---------------------------------------------------------------------------
// Serialization
// ---------------------------------------------------------------------------

namespace {

/// True for bytes that can be copied into a string literal verbatim.
inline bool plain_char(unsigned char c) noexcept {
  return c >= 0x20 && c != '"' && c != '\\';
}

}  // namespace

void json_escape_to(std::string& out, std::string_view s) {
  out.push_back('"');
  std::size_t i = 0;
  while (i < s.size()) {
    // Bulk-copy the run of plain characters (the whole string, usually).
    std::size_t run = i;
    while (run < s.size() && plain_char(static_cast<unsigned char>(s[run])))
      ++run;
    out.append(s.data() + i, run - i);
    i = run;
    if (i >= s.size()) break;
    const auto c = static_cast<unsigned char>(s[i++]);
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default: {
        char buf[8];
        std::snprintf(buf, sizeof buf, "\\u%04x", c);
        out += buf;
      }
    }
  }
  out.push_back('"');
}

std::size_t json_escaped_size(std::string_view s) noexcept {
  std::size_t n = 2;  // quotes
  for (const char raw : s) {
    const auto c = static_cast<unsigned char>(raw);
    if (plain_char(c))
      n += 1;
    else
      switch (c) {
        case '"': case '\\': case '\b': case '\f':
        case '\n': case '\r': case '\t': n += 2; break;
        default: n += 6; break;  // \uXXXX
      }
  }
  return n;
}

namespace {

void dump_double_to(std::string& out, double d) {
  if (std::isnan(d) || std::isinf(d)) {
    // JSON has no NaN/Inf; emit null (matches common library behaviour).
    out += "null";
    return;
  }
  char buf[32];
  auto [ptr, ec] = std::to_chars(buf, buf + sizeof buf, d);
  assert(ec == std::errc());
  out.append(buf, ptr);
  // Ensure a double never parses back as an int (canonical round-trip).
  if (std::memchr(buf, '.', static_cast<std::size_t>(ptr - buf)) == nullptr &&
      std::memchr(buf, 'e', static_cast<std::size_t>(ptr - buf)) == nullptr &&
      std::memchr(buf, 'E', static_cast<std::size_t>(ptr - buf)) == nullptr &&
      std::memchr(buf, 'n', static_cast<std::size_t>(ptr - buf)) == nullptr)
    out += ".0";
}

std::size_t double_dump_size(double d) {
  char buf[40];
  std::string tmp;  // small; stays in SSO
  tmp.reserve(sizeof buf);
  dump_double_to(tmp, d);
  return tmp.size();
}

}  // namespace

void Json::dump_into(std::string& out) const {
  switch (type()) {
    case Type::Null: out += "null"; return;
    case Type::Bool: out += (std::get<bool>(value_) ? "true" : "false"); return;
    case Type::Int: {
      char buf[24];
      auto [ptr, ec] = std::to_chars(buf, buf + sizeof buf,
                                     std::get<std::int64_t>(value_));
      assert(ec == std::errc());
      out.append(buf, ptr);
      return;
    }
    case Type::Double: dump_double_to(out, std::get<double>(value_)); return;
    case Type::String: json_escape_to(out, std::get<std::string>(value_)); return;
    case Type::Array: {
      out.push_back('[');
      const auto& arr = std::get<JsonArray>(value_);
      for (std::size_t i = 0; i < arr.size(); ++i) {
        if (i) out.push_back(',');
        arr[i].dump_into(out);
      }
      out.push_back(']');
      return;
    }
    case Type::Object: {
      out.push_back('{');
      const auto& obj = std::get<JsonObject>(value_);
      bool first = true;
      for (const auto& [k, v] : obj) {
        if (!first) out.push_back(',');
        first = false;
        json_escape_to(out, k);
        out.push_back(':');
        v.dump_into(out);
      }
      out.push_back('}');
      return;
    }
  }
}

std::string Json::dump() const {
  // Single pass: amortized growth beats a full pre-walk for sizing. Callers
  // on the hot path should prefer dump_into with a reused buffer.
  std::string out;
  dump_into(out);
  return out;
}

std::size_t Json::dump_size() const {
  switch (type()) {
    case Type::Null: return 4;
    case Type::Bool: return std::get<bool>(value_) ? 4 : 5;
    case Type::Int: {
      char buf[24];
      auto [ptr, ec] =
          std::to_chars(buf, buf + sizeof buf, std::get<std::int64_t>(value_));
      (void)ec;
      return static_cast<std::size_t>(ptr - buf);
    }
    case Type::Double: return double_dump_size(std::get<double>(value_));
    case Type::String: return json_escaped_size(std::get<std::string>(value_));
    case Type::Array: {
      const auto& arr = std::get<JsonArray>(value_);
      std::size_t n = 2 + (arr.empty() ? 0 : arr.size() - 1);
      for (const auto& v : arr) n += v.dump_size();
      return n;
    }
    case Type::Object: {
      const auto& obj = std::get<JsonObject>(value_);
      std::size_t n = 2 + (obj.empty() ? 0 : obj.size() - 1);
      for (const auto& [k, v] : obj)
        n += json_escaped_size(k) + 1 + v.dump_size();
      return n;
    }
  }
  return 0;
}

void Json::dump_pretty_to(std::string& out, int indent, int depth) const {
  auto pad = [&](int d) { out.append(static_cast<std::size_t>(indent * d), ' '); };
  switch (type()) {
    case Type::Array: {
      const auto& arr = std::get<JsonArray>(value_);
      if (arr.empty()) {
        out += "[]";
        return;
      }
      out += "[\n";
      for (std::size_t i = 0; i < arr.size(); ++i) {
        pad(depth + 1);
        arr[i].dump_pretty_to(out, indent, depth + 1);
        if (i + 1 < arr.size()) out.push_back(',');
        out.push_back('\n');
      }
      pad(depth);
      out.push_back(']');
      return;
    }
    case Type::Object: {
      const auto& obj = std::get<JsonObject>(value_);
      if (obj.empty()) {
        out += "{}";
        return;
      }
      out += "{\n";
      std::size_t i = 0;
      for (const auto& [k, v] : obj) {
        pad(depth + 1);
        json_escape_to(out, k);
        out += ": ";
        v.dump_pretty_to(out, indent, depth + 1);
        if (++i < obj.size()) out.push_back(',');
        out.push_back('\n');
      }
      pad(depth);
      out.push_back('}');
      return;
    }
    default:
      dump_into(out);
  }
}

std::string Json::dump_pretty(int indent) const {
  std::string out;
  dump_pretty_to(out, indent, 0);
  return out;
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Expected<Json> run() {
    skip_ws();
    Json v;
    if (auto st = parse_value(v, 0); !st) return st.error();
    skip_ws();
    if (pos_ != text_.size()) return err("trailing characters");
    return v;
  }

 private:
  static constexpr int kMaxDepth = 200;

  Error err(const std::string& what) const {
    return Error(errc::proto,
                 "json parse error at byte " + std::to_string(pos_) + ": " + what);
  }

  void skip_ws() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == ' ' || c == '\t' || c == '\n' || c == '\r')
        ++pos_;
      else
        break;
    }
  }

  bool eat(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  Status parse_value(Json& out, int depth) {
    if (depth > kMaxDepth) return err("nesting too deep");
    if (pos_ >= text_.size()) return err("unexpected end of input");
    switch (text_[pos_]) {
      case 'n':
        if (auto st = expect("null"); !st) return st;
        out = Json();
        return {};
      case 't':
        if (auto st = expect("true"); !st) return st;
        out = Json(true);
        return {};
      case 'f':
        if (auto st = expect("false"); !st) return st;
        out = Json(false);
        return {};
      case '"': {
        std::string s;
        if (auto st = parse_string(s); !st) return st;
        out = Json(std::move(s));
        return {};
      }
      case '[': return parse_array(out, depth);
      case '{': return parse_object(out, depth);
      default: return parse_number(out);
    }
  }

  Status expect(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) != lit) return err("invalid literal");
    pos_ += lit.size();
    return {};
  }

  Status parse_array(Json& out, int depth) {
    ++pos_;  // '['
    JsonArray arr;
    skip_ws();
    if (eat(']')) {
      out = Json(std::move(arr));
      return {};
    }
    // A non-empty array element costs >= 2 input bytes ("x," / "1,"), so the
    // remaining input bounds the element count; seed the vector with a
    // conservative slice of that instead of growing from zero.
    arr.reserve(std::min<std::size_t>((text_.size() - pos_) / 2 + 1, 64));
    while (true) {
      Json v;
      skip_ws();
      if (auto st = parse_value(v, depth + 1); !st) return st;
      arr.push_back(std::move(v));
      skip_ws();
      if (eat(',')) continue;
      if (eat(']')) break;
      return err("expected ',' or ']'");
    }
    out = Json(std::move(arr));
    return {};
  }

  Status parse_object(Json& out, int depth) {
    ++pos_;  // '{'
    JsonObject obj;
    skip_ws();
    if (eat('}')) {
      out = Json(std::move(obj));
      return {};
    }
    // A member costs >= 5 input bytes ("k":v, quotes included).
    obj.reserve(std::min<std::size_t>((text_.size() - pos_) / 5 + 1, 64));
    while (true) {
      skip_ws();
      if (pos_ >= text_.size() || text_[pos_] != '"')
        return err("expected object key");
      std::string key;
      if (auto st = parse_string(key); !st) return st;
      skip_ws();
      if (!eat(':')) return err("expected ':'");
      skip_ws();
      Json v;
      if (auto st = parse_value(v, depth + 1); !st) return st;
      // Canonical input arrives sorted, so insert_or_assign's append fast
      // path makes this loop linear; duplicate keys stay last-wins.
      obj.insert_or_assign(std::move(key), std::move(v));
      skip_ws();
      if (eat(',')) continue;
      if (eat('}')) break;
      return err("expected ',' or '}'");
    }
    out = Json(std::move(obj));
    return {};
  }

  Status parse_string(std::string& out) {
    ++pos_;  // '"'
    while (pos_ < text_.size()) {
      // Bulk-copy the run up to the next quote, escape, or control byte —
      // for typical payloads that is the entire string in one append.
      std::size_t run = pos_;
      while (run < text_.size()) {
        const auto c = static_cast<unsigned char>(text_[run]);
        if (c == '"' || c == '\\' || c < 0x20) break;
        ++run;
      }
      out.append(text_.data() + pos_, run - pos_);
      pos_ = run;
      if (pos_ >= text_.size()) break;
      const char c = text_[pos_];
      if (c == '"') {
        ++pos_;
        return {};
      }
      if (static_cast<unsigned char>(c) < 0x20)
        return err("control character in string");
      // Escape sequence.
      ++pos_;
      if (pos_ >= text_.size()) return err("bad escape");
      const char e = text_[pos_++];
      switch (e) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          unsigned cp = 0;
          if (auto st = parse_hex4(cp); !st) return st;
          if (cp >= 0xD800 && cp <= 0xDBFF) {
            // Surrogate pair.
            if (pos_ + 1 >= text_.size() || text_[pos_] != '\\' ||
                text_[pos_ + 1] != 'u')
              return err("unpaired surrogate");
            pos_ += 2;
            unsigned lo = 0;
            if (auto st = parse_hex4(lo); !st) return st;
            if (lo < 0xDC00 || lo > 0xDFFF) return err("bad low surrogate");
            cp = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
          } else if (cp >= 0xDC00 && cp <= 0xDFFF) {
            return err("unpaired surrogate");
          }
          append_utf8(out, cp);
          break;
        }
        default: return err("bad escape character");
      }
    }
    return err("unterminated string");
  }

  Status parse_hex4(unsigned& out) {
    if (pos_ + 4 > text_.size()) return err("bad \\u escape");
    unsigned v = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = text_[pos_ + static_cast<std::size_t>(i)];
      v <<= 4;
      if (c >= '0' && c <= '9')
        v |= static_cast<unsigned>(c - '0');
      else if (c >= 'a' && c <= 'f')
        v |= static_cast<unsigned>(c - 'a' + 10);
      else if (c >= 'A' && c <= 'F')
        v |= static_cast<unsigned>(c - 'A' + 10);
      else
        return err("bad \\u escape");
    }
    pos_ += 4;
    out = v;
    return {};
  }

  static void append_utf8(std::string& out, unsigned cp) {
    if (cp < 0x80) {
      out.push_back(static_cast<char>(cp));
    } else if (cp < 0x800) {
      out.push_back(static_cast<char>(0xC0 | (cp >> 6)));
      out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else if (cp < 0x10000) {
      out.push_back(static_cast<char>(0xE0 | (cp >> 12)));
      out.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else {
      out.push_back(static_cast<char>(0xF0 | (cp >> 18)));
      out.push_back(static_cast<char>(0x80 | ((cp >> 12) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    }
  }

  Status parse_number(Json& out) {
    const std::size_t start = pos_;
    if (eat('-')) { /* sign */ }
    if (pos_ >= text_.size() ||
        !(text_[pos_] >= '0' && text_[pos_] <= '9'))
      return err("invalid number");
    bool is_double = false;
    while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') ++pos_;
    if (pos_ < text_.size() && text_[pos_] == '.') {
      is_double = true;
      ++pos_;
      if (pos_ >= text_.size() || !(text_[pos_] >= '0' && text_[pos_] <= '9'))
        return err("invalid fraction");
      while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') ++pos_;
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      is_double = true;
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) ++pos_;
      if (pos_ >= text_.size() || !(text_[pos_] >= '0' && text_[pos_] <= '9'))
        return err("invalid exponent");
      while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') ++pos_;
    }
    const std::string_view tok = text_.substr(start, pos_ - start);
    if (!is_double) {
      std::int64_t v = 0;
      auto [ptr, ec] = std::from_chars(tok.data(), tok.data() + tok.size(), v);
      if (ec == std::errc() && ptr == tok.data() + tok.size()) {
        out = Json(v);
        return {};
      }
      // Out of int64 range: fall through to double.
    }
    double d = 0;
    auto [ptr, ec] = std::from_chars(tok.data(), tok.data() + tok.size(), d);
    if (ec != std::errc() || ptr != tok.data() + tok.size())
      return err("invalid number");
    out = Json(d);
    return {};
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

Expected<Json> Json::parse(std::string_view text) {
  return Parser(text).run();
}

}  // namespace flux
