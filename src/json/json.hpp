// Minimal JSON value model, parser and serializer.
//
// Every CMB message carries a JSON payload frame (paper §IV-A) and every KVS
// object is a JSON value (§IV-B), so this sits on the hot path. Design notes:
//  - Objects keep keys sorted (std::map) so serialization is *canonical*:
//    equal values serialize to equal bytes, which the content-addressed KVS
//    relies on for SHA1 dedup.
//  - Integers are kept distinct from doubles (resource counts, versions and
//    sequence numbers must round-trip exactly).
//  - Parser is a straightforward recursive-descent over UTF-8 bytes with a
//    depth limit; errors carry byte offsets.
#pragma once

#include <cstdint>
#include <initializer_list>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <variant>
#include <vector>

#include "base/error.hpp"

namespace flux {

class Json;

using JsonArray = std::vector<Json>;
using JsonObject = std::map<std::string, Json, std::less<>>;

/// A JSON value. Cheap to move; copying deep-copies.
class Json {
 public:
  enum class Type { Null, Bool, Int, Double, String, Array, Object };

  Json() : value_(nullptr) {}
  Json(std::nullptr_t) : value_(nullptr) {}                 // NOLINT
  Json(bool b) : value_(b) {}                               // NOLINT
  Json(int v) : value_(static_cast<std::int64_t>(v)) {}     // NOLINT
  Json(unsigned v) : value_(static_cast<std::int64_t>(v)) {}  // NOLINT
  Json(long v) : value_(static_cast<std::int64_t>(v)) {}    // NOLINT
  Json(long long v) : value_(static_cast<std::int64_t>(v)) {}  // NOLINT
  Json(unsigned long v);                                    // NOLINT
  Json(unsigned long long v);                               // NOLINT
  Json(double v) : value_(v) {}                             // NOLINT
  Json(const char* s) : value_(std::string(s)) {}           // NOLINT
  Json(std::string_view s) : value_(std::string(s)) {}      // NOLINT
  Json(std::string s) : value_(std::move(s)) {}             // NOLINT
  Json(JsonArray a) : value_(std::move(a)) {}               // NOLINT
  Json(JsonObject o) : value_(std::move(o)) {}              // NOLINT

  /// Build an array: Json::array({1, "two", 3.0}).
  static Json array(std::initializer_list<Json> items = {});
  /// Build an object: Json::object({{"k", 1}, {"v", "x"}}).
  static Json object(
      std::initializer_list<std::pair<const std::string, Json>> items = {});

  [[nodiscard]] Type type() const noexcept;
  [[nodiscard]] bool is_null() const noexcept { return type() == Type::Null; }
  [[nodiscard]] bool is_bool() const noexcept { return type() == Type::Bool; }
  [[nodiscard]] bool is_int() const noexcept { return type() == Type::Int; }
  [[nodiscard]] bool is_double() const noexcept { return type() == Type::Double; }
  [[nodiscard]] bool is_number() const noexcept { return is_int() || is_double(); }
  [[nodiscard]] bool is_string() const noexcept { return type() == Type::String; }
  [[nodiscard]] bool is_array() const noexcept { return type() == Type::Array; }
  [[nodiscard]] bool is_object() const noexcept { return type() == Type::Object; }

  // Checked accessors; throw FluxException(EINVAL) on type mismatch.
  [[nodiscard]] bool as_bool() const;
  [[nodiscard]] std::int64_t as_int() const;
  [[nodiscard]] double as_double() const;  ///< accepts Int too
  [[nodiscard]] const std::string& as_string() const;
  [[nodiscard]] const JsonArray& as_array() const;
  [[nodiscard]] JsonArray& as_array();
  [[nodiscard]] const JsonObject& as_object() const;
  [[nodiscard]] JsonObject& as_object();

  // Convenience object access.
  /// True if this is an object containing `key`.
  [[nodiscard]] bool contains(std::string_view key) const noexcept;
  /// Object lookup; returns a shared Null for missing keys (no insertion).
  [[nodiscard]] const Json& at(std::string_view key) const;
  /// Mutable object lookup with insertion (value must be an object or null;
  /// null is promoted to an empty object).
  Json& operator[](std::string_view key);

  // Typed object getters with defaults — the idiom modules use to parse
  // request payloads without boilerplate.
  [[nodiscard]] std::int64_t get_int(std::string_view key, std::int64_t dflt = 0) const;
  [[nodiscard]] std::string get_string(std::string_view key, std::string dflt = {}) const;
  [[nodiscard]] bool get_bool(std::string_view key, bool dflt = false) const;
  [[nodiscard]] double get_double(std::string_view key, double dflt = 0.0) const;

  /// Array/string size, object member count; 0 for scalars.
  [[nodiscard]] std::size_t size() const noexcept;

  /// Append to an array (value must be array or null; null promotes).
  void push_back(Json v);

  /// Canonical serialization (sorted keys, no whitespace, shortest doubles).
  [[nodiscard]] std::string dump() const;
  /// Pretty-printed serialization for diagnostics.
  [[nodiscard]] std::string dump_pretty(int indent = 2) const;

  /// Parse; returns Error{Proto} with a byte offset on malformed input.
  static Expected<Json> parse(std::string_view text);

  /// Deep structural equality (Int 1 != Double 1.0 by design).
  friend bool operator==(const Json& a, const Json& b) noexcept;
  friend bool operator!=(const Json& a, const Json& b) noexcept {
    return !(a == b);
  }

  /// Serialized size without building the string (sim wire-size accounting).
  [[nodiscard]] std::size_t dump_size() const;

 private:
  using Value = std::variant<std::nullptr_t, bool, std::int64_t, double,
                             std::string, JsonArray, JsonObject>;

  void dump_to(std::string& out) const;
  void dump_pretty_to(std::string& out, int indent, int depth) const;

  Value value_;
};

/// Escape a string into a JSON string literal (with surrounding quotes).
void json_escape_to(std::string& out, std::string_view s);

}  // namespace flux
