// Minimal JSON value model, parser and serializer.
//
// Every CMB message carries a JSON payload frame (paper §IV-A) and every KVS
// object is a JSON value (§IV-B), so this sits on the hot path. Design notes:
//  - Objects keep keys sorted so serialization is *canonical*: equal values
//    serialize to equal bytes, which the content-addressed KVS relies on for
//    SHA1 dedup. The backing store is a sorted flat vector (JsonObject), not
//    a node-based map: iteration is a linear scan, lookup a binary search,
//    and building from canonical (already-sorted) input is a pure append.
//  - Scalars live inline in the variant (no heap node per value); the flat
//    object also shrinks the variant's largest alternative, so a Json is one
//    vector header instead of a red-black tree.
//  - Integers are kept distinct from doubles (resource counts, versions and
//    sequence numbers must round-trip exactly).
//  - Parser is a straightforward recursive-descent over UTF-8 bytes with a
//    depth limit; errors carry byte offsets. Serialization is single-pass
//    into a caller-reusable buffer (dump_into).
#pragma once

#include <cstdint>
#include <initializer_list>
#include <memory>
#include <string>
#include <string_view>
#include <variant>
#include <vector>

#include "base/error.hpp"

namespace flux {

class Json;

using JsonArray = std::vector<Json>;

/// Object storage: a vector of (key, value) pairs kept sorted by key —
/// canonical order is the storage order. The interface mirrors the subset of
/// std::map the codebase uses (find/at/contains/emplace/insert_or_assign and
/// structured-binding iteration); duplicate-key semantics match std::map:
/// the initializer-list constructor keeps the FIRST occurrence, emplace
/// refuses duplicates, insert_or_assign overwrites.
class JsonObject {
 public:
  using value_type = std::pair<std::string, Json>;
  using storage = std::vector<value_type>;
  using iterator = storage::iterator;
  using const_iterator = storage::const_iterator;

  JsonObject() = default;
  JsonObject(std::initializer_list<std::pair<const std::string, Json>> items);

  [[nodiscard]] iterator begin() noexcept;
  [[nodiscard]] iterator end() noexcept;
  [[nodiscard]] const_iterator begin() const noexcept;
  [[nodiscard]] const_iterator end() const noexcept;
  [[nodiscard]] const_iterator cbegin() const noexcept;
  [[nodiscard]] const_iterator cend() const noexcept;

  [[nodiscard]] std::size_t size() const noexcept;
  [[nodiscard]] bool empty() const noexcept;
  void clear() noexcept;
  /// Pre-size the backing vector (parser fast path).
  void reserve(std::size_t n);

  [[nodiscard]] iterator find(std::string_view key) noexcept;
  [[nodiscard]] const_iterator find(std::string_view key) const noexcept;
  [[nodiscard]] bool contains(std::string_view key) const noexcept;
  /// Checked lookup; throws std::out_of_range like std::map::at.
  [[nodiscard]] const Json& at(std::string_view key) const;

  /// Insert if absent (first-wins); returns {position, inserted}.
  std::pair<iterator, bool> emplace(std::string key, Json value);
  /// Insert or overwrite (last-wins); returns {position, inserted}.
  std::pair<iterator, bool> insert_or_assign(std::string key, Json value);
  /// Remove a key if present; returns the number of elements removed (0/1).
  std::size_t erase(std::string_view key);

  friend bool operator==(const JsonObject& a, const JsonObject& b) noexcept;
  friend bool operator!=(const JsonObject& a, const JsonObject& b) noexcept {
    return !(a == b);
  }

 private:
  /// First position whose key is >= `key`. Appends being common (canonical
  /// input is sorted), the back element is checked before binary search.
  [[nodiscard]] iterator lower_bound(std::string_view key) noexcept;

  storage items_;
};

/// A JSON value. Cheap to move; copying deep-copies.
class Json {
 public:
  enum class Type { Null, Bool, Int, Double, String, Array, Object };

  Json() : value_(nullptr) {}
  Json(std::nullptr_t) : value_(nullptr) {}                 // NOLINT
  Json(bool b) : value_(b) {}                               // NOLINT
  Json(int v) : value_(static_cast<std::int64_t>(v)) {}     // NOLINT
  Json(unsigned v) : value_(static_cast<std::int64_t>(v)) {}  // NOLINT
  Json(long v) : value_(static_cast<std::int64_t>(v)) {}    // NOLINT
  Json(long long v) : value_(static_cast<std::int64_t>(v)) {}  // NOLINT
  Json(unsigned long v);                                    // NOLINT
  Json(unsigned long long v);                               // NOLINT
  Json(double v) : value_(v) {}                             // NOLINT
  Json(const char* s) : value_(std::string(s)) {}           // NOLINT
  Json(std::string_view s) : value_(std::string(s)) {}      // NOLINT
  Json(std::string s) : value_(std::move(s)) {}             // NOLINT
  Json(JsonArray a) : value_(std::move(a)) {}               // NOLINT
  Json(JsonObject o) : value_(std::move(o)) {}              // NOLINT

  /// Build an array: Json::array({1, "two", 3.0}).
  static Json array(std::initializer_list<Json> items = {});
  /// Build an object: Json::object({{"k", 1}, {"v", "x"}}).
  static Json object(
      std::initializer_list<std::pair<const std::string, Json>> items = {});

  [[nodiscard]] Type type() const noexcept;
  [[nodiscard]] bool is_null() const noexcept { return type() == Type::Null; }
  [[nodiscard]] bool is_bool() const noexcept { return type() == Type::Bool; }
  [[nodiscard]] bool is_int() const noexcept { return type() == Type::Int; }
  [[nodiscard]] bool is_double() const noexcept { return type() == Type::Double; }
  [[nodiscard]] bool is_number() const noexcept { return is_int() || is_double(); }
  [[nodiscard]] bool is_string() const noexcept { return type() == Type::String; }
  [[nodiscard]] bool is_array() const noexcept { return type() == Type::Array; }
  [[nodiscard]] bool is_object() const noexcept { return type() == Type::Object; }

  // Checked accessors; throw FluxException(EINVAL) on type mismatch.
  [[nodiscard]] bool as_bool() const;
  [[nodiscard]] std::int64_t as_int() const;
  [[nodiscard]] double as_double() const;  ///< accepts Int too
  [[nodiscard]] const std::string& as_string() const;
  [[nodiscard]] const JsonArray& as_array() const;
  [[nodiscard]] JsonArray& as_array();
  [[nodiscard]] const JsonObject& as_object() const;
  [[nodiscard]] JsonObject& as_object();

  // Convenience object access.
  /// True if this is an object containing `key`.
  [[nodiscard]] bool contains(std::string_view key) const noexcept;
  /// Object lookup; returns a shared Null for missing keys (no insertion).
  [[nodiscard]] const Json& at(std::string_view key) const;
  /// Mutable object lookup with insertion (value must be an object or null;
  /// null is promoted to an empty object).
  Json& operator[](std::string_view key);

  // Typed object getters with defaults — the idiom modules use to parse
  // request payloads without boilerplate.
  [[nodiscard]] std::int64_t get_int(std::string_view key, std::int64_t dflt = 0) const;
  [[nodiscard]] std::string get_string(std::string_view key, std::string dflt = {}) const;
  [[nodiscard]] bool get_bool(std::string_view key, bool dflt = false) const;
  [[nodiscard]] double get_double(std::string_view key, double dflt = 0.0) const;

  /// Array/string size, object member count; 0 for scalars.
  [[nodiscard]] std::size_t size() const noexcept;

  /// Append to an array (value must be array or null; null promotes).
  void push_back(Json v);

  /// Canonical serialization (sorted keys, no whitespace, shortest doubles).
  [[nodiscard]] std::string dump() const;
  /// Canonical serialization appended to `out` in a single pass — the
  /// hot-path entry point: callers clear() and reuse one buffer across
  /// messages, so steady state does no allocation at all.
  void dump_into(std::string& out) const;
  /// Pretty-printed serialization for diagnostics.
  [[nodiscard]] std::string dump_pretty(int indent = 2) const;

  /// Parse; returns Error{Proto} with a byte offset on malformed input.
  static Expected<Json> parse(std::string_view text);

  /// Deep structural equality (Int 1 != Double 1.0 by design).
  friend bool operator==(const Json& a, const Json& b) noexcept;
  friend bool operator!=(const Json& a, const Json& b) noexcept {
    return !(a == b);
  }

  /// Serialized size without building the string (sim wire-size accounting).
  /// Exact, and allocation-free.
  [[nodiscard]] std::size_t dump_size() const;

 private:
  using Value = std::variant<std::nullptr_t, bool, std::int64_t, double,
                             std::string, JsonArray, JsonObject>;

  void dump_pretty_to(std::string& out, int indent, int depth) const;

  Value value_;
};

/// Escape a string into a JSON string literal (with surrounding quotes).
void json_escape_to(std::string& out, std::string_view s);
/// Length json_escape_to would append, without writing anything.
[[nodiscard]] std::size_t json_escaped_size(std::string_view s) noexcept;

// ---------------------------------------------------------------------------
// JsonObject inline definitions (Json is complete from here on).
// ---------------------------------------------------------------------------

inline JsonObject::iterator JsonObject::begin() noexcept { return items_.begin(); }
inline JsonObject::iterator JsonObject::end() noexcept { return items_.end(); }
inline JsonObject::const_iterator JsonObject::begin() const noexcept {
  return items_.begin();
}
inline JsonObject::const_iterator JsonObject::end() const noexcept {
  return items_.end();
}
inline JsonObject::const_iterator JsonObject::cbegin() const noexcept {
  return items_.begin();
}
inline JsonObject::const_iterator JsonObject::cend() const noexcept {
  return items_.end();
}
inline std::size_t JsonObject::size() const noexcept { return items_.size(); }
inline bool JsonObject::empty() const noexcept { return items_.empty(); }
inline void JsonObject::clear() noexcept { items_.clear(); }
inline void JsonObject::reserve(std::size_t n) { items_.reserve(n); }

inline JsonObject::iterator JsonObject::lower_bound(std::string_view key) noexcept {
  if (items_.empty() || items_.back().first < key) return items_.end();
  auto lo = items_.begin();
  auto hi = items_.end();
  while (lo != hi) {
    auto mid = lo + (hi - lo) / 2;
    if (mid->first < key)
      lo = mid + 1;
    else
      hi = mid;
  }
  return lo;
}

inline JsonObject::iterator JsonObject::find(std::string_view key) noexcept {
  auto it = lower_bound(key);
  return (it != items_.end() && it->first == key) ? it : items_.end();
}

inline JsonObject::const_iterator JsonObject::find(std::string_view key) const noexcept {
  return const_cast<JsonObject*>(this)->find(key);
}

inline bool JsonObject::contains(std::string_view key) const noexcept {
  return find(key) != items_.end();
}

inline std::pair<JsonObject::iterator, bool> JsonObject::emplace(std::string key,
                                                                 Json value) {
  auto it = lower_bound(key);
  if (it != items_.end() && it->first == key) return {it, false};
  it = items_.emplace(it, std::move(key), std::move(value));
  return {it, true};
}

inline std::pair<JsonObject::iterator, bool> JsonObject::insert_or_assign(
    std::string key, Json value) {
  auto it = lower_bound(key);
  if (it != items_.end() && it->first == key) {
    it->second = std::move(value);
    return {it, false};
  }
  it = items_.emplace(it, std::move(key), std::move(value));
  return {it, true};
}

inline std::size_t JsonObject::erase(std::string_view key) {
  auto it = find(key);
  if (it == items_.end()) return 0;
  items_.erase(it);
  return 1;
}

inline JsonObject::JsonObject(
    std::initializer_list<std::pair<const std::string, Json>> items) {
  items_.reserve(items.size());
  for (const auto& [k, v] : items) emplace(k, v);
}

inline bool operator==(const JsonObject& a, const JsonObject& b) noexcept {
  return a.items_ == b.items_;
}

}  // namespace flux
