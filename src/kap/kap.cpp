#include "kap/kap.hpp"

#include <algorithm>
#include <chrono>
#include <stdexcept>

#include "api/handle.hpp"
#include "base/rng.hpp"
#include "broker/session.hpp"
#include "kvs/kvs_client.hpp"
#include "kvs/kvs_module.hpp"

namespace flux::kap {

std::uint32_t total_procs(const KapConfig& cfg) {
  return cfg.nnodes * cfg.procs_per_node;
}

std::string object_key(const KapConfig& cfg, std::uint64_t idx) {
  if (cfg.single_directory) return "kap.k" + std::to_string(idx);
  return "kap.d" + std::to_string(idx / cfg.dir_fanout) + ".k" +
         std::to_string(idx);
}

namespace {

struct ProcShared {
  const KapConfig* cfg;
  std::uint32_t nprod, ncons, nprocs;
  std::uint64_t total_objects;
  std::vector<Duration> producer_lat;
  std::vector<Duration> sync_lat;
  std::vector<Duration> consumer_lat;
  std::uint32_t done = 0;
  std::string redundant_value;  // shared payload for the redundant case
};

PhaseStats summarize(std::vector<Duration> lats) {
  PhaseStats out;
  if (lats.empty()) return out;
  std::sort(lats.begin(), lats.end());
  out.max = lats.back();
  out.p50 = lats[lats.size() / 2];
  out.p99 = lats[(lats.size() * 99) / 100];
  Duration::rep sum = 0;
  for (Duration d : lats) sum += d.count();
  out.mean = Duration{sum / static_cast<Duration::rep>(lats.size())};
  return out;
}

/// One KAP tester process (paper: a rank of the KAP MPI-style job).
Task<void> kap_proc(Handle* h, ProcShared* sh, std::uint32_t proc) {
  const KapConfig& cfg = *sh->cfg;
  KvsClient kvs(*h);
  Executor& ex = h->executor();
  const bool is_producer = proc < sh->nprod;
  const bool is_consumer = proc < sh->ncons;

  // -- setup phase: simultaneous start -----------------------------------
  co_await h->barrier("kap.start", sh->nprocs);

  // -- producer phase ------------------------------------------------------
  const TimePoint prod_start = ex.now();
  if (is_producer) {
    Rng rng(cfg.seed ^ (0x9d0ull << 32) ^ proc);
    for (std::uint32_t j = 0; j < cfg.puts_per_producer; ++j) {
      const std::uint64_t idx =
          static_cast<std::uint64_t>(proc) * cfg.puts_per_producer + j;
      std::string value = cfg.redundant_values ? sh->redundant_value
                                               : rng.bytes(cfg.value_size);
      co_await kvs.put(object_key(cfg, idx), std::move(value));
    }
  }
  sh->producer_lat[proc] = ex.now() - prod_start;

  // -- synchronization phase ----------------------------------------------
  const TimePoint sync_start = ex.now();
  if (cfg.sync == KapConfig::Sync::Fence) {
    co_await kvs.fence("kap.sync", sh->nprocs);
  } else {
    // Producers commit individually; everyone waits for the resulting
    // version. Version after all commits = 1 (bootstrap) + nprod.
    if (is_producer) co_await kvs.commit();
    co_await kvs.wait_version(1 + sh->nprod);
  }
  sh->sync_lat[proc] = ex.now() - sync_start;

  // -- consumer phase --------------------------------------------------------
  // Paper §V-B: "G objects are read collectively by C consumers" — every
  // consumer reads the SAME G-object set (contiguous by default; the
  // access_stride option spreads the set across the key space / across
  // directories, one of KAP's "different striding" patterns).
  const TimePoint cons_start = ex.now();
  if (is_consumer && sh->total_objects > 0) {
    const std::uint64_t stride = cfg.access_stride ? cfg.access_stride : 1;
    for (std::uint32_t j = 0; j < cfg.gets_per_consumer; ++j) {
      const std::uint64_t idx =
          (static_cast<std::uint64_t>(j) * stride) % sh->total_objects;
      Json v = co_await kvs.get(object_key(cfg, idx));
      if (!v.is_string() ||
          v.as_string().size() != cfg.value_size)
        throw FluxException(
            Error(errc::proto, "kap: consumer read unexpected value"));
    }
  }
  sh->consumer_lat[proc] = ex.now() - cons_start;

  ++sh->done;
}

}  // namespace

KapResult run_kap(const KapConfig& cfg) {
  const auto host_start = std::chrono::steady_clock::now();

  SimExecutor ex;
  SessionConfig scfg;
  scfg.size = cfg.nnodes;
  scfg.tree_arity = cfg.tree_arity;
  scfg.net = cfg.net;
  scfg.seed = cfg.seed;
  // The paper's sessions run the full module stack; KAP needs hb (cache
  // expiry pacing), live (hello traffic = realistic background noise),
  // barrier and kvs.
  scfg.modules = {"hb", "live", "barrier", "kvs"};
  // Heartbeat cadence matches production practice (seconds-scale relative
  // to the workload): with an aggressive ms-scale heartbeat, bulk fence
  // transfers starve hello messages and the live module declares healthy
  // brokers dead mid-benchmark.
  scfg.module_config = Json::object(
      {{"kvs", Json::object({{"expiry_epochs", cfg.kvs_expiry_epochs}})},
       {"hb", Json::object({{"period_us", 100000}})},
       {"live", Json::object({{"missed_max", 100}})}});

  auto session = Session::create_sim(ex, scfg);
  KapResult result;
  result.wireup = session->run_until_online();

  ProcShared sh;
  sh.cfg = &cfg;
  sh.nprocs = total_procs(cfg);
  sh.nprod = cfg.nproducers ? cfg.nproducers : sh.nprocs;
  sh.ncons = cfg.nconsumers ? cfg.nconsumers : sh.nprocs;
  if (sh.nprod > sh.nprocs || sh.ncons > sh.nprocs)
    throw std::invalid_argument("kap: producer/consumer count exceeds procs");
  sh.total_objects =
      static_cast<std::uint64_t>(sh.nprod) * cfg.puts_per_producer;
  sh.producer_lat.assign(sh.nprocs, Duration{0});
  sh.sync_lat.assign(sh.nprocs, Duration{0});
  sh.consumer_lat.assign(sh.nprocs, Duration{0});
  {
    Rng rng(cfg.seed ^ 0xedull);
    sh.redundant_value = rng.bytes(cfg.value_size);
  }

  // Setup phase: consecutive process ranks land on consecutive nodes.
  std::vector<std::unique_ptr<Handle>> handles;
  handles.reserve(sh.nprocs);
  for (std::uint32_t p = 0; p < sh.nprocs; ++p) {
    handles.push_back(session->attach(p % cfg.nnodes));
    co_spawn(ex, kap_proc(handles.back().get(), &sh, p),
             "kap.proc" + std::to_string(p));
  }

  ex.run();
  if (sh.done != sh.nprocs)
    throw std::runtime_error("kap: stalled with " +
                             std::to_string(sh.nprocs - sh.done) +
                             " unfinished processes");

  // Each phase is summarized over its participants only.
  result.producer = summarize(std::vector<Duration>(
      sh.producer_lat.begin(), sh.producer_lat.begin() + sh.nprod));
  result.sync = summarize(sh.sync_lat);
  result.consumer = summarize(std::vector<Duration>(
      sh.consumer_lat.begin(), sh.consumer_lat.begin() + sh.ncons));
  result.total_objects = sh.total_objects;
  result.net_messages = session->simnet()->stats().messages;
  result.net_bytes = session->simnet()->stats().bytes;
  for (NodeId r = 0; r < cfg.nnodes; ++r) {
    auto* kvs = dynamic_cast<KvsModule*>(session->broker(r).find_module("kvs"));
    if (kvs == nullptr) continue;
    result.cache_hits += kvs->cache().stats().hits;
    result.cache_misses += kvs->cache().stats().misses;
    result.faults_issued += kvs->op_stats().faults_issued;
  }
  result.sim_events = ex.executed();
  result.host_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    host_start)
          .count();
  return result;
}

}  // namespace flux::kap
