// KAP — KVS Access Patterns tester (paper §V).
//
// "KAP allows a configurable number of producers to write key-value objects
// into our KVS and a configurable number of consumers to read these objects
// after ensuring the consistent KVS state."
//
// Four phases, exactly as §V describes:
//   setup     — tester processes are launched onto the session's nodes
//               (consecutive process ranks on consecutive nodes) and issue a
//               collective barrier;
//   producer  — each producer kvs_puts `puts_per_producer` objects of
//               `value_size` bytes under unique keys (values unique or
//               redundant across producers);
//   sync      — every process participates in kvs_fence (or
//               get_version/wait_version) to establish consistency;
//   consumer  — each consumer kvs_gets `gets_per_consumer` distinct objects
//               (strided access pattern).
//
// The driver runs on the discrete-event simulator and reports the paper's
// metric: the MAXIMUM latency of each phase across processes ("this metric
// represents the critical path of ... HPC process-management services").
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "exec/executor.hpp"
#include "net/simnet.hpp"

namespace flux::kap {

struct KapConfig {
  // Platform shape (paper: 64..512 nodes, 16 procs/node, binary tree).
  std::uint32_t nnodes = 64;
  std::uint32_t procs_per_node = 16;
  std::uint32_t tree_arity = 2;
  NetParams net{};

  // Producer / consumer population. 0 means "all processes".
  std::uint32_t nproducers = 0;
  std::uint32_t nconsumers = 0;

  // Workload parameters (§V-A).
  std::size_t value_size = 8;            ///< bytes per value
  std::uint32_t puts_per_producer = 1;   ///< objects each producer writes
  std::uint32_t gets_per_consumer = 1;   ///< the paper's "access-N" (G)
  bool redundant_values = false;         ///< identical values across producers
  bool single_directory = true;          ///< Fig 4a vs 4b layout
  std::uint32_t dir_fanout = 128;        ///< max objects per directory (4b)
  /// Consumers collectively read the same G objects (§V-B model); object j
  /// of the set has index (j * access_stride) % total. 0 means stride 1
  /// (a contiguous block); larger strides spread the set across
  /// directories — KAP's "different striding" access patterns.
  std::uint32_t access_stride = 0;

  enum class Sync { Fence, WaitVersion } sync = Sync::Fence;

  std::uint64_t seed = 42;
  std::uint64_t kvs_expiry_epochs = 0;   ///< 0 = no cache expiry during run
};

struct PhaseStats {
  Duration max{0};
  Duration mean{0};
  Duration p50{0};
  Duration p99{0};
};

struct KapResult {
  Duration wireup{0};         ///< comms session establishment (Fig 1 metric)
  PhaseStats producer;
  PhaseStats sync;
  PhaseStats consumer;
  std::uint64_t total_objects = 0;
  std::uint64_t net_messages = 0;
  std::uint64_t net_bytes = 0;
  std::uint64_t faults_issued = 0;   // summed over brokers
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;
  std::uint64_t sim_events = 0;
  double host_seconds = 0;           ///< wall-clock cost of the simulation
};

/// Total process count for a config.
std::uint32_t total_procs(const KapConfig& cfg);

/// The KVS key for object index `idx` under the configured layout.
std::string object_key(const KapConfig& cfg, std::uint64_t idx);

/// Run one KAP configuration to completion on a fresh simulated session.
KapResult run_kap(const KapConfig& cfg);

}  // namespace flux::kap
