#include "kvs/content_backend.hpp"

#include <cassert>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <utility>

#include "base/error.hpp"
#include "json/json.hpp"

namespace flux {

namespace contentlog {

namespace {

void put_u32le(std::string& out, std::uint32_t v) {
  out.push_back(static_cast<char>(v & 0xff));
  out.push_back(static_cast<char>((v >> 8) & 0xff));
  out.push_back(static_cast<char>((v >> 16) & 0xff));
  out.push_back(static_cast<char>((v >> 24) & 0xff));
}

std::uint32_t get_u32le(const unsigned char* p) {
  return static_cast<std::uint32_t>(p[0]) |
         (static_cast<std::uint32_t>(p[1]) << 8) |
         (static_cast<std::uint32_t>(p[2]) << 16) |
         (static_cast<std::uint32_t>(p[3]) << 24);
}

/// First four digest bytes of SHA1 over the framed prefix (type || len ||
/// payload) — the record checksum.
std::uint32_t frame_check(std::string_view framed_prefix) {
  const Sha1 d = Sha1::of(framed_prefix);
  return get_u32le(d.raw().data());
}

}  // namespace

std::string header_bytes() {
  std::string out;
  out.reserve(kHeaderSize);
  out.append(kMagic);
  put_u32le(out, kFormatVersion);
  put_u32le(out, 0);  // reserved
  return out;
}

std::string frame(RecordType type, std::string_view payload) {
  std::string out;
  out.reserve(kFrameOverhead + payload.size());
  out.push_back(static_cast<char>(type));
  put_u32le(out, static_cast<std::uint32_t>(payload.size()));
  out.append(payload);
  put_u32le(out, frame_check(out));
  return out;
}

std::string root_payload(std::uint32_t shard, std::uint64_t version,
                         const Sha1& rootref) {
  return Json::object({{"rootref", rootref.hex()},
                       {"shard", static_cast<std::int64_t>(shard)},
                       {"version", static_cast<std::int64_t>(version)}})
      .dump();
}

std::string checkpoint_payload(const std::vector<Sha1>& rootrefs,
                               const std::vector<std::uint64_t>& vv) {
  Json refs = Json::array();
  for (const Sha1& r : rootrefs) refs.as_array().push_back(Json(r.hex()));
  Json versions = Json::array();
  for (std::uint64_t v : vv)
    versions.as_array().push_back(Json(static_cast<std::int64_t>(v)));
  return Json::object({{"rootrefs", std::move(refs)},
                       {"vv", std::move(versions)}})
      .dump();
}

}  // namespace contentlog

// ---------------------------------------------------------------------------
// FileLogBackend
// ---------------------------------------------------------------------------

using contentlog::RecordType;

FileLogBackend::FileLogBackend(std::string path) : path_(std::move(path)) {}

FileLogBackend::~FileLogBackend() {
  // Destruction without close() is the crash path (Broker::restart destroys
  // modules without shutdown): the unsynced tail is simply lost.
  open_ = false;
}

ContentBackend::Recovered FileLogBackend::recover(ContentStore& into) {
  assert(!open_ && pending_.empty());
  Recovered rec;

  std::string data;
  {
    std::ifstream in(path_, std::ios::binary);
    if (in) {
      data.assign(std::istreambuf_iterator<char>(in),
                  std::istreambuf_iterator<char>());
    }
  }

  if (data.size() < contentlog::kHeaderSize) {
    // Fresh (or hopelessly truncated) file: start over with a new header.
    std::ofstream out(path_, std::ios::binary | std::ios::trunc);
    if (!out)
      throw FluxException(
          Error(errc::io, "content backend: cannot create " + path_));
    const std::string hdr = contentlog::header_bytes();
    out.write(hdr.data(), static_cast<std::streamsize>(hdr.size()));
    out.flush();
    if (!out)
      throw FluxException(
          Error(errc::io, "content backend: cannot write header to " + path_));
    rec.truncated_bytes = data.size();
    durable_bytes_ = hdr.size();
    open_ = true;
    return rec;
  }
  if (std::string_view(data).substr(0, contentlog::kMagic.size()) !=
      contentlog::kMagic)
    throw FluxException(
        Error(errc::inval, "content backend: bad magic in " + path_));

  // Scan records; stop at the first damaged frame (torn tail).
  const auto* bytes = reinterpret_cast<const unsigned char*>(data.data());
  std::size_t pos = contentlog::kHeaderSize;
  std::uint64_t birth = 0;  // version context for replayed objects
  into.set_birth_version(birth);
  while (pos + contentlog::kFrameOverhead <= data.size()) {
    const std::uint8_t type = bytes[pos];
    const std::uint32_t len = contentlog::get_u32le(bytes + pos + 1);
    if (type < 1 || type > 3 || len > contentlog::kMaxPayload) break;
    const std::size_t total = contentlog::kFrameOverhead + len;
    if (pos + total > data.size()) break;
    const std::string_view framed(data.data() + pos, total);
    const std::uint32_t want = contentlog::get_u32le(
        bytes + pos + total - 4);
    if (contentlog::frame_check(framed.substr(0, total - 4)) != want) break;
    const std::string_view payload = framed.substr(5, len);

    bool ok = false;
    switch (static_cast<RecordType>(type)) {
      case RecordType::object: {
        if (ObjPtr obj = parse_object(std::string(payload))) {
          into.put(std::move(obj));
          ++rec.objects;
          ok = true;
        }
        break;
      }
      case RecordType::root: {
        auto j = Json::parse(payload);
        if (!j.has_value()) break;
        const auto shard =
            static_cast<std::uint32_t>(j->get_int("shard", 0));
        const auto version =
            static_cast<std::uint64_t>(j->get_int("version", 0));
        auto ref = Sha1::parse(j->get_string("rootref"));
        if (!ref || version == 0) break;
        if (shard >= rec.roots.size()) {
          rec.roots.resize(shard + 1);
          rec.versions.resize(shard + 1, 0);
        }
        rec.roots[shard] = *ref;
        rec.versions[shard] = version;
        if (version > birth) into.set_birth_version(birth = version);
        ok = true;
        break;
      }
      case RecordType::checkpoint: {
        auto j = Json::parse(payload);
        if (!j.has_value() || !j->at("rootrefs").is_array() ||
            !j->at("vv").is_array())
          break;
        const auto& refs = j->at("rootrefs").as_array();
        const auto& vv = j->at("vv").as_array();
        if (refs.size() != vv.size()) break;
        std::vector<Sha1> roots;
        std::vector<std::uint64_t> versions;
        bool bad = false;
        for (std::size_t s = 0; s < refs.size(); ++s) {
          auto ref = Sha1::parse(refs[s].as_string());
          if (!ref) {
            bad = true;
            break;
          }
          roots.push_back(*ref);
          versions.push_back(static_cast<std::uint64_t>(vv[s].as_int()));
        }
        if (bad) break;
        rec.roots = std::move(roots);
        rec.versions = std::move(versions);
        rec.found_checkpoint = true;
        for (std::uint64_t v : rec.versions)
          if (v > birth) into.set_birth_version(birth = v);
        ok = true;
        break;
      }
    }
    if (!ok) break;  // checksummed but semantically bad: treat as torn
    pos += total;
  }

  if (pos < data.size()) {
    rec.truncated_bytes = data.size() - pos;
    std::error_code ec;
    std::filesystem::resize_file(path_, pos, ec);
    if (ec)
      throw FluxException(
          Error(errc::io, "content backend: cannot truncate " + path_));
  }
  durable_bytes_ = pos;
  open_ = true;
  return rec;
}

void FileLogBackend::buffer(std::string bytes) {
  if (!open_) return;  // crashed/closed: appends are dropped on the floor
  pending_ += bytes;
}

void FileLogBackend::write_durable(std::string_view bytes) {
  std::ofstream out(path_, std::ios::binary | std::ios::app);
  if (!out)
    throw FluxException(
        Error(errc::io, "content backend: cannot open " + path_));
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  out.flush();
  if (!out)
    throw FluxException(
        Error(errc::io, "content backend: write failed on " + path_));
  durable_bytes_ += bytes.size();
  stats_.synced_bytes += bytes.size();
}

void FileLogBackend::append_object(const StoredObject& obj) {
  if (!open_) return;
  buffer(contentlog::frame(RecordType::object, obj.bytes));
  ++stats_.objects_appended;
}

void FileLogBackend::append_root(std::uint32_t shard, std::uint64_t version,
                                 const Sha1& rootref) {
  if (!open_) return;
  buffer(contentlog::frame(RecordType::root,
                           contentlog::root_payload(shard, version, rootref)));
  ++stats_.roots_appended;
}

void FileLogBackend::append_checkpoint(const std::vector<Sha1>& rootrefs,
                                       const std::vector<std::uint64_t>& vv) {
  if (!open_) return;
  buffer(contentlog::frame(RecordType::checkpoint,
                           contentlog::checkpoint_payload(rootrefs, vv)));
  ++stats_.checkpoints;
}

void FileLogBackend::sync() {
  if (!open_ || pending_.empty()) {
    if (open_) ++stats_.syncs;
    return;
  }
  write_durable(pending_);
  pending_.clear();
  ++stats_.syncs;
}

void FileLogBackend::crash(std::uint64_t keep_unsynced_bytes) {
  if (!open_) return;
  const std::size_t keep = static_cast<std::size_t>(
      std::min<std::uint64_t>(keep_unsynced_bytes, pending_.size()));
  if (keep > 0)
    write_durable(std::string_view(pending_).substr(0, keep));
  pending_.clear();
  open_ = false;
}

void FileLogBackend::close() {
  if (!open_) return;
  sync();
  open_ = false;
}

void FileLogBackend::compact(const ContentStore& live,
                             const std::vector<Sha1>& rootrefs,
                             const std::vector<std::uint64_t>& vv) {
  if (!open_) return;
  sync();  // nothing buffered may be lost by the rewrite

  std::string fresh = contentlog::header_bytes();
  live.for_each([&fresh](const ObjPtr& obj, std::uint64_t) {
    fresh += contentlog::frame(RecordType::object, obj->bytes);
  });
  fresh += contentlog::frame(RecordType::checkpoint,
                             contentlog::checkpoint_payload(rootrefs, vv));

  const std::string tmp = path_ + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out)
      throw FluxException(
          Error(errc::io, "content backend: cannot open " + tmp));
    out.write(fresh.data(), static_cast<std::streamsize>(fresh.size()));
    out.flush();
    if (!out)
      throw FluxException(
          Error(errc::io, "content backend: write failed on " + tmp));
  }
  std::error_code ec;
  std::filesystem::rename(tmp, path_, ec);
  if (ec)
    throw FluxException(
        Error(errc::io, "content backend: rename failed on " + path_));

  ++stats_.compactions;
  if (durable_bytes_ > fresh.size())
    stats_.compacted_bytes += durable_bytes_ - fresh.size();
  durable_bytes_ = fresh.size();
  ++stats_.checkpoints;
}

}  // namespace flux
