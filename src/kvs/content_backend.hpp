// Durable persistence for the KVS content store.
//
// ROADMAP: "Durable content store + KVS checkpoint/restart and GC". The
// content-addressed store (content_store.hpp) is memory-only; this layer
// gives a KVS master a pluggable durability backend in the spirit of
// flux-core's content-sqlite service, implemented here as a single-file
// log-structured append store built from the repo's own primitives
// (canonical JSON serialization + SHA1 record checksums).
//
// On-disk format (all integers little-endian):
//
//   header  := magic "FLUXCAS1" (8) | format_version u32 | reserved u32
//   record  := type u8 | payload_len u32 | payload | check u32
//
// where `check` is the first four bytes of SHA1(type || payload_len ||
// payload) — a torn or bit-flipped tail fails the checksum and recovery
// truncates the file at the last intact record. Record types:
//
//   object (1)      payload = the object's canonical serialization. Objects
//                   are self-addressing (id = SHA1(payload)), so no separate
//                   key field is stored.
//   root (2)        payload = canonical JSON {"rootref","shard","version"}.
//                   Appended *after* the objects it references and synced
//                   before the version is announced, so an intact root
//                   record implies its objects are intact (append order is
//                   the durability invariant: acked => synced => recovered).
//   checkpoint (3)  payload = canonical JSON {"rootrefs":[hex...],
//                   "vv":[u64...]} — a full per-shard root-ref + version
//                   vector snapshot, written on a cadence and on clean
//                   shutdown. Atomic by construction: it either passes the
//                   checksum or the whole record is discarded.
//
// Recovery scans the log once, replays objects into a ContentStore, and
// adopts the last intact root/checkpoint records; everything after the
// first damaged frame is truncated (the torn tail a crash can leave).
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "hash/sha1.hpp"
#include "kvs/content_store.hpp"

namespace flux {

namespace contentlog {

inline constexpr std::string_view kMagic = "FLUXCAS1";
inline constexpr std::uint32_t kFormatVersion = 1;
inline constexpr std::size_t kHeaderSize = 16;
/// Framing overhead per record: type u8 + len u32 + check u32.
inline constexpr std::size_t kFrameOverhead = 9;
/// Upper bound accepted for a payload during recovery (corruption guard).
inline constexpr std::uint32_t kMaxPayload = 64u << 20;

enum class RecordType : std::uint8_t { object = 1, root = 2, checkpoint = 3 };

/// The 16-byte file header (golden-vector pinned).
[[nodiscard]] std::string header_bytes();
/// Frame a payload as a checksummed record (golden-vector pinned).
[[nodiscard]] std::string frame(RecordType type, std::string_view payload);
/// Canonical JSON payload of a root-advance record.
[[nodiscard]] std::string root_payload(std::uint32_t shard,
                                       std::uint64_t version,
                                       const Sha1& rootref);
/// Canonical JSON payload of a checkpoint record.
[[nodiscard]] std::string checkpoint_payload(
    const std::vector<Sha1>& rootrefs, const std::vector<std::uint64_t>& vv);

}  // namespace contentlog

/// Durability counters surfaced through kvs.stats.
struct BackendStats {
  std::uint64_t objects_appended = 0;
  std::uint64_t roots_appended = 0;
  std::uint64_t checkpoints = 0;
  std::uint64_t syncs = 0;
  std::uint64_t synced_bytes = 0;
  std::uint64_t compactions = 0;
  std::uint64_t compacted_bytes = 0;  ///< bytes reclaimed by compaction
};

/// Abstract persistence backend a KVS master attaches to its ContentStore.
///
/// Append calls buffer in memory; sync() makes everything appended so far
/// durable. A crash (Broker::fail) discards the unsynced tail — except for
/// a fault-injected torn prefix (crash()) that models a partial flush.
class ContentBackend {
 public:
  struct Recovered {
    std::vector<Sha1> roots;             ///< per-shard last intact root ref
    std::vector<std::uint64_t> versions; ///< per-shard last intact version
    std::size_t objects = 0;             ///< objects replayed into the store
    std::uint64_t truncated_bytes = 0;   ///< torn tail discarded, if any
    bool found_checkpoint = false;
    /// True when shard `s` has a recovered root (version >= 1).
    [[nodiscard]] bool has_root(std::uint32_t s) const {
      return s < versions.size() && versions[s] != 0;
    }
  };

  virtual ~ContentBackend() = default;

  /// Open (or create) the backing file, replay surviving objects into
  /// `into`, and return the recovered roots. Must be called exactly once,
  /// before any append; attach the store *after* recovery so replayed
  /// objects are not re-appended.
  virtual Recovered recover(ContentStore& into) = 0;

  virtual void append_object(const StoredObject& obj) = 0;
  virtual void append_root(std::uint32_t shard, std::uint64_t version,
                           const Sha1& rootref) = 0;
  virtual void append_checkpoint(const std::vector<Sha1>& rootrefs,
                                 const std::vector<std::uint64_t>& vv) = 0;

  /// Flush every buffered append to durable storage.
  virtual void sync() = 0;
  [[nodiscard]] virtual std::uint64_t unsynced_bytes() const = 0;

  /// Simulate a crash: keep only the first `keep_unsynced_bytes` of the
  /// unsynced tail (a torn partial flush), drop the rest, close the file.
  virtual void crash(std::uint64_t keep_unsynced_bytes) = 0;
  /// Clean shutdown: sync and close.
  virtual void close() = 0;

  /// Rewrite the log to exactly the live contents of `live` plus one
  /// checkpoint record (atomic rewrite: temp file + rename). Reclaims the
  /// space of GC-swept objects and superseded root records.
  virtual void compact(const ContentStore& live,
                       const std::vector<Sha1>& rootrefs,
                       const std::vector<std::uint64_t>& vv) = 0;

  [[nodiscard]] virtual const BackendStats& stats() const = 0;
};

/// The single-file log-structured backend described in the header comment.
class FileLogBackend final : public ContentBackend {
 public:
  explicit FileLogBackend(std::string path);
  ~FileLogBackend() override;

  Recovered recover(ContentStore& into) override;
  void append_object(const StoredObject& obj) override;
  void append_root(std::uint32_t shard, std::uint64_t version,
                   const Sha1& rootref) override;
  void append_checkpoint(const std::vector<Sha1>& rootrefs,
                         const std::vector<std::uint64_t>& vv) override;
  void sync() override;
  [[nodiscard]] std::uint64_t unsynced_bytes() const override {
    return pending_.size();
  }
  void crash(std::uint64_t keep_unsynced_bytes) override;
  void close() override;
  void compact(const ContentStore& live, const std::vector<Sha1>& rootrefs,
               const std::vector<std::uint64_t>& vv) override;
  [[nodiscard]] const BackendStats& stats() const override { return stats_; }

  [[nodiscard]] const std::string& path() const noexcept { return path_; }
  [[nodiscard]] std::uint64_t durable_bytes() const noexcept {
    return durable_bytes_;
  }

 private:
  void buffer(std::string bytes);
  /// Append `bytes` to the file and fflush (durability point).
  void write_durable(std::string_view bytes);

  std::string path_;
  std::string pending_;  ///< appended but not yet synced
  std::uint64_t durable_bytes_ = 0;
  bool open_ = false;    ///< recover() succeeded and no crash()/close() yet
  BackendStats stats_;
};

}  // namespace flux
