#include "kvs/content_store.hpp"

#include <cassert>
#include <memory>
#include <stdexcept>
#include <unordered_set>

#include "kvs/content_backend.hpp"

namespace flux {

// ---------------------------------------------------------------------------
// ContentStore
// ---------------------------------------------------------------------------

bool ContentStore::put(ObjPtr obj) {
  assert(obj);
  auto [it, inserted] = objects_.try_emplace(obj->id);
  if (inserted) {
    it->second.obj = std::move(obj);
    it->second.birth = birth_version_;
    bytes_ += it->second.obj->size();
    if (backend_) backend_->append_object(*it->second.obj);
  }
  return inserted;
}

ObjPtr ContentStore::get(const Sha1& id) const {
  auto it = objects_.find(id);
  return it == objects_.end() ? nullptr : it->second.obj;
}

bool ContentStore::contains(const Sha1& id) const {
  return objects_.contains(id);
}

bool ContentStore::erase(const Sha1& id) {
  auto it = objects_.find(id);
  if (it == objects_.end()) return false;
  bytes_ -= it->second.obj->size();
  objects_.erase(it);
  return true;
}

void ContentStore::for_each(
    const std::function<void(const ObjPtr&, std::uint64_t)>& fn) const {
  for (const auto& [id, entry] : objects_) fn(entry.obj, entry.birth);
}

// ---------------------------------------------------------------------------
// ObjectCache
// ---------------------------------------------------------------------------

void ObjectCache::touch(const Sha1& id, std::uint64_t epoch) {
  use_buckets_[epoch].push_back(id);
}

void ObjectCache::put(ObjPtr obj, std::uint64_t epoch) {
  assert(obj);
  auto [it, inserted] = entries_.try_emplace(obj->id);
  if (inserted) {
    it->second.obj = std::move(obj);
    bytes_ += it->second.obj->size();
  }
  if (inserted || it->second.last_used != epoch) touch(it->first, epoch);
  it->second.last_used = epoch;
}

ObjPtr ObjectCache::get(const Sha1& id, std::uint64_t epoch) {
  auto it = entries_.find(id);
  if (it == entries_.end()) {
    ++stats_.misses;
    if (misses_) misses_->inc();
    return nullptr;
  }
  ++stats_.hits;
  if (hits_) hits_->inc();
  if (it->second.last_used != epoch) touch(id, epoch);
  it->second.last_used = epoch;
  return it->second.obj;
}

ObjPtr ObjectCache::peek(const Sha1& id) const {
  auto it = entries_.find(id);
  return it == entries_.end() ? nullptr : it->second.obj;
}

void ObjectCache::pin(const Sha1& id) {
  auto it = entries_.find(id);
  if (it != entries_.end()) ++it->second.pins;
}

void ObjectCache::unpin(const Sha1& id) {
  auto it = entries_.find(id);
  if (it != entries_.end() && it->second.pins > 0) --it->second.pins;
}

std::size_t ObjectCache::expire(std::uint64_t epoch, std::uint64_t max_age) {
  std::size_t evicted = 0;
  const std::uint64_t cutoff = (epoch > max_age) ? epoch - max_age : 0;
  // Visit only buckets older than the cutoff; every live entry with
  // last_used < cutoff is in one of them (its last touch). Stale duplicates
  // (refreshed or already-evicted ids) fail the re-check and are skipped.
  while (!use_buckets_.empty() && use_buckets_.begin()->first < cutoff) {
    auto bucket = use_buckets_.begin();
    for (const Sha1& id : bucket->second) {
      ++stats_.expire_scanned;
      auto it = entries_.find(id);
      if (it == entries_.end() || it->second.last_used >= cutoff) continue;
      if (it->second.pins != 0) {
        // Pinned (dirty, un-flushed): keep last_used unchanged but re-bucket
        // at the cutoff — the oldest bucket this pass won't revisit — so a
        // later expire() reconsiders the entry once unpinned.
        touch(id, cutoff);
        continue;
      }
      bytes_ -= it->second.obj->size();
      entries_.erase(it);
      ++evicted;
    }
    use_buckets_.erase(bucket);
  }
  stats_.evictions += evicted;
  if (evictions_) evictions_->inc(evicted);
  return evicted;
}

std::size_t ObjectCache::drop_all() {
  std::size_t evicted = 0;
  for (auto it = entries_.begin(); it != entries_.end();) {
    if (it->second.pins == 0) {
      bytes_ -= it->second.obj->size();
      it = entries_.erase(it);
      ++evicted;
    } else {
      ++it;
    }
  }
  // Rebuild the use buckets for the (pinned) survivors.
  use_buckets_.clear();
  for (const auto& [id, entry] : entries_) touch(id, entry.last_used);
  stats_.evictions += evicted;
  if (evictions_) evictions_->inc(evicted);
  return evicted;
}

// ---------------------------------------------------------------------------
// Transaction apply (hash-tree update)
// ---------------------------------------------------------------------------

namespace {

/// Mutable in-memory directory node materialized during an apply.
struct MutNode {
  // name -> either an untouched ref or a materialized child directory.
  struct Slot {
    Sha1 ref;                      // valid when child == nullptr
    std::unique_ptr<MutNode> child;
  };
  std::map<std::string, Slot, std::less<>> entries;
};

/// Materialize the directory object at `ref` (empty node if ref is the
/// empty-dir or missing semantics allow creation).
std::unique_ptr<MutNode> load_dir(ContentStore& store, const Sha1& ref) {
  auto node = std::make_unique<MutNode>();
  ObjPtr obj = store.get(ref);
  if (!obj)
    throw std::runtime_error("kvs apply: dangling directory ref " + ref.hex());
  if (!obj->is_dir())
    throw std::runtime_error("kvs apply: ref is not a directory");
  for (const auto& [name, refhex] : obj->entries()) {
    auto parsed = Sha1::parse(refhex.as_string());
    if (!parsed) throw std::runtime_error("kvs apply: bad ref in directory");
    node->entries.emplace(name, MutNode::Slot{*parsed, nullptr});
  }
  return node;
}

/// Descend to the parent directory of the tuple's leaf. With `create`,
/// missing intermediates (and values in the way) become directories; without
/// it (unlink), the walk stops — returning nullptr — rather than disturb
/// existing state (unlinking below a value/missing path is a no-op).
MutNode* descend(ContentStore& store, MutNode* node,
                 const std::vector<std::string>& path, bool create) {
  for (std::size_t i = 0; i + 1 < path.size(); ++i) {
    auto it = node->entries.find(path[i]);
    if (it == node->entries.end()) {
      if (!create) return nullptr;
      it = node->entries.emplace(path[i], MutNode::Slot{Sha1{}, nullptr}).first;
    }
    auto& slot = it->second;
    if (!slot.child) {
      ObjPtr existing =
          (slot.ref == Sha1{}) ? nullptr : store.get(slot.ref);
      if (existing && existing->is_dir()) {
        slot.child = load_dir(store, slot.ref);
      } else {
        if (!create) return nullptr;  // a value (or nothing) blocks the path
        slot.child = std::make_unique<MutNode>();
      }
    }
    node = slot.child.get();
  }
  return node;
}

/// Serialize a mutated subtree bottom-up; returns the new ref.
Sha1 freeze(ContentStore& store, MutNode& node) {
  std::map<std::string, Sha1, std::less<>> entries;
  for (auto& [name, slot] : node.entries) {
    if (slot.child) slot.ref = freeze(store, *slot.child);
    entries.emplace(name, slot.ref);
  }
  ObjPtr dir = make_dir_object(entries);
  const Sha1 id = dir->id;
  store.put(std::move(dir));
  return id;
}

}  // namespace

Sha1 apply_transaction(ContentStore& store, const Sha1& root_ref,
                       const std::vector<Tuple>& tuples) {
  auto root = load_dir(store, root_ref);
  for (const Tuple& t : tuples) {
    const auto path = split_key(t.key);
    if (path.empty())
      throw std::runtime_error("kvs apply: empty key in transaction");
    MutNode* parent =
        descend(store, root.get(), path, /*create=*/!t.is_unlink());
    if (parent == nullptr) continue;  // unlink under a value/missing path
    const std::string& leaf = path.back();
    if (t.is_unlink()) {
      parent->entries.erase(leaf);
    } else {
      parent->entries.insert_or_assign(leaf, MutNode::Slot{t.ref, nullptr});
    }
  }
  return freeze(store, *root);
}

// ---------------------------------------------------------------------------
// Mark-and-sweep GC
// ---------------------------------------------------------------------------

GcStats mark_and_sweep(ContentStore& store, const std::vector<Sha1>& roots,
                       const GcOptions& opt) {
  GcStats stats;

  // Mark: flood from roots + pins through directory entries. Refs that are
  // not in the store (already swept, cache-only, or the null tombstone) are
  // skipped — pins in particular may point at objects this store never held.
  std::unordered_set<Sha1> marked;
  std::vector<Sha1> stack;
  for (const Sha1& r : roots)
    if (r != Sha1{}) stack.push_back(r);
  for (const Sha1& r : opt.pins)
    if (r != Sha1{}) stack.push_back(r);
  while (!stack.empty()) {
    const Sha1 id = stack.back();
    stack.pop_back();
    if (!marked.insert(id).second) continue;
    ObjPtr obj = store.get(id);
    if (!obj) {
      marked.erase(id);  // count only objects actually present
      continue;
    }
    if (obj->is_dir()) {
      for (const auto& [name, refhex] : obj->entries()) {
        auto ref = Sha1::parse(refhex.as_string());
        if (ref && !marked.contains(*ref)) stack.push_back(*ref);
      }
    }
  }
  stats.marked = marked.size();

  // Sweep: everything unmarked and born outside the retention window.
  const std::uint64_t cutoff = (opt.current_version > opt.retention)
                                   ? opt.current_version - opt.retention
                                   : 0;
  std::vector<Sha1> dead;
  std::vector<std::size_t> dead_bytes;
  store.for_each([&](const ObjPtr& obj, std::uint64_t birth) {
    if (marked.contains(obj->id)) return;
    if (birth >= cutoff) {
      ++stats.retained;
      return;
    }
    dead.push_back(obj->id);
    dead_bytes.push_back(obj->size());
  });
  for (std::size_t i = 0; i < dead.size(); ++i) {
    if (store.erase(dead[i])) {
      ++stats.swept;
      stats.swept_bytes += dead_bytes[i];
    }
  }
  return stats;
}

}  // namespace flux
