// Content-addressed object storage: the master store and the slave caches.
//
// Paper §IV-B: the master (at the CMB tree root) is authoritative; slaves
// keep caches of full objects, fault misses in from their tree parent, and
// expire entries "after a period of disuse to save memory". Expiry is driven
// by heartbeat epochs (the hb comms module), like everything periodic in a
// comms session.
//
// Also includes the transaction-apply algorithm: the hash-tree update of the
// paper's worked example (store new objects; rebuild directory objects
// bottom-up; produce a new root reference).
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <unordered_map>
#include <vector>

#include "kvs/treeobj.hpp"
#include "obs/stats.hpp"

namespace flux {

class ContentBackend;

/// Authoritative object store (KVS master). Never expires by disuse; dead
/// objects are reclaimed only by explicit GC (mark_and_sweep below). Each
/// entry carries a birth version — the KVS root version current when it was
/// inserted — so GC can honor a retention window.
class ContentStore {
 public:
  /// Insert (no-op if present). Returns true if newly stored. New objects
  /// are stamped with the current birth version and, when a backend is
  /// attached, mirrored to it as a durable object record.
  bool put(ObjPtr obj);
  [[nodiscard]] ObjPtr get(const Sha1& id) const;
  [[nodiscard]] bool contains(const Sha1& id) const;
  [[nodiscard]] std::size_t count() const noexcept { return objects_.size(); }
  [[nodiscard]] std::size_t bytes() const noexcept { return bytes_; }

  /// Remove an object (GC sweep). Returns true if it was present.
  bool erase(const Sha1& id);
  /// Version stamp applied to subsequently inserted objects.
  void set_birth_version(std::uint64_t v) noexcept { birth_version_ = v; }
  /// Visit every (object, birth version) pair.
  void for_each(
      const std::function<void(const ObjPtr&, std::uint64_t)>& fn) const;
  /// Mirror every future insert into `backend` as an append_object. Recovery
  /// replays the log into the store first and attaches afterwards, so
  /// recovered objects are not re-appended.
  void attach_backend(ContentBackend* backend) noexcept { backend_ = backend; }

 private:
  struct Entry {
    ObjPtr obj;
    std::uint64_t birth = 0;
  };
  std::unordered_map<Sha1, Entry> objects_;
  std::size_t bytes_ = 0;
  std::uint64_t birth_version_ = 0;
  ContentBackend* backend_ = nullptr;
};

/// Slave object cache with epoch-based disuse expiry.
///
/// Expiry is O(candidates), not O(cache size): each use appends the id to a
/// lazy per-epoch bucket, and expire() visits only buckets older than the
/// cutoff. A refreshed entry leaves stale duplicates in old buckets; they are
/// skipped at visit time by re-checking the entry's true last_used. The
/// per-expire scan work is surfaced in Stats::expire_scanned so the cost
/// stays observable.
class ObjectCache {
 public:
  /// Insert/update; records `epoch` as last use.
  void put(ObjPtr obj, std::uint64_t epoch);
  /// Lookup; a hit refreshes last use to `epoch`.
  [[nodiscard]] ObjPtr get(const Sha1& id, std::uint64_t epoch);
  /// Side-effect-free lookup: no last-use refresh, no hit/miss accounting.
  [[nodiscard]] ObjPtr peek(const Sha1& id) const;
  /// Pin/unpin: pinned entries (dirty, un-flushed) are never expired.
  void pin(const Sha1& id);
  void unpin(const Sha1& id);
  /// Drop entries unused since `epoch - max_age`. Returns evicted count.
  std::size_t expire(std::uint64_t epoch, std::uint64_t max_age);
  /// Drop every unpinned entry (benchmarks force cold caches with this).
  std::size_t drop_all();
  [[nodiscard]] std::size_t count() const noexcept { return entries_.size(); }
  [[nodiscard]] std::size_t bytes() const noexcept { return bytes_; }

  struct Stats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t evictions = 0;
    /// Candidate ids examined across all expire() calls (the actual expiry
    /// work; stays near the eviction count instead of count() per epoch).
    std::uint64_t expire_scanned = 0;
  };
  [[nodiscard]] const Stats& stats() const noexcept { return stats_; }

  /// Mirror hit/miss/eviction counts into observability counters (the
  /// owning module binds its broker's registry instruments once at start).
  void bind_counters(obs::Counter* hits, obs::Counter* misses,
                     obs::Counter* evictions) noexcept {
    hits_ = hits;
    misses_ = misses;
    evictions_ = evictions;
  }

 private:
  struct Entry {
    ObjPtr obj;
    std::uint64_t last_used = 0;
    int pins = 0;
  };
  /// Record that `id` was used at `epoch` (appends to that epoch's bucket).
  void touch(const Sha1& id, std::uint64_t epoch);

  std::unordered_map<Sha1, Entry> entries_;
  /// epoch -> ids last seen used then. Entries may be stale (the id was
  /// refreshed later, or already evicted); validated against entries_ at
  /// expire() time. Ordered so expire() pops oldest-first.
  std::map<std::uint64_t, std::vector<Sha1>> use_buckets_;
  std::size_t bytes_ = 0;
  Stats stats_;
  obs::Counter* hits_ = nullptr;
  obs::Counter* misses_ = nullptr;
  obs::Counter* evictions_ = nullptr;
};

/// Apply commit tuples to the hash tree rooted at `root_ref`, reading from
/// and writing new (directory) objects into `store`. Returns the new root
/// reference — the paper's §IV-B update walk, batched so a fence of N tuples
/// rebuilds each touched directory once.
///
/// Semantics: missing intermediate directories are created; an intermediate
/// component holding a value is replaced by a directory; unlink tombstones
/// remove entries (unlink of a missing key is a no-op).
Sha1 apply_transaction(ContentStore& store, const Sha1& root_ref,
                       const std::vector<Tuple>& tuples);

/// Mark-and-sweep GC tuning. `pins` are refs that must survive regardless of
/// reachability — in-flight fence tuple objects and watch terminal refs.
/// The retention window keeps anything born within `retention` versions of
/// `current_version`, protecting readers resolving against a recent root.
struct GcOptions {
  std::uint64_t current_version = 0;
  std::uint64_t retention = 0;
  std::vector<Sha1> pins;
};

struct GcStats {
  std::size_t marked = 0;    ///< objects reachable from roots + pins
  std::size_t retained = 0;  ///< unreachable but inside the retention window
  std::size_t swept = 0;
  std::size_t swept_bytes = 0;
};

/// Collect every object in `store` that is (a) unreachable from `roots` and
/// `opt.pins`, and (b) older than the retention window. Idempotent: a second
/// pass with the same inputs sweeps nothing.
GcStats mark_and_sweep(ContentStore& store, const std::vector<Sha1>& roots,
                       const GcOptions& opt);

}  // namespace flux
