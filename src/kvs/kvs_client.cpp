#include "kvs/kvs_client.hpp"

#include <algorithm>

#include "base/log.hpp"
#include "kvs/object_bundle.hpp"

namespace flux {

namespace {
void check_key(std::string_view op, std::string_view key) {
  if (key.empty() || split_key(key).empty())
    throw FluxException(
        Error(errc::inval, std::string(op) + ": empty key"));
}

CommitResult parse_commit_result(const Message& resp) {
  CommitResult out{
      static_cast<std::uint64_t>(resp.payload().get_int("version")),
      resp.payload().get_string("rootref"),
      {}};
  const Json& vv = resp.payload().at("vv");
  if (vv.is_array())
    for (const Json& v : vv.as_array())
      out.vv.push_back(static_cast<std::uint64_t>(v.as_int()));
  return out;
}
}  // namespace

KvsTxn& KvsTxn::put(std::string key, Json value) {
  check_key("put", key);
  ObjPtr obj = make_val_object(std::move(value));
  tuples_.push_back(Tuple{std::move(key), obj->id});
  objects_.push_back(std::move(obj));
  return *this;
}

KvsTxn& KvsTxn::unlink(std::string key) {
  check_key("unlink", key);
  tuples_.push_back(Tuple{std::move(key), Sha1{}});
  return *this;
}

KvsTxn& KvsTxn::mkdir(std::string key) {
  check_key("mkdir", key);
  ObjPtr obj = empty_dir_object();
  tuples_.push_back(Tuple{std::move(key), obj->id});
  objects_.push_back(std::move(obj));
  return *this;
}

void WatchHandle::reset() noexcept {
  if (id_ == 0) return;
  if (auto s = state_.lock(); s && s->owner) s->owner->unwatch_impl(id_);
  id_ = 0;
  state_.reset();
}

KvsClient::~KvsClient() {
  // Outstanding WatchHandle guards become no-ops; setroot_sub_ (an RAII
  // Subscription) detaches from the Handle on member destruction.
  watch_state_->owner = nullptr;
}

Task<void> KvsClient::put(std::string key, Json value) {
  txn_.put(std::move(key), std::move(value));
  // Write-back caching (paper §IV-B): the value object is shipped to the
  // nearest KVS instance at put() time so it is already positioned when the
  // commit/fence flushes; the (key, ref) tuple stays staged client-side.
  // Put latency is this one RPC — the paper's kvs_put cost.
  std::vector<ObjPtr> objs;
  objs.push_back(txn_.objects_.back());
  RequestBuilder req = h_.request("kvs.stage");
  req.attachment(std::make_shared<ObjectBundle>(std::move(objs)));
  (void)co_await req.call();
}

Task<void> KvsClient::unlink(std::string key) {
  txn_.unlink(std::move(key));
  co_return;
}

Task<void> KvsClient::mkdir(std::string key) {
  txn_.mkdir(std::move(key));
  co_return;
}

Task<CommitResult> KvsClient::commit(KvsTxn txn) {
  Json payload = Json::object({{"ops", tuples_to_json(txn.tuples_)}});
  RequestBuilder req = h_.request("kvs.commit").payload(std::move(payload));
  if (!txn.objects_.empty())
    req.attachment(std::make_shared<ObjectBundle>(std::move(txn.objects_)));
  Message resp = co_await req.call();
  co_return parse_commit_result(resp);
}

Task<CommitResult> KvsClient::commit() {
  KvsTxn staged = std::move(txn_);
  txn_ = KvsTxn{};
  return commit(std::move(staged));
}

Task<CommitResult> KvsClient::fence(std::string name, std::int64_t nprocs,
                                    KvsTxn txn) {
  Json payload = Json::object({{"name", std::move(name)},
                               {"nprocs", nprocs},
                               {"ops", tuples_to_json(txn.tuples_)}});
  RequestBuilder req = h_.request("kvs.fence").payload(std::move(payload));
  if (!txn.objects_.empty())
    req.attachment(std::make_shared<ObjectBundle>(std::move(txn.objects_)));
  Message resp = co_await req.call();
  co_return parse_commit_result(resp);
}

Task<CommitResult> KvsClient::fence(std::string name, std::int64_t nprocs) {
  KvsTxn staged = std::move(txn_);
  txn_ = KvsTxn{};
  return fence(std::move(name), nprocs, std::move(staged));
}

Task<Json> KvsClient::get(std::string key) {
  Json payload = Json::object({{"key", std::move(key)}});
  Message resp =
      co_await h_.request("kvs.get").payload(std::move(payload)).call();
  if (!resp.data())
    throw FluxException(Error(errc::proto, "kvs.get: response without data"));
  ObjPtr obj = parse_object(*resp.data());
  if (!obj || !obj->is_val())
    throw FluxException(Error(errc::proto, "kvs.get: malformed value object"));
  co_return obj->value();
}

Task<std::vector<std::string>> KvsClient::list_dir(std::string key) {
  Json payload = Json::object({{"key", std::move(key)}, {"dir", true}});
  Message resp =
      co_await h_.request("kvs.get").payload(std::move(payload)).call();
  std::vector<std::string> names;
  for (const Json& n : resp.payload().at("entries").as_array())
    names.push_back(n.as_string());
  std::sort(names.begin(), names.end());
  co_return names;
}

Task<std::string> KvsClient::lookup_ref(std::string key) {
  Json payload = Json::object({{"key", std::move(key)}});
  Message resp =
      co_await h_.request("kvs.lookup_ref").payload(std::move(payload)).call();
  co_return resp.payload().get_string("ref");
}

Task<std::uint64_t> KvsClient::get_version() {
  Message resp = co_await h_.request("kvs.get_version").call();
  co_return static_cast<std::uint64_t>(resp.payload().get_int("version"));
}

Task<void> KvsClient::wait_version(std::uint64_t version) {
  Json payload = Json::object({{"version", version}});
  (void)co_await
      h_.request("kvs.wait_version").payload(std::move(payload)).call();
}

// ---------------------------------------------------------------------------
// Watch
// ---------------------------------------------------------------------------

WatchHandle KvsClient::watch(std::string key, WatchFn cb) {
  if (!setroot_sub_) {
    // Prefix subscription: matches the single-master "kvs.setroot" and every
    // sharded "kvs.setroot.<s>" (including failover announcements).
    setroot_sub_ = h_.subscribe("kvs.setroot",
                                [this](const Message&) { on_setroot(); });
  }
  auto w = std::make_unique<Watch>();
  w->id = next_watch_++;
  w->key = std::move(key);
  w->fn = std::move(cb);
  Watch* raw = w.get();
  watches_.push_back(std::move(w));
  co_spawn(h_.executor(), refresh_watch(raw), "kvs.watch");
  return WatchHandle(watch_state_, raw->id);
}

void KvsClient::unwatch_impl(std::uint64_t id) {
  std::erase_if(watches_,
                [id](const std::unique_ptr<Watch>& w) { return w->id == id; });
}

void KvsClient::on_setroot() {
  for (auto& w : watches_)
    if (!w->in_flight) co_spawn(h_.executor(), refresh_watch(w.get()), "kvs.watch");
}

Task<void> KvsClient::refresh_watch(Watch* w) {
  const std::uint64_t id = w->id;
  w->in_flight = true;
  std::optional<std::string> ref;
  try {
    ref = co_await lookup_ref(w->key);
  } catch (const FluxException& e) {
    if (e.error().code != errc::noent) throw;
    ref = std::nullopt;  // key (currently) absent
  }
  // The watch may have been cancelled while the lookup was in flight.
  auto it = std::find_if(watches_.begin(), watches_.end(),
                         [id](const auto& p) { return p->id == id; });
  if (it == watches_.end()) co_return;
  w = it->get();
  w->in_flight = false;

  const bool changed = !w->first_fired || ref != w->last_ref;
  w->first_fired = true;
  w->last_ref = ref;
  if (!changed) co_return;

  if (!ref) {
    w->fn(std::nullopt);
    co_return;
  }
  std::optional<Json> value;
  try {
    value = co_await get(w->key);
  } catch (const FluxException&) {
    // Directory or raced-away key: report existence without a value.
    value = Json();
  }
  // Re-validate after the second await.
  if (std::find_if(watches_.begin(), watches_.end(),
                   [id](const auto& p) { return p->id == id; }) ==
      watches_.end())
    co_return;
  w->fn(value);
}

}  // namespace flux
