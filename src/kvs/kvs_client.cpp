#include "kvs/kvs_client.hpp"

#include <algorithm>

#include "base/log.hpp"
#include "check/history.hpp"
#include "check/mutation.hpp"
#include "kvs/kvs_module.hpp"
#include "kvs/object_bundle.hpp"

namespace flux {

namespace {
void check_key(std::string_view op, std::string_view key) {
  if (key.empty() || split_key(key).empty())
    throw FluxException(
        Error(errc::inval, std::string(op) + ": empty key"));
}

CommitResult parse_commit_result(const Message& resp) {
  CommitResult out{
      static_cast<std::uint64_t>(resp.payload().get_int("version")),
      resp.payload().get_string("rootref"),
      {}};
  const Json& vv = resp.payload().at("vv");
  if (vv.is_array())
    for (const Json& v : vv.as_array())
      out.vv.push_back(static_cast<std::uint64_t>(v.as_int()));
  return out;
}
}  // namespace

KvsTxn& KvsTxn::put(std::string key, Json value) {
  check_key("put", key);
  ObjPtr obj = make_val_object(std::move(value));
  tuples_.push_back(Tuple{std::move(key), obj->id});
  objects_.push_back(std::move(obj));
  return *this;
}

KvsTxn& KvsTxn::unlink(std::string key) {
  check_key("unlink", key);
  tuples_.push_back(Tuple{std::move(key), Sha1{}});
  return *this;
}

KvsTxn& KvsTxn::mkdir(std::string key) {
  check_key("mkdir", key);
  ObjPtr obj = empty_dir_object();
  tuples_.push_back(Tuple{std::move(key), obj->id});
  objects_.push_back(std::move(obj));
  return *this;
}

void WatchHandle::reset() noexcept {
  if (id_ == 0) return;
  if (auto s = state_.lock(); s && s->owner) s->owner->unwatch_impl(id_);
  id_ = 0;
  state_.reset();
}

KvsClient::~KvsClient() {
  // Outstanding WatchHandle guards become no-ops; setroot_sub_ (an RAII
  // Subscription) detaches from the Handle on member destruction.
  watch_state_->owner = nullptr;
}

// ---------------------------------------------------------------------------
// DST history recording (check/history.hpp). All taps are dead when rec_ is
// null — the always case outside the simulation test harness.
// ---------------------------------------------------------------------------

void KvsClient::set_recorder(check::HistoryRecorder* rec, int client) {
  rec_ = rec;
  rec_client_ = client;
  if (rec_) {
    if (!rec_sub_)
      rec_sub_ = h_.subscribe(
          "kvs.setroot", [this](const Message& ev) { record_setroot(ev); });
  } else {
    rec_sub_ = Subscription{};
  }
}

std::vector<std::uint64_t> KvsClient::sample_vv() const {
  auto* mod = dynamic_cast<KvsModule*>(h_.broker().find_module("kvs"));
  if (!mod) return {};
  if (mod->sharded()) return mod->shard_versions();
  return {mod->root_version()};
}

void KvsClient::record_setroot(const Message& ev) {
  if (!rec_) return;
  check::OpRecord r;
  r.client = rec_client_;
  r.kind = check::OpKind::setroot;
  r.seq = ev.seq;
  r.t_ns = h_.executor().now().count();
  constexpr std::string_view prefix = "kvs.setroot.";
  if (ev.topic.size() > prefix.size() && ev.topic.starts_with(prefix))
    r.shard = std::strtoll(ev.topic.c_str() + prefix.size(), nullptr, 10);
  try {
    r.version = static_cast<std::uint64_t>(ev.payload().get_int("version"));
    r.ref = ev.payload().get_string("rootref");
  } catch (const FluxException& e) {
    r.err = e.error().code;
  }
  rec_->record(std::move(r));
}

Task<void> KvsClient::put(std::string key, Json value) {
  if (rec_) {
    // The staged write is the client-visible "I wrote this" moment; the
    // kvs.stage RPC below only positions the value object.
    check::OpRecord r;
    r.client = rec_client_;
    r.kind = check::OpKind::put;
    r.key = key;
    r.value = value;
    r.vv_begin = sample_vv();
    r.vv_end = r.vv_begin;
    r.t_ns = h_.executor().now().count();
    rec_->record(std::move(r));
  }
  txn_.put(std::move(key), std::move(value));
  // Write-back caching (paper §IV-B): the value object is shipped to the
  // nearest KVS instance at put() time so it is already positioned when the
  // commit/fence flushes; the (key, ref) tuple stays staged client-side.
  // Put latency is this one RPC — the paper's kvs_put cost.
  std::vector<ObjPtr> objs;
  objs.push_back(txn_.objects_.back());
  RequestBuilder req = h_.request("kvs.stage");
  req.attachment(std::make_shared<ObjectBundle>(std::move(objs)));
  (void)co_await req.call();
}

Task<void> KvsClient::unlink(std::string key) {
  txn_.unlink(std::move(key));
  co_return;
}

Task<void> KvsClient::mkdir(std::string key) {
  txn_.mkdir(std::move(key));
  co_return;
}

Task<CommitResult> KvsClient::commit(KvsTxn txn) {
  check::OpRecord r;
  if (rec_) {
    r.client = rec_client_;
    r.kind = check::OpKind::commit;
    r.vv_begin = sample_vv();
    r.t_ns = h_.executor().now().count();
  }
  Json payload = Json::object({{"ops", tuples_to_json(txn.tuples_)}});
  RequestBuilder req = h_.request("kvs.commit").payload(std::move(payload));
  if (!txn.objects_.empty())
    req.attachment(std::make_shared<ObjectBundle>(std::move(txn.objects_)));
  try {
    Message resp = co_await req.call();
    CommitResult res = parse_commit_result(resp);
    if (rec_) {
      r.result_version = res.version;
      r.result_vv = res.vv;
      r.ref = res.rootref;
      r.vv_end = sample_vv();
      rec_->record(std::move(r));
    }
    co_return res;
  } catch (const FluxException& e) {
    if (rec_) {
      r.err = e.error().code;
      r.vv_end = sample_vv();
      rec_->record(std::move(r));
    }
    throw;
  }
}

Task<CommitResult> KvsClient::commit() {
  KvsTxn staged = std::move(txn_);
  txn_ = KvsTxn{};
  return commit(std::move(staged));
}

Task<CommitResult> KvsClient::fence(std::string name, std::int64_t nprocs,
                                    KvsTxn txn) {
  check::OpRecord r;
  if (rec_) {
    r.client = rec_client_;
    r.kind = check::OpKind::fence;
    r.key = name;
    r.vv_begin = sample_vv();
    r.t_ns = h_.executor().now().count();
  }
  Json payload = Json::object({{"name", std::move(name)},
                               {"nprocs", nprocs},
                               {"ops", tuples_to_json(txn.tuples_)}});
  RequestBuilder req = h_.request("kvs.fence").payload(std::move(payload));
  if (!txn.objects_.empty())
    req.attachment(std::make_shared<ObjectBundle>(std::move(txn.objects_)));
  try {
    Message resp = co_await req.call();
    CommitResult res = parse_commit_result(resp);
    if (rec_) {
      r.result_version = res.version;
      r.result_vv = res.vv;
      r.ref = res.rootref;
      r.vv_end = sample_vv();
      rec_->record(std::move(r));
    }
    co_return res;
  } catch (const FluxException& e) {
    if (rec_) {
      r.err = e.error().code;
      r.vv_end = sample_vv();
      rec_->record(std::move(r));
    }
    throw;
  }
}

Task<CommitResult> KvsClient::fence(std::string name, std::int64_t nprocs) {
  KvsTxn staged = std::move(txn_);
  txn_ = KvsTxn{};
  return fence(std::move(name), nprocs, std::move(staged));
}

Task<Json> KvsClient::get(std::string key) {
  check::OpRecord r;
  if (rec_) {
    r.client = rec_client_;
    r.kind = check::OpKind::get;
    r.key = key;
    r.vv_begin = sample_vv();
    r.t_ns = h_.executor().now().count();
  }
  Json payload = Json::object({{"key", std::move(key)}});
  try {
    Message resp =
        co_await h_.request("kvs.get").payload(std::move(payload)).call();
    if (!resp.data())
      throw FluxException(Error(errc::proto, "kvs.get: response without data"));
    ObjPtr obj = parse_object(*resp.data());
    if (!obj || !obj->is_val())
      throw FluxException(
          Error(errc::proto, "kvs.get: malformed value object"));
    if (rec_) {
      r.value = obj->value();
      r.vv_end = sample_vv();
      rec_->record(std::move(r));
    }
    co_return obj->value();
  } catch (const FluxException& e) {
    if (rec_) {
      r.err = e.error().code;
      r.absent = e.error().code == errc::noent;
      r.vv_end = sample_vv();
      rec_->record(std::move(r));
    }
    throw;
  }
}

Task<std::vector<std::string>> KvsClient::list_dir(std::string key) {
  Json payload = Json::object({{"key", std::move(key)}, {"dir", true}});
  Message resp =
      co_await h_.request("kvs.get").payload(std::move(payload)).call();
  std::vector<std::string> names;
  for (const Json& n : resp.payload().at("entries").as_array())
    names.push_back(n.as_string());
  std::sort(names.begin(), names.end());
  co_return names;
}

Task<std::string> KvsClient::lookup_ref(std::string key) {
  Json payload = Json::object({{"key", std::move(key)}});
  Message resp =
      co_await h_.request("kvs.lookup_ref").payload(std::move(payload)).call();
  co_return resp.payload().get_string("ref");
}

Task<std::uint64_t> KvsClient::get_version() {
  Message resp = co_await h_.request("kvs.get_version").call();
  co_return static_cast<std::uint64_t>(resp.payload().get_int("version"));
}

Task<void> KvsClient::wait_version(std::uint64_t version) {
  Json payload = Json::object({{"version", version}});
  (void)co_await
      h_.request("kvs.wait_version").payload(std::move(payload)).call();
}

// ---------------------------------------------------------------------------
// Watch
// ---------------------------------------------------------------------------

WatchHandle KvsClient::watch(std::string key, WatchFn cb) {
  if (!setroot_sub_) {
    // Prefix subscription: matches the single-master "kvs.setroot" and every
    // sharded "kvs.setroot.<s>" (including failover announcements).
    setroot_sub_ = h_.subscribe("kvs.setroot",
                                [this](const Message&) { on_setroot(); });
  }
  auto w = std::make_unique<Watch>();
  w->id = next_watch_++;
  w->key = std::move(key);
  w->fn = std::move(cb);
  Watch* raw = w.get();
  watches_.push_back(std::move(w));
  co_spawn(h_.executor(), refresh_watch(raw), "kvs.watch");
  return WatchHandle(watch_state_, raw->id);
}

void KvsClient::unwatch_impl(std::uint64_t id) {
  std::erase_if(watches_,
                [id](const std::unique_ptr<Watch>& w) { return w->id == id; });
}

void KvsClient::on_setroot() {
  for (auto& w : watches_) {
    if (w->in_flight)
      w->rerun = true;  // coalesce: the in-flight refresh re-runs on exit
    else
      co_spawn(h_.executor(), refresh_watch(w.get()), "kvs.watch");
  }
}

KvsClient::Watch* KvsClient::find_watch(std::uint64_t id) {
  auto it = std::find_if(watches_.begin(), watches_.end(),
                         [id](const auto& p) { return p->id == id; });
  return it == watches_.end() ? nullptr : it->get();
}

Task<void> KvsClient::refresh_watch(Watch* w) {
  const std::uint64_t id = w->id;
  w->in_flight = true;

  // One-RPC snapshot: the get response carries the terminal ref alongside
  // the value frame, both taken from a single walk of a single root, so the
  // delivered value is exactly the content of the delivered ref.
  std::optional<std::string> ref;
  std::optional<Json> value;
  bool deliverable = true;
  bool want_ref_fallback = false;  // key exists but is not a plain value
  try {
    Json payload = Json::object({{"key", w->key}});
    Message resp =
        co_await h_.request("kvs.get").payload(std::move(payload)).call();
    ref = resp.payload().get_string("ref");
    ObjPtr obj = resp.data() ? parse_object(*resp.data()) : nullptr;
    value = (obj && obj->is_val()) ? obj->value() : Json();
  } catch (const FluxException& e) {
    if (e.error().code == errc::noent) {
      ref = std::nullopt;  // key (currently) absent
    } else if (e.error().code == errc::is_dir ||
               e.error().code == errc::not_dir) {
      want_ref_fallback = true;
    } else {
      // Transient failure (master down, dropped RPC): deliver nothing — a
      // synthetic "absent" would be indistinguishable from a real delete.
      deliverable = false;
    }
  }
  if (want_ref_fallback) {
    // Directory (or path crossing a value): report existence only.
    try {
      ref = co_await lookup_ref(w->key);
      value = Json();
    } catch (const FluxException&) {
      deliverable = false;  // raced away mid-refresh; next setroot retries
    }
  }

  // The watch may have been cancelled while the fetch was in flight, and
  // `fn` below may unwatch: always re-resolve by id before touching *w.
  w = find_watch(id);
  if (w == nullptr) co_return;

  if (deliverable) {
    const bool changed = !w->first_fired || ref != w->last_ref ||
                         check::mutation("kvs.watch_refire");
    w->first_fired = true;
    w->last_ref = ref;
    if (changed) {
      if (rec_) {
        check::OpRecord r;
        r.client = rec_client_;
        r.kind = check::OpKind::watch;
        r.key = w->key;
        if (ref) r.ref = *ref;
        r.absent = !ref;
        if (value) r.value = *value;
        r.vv_end = sample_vv();
        r.t_ns = h_.executor().now().count();
        rec_->record(std::move(r));
      }
      w->fn(ref ? value : std::nullopt);
      w = find_watch(id);
      if (w == nullptr) co_return;
    }
  }

  w->in_flight = false;
  if (w->rerun) {
    w->rerun = false;
    co_spawn(h_.executor(), refresh_watch(w), "kvs.watch");
  }
}

}  // namespace flux
