// Client-side KVS API (the kvs_* functions of paper §IV-B).
//
//   kvs_put(key,val)      -> KvsClient::put        (async, write-back)
//   kvs_commit()          -> KvsClient::commit     (synchronous flush)
//   kvs_fence(name,n)     -> KvsClient::fence      (collective commit)
//   kvs_get(key)          -> KvsClient::get
//   kvs_get_version()     -> KvsClient::get_version
//   kvs_wait_version(v)   -> KvsClient::wait_version
//   kvs_watch(key,cb)     -> KvsClient::watch      (per-root-update compare)
//
// A KvsClient holds no transaction state itself: puts accumulate in the
// local kvs module keyed by this client's endpoint ("cached locally pending
// commit"), so fence semantics are per-process exactly as in the paper.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "api/handle.hpp"
#include "kvs/treeobj.hpp"

namespace flux {

struct CommitResult {
  std::uint64_t version = 0;
  std::string rootref;
};

class KvsClient {
 public:
  explicit KvsClient(Handle& h) : h_(h) {}
  ~KvsClient();
  KvsClient(const KvsClient&) = delete;
  KvsClient& operator=(const KvsClient&) = delete;

  /// Write-back put: the value object lands in the local cache; visibility
  /// requires commit()/fence().
  Task<void> put(std::string key, Json value);
  /// Remove a key (takes effect at commit).
  Task<void> unlink(std::string key);
  /// Create an (empty) directory (takes effect at commit).
  Task<void> mkdir(std::string key);

  /// Flush this process's puts and wait for the new root to be applied
  /// locally (read-your-writes).
  Task<CommitResult> commit();
  /// Collective commit across `nprocs` processes using fence `name`.
  Task<CommitResult> fence(std::string name, std::int64_t nprocs);

  /// Committed-state read; throws FluxException(ENOENT/EISDIR/...) on error.
  Task<Json> get(std::string key);
  /// Read a directory: returns sorted entry names.
  Task<std::vector<std::string>> list_dir(std::string key);
  /// Resolve a key to its content address without fetching the object.
  Task<std::string> lookup_ref(std::string key);

  Task<std::uint64_t> get_version();
  Task<void> wait_version(std::uint64_t version);

  /// Watch a key: `cb` fires once with the current value (nullopt if the key
  /// does not exist), then again on every root update that changes it
  /// (paper: "internally performing a get ... in response to each root
  /// update, comparing the new and old values"). Directory keys change when
  /// anything beneath them changes — the hash-tree property.
  using WatchFn = std::function<void(const std::optional<Json>&)>;
  std::uint64_t watch(std::string key, WatchFn cb);
  void unwatch(std::uint64_t id);

 private:
  struct Watch {
    std::uint64_t id;
    std::string key;
    WatchFn fn;
    std::optional<std::string> last_ref;  // nullopt until first lookup
    bool first_fired = false;
    bool in_flight = false;
  };

  Task<void> refresh_watch(Watch* w);
  void on_setroot();

  Handle& h_;
  std::uint64_t next_watch_ = 1;
  std::vector<std::unique_ptr<Watch>> watches_;
  std::uint64_t setroot_sub_ = 0;
};

}  // namespace flux
