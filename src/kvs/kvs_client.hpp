// Client-side KVS API (the kvs_* functions of paper §IV-B).
//
//   kvs_put(key,val)      -> KvsClient::put        (async, write-back)
//   kvs_commit()          -> KvsClient::commit     (synchronous flush)
//   kvs_fence(name,n)     -> KvsClient::fence      (collective commit)
//   kvs_get(key)          -> KvsClient::get
//   kvs_get_version()     -> KvsClient::get_version
//   kvs_wait_version(v)   -> KvsClient::wait_version
//   kvs_watch(key,cb)     -> KvsClient::watch      (per-root-update compare)
//
// Writes accumulate in an explicit KvsTxn on the *client* side ("cached
// locally pending commit"); commit(txn)/fence(...,txn) ship the whole
// transaction — (key, ref) tuples plus the content-addressed objects — to
// the kvs module in a single RPC. KvsClient::put/unlink/mkdir are sugar over
// a default transaction, so fence semantics stay per-process exactly as in
// the paper.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "api/handle.hpp"
#include "kvs/treeobj.hpp"

namespace flux::check {
class HistoryRecorder;
}

namespace flux {

class KvsClient;

namespace detail {
/// Shared liveness anchor between a KvsClient and its WatchHandle guards
/// (same pattern as SubOwner in api/handle.hpp): the client nulls `owner`
/// on destruction, so a guard outliving the client is a harmless no-op.
struct WatchOwner {
  KvsClient* owner = nullptr;
};
}  // namespace detail

/// Move-only RAII guard for a KVS watch. Destroying (or reset()ing) it
/// cancels the watch; destroying it after the KvsClient is gone is a no-op.
class [[nodiscard]] WatchHandle {
 public:
  WatchHandle() noexcept = default;
  WatchHandle(WatchHandle&& o) noexcept
      : state_(std::move(o.state_)), id_(std::exchange(o.id_, 0)) {}
  WatchHandle& operator=(WatchHandle&& o) noexcept {
    if (this != &o) {
      reset();
      state_ = std::move(o.state_);
      id_ = std::exchange(o.id_, 0);
    }
    return *this;
  }
  ~WatchHandle() { reset(); }
  WatchHandle(const WatchHandle&) = delete;
  WatchHandle& operator=(const WatchHandle&) = delete;

  /// Cancel the watch now (idempotent).
  void reset() noexcept;

  [[nodiscard]] std::uint64_t id() const noexcept { return id_; }
  [[nodiscard]] bool active() const noexcept { return id_ != 0; }
  explicit operator bool() const noexcept { return active(); }

 private:
  friend class KvsClient;
  WatchHandle(std::weak_ptr<detail::WatchOwner> s, std::uint64_t id) noexcept
      : state_(std::move(s)), id_(id) {}

  std::weak_ptr<detail::WatchOwner> state_;
  std::uint64_t id_ = 0;
};

struct CommitResult {
  std::uint64_t version = 0;
  std::string rootref;
  /// Per-shard version vector; empty unless the session runs sharded KVS
  /// masters (module config {"shards": k>1}). vv[s] is shard s's version as
  /// of this commit; `version` is the sum of the vector.
  std::vector<std::uint64_t> vv;
};

/// An explicit KVS transaction: an ordered list of (key, object) operations
/// staged client-side. Nothing touches the session until the transaction is
/// handed to KvsClient::commit()/fence(); applying is atomic (one root swap
/// covers every op). Value objects are hashed at put() time, so a txn also
/// pre-computes the content addresses the commit will reference.
class KvsTxn {
 public:
  /// Stage a write. Throws FluxException(EINVAL) for an empty key.
  KvsTxn& put(std::string key, Json value);
  /// Stage a removal (tombstone tuple).
  KvsTxn& unlink(std::string key);
  /// Stage an (empty) directory creation.
  KvsTxn& mkdir(std::string key);

  [[nodiscard]] bool empty() const noexcept { return tuples_.empty(); }
  [[nodiscard]] std::size_t size() const noexcept { return tuples_.size(); }
  void clear() {
    tuples_.clear();
    objects_.clear();
  }

 private:
  friend class KvsClient;
  std::vector<Tuple> tuples_;
  std::vector<ObjPtr> objects_;
};

class KvsClient {
 public:
  explicit KvsClient(Handle& h)
      : h_(h), watch_state_(std::make_shared<detail::WatchOwner>()) {
    watch_state_->owner = this;
  }
  ~KvsClient();
  KvsClient(const KvsClient&) = delete;
  KvsClient& operator=(const KvsClient&) = delete;

  /// The default transaction put/unlink/mkdir stage into.
  [[nodiscard]] KvsTxn& txn() noexcept { return txn_; }

  /// Write-back put: sugar over txn().put(); visibility requires
  /// commit()/fence().
  Task<void> put(std::string key, Json value);
  /// Remove a key: sugar over txn().unlink() (takes effect at commit).
  Task<void> unlink(std::string key);
  /// Create an (empty) directory: sugar over txn().mkdir().
  Task<void> mkdir(std::string key);

  /// Ship an explicit transaction and wait for the new root to be applied
  /// locally (read-your-writes).
  Task<CommitResult> commit(KvsTxn txn);
  /// Flush the default transaction (this process's staged puts).
  Task<CommitResult> commit();
  /// Collective commit of an explicit transaction across `nprocs` processes.
  Task<CommitResult> fence(std::string name, std::int64_t nprocs, KvsTxn txn);
  /// Collective commit of the default transaction.
  Task<CommitResult> fence(std::string name, std::int64_t nprocs);

  /// Committed-state read; throws FluxException(ENOENT/EISDIR/...) on error.
  Task<Json> get(std::string key);
  /// Read a directory: returns sorted entry names.
  Task<std::vector<std::string>> list_dir(std::string key);
  /// Resolve a key to its content address without fetching the object.
  Task<std::string> lookup_ref(std::string key);

  Task<std::uint64_t> get_version();
  Task<void> wait_version(std::uint64_t version);

  /// Watch a key: `cb` fires once with the current value (nullopt if the key
  /// does not exist), then again on every root update that changes it
  /// (paper: "internally performing a get ... in response to each root
  /// update, comparing the new and old values"). Directory keys change when
  /// anything beneath them changes — the hash-tree property. The returned
  /// guard owns the watch: it cancels on destruction. In sharded sessions
  /// the watch also re-fires across a shard-master failover (the successor's
  /// "kvs.setroot.<s>" announcement is a root update like any other).
  using WatchFn = std::function<void(const std::optional<Json>&)>;
  WatchHandle watch(std::string key, WatchFn cb);

  /// Deprecated: raw-id cancel. Prefer holding the WatchHandle guard.
  [[deprecated("hold the WatchHandle guard instead")]]
  void unwatch(std::uint64_t id) {
    unwatch_impl(id);
  }

  /// DST tap (check/history.hpp): append every client-visible op this client
  /// performs — put/get/commit/fence/watch callback, plus every observed
  /// "kvs.setroot*" event — to `rec` under logical client id `client`.
  /// Pass nullptr to detach. Recording is off (and free) by default.
  void set_recorder(check::HistoryRecorder* rec, int client);

 private:
  friend class WatchHandle;

  void unwatch_impl(std::uint64_t id);

  struct Watch {
    std::uint64_t id;
    std::string key;
    WatchFn fn;
    std::optional<std::string> last_ref;  // nullopt until first lookup
    bool first_fired = false;
    // Refreshes are serialized per watch: at most one refresh_watch coroutine
    // runs at a time (in_flight), and setroots observed meanwhile coalesce
    // into a single follow-up pass (rerun). Without this, two refreshes can
    // interleave and deliver values out of commit order.
    bool in_flight = false;
    bool rerun = false;
  };

  Task<void> refresh_watch(Watch* w);
  void on_setroot();
  Watch* find_watch(std::uint64_t id);

  /// Recorder helpers (no-ops when rec_ == nullptr).
  [[nodiscard]] std::vector<std::uint64_t> sample_vv() const;
  void record_setroot(const Message& ev);

  Handle& h_;
  KvsTxn txn_;
  std::uint64_t next_watch_ = 1;
  std::vector<std::unique_ptr<Watch>> watches_;
  std::shared_ptr<detail::WatchOwner> watch_state_;
  Subscription setroot_sub_;
  check::HistoryRecorder* rec_ = nullptr;
  int rec_client_ = -1;
  Subscription rec_sub_;
};

}  // namespace flux
