#include "kvs/kvs_module.hpp"

#include <algorithm>
#include <cassert>

#include "base/log.hpp"
#include "broker/broker.hpp"

namespace flux {

namespace {
/// Data frame aliasing an object's serialized bytes (zero-copy).
std::shared_ptr<const std::string> object_frame(const ObjPtr& obj) {
  return {obj, &obj->bytes};
}
}  // namespace

KvsModule::KvsModule(Broker& b) : ModuleBase(b) {
  ObjectBundle::register_codec();

  on("put", [this](Message& m) { op_put(m); });
  on("stage", [this](Message& m) { op_stage(m); });
  on("unlink", [this](Message& m) { op_unlink(m); });
  on("mkdir", [this](Message& m) { op_mkdir(m); });
  on("get", [this](Message& m) { op_get(m); });
  on("lookup_ref", [this](Message& m) { op_lookup_ref(m); });
  on("get_version", [this](Message& m) { op_get_version(m); });
  on("wait_version", [this](Message& m) { op_wait_version(m); });
  on("commit", [this](Message& m) { op_commit(m); });
  on("fence", [this](Message& m) { op_fence(m); });
  on("flush", [this](Message& m) { op_flush(m); });
  on("fault", [this](Message& m) { op_fault(m); });
  on("stats", [this](Message& m) { op_stats(m); });
  on("drop_cache", [this](Message& m) { op_drop_cache(m); });

  broker().module_subscribe(*this, "kvs.setroot");
  broker().module_subscribe(*this, "hb");
}

bool KvsModule::is_master() const noexcept { return broker().is_root(); }

void KvsModule::start() {
  const Json cfg = broker().module_config("kvs");
  expiry_epochs_ =
      static_cast<std::uint64_t>(cfg.get_int("expiry_epochs", 0));
  if (is_master()) {
    // Bootstrap: version 1 is the empty root directory.
    ObjPtr empty = empty_dir_object();
    root_ref_ = empty->id;
    store_.put(std::move(empty));
    root_version_ = 1;
    broker().publish("kvs.setroot",
                     Json::object({{"version", root_version_},
                                   {"rootref", root_ref_.hex()},
                                   {"fences", Json::array()}}));
  }
}

void KvsModule::handle_event(const Message& msg) {
  if (msg.topic == "hb") {
    epoch_ = static_cast<std::uint64_t>(msg.payload.get_int("epoch", 0));
    if (expiry_epochs_ > 0 && !is_master())
      cache_.expire(epoch_, expiry_epochs_);
    return;
  }
  if (msg.topic == "kvs.setroot") {
    const auto version =
        static_cast<std::uint64_t>(msg.payload.get_int("version", 0));
    const auto ref = Sha1::parse(msg.payload.get_string("rootref"));
    if (!ref) {
      log::error("kvs", "setroot event with bad rootref");
      return;
    }
    std::vector<std::string> fences;
    if (msg.payload.at("fences").is_array())
      for (const Json& f : msg.payload.at("fences").as_array())
        if (f.is_string()) fences.push_back(f.as_string());
    apply_root(*ref, version, fences);
  }
}

// ---------------------------------------------------------------------------
// Transactions (put / unlink / mkdir)
// ---------------------------------------------------------------------------

KvsModule::TxnKey KvsModule::txn_key(const Message& msg) {
  if (msg.route.empty()) return {kNodeAny, 0};
  const RouteHop& origin = msg.route.front();
  return {origin.rank, origin.id};
}

void KvsModule::record(Message& msg, std::string key, ObjPtr obj) {
  Txn& txn = txns_[txn_key(msg)];
  txn.tuples.push_back(Tuple{std::move(key), obj->id});
  if (is_master()) {
    store_.put(obj);
  } else {
    cache_.put(obj, epoch_);
    cache_.pin(obj->id);
  }
  txn.objects.push_back(std::move(obj));
}

void KvsModule::op_put(Message& msg) {
  ++ops_.puts;
  const std::string key = msg.payload.get_string("key");
  if (key.empty() || split_key(key).empty()) {
    respond_error(msg, Errc::Inval, "put: empty key");
    return;
  }
  ObjPtr obj;
  if (msg.data) {
    obj = parse_object(*msg.data);
    if (!obj || !obj->is_val()) {
      respond_error(msg, Errc::Inval, "put: malformed value object");
      return;
    }
  } else {
    obj = make_val_object(msg.payload.at("value"));
  }
  const std::string ref = obj->id.hex();
  record(msg, key, std::move(obj));
  respond_ok(msg, Json::object({{"ref", ref}}));
}

void KvsModule::op_stage(Message& msg) {
  // Write-back caching for client-side transactions (paper: "objects are
  // cached in write-back mode at kvs_put time"). The value objects are
  // positioned here at put() time; the (key, ref) tuples stay in the
  // client's KvsTxn until commit/fence ships them. Not pinned: the commit
  // re-ships its bundle, so these entries may expire like any cached object.
  auto bundle = std::dynamic_pointer_cast<const ObjectBundle>(msg.attachment);
  if (!bundle) {
    respond_error(msg, Errc::Inval, "stage: missing object bundle");
    return;
  }
  for (const ObjPtr& obj : bundle->objects()) {
    ++ops_.puts;
    if (is_master())
      store_.put(obj);
    else
      cache_.put(obj, epoch_);
  }
  respond_ok(msg);
}

void KvsModule::op_unlink(Message& msg) {
  const std::string key = msg.payload.get_string("key");
  if (key.empty() || split_key(key).empty()) {
    respond_error(msg, Errc::Inval, "unlink: empty key");
    return;
  }
  txns_[txn_key(msg)].tuples.push_back(Tuple{key, Sha1{}});
  respond_ok(msg);
}

void KvsModule::op_mkdir(Message& msg) {
  const std::string key = msg.payload.get_string("key");
  if (key.empty() || split_key(key).empty()) {
    respond_error(msg, Errc::Inval, "mkdir: empty key");
    return;
  }
  record(msg, key, empty_dir_object());
  respond_ok(msg);
}

// ---------------------------------------------------------------------------
// Commit / fence / flush
// ---------------------------------------------------------------------------

void KvsModule::op_commit(Message& msg) {
  ++ops_.commits;
  // A commit is a single-party fence with a unique name (the same
  // unification flux-core later adopted). Completion — and therefore the
  // response — happens only after the local root has been updated, which is
  // what gives read-your-writes consistency.
  const TxnKey key = txn_key(msg);
  const std::string name = "#commit." + std::to_string(key.first) + "." +
                           std::to_string(key.second) + "." +
                           std::to_string(++commit_seq_);
  Json payload = msg.payload;
  payload["name"] = name;
  payload["nprocs"] = 1;
  msg.payload = std::move(payload);
  op_fence(msg);
}

void KvsModule::op_fence(Message& msg) {
  ++ops_.fences;
  const std::string name = msg.payload.get_string("name");
  const std::int64_t nprocs = msg.payload.get_int("nprocs", 0);
  if (name.empty() || nprocs <= 0) {
    respond_error(msg, Errc::Inval, "fence: need name and nprocs > 0");
    return;
  }
  // Claim the caller's transaction: the explicit client-side form ("ops"
  // tuples + object bundle in this very request), plus any ops staged via
  // the legacy endpoint-keyed put/unlink/mkdir RPCs.
  Txn txn;
  if (msg.payload.contains("ops")) {
    auto tuples = tuples_from_json(msg.payload.at("ops"));
    if (!tuples) {
      respond_error(msg, Errc::Inval, "fence: malformed ops");
      return;
    }
    std::vector<ObjPtr> objects;
    if (msg.attachment) {
      auto bundle =
          std::dynamic_pointer_cast<const ObjectBundle>(msg.attachment);
      if (!bundle) {
        respond_error(msg, Errc::Inval, "fence: non-bundle attachment");
        return;
      }
      objects = bundle->objects();
    }
    txn.tuples = std::move(tuples).value();
    for (ObjPtr& obj : objects) {
      // Mirror record(): master stores straight away; slaves cache + pin so
      // the objects survive eviction until the fence completes.
      if (is_master()) {
        store_.put(obj);
      } else {
        cache_.put(obj, epoch_);
        cache_.pin(obj->id);
      }
      txn.objects.push_back(std::move(obj));
    }
  }
  if (auto it = txns_.find(txn_key(msg)); it != txns_.end()) {
    std::move(it->second.tuples.begin(), it->second.tuples.end(),
              std::back_inserter(txn.tuples));
    std::move(it->second.objects.begin(), it->second.objects.end(),
              std::back_inserter(txn.objects));
    txns_.erase(it);
  }
  FenceState& fence = fences_[name];
  for (const ObjPtr& obj : txn.objects) fence.pins.push_back(obj->id);
  fence.waiters.push_back(msg);
  fence_add(name, nprocs, 1, std::move(txn.tuples), txn.objects);
}

void KvsModule::fence_add(const std::string& name, std::int64_t nprocs,
                          std::int64_t count, std::vector<Tuple> tuples,
                          const std::vector<ObjPtr>& objects) {
  FenceState& fence = fences_[name];
  if (fence.nprocs == 0) fence.nprocs = nprocs;
  if (fence.nprocs != nprocs)
    log::warn("kvs", "fence '", name, "': inconsistent nprocs ", nprocs,
              " vs ", fence.nprocs);
  fence.pending_count += count;
  std::move(tuples.begin(), tuples.end(),
            std::back_inserter(fence.pending_tuples));
  for (const ObjPtr& obj : objects) {
    // SHA1 dedup: redundant values are *reduced* here while the (key, SHA1)
    // tuples above are concatenated — the asymmetry behind Figure 3.
    if (is_master()) continue;  // master already stored them
    if (fence.forwarded_ids.insert(obj->id).second)
      fence.pending_objects.push_back(obj);
  }
  schedule_fence_flush(name);
}

void KvsModule::schedule_fence_flush(const std::string& name) {
  FenceState& fence = fences_[name];
  if (fence.flush_scheduled) return;
  fence.flush_scheduled = true;
  // Posted (not inline) so contributions arriving in the same reactor turn
  // coalesce into one upstream message — the module-level data reduction of
  // the paper's tree overlay.
  broker().executor().post([this, name] { flush_fence(name); });
}

void KvsModule::flush_fence(const std::string& name) {
  auto it = fences_.find(name);
  if (it == fences_.end()) return;
  FenceState& fence = it->second;
  fence.flush_scheduled = false;
  if (fence.pending_count == 0) return;

  if (is_master()) {
    fence.total_count += fence.pending_count;
    std::move(fence.pending_tuples.begin(), fence.pending_tuples.end(),
              std::back_inserter(fence.total_tuples));
    fence.pending_count = 0;
    fence.pending_tuples.clear();
    master_check_fence(name);
    return;
  }

  ++ops_.flushes_forwarded;
  Message flush = Message::request(
      "kvs.flush", Json::object({{"name", name},
                                 {"nprocs", fence.nprocs},
                                 {"count", fence.pending_count},
                                 {"tuples", tuples_to_json(fence.pending_tuples)}}));
  if (!fence.pending_objects.empty())
    flush.attachment =
        std::make_shared<ObjectBundle>(std::move(fence.pending_objects));
  fence.pending_count = 0;
  fence.pending_tuples.clear();
  fence.pending_objects.clear();
  // forwarded_ids intentionally NOT cleared: dedup spans flush waves.
  broker().forward_upstream(std::move(flush));
}

void KvsModule::op_flush(Message& msg) {
  const std::string name = msg.payload.get_string("name");
  const std::int64_t nprocs = msg.payload.get_int("nprocs", 0);
  const std::int64_t count = msg.payload.get_int("count", 0);
  auto tuples = tuples_from_json(msg.payload.at("tuples"));
  if (name.empty() || nprocs <= 0 || count <= 0 || !tuples) {
    log::error("kvs", "malformed flush for fence '", name, "'");
    return;
  }
  std::vector<ObjPtr> objects;
  if (msg.attachment) {
    auto bundle = std::dynamic_pointer_cast<const ObjectBundle>(msg.attachment);
    if (!bundle) {
      log::error("kvs", "flush with non-bundle attachment");
      return;
    }
    objects = bundle->objects();
  }
  if (is_master())
    for (const ObjPtr& obj : objects) store_.put(obj);
  fence_add(name, nprocs, count, std::move(tuples).value(), objects);
}

void KvsModule::master_check_fence(const std::string& name) {
  assert(is_master());
  auto it = fences_.find(name);
  if (it == fences_.end()) return;
  FenceState& fence = it->second;
  if (fence.total_count < fence.nprocs) return;
  if (fence.total_count > fence.nprocs)
    log::warn("kvs", "fence '", name, "': ", fence.total_count,
              " entries for nprocs=", fence.nprocs);
  master_apply(fence.total_tuples, {name});
}

void KvsModule::master_apply(const std::vector<Tuple>& tuples,
                             std::vector<std::string> fences) {
  assert(is_master());
  root_ref_ = apply_transaction(store_, root_ref_, tuples);
  ++root_version_;
  // The master bumps its version here, so the event-path guard in
  // apply_root (version > root_version_) won't fire for it: complete local
  // version waiters directly.
  complete_version_waiters();
  Json fence_names = Json::array();
  for (auto& f : fences) fence_names.push_back(f);
  broker().publish("kvs.setroot",
                   Json::object({{"version", root_version_},
                                 {"rootref", root_ref_.hex()},
                                 {"fences", std::move(fence_names)}}));
  // The publish delivered the setroot event to this module synchronously
  // (the root broker delivers locally), so fences are already completed.
}

void KvsModule::apply_root(const Sha1& ref, std::uint64_t version,
                           const std::vector<std::string>& fences) {
  // Never apply roots out of order (monotonic reads; paper §IV-B).
  if (version > root_version_) {
    root_ref_ = ref;
    root_version_ = version;
    complete_version_waiters();
  }
  for (const std::string& name : fences) {
    auto it = fences_.find(name);
    if (it == fences_.end()) continue;
    FenceState fence = std::move(it->second);
    fences_.erase(it);
    for (const Sha1& id : fence.pins) cache_.unpin(id);
    for (const Message& waiter : fence.waiters)
      broker().respond(waiter.respond(Json::object(
          {{"version", root_version_}, {"rootref", root_ref_.hex()}})));
  }
}

void KvsModule::complete_version_waiters() {
  auto it = version_waiters_.begin();
  while (it != version_waiters_.end()) {
    if (it->first <= root_version_) {
      it->second.set_value(root_version_);
      it = version_waiters_.erase(it);
    } else {
      ++it;
    }
  }
}

Future<std::uint64_t> KvsModule::version_reached(std::uint64_t version) {
  Promise<std::uint64_t> p(broker().executor());
  if (root_version_ >= version)
    p.set_value(root_version_);
  else
    version_waiters_.emplace_back(version, p);
  return p.future();
}

// ---------------------------------------------------------------------------
// Lookups (get / lookup_ref / fault)
// ---------------------------------------------------------------------------

Task<ObjPtr> KvsModule::lookup_object(Sha1 ref) {
  if (is_master()) co_return store_.get(ref);
  if (ObjPtr hit = cache_.get(ref, epoch_)) co_return hit;

  // Coalesce concurrent faults for the same object.
  if (auto it = faults_.find(ref); it != faults_.end()) {
    ObjPtr obj = co_await it->second.future();
    co_return obj;
  }
  Promise<ObjPtr> promise(broker().executor());
  faults_.emplace(ref, promise);
  ++ops_.faults_issued;

  Message req =
      Message::request("kvs.fault", Json::object({{"ref", ref.hex()}}));
  req.nodeid = kNodeUpstream;  // the local module is the requester
  Message resp = co_await broker().module_rpc(*this, std::move(req));

  ObjPtr obj;
  if (resp.errnum == 0 && resp.data) {
    obj = parse_object(*resp.data);
    if (obj && obj->id != ref) {
      log::error("kvs", "fault integrity failure for ", ref.short_hex());
      obj = nullptr;
    }
  }
  if (obj) cache_.put(obj, epoch_);
  faults_.erase(ref);
  promise.set_value(obj);
  co_return obj;
}

void KvsModule::op_fault(Message& msg) {
  ++ops_.faults_served;
  const auto ref = Sha1::parse(msg.payload.get_string("ref"));
  if (!ref) {
    respond_error(msg, Errc::Inval, "fault: bad ref");
    return;
  }
  // Fast path: local hit.
  ObjPtr obj = is_master() ? store_.get(*ref) : cache_.get(*ref, epoch_);
  if (obj) {
    Message resp = msg.respond();
    resp.data = object_frame(obj);
    broker().respond(std::move(resp));
    return;
  }
  if (is_master()) {
    respond_error(msg, Errc::NoEnt, "fault: unknown object " + ref->short_hex());
    return;
  }
  // Slow path: fault it in from our own parent, then serve.
  co_spawn(
      broker().executor(),
      [](KvsModule* self, Message req, Sha1 id) -> Task<void> {
        ObjPtr found = co_await self->lookup_object(id);
        if (!found) {
          self->respond_error(req, Errc::NoEnt,
                              "fault: unknown object " + id.short_hex());
          co_return;
        }
        Message resp = req.respond();
        resp.data = object_frame(found);
        self->broker().respond(std::move(resp));
      }(this, std::move(msg), *ref),
      "kvs.fault");
}

void KvsModule::op_get(Message& msg) {
  ++ops_.gets;
  co_spawn(broker().executor(), do_get(std::move(msg), /*ref_only=*/false),
           "kvs.get");
}

void KvsModule::op_lookup_ref(Message& msg) {
  co_spawn(broker().executor(), do_get(std::move(msg), /*ref_only=*/true),
           "kvs.lookup_ref");
}

Task<void> KvsModule::do_get(Message req, bool ref_only) {
  if (root_version_ == 0) co_await version_reached(1);

  const std::string key = req.payload.get_string("key");
  const bool want_dir = req.payload.get_bool("dir", false);
  const auto path = split_key(key);

  Sha1 cur = root_ref_;
  for (const std::string& component : path) {
    ObjPtr dir = co_await lookup_object(cur);
    if (!dir) {
      respond_error(req, Errc::NoEnt, "get: dangling ref on path of " + key);
      co_return;
    }
    if (!dir->is_dir()) {
      respond_error(req, Errc::NotDir, "get: '" + key + "' crosses a value");
      co_return;
    }
    const auto& entries = dir->entries();
    auto it = entries.find(component);
    if (it == entries.end()) {
      respond_error(req, Errc::NoEnt, "get: no such key '" + key + "'");
      co_return;
    }
    const auto ref = Sha1::parse(it->second.as_string());
    if (!ref) {
      respond_error(req, Errc::Proto, "get: corrupt directory entry");
      co_return;
    }
    cur = *ref;
  }

  if (ref_only) {
    respond_ok(req, Json::object({{"ref", cur.hex()}}));
    co_return;
  }

  ObjPtr obj = co_await lookup_object(cur);
  if (!obj) {
    respond_error(req, Errc::NoEnt, "get: dangling terminal ref for " + key);
    co_return;
  }
  if (obj->is_dir()) {
    if (!want_dir) {
      respond_error(req, Errc::IsDir, "get: '" + key + "' is a directory");
      co_return;
    }
    Json names = Json::array();
    for (const auto& [name, ref] : obj->entries()) names.push_back(name);
    respond_ok(req, Json::object({{"dir", true}, {"entries", std::move(names)}}));
    co_return;
  }
  if (want_dir) {
    respond_error(req, Errc::NotDir, "get: '" + key + "' is not a directory");
    co_return;
  }
  Message resp = req.respond();
  resp.data = object_frame(obj);
  broker().respond(std::move(resp));
}

// ---------------------------------------------------------------------------
// Versions / stats / cache control
// ---------------------------------------------------------------------------

void KvsModule::op_get_version(Message& msg) {
  respond_ok(msg, Json::object({{"version", root_version_},
                                {"rootref", root_ref_.hex()}}));
}

void KvsModule::op_wait_version(Message& msg) {
  const auto version =
      static_cast<std::uint64_t>(msg.payload.get_int("version", 0));
  if (root_version_ >= version) {
    op_get_version(msg);
    return;
  }
  co_spawn(
      broker().executor(),
      [](KvsModule* self, Message req, std::uint64_t v) -> Task<void> {
        co_await self->version_reached(v);
        self->op_get_version(req);
      }(this, std::move(msg), version),
      "kvs.wait_version");
}

void KvsModule::op_stats(Message& msg) {
  respond_ok(
      msg,
      Json::object({{"rank", broker().rank()},
                    {"master", is_master()},
                    {"version", root_version_},
                    {"store_objects", store_.count()},
                    {"store_bytes", store_.bytes()},
                    {"cache_objects", cache_.count()},
                    {"cache_bytes", cache_.bytes()},
                    {"cache_hits", cache_.stats().hits},
                    {"cache_misses", cache_.stats().misses},
                    {"cache_evictions", cache_.stats().evictions},
                    {"puts", ops_.puts},
                    {"gets", ops_.gets},
                    {"commits", ops_.commits},
                    {"fences", ops_.fences},
                    {"faults_issued", ops_.faults_issued},
                    {"faults_served", ops_.faults_served},
                    {"flushes_forwarded", ops_.flushes_forwarded}}));
}

void KvsModule::op_drop_cache(Message& msg) {
  const std::size_t evicted = cache_.drop_all();
  respond_ok(msg, Json::object({{"evicted", evicted}}));
}

}  // namespace flux
