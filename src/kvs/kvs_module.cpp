#include "kvs/kvs_module.hpp"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <set>

#include "base/log.hpp"
#include "broker/broker.hpp"
#include "broker/session.hpp"
#include "check/mutation.hpp"
#include "fault/injector.hpp"
#include "kvs/content_backend.hpp"
#include "kvs/shard_coordinator.hpp"

namespace flux {

namespace {
/// Data frame aliasing an object's serialized bytes (zero-copy).
std::shared_ptr<const std::string> object_frame(const ObjPtr& obj) {
  return {obj, &obj->bytes};
}

/// Host wall time of a synchronous apply (virtual time doesn't advance
/// inside one reactor turn, so the apply histogram samples the real CPU
/// cost of the hash-tree update).
std::uint64_t wall_ns_since(
    std::chrono::steady_clock::time_point t0) {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - t0)
          .count());
}
}  // namespace

KvsModule::KvsModule(Broker& b) : ModuleBase(b) {
  ObjectBundle::register_codec();

  on("put", [this](Message& m) { op_put(m); });
  on("stage", [this](Message& m) { op_stage(m); });
  on("unlink", [this](Message& m) { op_unlink(m); });
  on("mkdir", [this](Message& m) { op_mkdir(m); });
  on("get", [this](Message& m) { op_get(m); });
  on("lookup_ref", [this](Message& m) { op_lookup_ref(m); });
  on("get_version", [this](Message& m) { op_get_version(m); });
  on("wait_version", [this](Message& m) { op_wait_version(m); });
  on("commit", [this](Message& m) { op_commit(m); });
  on("fence", [this](Message& m) { op_fence(m); });
  on("flush", [this](Message& m) { op_flush(m); });
  on("fault", [this](Message& m) { op_fault(m); });
  on("load", [this](Message& m) { op_load(m); });
  on("shard_done", [this](Message& m) { op_shard_done(m); });
  on("stats", [this](Message& m) { op_stats(m); });
  on("drop_cache", [this](Message& m) { op_drop_cache(m); });

  broker().module_subscribe(*this, "kvs.setroot");
  broker().module_subscribe(*this, "hb");
  broker().module_subscribe(*this, "cmb.rejoin");
}

KvsModule::~KvsModule() = default;

bool KvsModule::is_master() const noexcept { return broker().is_root(); }

bool KvsModule::is_shard_master(std::uint32_t shard) const noexcept {
  return shard < shard_masters_.size() &&
         shard_masters_[shard] == broker().rank();
}

std::optional<std::uint32_t> KvsModule::mastered_by(NodeId rank) const {
  for (std::uint32_t s = 0; s < shard_masters_.size(); ++s)
    if (shard_masters_[s] == rank) return s;
  return std::nullopt;
}

void KvsModule::start() {
  const Json cfg = broker().module_config("kvs");
  expiry_epochs_ =
      static_cast<std::uint64_t>(cfg.get_int("expiry_epochs", 0));
  // Slave-cache efficacy instruments (hit-rate surfaces in `flux_cli stats`).
  obs::StatsRegistry& reg = broker().stats_registry();
  cache_.bind_counters(&reg.counter("kvs.cache.hits"),
                       &reg.counter("kvs.cache.misses"),
                       &reg.counter("kvs.cache.evictions"));

  const auto shards_cfg = static_cast<std::uint32_t>(
      std::max<std::int64_t>(1, cfg.get_int("shards", 1)));
  shard_map_ =
      ShardMap(broker().size(), shards_cfg, broker().topology().arity());
  shards_ = shard_map_.shards();

  // Durable content store (ROADMAP: checkpoint/restart + GC). Config shape:
  //   {"persist": {"path": "...", "checkpoint_every": N,
  //                "gc_every": M, "retention": R}}
  // Only masters open a backend (persist_open); everyone else just remembers
  // the config was absent for them.
  if (cfg.is_object() && cfg.contains("persist") &&
      cfg.at("persist").is_object()) {
    const Json& pcfg = cfg.at("persist");
    if (!pcfg.get_string("path").empty()) {
      PersistConfig pc;
      pc.path = pcfg.get_string("path");
      pc.checkpoint_every = static_cast<std::uint64_t>(
          std::max<std::int64_t>(0, pcfg.get_int("checkpoint_every", 16)));
      pc.gc_every = static_cast<std::uint64_t>(
          std::max<std::int64_t>(0, pcfg.get_int("gc_every", 0)));
      pc.retention = static_cast<std::uint64_t>(
          std::max<std::int64_t>(0, pcfg.get_int("retention", 4)));
      persist_ = std::move(pc);
    }
  }

  if (!sharded()) {
    if (is_master()) {
      apply_batches_stat_ = &reg.counter("kvs.apply.batches");
      apply_batch_size_ = &reg.histogram("kvs.apply.batch_size");
      announces_stat_ = &reg.counter("kvs.announce.batches");
      announce_size_ = &reg.histogram("kvs.announce.batch_size");
      // Apply/announce rate limit. Deferral trades commit latency for
      // throughput: it only pays when the O(tree) broadcast and per-apply
      // freeze dwarf the added wait, so the auto default stays OFF below 48
      // brokers — at small and mid sizes the window shows up directly in
      // latency-sensitive clients (measured: scheduler alloc RPCs +2-22 µs)
      // for little host-side gain — and opens to 40 µs above, where each
      // skipped broadcast saves a tree's worth of deliveries. 40 µs is the
      // measured knee: wider keeps shrinking host work but costs more
      // virtual throughput than the congestion relief returns.
      std::int64_t win_us = cfg.get_int("announce_window_us", -1);
      if (win_us < 0) win_us = broker().size() < 48 ? 0 : 40;
      announce_window_ = std::chrono::microseconds(win_us);
      // Recover from the durable log when one exists; else bootstrap fresh
      // (version 1 is the empty root directory). A recovered root is
      // re-announced one version above the recovered one — the recovery
      // epoch — so the setroot version stream stays strictly monotonic
      // across a master restart.
      if (!persist_open(0)) {
        ObjPtr empty = empty_dir_object();
        root_ref_ = empty->id;
        store_.set_birth_version(1);
        store_.put(std::move(empty));
        root_version_ = 1;
      }
      persist_root(0, root_version_, root_ref_);
      broker().publish("kvs.setroot",
                       Json::object({{"version", root_version_},
                                     {"rootref", root_ref_.hex()},
                                     {"fences", Json::array()}}));
    }
    return;
  }

  shard_roots_.assign(shards_, Sha1{});
  shard_versions_.assign(shards_, 0);
  shard_dead_.assign(shards_, false);
  shard_masters_.resize(shards_);
  for (std::uint32_t s = 0; s < shards_; ++s)
    shard_masters_[s] = shard_map_.master_rank(s);
  failover_ = cfg.get_bool("failover", false);
  my_shard_ = shard_map_.shard_of_master(broker().rank());
  broker().module_subscribe(*this, "kvs.fence.done");
  broker().module_subscribe(*this, "live.down");
  if (broker().is_root())
    coord_ = std::make_unique<ShardCoordinator>(broker(), shards_);

  if (my_shard_) {
    const std::string prefix = "kvs.shard." + std::to_string(*my_shard_);
    shard_commits_ = &reg.counter(prefix + ".commits");
    shard_faults_served_ = &reg.counter(prefix + ".faults_served");
    shard_apply_ns_ = &reg.histogram(prefix + ".apply_ns");
    // Bootstrap this shard: recover from its durable log when one exists,
    // else version 1 is its empty root directory.
    const std::uint32_t s = *my_shard_;
    if (!persist_open(s)) {
      ObjPtr empty = empty_dir_object();
      shard_roots_[s] = empty->id;
      store_.set_birth_version(1);
      store_.put(std::move(empty));
      shard_versions_[s] = 1;
    }
    persist_root(s, shard_versions_[s], shard_roots_[s]);
    refresh_scalar_root();
    Json ev = Json::object({{"shard", static_cast<std::int64_t>(s)},
                            {"version", shard_versions_[s]},
                            {"rootref", shard_roots_[s].hex()}});
    broker().publish("kvs.setroot." + std::to_string(s), std::move(ev));
  }
}

void KvsModule::shutdown() {
  // Settle every module-internal promise a coroutine may be parked on
  // (version waits, shard-ready waits, coalesced object faults): the frame
  // owns the Future and the Future's state owns the frame's handle, so an
  // unsettled promise strands the whole chain. Session teardown drains the
  // posted resumes while the module is still alive (see Session::~Session),
  // so each parked get/commit unwinds with a typed error instead of leaking.
  const Error bye(errc::canceled, "kvs: session shutdown");
  for (auto& [version, promise] : version_waiters_) promise.set_error(bye);
  version_waiters_.clear();
  for (auto& [shard, promise] : shard_ready_waiters_) promise.set_error(bye);
  shard_ready_waiters_.clear();
  for (auto& [id, promise] : faults_) promise.set_error(bye);
  faults_.clear();
  if (backend_) {
    // Clean shutdown: one final checkpoint so a restart recovers the exact
    // served state, then sync and close.
    backend_->append_checkpoint(checkpoint_roots(), checkpoint_vv());
    ++persist_stats_.checkpoints;
    backend_->close();
  }
}

void KvsModule::on_fail() {
  if (!backend_) return;
  // Crash semantics: the unsynced tail is lost — unless the installed fault
  // injector keeps a torn prefix of it (a partial flush that reached disk).
  std::uint64_t keep = 0;
  if (fault::Injector* inj = broker().session().fault_injector())
    keep = inj->on_crash_unsynced(broker().rank(), backend_->unsynced_bytes());
  backend_->crash(keep);
}

// ---------------------------------------------------------------------------
// Persistence (durable content store + checkpoint/restart + GC)
// ---------------------------------------------------------------------------

bool KvsModule::persist_open(std::uint32_t shard) {
  recovered_versions_.assign(std::max<std::uint32_t>(shards_, 1), 0);
  if (!persist_) return false;
  std::string path = persist_->path;
  if (sharded()) path += ".s" + std::to_string(shard);
  backend_ = std::make_unique<FileLogBackend>(path);
  const ContentBackend::Recovered rec = backend_->recover(store_);
  persist_stats_.recovered_objects = rec.objects;
  persist_stats_.truncated_bytes = rec.truncated_bytes;
  if (persist_->gc_every != 0)
    gc_pause_ns_ = &broker().stats_registry().histogram("kvs.gc.pause_ns");

  bool recovered = false;
  if (rec.has_root(shard) && store_.contains(rec.roots[shard])) {
    const std::uint64_t v = rec.versions[shard] + 1;  // recovery epoch
    if (sharded()) {
      shard_roots_[shard] = rec.roots[shard];
      shard_versions_[shard] = v;
    } else {
      root_ref_ = rec.roots[shard];
      root_version_ = v;
    }
    recovered_versions_[shard] = v;
    persist_stats_.recovered_version = v;
    store_.set_birth_version(v);
    recovered = true;
    log::info("kvs", "rank ", broker().rank(), ": recovered ", rec.objects,
              " objects from ", path, ", serving version ", v,
              rec.truncated_bytes ? " (torn tail truncated)" : "");
  }
  // Attach AFTER replay so recovered objects are not re-appended; from here
  // every new store_.put mirrors into the log.
  store_.attach_backend(backend_.get());
  return recovered;
}

void KvsModule::persist_root(std::uint32_t shard, std::uint64_t version,
                             const Sha1& ref) {
  if (!backend_) return;
  // Ack-after-sync: the root record (and every object it references, which
  // precedes it in the log) is durable before any announce or response goes
  // out, so an acked version can always be recovered. The skip_sync mutation
  // breaks exactly this — acks go out with the tail still buffered — so a
  // crash loses acked commits and the durability audit must flag it
  // (tests/test_persist.cpp teeth test).
  backend_->append_root(shard, version, ref);
  if (!check::mutation("kvs.skip_sync")) backend_->sync();
  if (persist_->checkpoint_every != 0 &&
      ++applies_since_checkpoint_ >= persist_->checkpoint_every) {
    applies_since_checkpoint_ = 0;
    backend_->append_checkpoint(checkpoint_roots(), checkpoint_vv());
    backend_->sync();
    ++persist_stats_.checkpoints;
  }
  if (persist_->gc_every != 0 && ++applies_since_gc_ >= persist_->gc_every) {
    applies_since_gc_ = 0;
    run_gc();
  }
}

std::vector<Sha1> KvsModule::checkpoint_roots() const {
  if (sharded()) return shard_roots_;
  return {root_ref_};
}

std::vector<std::uint64_t> KvsModule::checkpoint_vv() const {
  if (sharded()) return shard_versions_;
  return {root_version_};
}

std::vector<Sha1> KvsModule::gc_roots() const {
  if (!sharded()) return {root_ref_};
  std::vector<Sha1> roots;
  for (const Sha1& r : shard_roots_)
    if (r != Sha1{}) roots.push_back(r);
  return roots;
}

std::vector<Sha1> KvsModule::gc_pins() const {
  std::vector<Sha1> pins;
  auto add_tuples = [&pins](const std::vector<Tuple>& tuples) {
    for (const Tuple& t : tuples)
      if (!t.is_unlink()) pins.push_back(t.ref);
  };
  // In-flight fences: their tuple objects are in the store but not yet
  // reachable from any root.
  for (const auto& [name, fence] : fences_) {
    pins.insert(pins.end(), fence.pins.begin(), fence.pins.end());
    add_tuples(fence.pending_tuples);
    add_tuples(fence.total_tuples);
  }
  for (const auto& [name, tuples] : apply_batch_) add_tuples(tuples);
  for (const auto& [name, fence] : sharded_fences_) {
    pins.insert(pins.end(), fence.pins.begin(), fence.pins.end());
    for (const ShardPart& part : fence.parts) {
      add_tuples(part.pending_tuples);
      add_tuples(part.total_tuples);
    }
  }
  // Staged (uncommitted) client transactions: op_put placed their objects in
  // the store ahead of the commit.
  for (const auto& [key, txn] : txns_) add_tuples(txn.tuples);
  return pins;
}

void KvsModule::run_gc() {
  const auto t0 = std::chrono::steady_clock::now();
  GcOptions opt;
  opt.current_version = root_version_;
  opt.retention = persist_->retention;
  opt.pins = gc_pins();
  const GcStats gs = mark_and_sweep(store_, gc_roots(), opt);
  ++persist_stats_.gc_passes;
  persist_stats_.gc_swept += gs.swept;
  persist_stats_.gc_swept_bytes += gs.swept_bytes;
  // Reclaim the log space too: rewrite it to the swept store plus one
  // checkpoint (atomic temp-file + rename).
  if (gs.swept > 0) {
    backend_->compact(store_, checkpoint_roots(), checkpoint_vv());
    ++persist_stats_.checkpoints;
  }
  if (gc_pause_ns_) gc_pause_ns_->record(wall_ns_since(t0));
}

void KvsModule::handle_event(const Message& msg) {
  if (msg.topic == "hb") {
    epoch_ = static_cast<std::uint64_t>(msg.payload().get_int("epoch", 0));
    // Sharded: every rank keeps a cache (a shard master caches the other
    // shards' objects); pinned (dirty) entries survive expiry regardless.
    if (expiry_epochs_ > 0 && (sharded() || !is_master()))
      cache_.expire(epoch_, expiry_epochs_);
    if (sharded() && failover_ && !pending_failover_.empty()) check_failovers();
    return;
  }
  if (msg.topic == "cmb.rejoin") {
    // Our broker restarted and was just re-admitted (this module instance is
    // the fresh one built by Broker::restart). Pull authoritative roots and
    // versions from upstream; objects fault back in from the distributed
    // content store on demand.
    const auto back = static_cast<NodeId>(msg.payload().get_int("rank", -1));
    if (back == broker().rank() && !broker().is_root())
      co_spawn(broker().executor(), resync_after_rejoin(), "kvs.resync");
    return;
  }
  if (sharded()) {
    if (msg.topic == "kvs.fence.done") {
      on_fence_done(msg);
      return;
    }
    if (msg.topic.starts_with("kvs.setroot.")) {
      on_shard_setroot(msg);
      return;
    }
    if (msg.topic == "live.down") {
      on_live_down(msg);
      return;
    }
    return;  // plain "kvs.setroot" is never published in sharded mode
  }
  if (msg.topic == "kvs.setroot") {
    const auto version =
        static_cast<std::uint64_t>(msg.payload().get_int("version", 0));
    const auto ref = Sha1::parse(msg.payload().get_string("rootref"));
    if (!ref) {
      log::error("kvs", "setroot event with bad rootref");
      return;
    }
    std::vector<std::string> fences;
    if (msg.payload().at("fences").is_array())
      for (const Json& f : msg.payload().at("fences").as_array())
        if (f.is_string()) fences.push_back(f.as_string());
    apply_root(*ref, version, fences);
  }
}

// ---------------------------------------------------------------------------
// Transactions (put / unlink / mkdir)
// ---------------------------------------------------------------------------

KvsModule::TxnKey KvsModule::txn_key(const Message& msg) {
  if (msg.route.empty()) return {kNodeAny, 0};
  const RouteHop& origin = msg.route.front();
  return {origin.rank, origin.id};
}

void KvsModule::record(Message& msg, std::string key, ObjPtr obj) {
  Txn& txn = txns_[txn_key(msg)];
  txn.tuples.push_back(Tuple{std::move(key), obj->id});
  if (!sharded() && is_master()) {
    store_.put(obj);
  } else {
    // Sharded: the owning master is only known per-tuple; stage in the cache
    // (pinned) and let the fence flush place each object on its shard.
    cache_.put(obj, epoch_);
    cache_.pin(obj->id);
  }
  txn.objects.push_back(std::move(obj));
}

void KvsModule::op_put(Message& msg) {
  ++ops_.puts;
  const std::string key = msg.payload().get_string("key");
  if (key.empty() || split_key(key).empty()) {
    respond_error(msg, errc::inval, "put: empty key");
    return;
  }
  ObjPtr obj;
  if (msg.data()) {
    obj = parse_object(*msg.data());
    if (!obj || !obj->is_val()) {
      respond_error(msg, errc::inval, "put: malformed value object");
      return;
    }
  } else {
    obj = make_val_object(msg.payload().at("value"));
  }
  const std::string ref = obj->id.hex();
  record(msg, key, std::move(obj));
  respond_ok(msg, Json::object({{"ref", ref}}));
}

void KvsModule::op_stage(Message& msg) {
  // Write-back caching for client-side transactions (paper: "objects are
  // cached in write-back mode at kvs_put time"). The value objects are
  // positioned here at put() time; the (key, ref) tuples stay in the
  // client's KvsTxn until commit/fence ships them. Not pinned: the commit
  // re-ships its bundle, so these entries may expire like any cached object.
  auto bundle = std::dynamic_pointer_cast<const ObjectBundle>(msg.attachment());
  if (!bundle) {
    respond_error(msg, errc::inval, "stage: missing object bundle");
    return;
  }
  for (const ObjPtr& obj : bundle->objects()) {
    ++ops_.puts;
    if (!sharded() && is_master())
      store_.put(obj);
    else
      cache_.put(obj, epoch_);
  }
  respond_ok(msg);
}

void KvsModule::op_unlink(Message& msg) {
  const std::string key = msg.payload().get_string("key");
  if (key.empty() || split_key(key).empty()) {
    respond_error(msg, errc::inval, "unlink: empty key");
    return;
  }
  txns_[txn_key(msg)].tuples.push_back(Tuple{key, Sha1{}});
  respond_ok(msg);
}

void KvsModule::op_mkdir(Message& msg) {
  const std::string key = msg.payload().get_string("key");
  if (key.empty() || split_key(key).empty()) {
    respond_error(msg, errc::inval, "mkdir: empty key");
    return;
  }
  record(msg, key, empty_dir_object());
  respond_ok(msg);
}

// ---------------------------------------------------------------------------
// Commit / fence / flush
// ---------------------------------------------------------------------------

void KvsModule::op_commit(Message& msg) {
  ++ops_.commits;
  // A commit is a single-party fence with a unique name (the same
  // unification flux-core later adopted). Completion — and therefore the
  // response — happens only after the local root has been updated, which is
  // what gives read-your-writes consistency.
  const TxnKey key = txn_key(msg);
  const std::string name = "#commit." + std::to_string(key.first) + "." +
                           std::to_string(key.second) + "." +
                           std::to_string(++commit_seq_);
  // Annotate the fence fields in place — a commit payload can carry large
  // transaction ops, so copying it wholesale just to add two keys is waste.
  Json& payload = msg.mutable_payload();
  payload["name"] = name;
  payload["nprocs"] = 1;
  op_fence(msg);
}

std::optional<KvsModule::Txn> KvsModule::claim_txn(Message& msg) {
  // Claim the caller's transaction: the explicit client-side form ("ops"
  // tuples + object bundle in this very request), plus any ops staged via
  // the legacy endpoint-keyed put/unlink/mkdir RPCs.
  Txn txn;
  if (msg.payload().contains("ops")) {
    auto tuples = tuples_from_json(msg.payload().at("ops"));
    if (!tuples) {
      respond_error(msg, errc::inval, "fence: malformed ops");
      return std::nullopt;
    }
    std::vector<ObjPtr> objects;
    if (msg.attachment()) {
      auto bundle =
          std::dynamic_pointer_cast<const ObjectBundle>(msg.attachment());
      if (!bundle) {
        respond_error(msg, errc::inval, "fence: non-bundle attachment");
        return std::nullopt;
      }
      objects = bundle->objects();
    }
    txn.tuples = std::move(tuples).value();
    for (ObjPtr& obj : objects) {
      // Mirror record(): the single master stores straight away; everyone
      // else caches + pins so the objects survive eviction until the fence
      // completes.
      if (!sharded() && is_master()) {
        store_.put(obj);
      } else {
        cache_.put(obj, epoch_);
        cache_.pin(obj->id);
      }
      txn.objects.push_back(std::move(obj));
    }
  }
  if (auto it = txns_.find(txn_key(msg)); it != txns_.end()) {
    std::move(it->second.tuples.begin(), it->second.tuples.end(),
              std::back_inserter(txn.tuples));
    std::move(it->second.objects.begin(), it->second.objects.end(),
              std::back_inserter(txn.objects));
    txns_.erase(it);
  }
  return txn;
}

void KvsModule::op_fence(Message& msg) {
  ++ops_.fences;
  const std::string name = msg.payload().get_string("name");
  const std::int64_t nprocs = msg.payload().get_int("nprocs", 0);
  if (name.empty() || nprocs <= 0) {
    respond_error(msg, errc::inval, "fence: need name and nprocs > 0");
    return;
  }
  auto txn = claim_txn(msg);
  if (!txn) return;
  if (sharded()) {
    op_fence_sharded(msg, name, nprocs, std::move(*txn));
    return;
  }
  FenceState& fence = fences_[name];
  for (const ObjPtr& obj : txn->objects) fence.pins.push_back(obj->id);
  fence.waiters.push_back(msg);
  fence_add(name, nprocs, {fence_origin_key(msg)}, std::move(txn->tuples),
            txn->objects);
}

std::string KvsModule::fence_origin_key(const Message& msg) {
  if (msg.route.empty())
    return "anon:" + std::to_string(++fence_anon_seq_);
  const RouteHop& origin = msg.route.front();
  return std::to_string(origin.rank) + ":" + std::to_string(origin.id);
}

void KvsModule::fence_add(const std::string& name, std::int64_t nprocs,
                          std::vector<std::string> contributors,
                          std::vector<Tuple> tuples,
                          const std::vector<ObjPtr>& objects) {
  FenceState& fence = fences_[name];
  if (fence.nprocs == 0) fence.nprocs = nprocs;
  if (fence.nprocs != nprocs)
    log::warn("kvs", "fence '", name, "': inconsistent nprocs ", nprocs,
              " vs ", fence.nprocs);
  // Retry detection, uniform for local clients (op_fence) and relayed
  // flushes (op_flush): a contributor this broker already forwarded means
  // some downstream attempt timed out, so the earlier flush carrying its
  // object frames may be lost anywhere up the tree — including in a master
  // that crashed and restarted with only its synced store. The contribution
  // still goes up (the master's identity set collapses the duplicate count);
  // forgetting the forwarded ids makes this wave re-ship its objects too.
  bool retried = false;
  for (const std::string& c : contributors)
    if (!fence.origins.insert(c).second) retried = true;
  if (retried) fence.forwarded_ids.clear();
  std::move(contributors.begin(), contributors.end(),
            std::back_inserter(fence.pending_contributors));
  std::move(tuples.begin(), tuples.end(),
            std::back_inserter(fence.pending_tuples));
  for (const ObjPtr& obj : objects) {
    // SHA1 dedup: redundant values are *reduced* here while the (key, SHA1)
    // tuples above are concatenated — the asymmetry behind Figure 3.
    if (is_master()) continue;  // master already stored them
    if (fence.forwarded_ids.insert(obj->id).second)
      fence.pending_objects.push_back(obj);
  }
  schedule_fence_flush(name);
}

void KvsModule::schedule_fence_flush(const std::string& name) {
  FenceState& fence = fences_[name];
  if (fence.flush_scheduled) return;
  fence.flush_scheduled = true;
  // Posted (not inline) so contributions arriving in the same reactor turn
  // coalesce into one upstream message — the module-level data reduction of
  // the paper's tree overlay.
  broker().executor().post([this, name] { flush_fence(name); });
}

void KvsModule::flush_fence(const std::string& name) {
  auto it = fences_.find(name);
  if (it == fences_.end()) return;
  FenceState& fence = it->second;
  fence.flush_scheduled = false;
  if (fence.pending_contributors.empty()) return;

  if (is_master()) {
    // Tuples of a re-delivered contributor concatenate twice; applying the
    // same (key, SHA1) assignment again is value-idempotent.
    for (std::string& c : fence.pending_contributors)
      fence.counted.insert(std::move(c));
    std::move(fence.pending_tuples.begin(), fence.pending_tuples.end(),
              std::back_inserter(fence.total_tuples));
    fence.pending_contributors.clear();
    fence.pending_tuples.clear();
    master_check_fence(name);
    return;
  }

  ++ops_.flushes_forwarded;
  Json contributors = Json::array();
  for (std::string& c : fence.pending_contributors)
    contributors.push_back(std::move(c));
  Message flush = Message::request(
      "kvs.flush", Json::object({{"name", name},
                                 {"nprocs", fence.nprocs},
                                 {"contributors", std::move(contributors)},
                                 {"tuples", tuples_to_json(fence.pending_tuples)}}));
  if (!fence.pending_objects.empty())
    flush.set_attachment(
        std::make_shared<ObjectBundle>(std::move(fence.pending_objects)));
  fence.pending_contributors.clear();
  fence.pending_tuples.clear();
  fence.pending_objects.clear();
  // forwarded_ids intentionally NOT cleared: dedup spans flush waves.
  broker().forward_upstream(std::move(flush));
}

void KvsModule::op_flush(Message& msg) {
  const std::string name = msg.payload().get_string("name");
  const std::int64_t nprocs = msg.payload().get_int("nprocs", 0);
  std::vector<std::string> contributors;
  if (const Json& jc = msg.payload().at("contributors"); jc.is_array())
    for (const Json& c : jc.as_array())
      if (c.is_string()) contributors.push_back(c.as_string());
  auto tuples = tuples_from_json(msg.payload().at("tuples"));
  if (name.empty() || nprocs <= 0 || contributors.empty() || !tuples) {
    log::error("kvs", "malformed flush for fence '", name, "'");
    return;
  }
  std::vector<ObjPtr> objects;
  if (msg.attachment()) {
    auto bundle = std::dynamic_pointer_cast<const ObjectBundle>(msg.attachment());
    if (!bundle) {
      log::error("kvs", "flush with non-bundle attachment");
      return;
    }
    objects = bundle->objects();
  }
  const std::int64_t shard = msg.payload().get_int("shard", -1);
  if (shard >= 0) {
    if (!sharded() || shard >= static_cast<std::int64_t>(shards_)) {
      log::error("kvs", "flush for unknown shard ", shard);
      return;
    }
    shard_fence_add(name, static_cast<std::uint32_t>(shard), nprocs,
                    std::move(contributors), std::move(tuples).value(),
                    objects);
    return;
  }
  if (is_master())
    for (const ObjPtr& obj : objects) store_.put(obj);
  fence_add(name, nprocs, std::move(contributors), std::move(tuples).value(),
            objects);
}

void KvsModule::master_check_fence(const std::string& name) {
  assert(is_master());
  auto it = fences_.find(name);
  if (it == fences_.end()) return;
  FenceState& fence = it->second;
  const auto counted = static_cast<std::int64_t>(fence.counted.size());
  if (counted < fence.nprocs) return;
  if (counted > fence.nprocs)
    log::warn("kvs", "fence '", name, "': ", counted,
              " contributors for nprocs=", fence.nprocs);
  if (fence.apply_pending) return;
  fence.apply_pending = true;
  // Coalesce: every fence that fuses within this reactor turn shares one
  // root transition (production flux-core batches ready transactions the
  // same way). The posted flush applies the batch in readiness order.
  apply_batch_.emplace_back(name, std::move(fence.total_tuples));
  fence.total_tuples.clear();
  schedule_master_apply();
}

void KvsModule::schedule_master_apply() {
  if (apply_scheduled_) return;
  apply_scheduled_ = true;
  Executor& ex = broker().executor();
  // Rate-limit like the announce: the first flush after an idle window runs
  // this turn (lone-op latency untouched); under sustained load, commits
  // landing at distinct instants wait for one timer and share one apply —
  // one directory freeze and one hash for the whole window.
  if (last_apply_flush_ == TimePoint{} ||
      ex.now() - last_apply_flush_ >= announce_window_) {
    ex.post([this] { flush_apply_batch(); });
    return;
  }
  ex.post_at(last_apply_flush_ + announce_window_,
             [this, tok = std::weak_ptr<const bool>(announce_token_)] {
               if (tok.expired()) return;  // module destroyed (restart)
               flush_apply_batch();
             });
}

void KvsModule::flush_apply_batch() {
  apply_scheduled_ = false;
  last_apply_flush_ = broker().executor().now();
  if (apply_batch_.empty()) return;
  if (broker().failed()) {
    // Master crashed mid-batch: never half-apply. The coalesced committers'
    // RPCs settle with typed host-down errors through the failure path (a
    // restarted master re-counts from retried flushes).
    apply_batch_.clear();
    return;
  }
  std::size_t ntuples = 0;
  for (const auto& [name, tuples] : apply_batch_) ntuples += tuples.size();
  std::vector<Tuple> tuples;
  tuples.reserve(ntuples);
  std::vector<std::string> names;
  names.reserve(apply_batch_.size());
  for (auto& [name, fence_tuples] : apply_batch_) {
    names.push_back(std::move(name));
    std::move(fence_tuples.begin(), fence_tuples.end(),
              std::back_inserter(tuples));
  }
  const std::uint64_t batched = apply_batch_.size();
  apply_batch_.clear();
  ++ops_.apply_batches;
  ops_.apply_batched_fences += batched;
  if (apply_batches_stat_ != nullptr) apply_batches_stat_->inc();
  if (apply_batch_size_ != nullptr) apply_batch_size_->record(batched);
  master_apply(tuples, std::move(names));
}

void KvsModule::master_apply(const std::vector<Tuple>& tuples,
                             std::vector<std::string> fences) {
  assert(is_master());
  store_.set_birth_version(root_version_ + 1);
  root_ref_ = apply_transaction(store_, root_ref_, tuples);
  // Mutation "kvs.skip_version_bump" (tests only): publish a new root under
  // a stale version number — breaks setroot-sequence monotonicity.
  if (!check::mutation("kvs.skip_version_bump")) ++root_version_;
  persist_root(0, root_version_, root_ref_);
  // The master bumps its version here, so the event-path guard in
  // apply_root (version > root_version_) won't fire for it: complete local
  // version waiters directly.
  complete_version_waiters();
  for (auto& f : fences) announce_names_.push_back(std::move(f));
  schedule_announce();
}

void KvsModule::schedule_announce() {
  if (announce_armed_) return;  // already armed; this apply joins it
  Executor& ex = broker().executor();
  const TimePoint now = ex.now();
  if (last_announce_ == TimePoint{} || now - last_announce_ >= announce_window_) {
    flush_announce();
    return;
  }
  announce_armed_ = true;
  ex.post_at(last_announce_ + announce_window_,
             [this, tok = std::weak_ptr<const bool>(announce_token_)] {
               if (tok.expired()) return;  // module destroyed (restart)
               flush_announce();
             });
}

void KvsModule::flush_announce() {
  announce_armed_ = false;
  if (announce_names_.empty()) return;
  if (broker().failed()) {
    // Master crashed between apply and announce: committers settle with
    // typed host-down errors through the broker failure path; the unsent
    // announce dies with this instance.
    announce_names_.clear();
    return;
  }
  ++ops_.announces;
  ops_.announced_fences += announce_names_.size();
  if (announces_stat_ != nullptr) announces_stat_->inc();
  if (announce_size_ != nullptr) announce_size_->record(announce_names_.size());
  last_announce_ = broker().executor().now();
  Json fence_names = Json::array();
  for (auto& f : announce_names_) fence_names.push_back(std::move(f));
  announce_names_.clear();
  broker().publish("kvs.setroot",
                   Json::object({{"version", root_version_},
                                 {"rootref", root_ref_.hex()},
                                 {"fences", std::move(fence_names)}}));
  // The publish delivered the setroot event to this module synchronously
  // (the root broker delivers locally), so every coalesced fence is now
  // completed — all of them against the same (latest) root.
}

void KvsModule::apply_root(const Sha1& ref, std::uint64_t version,
                           const std::vector<std::string>& fences) {
  // Never apply roots out of order (monotonic reads; paper §IV-B).
  if (version > root_version_) {
    if (check::mutation("kvs.skip_apply") && root_version_ >= 1) {
      // Mutation (tests only): complete fences below without adopting the
      // new root — waiters get responses naming a root this instance never
      // serves, breaking read-your-writes.
    } else if (check::mutation("kvs.regress_root") && version >= 3) {
      // Mutation (tests only): adopt the root but roll the version counter
      // backwards — clients sampling the local version see it regress,
      // breaking monotonic reads.
      root_ref_ = ref;
      root_version_ = version - 2;
    } else {
      root_ref_ = ref;
      root_version_ = version;
      complete_version_waiters();
    }
  }
  for (const std::string& name : fences) {
    auto it = fences_.find(name);
    if (it == fences_.end()) continue;
    FenceState fence = std::move(it->second);
    fences_.erase(it);
    for (const Sha1& id : fence.pins) cache_.unpin(id);
    for (const Message& waiter : fence.waiters)
      broker().respond(waiter.respond(Json::object(
          {{"version", root_version_}, {"rootref", root_ref_.hex()}})));
  }
}

void KvsModule::complete_version_waiters() {
  auto it = version_waiters_.begin();
  while (it != version_waiters_.end()) {
    if (it->first <= root_version_) {
      it->second.set_value(root_version_);
      it = version_waiters_.erase(it);
    } else {
      ++it;
    }
  }
}

Future<std::uint64_t> KvsModule::version_reached(std::uint64_t version) {
  Promise<std::uint64_t> p(broker().executor());
  if (root_version_ >= version)
    p.set_value(root_version_);
  else
    version_waiters_.emplace_back(version, p);
  return p.future();
}

// ---------------------------------------------------------------------------
// Sharded masters (paper §VII)
// ---------------------------------------------------------------------------

void KvsModule::refresh_scalar_root() {
  std::uint64_t sum = 0;
  for (const std::uint64_t v : shard_versions_) sum += v;
  root_version_ = sum;
  if (!shard_roots_.empty()) root_ref_ = shard_roots_[0];
  complete_version_waiters();
  auto it = shard_ready_waiters_.begin();
  while (it != shard_ready_waiters_.end()) {
    if (shard_versions_[it->first] >= 1) {
      auto promise = it->second;
      it = shard_ready_waiters_.erase(it);
      promise.set_value(1);
    } else {
      ++it;
    }
  }
}

Future<std::uint64_t> KvsModule::shard_ready(std::uint32_t shard) {
  Promise<std::uint64_t> p(broker().executor());
  if (shard_versions_[shard] >= 1)
    p.set_value(shard_versions_[shard]);
  else
    shard_ready_waiters_.emplace_back(shard, p);
  return p.future();
}

void KvsModule::op_fence_sharded(Message& msg, const std::string& name,
                                 std::int64_t nprocs, Txn txn) {
  // Split the transaction into per-shard parts. Objects follow the tuples
  // that reference them (an object referenced from two shards ships to
  // both — content addressing makes that a harmless duplicate).
  std::vector<std::vector<Tuple>> tuples_by(shards_);
  std::vector<std::vector<ObjPtr>> objects_by(shards_);
  std::unordered_map<Sha1, ObjPtr> by_id;
  for (const ObjPtr& obj : txn.objects) by_id.emplace(obj->id, obj);
  std::vector<std::unordered_set<Sha1>> routed(shards_);
  for (Tuple& t : txn.tuples) {
    const std::uint32_t s = shard_map_.shard_of(t.key);
    if (auto it = by_id.find(t.ref);
        it != by_id.end() && routed[s].insert(t.ref).second)
      objects_by[s].push_back(it->second);
    tuples_by[s].push_back(std::move(t));
  }

  // Writes against a dead shard fail fast instead of hanging the fence.
  for (std::uint32_t s = 0; s < shards_; ++s) {
    if (!tuples_by[s].empty() && shard_dead_[s]) {
      for (const ObjPtr& obj : txn.objects) cache_.unpin(obj->id);
      respond_error(msg, errc::host_down,
                    "fence: master of shard " + std::to_string(s) + " is down");
      return;
    }
  }

  ShardedFence& fence = sharded_fences_[name];
  if (fence.parts.empty()) fence.parts.resize(shards_);
  if (fence.nprocs == 0) fence.nprocs = nprocs;
  for (const ObjPtr& obj : txn.objects) fence.pins.push_back(obj->id);
  fence.waiters.push_back(msg);
  const std::string origin = fence_origin_key(msg);

  // EVERY live shard receives this participant's contribution — empty parts
  // included — so each master independently detects completion at nprocs
  // and the coordinator fuses exactly once per fence.
  for (std::uint32_t s = 0; s < shards_; ++s) {
    if (shard_dead_[s]) continue;
    shard_fence_add(name, s, nprocs, {origin}, std::move(tuples_by[s]),
                    objects_by[s]);
  }
}

void KvsModule::shard_fence_add(const std::string& name, std::uint32_t shard,
                                std::int64_t nprocs,
                                std::vector<std::string> contributors,
                                std::vector<Tuple> tuples,
                                const std::vector<ObjPtr>& objects) {
  ShardedFence& fence = sharded_fences_[name];
  if (fence.parts.empty()) fence.parts.resize(shards_);
  if (fence.nprocs == 0) fence.nprocs = nprocs;
  if (fence.nprocs != nprocs)
    log::warn("kvs", "fence '", name, "': inconsistent nprocs ", nprocs,
              " vs ", fence.nprocs);
  ShardPart& part = fence.parts[shard];
  if (!tuples.empty()) part.touched = true;
  // Same retry detection as the single-master fence_add: a re-seen
  // contributor means an earlier flush (and its object frames) may be lost,
  // so this wave re-ships its objects.
  bool retried = false;
  for (const std::string& c : contributors)
    if (!part.origins.insert(c).second) retried = true;
  if (retried) part.forwarded_ids.clear();

  if (is_shard_master(shard)) {
    for (const ObjPtr& obj : objects) store_.put(obj);
    for (std::string& c : contributors) part.counted.insert(std::move(c));
    std::move(tuples.begin(), tuples.end(),
              std::back_inserter(part.total_tuples));
    const auto counted = static_cast<std::int64_t>(part.counted.size());
    if (counted >= fence.nprocs && !part.applied) {
      if (counted > fence.nprocs)
        log::warn("kvs", "fence '", name, "' shard ", shard, ": ", counted,
                  " contributors for nprocs=", fence.nprocs);
      // May re-enter this module (coordinator fuse) and erase the fence
      // state — nothing after this call may touch `fence`/`part`.
      shard_master_apply(name, shard);
    }
    return;
  }

  std::move(contributors.begin(), contributors.end(),
            std::back_inserter(part.pending_contributors));
  std::move(tuples.begin(), tuples.end(),
            std::back_inserter(part.pending_tuples));
  for (const ObjPtr& obj : objects)
    if (part.forwarded_ids.insert(obj->id).second)
      part.pending_objects.push_back(obj);
  if (!part.flush_scheduled) {
    part.flush_scheduled = true;
    // Posted, like the single-master flush: same-turn contributions
    // coalesce into one message per shard-tree edge.
    broker().executor().post(
        [this, name, shard] { flush_shard_fence(name, shard); });
  }
}

void KvsModule::flush_shard_fence(const std::string& name,
                                  std::uint32_t shard) {
  auto it = sharded_fences_.find(name);
  if (it == sharded_fences_.end()) return;
  ShardPart& part = it->second.parts[shard];
  part.flush_scheduled = false;
  if (part.pending_contributors.empty()) return;
  if (shard_dead_[shard]) {
    // Undeliverable; the coordinator fails this fence.
    part.pending_contributors.clear();
    part.pending_tuples.clear();
    part.pending_objects.clear();
    return;
  }
  ++ops_.flushes_forwarded;
  Json contributors = Json::array();
  for (std::string& c : part.pending_contributors)
    contributors.push_back(std::move(c));
  Message flush = Message::request(
      "kvs.flush",
      Json::object({{"name", name},
                    {"nprocs", it->second.nprocs},
                    {"contributors", std::move(contributors)},
                    {"shard", static_cast<std::int64_t>(shard)},
                    {"tuples", tuples_to_json(part.pending_tuples)}}));
  if (!part.pending_objects.empty())
    flush.set_attachment(
        std::make_shared<ObjectBundle>(std::move(part.pending_objects)));
  part.pending_contributors.clear();
  part.pending_tuples.clear();
  part.pending_objects.clear();
  // forwarded_ids intentionally NOT cleared: dedup spans flush waves.
  const auto up = shard_parent_live(shard, broker().rank());
  if (up) broker().forward_direct(*up, std::move(flush));
}

void KvsModule::shard_master_apply(const std::string& name,
                                   std::uint32_t shard) {
  auto it = sharded_fences_.find(name);
  if (it == sharded_fences_.end()) return;
  ShardPart& part = it->second.parts[shard];
  part.applied = true;

  const auto t0 = std::chrono::steady_clock::now();
  store_.set_birth_version(root_version_ + 1);
  shard_roots_[shard] =
      apply_transaction(store_, shard_roots_[shard], part.total_tuples);
  ++shard_versions_[shard];
  part.total_tuples.clear();
  persist_root(shard, shard_versions_[shard], shard_roots_[shard]);
  if (shard_apply_ns_) shard_apply_ns_->record(wall_ns_since(t0));
  if (shard_commits_) shard_commits_->inc();
  refresh_scalar_root();

  const std::uint64_t version = shard_versions_[shard];
  const Sha1 root = shard_roots_[shard];
  Json ev = Json::object({{"shard", static_cast<std::int64_t>(shard)},
                          {"version", version},
                          {"rootref", root.hex()}});
  broker().publish("kvs.setroot." + std::to_string(shard), std::move(ev));
  // Report to the coordinator LAST: fusing re-enters this module
  // ("kvs.fence.done") and erases the fence state.
  if (coord_) {
    coord_->shard_done(name, shard, version, root);
  } else {
    Json done = Json::object({{"name", name},
                              {"shard", static_cast<std::int64_t>(shard)},
                              {"version", version},
                              {"rootref", root.hex()}});
    broker().forward_direct(0, Message::request("kvs.shard_done",
                                                std::move(done)));
  }
}

void KvsModule::op_shard_done(Message& msg) {
  // Master -> coordinator completion report; fire-and-forget.
  if (!coord_) return;
  const std::string name = msg.payload().get_string("name");
  const std::int64_t shard = msg.payload().get_int("shard", -1);
  const auto version =
      static_cast<std::uint64_t>(msg.payload().get_int("version", 0));
  const auto ref = Sha1::parse(msg.payload().get_string("rootref"));
  if (name.empty() || shard < 0 ||
      shard >= static_cast<std::int64_t>(shards_) || !ref)
    return;
  coord_->shard_done(name, static_cast<std::uint32_t>(shard), version, *ref);
}

void KvsModule::on_shard_setroot(const Message& msg) {
  const std::int64_t shard = msg.payload().get_int("shard", -1);
  const auto version =
      static_cast<std::uint64_t>(msg.payload().get_int("version", 0));
  const auto ref = Sha1::parse(msg.payload().get_string("rootref"));
  if (shard < 0 || shard >= static_cast<std::int64_t>(shards_) || !ref) {
    log::error("kvs", "malformed shard setroot event");
    return;
  }
  const auto s = static_cast<std::uint32_t>(shard);
  // Failover / post-rejoin announcement: a "master" field re-binds the shard
  // to a new authoritative rank. Adopt it before the version check so the
  // shard counts as live again even on ranks that raced ahead.
  if (msg.payload().contains("master")) {
    const auto m = static_cast<NodeId>(msg.payload().get_int("master", -1));
    if (m < broker().size() && shard_masters_[s] != m) {
      shard_masters_[s] = m;
      shard_dead_[s] = false;
      pending_failover_.erase(s);
      if (coord_) coord_->shard_revived(s, version, *ref);
      log::info("kvs", "rank ", broker().rank(), ": shard ", s,
                " now mastered by rank ", m);
    }
  }
  // Per-shard monotonic reads: a shard's roots apply in version order.
  if (version > shard_versions_[s]) {
    shard_versions_[s] = version;
    shard_roots_[s] = *ref;
    refresh_scalar_root();
  }
}

void KvsModule::on_fence_done(const Message& msg) {
  const std::string name = msg.payload().get_string("name");
  const bool failed = msg.payload().get_bool("failed", false);
  const Json& vv = msg.payload().at("vv");
  const Json& rootrefs = msg.payload().at("rootrefs");
  if (vv.is_array() && rootrefs.is_array()) {
    const auto& versions = vv.as_array();
    const auto& roots = rootrefs.as_array();
    const std::size_t n =
        std::min<std::size_t>({shards_, versions.size(), roots.size()});
    for (std::size_t s = 0; s < n; ++s) {
      const auto version = static_cast<std::uint64_t>(versions[s].as_int());
      if (version <= shard_versions_[s]) continue;
      const auto ref = Sha1::parse(roots[s].as_string());
      if (!ref) continue;
      shard_versions_[s] = version;
      shard_roots_[s] = *ref;
    }
  }
  // Adopt ALL shard roots before responding: read-your-writes plus
  // cross-shard visibility of everything the fence committed.
  refresh_scalar_root();

  auto it = sharded_fences_.find(name);
  if (it == sharded_fences_.end()) return;
  ShardedFence fence = std::move(it->second);
  sharded_fences_.erase(it);
  for (const Sha1& id : fence.pins) cache_.unpin(id);
  // Even when the coordinator salvaged the live shards, writes this broker
  // routed to a now-dead shard are gone — its waiters must hear that.
  bool lost_local_writes = false;
  for (std::uint32_t s = 0; s < fence.parts.size(); ++s)
    if (shard_dead_[s] && fence.parts[s].touched) lost_local_writes = true;
  if (failed || lost_local_writes) {
    for (const Message& waiter : fence.waiters)
      respond_error(waiter, errc::host_down,
                    "fence '" + name + "': a shard master died");
    return;
  }
  Json vv_out = Json::array();
  for (const std::uint64_t v : shard_versions_)
    vv_out.push_back(static_cast<std::int64_t>(v));
  for (const Message& waiter : fence.waiters)
    broker().respond(waiter.respond(
        Json::object({{"version", root_version_},
                      {"rootref", root_ref_.hex()},
                      {"vv", vv_out}})));
}

std::optional<NodeId> KvsModule::shard_parent_live(std::uint32_t shard,
                                                   NodeId rank) const {
  // The per-shard trees are arithmetic (ShardMap, relabeled so the current
  // master — home or failed-over successor — is the tree root); unlike the
  // session tree they have no heal_around, so climb over dead interior
  // ranks here.
  const NodeId master = shard_masters_[shard];
  auto up = shard_map_.parent(shard, rank, master);
  while (up && dead_ranks_.contains(*up))
    up = shard_map_.parent(shard, *up, master);
  return up;
}

void KvsModule::on_live_down(const Message& msg) {
  const auto dead = static_cast<NodeId>(msg.payload().get_int("rank", -1));
  if (dead >= broker().size()) return;
  dead_ranks_.insert(dead);
  const auto s = mastered_by(dead);
  if (!s || shard_dead_[*s]) return;
  shard_dead_[*s] = true;
  log::warn("kvs", "rank ", broker().rank(), ": shard ", *s,
            " master (rank ", dead, ") died");
  // Gets blocked on this shard's bootstrap can never proceed.
  auto it = shard_ready_waiters_.begin();
  while (it != shard_ready_waiters_.end()) {
    if (it->first == *s) {
      auto promise = it->second;
      it = shard_ready_waiters_.erase(it);
      promise.set_error(Error(errc::host_down, "shard master died"));
    } else {
      ++it;
    }
  }
  if (coord_) coord_->shard_failed(*s);
  // Failover: the designated successor promotes itself two epochs from now
  // (hb-driven, so detection and takeover are both heartbeat-clocked). Every
  // rank schedules the same deadline; only the successor acts on it, and a
  // setroot-with-master announcement cancels it everywhere.
  if (failover_ && !pending_failover_.contains(*s))
    pending_failover_[*s] = epoch_ + 2;
}

NodeId KvsModule::successor_for(std::uint32_t shard) const {
  // Next live rank after the dead master in ring order. The event plane is
  // root-sequenced, so every rank has seen the same ordered live.down
  // history and computes the same successor — no election needed.
  const NodeId start = shard_masters_[shard];
  for (std::uint32_t i = 1; i < broker().size(); ++i) {
    const NodeId cand = (start + i) % broker().size();
    if (!dead_ranks_.contains(cand)) return cand;
  }
  return start;
}

void KvsModule::check_failovers() {
  auto it = pending_failover_.begin();
  while (it != pending_failover_.end()) {
    const std::uint32_t s = it->first;
    if (!shard_dead_[s]) {  // someone already took over
      it = pending_failover_.erase(it);
      continue;
    }
    if (epoch_ < it->second || successor_for(s) != broker().rank()) {
      ++it;
      continue;
    }
    it = pending_failover_.erase(it);
    promote_shard(s);
  }
}

void KvsModule::promote_shard(std::uint32_t shard) {
  // Take over a dead shard with an EMPTY root at version+1. The dead
  // master's tree is unrecoverable (it held the only authoritative copy),
  // so we choose explicit, consistent data loss — readers see ENOENT at a
  // strictly higher version — over hanging fences or serving torn state.
  log::warn("kvs", "rank ", broker().rank(), ": taking over shard ", shard,
            " from dead rank ", shard_masters_[shard]);
  ObjPtr empty = empty_dir_object();
  const Sha1 root = empty->id;
  store_.put(std::move(empty));
  shard_masters_[shard] = broker().rank();
  shard_dead_[shard] = false;
  shard_roots_[shard] = root;
  ++shard_versions_[shard];
  const std::uint64_t version = shard_versions_[shard];
  if (!my_shard_) {
    my_shard_ = shard;
    obs::StatsRegistry& reg = broker().stats_registry();
    const std::string prefix = "kvs.shard." + std::to_string(shard);
    shard_commits_ = &reg.counter(prefix + ".commits");
    shard_faults_served_ = &reg.counter(prefix + ".faults_served");
    shard_apply_ns_ = &reg.histogram(prefix + ".apply_ns");
  }
  refresh_scalar_root();
  if (coord_) coord_->shard_revived(shard, version, root);
  Json ev = Json::object({{"shard", static_cast<std::int64_t>(shard)},
                          {"version", version},
                          {"rootref", root.hex()},
                          {"master", broker().rank()}});
  broker().publish("kvs.setroot." + std::to_string(shard), std::move(ev));
}

Task<void> KvsModule::resync_after_rejoin() {
  try {
    Message req = Message::request("kvs.get_version", Json::object());
    req.nodeid = kNodeUpstream;
    Message resp = co_await broker().module_rpc(*this, std::move(req));
    if (!resp.ok()) co_return;
    if (!sharded()) {
      const auto version =
          static_cast<std::uint64_t>(resp.payload().get_int("version", 0));
      const auto ref = Sha1::parse(resp.payload().get_string("rootref"));
      if (ref && version > root_version_) apply_root(*ref, version, {});
      co_return;
    }
    // Adopt masters first: shard-tree parent links and write authority both
    // key off them.
    if (resp.payload().contains("masters") &&
        resp.payload().at("masters").is_array()) {
      const auto& ms = resp.payload().at("masters").as_array();
      for (std::uint32_t s = 0; s < shards_ && s < ms.size(); ++s) {
        if (!ms[s].is_int()) continue;
        const auto m = static_cast<NodeId>(ms[s].as_int());
        if (m < broker().size() && shard_masters_[s] != m) {
          shard_masters_[s] = m;
          shard_dead_[s] = false;
          pending_failover_.erase(s);
        }
      }
    }
    if (resp.payload().contains("vv") && resp.payload().at("vv").is_array() &&
        resp.payload().contains("rootrefs") &&
        resp.payload().at("rootrefs").is_array()) {
      const auto& vv = resp.payload().at("vv").as_array();
      const auto& roots = resp.payload().at("rootrefs").as_array();
      const std::size_t n =
          std::min<std::size_t>({shards_, vv.size(), roots.size()});
      for (std::size_t s = 0; s < n; ++s) {
        if (!vv[s].is_int()) continue;
        const auto version = static_cast<std::uint64_t>(vv[s].as_int());
        const auto ref = Sha1::parse(roots[s].as_string());
        if (!ref || version <= shard_versions_[s]) continue;
        shard_versions_[s] = version;
        shard_roots_[s] = *ref;
      }
    }
    refresh_scalar_root();
    // A restarted broker that still masters a shard: with a durable backend,
    // start() already recovered the shard's tree from its log — re-assert
    // mastership one version up so peers that raced ahead of the start()
    // publish converge and the coordinator marks the shard revived. Without
    // one, the crashed store is unrecoverable: re-bootstrap EMPTY at
    // adopted_version + 1 (same explicit data-loss policy as hb failover).
    for (std::uint32_t s = 0; s < shards_; ++s) {
      if (shard_masters_[s] != broker().rank()) continue;
      if (s < recovered_versions_.size() && recovered_versions_[s] != 0 &&
          shard_versions_[s] <= recovered_versions_[s]) {
        ++shard_versions_[s];
        recovered_versions_[s] = shard_versions_[s];
        persist_root(s, shard_versions_[s], shard_roots_[s]);
        refresh_scalar_root();
        Json ev = Json::object({{"shard", static_cast<std::int64_t>(s)},
                                {"version", shard_versions_[s]},
                                {"rootref", shard_roots_[s].hex()},
                                {"master", broker().rank()}});
        broker().publish("kvs.setroot." + std::to_string(s), std::move(ev));
        continue;
      }
      ObjPtr empty = empty_dir_object();
      const Sha1 root = empty->id;
      store_.put(std::move(empty));
      shard_roots_[s] = root;
      ++shard_versions_[s];
      const std::uint64_t version = shard_versions_[s];
      persist_root(s, version, root);
      refresh_scalar_root();
      Json ev = Json::object({{"shard", static_cast<std::int64_t>(s)},
                              {"version", version},
                              {"rootref", root.hex()},
                              {"master", broker().rank()}});
      broker().publish("kvs.setroot." + std::to_string(s), std::move(ev));
    }
  } catch (const FluxException& ex) {
    log::warn("kvs", "rank ", broker().rank(),
              ": post-rejoin resync failed: ", ex.what());
  }
}

// ---------------------------------------------------------------------------
// Lookups (get / lookup_ref / fault)
// ---------------------------------------------------------------------------

Task<ObjPtr> KvsModule::lookup_object(Sha1 ref, int shard) {
  co_return co_await lookup_chain(ref, {}, shard);
}

Task<ObjPtr> KvsModule::lookup_chain(Sha1 ref, std::vector<std::string> walk,
                                     int shard) {
  std::vector<ObjPtr> objs =
      co_await ensure_objects(std::vector<Sha1>(1, ref), std::move(walk), shard);
  co_return objs[0];
}

Task<std::vector<ObjPtr>> KvsModule::ensure_objects(
    std::vector<Sha1> refs, std::vector<std::string> walk, int shard) {
  const bool authoritative =
      shard < 0 ? is_master()
                : is_shard_master(static_cast<std::uint32_t>(shard));
  std::vector<ObjPtr> out(refs.size());
  if (authoritative) {
    for (std::size_t i = 0; i < refs.size(); ++i) out[i] = store_.get(refs[i]);
    co_return out;
  }

  // Partition the batch: local hits / misses already in flight (join them) /
  // fresh misses this call must fetch. A duplicate ref inside one batch
  // joins the first occurrence's fault.
  std::vector<Future<ObjPtr>> joined;
  std::vector<std::size_t> joined_idx;
  std::vector<Sha1> fresh;
  std::vector<std::size_t> fresh_idx;
  for (std::size_t i = 0; i < refs.size(); ++i) {
    out[i] = cache_.get(refs[i], epoch_);
    if (out[i]) continue;
    if (auto it = faults_.find(refs[i]); it != faults_.end()) {
      joined.push_back(it->second.future());
      joined_idx.push_back(i);
      continue;
    }
    Promise<ObjPtr> promise(broker().executor());
    faults_.emplace(refs[i], promise);
    fresh.push_back(refs[i]);
    fresh_idx.push_back(i);
  }

  if (!fresh.empty()) {
    // One upstream round-trip for the whole batch.
    ++ops_.faults_issued;
    // The chain hint only helps if we are the ones fetching the walk base;
    // otherwise the caller re-batches from the first missing link.
    const bool send_walk = !walk.empty() && fresh.front() == refs.front();
    Json jrefs = Json::array();
    for (const Sha1& r : fresh) jrefs.push_back(r.hex());
    Json payload = Json::object({{"refs", std::move(jrefs)}});
    if (send_walk) {
      Json names = Json::array();
      for (const std::string& n : walk) names.push_back(n);
      payload["walk"] = std::move(names);
    }
    if (shard >= 0) payload["shard"] = static_cast<std::int64_t>(shard);

    // A dropped/corrupted batch must taint or retry, never hang: with a
    // session RPC policy the attempt gets a deadline (+ retries); without
    // one it behaves like the legacy fault path.
    const RetryPolicy policy = broker().session().config().rpc;
    Message resp;
    bool have_resp = false;
    Duration backoff = policy.backoff;
    int attempts_left = policy.has_retries() ? policy.retries : 0;
    for (;;) {
      Message req = Message::request("kvs.load", payload);
      bool failed = false;
      try {
        if (shard < 0) {
          req.nodeid = kNodeUpstream;  // the local module is the requester
          if (policy.has_timeout())
            resp = co_await broker().module_rpc(*this, std::move(req),
                                                policy.timeout);
          else
            resp = co_await broker().module_rpc(*this, std::move(req));
        } else {
          // Climb the shard's own tree over a direct edge; a dead master
          // settles the RPC with EHOSTDOWN (misses surface as nulls).
          const auto up = shard_parent_live(static_cast<std::uint32_t>(shard),
                                            broker().rank());
          if (!up) {
            failed = true;
          } else if (policy.has_timeout()) {
            resp = co_await broker().direct_rpc(*this, *up, std::move(req),
                                                policy.timeout);
          } else {
            resp = co_await broker().direct_rpc(*this, *up, std::move(req));
          }
        }
      } catch (const FluxException&) {
        failed = true;
      }
      if (!failed) {
        have_resp = true;
        break;
      }
      if (attempts_left-- <= 0) break;
      ++ops_.faults_issued;  // the retry is another upstream round-trip
      if (backoff.count() > 0) {
        co_await sleep_for(broker().executor(), backoff);
        backoff *= 2;
      }
    }

    // Cache everything the bundle brought (requested + walked chain) and
    // settle every parked fault it satisfies — walk prefetches routinely
    // complete fetches other waiters are parked on.
    std::unordered_map<Sha1, ObjPtr> got;
    if (have_resp && resp.ok()) {
      if (auto bundle = std::dynamic_pointer_cast<const ObjectBundle>(
              resp.attachment())) {
        for (const ObjPtr& obj : bundle->objects()) {
          if (!obj) continue;
          cache_.put(obj, epoch_);
          ++ops_.objects_faulted;
          got.emplace(obj->id, obj);
          if (auto it = faults_.find(obj->id); it != faults_.end()) {
            auto promise = it->second;
            faults_.erase(it);
            promise.set_value(obj);
          }
        }
      }
    }
    // Settle what's left of our fresh set as misses (unknown upstream, or
    // the fetch failed). Promises are first-settle-wins, so a concurrent
    // batch that already delivered an id makes these no-ops.
    for (std::size_t k = 0; k < fresh.size(); ++k) {
      if (auto it = faults_.find(fresh[k]); it != faults_.end()) {
        auto promise = it->second;
        faults_.erase(it);
        promise.set_value(nullptr);
      }
      auto it = got.find(fresh[k]);
      out[fresh_idx[k]] = it != got.end() ? it->second
                                          : cache_.get(fresh[k], epoch_);
    }
  }

  for (std::size_t k = 0; k < joined.size(); ++k)
    out[joined_idx[k]] = co_await joined[k];
  co_return out;
}

Task<void> KvsModule::serve_load(Message req, std::vector<Sha1> refs,
                                 std::vector<std::string> walk, int shard) {
  const bool authoritative =
      shard < 0 ? is_master()
                : is_shard_master(static_cast<std::uint32_t>(shard));
  std::vector<ObjPtr> objs = co_await ensure_objects(refs, walk, shard);

  std::vector<ObjPtr> found;
  std::unordered_set<Sha1> included;
  const auto include = [&](const ObjPtr& obj) {
    if (obj && included.insert(obj->id).second) found.push_back(obj);
  };
  Json missing = Json::array();
  for (std::size_t i = 0; i < refs.size(); ++i) {
    if (objs[i])
      include(objs[i]);
    else
      missing.push_back(refs[i].hex());
  }

  // Speculative chain walk from refs[0]: bundle every object the named path
  // crosses, so a cold downstream get costs one round-trip total. A link
  // missing here is itself chain-faulted upstream in one batched hop.
  ObjPtr node = objs.empty() ? nullptr : objs[0];
  std::size_t wi = 0;
  while (node && wi < walk.size()) {
    if (!node->is_dir()) break;
    const auto& entries = node->entries();
    auto it = entries.find(walk[wi]);
    if (it == entries.end()) break;
    const auto ref = Sha1::parse(it->second.as_string());
    if (!ref) break;
    ObjPtr next = authoritative ? store_.get(*ref) : cache_.get(*ref, epoch_);
    if (!next) {
      std::vector<std::string> rest(
          walk.begin() + static_cast<std::ptrdiff_t>(wi) + 1, walk.end());
      std::vector<ObjPtr> fetched =
          co_await ensure_objects(std::vector<Sha1>(1, *ref), std::move(rest), shard);
      next = fetched[0];
    }
    if (!next) break;
    include(next);
    node = std::move(next);
    ++wi;
  }

  if (authoritative && shard >= 0 && shard_faults_served_)
    shard_faults_served_->inc();
  Message resp = req.respond(Json::object({{"missing", std::move(missing)}}));
  if (!found.empty())
    resp.set_attachment(std::make_shared<ObjectBundle>(std::move(found)));
  broker().respond(std::move(resp));
}

void KvsModule::op_load(Message& msg) {
  ++ops_.loads_served;
  const Json& jrefs = msg.payload().at("refs");
  if (!jrefs.is_array() || jrefs.as_array().empty()) {
    respond_error(msg, errc::inval, "load: need refs[]");
    return;
  }
  std::vector<Sha1> refs;
  refs.reserve(jrefs.as_array().size());
  for (const Json& r : jrefs.as_array()) {
    std::optional<Sha1> ref;
    if (r.is_string()) ref = Sha1::parse(r.as_string());
    if (!ref) {
      respond_error(msg, errc::inval, "load: bad ref");
      return;
    }
    refs.push_back(*ref);
  }
  std::vector<std::string> walk;
  const Json& jwalk = msg.payload().at("walk");
  if (jwalk.is_array())
    for (const Json& n : jwalk.as_array())
      if (n.is_string()) walk.push_back(n.as_string());
  const int shard = static_cast<int>(msg.payload().get_int("shard", -1));
  co_spawn(broker().executor(),
           serve_load(std::move(msg), std::move(refs), std::move(walk), shard),
           "kvs.load");
}

void KvsModule::op_fault(Message& msg) {
  ++ops_.faults_served;
  const auto ref = Sha1::parse(msg.payload().get_string("ref"));
  if (!ref) {
    respond_error(msg, errc::inval, "fault: bad ref");
    return;
  }
  const std::int64_t shard = msg.payload().get_int("shard", -1);
  const bool authoritative =
      shard < 0 ? is_master()
                : is_shard_master(static_cast<std::uint32_t>(shard));
  // Fast path: local hit.
  ObjPtr obj = authoritative ? store_.get(*ref) : cache_.get(*ref, epoch_);
  if (obj) {
    if (authoritative && shard >= 0 && shard_faults_served_)
      shard_faults_served_->inc();
    Message resp = msg.respond();
    resp.set_data(object_frame(obj));
    broker().respond(std::move(resp));
    return;
  }
  if (authoritative) {
    respond_error(msg, errc::noent, "fault: unknown object " + ref->short_hex());
    return;
  }
  // Slow path: fault it in from our own parent, then serve.
  co_spawn(
      broker().executor(),
      [](KvsModule* self, Message req, Sha1 id, int s) -> Task<void> {
        ObjPtr found = co_await self->lookup_object(id, s);
        if (!found) {
          self->respond_error(req, errc::noent,
                              "fault: unknown object " + id.short_hex());
          co_return;
        }
        Message resp = req.respond();
        resp.set_data(object_frame(found));
        self->broker().respond(std::move(resp));
      }(this, std::move(msg), *ref, static_cast<int>(shard)),
      "kvs.fault");
}

void KvsModule::op_get(Message& msg) {
  ++ops_.gets;
  co_spawn(broker().executor(), do_get(std::move(msg), /*ref_only=*/false),
           "kvs.get");
}

void KvsModule::op_lookup_ref(Message& msg) {
  co_spawn(broker().executor(), do_get(std::move(msg), /*ref_only=*/true),
           "kvs.lookup_ref");
}

Task<void> KvsModule::do_get_root_sharded(Message req, bool ref_only,
                                          bool want_dir) {
  if (ref_only) {
    // The scalar root mirror is shard 0's root (as is the "rootref" every
    // commit/fence response reports).
    if (shard_versions_[0] == 0) {
      try {
        co_await shard_ready(0);
      } catch (const FluxException&) {
        respond_error(req, errc::host_down, "lookup_ref: shard 0 master down");
        co_return;
      }
    }
    respond_ok(req, Json::object({{"ref", shard_roots_[0].hex()}}));
    co_return;
  }
  if (!want_dir) {
    respond_error(req, errc::is_dir, "get: '.' is a directory");
    co_return;
  }
  // The logical root directory is the union of the shards' top levels.
  std::set<std::string> merged;
  for (std::uint32_t s = 0; s < shards_; ++s) {
    if (shard_dead_[s]) continue;
    if (shard_versions_[s] == 0) {
      try {
        co_await shard_ready(s);
      } catch (const FluxException&) {
        continue;
      }
    }
    ObjPtr dir = co_await lookup_object(shard_roots_[s], static_cast<int>(s));
    if (!dir || !dir->is_dir()) continue;
    for (const auto& [name, ref] : dir->entries()) merged.insert(name);
  }
  Json names = Json::array();
  for (const std::string& name : merged) names.push_back(name);
  respond_ok(req, Json::object({{"dir", true}, {"entries", std::move(names)}}));
}

Task<void> KvsModule::do_get(Message req, bool ref_only) {
  const std::string key = req.payload().get_string("key");
  const bool want_dir = req.payload().get_bool("dir", false);
  const auto path = split_key(key);

  int shard = -1;
  Sha1 cur;
  if (sharded()) {
    if (path.empty()) {
      co_await do_get_root_sharded(std::move(req), ref_only, want_dir);
      co_return;
    }
    const std::uint32_t s = shard_map_.shard_of(path[0]);
    shard = static_cast<int>(s);
    if (shard_dead_[s]) {
      respond_error(req, errc::host_down,
                    "get: master of shard " + std::to_string(s) + " is down");
      co_return;
    }
    if (shard_versions_[s] == 0) {
      try {
        co_await shard_ready(s);
      } catch (const FluxException&) {
        respond_error(req, errc::host_down,
                      "get: master of shard " + std::to_string(s) + " is down");
        co_return;
      }
    }
    cur = shard_roots_[s];
  } else {
    if (root_version_ == 0) {
      try {
        co_await version_reached(1);
      } catch (const FluxException& e) {
        respond_error(req, e.error().code, "get: no root before shutdown");
        co_return;
      }
    }
    cur = root_ref_;
  }

  for (std::size_t ci = 0; ci < path.size(); ++ci) {
    const std::string& component = path[ci];
    // Chain lookup: a cold miss batches the entire remaining path into one
    // upstream round-trip, so the later iterations (and the terminal value
    // fetch) hit the cache.
    ObjPtr dir = co_await lookup_chain(
        cur,
        std::vector<std::string>(path.begin() + static_cast<std::ptrdiff_t>(ci),
                                 path.end()),
        shard);
    if (!dir) {
      if (shard >= 0 && shard_dead_[static_cast<std::uint32_t>(shard)])
        respond_error(req, errc::host_down, "get: shard master died");
      else
        respond_error(req, errc::noent, "get: dangling ref on path of " + key);
      co_return;
    }
    if (!dir->is_dir()) {
      respond_error(req, errc::not_dir, "get: '" + key + "' crosses a value");
      co_return;
    }
    const auto& entries = dir->entries();
    auto it = entries.find(component);
    if (it == entries.end()) {
      respond_error(req, errc::noent, "get: no such key '" + key + "'");
      co_return;
    }
    const auto ref = Sha1::parse(it->second.as_string());
    if (!ref) {
      respond_error(req, errc::proto, "get: corrupt directory entry");
      co_return;
    }
    cur = *ref;
  }

  if (ref_only) {
    respond_ok(req, Json::object({{"ref", cur.hex()}}));
    co_return;
  }

  ObjPtr obj = co_await lookup_object(cur, shard);
  if (!obj) {
    if (shard >= 0 && shard_dead_[static_cast<std::uint32_t>(shard)])
      respond_error(req, errc::host_down, "get: shard master died");
    else
      respond_error(req, errc::noent, "get: dangling terminal ref for " + key);
    co_return;
  }
  if (obj->is_dir()) {
    if (!want_dir) {
      respond_error(req, errc::is_dir, "get: '" + key + "' is a directory");
      co_return;
    }
    Json names = Json::array();
    for (const auto& [name, ref] : obj->entries()) names.push_back(name);
    respond_ok(req, Json::object({{"dir", true}, {"entries", std::move(names)}}));
    co_return;
  }
  if (want_dir) {
    respond_error(req, errc::not_dir, "get: '" + key + "' is not a directory");
    co_return;
  }
  // Carry the terminal ref alongside the value frame: both come from the
  // same walk of the same root snapshot, so watchers get a consistent
  // (ref, value) pair in one round-trip.
  Message resp = req.respond(Json::object({{"ref", cur.hex()}}));
  resp.set_data(object_frame(obj));
  broker().respond(std::move(resp));
}

// ---------------------------------------------------------------------------
// Versions / stats / cache control
// ---------------------------------------------------------------------------

void KvsModule::op_get_version(Message& msg) {
  Json out = Json::object({{"version", root_version_},
                           {"rootref", root_ref_.hex()}});
  if (sharded()) {
    Json vv = Json::array();
    Json rootrefs = Json::array();
    Json masters = Json::array();
    for (std::uint32_t s = 0; s < shards_; ++s) {
      vv.push_back(static_cast<std::int64_t>(shard_versions_[s]));
      rootrefs.push_back(shard_roots_[s].hex());
      masters.push_back(static_cast<std::int64_t>(shard_masters_[s]));
    }
    out["vv"] = std::move(vv);
    out["rootrefs"] = std::move(rootrefs);
    out["masters"] = std::move(masters);
  }
  respond_ok(msg, std::move(out));
}

void KvsModule::op_wait_version(Message& msg) {
  const auto version =
      static_cast<std::uint64_t>(msg.payload().get_int("version", 0));
  if (root_version_ >= version) {
    op_get_version(msg);
    return;
  }
  co_spawn(
      broker().executor(),
      [](KvsModule* self, Message req, std::uint64_t v) -> Task<void> {
        co_await self->version_reached(v);
        self->op_get_version(req);
      }(this, std::move(msg), version),
      "kvs.wait_version");
}

void KvsModule::op_stats(Message& msg) {
  Json out =
      Json::object({{"rank", broker().rank()},
                    {"master", is_master()},
                    {"version", root_version_},
                    {"store_objects", store_.count()},
                    {"store_bytes", store_.bytes()},
                    {"cache_objects", cache_.count()},
                    {"cache_bytes", cache_.bytes()},
                    {"cache_hits", cache_.stats().hits},
                    {"cache_misses", cache_.stats().misses},
                    {"cache_evictions", cache_.stats().evictions},
                    {"puts", ops_.puts},
                    {"gets", ops_.gets},
                    {"commits", ops_.commits},
                    {"fences", ops_.fences},
                    {"faults_issued", ops_.faults_issued},
                    {"faults_served", ops_.faults_served},
                    {"flushes_forwarded", ops_.flushes_forwarded},
                    {"apply_batches", ops_.apply_batches},
                    {"apply_batched_fences", ops_.apply_batched_fences},
                    {"apply_batch_mean",
                     ops_.apply_batches
                         ? static_cast<double>(ops_.apply_batched_fences) /
                               static_cast<double>(ops_.apply_batches)
                         : 0.0},
                    {"announces", ops_.announces},
                    {"announced_fences", ops_.announced_fences},
                    {"announce_batch_mean",
                     ops_.announces
                         ? static_cast<double>(ops_.announced_fences) /
                               static_cast<double>(ops_.announces)
                         : 0.0}});
  if (backend_ != nullptr) {
    out["persist"] = true;
    out["checkpoints"] = persist_stats_.checkpoints;
    out["gc_passes"] = persist_stats_.gc_passes;
    out["gc_swept"] = persist_stats_.gc_swept;
    out["gc_swept_bytes"] = persist_stats_.gc_swept_bytes;
    out["recovered_objects"] = persist_stats_.recovered_objects;
    out["recovered_version"] = persist_stats_.recovered_version;
    out["truncated_bytes"] = persist_stats_.truncated_bytes;
  }
  if (sharded()) {
    out["shards"] = static_cast<std::int64_t>(shards_);
    out["shard_master"] = my_shard_.has_value();
    if (my_shard_) out["shard"] = static_cast<std::int64_t>(*my_shard_);
    Json vv = Json::array();
    for (const std::uint64_t v : shard_versions_)
      vv.push_back(static_cast<std::int64_t>(v));
    out["vv"] = std::move(vv);
  }
  respond_ok(msg, std::move(out));
}

void KvsModule::op_drop_cache(Message& msg) {
  const std::size_t evicted = cache_.drop_all();
  respond_ok(msg, Json::object({{"evicted", evicted}}));
}

}  // namespace flux
