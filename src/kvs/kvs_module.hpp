// The kvs comms module (paper §IV-B).
//
// One instance runs inside each broker where the module is loaded. The
// instance on the session root is the *master*: it holds the authoritative
// content store, applies transactions, and publishes new root references as
// "kvs.setroot" events. Every other instance is a *slave cache*: it resolves
// gets against its local object cache, faulting missing objects from its
// CMB-tree parent "recursively up the tree until the request can be
// fulfilled", and switches roots in version order when setroot events arrive.
//
// Consistency (Vogels' taxonomy, as claimed by the paper):
//  - monotonic reads: setroot events are globally sequenced and applied in
//    version order, and gets walk an immutable snapshot;
//  - read-your-writes: commit/fence responses carry the new root, which the
//    local instance applies *before* responding to the caller;
//  - causal: get_version/wait_version let one process pass a version to
//    another, which waits for it before reading.
//
// Client-visible operations (via kvs_client.hpp):
//   put, unlink, mkdir, get, lookup_ref, commit, fence, get_version,
//   wait_version, stats, drop_cache
// Internal (module-to-module on the tree plane):
//   flush (aggregated dirty state heading to the master), fault (object
//   fetch from the parent cache).
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "broker/module.hpp"
#include "exec/future.hpp"
#include "exec/task.hpp"
#include "kvs/content_store.hpp"
#include "kvs/object_bundle.hpp"

namespace flux {

class KvsModule final : public ModuleBase {
 public:
  explicit KvsModule(Broker& broker);

  [[nodiscard]] std::string_view name() const override { return "kvs"; }
  void start() override;
  void handle_event(const Message& msg) override;

  /// True on the session root (authoritative store lives here).
  [[nodiscard]] bool is_master() const noexcept;

  struct OpStats {
    std::uint64_t puts = 0;
    std::uint64_t gets = 0;
    std::uint64_t commits = 0;
    std::uint64_t fences = 0;
    std::uint64_t faults_issued = 0;
    std::uint64_t faults_served = 0;
    std::uint64_t flushes_forwarded = 0;
  };

  // Introspection for tests/benches.
  [[nodiscard]] std::uint64_t root_version() const noexcept { return root_version_; }
  [[nodiscard]] const Sha1& root_ref() const noexcept { return root_ref_; }
  [[nodiscard]] const ObjectCache& cache() const noexcept { return cache_; }
  [[nodiscard]] const ContentStore& store() const noexcept { return store_; }
  [[nodiscard]] const OpStats& op_stats() const noexcept { return ops_; }

 private:
  // -- request handlers -------------------------------------------------------
  void op_put(Message& msg);
  void op_stage(Message& msg);
  void op_unlink(Message& msg);
  void op_mkdir(Message& msg);
  void op_get(Message& msg);
  void op_lookup_ref(Message& msg);
  void op_get_version(Message& msg);
  void op_wait_version(Message& msg);
  void op_commit(Message& msg);
  void op_fence(Message& msg);
  void op_flush(Message& msg);
  void op_fault(Message& msg);
  void op_stats(Message& msg);
  void op_drop_cache(Message& msg);

  // -- machinery ---------------------------------------------------------------
  /// Key identifying the client transaction a put belongs to.
  using TxnKey = std::pair<NodeId, std::uint64_t>;
  struct Txn {
    std::vector<Tuple> tuples;
    std::vector<ObjPtr> objects;
  };
  static TxnKey txn_key(const Message& msg);
  /// Record one dirty object + tuple under the caller's transaction.
  void record(Message& msg, std::string key, ObjPtr obj);

  struct FenceState {
    std::int64_t nprocs = 0;
    // Contributions not yet flushed upstream (or into the master total).
    std::int64_t pending_count = 0;
    std::vector<Tuple> pending_tuples;
    std::vector<ObjPtr> pending_objects;
    /// Objects already forwarded upstream for this fence: cumulative, so an
    /// object crosses each broker at most once no matter how contributions
    /// stagger ("values are reduced while being sent up the tree").
    std::unordered_set<Sha1> forwarded_ids;
    bool flush_scheduled = false;
    // Master only: global accumulation.
    std::int64_t total_count = 0;
    std::vector<Tuple> total_tuples;
    // Requests from clients of *this* broker awaiting completion.
    std::vector<Message> waiters;
    // Local cache pins to release at completion.
    std::vector<Sha1> pins;
  };

  void fence_add(const std::string& name, std::int64_t nprocs,
                 std::int64_t count, std::vector<Tuple> tuples,
                 const std::vector<ObjPtr>& objects);
  void schedule_fence_flush(const std::string& name);
  void flush_fence(const std::string& name);
  void master_check_fence(const std::string& name);

  /// Master: apply tuples, bump version, publish setroot.
  void master_apply(const std::vector<Tuple>& tuples,
                    std::vector<std::string> fences);

  /// Adopt a (newer) root reference; completes version waiters and fences.
  void apply_root(const Sha1& ref, std::uint64_t version,
                  const std::vector<std::string>& fences);

  /// Local-or-fault object lookup (coalesces concurrent faults).
  Task<ObjPtr> lookup_object(Sha1 ref);

  /// Async get walk; responds to `req` when done.
  Task<void> do_get(Message req, bool ref_only);

  /// Wait until the local root version reaches `version`.
  Future<std::uint64_t> version_reached(std::uint64_t version);

  void complete_version_waiters();

  // -- state -------------------------------------------------------------------
  Sha1 root_ref_{};
  std::uint64_t root_version_ = 0;  // 0 == no root yet
  ContentStore store_;              // master only
  ObjectCache cache_;               // slaves (and master's put staging)
  std::uint64_t epoch_ = 0;
  std::uint64_t expiry_epochs_ = 0;  // 0 == expiry disabled

  std::uint64_t commit_seq_ = 0;
  std::map<TxnKey, Txn> txns_;
  std::map<std::string, FenceState> fences_;
  std::unordered_map<Sha1, Promise<ObjPtr>> faults_;
  std::vector<std::pair<std::uint64_t, Promise<std::uint64_t>>> version_waiters_;

  OpStats ops_;
};

}  // namespace flux
