// The kvs comms module (paper §IV-B), with optional sharded masters (§VII).
//
// One instance runs inside each broker where the module is loaded. In the
// default single-master layout the instance on the session root is the
// *master*: it holds the authoritative content store, applies transactions,
// and publishes new root references as "kvs.setroot" events. Every other
// instance is a *slave cache*: it resolves gets against its local object
// cache, faulting missing objects from its CMB-tree parent "recursively up
// the tree until the request can be fulfilled", and switches roots in version
// order when setroot events arrive.
//
// Consistency (Vogels' taxonomy, as claimed by the paper):
//  - monotonic reads: setroot events are globally sequenced and applied in
//    version order, and gets walk an immutable snapshot;
//  - read-your-writes: commit/fence responses carry the new root, which the
//    local instance applies *before* responding to the caller;
//  - causal: get_version/wait_version let one process pass a version to
//    another, which waits for it before reading.
//
// Sharded masters (module config {"shards": k}, the §VII "distributed KVS
// master" built for real):
//  - The namespace is hash-partitioned by top-level directory across k
//    master brokers in ONE session; a deterministic ShardMap (rendezvous
//    hashing, shard_map.hpp) lets every broker compute a key's owner
//    locally. master_rank(s) = s*size/k, so shard 0 stays on the session
//    root and k=1 degenerates to the classic layout bit-for-bit.
//  - Each shard owns a full hash tree (own root ref + version) and its own
//    logical reduction tree over all ranks, rooted at its master. Fence
//    flushes and object faults for shard s climb that tree over *direct*
//    transport edges (Broker::forward_direct / direct_rpc), so shard traffic
//    never serializes through the session root — the whole point of §VII.
//  - Every fence/commit contribution is split into k per-shard parts (empty
//    parts still carry their participant count), each shard master applies
//    at nprocs independently and publishes "kvs.setroot.<s>"; a
//    ShardCoordinator on the session root fuses the per-shard completions
//    into one "kvs.fence.done" event carrying the full version vector, which
//    completes fence waiters everywhere — collective-commit semantics, plus
//    cross-shard visibility: a completed fence's writes are readable on
//    every shard.
//  - Consistency becomes per-shard: each shard's roots apply in that shard's
//    version order (monotonic reads per shard); the scalar version reported
//    to clients is the sum of the vector (monotonic, and equal to the legacy
//    scalar at k=1), with the vector itself alongside as "vv".
//  - A dead shard master ("live.down") fails fast: in-flight direct RPCs to
//    it settle EHOSTDOWN, pending fences fuse as failed, new operations on
//    its shard are refused, and the other shards keep serving. Re-mastering
//    a shard is future work, as §VII's full design is in the paper.
//
// Client-visible operations (via kvs_client.hpp):
//   put, unlink, mkdir, get, lookup_ref, commit, fence, get_version,
//   wait_version, stats, drop_cache
// Internal (module-to-module):
//   flush (aggregated dirty state heading to a master), fault (object fetch
//   from the per-shard tree parent), shard_done (master -> coordinator).
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "broker/module.hpp"
#include "exec/future.hpp"
#include "exec/task.hpp"
#include "kvs/content_store.hpp"
#include "kvs/object_bundle.hpp"
#include "kvs/shard_map.hpp"

namespace flux {

class ShardCoordinator;

class KvsModule final : public ModuleBase {
 public:
  explicit KvsModule(Broker& broker);
  ~KvsModule() override;

  [[nodiscard]] std::string_view name() const override { return "kvs"; }
  void start() override;
  void shutdown() override;
  void on_fail() override;
  void handle_event(const Message& msg) override;

  /// True on the session root (authoritative store lives here).
  [[nodiscard]] bool is_master() const noexcept;

  /// Sharded-master mode (module config {"shards": k>1}).
  [[nodiscard]] bool sharded() const noexcept { return shards_ > 1; }
  [[nodiscard]] std::uint32_t shards() const noexcept { return shards_; }
  [[nodiscard]] const ShardMap& shard_map() const noexcept { return shard_map_; }
  /// The shard this broker masters, if any.
  [[nodiscard]] std::optional<std::uint32_t> my_shard() const noexcept {
    return my_shard_;
  }

  struct OpStats {
    std::uint64_t puts = 0;
    std::uint64_t gets = 0;
    std::uint64_t commits = 0;
    std::uint64_t fences = 0;
    /// Upstream fault round-trips issued (a batched kvs.load counts once no
    /// matter how many objects it brings in).
    std::uint64_t faults_issued = 0;
    std::uint64_t faults_served = 0;
    /// Batched kvs.load requests handled for downstream brokers.
    std::uint64_t loads_served = 0;
    /// Objects brought into the local cache by fault/load responses.
    std::uint64_t objects_faulted = 0;
    std::uint64_t flushes_forwarded = 0;
    /// Classic master: root transitions performed (one per coalesced apply
    /// batch) and the total fences those transitions covered. The ratio is
    /// the coalescing factor commit bursts achieve.
    std::uint64_t apply_batches = 0;
    std::uint64_t apply_batched_fences = 0;
    /// Classic master: "kvs.setroot" announces published and the fences they
    /// covered. Under commit bursts one announce carries several coalesced
    /// root transitions, so announces <= apply_batches.
    std::uint64_t announces = 0;
    std::uint64_t announced_fences = 0;
  };

  /// Persistence/GC counters (masters with a durable backend only).
  struct PersistStats {
    std::uint64_t checkpoints = 0;
    std::uint64_t gc_passes = 0;
    std::uint64_t gc_swept = 0;
    std::uint64_t gc_swept_bytes = 0;
    std::uint64_t recovered_objects = 0;
    std::uint64_t recovered_version = 0;  ///< post-recovery-epoch version
    std::uint64_t truncated_bytes = 0;    ///< torn tail dropped at recovery
  };

  // Introspection for tests/benches.
  [[nodiscard]] std::uint64_t root_version() const noexcept { return root_version_; }
  [[nodiscard]] const Sha1& root_ref() const noexcept { return root_ref_; }
  [[nodiscard]] const ObjectCache& cache() const noexcept { return cache_; }
  [[nodiscard]] const ContentStore& store() const noexcept { return store_; }
  [[nodiscard]] const OpStats& op_stats() const noexcept { return ops_; }
  [[nodiscard]] const PersistStats& persist_stats() const noexcept {
    return persist_stats_;
  }
  [[nodiscard]] bool persistent() const noexcept { return backend_ != nullptr; }
  [[nodiscard]] const std::vector<std::uint64_t>& shard_versions() const noexcept {
    return shard_versions_;
  }
  /// Current master rank per shard (updated by hb-driven failover).
  [[nodiscard]] const std::vector<NodeId>& shard_masters() const noexcept {
    return shard_masters_;
  }

 private:
  // -- request handlers -------------------------------------------------------
  void op_put(Message& msg);
  void op_stage(Message& msg);
  void op_unlink(Message& msg);
  void op_mkdir(Message& msg);
  void op_get(Message& msg);
  void op_lookup_ref(Message& msg);
  void op_get_version(Message& msg);
  void op_wait_version(Message& msg);
  void op_commit(Message& msg);
  void op_fence(Message& msg);
  void op_flush(Message& msg);
  void op_fault(Message& msg);
  void op_load(Message& msg);
  void op_shard_done(Message& msg);
  void op_stats(Message& msg);
  void op_drop_cache(Message& msg);

  // -- machinery ---------------------------------------------------------------
  /// Key identifying the client transaction a put belongs to.
  using TxnKey = std::pair<NodeId, std::uint64_t>;
  struct Txn {
    std::vector<Tuple> tuples;
    std::vector<ObjPtr> objects;
  };
  static TxnKey txn_key(const Message& msg);
  /// Record one dirty object + tuple under the caller's transaction.
  void record(Message& msg, std::string key, ObjPtr obj);
  /// Claim the caller's transaction (payload ops + bundle + staged RPC ops);
  /// returns nullopt after responding with an error on malformed input.
  std::optional<Txn> claim_txn(Message& msg);

  struct FenceState {
    std::int64_t nprocs = 0;
    // Contributor identities not yet flushed upstream (or into the master
    // total). May repeat across waves — the master's `counted` set dedupes.
    std::vector<std::string> pending_contributors;
    std::vector<Tuple> pending_tuples;
    std::vector<ObjPtr> pending_objects;
    /// Objects already forwarded upstream for this fence: cumulative, so an
    /// object crosses each broker at most once no matter how contributions
    /// stagger ("values are reduced while being sent up the tree").
    std::unordered_set<Sha1> forwarded_ids;
    bool flush_scheduled = false;
    // Master only: distinct contributor identities seen so far. Fences fuse
    // when this reaches nprocs. Counting identities instead of arrivals
    // makes client RPC retries idempotent end-to-end: a duplicate flush (the
    // original was merely slow) collapses here instead of letting the fence
    // fuse without the slowest participant's ops, while a retry whose
    // original flush was lost to a crashed broker re-supplies it.
    std::set<std::string> counted;
    std::vector<Tuple> total_tuples;
    /// Contributor identities seen at this broker — local clients and
    /// relayed flushes alike (retry detection — see fence_add).
    std::set<std::string> origins;
    // Requests from clients of *this* broker awaiting completion.
    std::vector<Message> waiters;
    // Local cache pins to release at completion.
    std::vector<Sha1> pins;
    // Master only: this fence is already queued in the apply batch — extra
    // contributions past nprocs must not enqueue it twice.
    bool apply_pending = false;
  };

  /// Identity of the requesting endpoint, stable across its RPC retries.
  std::string fence_origin_key(const Message& msg);

  void fence_add(const std::string& name, std::int64_t nprocs,
                 std::vector<std::string> contributors,
                 std::vector<Tuple> tuples,
                 const std::vector<ObjPtr>& objects);
  void schedule_fence_flush(const std::string& name);
  void flush_fence(const std::string& name);
  void master_check_fence(const std::string& name);

  /// Master: post one apply for every fence that became ready this reactor
  /// turn (idempotent while a flush is pending).
  void schedule_master_apply();
  /// The posted flush: concatenates the batch (readiness order) into ONE
  /// apply_transaction + ONE version bump + ONE kvs.setroot publish, so all
  /// coalesced committers observe the same new root.
  void flush_apply_batch();

  /// Master: apply tuples, bump version, schedule the setroot announce.
  void master_apply(const std::vector<Tuple>& tuples,
                    std::vector<std::string> fences);

  /// Master: publish "kvs.setroot" now if the last announce is at least one
  /// window old, else arm a timer at last_announce_ + window. Idle and
  /// sequential traffic stays on the synchronous path; only commit bursts
  /// (applies closer together than the window) coalesce.
  void schedule_announce();
  /// Publish one "kvs.setroot" covering every root transition since the last
  /// announce: the latest version/rootref plus all accumulated fence names.
  void flush_announce();

  /// Adopt a (newer) root reference; completes version waiters and fences.
  void apply_root(const Sha1& ref, std::uint64_t version,
                  const std::vector<std::string>& fences);

  // -- sharded-master machinery ------------------------------------------------
  /// Per-(fence, shard) aggregation state on this broker.
  struct ShardPart {
    std::vector<std::string> pending_contributors;
    std::vector<Tuple> pending_tuples;
    std::vector<ObjPtr> pending_objects;
    std::unordered_set<Sha1> forwarded_ids;
    /// Contributor identities seen at this broker for this shard (retry
    /// detection — see fence_add).
    std::set<std::string> origins;
    bool flush_scheduled = false;
    // Tuples were routed to this shard through this broker; if the shard's
    // master then dies mid-fence, local waiters must see an error even when
    // the coordinator salvages the live shards.
    bool touched = false;
    // Shard master only: distinct contributors (see FenceState::counted).
    std::set<std::string> counted;
    std::vector<Tuple> total_tuples;
    bool applied = false;
  };
  struct ShardedFence {
    std::int64_t nprocs = 0;
    std::vector<ShardPart> parts;  // one per shard
    std::vector<Message> waiters;
    std::vector<Sha1> pins;
  };

  [[nodiscard]] bool is_shard_master(std::uint32_t shard) const noexcept;
  /// The shard currently mastered by `rank`, consulting failover state.
  [[nodiscard]] std::optional<std::uint32_t> mastered_by(NodeId rank) const;
  void op_fence_sharded(Message& msg, const std::string& name,
                        std::int64_t nprocs, Txn txn);
  void shard_fence_add(const std::string& name, std::uint32_t shard,
                       std::int64_t nprocs,
                       std::vector<std::string> contributors,
                       std::vector<Tuple> tuples,
                       const std::vector<ObjPtr>& objects);
  void flush_shard_fence(const std::string& name, std::uint32_t shard);
  void shard_master_apply(const std::string& name, std::uint32_t shard);
  void on_shard_setroot(const Message& msg);
  void on_fence_done(const Message& msg);
  void on_live_down(const Message& msg);

  // -- failover / rejoin recovery ---------------------------------------------
  /// Deterministic successor for a dead shard master: the next live rank
  /// after it in ring order (every broker computes the same answer from the
  /// globally-ordered live.down history).
  [[nodiscard]] NodeId successor_for(std::uint32_t shard) const;
  /// hb tick: promote this broker for any shard whose failover grace period
  /// has elapsed and whose designated successor we are.
  void check_failovers();
  /// Take over a dead shard: re-bootstrap it one version above the last
  /// published root and announce mastership via "kvs.setroot.<s>".
  void promote_shard(std::uint32_t shard);
  /// After a broker restart+rejoin: re-adopt roots/versions/masters from the
  /// upstream kvs instance (objects fault back in on demand).
  Task<void> resync_after_rejoin();
  /// Recompute the scalar mirror (root_version_ = sum of shard versions,
  /// root_ref_ = shard 0's root) and complete waiters it unblocks.
  void refresh_scalar_root();
  /// Resolves once shard `shard` has a root (version >= 1).
  Future<std::uint64_t> shard_ready(std::uint32_t shard);
  /// Next hop toward shard `shard`'s master, climbing over dead interior
  /// ranks (the shard-tree analogue of the session tree's self-healing).
  /// nullopt at the master or when the whole chain above is dead.
  [[nodiscard]] std::optional<NodeId> shard_parent_live(std::uint32_t shard,
                                                        NodeId rank) const;
  /// Merged top-level listing / root ref (sharded root-directory get).
  Task<void> do_get_root_sharded(Message req, bool ref_only, bool want_dir);

  /// Local-or-fault object lookup (coalesces concurrent faults). With a
  /// non-negative shard, faults climb that shard's tree over direct edges;
  /// otherwise the legacy session tree.
  Task<ObjPtr> lookup_object(Sha1 ref, int shard = -1);

  /// Chain-aware lookup used by the get walk: on a miss, one batched
  /// kvs.load round-trip brings in `ref` plus (speculatively) the whole
  /// directory chain named by `walk` below it.
  Task<ObjPtr> lookup_chain(Sha1 ref, std::vector<std::string> walk, int shard);

  /// Batched fault core: make `refs` locally available, fetching every miss
  /// in a single upstream kvs.load round-trip (per-id coalescing across
  /// concurrent batches via faults_). `walk` is the speculative chain hint
  /// forwarded when refs[0] itself is missing. Returns objects positionally
  /// (null = unknown upstream, or fetch tainted by timeout/host-down).
  Task<std::vector<ObjPtr>> ensure_objects(std::vector<Sha1> refs,
                                           std::vector<std::string> walk,
                                           int shard);

  /// Server side of one kvs.load request; responds with an ObjectBundle of
  /// everything located (requested refs + walked chain) and the missing ids.
  Task<void> serve_load(Message req, std::vector<Sha1> refs,
                        std::vector<std::string> walk, int shard);

  /// Async get walk; responds to `req` when done.
  Task<void> do_get(Message req, bool ref_only);

  /// Wait until the local root version reaches `version`.
  Future<std::uint64_t> version_reached(std::uint64_t version);

  void complete_version_waiters();

  // -- persistence (durable content store + checkpoint/restart + GC) ----------
  /// Module config {"persist": {"path": ..., "checkpoint_every": N,
  /// "gc_every": M, "retention": R}}. Only masters open a backend; sharded
  /// masters suffix the path with ".s<shard>".
  struct PersistConfig {
    std::string path;
    std::uint64_t checkpoint_every = 16;  ///< applies per checkpoint record
    std::uint64_t gc_every = 0;           ///< applies per GC pass (0 = off)
    std::uint64_t retention = 4;          ///< versions kept past reachability
  };
  /// Open the backend for this master and replay the durable log. Returns
  /// true when a prior root was recovered (the caller re-announces it one
  /// version up — the recovery epoch — instead of bootstrapping empty).
  bool persist_open(std::uint32_t shard);
  /// Durability point after one master apply: append the root record, sync
  /// (ack-after-sync: announce only happens after this), then run the
  /// checkpoint and GC cadences.
  void persist_root(std::uint32_t shard, std::uint64_t version,
                    const Sha1& ref);
  /// Full root-ref + version-vector snapshot for checkpoint records.
  [[nodiscard]] std::vector<Sha1> checkpoint_roots() const;
  [[nodiscard]] std::vector<std::uint64_t> checkpoint_vv() const;
  /// Live roots and GC pins (in-flight fence objects) for mark_and_sweep.
  [[nodiscard]] std::vector<Sha1> gc_roots() const;
  [[nodiscard]] std::vector<Sha1> gc_pins() const;
  void run_gc();

  // -- state -------------------------------------------------------------------
  Sha1 root_ref_{};
  std::uint64_t root_version_ = 0;  // 0 == no root yet (sharded: sum of vv)
  ContentStore store_;              // master / shard master only
  ObjectCache cache_;               // slaves (and master's put staging)
  std::uint64_t epoch_ = 0;
  std::uint64_t expiry_epochs_ = 0;  // 0 == expiry disabled

  std::uint64_t commit_seq_ = 0;
  std::uint64_t fence_anon_seq_ = 0;  // fence_origin_key fallback counter
  std::map<TxnKey, Txn> txns_;
  std::map<std::string, FenceState> fences_;
  /// Classic master: fences ready to apply, coalescing within one reactor
  /// turn — {name, tuples in readiness order}. Flushed by one posted task;
  /// under sustained load the flush is additionally rate-limited to one per
  /// announce window, so commits arriving at distinct instants still share
  /// one root transition (and one directory freeze/hash).
  std::vector<std::pair<std::string, std::vector<Tuple>>> apply_batch_;
  bool apply_scheduled_ = false;
  TimePoint last_apply_flush_{};
  /// Batch instruments (bound in start(); surface in `flux_cli stats`).
  obs::Counter* apply_batches_stat_ = nullptr;
  obs::Histogram* apply_batch_size_ = nullptr;
  /// Classic master: deferred "kvs.setroot" announce. The window rate-limits
  /// both the apply flush (above) and the O(tree) event broadcast — which
  /// carries the coalesced fence completions downstream — to one per window
  /// under load; the first flush after an idle window stays synchronous, so
  /// lone-op latency is untouched. Zero window disables deferral.
  Duration announce_window_{};
  TimePoint last_announce_{};
  bool announce_armed_ = false;
  /// Liveness token for the deferred apply/announce timers: ThreadExecutor
  /// timers are not cancelable, and a broker restart destroys this module
  /// instance while an armed timer may still fire — the callbacks hold a
  /// weak_ptr and become no-ops once the token dies with the module.
  std::shared_ptr<const bool> announce_token_ = std::make_shared<const bool>(true);
  std::vector<std::string> announce_names_;
  obs::Counter* announces_stat_ = nullptr;
  obs::Histogram* announce_size_ = nullptr;
  std::unordered_map<Sha1, Promise<ObjPtr>> faults_;
  std::vector<std::pair<std::uint64_t, Promise<std::uint64_t>>> version_waiters_;

  // Persistence state (masters with {"persist": ...} config only).
  std::optional<PersistConfig> persist_;
  std::unique_ptr<ContentBackend> backend_;
  std::uint64_t applies_since_checkpoint_ = 0;
  std::uint64_t applies_since_gc_ = 0;
  /// Per-shard version this instance re-established from its durable log at
  /// start() (post recovery-epoch bump); 0 = not recovered. Consulted by
  /// resync_after_rejoin to keep recovered data instead of re-bootstrapping
  /// empty.
  std::vector<std::uint64_t> recovered_versions_;
  PersistStats persist_stats_;
  obs::Histogram* gc_pause_ns_ = nullptr;

  // Sharded-master state (inert when shards_ == 1).
  std::uint32_t shards_ = 1;
  ShardMap shard_map_;
  std::optional<std::uint32_t> my_shard_;
  std::vector<Sha1> shard_roots_;
  std::vector<std::uint64_t> shard_versions_;
  std::vector<bool> shard_dead_;       // indexed by shard (master died)
  std::unordered_set<NodeId> dead_ranks_;  // every dead rank (tree healing)
  // Current master per shard (ShardMap home ranks until failover moves one).
  std::vector<NodeId> shard_masters_;
  // hb-driven failover (module config {"failover": true}): shard -> epoch at
  // which the designated successor self-promotes.
  bool failover_ = false;
  std::map<std::uint32_t, std::uint64_t> pending_failover_;
  std::map<std::string, ShardedFence> sharded_fences_;
  std::vector<std::pair<std::uint32_t, Promise<std::uint64_t>>> shard_ready_waiters_;
  std::unique_ptr<ShardCoordinator> coord_;  // session root only
  // Per-shard instruments (shard master only; named kvs.shard.<s>.*).
  obs::Counter* shard_commits_ = nullptr;
  obs::Counter* shard_faults_served_ = nullptr;
  obs::Histogram* shard_apply_ns_ = nullptr;

  OpStats ops_;
};

}  // namespace flux
