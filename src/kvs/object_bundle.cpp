#include "kvs/object_bundle.hpp"

#include "msg/codec.hpp"

namespace flux {

std::size_t ObjectBundle::wire_size() const {
  std::size_t n = 4;  // count
  for (const ObjPtr& o : objects_) n += 4 + o->size();
  return n;
}

namespace {
void put_u32(std::string& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) out.push_back(static_cast<char>(v >> (8 * i)));
}
bool read_u32(std::string_view body, std::size_t& pos, std::uint32_t& v) {
  if (pos + 4 > body.size()) return false;
  v = 0;
  for (int i = 3; i >= 0; --i)
    v = (v << 8) |
        static_cast<std::uint8_t>(body[pos + static_cast<std::size_t>(i)]);
  pos += 4;
  return true;
}
}  // namespace

std::string ObjectBundle::serialize() const {
  std::string out;
  out.reserve(wire_size());
  put_u32(out, static_cast<std::uint32_t>(objects_.size()));
  for (const ObjPtr& o : objects_) {
    put_u32(out, static_cast<std::uint32_t>(o->size()));
    out += o->bytes;
  }
  return out;
}

Expected<std::shared_ptr<const Attachment>> ObjectBundle::deserialize(
    std::string_view body) {
  std::size_t pos = 0;
  std::uint32_t count = 0;
  if (!read_u32(body, pos, count))
    return Error(errc::proto, "object bundle: truncated count");
  std::vector<ObjPtr> objects;
  objects.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    std::uint32_t len = 0;
    if (!read_u32(body, pos, len) || pos + len > body.size())
      return Error(errc::proto, "object bundle: truncated object");
    ObjPtr obj = parse_object(std::string(body.substr(pos, len)));
    if (!obj) return Error(errc::proto, "object bundle: malformed object");
    pos += len;
    objects.push_back(std::move(obj));
  }
  if (pos != body.size())
    return Error(errc::proto, "object bundle: trailing bytes");
  return std::shared_ptr<const Attachment>(
      std::make_shared<ObjectBundle>(std::move(objects)));
}

void ObjectBundle::register_codec() {
  register_attachment_codec("kvsobj", &ObjectBundle::deserialize);
}

}  // namespace flux
