// Bundle of content-addressed KVS objects as a message attachment.
//
// Fence/commit flushes carry their dirty objects in an ObjectBundle. The
// bundle is shared and immutable, so interior brokers can merge bundles by
// SHA1 ("values are reduced while being sent up the tree" — the redundant-
// value effect of Figure 3) without re-serializing payload bytes per hop.
#pragma once

#include <vector>

#include "kvs/treeobj.hpp"
#include "msg/message.hpp"

namespace flux {

class ObjectBundle final : public Attachment {
 public:
  ObjectBundle() = default;
  explicit ObjectBundle(std::vector<ObjPtr> objects)
      : objects_(std::move(objects)) {}

  [[nodiscard]] std::string_view tag() const noexcept override {
    return "kvsobj";
  }
  [[nodiscard]] std::size_t wire_size() const override;
  [[nodiscard]] std::string serialize() const override;

  [[nodiscard]] const std::vector<ObjPtr>& objects() const noexcept {
    return objects_;
  }

  /// Parse a serialized bundle ([u32 len][bytes])*.
  static Expected<std::shared_ptr<const Attachment>> deserialize(
      std::string_view body);

  /// Register the "kvsobj" decoder with the wire codec (idempotent).
  static void register_codec();

 private:
  std::vector<ObjPtr> objects_;
};

}  // namespace flux
