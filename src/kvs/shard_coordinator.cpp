#include "kvs/shard_coordinator.hpp"

#include "broker/broker.hpp"
#include "check/mutation.hpp"

namespace flux {

ShardCoordinator::ShardCoordinator(Broker& broker, std::uint32_t shards)
    : broker_(broker),
      shards_(shards),
      shard_dead_(shards, false),
      versions_(shards, 0),
      roots_(shards) {}

std::uint32_t ShardCoordinator::live_shards() const noexcept {
  std::uint32_t n = 0;
  for (std::uint32_t s = 0; s < shards_; ++s)
    if (!shard_dead_[s]) ++n;
  return n;
}

void ShardCoordinator::shard_done(const std::string& name, std::uint32_t shard,
                                  std::uint64_t version, const Sha1& rootref) {
  if (shard >= shards_) return;
  if (version > versions_[shard]) {
    versions_[shard] = version;
    roots_[shard] = rootref;
  }
  Pending& p = pending_[name];
  if (p.reported.empty()) {
    p.reported.assign(shards_, false);
    // Snapshot the completion set now: exactly the shards alive at first
    // report. A shard revived mid-fence must not widen it.
    p.expected.resize(shards_);
    for (std::uint32_t s = 0; s < shards_; ++s) p.expected[s] = !shard_dead_[s];
  }
  if (!p.reported[shard]) {
    p.reported[shard] = true;
    ++p.n_reported;
  }
  maybe_fuse(name, p);
}

void ShardCoordinator::shard_revived(std::uint32_t shard, std::uint64_t version,
                                     const Sha1& root) {
  if (shard >= shards_ || !shard_dead_[shard]) return;
  shard_dead_[shard] = false;
  if (version > versions_[shard]) {
    versions_[shard] = version;
    roots_[shard] = root;
  }
}

void ShardCoordinator::shard_failed(std::uint32_t shard) {
  if (shard >= shards_ || shard_dead_[shard]) return;
  shard_dead_[shard] = true;
  // Everything in flight right now lost its part on the dead shard; fences
  // no longer waiting on anything alive fuse (as failed) right away.
  // Iterate over a name snapshot: maybe_fuse erases completed entries.
  std::vector<std::string> names;
  names.reserve(pending_.size());
  for (auto& [name, p] : pending_) {
    p.tainted = true;
    names.push_back(name);
  }
  for (const std::string& name : names) {
    auto it = pending_.find(name);
    if (it != pending_.end()) maybe_fuse(name, it->second);
  }
}

void ShardCoordinator::maybe_fuse(const std::string& name, Pending& p) {
  // Complete when every shard that is (a) in this fence's snapshotted
  // expectation set and (b) still alive has reported. Shards that died
  // since the snapshot are excused (taint covers them); shards revived
  // since are not expected at all.
  std::uint32_t want = 0;
  std::uint32_t have = 0;
  for (std::uint32_t s = 0; s < shards_; ++s) {
    if (!p.expected[s] || shard_dead_[s]) continue;
    ++want;
    if (p.reported[s]) ++have;
  }
  // Mutation "kvs.fence_fuse_early" (tests only): declare the fence done
  // after the first shard reports — clients then observe it partially
  // applied across shards, breaking fence atomicity.
  if (have < want && !(check::mutation("kvs.fence_fuse_early") && have >= 1))
    return;

  const bool failed = p.tainted;

  Json vv = Json::array();
  Json rootrefs = Json::array();
  for (std::uint32_t s = 0; s < shards_; ++s) {
    vv.push_back(static_cast<std::int64_t>(versions_[s]));
    rootrefs.push_back(roots_[s].hex());
  }
  pending_.erase(name);
  ++fences_fused_;
  broker_.publish("kvs.fence.done",
                  Json::object({{"name", name},
                                {"vv", std::move(vv)},
                                {"rootrefs", std::move(rootrefs)},
                                {"failed", failed}}));
}

}  // namespace flux
