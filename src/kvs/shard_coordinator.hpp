// Cross-shard fence coordinator for sharded KVS masters (paper §VII).
//
// Lives on the session root's kvs instance when shards > 1. Every fence (and
// commit, which is a one-party fence) is split into per-shard parts; each
// shard master applies its part independently and reports completion here
// ("kvs.shard_done", a direct fire-and-forget hop for non-root masters).
// When all live shards have reported, the coordinator publishes ONE fused
// "kvs.fence.done" event carrying the full per-shard version vector and root
// references — the collective-commit analogue of the single master's
// "kvs.setroot": every broker adopts all shard roots from it *before*
// completing local fence waiters, which preserves read-your-writes and
// cross-shard fence visibility.
//
// If a shard master dies mid-fence (live.down), its part can never complete;
// the coordinator fuses over the surviving shards and flags the event failed
// so waiters settle with EHOSTDOWN instead of hanging.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "hash/sha1.hpp"
#include "json/json.hpp"
#include "msg/message.hpp"

namespace flux {

class Broker;

class ShardCoordinator {
 public:
  ShardCoordinator(Broker& broker, std::uint32_t shards);

  /// Shard `shard` finished applying its part of fence `name` and is now at
  /// (version, rootref).
  void shard_done(const std::string& name, std::uint32_t shard,
                  std::uint64_t version, const Sha1& rootref);

  /// Shard master declared dead: fences pending at this moment fuse over
  /// the surviving shards with failed=true (their dead-shard parts are
  /// lost); fences started afterwards fuse normally over the live shards.
  void shard_failed(std::uint32_t shard);

  /// A successor took over a dead shard (hb-driven failover) at
  /// (version, root). The shard counts as live again for fences that start
  /// from now on; fences already in flight keep the expectation set they
  /// snapshotted, so a mid-fence revival neither blocks nor un-taints them.
  void shard_revived(std::uint32_t shard, std::uint64_t version,
                     const Sha1& root);

  [[nodiscard]] std::uint64_t fences_fused() const noexcept {
    return fences_fused_;
  }

 private:
  struct Pending {
    std::vector<bool> reported;
    std::uint32_t n_reported = 0;
    // Shards alive when this fence first reported — the completion set. A
    // shard revived later is NOT added (it never saw the fence); a snapshot
    // shard that dies later is handled by taint + the liveness re-check.
    std::vector<bool> expected;
    // In flight when a shard master died: part of it is unrecoverable.
    bool tainted = false;
  };

  void maybe_fuse(const std::string& name, Pending& p);
  [[nodiscard]] std::uint32_t live_shards() const noexcept;

  Broker& broker_;
  std::uint32_t shards_;
  std::vector<bool> shard_dead_;
  // Last reported state per shard; the fused event's version vector. Shards
  // that contributed nothing to a given fence still have a defined entry
  // (their bootstrap/previous version), so receivers always get a full vv.
  std::vector<std::uint64_t> versions_;
  std::vector<Sha1> roots_;
  std::map<std::string, Pending> pending_;
  std::uint64_t fences_fused_ = 0;
};

}  // namespace flux
