#include "kvs/shard_map.hpp"

#include <algorithm>

namespace flux {

namespace {

/// splitmix64 finalizer: cheap, well-mixed 64-bit avalanche.
std::uint64_t mix64(std::uint64_t x) noexcept {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

std::uint64_t fnv1a(std::string_view s) noexcept {
  std::uint64_t h = 0xcbf29ce484222325ull;
  for (const char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ull;
  }
  return h;
}

std::string_view top_component(std::string_view key) noexcept {
  const auto dot = key.find('.');
  return dot == std::string_view::npos ? key : key.substr(0, dot);
}

}  // namespace

ShardMap::ShardMap(std::uint32_t size, std::uint32_t shards,
                   std::uint32_t arity)
    : size_(std::max(1u, size)),
      shards_(std::clamp(shards, 1u, std::max(1u, size))),
      arity_(std::max(1u, arity)) {}

std::uint32_t ShardMap::shard_of(std::string_view key) const noexcept {
  if (shards_ == 1) return 0;
  // Rendezvous hashing: the shard with the highest (dir, shard) score wins.
  // Scores for one directory never depend on any other key.
  const std::uint64_t dir_hash = fnv1a(top_component(key));
  std::uint32_t best = 0;
  std::uint64_t best_score = 0;
  for (std::uint32_t s = 0; s < shards_; ++s) {
    const std::uint64_t score = mix64(dir_hash ^ mix64(s));
    if (s == 0 || score > best_score) {
      best = s;
      best_score = score;
    }
  }
  return best;
}

NodeId ShardMap::master_rank(std::uint32_t shard) const noexcept {
  // Evenly spread; shard 0 on the session root so shards=1 is the paper's
  // single-master layout.
  return static_cast<NodeId>(
      (static_cast<std::uint64_t>(shard) * size_) / shards_);
}

std::optional<std::uint32_t> ShardMap::shard_of_master(
    NodeId rank) const noexcept {
  for (std::uint32_t s = 0; s < shards_; ++s)
    if (master_rank(s) == rank) return s;
  return std::nullopt;
}

std::optional<NodeId> ShardMap::parent(std::uint32_t shard,
                                       NodeId rank) const noexcept {
  return parent(shard, rank, master_rank(shard));
}

std::optional<NodeId> ShardMap::parent(std::uint32_t shard, NodeId rank,
                                       NodeId master) const noexcept {
  (void)shard;
  if (rank == master) return std::nullopt;
  // Heap-shaped tree relabeled so the master is logical rank 0. For shard 0
  // under its home master (m == 0) this reduces to the session tree's
  // parent = (rank-1)/arity.
  const std::uint32_t lid = (rank + size_ - master) % size_;
  const std::uint32_t parent_lid = (lid - 1) / arity_;
  return static_cast<NodeId>((parent_lid + master) % size_);
}

}  // namespace flux
