// Deterministic namespace partition for sharded KVS masters (paper §VII).
//
// The paper leaves "distributing the KVS master itself" as future work; this
// map is the routing half of that design. The namespace is partitioned by
// *top-level directory*: every key under "jobs.*" lives on one shard, chosen
// by rendezvous (highest-random-weight) hashing of the first path component.
// Rendezvous hashing gives the two invariants the subsystem leans on:
//
//  - every key maps to exactly one shard, as a pure function of the key and
//    the shard count — no routing tables, any broker computes it locally;
//  - the mapping of one directory is independent of any other key, so
//    commits touching disjoint directories never contend on shard choice.
//
// Each shard's master broker is spread across the session
// (master_rank(s) = s * size / shards; shard 0 stays on the session root so a
// one-shard map degenerates to the paper's single-master layout). Every shard
// also gets its own logical reduction tree over *all* ranks, rooted at its
// master: the ordinary heap-shaped tree relabeled so the master is rank 0 of
// the relabeling. Shard 0's tree is therefore exactly the session tree, and
// flush/fault traffic for shard s climbs toward master s with the same
// log-depth hop count the single-master design has toward the root.
#pragma once

#include <cstdint>
#include <optional>
#include <string_view>

#include "msg/message.hpp"

namespace flux {

class ShardMap {
 public:
  /// Identity map: one shard, mastered by the session root.
  ShardMap() = default;

  /// Partition a session of `size` ranks into `shards` shards (clamped to
  /// [1, size]); `arity` shapes the per-shard reduction trees.
  ShardMap(std::uint32_t size, std::uint32_t shards, std::uint32_t arity);

  [[nodiscard]] std::uint32_t shards() const noexcept { return shards_; }
  [[nodiscard]] std::uint32_t size() const noexcept { return size_; }

  /// Owning shard of `key` ("a.b.c" hashes on "a"). Pure function of the
  /// top-level component and the shard count.
  [[nodiscard]] std::uint32_t shard_of(std::string_view key) const noexcept;

  /// Master broker rank for a shard. master_rank(0) == 0 (the session root).
  [[nodiscard]] NodeId master_rank(std::uint32_t shard) const noexcept;

  /// The shard `rank` masters, if any.
  [[nodiscard]] std::optional<std::uint32_t> shard_of_master(
      NodeId rank) const noexcept;

  /// Parent of `rank` in shard `shard`'s reduction tree; nullopt at the
  /// shard's master (that tree's root). For shard 0 this is exactly the
  /// session tree's parent relation.
  [[nodiscard]] std::optional<NodeId> parent(std::uint32_t shard,
                                             NodeId rank) const noexcept;

  /// Same relabeled tree, but rooted at an explicit `master` rank — the
  /// failover form: when a shard master dies and a successor is promoted,
  /// every broker re-derives the shard's reduction tree around the new
  /// master with this overload. parent(s, r) == parent(s, r, master_rank(s)).
  [[nodiscard]] std::optional<NodeId> parent(std::uint32_t shard, NodeId rank,
                                             NodeId master) const noexcept;

 private:
  std::uint32_t size_ = 1;
  std::uint32_t shards_ = 1;
  std::uint32_t arity_ = 2;
};

}  // namespace flux
