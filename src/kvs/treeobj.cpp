#include "kvs/treeobj.hpp"

#include <mutex>
#include <unordered_map>

namespace flux {

namespace {

// Content-addressed parse memo. Objects are immutable and identified by
// SHA1, so when the same serialized object reaches many brokers (a hot
// directory replicating through 512 slave caches), parsing it once is
// enough — the digest check still runs per call. Keyed weakly so retired
// objects do not accumulate.
class ParseMemo {
 public:
  ObjPtr find(const Sha1& id) {
    std::lock_guard lk(mu_);
    auto it = memo_.find(id);
    if (it == memo_.end()) return nullptr;
    ObjPtr obj = it->second.lock();
    if (!obj) memo_.erase(it);
    return obj;
  }

  void insert(const ObjPtr& obj) {
    std::lock_guard lk(mu_);
    if (memo_.size() >= kSweepThreshold) sweep();
    memo_.insert_or_assign(obj->id, obj);
  }

 private:
  void sweep() {
    for (auto it = memo_.begin(); it != memo_.end();)
      it = it->second.expired() ? memo_.erase(it) : std::next(it);
  }

  static constexpr std::size_t kSweepThreshold = 1 << 16;
  std::mutex mu_;
  std::unordered_map<Sha1, std::weak_ptr<const StoredObject>> memo_;
};

ParseMemo& parse_memo() {
  static ParseMemo memo;
  return memo;
}

}  // namespace

ObjPtr make_object(Json doc) {
  auto obj = std::make_shared<StoredObject>();
  obj->doc = std::move(doc);
  // Stored bytes live as long as the object: size exactly (dump_size is
  // allocation-free) so the retained buffer carries no growth slack.
  obj->bytes.reserve(obj->doc.dump_size());
  obj->doc.dump_into(obj->bytes);
  obj->id = Sha1::of(obj->bytes);
  parse_memo().insert(obj);
  return obj;
}

ObjPtr make_val_object(Json value) {
  return make_object(Json::object({{"t", "val"}, {"d", std::move(value)}}));
}

ObjPtr make_dir_object(const std::map<std::string, Sha1, std::less<>>& entries) {
  Json e = Json::object();
  for (const auto& [name, ref] : entries) e[name] = ref.hex();
  return make_object(Json::object({{"t", "dir"}, {"e", std::move(e)}}));
}

ObjPtr empty_dir_object() {
  static const ObjPtr empty = make_dir_object({});
  return empty;
}

ObjPtr parse_object(std::string bytes) {
  const Sha1 id = Sha1::of(bytes);
  if (ObjPtr hit = parse_memo().find(id)) return hit;
  auto parsed = Json::parse(bytes);
  if (!parsed) return nullptr;
  Json doc = std::move(parsed).value();
  const std::string t = doc.get_string("t");
  if (t == "val") {
    if (!doc.contains("d")) return nullptr;
  } else if (t == "dir") {
    if (!doc.at("e").is_object()) return nullptr;
    for (const auto& [name, ref] : doc.at("e").as_object())
      if (!ref.is_string() || !Sha1::parse(ref.as_string())) return nullptr;
  } else {
    return nullptr;
  }
  auto obj = std::make_shared<StoredObject>();
  obj->doc = std::move(doc);
  obj->bytes = std::move(bytes);
  obj->id = id;
  parse_memo().insert(obj);
  return obj;
}

std::vector<std::string> split_key(std::string_view key) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (start <= key.size()) {
    const auto dot = key.find('.', start);
    const auto end = (dot == std::string_view::npos) ? key.size() : dot;
    if (end > start) out.emplace_back(key.substr(start, end - start));
    if (dot == std::string_view::npos) break;
    start = dot + 1;
  }
  return out;
}

Json tuples_to_json(const std::vector<Tuple>& tuples) {
  Json arr = Json::array();
  for (const Tuple& t : tuples)
    arr.push_back(Json::array({t.key, t.ref.hex()}));
  return arr;
}

Expected<std::vector<Tuple>> tuples_from_json(const Json& array) {
  if (!array.is_array())
    return Error(errc::proto, "tuples: expected array");
  std::vector<Tuple> out;
  out.reserve(array.size());
  for (const Json& item : array.as_array()) {
    if (!item.is_array() || item.size() != 2 || !item.as_array()[0].is_string() ||
        !item.as_array()[1].is_string())
      return Error(errc::proto, "tuples: expected [key, refhex] pairs");
    auto ref = Sha1::parse(item.as_array()[1].as_string());
    if (!ref) return Error(errc::proto, "tuples: bad sha1 ref");
    out.push_back(Tuple{item.as_array()[0].as_string(), *ref});
  }
  return out;
}

}  // namespace flux
