// KVS tree objects: the hash-tree / content-addressable representation.
//
// Paper §IV-B: "JSON objects are placed in a content-addressable object
// store, hashed by their SHA1 digests. Hierarchical key names are broken up
// into path components that reference directories. A directory is an object
// that maps a list of names to other objects by their SHA1 reference."
//
// Concretely an object is a JSON document:
//   value:     {"t":"val","d":<any json>}
//   directory: {"t":"dir","e":{"name":"<40-hex sha1>", ...}}
// hashed over its canonical serialization (sorted keys — see json.hpp), so
// identical values share one address: the dedup Figure 3 depends on.
#pragma once

#include <map>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "hash/sha1.hpp"
#include "json/json.hpp"

namespace flux {

/// An immutable, content-addressed KVS object.
struct StoredObject {
  Sha1 id;            ///< SHA1 of `bytes`
  std::string bytes;  ///< canonical serialization
  Json doc;           ///< parsed form

  [[nodiscard]] bool is_dir() const { return doc.get_string("t") == "dir"; }
  [[nodiscard]] bool is_val() const { return doc.get_string("t") == "val"; }
  /// Payload of a value object.
  [[nodiscard]] const Json& value() const { return doc.at("d"); }
  /// name -> sha1-hex map of a directory object.
  [[nodiscard]] const JsonObject& entries() const {
    return doc.at("e").as_object();
  }
  [[nodiscard]] std::size_t size() const noexcept { return bytes.size(); }
};

using ObjPtr = std::shared_ptr<const StoredObject>;

/// Build (serialize + hash) an object from its JSON document.
ObjPtr make_object(Json doc);
/// Build a value object holding `value`.
ObjPtr make_val_object(Json value);
/// Build a directory object from name -> ref entries.
ObjPtr make_dir_object(const std::map<std::string, Sha1, std::less<>>& entries);
/// The canonical empty directory (the initial KVS root).
ObjPtr empty_dir_object();

/// Parse serialized object bytes (fault responses, wire decode). Verifies
/// the document shape; returns nullptr on malformed input.
ObjPtr parse_object(std::string bytes);

/// Split "a.b.c" into {"a","b","c"}. Empty components are dropped; "." (or
/// "") addresses the root directory and yields an empty vector.
std::vector<std::string> split_key(std::string_view key);

/// A (key, ref) commit tuple. A null (all-zero) ref is an unlink tombstone;
/// ref of the empty directory creates a directory (mkdir).
struct Tuple {
  std::string key;
  Sha1 ref;
  [[nodiscard]] bool is_unlink() const noexcept { return ref == Sha1{}; }
};

Json tuples_to_json(const std::vector<Tuple>& tuples);
Expected<std::vector<Tuple>> tuples_from_json(const Json& array);

}  // namespace flux
