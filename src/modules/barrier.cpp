#include "modules/barrier.hpp"

#include "base/log.hpp"
#include "broker/broker.hpp"

namespace flux::modules {

Barrier::Barrier(Broker& b) : ModuleBase(b) {
  on("enter", [this](Message& m) {
    const std::string bname = m.payload().get_string("name");
    const std::int64_t nprocs = m.payload().get_int("nprocs", 0);
    if (bname.empty() || nprocs <= 0) {
      respond_error(m, errc::inval, "barrier: need name and nprocs > 0");
      return;
    }
    ++stats_.entered;
    barriers_[bname].waiters.push_back(m);
    enter(bname, nprocs, 1);
  });
  // Aggregated subtree counts from downstream instances.
  on("reduce", [this](Message& m) {
    const std::string bname = m.payload().get_string("name");
    const std::int64_t nprocs = m.payload().get_int("nprocs", 0);
    const std::int64_t count = m.payload().get_int("count", 0);
    if (bname.empty() || nprocs <= 0 || count <= 0) {
      log::error("barrier", "malformed reduce for '", bname, "'");
      return;
    }
    enter(bname, nprocs, count);
  });
  on("status", [this](Message& m) {
    Json names = Json::array();
    for (const auto& [bname, st] : barriers_) names.push_back(bname);
    respond_ok(m, Json::object({{"active", std::move(names)}}));
  });
  broker().module_subscribe(*this, "barrier.exit");
}

void Barrier::enter(const std::string& bname, std::int64_t nprocs,
                    std::int64_t count) {
  State& st = barriers_[bname];
  if (st.nprocs == 0) st.nprocs = nprocs;
  if (st.nprocs != nprocs)
    log::warn("barrier", "'", bname, "': inconsistent nprocs ", nprocs, " vs ",
              st.nprocs);
  st.pending += count;
  if (st.flush_scheduled) return;
  st.flush_scheduled = true;
  // Micro-batch: increments arriving in the same reactor turn coalesce into
  // one upstream message.
  broker().executor().post([this, bname] { flush(bname); });
}

void Barrier::flush(const std::string& bname) {
  auto it = barriers_.find(bname);
  if (it == barriers_.end()) return;
  State& st = it->second;
  st.flush_scheduled = false;
  if (st.pending == 0) return;

  if (broker().is_root()) {
    st.total += st.pending;
    st.pending = 0;
    if (st.total < st.nprocs) return;
    if (st.total > st.nprocs)
      log::warn("barrier", "'", bname, "': overshoot ", st.total, "/", st.nprocs);
    broker().publish("barrier.exit",
                     Json::object({{"name", bname}, {"nprocs", st.nprocs}}));
    return;
  }
  ++stats_.forwarded;
  Message reduce = Message::request(
      "barrier.reduce", Json::object({{"name", bname},
                                      {"nprocs", st.nprocs},
                                      {"count", st.pending}}));
  st.pending = 0;
  broker().forward_upstream(std::move(reduce));
}

void Barrier::handle_event(const Message& msg) {
  if (msg.topic != "barrier.exit") return;
  const std::string bname = msg.payload().get_string("name");
  auto it = barriers_.find(bname);
  if (it == barriers_.end()) return;
  State st = std::move(it->second);
  barriers_.erase(it);
  ++stats_.completed;
  for (const Message& waiter : st.waiters)
    broker().respond(waiter.respond(Json::object({{"name", bname}})));
}

}  // namespace flux::modules
