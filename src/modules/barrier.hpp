// barrier: "Collective barriers provide synchronization across Flux groups."
// (Table I)
//
// Clients enter with (name, nprocs). Each broker's instance counts local
// entries plus aggregated counts from its subtree, micro-batching increments
// per reactor turn before forwarding upstream (the tree-reduction pattern of
// §IV-A). When the root's total reaches nprocs it publishes "barrier.exit";
// every instance then responds to its local waiters. Barrier names are
// reusable once a generation completes.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "broker/module.hpp"

namespace flux::modules {

class Barrier final : public ModuleBase {
 public:
  explicit Barrier(Broker& broker);

  [[nodiscard]] std::string_view name() const override { return "barrier"; }
  void handle_event(const Message& msg) override;

  struct Stats {
    std::uint64_t entered = 0;
    std::uint64_t completed = 0;
    std::uint64_t forwarded = 0;
  };
  [[nodiscard]] const Stats& stats() const noexcept { return stats_; }

 private:
  struct State {
    std::int64_t nprocs = 0;
    std::int64_t pending = 0;  // counts not yet forwarded / totalled
    std::int64_t total = 0;    // root only
    std::vector<Message> waiters;
    bool flush_scheduled = false;
  };

  void enter(const std::string& name, std::int64_t nprocs, std::int64_t count);
  void flush(const std::string& name);

  std::map<std::string, State> barriers_;
  Stats stats_;
};

}  // namespace flux::modules
