#include "modules/group.hpp"

#include "base/log.hpp"
#include "broker/broker.hpp"

namespace flux::modules {

namespace {
std::string member_id(const Message& msg) {
  if (msg.route.empty()) return "?";
  const RouteHop& origin = msg.route.front();
  return std::to_string(origin.rank) + "." + std::to_string(origin.id);
}
}  // namespace

Group::Group(Broker& b) : ModuleBase(b) {
  on("join", [this](Message& m) {
    const std::string group = m.payload().get_string("name");
    if (group.empty()) {
      respond_error(m, errc::inval, "group.join: need name");
      return;
    }
    Delta d;
    d.join.push_back(m.payload().get_string("member", member_id(m)));
    apply_and_forward(group, std::move(d), &m);
  });
  on("leave", [this](Message& m) {
    const std::string group = m.payload().get_string("name");
    if (group.empty()) {
      respond_error(m, errc::inval, "group.leave: need name");
      return;
    }
    Delta d;
    d.leave.push_back(m.payload().get_string("member", member_id(m)));
    apply_and_forward(group, std::move(d), &m);
  });
  // Aggregated deltas from downstream instances.
  on("update", [this](Message& m) {
    const std::string group = m.payload().get_string("name");
    Delta d;
    for (const Json& j : m.payload().at("join").as_array())
      d.join.push_back(j.as_string());
    for (const Json& j : m.payload().at("leave").as_array())
      d.leave.push_back(j.as_string());
    apply_and_forward(group, std::move(d), nullptr);
  });
  // Membership snapshot; answered wherever authoritative data lives (the
  // root), so non-root instances forward it upstream.
  on("info", [this](Message& m) {
    if (!broker().is_root()) {
      broker().forward_upstream(std::move(m));
      return;
    }
    const std::string group = m.payload().get_string("name");
    auto it = members_.find(group);
    Json list = Json::array();
    if (it != members_.end())
      for (const auto& member : it->second) list.push_back(member);
    respond_ok(m, Json::object({{"name", group},
                                {"size", list.size()},
                                {"members", std::move(list)}}));
  });
  on("list", [this](Message& m) {
    if (!broker().is_root()) {
      broker().forward_upstream(std::move(m));
      return;
    }
    Json names = Json::array();
    for (const auto& [group, members] : members_) names.push_back(group);
    respond_ok(m, Json::object({{"groups", std::move(names)}}));
  });
}

void Group::apply_and_forward(const std::string& group, Delta delta,
                              Message* ack) {
  if (broker().is_root()) {
    auto& members = members_[group];
    for (auto& m : delta.join) members.insert(std::move(m));
    for (auto& m : delta.leave) members.erase(m);
    broker().publish("group.change", Json::object({{"name", group},
                                                   {"size", members.size()}}));
  } else {
    Delta& pending = pending_[group];
    std::move(delta.join.begin(), delta.join.end(),
              std::back_inserter(pending.join));
    std::move(delta.leave.begin(), delta.leave.end(),
              std::back_inserter(pending.leave));
    if (flush_scheduled_.insert(group).second)
      broker().executor().post([this, group] { flush(group); });
  }
  if (ack) respond_ok(*ack, Json::object({{"name", group}}));
}

void Group::flush(const std::string& group) {
  flush_scheduled_.erase(group);
  auto it = pending_.find(group);
  if (it == pending_.end()) return;
  Delta delta = std::move(it->second);
  pending_.erase(it);
  if (delta.join.empty() && delta.leave.empty()) return;
  Json join = Json::array(), leave = Json::array();
  for (auto& m : delta.join) join.push_back(std::move(m));
  for (auto& m : delta.leave) leave.push_back(std::move(m));
  broker().forward_upstream(Message::request(
      "group.update", Json::object({{"name", group},
                                    {"join", std::move(join)},
                                    {"leave", std::move(leave)}})));
}

}  // namespace flux::modules
