// group: "Flux groups define and manage collection of processes that can
// participate in collective operations." (Table I)
//
// Membership is tracked authoritatively at the session root; joins/leaves
// are aggregated up the tree as (group, member-list) deltas. A membership
// snapshot is readable anywhere via group.info, and "group.change" events
// let interested parties (tools, barriers sized by group) react.
#pragma once

#include <map>
#include <set>
#include <string>

#include "broker/module.hpp"

namespace flux::modules {

class Group final : public ModuleBase {
 public:
  explicit Group(Broker& broker);

  [[nodiscard]] std::string_view name() const override { return "group"; }

 private:
  /// Member identifier: "rank.endpoint" (unique per client process).
  struct Delta {
    std::vector<std::string> join;
    std::vector<std::string> leave;
  };

  void apply_and_forward(const std::string& group, Delta delta, Message* ack);
  void flush(const std::string& group);

  // Root-only authoritative membership.
  std::map<std::string, std::set<std::string>> members_;
  // Batched deltas heading upstream.
  std::map<std::string, Delta> pending_;
  std::set<std::string> flush_scheduled_;
};

}  // namespace flux::modules
