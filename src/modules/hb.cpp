#include "modules/hb.hpp"

#include "broker/broker.hpp"

namespace flux::modules {

Heartbeat::Heartbeat(Broker& b) : ModuleBase(b) {
  on("get", [this](Message& m) {
    respond_ok(m, Json::object({{"epoch", epoch_},
                                {"period_us", period_.count() / 1000}}));
  });
  broker().module_subscribe(*this, "hb");
}

void Heartbeat::start() {
  const Json cfg = broker().module_config("hb");
  const auto period_us = cfg.get_int("period_us", 1000);
  period_ = std::chrono::microseconds(std::max<std::int64_t>(1, period_us));
  if (broker().is_root()) arm();
}

void Heartbeat::shutdown() {
  stopped_.store(true, std::memory_order_release);
}

void Heartbeat::arm() {
  broker().executor().post_daemon_after(
      period_, [this, tok = std::weak_ptr<const bool>(alive_)] {
        if (tok.expired()) return;  // module destroyed (broker restart)
        tick();
      });
}

void Heartbeat::tick() {
  if (stopped_.load(std::memory_order_acquire) || broker().failed()) return;
  broker().publish("hb", Json::object({{"epoch", ++epoch_}}));
  arm();
}

void Heartbeat::handle_event(const Message& msg) {
  if (msg.topic == "hb")
    epoch_ = static_cast<std::uint64_t>(msg.payload().get_int("epoch", 0));
}

}  // namespace flux::modules
