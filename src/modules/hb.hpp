// hb: "A periodic heartbeat event multicast across the comms session
// synchronizes background activity to reduce scheduling jitter." (Table I)
//
// The root broker's instance publishes an "hb" event with a monotonically
// increasing epoch; every instance tracks the last epoch seen. All periodic
// work in the session (liveness hellos, mon sampling, KVS cache expiry) keys
// off these events rather than free-running timers — the paper's
// noise-reduction design.
#pragma once

#include <atomic>
#include <memory>

#include "broker/module.hpp"
#include "exec/executor.hpp"

namespace flux::modules {

class Heartbeat final : public ModuleBase {
 public:
  explicit Heartbeat(Broker& broker);

  [[nodiscard]] std::string_view name() const override { return "hb"; }
  void start() override;
  void shutdown() override;
  void handle_event(const Message& msg) override;

  [[nodiscard]] std::uint64_t epoch() const noexcept { return epoch_; }
  [[nodiscard]] Duration period() const noexcept { return period_; }

 private:
  void arm();
  void tick();

  Duration period_{std::chrono::milliseconds(1)};
  std::uint64_t epoch_ = 0;
  // Set by shutdown(), which threaded sessions call from the owning
  // thread while the reactor may still be ticking.
  std::atomic<bool> stopped_{false};
  // Timers are not cancelable; a broker restart destroys this module while
  // a tick is still queued. The callback holds a weak_ptr to this token and
  // no-ops once the module is gone.
  std::shared_ptr<const bool> alive_ = std::make_shared<const bool>(true);
};

}  // namespace flux::modules
