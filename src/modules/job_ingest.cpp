#include "modules/job_ingest.hpp"

#include "base/log.hpp"
#include "broker/broker.hpp"
#include "core/jobspec.hpp"

namespace flux::modules {

namespace {

/// First-hop validation: the reasons a jobspec can never become a job.
/// Returns an empty string when acceptable.
std::string validate(const JobSpec& spec) {
  if (spec.request.nnodes < 1) return "jobspec: nnodes must be >= 1";
  if (spec.walltime <= Duration::zero())
    return "jobspec: walltime must be positive";
  if (spec.type != JobType::App)
    return "jobspec: only App jobs are runnable via job.submit "
           "(Instance jobs run through core/instance)";
  return {};
}

}  // namespace

JobIngest::JobIngest(Broker& b) : ModuleBase(b) {
  on("submit", [this](Message& m) { op_submit(m); });
}

void JobIngest::op_submit(Message& msg) {
  if (!msg.payload().get_bool("validated", false)) {
    if (!msg.payload().contains("jobspec")) {
      respond_error(msg, errc::job_rejected, "job.submit: missing jobspec");
      return;
    }
    JobSpec spec;
    try {
      spec = JobSpec::from_json(msg.payload().at("jobspec"));
    } catch (const std::exception& e) {
      respond_error(msg, errc::job_rejected,
                    std::string("job.submit: malformed jobspec: ") + e.what());
      return;
    }
    if (std::string why = validate(spec); !why.empty()) {
      stats_counter("rejected").inc();
      respond_error(msg, errc::job_rejected, "job.submit: " + why);
      return;
    }
    Json p = msg.payload();
    p["validated"] = true;
    msg.set_payload(std::move(p));
  }
  if (!broker().is_root()) {
    broker().forward_upstream(std::move(msg));
    return;
  }
  const std::uint64_t id = next_jobid_++;
  stats_counter("accepted").inc();
  co_spawn(broker().executor(), submit_to_manager(std::move(msg), id),
           "job.submit");
}

Task<void> JobIngest::submit_to_manager(Message req, std::uint64_t id) {
  Json fwd = Json::object({{"id", static_cast<std::int64_t>(id)},
                           {"jobspec", req.payload().at("jobspec")}});
  Message resp;
  try {
    resp = co_await broker().module_rpc(
        *this, Message::request("job-manager.submit", std::move(fwd)),
        std::chrono::seconds(5));
  } catch (const FluxException& e) {
    respond_error(req, e.error().code, "job.submit: manager unreachable");
    co_return;
  }
  if (resp.errnum != 0) {
    respond_error(req, static_cast<errc>(resp.errnum),
                  resp.payload().get_string("errmsg"));
    co_return;
  }
  respond_ok(req, Json::object({{"id", static_cast<std::int64_t>(id)}}));
}

obs::Counter& JobIngest::stats_counter(std::string_view which) {
  return broker().stats_registry().counter("job." + std::string(which));
}

}  // namespace flux::modules
