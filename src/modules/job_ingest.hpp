// job: the ingest half of the job lifecycle pipeline (paper §III).
//
// "job" is the client-facing submission service. It is loaded on every
// broker so validation happens at the *first* hop — a malformed jobspec is
// rejected on the submitter's own node without consuming tree bandwidth —
// then the validated request routes upstream to the session root, which
// assigns the session-wide monotonically increasing jobid and hands the job
// to the root's job-manager (queueing, scheduling, dispatch, KVS fold-back
// all live there; the job.<id>.* KVS namespace has exactly one writer).
//
// Protocol:
//   job.submit {jobspec}            client -> local validation -> root
//       response {id}               or errc::job_rejected / alloc_unsatisfiable
#pragma once

#include <cstdint>

#include "broker/module.hpp"
#include "exec/task.hpp"

namespace flux::modules {

class JobIngest final : public ModuleBase {
 public:
  explicit JobIngest(Broker& broker);

  [[nodiscard]] std::string_view name() const override { return "job"; }

 private:
  void op_submit(Message& msg);
  Task<void> submit_to_manager(Message req, std::uint64_t id);
  obs::Counter& stats_counter(std::string_view which);

  std::uint64_t next_jobid_ = 1;  // root only; session-wide monotonic
};

}  // namespace flux::modules
