#include "modules/job_manager.hpp"

#include <algorithm>

#include "api/handle.hpp"
#include "base/log.hpp"
#include "broker/broker.hpp"
#include "kvs/kvs_client.hpp"
#include "sched/policy.hpp"

namespace flux::modules {

namespace {

constexpr int kMaxAllocRetries = 3;
constexpr std::size_t kTerminalKeep = 1024;

std::string job_key(std::uint64_t id, std::string_view leaf) {
  return "job." + std::to_string(id) + "." + std::string(leaf);
}

}  // namespace

JobManager::JobManager(Broker& b) : ModuleBase(b) {
  on("submit", [this](Message& m) { op_submit(m); });
  on("cancel", [this](Message& m) { op_cancel(m); });
  on("state", [this](Message& m) { op_state(m); });
  on("wait", [this](Message& m) { op_wait(m); });
  on("list", [this](Message& m) { op_list(m); });
  broker().module_subscribe(*this, "live.down");

  obs::StatsRegistry& reg = broker().stats_registry();
  c_submitted_ = &reg.counter("job-manager.submitted");
  c_completed_ = &reg.counter("job-manager.completed");
  c_failed_ = &reg.counter("job-manager.failed");
  c_canceled_ = &reg.counter("job-manager.canceled");
  c_rejected_ = &reg.counter("job-manager.rejected");
  c_requeued_ = &reg.counter("job-manager.requeued");
  h_alloc_ns_ = &reg.histogram("job-manager.alloc_ns");
  h_run_ns_ = &reg.histogram("job-manager.run_ns");
  h_depth_ = &reg.histogram("job-manager.queue_depth");
}

JobManager::~JobManager() = default;

void JobManager::start() {
  if (!broker().is_root()) return;
  const Json cfg = broker().module_config("job-manager");
  max_queue_ = cfg.get_int("max_queue", 4096);
  const auto cores =
      static_cast<unsigned>(cfg.get_int("cores_per_node", 16));
  // Mirror pool: one flat rack of the session's brokers. The authoritative
  // free list is resvc's; this pool only paces the scheduler (feasibility,
  // backfill planning), so count agreement is what matters.
  graph_ = ResourceGraph::build_center("session", 1, 1, broker().size(), cores);
  pool_ = std::make_unique<ResourcePool>(graph_);
  sched_ = std::make_unique<Scheduler>(broker().executor(), *pool_,
                                       make_policy(cfg.get_string("policy", "fcfs")));
  sched_->bind_stats(broker().stats_registry(), "job-manager.sched");
  sched_->on_start([this](std::uint64_t sched_id, const Allocation&) {
    auto it = sched_to_job_.find(sched_id);
    if (it == sched_to_job_.end()) return;
    JobRecord* rec = find(it->second);
    if (rec == nullptr || rec->phase != Phase::Queued) return;
    rec->phase = Phase::Allocating;
    co_spawn(broker().executor(), dispatch(rec->id), "job-manager.dispatch");
  });
  handle_ = std::make_unique<Handle>(broker());
  kvs_ = std::make_unique<KvsClient>(*handle_);
}

bool JobManager::forward_if_not_root(Message& msg) {
  if (broker().is_root()) return false;
  broker().forward_upstream(std::move(msg));
  return true;
}

JobManager::JobRecord* JobManager::find(std::uint64_t id) {
  auto it = jobs_.find(id);
  return it == jobs_.end() ? nullptr : it->second.get();
}

void JobManager::event(JobRecord& rec, std::string_view ev_name, Json context) {
  Json e = Json::object(
      {{"t", broker().executor().now().count()}, {"name", std::string(ev_name)}});
  if (context.is_object())
    for (const auto& [k, v] : context.as_object()) e[k] = v;
  rec.eventlog.push_back(std::move(e));
  kvs_->txn().put(job_key(rec.id, "eventlog"), rec.eventlog);
  schedule_flush();
}

void JobManager::stage_state(JobRecord& rec) {
  kvs_->txn().put(job_key(rec.id, "state"),
                  std::string(job_state_name(rec.state)));
  schedule_flush();
}

void JobManager::schedule_flush() {
  if (flush_scheduled_) {
    flush_rerun_ = true;
    return;
  }
  flush_scheduled_ = true;
  co_spawn(broker().executor(), flush_task(), "job-manager.flush");
}

Task<void> JobManager::flush_task() {
  // Coalesced single-writer commit loop: stages that arrive while a commit
  // is in flight fold into one follow-up commit (the watch-refresh pattern).
  do {
    flush_rerun_ = false;
    try {
      co_await kvs_->commit();
    } catch (const FluxException& e) {
      log::warn("job-manager", "kvs flush failed: ", e.what());
    }
  } while (flush_rerun_);
  flush_scheduled_ = false;
}

void JobManager::op_submit(Message& msg) {
  if (forward_if_not_root(msg)) return;
  const auto id = static_cast<std::uint64_t>(msg.payload().get_int("id", 0));
  if (id == 0 || !msg.payload().contains("jobspec")) {
    respond_error(msg, errc::inval, "job-manager.submit: need id and jobspec");
    return;
  }
  JobSpec spec;
  try {
    spec = JobSpec::from_json(msg.payload().at("jobspec"));
  } catch (const std::exception& e) {
    respond_error(msg, errc::job_rejected,
                  std::string("job-manager.submit: bad jobspec: ") + e.what());
    return;
  }
  if (std::cmp_greater_equal(sched_->queue_length(), max_queue_)) {
    c_rejected_->inc();
    respond_error(msg, errc::job_rejected,
                  "job-manager.submit: pending queue full");
    return;
  }
  Expected<std::uint64_t> sid =
      sched_->submit(spec.request, spec.walltime, spec.priority,
                     /*manual_completion=*/true);
  if (!sid) {
    c_rejected_->inc();
    respond_error(msg, errc::alloc_unsatisfiable,
                  "job-manager.submit: request can never fit this session");
    return;
  }

  auto rec = std::make_unique<JobRecord>();
  rec->id = id;
  rec->spec = std::move(spec);
  rec->sched_id = *sid;
  rec->submit_t = broker().executor().now();
  sched_to_job_[*sid] = id;
  JobRecord& r = *rec;
  jobs_.emplace(id, std::move(rec));

  c_submitted_->inc();
  h_depth_->record(sched_->queue_length());
  kvs_->txn().put(job_key(id, "jobspec"), r.spec.to_json());
  event(r, "submit", Json::object({{"priority", r.spec.priority},
                                   {"nnodes", r.spec.request.nnodes}}));
  stage_state(r);
  respond_ok(msg, Json::object({{"id", static_cast<std::int64_t>(id)}}));
}

Task<void> JobManager::dispatch(std::uint64_t id) {
  JobRecord* rec = find(id);
  if (rec == nullptr || rec->phase != Phase::Allocating) co_return;
  if (rec->canceled) {
    finalize(*rec, JobState::Canceled, Json::object(), 0, "canceled");
    co_return;
  }

  // 1. Authoritative allocation from resvc.
  const Json alloc_req =
      Json::object({{"jobid", std::to_string(id)},
                    {"nnodes", rec->spec.request.nnodes}});
  Message alloc_resp;
  bool alloc_threw = false;  // timeout / host_down arrive as exceptions
  try {
    alloc_resp = co_await broker().module_rpc(
        *this, Message::request("resvc.alloc", alloc_req),
        std::chrono::seconds(5));
  } catch (const FluxException& e) {
    if (e.error().code == errc::canceled) co_return;  // session shutdown
    alloc_threw = true;
  }
  rec = find(id);
  if (rec == nullptr || rec->phase != Phase::Allocating) {
    // Finalized meanwhile (live.down): return the allocation if we got one.
    if (!alloc_threw && alloc_resp.errnum == 0)
      co_spawn(broker().executor(), release_allocation(id),
               "job-manager.release");
    co_return;
  }
  if (alloc_threw || alloc_resp.errnum != 0) {
    // Mirror raced the authoritative pool (direct resvc users, node death).
    // Re-queue a bounded number of times, then fail.
    sched_->finish(rec->sched_id);
    sched_to_job_.erase(rec->sched_id);
    if (rec->alloc_retries++ < kMaxAllocRetries && !rec->canceled) {
      Expected<std::uint64_t> sid =
          sched_->submit(rec->spec.request, rec->spec.walltime,
                         rec->spec.priority, /*manual_completion=*/true);
      if (sid) {
        rec->sched_id = *sid;
        rec->phase = Phase::Queued;
        sched_to_job_[*sid] = id;
        c_requeued_->inc();
        event(*rec, "requeue", Json::object({{"try", rec->alloc_retries}}));
        co_return;
      }
    }
    rec->phase = Phase::Done;  // scheduler already released above
    rec->state = JobState::Failed;
    rec->freed = true;
    event(*rec, "alloc_failed", Json::object());
    finish_terminal(*rec, Json::object(), 0, "alloc_failed");
    co_return;
  }

  std::vector<NodeId> ranks;
  Json ranks_json = alloc_resp.payload().at("ranks");
  for (const Json& r : ranks_json.as_array())
    ranks.push_back(static_cast<NodeId>(r.as_int()));
  rec->ranks = std::move(ranks);

  if (rec->canceled || rec->node_died) {
    const JobState terminal =
        rec->canceled ? JobState::Canceled : JobState::Failed;
    finalize(*rec, terminal, Json::object(), 0,
             rec->canceled ? "canceled" : "node_down");
    co_return;
  }

  // 2. Transition to Running; fold allocation into the KVS.
  rec->state = JobState::Running;
  rec->phase = Phase::Dispatched;
  h_alloc_ns_->record(broker().executor().now() - rec->submit_t);
  kvs_->txn().put(job_key(id, "ranks"), ranks_json);
  event(*rec, "alloc", Json::object({{"ranks", ranks_json}}));
  event(*rec, "start", Json::object());
  stage_state(*rec);

  // 3. Execute through wexec. Empty command means the synthetic workload:
  // the built-in "sleep" for the job's walltime.
  const bool synthetic = rec->spec.command.empty();
  const std::string cmd = synthetic ? "sleep" : rec->spec.command;
  Json args = synthetic
                  ? Json::object({{"us", rec->spec.walltime.count() / 1000}})
                  : rec->spec.args;
  const Json run_req = Json::object({{"jobid", std::to_string(id)},
                                     {"cmd", cmd},
                                     {"args", std::move(args)},
                                     {"ranks", ranks_json}});
  const TimePoint started = broker().executor().now();
  // Backstop deadline: wexec's collective stdio fence can hang forever if a
  // participant broker dies; live.down normally fails the job first, but the
  // timeout guarantees this coroutine always settles.
  const Duration deadline =
      rec->spec.walltime * 2 + std::chrono::seconds(30);
  Message run_resp;
  try {
    run_resp = co_await broker().module_rpc(
        *this, Message::request("wexec.run", run_req), deadline);
  } catch (const FluxException&) {
    // Deadline or transport loss; if live.down already finalized the job
    // this is just the abandoned fence timing out.
    rec = find(id);
    if (rec != nullptr && rec->phase != Phase::Done)
      finalize(*rec, rec->canceled ? JobState::Canceled : JobState::Failed,
               Json::object(), 0, "exec_timeout");
    co_return;
  }

  rec = find(id);
  if (rec == nullptr || rec->phase == Phase::Done) co_return;  // live.down won
  h_run_ns_->record(broker().executor().now() - started);
  if (run_resp.errnum != 0) {
    const JobState terminal =
        rec->canceled ? JobState::Canceled : JobState::Failed;
    finalize(*rec, terminal, Json::object(), 0, "exec_failed");
    co_return;
  }
  const bool success = run_resp.payload().get_bool("success", false);
  Json exits = run_resp.payload().at("exits");
  const std::int64_t ntasks = run_resp.payload().get_int("ntasks", 0);
  JobState terminal = JobState::Failed;
  if (rec->canceled)
    terminal = JobState::Canceled;
  else if (success)
    terminal = JobState::Complete;
  finalize(*rec, terminal, std::move(exits), ntasks, "exit");
}

void JobManager::finalize(JobRecord& rec, JobState terminal, Json exits,
                          std::int64_t ntasks, std::string_view why) {
  if (rec.phase == Phase::Done) return;
  // Scheduler bookkeeping: a Queued job is still in the scheduler's pending
  // queue; anything later holds a mirror-pool allocation.
  if (rec.phase == Phase::Queued)
    (void)sched_->cancel(rec.sched_id);
  else
    sched_->finish(rec.sched_id);
  sched_to_job_.erase(rec.sched_id);
  rec.phase = Phase::Done;
  if (!rec.ranks.empty() && !rec.freed) {
    rec.freed = true;
    co_spawn(broker().executor(), release_allocation(rec.id),
             "job-manager.release");
  }
  rec.state = terminal;
  finish_terminal(rec, std::move(exits), ntasks, why);
}

void JobManager::finish_terminal(JobRecord& rec, Json exits,
                                 std::int64_t ntasks, std::string_view why) {
  const bool success = rec.state == JobState::Complete;
  rec.result =
      Json::object({{"id", static_cast<std::int64_t>(rec.id)},
                    {"state", std::string(job_state_name(rec.state))},
                    {"success", success},
                    {"exits", std::move(exits)},
                    {"ntasks", ntasks}});
  event(rec, "finish",
        Json::object({{"state", std::string(job_state_name(rec.state))},
                      {"why", std::string(why)}}));
  stage_state(rec);
  kvs_->txn().put(job_key(rec.id, "result"), rec.result);
  if (!rec.ranks.empty())
    kvs_->txn().put(job_key(rec.id, "stdio"),
                    "lwj." + std::to_string(rec.id));
  schedule_flush();

  switch (rec.state) {
    case JobState::Complete: c_completed_->inc(); break;
    case JobState::Canceled: c_canceled_->inc(); break;
    default: c_failed_->inc(); break;
  }
  for (Message& w : rec.waiters) respond_ok(w, rec.result);
  rec.waiters.clear();

  terminal_fifo_.push_back(rec.id);
  while (terminal_fifo_.size() > kTerminalKeep) {
    jobs_.erase(terminal_fifo_.front());
    terminal_fifo_.pop_front();
  }
  try_tombstone();
}

Task<void> JobManager::release_allocation(std::uint64_t id) {
  const Json req = Json::object({{"jobid", std::to_string(id)}});
  try {
    Message resp = co_await broker().module_rpc(
        *this, Message::request("resvc.free", req), std::chrono::seconds(5));
    if (resp.errnum != 0)
      log::warn("job-manager", "resvc.free failed for job ", id);
  } catch (const FluxException&) {
    // Timeout or shutdown; live.down tombstoning reconciles the pool.
  }
}

Task<void> JobManager::kill_tasks(std::uint64_t id) {
  const Json req =
      Json::object({{"jobid", std::to_string(id)}, {"signum", 15}});
  try {
    Message resp = co_await broker().module_rpc(
        *this, Message::request("wexec.kill", req), std::chrono::seconds(5));
    if (resp.errnum != 0)
      log::debug("job-manager", "wexec.kill miss for job ", id);
  } catch (const FluxException&) {
    // Timeout or shutdown; the dispatch backstop deadline reaps the job.
  }
}

void JobManager::op_cancel(Message& msg) {
  if (forward_if_not_root(msg)) return;
  const auto id = static_cast<std::uint64_t>(msg.payload().get_int("id", 0));
  JobRecord* rec = find(id);
  if (rec == nullptr) {
    respond_error(msg, errc::job_unknown, "job-manager.cancel: no such job");
    return;
  }
  Json state_resp = Json::object(
      {{"id", static_cast<std::int64_t>(id)},
       {"state", std::string(job_state_name(rec->state))}});
  switch (rec->phase) {
    case Phase::Queued:
      rec->canceled = true;
      event(*rec, "cancel", Json::object());
      finalize(*rec, JobState::Canceled, Json::object(), 0, "canceled");
      break;
    case Phase::Allocating:
      // The dispatch coroutine observes the flag after resvc.alloc returns.
      rec->canceled = true;
      event(*rec, "cancel", Json::object());
      break;
    case Phase::Dispatched:
      rec->canceled = true;
      event(*rec, "cancel", Json::object());
      co_spawn(broker().executor(), kill_tasks(id), "job-manager.kill");
      break;
    case Phase::Done:
      break;  // idempotent: respond with the terminal state
  }
  state_resp["state"] = std::string(job_state_name(rec->state));
  respond_ok(msg, std::move(state_resp));
}

void JobManager::op_state(Message& msg) {
  if (forward_if_not_root(msg)) return;
  const auto id = static_cast<std::uint64_t>(msg.payload().get_int("id", 0));
  if (JobRecord* rec = find(id)) {
    respond_ok(msg,
               Json::object({{"id", static_cast<std::int64_t>(id)},
                             {"state",
                              std::string(job_state_name(rec->state))}}));
    return;
  }
  co_spawn(broker().executor(),
           answer_from_kvs(std::move(msg), id, /*want_result=*/false),
           "job-manager.state");
}

void JobManager::op_wait(Message& msg) {
  if (forward_if_not_root(msg)) return;
  const auto id = static_cast<std::uint64_t>(msg.payload().get_int("id", 0));
  if (JobRecord* rec = find(id)) {
    if (rec->phase == Phase::Done)
      respond_ok(msg, rec->result);
    else
      rec->waiters.push_back(std::move(msg));
    return;
  }
  co_spawn(broker().executor(),
           answer_from_kvs(std::move(msg), id, /*want_result=*/true),
           "job-manager.wait");
}

Task<void> JobManager::answer_from_kvs(Message req, std::uint64_t id,
                                       bool want_result) {
  // Evicted (or pre-restart) jobs: the KVS is the system of record.
  const std::string key = job_key(id, want_result ? "result" : "state");
  try {
    Json value = co_await kvs_->get(key);
    if (want_result)
      respond_ok(req, std::move(value));
    else {
      Json out = Json::object({{"id", static_cast<std::int64_t>(id)},
                               {"state", value.as_string()}});
      respond_ok(req, std::move(out));
    }
  } catch (const FluxException&) {
    respond_error(req, errc::job_unknown, "job-manager: no such job");
  }
}

void JobManager::op_list(Message& msg) {
  if (forward_if_not_root(msg)) return;
  Json jobs = Json::array();
  for (const auto& [id, rec] : jobs_)
    jobs.push_back(Json::object(
        {{"id", static_cast<std::int64_t>(id)},
         {"state", std::string(job_state_name(rec->state))}}));
  respond_ok(msg, Json::object({{"jobs", std::move(jobs)}}));
}

void JobManager::handle_event(const Message& msg) {
  if (msg.topic != "live.down" || !broker().is_root() || !sched_) return;
  const auto rank = static_cast<NodeId>(msg.payload().get_int("rank", -1));
  if (rank >= broker().size()) return;
  // Shrink the mirror pool by one node (resvc already dropped the real one).
  ++pending_tombstones_;
  try_tombstone();
  // Fail every non-terminal job whose allocation includes the dead rank —
  // promptly, so nothing waits out the wexec fence that can no longer
  // complete, and the allocation is returned (resvc skips down ranks).
  std::vector<std::uint64_t> hit;
  for (const auto& [id, rec] : jobs_) {
    if (rec->phase == Phase::Done) continue;
    if (std::find(rec->ranks.begin(), rec->ranks.end(), rank) !=
        rec->ranks.end())
      hit.push_back(id);
  }
  for (std::uint64_t id : hit) {
    JobRecord* rec = find(id);
    rec->node_died = true;
    event(*rec, "node_down",
          Json::object({{"rank", static_cast<std::int64_t>(rank)}}));
    finalize(*rec, JobState::Failed, Json::object(), 0, "node_down");
  }
}

void JobManager::try_tombstone() {
  // A tombstone is a 1-node mirror allocation that is never released; it
  // keeps the scheduler's pool in count-agreement with resvc after a node
  // death. If every node is busy the tombstone waits for the next release.
  while (pending_tombstones_ > 0) {
    ResourceRequest one;
    one.nnodes = 1;
    Expected<Allocation> a = pool_->allocate(one);
    if (!a) return;
    --pending_tombstones_;
  }
}

Json JobManager::stats_json() const {
  Json j = ModuleBase::stats_json();
  if (sched_) {
    j["queue_depth"] = static_cast<std::int64_t>(sched_->queue_length());
    j["running"] = static_cast<std::int64_t>(sched_->running_count());
    j["active"] = static_cast<std::int64_t>(jobs_.size() -
                                            terminal_fifo_.size());
  }
  return j;
}

}  // namespace flux::modules
