// job-manager: the queueing/scheduling/dispatch half of the job lifecycle
// pipeline (paper §III; flux-core's job-manager + sched-simple, collapsed).
//
// Runs its real logic on the session root only (non-root brokers forward
// upstream, the resvc/wexec idiom). The root instance owns:
//   - admission control (bounded pending queue -> errc::job_rejected),
//   - a Scheduler over a mirror ResourcePool of the session's nodes,
//     reusing src/sched/policy (fcfs / firstfit / easy policies, priority
//     ordering inside the queue),
//   - the dispatch path: resvc.alloc -> wexec.run -> resvc.free,
//   - the JobState machine Pending -> Running -> Complete/Failed/Canceled,
//     with every transition appended to a KVS event log,
//   - the job.<id>.* KVS namespace (single writer):
//       job.<id>.jobspec    submitted JobSpec (JSON)
//       job.<id>.state      current state name ("pending", "running", ...)
//       job.<id>.eventlog   array of {t, name, ...context} entries
//       job.<id>.ranks      allocated broker ranks (once Running)
//       job.<id>.result     {id, state, success, exits, ntasks} (terminal)
//       job.<id>.stdio      ref to the wexec capture dir ("lwj.<id>")
//   KVS writes coalesce: transitions stage into the client txn and a single
//   in-flight commit coroutine flushes them (the KVS watch-refresh pattern).
//
// Protocol (all root-authoritative; non-root forwards upstream):
//   job-manager.submit {id, jobspec}   from job-ingest; responds {id}
//   job-manager.cancel {id}            cancel; kills running tasks (SIGTERM)
//   job-manager.state  {id}            -> {id, state}
//   job-manager.wait   {id}            -> terminal result (parks until then)
//   job-manager.list   {}              -> {jobs: [{id, state}...]}
//
// Failure handling: on "live.down" the manager fails (never orphans) every
// non-terminal job whose allocation includes the dead rank — the allocation
// is returned to resvc (which skips down ranks) and a tombstone allocation
// removes one node from the scheduler's mirror pool. A job that loses the
// resvc.alloc race is re-queued a bounded number of times, then Failed.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <vector>

#include "broker/module.hpp"
#include "core/jobspec.hpp"
#include "exec/task.hpp"
#include "resource/resource.hpp"
#include "sched/scheduler.hpp"

namespace flux {
class Handle;
class KvsClient;
}  // namespace flux

namespace flux::modules {

class JobManager final : public ModuleBase {
 public:
  explicit JobManager(Broker& broker);
  ~JobManager() override;

  [[nodiscard]] std::string_view name() const override { return "job-manager"; }
  void start() override;
  void handle_event(const Message& msg) override;
  [[nodiscard]] Json stats_json() const override;

 private:
  /// Where a job is in the dispatch pipeline (orthogonal to JobState:
  /// Allocating/Dispatched both present as Pending/Running to clients).
  enum class Phase { Queued, Allocating, Dispatched, Done };

  struct JobRecord {
    std::uint64_t id = 0;
    JobSpec spec;
    JobState state = JobState::Pending;
    Phase phase = Phase::Queued;
    std::uint64_t sched_id = 0;  ///< Scheduler's internal job id
    std::vector<NodeId> ranks;   ///< resvc allocation (empty until Running)
    bool canceled = false;       ///< cancel requested
    bool node_died = false;      ///< a rank in `ranks` was declared dead
    bool freed = false;          ///< resvc.free issued (or never allocated)
    int alloc_retries = 0;
    Json eventlog = Json::array();
    std::vector<Message> waiters;  ///< parked job-manager.wait requests
    Json result;                   ///< terminal result payload
    TimePoint submit_t{0};
  };

  void op_submit(Message& msg);
  void op_cancel(Message& msg);
  void op_state(Message& msg);
  void op_wait(Message& msg);
  void op_list(Message& msg);

  [[nodiscard]] bool forward_if_not_root(Message& msg);
  JobRecord* find(std::uint64_t id);

  /// Append an eventlog entry and stage the log + current state into the
  /// KVS txn (flushed by the coalesced commit coroutine).
  void event(JobRecord& rec, std::string_view ev_name, Json context);
  void stage_state(JobRecord& rec);
  void schedule_flush();
  Task<void> flush_task();

  Task<void> dispatch(std::uint64_t id);
  void finalize(JobRecord& rec, JobState terminal, Json exits,
                std::int64_t ntasks, std::string_view why);
  /// Terminal bookkeeping shared by finalize() and the alloc-failure path
  /// (which has already settled its scheduler state): result/eventlog/KVS,
  /// waiters, counters, eviction.
  void finish_terminal(JobRecord& rec, Json exits, std::int64_t ntasks,
                       std::string_view why);
  Task<void> release_allocation(std::uint64_t id);
  Task<void> kill_tasks(std::uint64_t id);
  Task<void> answer_from_kvs(Message req, std::uint64_t id, bool want_result);
  void try_tombstone();

  // Root-only state (built in start()).
  std::int64_t max_queue_ = 4096;
  ResourceGraph graph_;
  std::unique_ptr<ResourcePool> pool_;      ///< scheduler's mirror pool
  std::unique_ptr<Scheduler> sched_;
  std::unique_ptr<Handle> handle_;          ///< for the KVS client
  std::unique_ptr<KvsClient> kvs_;
  std::map<std::uint64_t, std::unique_ptr<JobRecord>> jobs_;
  std::map<std::uint64_t, std::uint64_t> sched_to_job_;
  std::deque<std::uint64_t> terminal_fifo_;  ///< bounded eviction of Done jobs
  int pending_tombstones_ = 0;
  bool flush_scheduled_ = false;
  bool flush_rerun_ = false;

  // Registry instruments (broker's StatsRegistry; resolved once).
  obs::Counter* c_submitted_ = nullptr;
  obs::Counter* c_completed_ = nullptr;
  obs::Counter* c_failed_ = nullptr;
  obs::Counter* c_canceled_ = nullptr;
  obs::Counter* c_rejected_ = nullptr;
  obs::Counter* c_requeued_ = nullptr;
  obs::Histogram* h_alloc_ns_ = nullptr;  ///< submit -> allocation latency
  obs::Histogram* h_run_ns_ = nullptr;    ///< allocation -> terminal latency
  obs::Histogram* h_depth_ = nullptr;     ///< queue depth sampled per submit
};

}  // namespace flux::modules
