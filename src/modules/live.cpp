#include "modules/live.hpp"

#include "base/log.hpp"
#include "broker/broker.hpp"

namespace flux::modules {

Live::Live(Broker& b) : ModuleBase(b) {
  on("hello", [this](Message& m) {
    const auto child = static_cast<NodeId>(m.payload().get_int("rank", -1));
    const auto epoch = static_cast<std::uint64_t>(m.payload().get_int("epoch", 0));
    auto [it, inserted] = last_hello_.try_emplace(child, epoch);
    if (!inserted) it->second = std::max(it->second, epoch);
    // No response: hellos are one-way, heartbeat-synchronized traffic.
  });
  on("status", [this](Message& m) {
    Json down = Json::array();
    for (NodeId r : dead_) down.push_back(r);
    respond_ok(m, Json::object({{"rank", broker().rank()},
                                {"monitored", last_hello_.size()},
                                {"down", std::move(down)}}));
  });
  broker().module_subscribe(*this, "hb");
  broker().module_subscribe(*this, "live.down");
  broker().module_subscribe(*this, "cmb.rejoin");
}

void Live::start() {
  const Json cfg = broker().module_config("live");
  missed_max_ = static_cast<std::uint64_t>(cfg.get_int("missed_max", 3));
  grace_epochs_ = missed_max_ + 1;
}

void Live::handle_event(const Message& msg) {
  if (msg.topic == "live.down") {
    // A failure cuts heartbeat delivery to the dead broker's whole subtree
    // until healing re-attaches it; without a fresh grace period every
    // broker below the failure would be cascade-declared dead the moment
    // events resume. Reset the hello clocks of our current children.
    const auto down_epoch =
        static_cast<std::uint64_t>(msg.payload().get_int("epoch", 0));
    for (auto& [child, last] : last_hello_)
      last = std::max(last, down_epoch);
    return;
  }
  if (msg.topic == "cmb.rejoin") {
    // A restarted broker was re-admitted: forget its death and give it a
    // fresh hello clock (the broker applied the new parent relation before
    // this handler ran, so it may already be our child).
    const auto back = static_cast<NodeId>(msg.payload().get_int("rank", -1));
    dead_.erase(back);
    last_hello_.erase(back);
    return;
  }
  if (msg.topic != "hb") return;
  on_heartbeat(static_cast<std::uint64_t>(msg.payload().get_int("epoch", 0)));
}

void Live::on_heartbeat(std::uint64_t epoch) {
  // Send our hello upstream. forward_upstream dispatches at the parent's
  // live module (first match above us).
  if (const auto up = broker().parent()) {
    (void)up;
    Message hello = Message::request(
        "live.hello",
        Json::object({{"rank", broker().rank()}, {"epoch", epoch}}));
    broker().forward_upstream(std::move(hello));
  }
  // Judge our children.
  if (epoch < grace_epochs_) return;
  for (NodeId child : broker().children()) {
    if (dead_.contains(child)) continue;
    auto it = last_hello_.find(child);
    if (it == last_hello_.end()) {
      // Newly adopted child (healing): start its clock now.
      last_hello_.emplace(child, epoch);
      continue;
    }
    const std::uint64_t last = it->second;
    if (epoch >= last + missed_max_) {
      dead_.insert(child);
      log::info("live", "rank ", broker().rank(), ": declaring child ", child,
                " dead (last hello epoch ", last, ", now ", epoch, ")");
      broker().publish("live.down",
                       Json::object({{"rank", child}, {"epoch", epoch}}));
    }
  }
}

}  // namespace flux::modules
