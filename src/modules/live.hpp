// live: "Each tree node receives heartbeat-synchronized hello messages from
// its children. After a configurable number of missed messages, a liveliness
// event is issued for a dead child." (Table I)
//
// On every hb event a non-root broker sends live.hello to its tree parent;
// the parent records the epoch. A child whose hello is more than
// `missed_max` epochs stale is declared dead via a "live.down" event, which
// also triggers topology self-healing (children of the dead rank re-parent
// to their grandparent; see Broker::deliver_event).
#pragma once

#include <map>
#include <set>

#include "broker/module.hpp"

namespace flux::modules {

class Live final : public ModuleBase {
 public:
  explicit Live(Broker& broker);

  [[nodiscard]] std::string_view name() const override { return "live"; }
  void start() override;
  void handle_event(const Message& msg) override;

  /// Ranks this broker has declared dead (children only).
  [[nodiscard]] const std::set<NodeId>& dead() const noexcept { return dead_; }

 private:
  void on_heartbeat(std::uint64_t epoch);

  std::uint64_t missed_max_ = 3;
  std::uint64_t grace_epochs_ = 2;  // no verdicts before this epoch
  std::map<NodeId, std::uint64_t> last_hello_;
  std::set<NodeId> dead_;
};

}  // namespace flux::modules
