#include "modules/logmod.hpp"

#include "broker/broker.hpp"

namespace flux::modules {

Json LogRecord::to_json() const {
  return Json::object({{"level", level},
                       {"rank", rank},
                       {"component", component},
                       {"text", text},
                       {"time_ns", time_ns}});
}

LogRecord LogRecord::from_json(const Json& j) {
  LogRecord rec;
  rec.level = static_cast<int>(j.get_int("level", 6));
  rec.rank = static_cast<NodeId>(j.get_int("rank", 0));
  rec.component = j.get_string("component");
  rec.text = j.get_string("text");
  rec.time_ns = j.get_int("time_ns", 0);
  return rec;
}

Log::Log(Broker& b) : ModuleBase(b) {
  on("append", [this](Message& m) {
    // Single record from a local client, or a batch from downstream. A
    // batch flagged "context" (fault dumps) bypasses the severity filter.
    if (m.payload().at("records").is_array()) {
      const bool force = m.payload().get_bool("context", false);
      for (const Json& j : m.payload().at("records").as_array())
        append(LogRecord::from_json(j), force);
    } else {
      LogRecord rec = LogRecord::from_json(m.payload());
      rec.rank = m.route.empty() ? broker().rank() : m.route.front().rank;
      rec.time_ns = broker().executor().now().count();
      append(std::move(rec));
      respond_ok(m);
    }
  });
  on("dump", [this](Message& m) {
    // Local circular-buffer dump (rank-addressed diagnostics).
    Json records = Json::array();
    for (const LogRecord& rec : ring_) records.push_back(rec.to_json());
    respond_ok(m, Json::object({{"rank", broker().rank()},
                                {"records", std::move(records)}}));
  });
  on("get", [this](Message& m) {
    if (!broker().is_root()) {
      broker().forward_upstream(std::move(m));
      return;
    }
    const auto max = static_cast<std::size_t>(m.payload().get_int("max", 100));
    Json records = Json::array();
    const std::size_t start =
        session_log_.size() > max ? session_log_.size() - max : 0;
    for (std::size_t i = start; i < session_log_.size(); ++i)
      records.push_back(session_log_[i].to_json());
    respond_ok(m, Json::object({{"total", session_log_.size()},
                                {"records", std::move(records)}}));
  });
  broker().module_subscribe(*this, "log.fault");
}

void Log::start() {
  const Json cfg = broker().module_config("log");
  ring_capacity_ = static_cast<std::size_t>(cfg.get_int("ring_capacity", 256));
  forward_level_ = static_cast<int>(cfg.get_int("forward_level", 6));
}

void Log::append(LogRecord rec, bool force) {
  ring_.push_back(rec);
  if (ring_.size() > ring_capacity_) ring_.pop_front();

  if (broker().is_root()) {
    session_log_.push_back(std::move(rec));
    if (session_log_.size() > session_log_max_) session_log_.pop_front();
    return;
  }
  // Filter: only records at/above the forwarding severity head upstream
  // ("log messages are reduced and filtered") — unless forced (fault dump).
  if (!force && rec.level > forward_level_) return;
  pending_.push_back(std::move(rec));
  if (flush_scheduled_) return;
  flush_scheduled_ = true;
  broker().executor().post([this] { flush(); });
}

void Log::flush() {
  flush_scheduled_ = false;
  if (pending_.empty()) return;
  Json records = Json::array();
  for (const LogRecord& rec : pending_) records.push_back(rec.to_json());
  pending_.clear();
  broker().forward_upstream(Message::request(
      "log.append", Json::object({{"records", std::move(records)}})));
}

void Log::handle_event(const Message& msg) {
  if (msg.topic != "log.fault") return;
  // Dump debug context upstream: everything in the ring, regardless of the
  // forwarding filter ("a circular debug buffer provides log context in
  // response to a fault event").
  if (broker().is_root()) {
    for (const LogRecord& rec : ring_) session_log_.push_back(rec);
    return;
  }
  if (ring_.empty()) return;
  Json records = Json::array();
  for (const LogRecord& rec : ring_) records.push_back(rec.to_json());
  broker().forward_upstream(Message::request(
      "log.append",
      Json::object({{"records", std::move(records)}, {"context", true}})));
}

}  // namespace flux::modules
