// log: "Log messages are reduced and filtered before being placed in a log
// file at the session root. A circular debug buffer provides log context in
// response to a fault event." (Table I)
//
// Every instance keeps a fixed-size circular buffer of everything it sees
// (any level). Records at or above the forwarding level are batched per
// reactor turn and reduced upstream; the root appends them to the session
// log. Publishing a "log.fault" event makes every instance dump its debug
// buffer upstream — the paper's post-mortem context mechanism.
#pragma once

#include <deque>
#include <string>
#include <vector>

#include "broker/module.hpp"

namespace flux::modules {

struct LogRecord {
  int level = 6;            ///< syslog-style: 3=err 4=warn 6=info 7=debug
  NodeId rank = 0;
  std::string component;
  std::string text;
  std::int64_t time_ns = 0;

  [[nodiscard]] Json to_json() const;
  static LogRecord from_json(const Json& j);
};

class Log final : public ModuleBase {
 public:
  explicit Log(Broker& broker);

  [[nodiscard]] std::string_view name() const override { return "log"; }
  void start() override;
  void handle_event(const Message& msg) override;

  /// Root-side session log (tests and the flux utility read via log.get).
  [[nodiscard]] const std::deque<LogRecord>& session_log() const noexcept {
    return session_log_;
  }

 private:
  void append(LogRecord rec, bool force = false);
  void flush();

  std::size_t ring_capacity_ = 256;
  int forward_level_ = 6;         ///< forward records with level <= this
  std::size_t session_log_max_ = 65536;

  std::deque<LogRecord> ring_;          // local circular debug buffer
  std::vector<LogRecord> pending_;      // batched for upstream
  bool flush_scheduled_ = false;
  std::deque<LogRecord> session_log_;   // root only
};

}  // namespace flux::modules
