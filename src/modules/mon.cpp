#include "modules/mon.hpp"

#include <algorithm>

#include "base/log.hpp"
#include "base/rng.hpp"
#include "broker/broker.hpp"
#include "kvs/treeobj.hpp"

namespace flux::modules {

void MonSample::merge(const MonSample& o) {
  if (o.count == 0) return;
  if (count == 0) {
    *this = o;
    return;
  }
  min = std::min(min, o.min);
  max = std::max(max, o.max);
  sum += o.sum;
  count += o.count;
}

Json MonSample::to_json() const {
  return Json::object(
      {{"min", min}, {"max", max}, {"sum", sum}, {"count", count}});
}

MonSample MonSample::from_json(const Json& j) {
  return MonSample{j.get_double("min"), j.get_double("max"),
                   j.get_double("sum"), j.get_int("count")};
}

Mon::Mon(Broker& b) : ModuleBase(b) {
  // Built-in samplers standing in for the paper's Linux sampling scripts.
  register_sampler("load", [](NodeId rank, std::uint64_t epoch) {
    Rng rng(0x10adULL ^ (static_cast<std::uint64_t>(rank) << 20) ^ epoch);
    return 0.5 + rng.uniform() * 15.5;  // synthetic per-core load
  });
  register_sampler("mem", [](NodeId rank, std::uint64_t epoch) {
    Rng rng(0x3e3eULL ^ (static_cast<std::uint64_t>(rank) << 20) ^ epoch);
    return 2.0 + rng.uniform() * 28.0;  // synthetic GB in use
  });

  on("reduce", [this](Message& m) {
    const auto epoch = static_cast<std::uint64_t>(m.payload().get_int("epoch"));
    std::map<std::string, MonSample, std::less<>> metrics;
    for (const auto& [mname, sample] : m.payload().at("metrics").as_object())
      metrics.emplace(mname, MonSample::from_json(sample));
    reduce(epoch, std::move(metrics));
  });
  broker().module_subscribe(*this, "hb");
}

void Mon::start() {
  const Json cfg = broker().module_config("mon");
  interval_epochs_ =
      static_cast<std::uint64_t>(std::max<std::int64_t>(
          1, cfg.get_int("interval_epochs", 4)));
  // Depth-staggered settle delays: leaves flush first, the root last, so
  // each epoch's aggregate arrives (nearly always) whole at every level.
  const unsigned levels_above =
      broker().topology().height() - broker().depth() + 1;
  flush_delay_ = flush_delay_ * levels_above;
}

void Mon::register_sampler(std::string sampler_name, Sampler fn) {
  samplers_.insert_or_assign(std::move(sampler_name), std::move(fn));
}

void Mon::handle_event(const Message& msg) {
  if (msg.topic != "hb") return;
  on_heartbeat(static_cast<std::uint64_t>(msg.payload().get_int("epoch", 0)));
}

void Mon::on_heartbeat(std::uint64_t epoch) {
  if (epoch % interval_epochs_ != 0) return;
  co_spawn(broker().executor(), sample_epoch(epoch), "mon.sample");
}

Task<void> Mon::sample_epoch(std::uint64_t epoch) {
  // Which samplers are active is controlled via the KVS ("scripts stored in
  // the KVS activate ... sampling"). Resolved against the local cache, so
  // this is a cheap local read once warm.
  Message get_req = Message::request(
      "kvs.get", Json::object({{"key", "mon.samplers"}}));
  Message resp = co_await broker().module_rpc(*this, std::move(get_req));
  if (resp.errnum != 0) co_return;  // sampling not configured
  ObjPtr obj = resp.data() ? parse_object(*resp.data()) : nullptr;
  if (!obj || !obj->is_val() || !obj->value().is_array()) co_return;

  std::map<std::string, MonSample, std::less<>> metrics;
  for (const Json& sampler_name : obj->value().as_array()) {
    if (!sampler_name.is_string()) continue;
    auto it = samplers_.find(sampler_name.as_string());
    if (it == samplers_.end()) continue;
    metrics.emplace(sampler_name.as_string(),
                    MonSample::single(it->second(broker().rank(), epoch)));
  }
  if (!metrics.empty()) reduce(epoch, std::move(metrics));
}

void Mon::reduce(std::uint64_t epoch,
                 std::map<std::string, MonSample, std::less<>> metrics) {
  EpochAgg& agg = pending_[epoch];
  for (auto& [mname, sample] : metrics) agg.metrics[mname].merge(sample);
  if (agg.flush_scheduled) return;
  agg.flush_scheduled = true;
  // Settle delay (depth-staggered, see start()) so contributions from the
  // whole subtree coalesce before re-transmission.
  broker().executor().post_daemon_after(
      flush_delay_, [this, epoch, tok = std::weak_ptr<const bool>(alive_)] {
        if (tok.expired()) return;  // module destroyed (broker restart)
        flush(epoch);
      });
}

void Mon::flush(std::uint64_t epoch) {
  auto it = pending_.find(epoch);
  if (it == pending_.end()) return;
  if (broker().is_root()) {
    co_spawn(broker().executor(), store_aggregate(epoch), "mon.store");
    return;
  }
  EpochAgg agg = std::move(it->second);
  pending_.erase(it);
  Json metrics = Json::object();
  for (const auto& [mname, sample] : agg.metrics)
    metrics[mname] = sample.to_json();
  broker().forward_upstream(Message::request(
      "mon.reduce",
      Json::object({{"epoch", epoch}, {"metrics", std::move(metrics)}})));
}

Task<void> Mon::store_aggregate(std::uint64_t epoch) {
  auto it = pending_.find(epoch);
  if (it == pending_.end()) co_return;
  EpochAgg agg = std::move(it->second);
  pending_.erase(it);

  for (const auto& [mname, sample] : agg.metrics) {
    Json doc = sample.to_json();
    doc["avg"] = sample.count > 0
                     ? sample.sum / static_cast<double>(sample.count)
                     : 0.0;
    ObjPtr obj = make_val_object(std::move(doc));
    Message put = Message::request(
        "kvs.put", Json::object({{"key", "mon.data." + mname + ".e" +
                                             std::to_string(epoch)}}));
    put.set_data(std::shared_ptr<const std::string>(obj, &obj->bytes));
    Message resp = co_await broker().module_rpc(*this, std::move(put));
    if (resp.errnum != 0)
      log::warn("mon", "failed to store sample: ", resp.errnum);
  }
  Message resp =
      co_await broker().module_rpc(*this, Message::request("kvs.commit"));
  if (resp.errnum != 0)
    log::warn("mon", "failed to commit samples: ", resp.errnum);
}

}  // namespace flux::modules
