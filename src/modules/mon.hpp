// mon: "Linux scripts stored in the KVS activate heartbeat-synchronized
// sampling. Samples are reduced and stored in the KVS." (Table I)
//
// Substitution (see DESIGN.md): sampler *scripts* become registered C++
// sampler functions; which samplers are active is still controlled through
// the KVS (key "mon.samplers": ["load", ...]), read on each sampling epoch.
// Samples are min/max/sum/count-reduced up the tree and the root stores the
// aggregate back into the KVS under mon.data.<sampler>.e<epoch>.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <string>

#include "broker/module.hpp"
#include "exec/task.hpp"

namespace flux::modules {

/// One per-rank metric aggregate.
struct MonSample {
  double min = 0, max = 0, sum = 0;
  std::int64_t count = 0;

  void merge(const MonSample& o);
  [[nodiscard]] Json to_json() const;
  static MonSample from_json(const Json& j);
  static MonSample single(double v) { return {v, v, v, 1}; }
};

class Mon final : public ModuleBase {
 public:
  using Sampler = std::function<double(NodeId rank, std::uint64_t epoch)>;

  explicit Mon(Broker& broker);

  [[nodiscard]] std::string_view name() const override { return "mon"; }
  void start() override;
  void handle_event(const Message& msg) override;

  /// Add/replace a sampler available on this instance (tests install custom
  /// ones; "load" and "mem" are built in).
  void register_sampler(std::string sampler_name, Sampler fn);

 private:
  void on_heartbeat(std::uint64_t epoch);
  Task<void> sample_epoch(std::uint64_t epoch);
  void reduce(std::uint64_t epoch,
              std::map<std::string, MonSample, std::less<>> metrics);
  void flush(std::uint64_t epoch);
  Task<void> store_aggregate(std::uint64_t epoch);

  std::uint64_t interval_epochs_ = 4;  ///< sample every N heartbeats
  Duration flush_delay_{std::chrono::microseconds(200)};

  std::map<std::string, Sampler, std::less<>> samplers_;

  struct EpochAgg {
    std::map<std::string, MonSample, std::less<>> metrics;
    bool flush_scheduled = false;
  };
  std::map<std::uint64_t, EpochAgg> pending_;
  // Timers are not cancelable; a broker restart destroys this module while
  // a flush is still queued. The callback holds a weak_ptr to this token
  // and no-ops once the module is gone.
  std::shared_ptr<const bool> alive_ = std::make_shared<const bool>(true);
};

}  // namespace flux::modules
