#include "modules/resvc.hpp"

#include "base/log.hpp"
#include "broker/broker.hpp"
#include "kvs/treeobj.hpp"

namespace flux::modules {

Resvc::Resvc(Broker& b) : ModuleBase(b) {
  on("alloc", [this](Message& m) { op_alloc(m); });
  on("free", [this](Message& m) { op_free(m); });
  on("status", [this](Message& m) { op_status(m); });
  broker().module_subscribe(*this, "live.down");
}

void Resvc::start() {
  if (!broker().is_root()) return;
  const Json cfg = broker().module_config("resvc");
  cores_per_node_ = cfg.get_int("cores_per_node", 16);
  mem_per_node_gb_ = cfg.get_int("mem_per_node_gb", 32);
  for (NodeId r = 0; r < broker().size(); ++r) free_.insert(r);
  if (cfg.get_bool("enumerate", true))
    co_spawn(broker().executor(), enumerate(), "resvc.enumerate");
}

Task<void> Resvc::enumerate() {
  for (NodeId r = 0; r < broker().size(); ++r) {
    ObjPtr obj = make_val_object(Json::object({{"cores", cores_per_node_},
                                               {"mem_gb", mem_per_node_gb_},
                                               {"state", "up"}}));
    Message put = Message::request(
        "kvs.put",
        Json::object({{"key", "resource.nodes.n" + std::to_string(r)}}));
    put.set_data(std::shared_ptr<const std::string>(obj, &obj->bytes));
    Message resp = co_await broker().module_rpc(*this, std::move(put));
    if (resp.errnum != 0) {
      log::error("resvc", "enumeration put failed");
      co_return;
    }
  }
  Message resp =
      co_await broker().module_rpc(*this, Message::request("kvs.commit"));
  if (resp.errnum != 0) log::error("resvc", "enumeration commit failed");
}

void Resvc::op_alloc(Message& msg) {
  if (!broker().is_root()) {
    broker().forward_upstream(std::move(msg));
    return;
  }
  const std::string jobid = msg.payload().get_string("jobid");
  const std::int64_t nnodes = msg.payload().get_int("nnodes", 1);
  if (jobid.empty() || nnodes <= 0) {
    respond_error(msg, errc::inval, "resvc.alloc: need jobid and nnodes > 0");
    return;
  }
  if (allocations_.contains(jobid)) {
    respond_error(msg, errc::exist, "resvc.alloc: jobid already allocated");
    return;
  }
  if (std::cmp_less(free_.size(), nnodes)) {
    respond_error(msg, errc::no_spc, "resvc.alloc: insufficient free nodes");
    return;
  }
  std::vector<NodeId> ranks;
  ranks.reserve(static_cast<std::size_t>(nnodes));
  for (auto it = free_.begin(); std::cmp_less(ranks.size(), nnodes);)
    ranks.push_back(*it), it = free_.erase(it);
  allocations_.emplace(jobid, ranks);
  co_spawn(broker().executor(), record_alloc(std::move(msg), jobid, ranks),
           "resvc.record");
}

Task<void> Resvc::record_alloc(Message req, std::string jobid,
                               std::vector<NodeId> ranks) {
  Json list = Json::array();
  for (NodeId r : ranks) list.push_back(r);
  ObjPtr obj = make_val_object(list);
  Message put = Message::request(
      "kvs.put", Json::object({{"key", "lwj." + jobid + ".resources"}}));
  put.set_data(std::shared_ptr<const std::string>(obj, &obj->bytes));
  Message put_resp = co_await broker().module_rpc(*this, std::move(put));
  Message commit_resp =
      co_await broker().module_rpc(*this, Message::request("kvs.commit"));
  if (put_resp.errnum != 0 || commit_resp.errnum != 0)
    log::warn("resvc", "failed to record allocation for ", jobid);
  respond_ok(req, Json::object({{"jobid", std::move(jobid)},
                                {"ranks", std::move(list)},
                                {"cores_per_node", cores_per_node_}}));
}

void Resvc::op_free(Message& msg) {
  if (!broker().is_root()) {
    broker().forward_upstream(std::move(msg));
    return;
  }
  const std::string jobid = msg.payload().get_string("jobid");
  auto it = allocations_.find(jobid);
  if (it == allocations_.end()) {
    respond_error(msg, errc::noent, "resvc.free: no such allocation");
    return;
  }
  for (NodeId r : it->second)
    if (!down_.contains(r)) free_.insert(r);
  allocations_.erase(it);
  respond_ok(msg, Json::object({{"jobid", jobid}}));
}

void Resvc::op_status(Message& msg) {
  if (!broker().is_root()) {
    broker().forward_upstream(std::move(msg));
    return;
  }
  Json jobs = Json::array();
  for (const auto& [jobid, ranks] : allocations_) jobs.push_back(jobid);
  respond_ok(msg, Json::object({{"total", broker().size()},
                                {"free", free_.size()},
                                {"down", down_.size()},
                                {"jobs", std::move(jobs)}}));
}

void Resvc::handle_event(const Message& msg) {
  if (msg.topic != "live.down" || !broker().is_root()) return;
  const auto rank = static_cast<NodeId>(msg.payload().get_int("rank", -1));
  if (rank >= broker().size()) return;
  down_.insert(rank);
  free_.erase(rank);
  co_spawn(broker().executor(), mark_node_state(rank, "down"), "resvc.down");
}

Task<void> Resvc::mark_node_state(NodeId rank, std::string state) {
  ObjPtr obj = make_val_object(Json::object({{"cores", cores_per_node_},
                                             {"mem_gb", mem_per_node_gb_},
                                             {"state", std::move(state)}}));
  Message put = Message::request(
      "kvs.put",
      Json::object({{"key", "resource.nodes.n" + std::to_string(rank)}}));
  put.set_data(std::shared_ptr<const std::string>(obj, &obj->bytes));
  (void)co_await broker().module_rpc(*this, std::move(put));
  (void)co_await broker().module_rpc(*this, Message::request("kvs.commit"));
}

}  // namespace flux::modules
