// resvc: "Resources are enumerated in the KVS and allocated when the
// scheduler runs an application." (Table I)
//
// The root instance owns the session's node inventory: at startup it
// enumerates every broker rank into the KVS (resource.nodes.<rank> =
// {cores, mem_gb, state}) and then serves first-fit node allocations.
// Allocations are recorded under lwj.<jobid>.resources. live.down events
// take nodes out of the pool (and update the KVS enumeration).
//
// This is the *flat* per-session allocator the paper's prototype had; the
// hierarchical, multi-level scheduling of §III lives above it in src/sched
// and src/core.
#pragma once

#include <map>
#include <set>
#include <string>

#include "broker/module.hpp"
#include "exec/task.hpp"

namespace flux::modules {

class Resvc final : public ModuleBase {
 public:
  explicit Resvc(Broker& broker);

  [[nodiscard]] std::string_view name() const override { return "resvc"; }
  void start() override;
  void handle_event(const Message& msg) override;

 private:
  void op_alloc(Message& msg);
  void op_free(Message& msg);
  void op_status(Message& msg);

  Task<void> enumerate();
  Task<void> record_alloc(Message req, std::string jobid,
                          std::vector<NodeId> ranks);
  Task<void> mark_node_state(NodeId rank, std::string state);

  // Root-only state.
  std::int64_t cores_per_node_ = 16;
  std::int64_t mem_per_node_gb_ = 32;
  std::set<NodeId> free_;
  std::set<NodeId> down_;
  std::map<std::string, std::vector<NodeId>> allocations_;
};

}  // namespace flux::modules
