#include "modules/wexec.hpp"

#include <algorithm>

#include "api/handle.hpp"
#include "base/log.hpp"
#include "broker/broker.hpp"
#include "kvs/kvs_client.hpp"

namespace flux::modules {

// ---------------------------------------------------------------------------
// ProcessCtx
// ---------------------------------------------------------------------------

ProcessCtx::ProcessCtx(Broker& broker, std::string jobid, Json args)
    : broker_(broker),
      jobid_(std::move(jobid)),
      args_(std::move(args)),
      handle_(std::make_unique<Handle>(broker)),
      kvs_(std::make_unique<KvsClient>(*handle_)) {}

ProcessCtx::~ProcessCtx() = default;

NodeId ProcessCtx::rank() const noexcept { return broker_.rank(); }
Executor& ProcessCtx::executor() noexcept { return broker_.executor(); }
SleepAwaiter ProcessCtx::sleep(Duration d) {
  return sleep_for(broker_.executor(), d);
}

// ---------------------------------------------------------------------------
// CommandRegistry (built-ins stand in for Linux binaries)
// ---------------------------------------------------------------------------

CommandRegistry& CommandRegistry::instance() {
  static CommandRegistry registry;
  return registry;
}

void CommandRegistry::add(std::string cmd_name, Command fn) {
  commands_.insert_or_assign(std::move(cmd_name), std::move(fn));
}

const Command* CommandRegistry::find(std::string_view cmd_name) const {
  auto it = commands_.find(cmd_name);
  return it == commands_.end() ? nullptr : &it->second;
}

std::vector<std::string> CommandRegistry::names() const {
  std::vector<std::string> out;
  out.reserve(commands_.size());
  for (const auto& [cmd_name, fn] : commands_) out.push_back(cmd_name);
  return out;
}

CommandRegistry::CommandRegistry() {
  add("hostname", [](ProcessCtx& p) -> Task<int> {
    p.out("node" + std::to_string(p.rank()));
    co_return 0;
  });
  add("echo", [](ProcessCtx& p) -> Task<int> {
    p.out(p.args().get_string("text", ""));
    co_return 0;
  });
  add("sleep", [](ProcessCtx& p) -> Task<int> {
    const auto us = p.args().get_int("us", 1000);
    co_await p.sleep(std::chrono::microseconds(us));
    co_return p.killed() ? 128 + p.signum() : 0;
  });
  add("spin", [](ProcessCtx& p) -> Task<int> {
    // Runs until signalled (bounded backstop so a lost kill cannot wedge a
    // simulation; ~1s of virtual time).
    for (int i = 0; i < 10000 && !p.killed(); ++i)
      co_await p.sleep(std::chrono::microseconds(100));
    co_return p.killed() ? 128 + p.signum() : 1;
  });
  add("exit", [](ProcessCtx& p) -> Task<int> {
    co_return static_cast<int>(p.args().get_int("code", 0));
  });
  add("kvsput", [](ProcessCtx& p) -> Task<int> {
    const std::string key = p.args().get_string("key");
    if (key.empty()) {
      p.err("kvsput: missing key");
      co_return 1;
    }
    co_await p.kvs().put(key, p.args().at("value"));
    co_await p.kvs().commit();
    p.out("stored " + key);
    co_return 0;
  });
}

// ---------------------------------------------------------------------------
// Wexec module
// ---------------------------------------------------------------------------

Wexec::Wexec(Broker& b) : ModuleBase(b) {
  on("run", [this](Message& m) { op_run(m); });
  on("kill", [this](Message& m) { op_kill(m); });
  on("complete", [this](Message& m) { op_complete(m); });
  on("ps", [this](Message& m) {
    Json names = Json::array();
    for (const auto& [jobid, proc] : procs_) names.push_back(jobid);
    respond_ok(m, Json::object({{"rank", broker().rank()},
                                {"running", std::move(names)}}));
  });
  broker().module_subscribe(*this, "wexec.exec");
  broker().module_subscribe(*this, "wexec.signal");
}

void Wexec::op_run(Message& msg) {
  // Coordination happens at the root: forward until we are it.
  if (!broker().is_root()) {
    broker().forward_upstream(std::move(msg));
    return;
  }
  const std::string jobid = msg.payload().get_string("jobid");
  const std::string cmd = msg.payload().get_string("cmd");
  if (jobid.empty() || cmd.empty()) {
    respond_error(msg, errc::inval, "wexec.run: need jobid and cmd");
    return;
  }
  if (jobs_.contains(jobid)) {
    respond_error(msg, errc::exist, "wexec.run: jobid in use");
    return;
  }
  Json ranks = msg.payload().at("ranks");
  const std::int64_t ntasks =
      ranks.is_array() ? static_cast<std::int64_t>(ranks.size())
                       : static_cast<std::int64_t>(broker().size());
  if (ntasks == 0) {
    respond_error(msg, errc::inval, "wexec.run: empty rank list");
    return;
  }
  Job& job = jobs_[jobid];
  job.ntasks = ntasks;
  job.waiters.push_back(msg);
  broker().publish("wexec.exec",
                   Json::object({{"jobid", jobid},
                                 {"cmd", cmd},
                                 {"args", msg.payload().at("args")},
                                 {"ranks", std::move(ranks)},
                                 {"ntasks", ntasks}}));
}

void Wexec::op_kill(Message& msg) {
  if (!broker().is_root()) {
    broker().forward_upstream(std::move(msg));
    return;
  }
  const std::string jobid = msg.payload().get_string("jobid");
  if (jobid.empty()) {
    respond_error(msg, errc::inval, "wexec.kill: need jobid");
    return;
  }
  broker().publish(
      "wexec.signal",
      Json::object({{"jobid", jobid},
                    {"signum", msg.payload().get_int("signum", 15)}}));
  respond_ok(msg);
}

void Wexec::handle_event(const Message& msg) {
  if (msg.topic == "wexec.exec") {
    const Json& ranks = msg.payload().at("ranks");
    bool mine = true;
    if (ranks.is_array()) {
      mine = false;
      for (const Json& r : ranks.as_array())
        if (r.is_int() && static_cast<NodeId>(r.as_int()) == broker().rank())
          mine = true;
    }
    if (!mine) return;
    co_spawn(broker().executor(),
             run_task(msg.payload().get_string("jobid"),
                      msg.payload().get_string("cmd"), msg.payload().at("args"),
                      msg.payload().get_int("ntasks", 1)),
             "wexec.task");
    return;
  }
  if (msg.topic == "wexec.signal") {
    const std::string jobid = msg.payload().get_string("jobid");
    const int signum = static_cast<int>(msg.payload().get_int("signum", 15));
    auto [lo, hi] = procs_.equal_range(jobid);
    for (auto it = lo; it != hi; ++it) it->second.ctx->deliver_signal(signum);
  }
}

Task<void> Wexec::run_task(std::string jobid, std::string cmd, Json args,
                           std::int64_t ntasks) {
  auto ctx = std::make_shared<ProcessCtx>(broker(), jobid, std::move(args));
  auto proc_it = procs_.emplace(jobid, Proc{ctx});

  int exit_code = 127;
  const Command* command = CommandRegistry::instance().find(cmd);
  if (command == nullptr) {
    ctx->err("wexec: command not found: " + cmd);
  } else {
    try {
      exit_code = co_await (*command)(*ctx);
    } catch (const std::exception& e) {
      ctx->err(std::string("wexec: command crashed: ") + e.what());
      exit_code = 139;  // as if SIGSEGV
    }
  }

  // Standard I/O and exit status are "captured in the KVS" under the
  // light-weight job (lwj) directory, committed collectively so the whole
  // job becomes visible in one root update.
  const std::string base =
      "lwj." + jobid + "." + std::to_string(broker().rank());
  Json out_lines = Json::array(), err_lines = Json::array();
  for (const auto& line : ctx->captured_stdout()) out_lines.push_back(line);
  for (const auto& line : ctx->captured_stderr()) err_lines.push_back(line);
  try {
    co_await ctx->kvs().put(base + ".stdout", std::move(out_lines));
    co_await ctx->kvs().put(base + ".stderr", std::move(err_lines));
    co_await ctx->kvs().put(base + ".exitcode", exit_code);
    co_await ctx->kvs().fence("wexec." + jobid, ntasks);
  } catch (const FluxException& e) {
    log::error("wexec", "kvs capture failed for ", jobid, ": ", e.what());
  }

  procs_.erase(proc_it);
  report_complete(jobid, exit_code);
}

void Wexec::report_complete(const std::string& jobid, int exit_code) {
  PendingComplete& pc = pending_complete_[jobid];
  pc.count += 1;
  pc.exits[std::to_string(exit_code)] += 1;
  if (pc.scheduled) return;
  pc.scheduled = true;
  broker().executor().post([this, jobid] { flush_complete(jobid); });
}

void Wexec::op_complete(Message& msg) {
  const std::string jobid = msg.payload().get_string("jobid");
  PendingComplete& pc = pending_complete_[jobid];
  pc.count += msg.payload().get_int("count", 0);
  for (const auto& [code, n] : msg.payload().at("exits").as_object())
    pc.exits[code] += n.as_int();
  if (pc.scheduled) return;
  pc.scheduled = true;
  broker().executor().post([this, jobid] { flush_complete(jobid); });
}

void Wexec::flush_complete(const std::string& jobid) {
  auto it = pending_complete_.find(jobid);
  if (it == pending_complete_.end()) return;
  PendingComplete& pc = it->second;
  pc.scheduled = false;
  if (pc.count == 0) return;

  if (!broker().is_root()) {
    Json exits = Json::object();
    for (const auto& [code, n] : pc.exits) exits[code] = n;
    Message reduce = Message::request(
        "wexec.complete", Json::object({{"jobid", jobid},
                                        {"count", pc.count},
                                        {"exits", std::move(exits)}}));
    pending_complete_.erase(it);
    broker().forward_upstream(std::move(reduce));
    return;
  }

  auto job_it = jobs_.find(jobid);
  if (job_it == jobs_.end()) {
    log::warn("wexec", "completion for unknown job ", jobid);
    pending_complete_.erase(it);
    return;
  }
  Job& job = job_it->second;
  job.completed += pc.count;
  for (const auto& [code, n] : pc.exits) job.exits[code] += n;
  pending_complete_.erase(it);
  if (job.completed < job.ntasks) return;

  Json exits = Json::object();
  for (const auto& [code, n] : job.exits) exits[code] = n;
  const bool success = job.exits.size() == 1 && job.exits.contains("0");
  for (const Message& waiter : job.waiters)
    broker().respond(waiter.respond(Json::object({{"jobid", jobid},
                                                  {"ntasks", job.ntasks},
                                                  {"success", success},
                                                  {"exits", exits}})));
  jobs_.erase(job_it);
}

}  // namespace flux::modules
