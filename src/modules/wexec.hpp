// wexec: "Remote processes can be launched in bulk, monitored, receive
// signals, and have standard I/O captured in the KVS." (Table I)
//
// Substitution (see DESIGN.md): instead of fork/exec of Linux binaries,
// processes are coroutine tasks looked up in a CommandRegistry — the same
// code path (root fans the launch out, per-rank spawn, stdio capture into
// lwj.<jobid>.<rank>.*, signal delivery, exit-status reduction) without OS
// process management. Built-in commands: hostname, echo, sleep, spin, exit,
// kvsput.
//
// Protocol:
//   wexec.run  {jobid, cmd, args, ranks?}  client -> root; responds when all
//                                          tasks have exited and their output
//                                          has been committed to the KVS.
//   wexec.exec  (event, root -> all)       per-rank spawn trigger
//   wexec.complete {jobid, count, exits}   reduction back to the root
//   wexec.kill {jobid, signum}             client -> root -> signal event
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "broker/module.hpp"
#include "exec/task.hpp"

namespace flux {
class Handle;
class KvsClient;
}  // namespace flux

namespace flux::modules {

/// Execution context handed to a simulated process.
class ProcessCtx {
 public:
  ProcessCtx(Broker& broker, std::string jobid, Json args);
  ~ProcessCtx();

  [[nodiscard]] NodeId rank() const noexcept;
  [[nodiscard]] const std::string& jobid() const noexcept { return jobid_; }
  [[nodiscard]] const Json& args() const noexcept { return args_; }
  [[nodiscard]] Handle& handle() noexcept { return *handle_; }
  [[nodiscard]] KvsClient& kvs() noexcept { return *kvs_; }
  [[nodiscard]] Executor& executor() noexcept;

  /// Capture a line of standard output / error.
  void out(std::string line) { stdout_.push_back(std::move(line)); }
  void err(std::string line) { stderr_.push_back(std::move(line)); }

  /// Signal state (delivered by wexec.kill).
  [[nodiscard]] bool killed() const noexcept { return signum_ != 0; }
  [[nodiscard]] int signum() const noexcept { return signum_; }
  void deliver_signal(int signum) noexcept { signum_ = signum; }

  [[nodiscard]] SleepAwaiter sleep(Duration d);

  [[nodiscard]] const std::vector<std::string>& captured_stdout() const {
    return stdout_;
  }
  [[nodiscard]] const std::vector<std::string>& captured_stderr() const {
    return stderr_;
  }

 private:
  Broker& broker_;
  std::string jobid_;
  Json args_;
  std::unique_ptr<Handle> handle_;
  std::unique_ptr<KvsClient> kvs_;
  std::vector<std::string> stdout_;
  std::vector<std::string> stderr_;
  int signum_ = 0;
};

/// A runnable command: returns the exit code.
using Command = std::function<Task<int>(ProcessCtx&)>;

/// Process-wide command registry (built-ins installed on first use).
class CommandRegistry {
 public:
  static CommandRegistry& instance();
  void add(std::string cmd_name, Command fn);
  [[nodiscard]] const Command* find(std::string_view cmd_name) const;
  [[nodiscard]] std::vector<std::string> names() const;

 private:
  CommandRegistry();
  std::map<std::string, Command, std::less<>> commands_;
};

class Wexec final : public ModuleBase {
 public:
  explicit Wexec(Broker& broker);

  [[nodiscard]] std::string_view name() const override { return "wexec"; }
  void handle_event(const Message& msg) override;

  [[nodiscard]] std::size_t running() const noexcept { return procs_.size(); }

 private:
  struct Job {  // root-side coordination state
    std::int64_t ntasks = 0;
    std::int64_t completed = 0;
    std::map<std::string, std::int64_t> exits;  // exit code -> count
    std::vector<Message> waiters;
  };
  struct Proc {  // one local running task
    std::shared_ptr<ProcessCtx> ctx;
  };

  void op_run(Message& msg);
  void op_kill(Message& msg);
  void op_complete(Message& msg);
  void spawn_task(const std::string& jobid, const std::string& cmd, Json args);
  Task<void> run_task(std::string jobid, std::string cmd, Json args,
                      std::int64_t ntasks);
  void report_complete(const std::string& jobid, int exit_code);
  void flush_complete(const std::string& jobid);

  std::map<std::string, Job> jobs_;                       // root only
  std::multimap<std::string, Proc> procs_;                // local tasks
  struct PendingComplete {
    std::int64_t count = 0;
    std::map<std::string, std::int64_t> exits;
    bool scheduled = false;
  };
  std::map<std::string, PendingComplete> pending_complete_;
};

}  // namespace flux::modules
