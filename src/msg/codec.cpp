#include "msg/codec.hpp"

#include <cstring>
#include <map>

namespace flux {

namespace {

constexpr std::uint32_t kMagic = 0x584c4c46u;  // "FLLX"

std::map<std::string, AttachmentDecoder, std::less<>>& attachment_registry() {
  static std::map<std::string, AttachmentDecoder, std::less<>> registry;
  return registry;
}

void put_u8(std::vector<std::uint8_t>& out, std::uint8_t v) { out.push_back(v); }

void put_u16(std::vector<std::uint8_t>& out, std::uint16_t v) {
  out.push_back(static_cast<std::uint8_t>(v));
  out.push_back(static_cast<std::uint8_t>(v >> 8));
}

void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void put_u64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void put_bytes(std::vector<std::uint8_t>& out, std::string_view s) {
  out.insert(out.end(), s.begin(), s.end());
}

class Reader {
 public:
  explicit Reader(std::span<const std::uint8_t> wire) : wire_(wire) {}

  bool u8(std::uint8_t& v) { return fixed(&v, 1); }
  bool u16(std::uint16_t& v) {
    std::uint8_t b[2];
    if (!fixed(b, 2)) return false;
    v = static_cast<std::uint16_t>(b[0] | (b[1] << 8));
    return true;
  }
  bool u32(std::uint32_t& v) {
    std::uint8_t b[4];
    if (!fixed(b, 4)) return false;
    v = 0;
    for (int i = 3; i >= 0; --i) v = (v << 8) | b[i];
    return true;
  }
  bool u64(std::uint64_t& v) {
    std::uint8_t b[8];
    if (!fixed(b, 8)) return false;
    v = 0;
    for (int i = 7; i >= 0; --i) v = (v << 8) | b[i];
    return true;
  }
  bool str(std::string& out, std::size_t n) {
    if (pos_ + n > wire_.size()) return false;
    out.assign(reinterpret_cast<const char*>(wire_.data() + pos_), n);
    pos_ += n;
    return true;
  }
  [[nodiscard]] bool done() const { return pos_ == wire_.size(); }

 private:
  bool fixed(std::uint8_t* out, std::size_t n) {
    if (pos_ + n > wire_.size()) return false;
    std::memcpy(out, wire_.data() + pos_, n);
    pos_ += n;
    return true;
  }
  std::span<const std::uint8_t> wire_;
  std::size_t pos_ = 0;
};

Error proto_error(const char* what) {
  return Error(errc::proto, std::string("codec: ") + what);
}

}  // namespace

std::vector<std::uint8_t> encode(const Message& msg) {
  std::vector<std::uint8_t> out;
  out.reserve(msg.wire_size());
  put_u32(out, kMagic);
  put_u8(out, static_cast<std::uint8_t>(msg.type));
  put_u8(out, msg.flags);
  put_u32(out, msg.matchtag);
  put_u32(out, msg.nodeid);
  put_u64(out, msg.seq);
  put_u32(out, static_cast<std::uint32_t>(msg.errnum));
  put_u16(out, static_cast<std::uint16_t>(msg.topic.size()));
  put_bytes(out, msg.topic);
  put_u16(out, static_cast<std::uint16_t>(msg.route.size()));
  for (const RouteHop& hop : msg.route) {
    put_u8(out, static_cast<std::uint8_t>(hop.kind));
    put_u32(out, hop.rank);
    put_u64(out, hop.id);
  }
  put_u16(out, static_cast<std::uint16_t>(msg.trace.size()));
  for (const TraceHop& hop : msg.trace) {
    put_u8(out, static_cast<std::uint8_t>(hop.plane));
    put_u32(out, hop.rank);
    put_u64(out, static_cast<std::uint64_t>(hop.t_ns));
  }
  const std::string json = msg.payload.dump();
  put_u32(out, static_cast<std::uint32_t>(json.size()));
  put_bytes(out, json);
  put_u32(out, static_cast<std::uint32_t>(msg.data_size()));
  if (msg.data) put_bytes(out, *msg.data);
  if (msg.attachment) {
    const auto tag = msg.attachment->tag();
    put_u8(out, static_cast<std::uint8_t>(tag.size()));
    put_bytes(out, tag);
    const std::string body = msg.attachment->serialize();
    put_u32(out, static_cast<std::uint32_t>(body.size()));
    put_bytes(out, body);
  } else {
    put_u8(out, 0);
    put_u32(out, 0);
  }
  return out;
}

Expected<Message> decode(std::span<const std::uint8_t> wire) {
  Reader rd(wire);
  std::uint32_t magic = 0;
  if (!rd.u32(magic) || magic != kMagic) return proto_error("bad magic");

  Message msg;
  std::uint8_t type = 0;
  if (!rd.u8(type)) return proto_error("truncated type");
  if (type < 1 || type > 4) return proto_error("bad message type");
  msg.type = static_cast<MsgType>(type);

  if (!rd.u8(msg.flags)) return proto_error("truncated flags");
  if (!rd.u32(msg.matchtag)) return proto_error("truncated matchtag");
  if (!rd.u32(msg.nodeid)) return proto_error("truncated nodeid");
  if (!rd.u64(msg.seq)) return proto_error("truncated seq");
  std::uint32_t errnum = 0;
  if (!rd.u32(errnum)) return proto_error("truncated errnum");
  msg.errnum = static_cast<int>(errnum);

  std::uint16_t topic_len = 0;
  if (!rd.u16(topic_len) || !rd.str(msg.topic, topic_len))
    return proto_error("truncated topic");

  std::uint16_t route_len = 0;
  if (!rd.u16(route_len)) return proto_error("truncated route length");
  msg.route.reserve(route_len);
  for (std::uint16_t i = 0; i < route_len; ++i) {
    RouteHop hop;
    std::uint8_t kind = 0;
    if (!rd.u8(kind) || kind > 3) return proto_error("bad route hop");
    hop.kind = static_cast<RouteHop::Kind>(kind);
    if (!rd.u32(hop.rank) || !rd.u64(hop.id))
      return proto_error("truncated route hop");
    msg.route.push_back(hop);
  }

  std::uint16_t trace_len = 0;
  if (!rd.u16(trace_len)) return proto_error("truncated trace length");
  msg.trace.reserve(trace_len);
  for (std::uint16_t i = 0; i < trace_len; ++i) {
    TraceHop hop;
    std::uint8_t plane = 0;
    if (!rd.u8(plane) || plane > 3) return proto_error("bad trace hop");
    hop.plane = static_cast<TraceHop::Plane>(plane);
    std::uint64_t t = 0;
    if (!rd.u32(hop.rank) || !rd.u64(t))
      return proto_error("truncated trace hop");
    hop.t_ns = static_cast<std::int64_t>(t);
    msg.trace.push_back(hop);
  }

  std::uint32_t json_len = 0;
  std::string json;
  if (!rd.u32(json_len) || !rd.str(json, json_len))
    return proto_error("truncated json frame");
  auto parsed = Json::parse(json);
  if (!parsed) return parsed.error();
  msg.payload = std::move(parsed).value();

  std::uint32_t data_len = 0;
  if (!rd.u32(data_len)) return proto_error("truncated data length");
  if (data_len > 0) {
    std::string data;
    if (!rd.str(data, data_len)) return proto_error("truncated data frame");
    msg.data = std::make_shared<const std::string>(std::move(data));
  }

  std::uint8_t tag_len = 0;
  if (!rd.u8(tag_len)) return proto_error("truncated attachment tag length");
  std::string tag;
  if (!rd.str(tag, tag_len)) return proto_error("truncated attachment tag");
  std::uint32_t att_len = 0;
  if (!rd.u32(att_len)) return proto_error("truncated attachment length");
  std::string att_body;
  if (!rd.str(att_body, att_len)) return proto_error("truncated attachment");
  if (!tag.empty()) {
    auto& registry = attachment_registry();
    auto it = registry.find(tag);
    if (it == registry.end())
      return proto_error("unknown attachment tag");
    auto decoded = it->second(att_body);
    if (!decoded) return decoded.error();
    msg.attachment = std::move(decoded).value();
  }
  if (!rd.done()) return proto_error("trailing bytes");
  return msg;
}

void register_attachment_codec(std::string tag, AttachmentDecoder decoder) {
  attachment_registry().insert_or_assign(std::move(tag), std::move(decoder));
}

}  // namespace flux
