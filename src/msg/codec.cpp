#include "msg/codec.hpp"

#include <cstring>
#include <map>

namespace flux {

namespace {

constexpr std::uint32_t kMagic = 0x584c4c46u;  // "FLLX"

std::map<std::string, AttachmentDecoder, std::less<>>& attachment_registry() {
  static std::map<std::string, AttachmentDecoder, std::less<>> registry;
  return registry;
}

void put_u8(std::vector<std::uint8_t>& out, std::uint8_t v) { out.push_back(v); }

void put_u16(std::vector<std::uint8_t>& out, std::uint16_t v) {
  out.push_back(static_cast<std::uint8_t>(v));
  out.push_back(static_cast<std::uint8_t>(v >> 8));
}

void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void put_u64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void put_bytes(std::vector<std::uint8_t>& out, std::string_view s) {
  out.insert(out.end(), s.begin(), s.end());
}

class Reader {
 public:
  explicit Reader(std::span<const std::uint8_t> wire) : wire_(wire) {}

  bool u8(std::uint8_t& v) { return fixed(&v, 1); }
  bool u16(std::uint16_t& v) {
    std::uint8_t b[2];
    if (!fixed(b, 2)) return false;
    v = static_cast<std::uint16_t>(b[0] | (b[1] << 8));
    return true;
  }
  bool u32(std::uint32_t& v) {
    std::uint8_t b[4];
    if (!fixed(b, 4)) return false;
    v = 0;
    for (int i = 3; i >= 0; --i) v = (v << 8) | b[i];
    return true;
  }
  bool u64(std::uint64_t& v) {
    std::uint8_t b[8];
    if (!fixed(b, 8)) return false;
    v = 0;
    for (int i = 7; i >= 0; --i) v = (v << 8) | b[i];
    return true;
  }
  bool str(std::string& out, std::size_t n) {
    if (pos_ + n > wire_.size()) return false;
    out.assign(reinterpret_cast<const char*>(wire_.data() + pos_), n);
    pos_ += n;
    return true;
  }
  [[nodiscard]] bool done() const { return pos_ == wire_.size(); }
  [[nodiscard]] std::size_t pos() const { return pos_; }

 private:
  bool fixed(std::uint8_t* out, std::size_t n) {
    if (pos_ + n > wire_.size()) return false;
    std::memcpy(out, wire_.data() + pos_, n);
    pos_ += n;
    return true;
  }
  std::span<const std::uint8_t> wire_;
  std::size_t pos_ = 0;
};

Error proto_error(const char* what) {
  return Error(errc::proto, std::string("codec: ") + what);
}

}  // namespace

CodecStats& codec_stats() noexcept {
  static CodecStats stats;
  return stats;
}

// Defined here rather than message.cpp: the body layout (length prefixes,
// frame order) is wire-codec knowledge.
const SharedBytes& Message::encoded_body() const {
  if (!body_cache_) {
    codec_stats().body_builds.fetch_add(1, std::memory_order_relaxed);
    std::vector<std::uint8_t> out;
    // Serialize into a reused per-thread buffer: steady-state body builds do
    // one allocation (the SharedBytes result), not two.
    thread_local std::string json_buf;
    json_buf.clear();
    payload_.dump_into(json_buf);
    const std::string& json = json_buf;
    std::size_t att_size = 0;
    if (attachment_)
      att_size = attachment_->tag().size() + attachment_->wire_size();
    out.reserve(4 + json.size() + 4 + data_size() + 1 + 4 + att_size);
    put_u32(out, static_cast<std::uint32_t>(json.size()));
    put_bytes(out, json);
    put_u32(out, static_cast<std::uint32_t>(data_size()));
    if (data_) put_bytes(out, *data_);
    if (attachment_) {
      const auto tag = attachment_->tag();
      put_u8(out, static_cast<std::uint8_t>(tag.size()));
      put_bytes(out, tag);
      const std::string body = attachment_->serialize();
      put_u32(out, static_cast<std::uint32_t>(body.size()));
      put_bytes(out, body);
    } else {
      put_u8(out, 0);
      put_u32(out, 0);
    }
    body_cache_ = SharedBytes(std::move(out));
    body_size_ = body_cache_.size();
  }
  return body_cache_;
}

namespace {

/// Emit the per-hop header portion (everything before the JSON frame).
void put_header(std::vector<std::uint8_t>& out, const Message& msg) {
  put_u32(out, kMagic);
  put_u8(out, static_cast<std::uint8_t>(msg.type));
  put_u8(out, msg.flags);
  put_u32(out, msg.matchtag);
  put_u32(out, msg.nodeid);
  put_u64(out, msg.seq);
  put_u32(out, static_cast<std::uint32_t>(msg.errnum));
  put_u16(out, static_cast<std::uint16_t>(msg.topic.size()));
  put_bytes(out, msg.topic);
  put_u16(out, static_cast<std::uint16_t>(msg.route.size()));
  for (const RouteHop& hop : msg.route) {
    put_u8(out, static_cast<std::uint8_t>(hop.kind));
    put_u32(out, hop.rank);
    put_u64(out, hop.id);
  }
  put_u16(out, static_cast<std::uint16_t>(msg.trace.size()));
  for (const TraceHop& hop : msg.trace) {
    put_u8(out, static_cast<std::uint8_t>(hop.plane));
    put_u32(out, hop.rank);
    put_u64(out, static_cast<std::uint64_t>(hop.t_ns));
  }
}

}  // namespace

std::vector<std::uint8_t> encode(const Message& msg) {
  CodecStats& st = codec_stats();
  st.encodes.fetch_add(1, std::memory_order_relaxed);
  if (msg.has_encoded_body())
    st.body_reuses.fetch_add(1, std::memory_order_relaxed);
  const SharedBytes& body = msg.encoded_body();
  std::vector<std::uint8_t> out;
  out.reserve(msg.header_wire_size() + body.size());
  put_header(out, msg);
  out.insert(out.end(), body.data(), body.data() + body.size());
  return out;
}

WireFrame encode_shared(const Message& msg) {
  return std::make_shared<const std::vector<std::uint8_t>>(encode(msg));
}

namespace {

/// Shared decode core. `owner` non-null = zero-copy path: the decoded
/// message's body cache aliases the frame instead of copying it.
Expected<Message> decode_impl(std::span<const std::uint8_t> wire,
                              const WireFrame* owner) {
  Reader rd(wire);
  std::uint32_t magic = 0;
  if (!rd.u32(magic) || magic != kMagic) return proto_error("bad magic");

  Message msg;
  std::uint8_t type = 0;
  if (!rd.u8(type)) return proto_error("truncated type");
  if (type < 1 || type > 4) return proto_error("bad message type");
  msg.type = static_cast<MsgType>(type);

  if (!rd.u8(msg.flags)) return proto_error("truncated flags");
  if (!rd.u32(msg.matchtag)) return proto_error("truncated matchtag");
  if (!rd.u32(msg.nodeid)) return proto_error("truncated nodeid");
  if (!rd.u64(msg.seq)) return proto_error("truncated seq");
  std::uint32_t errnum = 0;
  if (!rd.u32(errnum)) return proto_error("truncated errnum");
  msg.errnum = static_cast<int>(errnum);

  std::uint16_t topic_len = 0;
  if (!rd.u16(topic_len) || !rd.str(msg.topic, topic_len))
    return proto_error("truncated topic");

  std::uint16_t route_len = 0;
  if (!rd.u16(route_len)) return proto_error("truncated route length");
  msg.route.reserve(route_len);
  for (std::uint16_t i = 0; i < route_len; ++i) {
    RouteHop hop;
    std::uint8_t kind = 0;
    if (!rd.u8(kind) || kind > 3) return proto_error("bad route hop");
    hop.kind = static_cast<RouteHop::Kind>(kind);
    if (!rd.u32(hop.rank) || !rd.u64(hop.id))
      return proto_error("truncated route hop");
    msg.route.push_back(hop);
  }

  std::uint16_t trace_len = 0;
  if (!rd.u16(trace_len)) return proto_error("truncated trace length");
  msg.trace.reserve(trace_len);
  for (std::uint16_t i = 0; i < trace_len; ++i) {
    TraceHop hop;
    std::uint8_t plane = 0;
    if (!rd.u8(plane) || plane > 3) return proto_error("bad trace hop");
    hop.plane = static_cast<TraceHop::Plane>(plane);
    std::uint64_t t = 0;
    if (!rd.u32(hop.rank) || !rd.u64(t))
      return proto_error("truncated trace hop");
    hop.t_ns = static_cast<std::int64_t>(t);
    msg.trace.push_back(hop);
  }

  const std::size_t body_start = rd.pos();

  std::uint32_t json_len = 0;
  std::string json;
  if (!rd.u32(json_len) || !rd.str(json, json_len))
    return proto_error("truncated json frame");
  auto parsed = Json::parse(json);
  if (!parsed) return parsed.error();
  Json payload = std::move(parsed).value();

  std::shared_ptr<const std::string> data;
  std::uint32_t data_len = 0;
  if (!rd.u32(data_len)) return proto_error("truncated data length");
  if (data_len > 0) {
    std::string bytes;
    if (!rd.str(bytes, data_len)) return proto_error("truncated data frame");
    data = std::make_shared<const std::string>(std::move(bytes));
  }

  std::shared_ptr<const Attachment> attachment;
  std::uint8_t tag_len = 0;
  if (!rd.u8(tag_len)) return proto_error("truncated attachment tag length");
  std::string tag;
  if (!rd.str(tag, tag_len)) return proto_error("truncated attachment tag");
  std::uint32_t att_len = 0;
  if (!rd.u32(att_len)) return proto_error("truncated attachment length");
  std::string att_body;
  if (!rd.str(att_body, att_len)) return proto_error("truncated attachment");
  if (!tag.empty()) {
    auto& registry = attachment_registry();
    auto it = registry.find(tag);
    if (it == registry.end())
      return proto_error("unknown attachment tag");
    auto decoded = it->second(att_body);
    if (!decoded) return decoded.error();
    attachment = std::move(decoded).value();
  }
  if (!rd.done()) return proto_error("trailing bytes");

  // Seed the body-encoding cache with the arriving bytes: re-encoding this
  // message for the next hop memcpys them instead of re-serializing. The
  // zero-copy path aliases the shared frame; the span path owns a copy.
  SharedBytes body;
  if (owner != nullptr) {
    body = SharedBytes(*owner, wire.data() + body_start,
                       wire.size() - body_start);
  } else {
    body = SharedBytes(std::vector<std::uint8_t>(
        wire.begin() + static_cast<std::ptrdiff_t>(body_start), wire.end()));
  }
  detail::MessageCodecAccess::install_body(msg, std::move(payload),
                                           std::move(data),
                                           std::move(attachment),
                                           std::move(body));
  return msg;
}

}  // namespace

namespace detail {

void MessageCodecAccess::install_body(Message& m, Json payload,
                                      std::shared_ptr<const std::string> data,
                                      std::shared_ptr<const Attachment> att,
                                      SharedBytes cache) {
  m.payload_ = std::move(payload);
  m.data_ = std::move(data);
  m.attachment_ = std::move(att);
  m.body_size_ = cache ? cache.size() : Message::kNoBodySize;
  m.body_cache_ = std::move(cache);
}

}  // namespace detail

Expected<Message> decode(std::span<const std::uint8_t> wire) {
  codec_stats().decodes.fetch_add(1, std::memory_order_relaxed);
  return decode_impl(wire, nullptr);
}

Expected<Message> decode_shared(const WireFrame& frame) {
  codec_stats().decodes.fetch_add(1, std::memory_order_relaxed);
  return decode_impl(*frame, &frame);
}

void register_attachment_codec(std::string tag, AttachmentDecoder decoder) {
  attachment_registry().insert_or_assign(std::move(tag), std::move(decoder));
}

}  // namespace flux
