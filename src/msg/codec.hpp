// Binary wire codec for CMB messages.
//
// The simulated transport passes Message objects directly (wire_size() feeds
// the bandwidth model); the threaded transport round-trips every message
// through this codec so the serialization path is exercised for real, the way
// the ØMQ-based prototype marshals frames onto TCP.
//
// Layout (little-endian):
//   u32 magic 'FLUX'   u8 type       u8 flags       u32 matchtag
//   u32 nodeid         u64 seq       i32 errnum     u16 topic_len  topic bytes
//   u16 route_len      route_len × { u8 kind, u32 rank, u64 id }
//   u16 trace_len      trace_len × { u8 plane, u32 rank, u64 t_ns }
//   u32 json_len       canonical JSON bytes
//   u32 data_len       raw data bytes
//   u8 att_tag_len     tag bytes     u32 att_len    attachment bytes
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "base/error.hpp"
#include "msg/message.hpp"

namespace flux {

/// Serialize a message to wire bytes. The body portion (JSON + data +
/// attachment) comes from the message's memoized encoding: the first encode
/// of a message serializes it, later encodes (forwarding hops) memcpy the
/// cached bytes.
std::vector<std::uint8_t> encode(const Message& msg);

/// Parse wire bytes; Error{Proto} on malformed input. Seeds the decoded
/// message's body-encoding cache from the frame, so re-encoding it for the
/// next hop reuses the arriving bytes.
Expected<Message> decode(std::span<const std::uint8_t> wire);

/// A shared immutable wire frame, as passed between threaded reactors.
using WireFrame = std::shared_ptr<const std::vector<std::uint8_t>>;

/// encode() into a shared frame (one allocation, refcounted across threads).
WireFrame encode_shared(const Message& msg);

/// decode() that aliases the frame's body region into the message's encoding
/// cache instead of copying it — the zero-copy receive path. The frame is
/// kept alive by the returned message.
Expected<Message> decode_shared(const WireFrame& frame);

/// Codec invocation counters (relaxed atomics; cheap enough to always keep).
/// body_builds counts expensive body serializations (JSON dump + attachment
/// serialize); body_reuses counts encodes served from a message's cached
/// body. A message forwarded across N hops should cost 1 build + N-1 reuses.
struct CodecStats {
  std::atomic<std::uint64_t> encodes{0};
  std::atomic<std::uint64_t> decodes{0};
  std::atomic<std::uint64_t> body_builds{0};
  std::atomic<std::uint64_t> body_reuses{0};

  void reset() noexcept {
    encodes.store(0, std::memory_order_relaxed);
    decodes.store(0, std::memory_order_relaxed);
    body_builds.store(0, std::memory_order_relaxed);
    body_reuses.store(0, std::memory_order_relaxed);
  }
};

/// Process-wide codec counters (tests and benches reset + sample them).
CodecStats& codec_stats() noexcept;

/// Decoder for a concrete Attachment type, keyed by its tag().
using AttachmentDecoder =
    std::function<Expected<std::shared_ptr<const Attachment>>(std::string_view)>;

/// Register the decoder for an attachment tag (idempotent overwrite).
/// Called from the owning module's translation unit at startup.
void register_attachment_codec(std::string tag, AttachmentDecoder decoder);

}  // namespace flux
