// Binary wire codec for CMB messages.
//
// The simulated transport passes Message objects directly (wire_size() feeds
// the bandwidth model); the threaded transport round-trips every message
// through this codec so the serialization path is exercised for real, the way
// the ØMQ-based prototype marshals frames onto TCP.
//
// Layout (little-endian):
//   u32 magic 'FLUX'   u8 type       u8 flags       u32 matchtag
//   u32 nodeid         u64 seq       i32 errnum     u16 topic_len  topic bytes
//   u16 route_len      route_len × { u8 kind, u32 rank, u64 id }
//   u16 trace_len      trace_len × { u8 plane, u32 rank, u64 t_ns }
//   u32 json_len       canonical JSON bytes
//   u32 data_len       raw data bytes
//   u8 att_tag_len     tag bytes     u32 att_len    attachment bytes
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <string>
#include <vector>

#include "base/error.hpp"
#include "msg/message.hpp"

namespace flux {

/// Serialize a message to wire bytes.
std::vector<std::uint8_t> encode(const Message& msg);

/// Parse wire bytes; Error{Proto} on malformed input.
Expected<Message> decode(std::span<const std::uint8_t> wire);

/// Decoder for a concrete Attachment type, keyed by its tag().
using AttachmentDecoder =
    std::function<Expected<std::shared_ptr<const Attachment>>(std::string_view)>;

/// Register the decoder for an attachment tag (idempotent overwrite).
/// Called from the owning module's translation unit at startup.
void register_attachment_codec(std::string tag, AttachmentDecoder decoder);

}  // namespace flux
