#include "msg/message.hpp"

namespace flux {

std::string_view msg_type_name(MsgType t) noexcept {
  switch (t) {
    case MsgType::Request: return "request";
    case MsgType::Response: return "response";
    case MsgType::Event: return "event";
    case MsgType::Keepalive: return "keepalive";
  }
  return "?";
}

std::string_view trace_plane_name(TraceHop::Plane p) noexcept {
  switch (p) {
    case TraceHop::Plane::Local: return "local";
    case TraceHop::Plane::Tree: return "tree";
    case TraceHop::Plane::Ring: return "ring";
    case TraceHop::Plane::Event: return "event";
  }
  return "?";
}

Message Message::request(std::string topic, Json payload) {
  Message m;
  m.type = MsgType::Request;
  m.topic = std::move(topic);
  m.payload_ = std::move(payload);
  return m;
}

Message Message::event(std::string topic, Json payload) {
  Message m;
  m.type = MsgType::Event;
  m.topic = std::move(topic);
  m.payload_ = std::move(payload);
  return m;
}

Message Message::respond(Json response_payload) const {
  Message m;
  m.type = MsgType::Response;
  m.topic = topic;
  m.matchtag = matchtag;
  m.nodeid = nodeid;
  m.errnum = 0;
  m.flags = flags;
  m.route = route;  // unwound hop-by-hop by the broker
  m.trace = trace;  // the return path keeps appending to the request's hops
  m.payload_ = std::move(response_payload);
  return m;
}

Message Message::respond_error(Errc code, std::string_view what) const {
  Message m = respond();
  m.errnum = static_cast<int>(code);
  if (!what.empty()) m.payload_ = Json::object({{"errmsg", std::string(what)}});
  return m;
}

std::string_view Message::service() const noexcept {
  const auto dot = topic.find('.');
  return dot == std::string::npos ? std::string_view(topic)
                                  : std::string_view(topic).substr(0, dot);
}

std::string_view Message::method() const noexcept {
  const auto dot = topic.find('.');
  return dot == std::string::npos ? std::string_view{}
                                  : std::string_view(topic).substr(dot + 1);
}

bool Message::topic_matches(std::string_view sub, std::string_view topic) noexcept {
  if (sub.empty()) return true;  // empty subscription matches everything
  if (topic.size() < sub.size()) return false;
  if (topic.compare(0, sub.size(), sub) != 0) return false;
  return topic.size() == sub.size() || topic[sub.size()] == '.';
}

std::size_t Message::header_wire_size() const noexcept {
  // Mirrors codec.cpp layout up to (excluding) the JSON frame.
  constexpr std::size_t kFixed = 4 /*magic*/ + 1 /*type*/ + 1 /*flags*/ +
                                 4 /*matchtag*/ + 4 /*nodeid*/ + 8 /*seq*/ +
                                 4 /*errnum*/ + 2 /*topic len*/ +
                                 2 /*route len*/ + 2 /*trace len*/;
  return kFixed + topic.size() + route.size() * 13 + trace.size() * 13;
}

std::size_t Message::wire_size() const {
  // Body footprint (length prefixes + JSON + data + attachment) is memoized:
  // per-hop accounting (simnet bandwidth model, broker tx/rx counters) would
  // otherwise re-walk the JSON payload and attachment on every send.
  if (body_size_ == kNoBodySize) {
    std::size_t att = 0;
    if (attachment_) att = attachment_->tag().size() + attachment_->wire_size();
    body_size_ = 4 /*json len*/ + payload_.dump_size() + 4 /*data len*/ +
                 data_size() + 1 /*attachment tag len*/ +
                 4 /*attachment len*/ + att;
  }
  return header_wire_size() + body_size_;
}

}  // namespace flux
