// CMB message model.
//
// Paper §IV-A: "All CMB messages have a uniform, multi-part message format
// consisting of at least a header frame and a JSON frame. The header frame
// identifies the message recipient using a hierarchical name space."
//
// We add an optional raw-data frame (bulk KVS object payloads travel there so
// they are not JSON-escaped) and a route stack: each broker that forwards a
// request upstream pushes its rank, and the response unwinds the stack so it
// retraces "the same set of hops, in reverse".
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "base/error.hpp"
#include "json/json.hpp"
#include "msg/shared_bytes.hpp"

namespace flux {

/// Broker rank within a comms session. Dense [0, size).
using NodeId = std::uint32_t;

/// Sentinel ranks used in message addressing.
inline constexpr NodeId kNodeAny = 0xffffffffu;      ///< route upstream until matched
inline constexpr NodeId kNodeUpstream = 0xfffffffeu; ///< skip local, then as kNodeAny

/// Message kinds carried on the overlay planes (paper: request-reply on the
/// tree/ring planes, events on the pub-sub plane).
enum class MsgType : std::uint8_t {
  Request = 1,
  Response = 2,
  Event = 3,
  Keepalive = 4,
};

std::string_view msg_type_name(MsgType t) noexcept;

namespace detail {
struct MessageCodecAccess;
}  // namespace detail

/// Opaque shared bulk attachment with an explicit wire footprint.
///
/// Aggregating modules (KVS fence/commit reductions) carry structured bulk
/// payloads — e.g. bundles of content-addressed objects — that interior
/// brokers merge and re-forward. Keeping these as shared immutable structures
/// avoids re-serializing megabytes on every simulated hop; crossing a real
/// (threaded) transport flattens them through serialize() and the tag-keyed
/// decoder registry (see codec.hpp).
class Attachment {
 public:
  virtual ~Attachment() = default;
  /// Registry key identifying the concrete type on the wire.
  [[nodiscard]] virtual std::string_view tag() const noexcept = 0;
  /// Bytes serialize() would produce (bandwidth accounting).
  [[nodiscard]] virtual std::size_t wire_size() const = 0;
  [[nodiscard]] virtual std::string serialize() const = 0;
};

/// Header flag bits (Message::flags).
inline constexpr std::uint8_t kMsgFlagTrace = 0x01;  ///< collect route trace

/// One per-broker stamp of a traced message's journey. Requests accumulate
/// hops as they cross brokers; respond() copies the request's hops into the
/// response, which keeps stamping on the way back — so the originator gets
/// the full forward+return path with per-hop timestamps, the raw material
/// for the paper's §V-C per-hop cost model.
struct TraceHop {
  /// Overlay plane the message crossed to reach this broker (Figure 1),
  /// Local being the node-local client<->broker transport hop.
  enum class Plane : std::uint8_t { Local = 0, Tree = 1, Ring = 2, Event = 3 };
  NodeId rank = 0;
  Plane plane = Plane::Local;
  std::int64_t t_ns = 0;  ///< executor clock at the stamp (sim: virtual time)

  friend bool operator==(const TraceHop&, const TraceHop&) = default;
};

std::string_view trace_plane_name(TraceHop::Plane p) noexcept;

/// One hop of a request's return path. Client endpoints and comules (module
/// endpoints) are disambiguated from broker ranks by the kind tag. Direct is
/// a module endpoint whose response returns over a direct transport link
/// instead of retracing the tree or riding the ring — the sharded-KVS
/// overlay (shard_map.hpp) uses it so per-shard trees bypass the session
/// root.
struct RouteHop {
  enum class Kind : std::uint8_t { Broker = 0, Client = 1, Module = 2, Direct = 3 };
  Kind kind = Kind::Broker;
  NodeId rank = 0;        ///< broker rank the endpoint lives on
  std::uint64_t id = 0;   ///< client handle id / module endpoint id (0 for Broker)

  friend bool operator==(const RouteHop&, const RouteHop&) = default;
};

/// A CMB message. Cheap to copy: the bulk data frame is shared & immutable.
struct Message {
  MsgType type = MsgType::Request;

  /// Hierarchical topic, e.g. "kvs.put"; the leading component selects the
  /// comms module ("kvs"), the rest is the module-internal method ("put").
  std::string topic;

  /// Request/response matching tag, scoped to the originating endpoint.
  std::uint32_t matchtag = 0;

  /// Addressing: kNodeAny routes upstream until a module matches (tree
  /// plane); a concrete rank routes point-to-point on the ring plane.
  NodeId nodeid = kNodeAny;

  /// Global sequence number (events only; assigned by the session root).
  std::uint64_t seq = 0;

  /// Response error code (0 == success).
  int errnum = 0;

  /// Header flag bits (kMsgFlag*).
  std::uint8_t flags = 0;

  /// Return path. route.front() is the originating endpoint.
  std::vector<RouteHop> route;

  /// Per-broker stamps, appended while kMsgFlagTrace is set.
  std::vector<TraceHop> trace;

  // -- body frames ----------------------------------------------------------
  // The payload / data / attachment frames are private so every mutation is
  // forced through a setter that invalidates the memoized body encoding
  // below. Header fields (route, trace, nodeid, ...) stay public: forwarding
  // rewrites them on every hop, and they are cheap to re-emit — only the
  // body is memoized.

  /// JSON payload frame (read-only view).
  [[nodiscard]] const Json& payload() const noexcept { return payload_; }
  /// Mutable payload access; invalidates the cached body encoding.
  [[nodiscard]] Json& mutable_payload() noexcept {
    invalidate_encoding();
    return payload_;
  }
  void set_payload(Json p) noexcept {
    invalidate_encoding();
    payload_ = std::move(p);
  }

  /// Optional bulk data frame (shared, immutable).
  [[nodiscard]] const std::shared_ptr<const std::string>& data() const noexcept {
    return data_;
  }
  void set_data(std::shared_ptr<const std::string> d) noexcept {
    invalidate_encoding();
    data_ = std::move(d);
  }

  /// Optional structured bulk attachment (shared, immutable).
  [[nodiscard]] const std::shared_ptr<const Attachment>& attachment() const noexcept {
    return attachment_;
  }
  void set_attachment(std::shared_ptr<const Attachment> a) noexcept {
    invalidate_encoding();
    attachment_ = std::move(a);
  }

  /// Canonical encoding of the body frames (JSON + data + attachment tail of
  /// the wire layout), memoized on first use. encode() reuses it on every
  /// subsequent hop, and decode() seeds it from the arriving frame, so a
  /// forwarded message serializes its body exactly once end to end.
  /// Defined in codec.cpp (it is wire-layout knowledge).
  [[nodiscard]] const SharedBytes& encoded_body() const;
  [[nodiscard]] bool has_encoded_body() const noexcept {
    return static_cast<bool>(body_cache_);
  }
  /// Drop the memoized encoding (called by every body mutator).
  void invalidate_encoding() const noexcept {
    body_cache_.reset();
    body_size_ = kNoBodySize;
  }

  // -- constructors ---------------------------------------------------------
  static Message request(std::string topic, Json payload = Json::object());
  static Message event(std::string topic, Json payload = Json::object());

  /// Build the success response to `req` (copies tag & reversed route).
  [[nodiscard]] Message respond(Json payload = Json::object()) const;
  /// Build an error response to `req`.
  [[nodiscard]] Message respond_error(errc code, std::string_view what = {}) const;

  /// This message's error code, typed. errnum stays the raw wire field; this
  /// is the comparison surface: `resp.error() == errc::timeout`.
  [[nodiscard]] errc error() const noexcept { return static_cast<errc>(errnum); }
  [[nodiscard]] bool ok() const noexcept { return errnum == 0; }

  // -- helpers --------------------------------------------------------------
  [[nodiscard]] bool is_request() const noexcept { return type == MsgType::Request; }
  [[nodiscard]] bool is_response() const noexcept { return type == MsgType::Response; }
  [[nodiscard]] bool is_event() const noexcept { return type == MsgType::Event; }
  [[nodiscard]] bool traced() const noexcept { return (flags & kMsgFlagTrace) != 0; }

  /// Leading topic component ("kvs" for "kvs.put").
  [[nodiscard]] std::string_view service() const noexcept;
  /// Remainder after the service prefix ("put" for "kvs.put").
  [[nodiscard]] std::string_view method() const noexcept;
  /// True if `topic` matches subscription prefix `sub` at a component
  /// boundary ("hb" matches "hb" and "hb.pulse" but not "hbx").
  static bool topic_matches(std::string_view sub, std::string_view topic) noexcept;

  /// Size of the bulk data frame (0 if absent).
  [[nodiscard]] std::size_t data_size() const noexcept {
    return data_ ? data_->size() : 0;
  }

  /// Size of the attachment frame (0 if absent).
  [[nodiscard]] std::size_t attachment_size() const {
    return attachment_ ? attachment_->wire_size() : 0;
  }

  /// Wire footprint in bytes: what encode() would produce. Used by the
  /// network simulator for bandwidth/serialization accounting without
  /// actually encoding on every simulated hop. The body portion is memoized
  /// (and shared with the cached encoding), so per-hop accounting does not
  /// re-walk the JSON payload or attachment.
  [[nodiscard]] std::size_t wire_size() const;

  /// Wire footprint of the per-hop header portion (everything before the
  /// JSON frame: fixed fields + topic + route + trace stacks).
  [[nodiscard]] std::size_t header_wire_size() const noexcept;

 private:
  /// Codec-internal backdoor: decode() fills the body fields and seeds the
  /// encoding cache from the arriving frame without double-invalidation.
  friend struct detail::MessageCodecAccess;

  static constexpr std::size_t kNoBodySize = static_cast<std::size_t>(-1);

  Json payload_;
  std::shared_ptr<const std::string> data_;
  std::shared_ptr<const Attachment> attachment_;

  // Memoized canonical body encoding + its size. `mutable` because memoizing
  // on a const Message (encode takes const&) is semantically non-mutating;
  // messages are reactor-confined, so no concurrent access to one instance.
  mutable SharedBytes body_cache_;
  mutable std::size_t body_size_ = kNoBodySize;
};

namespace detail {
/// The wire codec's access to Message body internals (defined in codec.cpp):
/// decode() installs all three body frames plus the encoding cache in one
/// step, bypassing the invalidating setters.
struct MessageCodecAccess {
  static void install_body(Message& m, Json payload,
                           std::shared_ptr<const std::string> data,
                           std::shared_ptr<const Attachment> att,
                           SharedBytes cache);
};
}  // namespace detail

}  // namespace flux
