// SharedBytes: an immutable, shared view of a byte range.
//
// The view carries its owner (any shared_ptr) so it can alias a slice of a
// larger buffer — e.g. the body region of a decoded wire frame — without
// copying. Copying a SharedBytes copies a pointer pair and bumps a refcount;
// the underlying bytes are never mutated after construction.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <utility>
#include <vector>

namespace flux {

class SharedBytes {
 public:
  SharedBytes() = default;

  /// Own a fresh buffer.
  explicit SharedBytes(std::vector<std::uint8_t> bytes) {
    auto owned = std::make_shared<const std::vector<std::uint8_t>>(std::move(bytes));
    data_ = owned->data();
    size_ = owned->size();
    owner_ = std::move(owned);
  }

  /// Alias `[data, data+size)` inside a buffer kept alive by `owner`.
  SharedBytes(std::shared_ptr<const void> owner, const std::uint8_t* data,
              std::size_t size) noexcept
      : owner_(std::move(owner)), data_(data), size_(size) {}

  [[nodiscard]] const std::uint8_t* data() const noexcept { return data_; }
  [[nodiscard]] std::size_t size() const noexcept { return size_; }
  [[nodiscard]] bool empty() const noexcept { return size_ == 0; }
  [[nodiscard]] std::span<const std::uint8_t> span() const noexcept {
    return {data_, size_};
  }

  /// Distinguishes "no buffer" from "empty buffer".
  explicit operator bool() const noexcept { return data_ != nullptr; }

  void reset() noexcept {
    owner_.reset();
    data_ = nullptr;
    size_ = 0;
  }

 private:
  std::shared_ptr<const void> owner_;
  const std::uint8_t* data_ = nullptr;
  std::size_t size_ = 0;
};

}  // namespace flux
