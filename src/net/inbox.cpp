#include "net/inbox.hpp"

#include <vector>

#include "base/log.hpp"

namespace flux {

void MsgInbox::push(WireFrame frame) {
  bool post_drain = false;
  {
    std::lock_guard lk(mu_);
    q_.push_back(std::move(frame));
    if (!drain_pending_) {
      drain_pending_ = true;
      post_drain = true;
    }
  }
  if (post_drain) ex_.post([this] { drain(); });
}

void MsgInbox::drain() {
  std::vector<WireFrame> batch;
  batch.reserve(kMaxDrain);
  {
    std::lock_guard lk(mu_);
    while (!q_.empty() && batch.size() < kMaxDrain) {
      batch.push_back(std::move(q_.front()));
      q_.pop_front();
    }
    // Keep the pending flag up across the re-post so concurrent pushes
    // don't schedule a second drain.
    drain_pending_ = !q_.empty();
    if (drain_pending_) ex_.post([this] { drain(); });
  }
  for (const WireFrame& frame : batch) {
    auto decoded = decode_shared(frame);
    if (!decoded) {
      log::error("inbox", "undecodable message dropped: ",
                 decoded.error().to_string());
      continue;
    }
    deliver_(std::move(decoded).value());
  }
}

}  // namespace flux
