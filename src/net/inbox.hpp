// Per-destination wire-frame inbox for the threaded transport.
//
// The naive threaded hop posts one reactor task per message: every send
// takes the destination's queue lock, pushes a closure, and signals the
// condition variable — so a burst of N messages costs N wakeups. The inbox
// batches the hand-off: senders append encoded frames to a plain deque
// under a short critical section, and only the transition empty→non-empty
// posts a drain task. The drain decodes and delivers up to kMaxDrain
// frames per reactor wakeup, then re-posts itself if the queue refilled —
// bounded, so one chatty peer cannot starve timers or other posted work,
// and per-message latency stays flat.
#pragma once

#include <deque>
#include <functional>
#include <mutex>

#include "exec/executor.hpp"
#include "msg/codec.hpp"

namespace flux {

class MsgInbox {
 public:
  using Deliver = std::function<void(Message)>;

  /// `deliver` runs on `ex`'s loop thread, once per decoded frame.
  MsgInbox(Executor& ex, Deliver deliver)
      : ex_(ex), deliver_(std::move(deliver)) {}
  MsgInbox(const MsgInbox&) = delete;
  MsgInbox& operator=(const MsgInbox&) = delete;

  /// Enqueue an encoded frame (any thread). Posts the drain task only when
  /// none is pending — a burst of sends costs one reactor wakeup.
  void push(WireFrame frame);

  /// Frames delivered per reactor wakeup before yielding.
  static constexpr std::size_t kMaxDrain = 64;

 private:
  void drain();

  Executor& ex_;
  Deliver deliver_;
  std::mutex mu_;
  std::deque<WireFrame> q_;
  bool drain_pending_ = false;
};

}  // namespace flux
