#include "net/simnet.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace flux {

SimNet::SimNet(SimExecutor& ex, NetParams params, std::uint32_t nnodes)
    : ex_(ex),
      params_(params),
      jitter_rng_(params.jitter_seed),
      failed_(nnodes, false),
      link_busy_(static_cast<std::size_t>(nnodes) * nnodes, TimePoint{0}),
      recv_busy_(nnodes, TimePoint{0}) {}

void SimNet::send(NodeId from, NodeId to, Message msg) {
  assert(from < failed_.size() && to < failed_.size());
  if (failed_[from] || failed_[to]) {
    ++stats_.dropped;
    return;
  }
  const std::size_t size = msg.wire_size();
  ++stats_.messages;
  stats_.bytes += size;

  const LinkParams& lp = (from == to) ? params_.loopback : params_.link;
  const auto xfer = Duration{static_cast<Duration::rep>(
      std::llround(static_cast<double>(size) / lp.bytes_per_ns))};

  const TimePoint now = ex_.now();
  TimePoint& busy =
      link_busy_[static_cast<std::size_t>(from) * failed_.size() + to];
  const TimePoint start = std::max(now, busy);
  const TimePoint sent = start + lp.per_msg_overhead + xfer;
  busy = sent;
  const TimePoint arrival = sent + lp.latency;

  // Receive-side processing: the destination broker handles one message at a
  // time (fixed dispatch cost plus payload-proportional processing).
  const auto proc = params_.recv_fixed + params_.recv_per_byte * static_cast<Duration::rep>(size) +
                    Duration{static_cast<Duration::rep>(std::llround(
                        static_cast<double>(size) / params_.recv_bytes_per_ns))};
  TimePoint& rbusy = recv_busy_[to];
  TimePoint deliver_at = std::max(arrival, rbusy) + proc;
  // Seeded schedule perturbation: draws happen in send-call order, which is
  // itself deterministic, so one jitter_seed = one exact delivery schedule.
  if (params_.jitter_max.count() > 0)
    deliver_at += Duration{static_cast<Duration::rep>(jitter_rng_.below(
        static_cast<std::uint64_t>(params_.jitter_max.count())))};
  rbusy = deliver_at;

  ex_.post_at(deliver_at, [this, to, m = std::move(msg)]() mutable {
    if (failed_[to]) {
      ++stats_.dropped;
      return;
    }
    deliver_(to, std::move(m));
  });
}

void SimNet::fail(NodeId rank) { failed_.at(rank) = true; }
void SimNet::restore(NodeId rank) { failed_.at(rank) = false; }
bool SimNet::failed(NodeId rank) const { return failed_.at(rank); }

}  // namespace flux
