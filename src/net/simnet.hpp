// Discrete-event network model standing in for the paper's test cluster.
//
// The paper's experiments ran on Zin/Cab (QLogic IB QDR, 16-core nodes). We
// model the properties that produce their scaling shapes:
//   - per-hop propagation latency,
//   - per-link serialization (bytes / bandwidth, FIFO per directed link), and
//   - per-broker receive processing (fixed + per-byte), which makes the tree
//     root a serialization point for concatenated fence payloads — the cause
//     of the linear unique-value curve in Figure 3.
// Defaults are loosely calibrated to QDR-era hardware; absolute latencies are
// not the paper's, the shapes are (see EXPERIMENTS.md).
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "base/rng.hpp"
#include "exec/sim_executor.hpp"
#include "msg/message.hpp"

namespace flux {

struct LinkParams {
  Duration latency = Duration{1500};        ///< per-hop propagation (1.5 us)
  double bytes_per_ns = 3.2;                ///< ~QDR IB effective bandwidth
  Duration per_msg_overhead = Duration{600};///< NIC/stack fixed cost per msg
};

struct NetParams {
  LinkParams link;                          ///< inter-node links
  LinkParams loopback{Duration{150}, 12.8, Duration{150}};  ///< same-rank
  Duration recv_fixed = Duration{1200};     ///< broker dispatch cost per msg
  Duration recv_per_byte = Duration{0};     ///< plus this per payload byte
  double recv_bytes_per_ns = 5.0;           ///< payload processing bandwidth

  /// DST schedule perturbation (check/explorer.hpp): with jitter_max > 0,
  /// every delivery gains a seeded-uniform extra delay in [0, jitter_max).
  /// This is the schedule explorer's tie-break hook — deliveries that would
  /// land at the same instant (and would otherwise resolve by post order)
  /// are re-ordered differently under every jitter_seed, while a given seed
  /// replays bit-for-bit. jitter_max == 0 (the default) draws nothing and
  /// keeps the model byte-identical to the unperturbed baseline.
  Duration jitter_max{0};
  std::uint64_t jitter_seed = 0;
};

/// Simulated interconnect: computes delivery times and posts deliveries onto
/// the SimExecutor. Destination handling is a callback installed by Session.
class SimNet {
 public:
  using Deliver = std::function<void(NodeId to, Message msg)>;

  SimNet(SimExecutor& ex, NetParams params, std::uint32_t nnodes);

  void set_delivery(Deliver fn) { deliver_ = std::move(fn); }

  /// Queue `msg` from `from` to `to`; delivery is posted at the computed
  /// arrival+processing time. Messages to failed nodes are dropped.
  void send(NodeId from, NodeId to, Message msg);

  /// Fault injection: the node stops receiving (in-flight deliveries to it
  /// are suppressed at delivery time).
  void fail(NodeId rank);
  void restore(NodeId rank);
  [[nodiscard]] bool failed(NodeId rank) const;

  struct Stats {
    std::uint64_t messages = 0;
    std::uint64_t bytes = 0;
    std::uint64_t dropped = 0;
  };
  [[nodiscard]] const Stats& stats() const noexcept { return stats_; }
  void reset_stats() { stats_ = {}; }

  [[nodiscard]] const NetParams& params() const noexcept { return params_; }

 private:
  SimExecutor& ex_;
  NetParams params_;
  Rng jitter_rng_;
  Deliver deliver_;
  std::vector<bool> failed_;
  // FIFO serialization state per directed link / per receiving broker.
  // Dense n*n table indexed [from * n + to]: one cache-line probe per send
  // instead of a hash lookup on the hottest simulator path.
  std::vector<TimePoint> link_busy_;
  std::vector<TimePoint> recv_busy_;
  Stats stats_;
};

}  // namespace flux
