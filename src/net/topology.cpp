#include "net/topology.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>

namespace flux {

Topology Topology::tree(std::uint32_t size, std::uint32_t arity) {
  if (size == 0) throw std::invalid_argument("topology: size must be > 0");
  if (arity == 0) throw std::invalid_argument("topology: arity must be > 0");
  Topology t;
  t.arity_ = arity;
  t.parent_.resize(size);
  for (std::uint32_t r = 1; r < size; ++r)
    t.parent_[r] = (r - 1) / arity;
  t.rebuild_children();
  return t;
}

void Topology::rebuild_children() {
  children_.assign(parent_.size(), {});
  for (std::uint32_t r = 0; r < parent_.size(); ++r)
    if (parent_[r]) children_[*parent_[r]].push_back(r);
}

std::optional<NodeId> Topology::parent(NodeId rank) const {
  return parent_.at(rank);
}

const std::vector<NodeId>& Topology::children(NodeId rank) const {
  return children_.at(rank);
}

unsigned Topology::depth(NodeId rank) const {
  unsigned d = 0;
  NodeId r = rank;
  while (auto p = parent_.at(r)) {
    r = *p;
    ++d;
    assert(d <= parent_.size());
  }
  return d;
}

unsigned Topology::height() const {
  unsigned h = 0;
  for (std::uint32_t r = 0; r < size(); ++r) h = std::max(h, depth(r));
  return h;
}

std::vector<NodeId> Topology::subtree(NodeId rank) const {
  std::vector<NodeId> out{rank};
  for (std::size_t i = 0; i < out.size(); ++i)
    for (NodeId c : children(out[i])) out.push_back(c);
  return out;
}

void Topology::reparent(NodeId child, NodeId new_parent) {
  if (child == new_parent || child >= size() || new_parent >= size())
    throw std::invalid_argument("topology: bad reparent");
  const auto sub = subtree(child);
  if (std::find(sub.begin(), sub.end(), new_parent) != sub.end())
    throw std::invalid_argument("topology: reparent would create a cycle");
  if (auto old = parent_[child]) {
    auto& sibs = children_[*old];
    sibs.erase(std::remove(sibs.begin(), sibs.end(), child), sibs.end());
  }
  parent_[child] = new_parent;
  children_[new_parent].push_back(child);
}

void Topology::set_parents(std::vector<std::optional<NodeId>> parents) {
  if (parents.size() != parent_.size())
    throw std::invalid_argument("topology: set_parents size mismatch");
  parent_ = std::move(parents);
  rebuild_children();
}

std::vector<NodeId> Topology::heal_around(NodeId dead) {
  const auto gp = parent_.at(dead);
  if (!gp)
    throw std::invalid_argument("topology: cannot heal around the root");
  std::vector<NodeId> moved = children_.at(dead);
  for (NodeId c : moved) reparent(c, *gp);
  // Detach the dead rank itself.
  auto& sibs = children_[*gp];
  sibs.erase(std::remove(sibs.begin(), sibs.end(), dead), sibs.end());
  parent_[dead] = std::nullopt;
  return moved;
}

}  // namespace flux
