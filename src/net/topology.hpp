// Overlay topologies for a comms session (paper Figure 1).
//
// A session wires three persistent planes: a k-ary request/reduction tree
// ("although a binary RPC/reduction tree is pictured, the tree shape is
// configurable"), a ring for rank-addressed RPCs, and the event plane which
// reuses the tree for root-sequenced broadcast. The tree's parent relation is
// mutable so the session can self-heal when interior nodes fail (children of
// a dead node re-parent to their grandparent).
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "msg/message.hpp"

namespace flux {

class Topology {
 public:
  /// k-ary heap-shaped tree over ranks [0, size); rank 0 is the root.
  static Topology tree(std::uint32_t size, std::uint32_t arity = 2);

  [[nodiscard]] std::uint32_t size() const noexcept {
    return static_cast<std::uint32_t>(parent_.size());
  }
  [[nodiscard]] std::uint32_t arity() const noexcept { return arity_; }

  /// Tree parent; nullopt for the root.
  [[nodiscard]] std::optional<NodeId> parent(NodeId rank) const;
  /// Tree children (live parent relation, reflects healing).
  [[nodiscard]] const std::vector<NodeId>& children(NodeId rank) const;
  /// Distance to the root along live parent links.
  [[nodiscard]] unsigned depth(NodeId rank) const;
  /// max over ranks of depth().
  [[nodiscard]] unsigned height() const;
  /// Ranks in the subtree rooted at `rank` (including it).
  [[nodiscard]] std::vector<NodeId> subtree(NodeId rank) const;

  /// Next hop on the ring plane.
  [[nodiscard]] NodeId ring_next(NodeId rank) const noexcept {
    return (rank + 1) % size();
  }
  /// Ring hop count from `from` to `to`.
  [[nodiscard]] std::uint32_t ring_hops(NodeId from, NodeId to) const noexcept {
    return (to + size() - from) % size();
  }

  /// Re-attach `child`'s subtree under `new_parent` (self-healing).
  /// new_parent must not be inside child's subtree.
  void reparent(NodeId child, NodeId new_parent);

  /// Detach a dead rank: each of its children re-parents to the dead rank's
  /// parent (grandparent healing). Returns the re-parented children.
  std::vector<NodeId> heal_around(NodeId dead);

  /// The full parent relation (index = rank; nullopt = root or detached).
  [[nodiscard]] const std::vector<std::optional<NodeId>>& parents() const noexcept {
    return parent_;
  }

  /// Wholesale-adopt a parent relation. Broker rejoin uses this: the root
  /// broadcasts its authoritative parent array in the "cmb.rejoin" event and
  /// every replica converges on it. Sizes must match.
  void set_parents(std::vector<std::optional<NodeId>> parents);

 private:
  Topology() = default;
  void rebuild_children();

  std::uint32_t arity_ = 2;
  std::vector<std::optional<NodeId>> parent_;
  std::vector<std::vector<NodeId>> children_;
};

}  // namespace flux
