#include "obs/stats.hpp"

#include <bit>

namespace flux::obs {

void Histogram::record(std::uint64_t value) noexcept {
  const std::size_t idx = static_cast<std::size_t>(std::bit_width(value));
  buckets_[idx < kBuckets ? idx : kBuckets - 1] += 1;
  ++count_;
  sum_ += value;
  if (value < min_) min_ = value;
  if (value > max_) max_ = value;
}

std::uint64_t Histogram::percentile(double q) const noexcept {
  if (count_ == 0) return 0;
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  // Rank of the q-th sample, 1-based; walk buckets until it is covered.
  const auto rank = static_cast<std::uint64_t>(q * static_cast<double>(count_ - 1)) + 1;
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < kBuckets; ++i) {
    seen += buckets_[i];
    if (seen >= rank) {
      // Bucket i spans [2^(i-1), 2^i); report its geometric-ish midpoint.
      const std::uint64_t lo = i == 0 ? 0 : (1ull << (i - 1));
      const std::uint64_t hi = i == 0 ? 0 : (1ull << i) - 1;
      std::uint64_t mid = lo + (hi - lo) / 2;
      if (mid < min()) mid = min();
      if (mid > max_) mid = max_;
      return mid;
    }
  }
  return max_;
}

Json Histogram::to_json() const {
  Json buckets = Json::array();
  for (std::size_t i = 0; i < kBuckets; ++i) {
    if (buckets_[i] == 0) continue;
    buckets.push_back(Json::array({i, buckets_[i]}));
  }
  return Json::object({{"count", count_},
                       {"sum", sum_},
                       {"min", min()},
                       {"max", max_},
                       {"mean", mean()},
                       {"p50", percentile(0.50)},
                       {"p90", percentile(0.90)},
                       {"p99", percentile(0.99)},
                       {"buckets", std::move(buckets)}});
}

void Histogram::merge_json(const Json& j) {
  if (!j.is_object() || !j.at("buckets").is_array()) return;
  const auto count = static_cast<std::uint64_t>(j.get_int("count", 0));
  if (count == 0) return;
  for (const Json& pair : j.at("buckets").as_array()) {
    if (!pair.is_array() || pair.size() != 2) continue;
    const auto idx = static_cast<std::size_t>(pair.as_array()[0].as_int());
    if (idx >= kBuckets) continue;
    buckets_[idx] += static_cast<std::uint64_t>(pair.as_array()[1].as_int());
  }
  count_ += count;
  sum_ += static_cast<std::uint64_t>(j.get_int("sum", 0));
  const auto mn = static_cast<std::uint64_t>(j.get_int("min", 0));
  const auto mx = static_cast<std::uint64_t>(j.get_int("max", 0));
  if (mn < min_) min_ = mn;
  if (mx > max_) max_ = mx;
}

Counter& StatsRegistry::counter(std::string_view name) {
  auto it = counters_.find(name);
  if (it == counters_.end())
    it = counters_.emplace(std::string(name), Counter{}).first;
  return it->second;
}

Histogram& StatsRegistry::histogram(std::string_view name) {
  auto it = histograms_.find(name);
  if (it == histograms_.end())
    it = histograms_.emplace(std::string(name), Histogram{}).first;
  return it->second;
}

namespace {
bool under_prefix(std::string_view prefix, std::string_view name) {
  if (prefix.empty()) return true;
  if (name.size() <= prefix.size()) return name == prefix;
  return name.compare(0, prefix.size(), prefix) == 0 &&
         name[prefix.size()] == '.';
}
}  // namespace

Json StatsRegistry::snapshot(std::string_view prefix) const {
  Json counters = Json::object();
  for (const auto& [name, c] : counters_)
    if (under_prefix(prefix, name)) counters[name] = c.value();
  Json histograms = Json::object();
  for (const auto& [name, h] : histograms_)
    if (under_prefix(prefix, name)) histograms[name] = h.to_json();
  return Json::object(
      {{"counters", std::move(counters)}, {"histograms", std::move(histograms)}});
}

void StatsRegistry::merge_snapshot(Json& into, const Json& snap) {
  if (into.is_null())
    into = Json::object(
        {{"counters", Json::object()}, {"histograms", Json::object()}});
  if (snap.at("counters").is_object()) {
    Json& counters = into["counters"];
    for (const auto& [name, value] : snap.at("counters").as_object())
      counters[name] = counters.at(name).is_null()
                           ? value
                           : Json(counters.at(name).as_int() + value.as_int());
  }
  if (snap.at("histograms").is_object()) {
    Json& histograms = into["histograms"];
    for (const auto& [name, hj] : snap.at("histograms").as_object()) {
      Histogram h;
      h.merge_json(histograms.at(name));
      h.merge_json(hj);
      histograms[name] = h.to_json();
    }
  }
}

}  // namespace flux::obs
