// Session observability: counters and latency histograms (paper §V).
//
// The paper's evaluation reasons about per-hop message costs; this registry
// is the in-tree telemetry layer those measurements hang off. Every broker
// owns one StatsRegistry; its comms modules, the KVS, and the network layer
// create named Counters and Histograms in it. Registries are *lock-free on
// the reactor*: a registry is only ever touched from its broker's executor
// (sim: the one SimExecutor thread; threaded: that broker's reactor thread),
// so instruments are plain integers — recording a sample is one array
// increment, cheap enough for every message hop.
//
// Snapshots serialize to JSON for the "<service>.stats.get" RPC; snapshots
// from different ranks merge (counters sum, histogram buckets add) so a
// client can aggregate a session-wide view — see obs/stats_client.hpp.
#pragma once

#include <array>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>

#include "exec/executor.hpp"
#include "json/json.hpp"

namespace flux::obs {

/// Monotonic event counter.
class Counter {
 public:
  void inc(std::uint64_t n = 1) noexcept { value_ += n; }
  [[nodiscard]] std::uint64_t value() const noexcept { return value_; }

 private:
  std::uint64_t value_ = 0;
};

/// Log-scale (power-of-two bucket) histogram of non-negative samples,
/// HdrHistogram-style: bucket i counts samples whose bit width is i, i.e.
/// value 0 -> bucket 0, value v > 0 -> bucket floor(log2(v)) + 1. With 64
/// buckets it covers the full uint64 range at ~2x resolution — enough to
/// read p50/p99 shapes of nanosecond latencies without per-sample storage.
class Histogram {
 public:
  static constexpr std::size_t kBuckets = 64;

  void record(std::uint64_t value) noexcept;
  void record(Duration d) noexcept {
    record(d.count() < 0 ? 0 : static_cast<std::uint64_t>(d.count()));
  }

  [[nodiscard]] std::uint64_t count() const noexcept { return count_; }
  [[nodiscard]] std::uint64_t min() const noexcept { return count_ ? min_ : 0; }
  [[nodiscard]] std::uint64_t max() const noexcept { return max_; }
  [[nodiscard]] std::uint64_t sum() const noexcept { return sum_; }
  [[nodiscard]] double mean() const noexcept {
    return count_ ? static_cast<double>(sum_) / static_cast<double>(count_) : 0.0;
  }

  /// Value at quantile q in [0,1]: the geometric midpoint of the bucket
  /// holding the q-th sample (clamped to observed min/max).
  [[nodiscard]] std::uint64_t percentile(double q) const noexcept;

  /// {"count","sum","min","max","mean","p50","p90","p99","buckets":[[i,n]..]}
  [[nodiscard]] Json to_json() const;

  /// Add another histogram's samples (cross-rank aggregation). Accepts the
  /// to_json() form; unknown/malformed input is ignored.
  void merge_json(const Json& j);

 private:
  std::array<std::uint64_t, kBuckets> buckets_{};
  std::uint64_t count_ = 0;
  std::uint64_t sum_ = 0;
  std::uint64_t min_ = ~0ull;
  std::uint64_t max_ = 0;
};

/// Name-keyed registry of instruments. Names are hierarchical
/// ("kvs.puts", "cmb.rpc_ns"); the leading component is the owning service,
/// which "<service>.stats.get" uses to slice per-module views.
class StatsRegistry {
 public:
  StatsRegistry() = default;
  StatsRegistry(const StatsRegistry&) = delete;
  StatsRegistry& operator=(const StatsRegistry&) = delete;

  /// Find-or-create. References stay valid for the registry's lifetime;
  /// instrument-holding code resolves once and increments directly.
  Counter& counter(std::string_view name);
  Histogram& histogram(std::string_view name);

  /// {"counters":{name:value,...},"histograms":{name:{...},...}}, limited to
  /// names under `prefix` ("kvs" matches "kvs.puts", not "kvsx"); empty
  /// prefix snapshots everything.
  [[nodiscard]] Json snapshot(std::string_view prefix = {}) const;

  /// Merge one snapshot into an aggregate (counters sum; histograms merge).
  static void merge_snapshot(Json& into, const Json& snap);

 private:
  // node-based maps: stable addresses across inserts.
  std::map<std::string, Counter, std::less<>> counters_;
  std::map<std::string, Histogram, std::less<>> histograms_;
};

}  // namespace flux::obs
