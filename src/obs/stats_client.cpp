#include "obs/stats_client.hpp"

#include <cinttypes>
#include <cstdio>

#include "obs/stats.hpp"

namespace flux::obs {

Task<Json> FluxStats::get(std::string service, NodeId rank, bool all) {
  Json payload = Json::object({{"all", all}});
  RequestBuilder req =
      h_.request(std::move(service) + ".stats.get").payload(std::move(payload));
  if (rank != kNodeAny) req.to(rank);
  Message resp = co_await req.call();
  co_return resp.payload();
}

Task<Json> FluxStats::aggregate(std::string service, bool all) {
  Json merged;
  std::int64_t responding = 0;
  for (NodeId rank = 0; rank < h_.size(); ++rank) {
    Json payload = Json::object({{"all", all}});
    Message resp = co_await h_.request(service + ".stats.get")
                       .payload(std::move(payload))
                       .to(rank)
                       .send();
    if (resp.errnum != 0) continue;  // service not loaded at this rank
    StatsRegistry::merge_snapshot(merged, resp.payload());
    ++responding;
  }
  if (merged.is_null())
    merged = Json::object(
        {{"counters", Json::object()}, {"histograms", Json::object()}});
  merged["ranks"] = responding;
  co_return merged;
}

std::string format_snapshot(const Json& snapshot) {
  std::string out;
  char line[256];
  if (snapshot.at("counters").is_object()) {
    for (const auto& [name, value] : snapshot.at("counters").as_object()) {
      std::snprintf(line, sizeof line, "%-36s %12" PRId64 "\n", name.c_str(),
                    value.is_int() ? value.as_int() : 0);
      out += line;
    }
  }
  if (snapshot.at("histograms").is_object()) {
    for (const auto& [name, h] : snapshot.at("histograms").as_object()) {
      std::snprintf(line, sizeof line,
                    "%-36s n=%-8" PRId64 " mean=%-10.0f p50=%-8" PRId64
                    " p90=%-8" PRId64 " p99=%-8" PRId64 " max=%" PRId64 "\n",
                    name.c_str(), h.get_int("count"), h.get_double("mean"),
                    h.get_int("p50"), h.get_int("p90"), h.get_int("p99"),
                    h.get_int("max"));
      out += line;
    }
  }
  return out;
}

}  // namespace flux::obs
