// Client-side observability API.
//
// FluxStats wraps the "<service>.stats.get" RPC family: fetch one broker's
// snapshot, or sweep every rank on the ring plane and merge the snapshots
// (counters sum, histogram buckets add) into the session-wide view the
// `flux stats` sub-command prints. Services: "cmb" reaches the broker core
// on every rank; a module name reaches that module where it is loaded
// (ranks without it are skipped in aggregation).
#pragma once

#include <string>

#include "api/handle.hpp"
#include "exec/task.hpp"

namespace flux::obs {

class FluxStats {
 public:
  explicit FluxStats(Handle& h) : h_(h) {}

  /// One broker's snapshot. kNodeAny asks the nearest instance on the tree
  /// plane; a concrete rank rides the ring. With service "cmb", all=true
  /// returns the full registry (every module's instruments on that rank).
  Task<Json> get(std::string service, NodeId rank = kNodeAny, bool all = false);

  /// Sweep all ranks and merge: {"counters":{...},"histograms":{...},
  /// "ranks":<responding>}. Ranks where the service is not loaded (ENOSYS)
  /// are skipped.
  Task<Json> aggregate(std::string service, bool all = false);

 private:
  Handle& h_;
};

/// Render a merged snapshot for terminal output: counters first (sorted),
/// then one line per histogram (count/mean/p50/p90/p99/max).
std::string format_snapshot(const Json& snapshot);

}  // namespace flux::obs
