#include "resource/pool.hpp"

#include <algorithm>

namespace flux {

Json ResourceRequest::to_json() const {
  return Json::object({{"nnodes", nnodes},
                       {"cores_per_node", cores_per_node},
                       {"power_w", power_w},
                       {"io_bw_gbs", io_bw_gbs}});
}

ResourceRequest ResourceRequest::from_json(const Json& j) {
  ResourceRequest req;
  req.nnodes = j.get_int("nnodes", 1);
  req.cores_per_node = j.get_int("cores_per_node", 1);
  req.power_w = j.get_double("power_w", 0);
  req.io_bw_gbs = j.get_double("io_bw_gbs", 0);
  return req;
}

ResourcePool::ResourcePool(const ResourceGraph& graph, ResourceId scope)
    : graph_(graph) {
  const ResourceId from = (scope == kNoResource) ? graph.root() : scope;
  nodes_ = graph.find("node", from);
  free_.insert(nodes_.begin(), nodes_.end());
  power_budget_ = graph.total_capacity("power", from);
  io_budget_ = graph.total_capacity("bandwidth", from);
}

ResourcePool::ResourcePool(const ResourceGraph& graph,
                           std::vector<ResourceId> nodes,
                           double power_budget_w, double io_bw_budget_gbs)
    : graph_(graph),
      nodes_(std::move(nodes)),
      power_budget_(power_budget_w),
      io_budget_(io_bw_budget_gbs) {
  free_.insert(nodes_.begin(), nodes_.end());
}

std::int64_t ResourcePool::cores_of(ResourceId node) const {
  return static_cast<std::int64_t>(graph_.find("core", node).size());
}

bool ResourcePool::feasible(const ResourceRequest& req) const {
  if (req.nnodes <= 0 || std::cmp_greater(req.nnodes, nodes_.size()))
    return false;
  if (req.power_w > power_budget_ || req.io_bw_gbs > io_budget_) return false;
  std::int64_t wide_enough = 0;
  for (ResourceId n : nodes_)
    if (cores_of(n) >= req.cores_per_node) ++wide_enough;
  return wide_enough >= req.nnodes;
}

bool ResourcePool::fits_now(const ResourceRequest& req) const {
  if (req.nnodes <= 0 || std::cmp_greater(req.nnodes, free_.size()))
    return false;
  if (power_used_ + req.power_w > power_budget_) return false;
  if (io_used_ + req.io_bw_gbs > io_budget_) return false;
  std::int64_t wide_enough = 0;
  for (ResourceId n : free_)
    if (cores_of(n) >= req.cores_per_node) ++wide_enough;
  return wide_enough >= req.nnodes;
}

Expected<Allocation> ResourcePool::allocate(const ResourceRequest& req) {
  if (req.nnodes <= 0)
    return Error(errc::inval, "allocate: nnodes must be > 0");
  if (!fits_now(req))
    return Error(errc::no_spc, "allocate: request does not fit pool");
  Allocation alloc;
  alloc.id = next_id_++;
  for (auto it = free_.begin();
       it != free_.end() && std::cmp_less(alloc.nodes.size(), req.nnodes);) {
    if (cores_of(*it) >= req.cores_per_node) {
      alloc.nodes.push_back(*it);
      it = free_.erase(it);
    } else {
      ++it;
    }
  }
  alloc.power_w = req.power_w;
  alloc.io_bw_gbs = req.io_bw_gbs;
  power_used_ += req.power_w;
  io_used_ += req.io_bw_gbs;
  auto [pos, inserted] = allocations_.emplace(alloc.id, alloc);
  (void)inserted;
  return pos->second;
}

Status ResourcePool::release(std::uint64_t allocation_id) {
  auto it = allocations_.find(allocation_id);
  if (it == allocations_.end())
    return Error(errc::noent, "release: unknown allocation");
  for (ResourceId n : it->second.nodes) free_.insert(n);
  power_used_ -= it->second.power_w;
  io_used_ -= it->second.io_bw_gbs;
  allocations_.erase(it);
  return {};
}

const Allocation* ResourcePool::lookup(std::uint64_t allocation_id) const {
  auto it = allocations_.find(allocation_id);
  return it == allocations_.end() ? nullptr : &it->second;
}

Expected<std::vector<ResourceId>> ResourcePool::grow(
    std::uint64_t allocation_id, const ResourceRequest& delta) {
  auto it = allocations_.find(allocation_id);
  if (it == allocations_.end())
    return Error(errc::noent, "grow: unknown allocation");
  ResourceRequest need = delta;
  need.nnodes = std::max<std::int64_t>(need.nnodes, 0);
  if (std::cmp_greater(need.nnodes, free_.size()))
    return Error(errc::no_spc, "grow: not enough free nodes");
  if (power_used_ + need.power_w > power_budget_)
    return Error(errc::no_spc, "grow: power budget exceeded");
  if (io_used_ + need.io_bw_gbs > io_budget_)
    return Error(errc::no_spc, "grow: bandwidth budget exceeded");
  Allocation& alloc = it->second;
  std::vector<ResourceId> added;
  for (auto fit = free_.begin();
       fit != free_.end() && need.nnodes > 0;) {
    if (cores_of(*fit) >= delta.cores_per_node) {
      added.push_back(*fit);
      alloc.nodes.push_back(*fit);
      fit = free_.erase(fit);
      --need.nnodes;
    } else {
      ++fit;
    }
  }
  if (need.nnodes > 0) {
    // Roll back partial node grabs.
    for (ResourceId n : added) {
      alloc.nodes.pop_back();
      free_.insert(n);
    }
    return Error(errc::no_spc, "grow: nodes too narrow");
  }
  alloc.power_w += delta.power_w;
  alloc.io_bw_gbs += delta.io_bw_gbs;
  power_used_ += delta.power_w;
  io_used_ += delta.io_bw_gbs;
  return added;
}

Status ResourcePool::shrink_nodes(std::uint64_t allocation_id,
                                  const std::vector<ResourceId>& nodes,
                                  double power_w, double io_bw_gbs) {
  auto it = allocations_.find(allocation_id);
  if (it == allocations_.end())
    return Error(errc::noent, "shrink_nodes: unknown allocation");
  Allocation& alloc = it->second;
  if (power_w > alloc.power_w || io_bw_gbs > alloc.io_bw_gbs)
    return Error(errc::inval, "shrink_nodes: more budget than allocated");
  for (ResourceId n : nodes) {
    auto pos = std::find(alloc.nodes.begin(), alloc.nodes.end(), n);
    if (pos == alloc.nodes.end())
      return Error(errc::inval, "shrink_nodes: node not in allocation");
  }
  for (ResourceId n : nodes) {
    alloc.nodes.erase(std::find(alloc.nodes.begin(), alloc.nodes.end(), n));
    free_.insert(n);
  }
  alloc.power_w -= power_w;
  alloc.io_bw_gbs -= io_bw_gbs;
  power_used_ -= power_w;
  io_used_ -= io_bw_gbs;
  return {};
}

void ResourcePool::adopt(const std::vector<ResourceId>& nodes, double power_w,
                         double io_bw_gbs) {
  for (ResourceId n : nodes) {
    nodes_.push_back(n);
    free_.insert(n);
  }
  power_budget_ += power_w;
  io_budget_ += io_bw_gbs;
}

Expected<std::vector<ResourceId>> ResourcePool::cede(
    const ResourceRequest& delta) {
  if (std::cmp_greater(delta.nnodes, free_.size()))
    return Error(errc::again, "cede: not enough free nodes to give back");
  if (delta.power_w > power_budget_ - power_used_)
    return Error(errc::again, "cede: power budget in use");
  if (delta.io_bw_gbs > io_budget_ - io_used_)
    return Error(errc::again, "cede: bandwidth budget in use");
  std::vector<ResourceId> freed;
  for (std::int64_t i = 0; i < delta.nnodes; ++i) {
    auto it = std::prev(free_.end());
    freed.push_back(*it);
    free_.erase(it);
    nodes_.erase(std::find(nodes_.begin(), nodes_.end(), freed.back()));
  }
  power_budget_ -= delta.power_w;
  io_budget_ -= delta.io_bw_gbs;
  return freed;
}

Expected<std::vector<ResourceId>> ResourcePool::shrink(
    std::uint64_t allocation_id, const ResourceRequest& delta) {
  auto it = allocations_.find(allocation_id);
  if (it == allocations_.end())
    return Error(errc::noent, "shrink: unknown allocation");
  Allocation& alloc = it->second;
  if (std::cmp_greater(delta.nnodes, alloc.nodes.size()))
    return Error(errc::inval, "shrink: more nodes than allocated");
  if (delta.power_w > alloc.power_w || delta.io_bw_gbs > alloc.io_bw_gbs)
    return Error(errc::inval, "shrink: more budget than allocated");
  std::vector<ResourceId> freed;
  for (std::int64_t i = 0; i < delta.nnodes; ++i) {
    freed.push_back(alloc.nodes.back());
    alloc.nodes.pop_back();
    free_.insert(freed.back());
  }
  alloc.power_w -= delta.power_w;
  alloc.io_bw_gbs -= delta.io_bw_gbs;
  power_used_ -= delta.power_w;
  io_used_ -= delta.io_bw_gbs;
  return freed;
}

}  // namespace flux
