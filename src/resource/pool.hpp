// ResourcePool: the allocatable view of a resource-graph subset.
//
// A Flux instance owns a pool carved from its parent's allocation (parent
// bounding rule, §III). Pools track free/busy nodes plus scalar budgets
// (power, I/O bandwidth) and support the multilevel elasticity model: a
// child pool can grow or shrink against its parent under parental consent.
#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "base/error.hpp"
#include "resource/resource.hpp"

namespace flux {

/// What a job (or child instance) asks for.
struct ResourceRequest {
  std::int64_t nnodes = 1;
  std::int64_t cores_per_node = 1;   ///< must fit the nodes' core count
  double power_w = 0;                ///< scalar power demand (0 = none)
  double io_bw_gbs = 0;              ///< shared-filesystem bandwidth demand
  [[nodiscard]] Json to_json() const;
  static ResourceRequest from_json(const Json& j);
};

struct Allocation {
  std::uint64_t id = 0;
  std::vector<ResourceId> nodes;
  double power_w = 0;
  double io_bw_gbs = 0;
};

class ResourcePool {
 public:
  /// Pool over every node in the subtree of `scope` (default: whole graph).
  explicit ResourcePool(const ResourceGraph& graph,
                        ResourceId scope = kNoResource);
  /// Pool over an explicit node set with explicit scalar budgets (how a
  /// child instance's bounded pool is built from a parent allocation).
  ResourcePool(const ResourceGraph& graph, std::vector<ResourceId> nodes,
               double power_budget_w, double io_bw_budget_gbs);

  [[nodiscard]] const ResourceGraph& graph() const noexcept { return graph_; }
  [[nodiscard]] std::size_t total_nodes() const noexcept { return nodes_.size(); }
  [[nodiscard]] std::size_t free_nodes() const noexcept { return free_.size(); }
  [[nodiscard]] double power_budget() const noexcept { return power_budget_; }
  [[nodiscard]] double power_in_use() const noexcept { return power_used_; }
  [[nodiscard]] double io_bw_budget() const noexcept { return io_budget_; }
  [[nodiscard]] double io_bw_in_use() const noexcept { return io_used_; }

  /// Can `req` ever fit this pool (even when currently busy)?
  [[nodiscard]] bool feasible(const ResourceRequest& req) const;
  /// Does `req` fit right now?
  [[nodiscard]] bool fits_now(const ResourceRequest& req) const;

  Expected<Allocation> allocate(const ResourceRequest& req);
  Status release(std::uint64_t allocation_id);
  [[nodiscard]] const Allocation* lookup(std::uint64_t allocation_id) const;

  /// Grow an existing allocation in place; returns the node ids added.
  Expected<std::vector<ResourceId>> grow(std::uint64_t allocation_id,
                                         const ResourceRequest& delta);
  /// Shrink: give back `nnodes` nodes / scalar amounts. Returns the freed
  /// node ids so a parent can reclaim them.
  Expected<std::vector<ResourceId>> shrink(std::uint64_t allocation_id,
                                           const ResourceRequest& delta);
  /// Shrink an allocation by a specific node set (returned by a child's
  /// cede()) plus scalar amounts.
  Status shrink_nodes(std::uint64_t allocation_id,
                      const std::vector<ResourceId>& nodes, double power_w,
                      double io_bw_gbs);

  // -- elasticity plumbing between parent/child pools -------------------------
  /// Absorb nodes + scalar budget granted by a parent (child grow).
  void adopt(const std::vector<ResourceId>& nodes, double power_w,
             double io_bw_gbs);
  /// Surrender free nodes + scalar budget to a parent (child shrink).
  Expected<std::vector<ResourceId>> cede(const ResourceRequest& delta);

  /// Dynamic power capping: lower (or raise) the budget. Lowering below
  /// current use succeeds — the pool reports an over-budget condition the
  /// owner must resolve by shrinking children (§III elasticity).
  void set_power_budget(double watts) noexcept { power_budget_ = watts; }
  [[nodiscard]] bool over_power_budget() const noexcept {
    // Tolerance absorbs accumulated floating-point drift from proportional
    // shedding (budgets are watts; a micro-watt is never a real violation).
    return power_used_ > power_budget_ + 1e-6;
  }

  /// Fraction of nodes currently allocated.
  [[nodiscard]] double node_utilization() const noexcept {
    return nodes_.empty() ? 0.0
                          : 1.0 - static_cast<double>(free_.size()) /
                                      static_cast<double>(nodes_.size());
  }

 private:
  [[nodiscard]] std::int64_t cores_of(ResourceId node) const;

  const ResourceGraph& graph_;
  std::vector<ResourceId> nodes_;
  std::set<ResourceId> free_;
  double power_budget_ = 0;
  double power_used_ = 0;
  double io_budget_ = 0;
  double io_used_ = 0;
  std::uint64_t next_id_ = 1;
  std::map<std::uint64_t, Allocation> allocations_;
};

}  // namespace flux
