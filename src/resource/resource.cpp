#include "resource/resource.hpp"

#include <stdexcept>

namespace flux {

ResourceId ResourceGraph::add_root(std::string type, std::string name,
                                   double capacity) {
  if (!vertices_.empty())
    throw std::logic_error("resource graph already has a root");
  vertices_.push_back(ResourceVertex{0, std::move(type), std::move(name),
                                     capacity, kNoResource, {}});
  return 0;
}

ResourceId ResourceGraph::add(ResourceId parent, std::string type,
                              std::string name, double capacity) {
  if (parent >= vertices_.size())
    throw std::out_of_range("resource graph: bad parent");
  const ResourceId id = vertices_.size();
  vertices_.push_back(ResourceVertex{id, std::move(type), std::move(name),
                                     capacity, parent, {}});
  vertices_[parent].children.push_back(id);
  return id;
}

const ResourceVertex& ResourceGraph::at(ResourceId id) const {
  return vertices_.at(id);
}

std::vector<ResourceId> ResourceGraph::find(std::string_view type,
                                            ResourceId from) const {
  std::vector<ResourceId> out;
  if (from == kNoResource || from >= vertices_.size()) return out;
  std::vector<ResourceId> stack{from};
  while (!stack.empty()) {
    const ResourceId id = stack.back();
    stack.pop_back();
    const ResourceVertex& v = vertices_[id];
    if (v.type == type) out.push_back(id);
    for (auto it = v.children.rbegin(); it != v.children.rend(); ++it)
      stack.push_back(*it);
  }
  return out;
}

double ResourceGraph::total_capacity(std::string_view type,
                                     ResourceId from) const {
  double total = 0;
  for (ResourceId id : find(type, from)) total += vertices_[id].capacity;
  return total;
}

std::string ResourceGraph::path(ResourceId id) const {
  const ResourceVertex& v = at(id);
  if (v.parent == kNoResource) return v.name;
  return path(v.parent) + "." + v.name;
}

Json ResourceGraph::vertex_to_json(ResourceId id) const {
  const ResourceVertex& v = vertices_[id];
  Json children = Json::array();
  for (ResourceId c : v.children) children.push_back(vertex_to_json(c));
  return Json::object({{"type", v.type},
                       {"name", v.name},
                       {"capacity", v.capacity},
                       {"children", std::move(children)}});
}

Json ResourceGraph::to_json() const {
  if (vertices_.empty()) return Json();
  return vertex_to_json(0);
}

namespace {
Status parse_vertex(ResourceGraph& g, const Json& j, ResourceId parent) {
  if (!j.is_object()) return Error(errc::proto, "resource: expected object");
  const std::string type = j.get_string("type");
  const std::string name = j.get_string("name");
  if (type.empty() || name.empty())
    return Error(errc::proto, "resource: vertex needs type and name");
  const double capacity = j.get_double("capacity", 1.0);
  const ResourceId id = (parent == kNoResource)
                            ? g.add_root(type, name, capacity)
                            : g.add(parent, type, name, capacity);
  for (const Json& c : j.at("children").is_array()
                           ? j.at("children").as_array()
                           : JsonArray{}) {
    if (auto st = parse_vertex(g, c, id); !st) return st;
  }
  return {};
}
}  // namespace

Expected<ResourceGraph> ResourceGraph::from_json(const Json& j) {
  ResourceGraph g;
  if (auto st = parse_vertex(g, j, kNoResource); !st) return st.error();
  return g;
}

ResourceGraph ResourceGraph::build_center(std::string name, unsigned nclusters,
                                          unsigned nracks,
                                          unsigned nodes_per_rack,
                                          unsigned cores_per_node,
                                          double mem_gb_per_node,
                                          double watts_per_node,
                                          double fs_bandwidth_gbs) {
  ResourceGraph g;
  const ResourceId center = g.add_root("center", std::move(name));
  for (unsigned c = 0; c < nclusters; ++c) {
    const ResourceId cluster =
        g.add(center, "cluster", "cluster" + std::to_string(c));
    g.add(cluster, "bandwidth", "fs", fs_bandwidth_gbs);
    for (unsigned r = 0; r < nracks; ++r) {
      const ResourceId rack = g.add(cluster, "rack", "rack" + std::to_string(r));
      for (unsigned n = 0; n < nodes_per_rack; ++n) {
        const ResourceId node = g.add(rack, "node", "node" + std::to_string(n));
        g.add(node, "memory", "mem", mem_gb_per_node);
        g.add(node, "power", "power", watts_per_node);
        for (unsigned k = 0; k < cores_per_node; ++k)
          g.add(node, "core", "core" + std::to_string(k));
      }
    }
  }
  return g;
}

}  // namespace flux
