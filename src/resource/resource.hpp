// Generalized resource model (paper §III).
//
// "Flux ... introduces a generalized resource model that is extensible and
// covers any kind of resource and its relationships." Resources form a
// containment graph (center → cluster → rack → node → socket → core) with
// scalar resources (power watts, I/O bandwidth, memory) attached at any
// level. Types are open-ended strings so sites can model anything; the
// builders below construct the shapes used by the examples and benches.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "base/error.hpp"
#include "json/json.hpp"

namespace flux {

using ResourceId = std::uint64_t;
inline constexpr ResourceId kNoResource = ~0ULL;

struct ResourceVertex {
  ResourceId id = kNoResource;
  std::string type;      ///< "cluster", "rack", "node", "core", "power", ...
  std::string name;      ///< unique within its parent
  double capacity = 1;   ///< units for scalar types, 1 for structural
  ResourceId parent = kNoResource;
  std::vector<ResourceId> children;
};

class ResourceGraph {
 public:
  /// Create the root vertex; must be called first.
  ResourceId add_root(std::string type, std::string name, double capacity = 1);
  /// Attach a vertex beneath `parent`.
  ResourceId add(ResourceId parent, std::string type, std::string name,
                 double capacity = 1);

  [[nodiscard]] const ResourceVertex& at(ResourceId id) const;
  [[nodiscard]] ResourceId root() const noexcept { return vertices_.empty() ? kNoResource : 0; }
  [[nodiscard]] std::size_t size() const noexcept { return vertices_.size(); }

  /// All vertices of `type` in the subtree under `from` (inclusive).
  [[nodiscard]] std::vector<ResourceId> find(std::string_view type,
                                             ResourceId from) const;
  [[nodiscard]] std::vector<ResourceId> find(std::string_view type) const {
    return find(type, root());
  }

  /// Sum of `capacity` over `type` vertices in the subtree under `from`.
  [[nodiscard]] double total_capacity(std::string_view type,
                                      ResourceId from) const;
  [[nodiscard]] double total_capacity(std::string_view type) const {
    return total_capacity(type, root());
  }

  /// Dotted path from the root ("center.clusterA.rack0.node3").
  [[nodiscard]] std::string path(ResourceId id) const;

  /// JSON form — the shape resvc enumerates into the KVS.
  [[nodiscard]] Json to_json() const;
  static Expected<ResourceGraph> from_json(const Json& j);

  /// A center with `nclusters` clusters of `nracks` racks of
  /// `nodes_per_rack` nodes; each node carries cores, memory and a power
  /// budget; each cluster gets a filesystem-bandwidth resource (the paper's
  /// shared-file-system co-scheduling motivation).
  static ResourceGraph build_center(std::string name, unsigned nclusters,
                                    unsigned nracks, unsigned nodes_per_rack,
                                    unsigned cores_per_node = 16,
                                    double mem_gb_per_node = 32,
                                    double watts_per_node = 350,
                                    double fs_bandwidth_gbs = 100);

 private:
  [[nodiscard]] Json vertex_to_json(ResourceId id) const;
  std::vector<ResourceVertex> vertices_;
};

}  // namespace flux
