#include "sched/policy.hpp"

#include <algorithm>
#include <stdexcept>

namespace flux {

std::vector<std::size_t> FcfsPolicy::select(
    const std::vector<PendingJob>& queue, const SchedContext& ctx) const {
  std::vector<std::size_t> out;
  std::int64_t free_nodes = static_cast<std::int64_t>(ctx.pool.free_nodes());
  double power_left = ctx.pool.power_budget() - ctx.pool.power_in_use();
  double io_left = ctx.pool.io_bw_budget() - ctx.pool.io_bw_in_use();
  for (std::size_t i = 0; i < queue.size(); ++i) {
    const ResourceRequest& r = queue[i].request;
    if (r.nnodes > free_nodes || r.power_w > power_left ||
        r.io_bw_gbs > io_left)
      break;  // strict order: the head blocks everyone behind it
    out.push_back(i);
    free_nodes -= r.nnodes;
    power_left -= r.power_w;
    io_left -= r.io_bw_gbs;
  }
  return out;
}

std::vector<std::size_t> FirstFitPolicy::select(
    const std::vector<PendingJob>& queue, const SchedContext& ctx) const {
  std::vector<std::size_t> out;
  std::int64_t free_nodes = static_cast<std::int64_t>(ctx.pool.free_nodes());
  double power_left = ctx.pool.power_budget() - ctx.pool.power_in_use();
  double io_left = ctx.pool.io_bw_budget() - ctx.pool.io_bw_in_use();
  for (std::size_t i = 0; i < queue.size(); ++i) {
    const ResourceRequest& r = queue[i].request;
    if (r.nnodes > free_nodes || r.power_w > power_left ||
        r.io_bw_gbs > io_left)
      continue;
    out.push_back(i);
    free_nodes -= r.nnodes;
    power_left -= r.power_w;
    io_left -= r.io_bw_gbs;
  }
  return out;
}

std::vector<std::size_t> EasyBackfillPolicy::select(
    const std::vector<PendingJob>& queue, const SchedContext& ctx) const {
  std::vector<std::size_t> out;
  if (queue.empty()) return out;

  std::int64_t free_nodes = static_cast<std::int64_t>(ctx.pool.free_nodes());
  double power_left = ctx.pool.power_budget() - ctx.pool.power_in_use();
  double io_left = ctx.pool.io_bw_budget() - ctx.pool.io_bw_in_use();

  // Start in order while the head fits.
  std::size_t head = 0;
  while (head < queue.size()) {
    const ResourceRequest& r = queue[head].request;
    if (r.nnodes > free_nodes || r.power_w > power_left ||
        r.io_bw_gbs > io_left)
      break;
    out.push_back(head);
    free_nodes -= r.nnodes;
    power_left -= r.power_w;
    io_left -= r.io_bw_gbs;
    ++head;
  }
  if (head >= queue.size()) return out;

  // Blocked head: compute its shadow time — the earliest time running jobs
  // will have released enough nodes — and the extra nodes free at that
  // time. Jobs picked earlier in this very pass count as running too.
  std::vector<RunningJob> ends(ctx.running);
  for (std::size_t i : out)
    ends.push_back(RunningJob{queue[i].jobid, queue[i].request.nnodes,
                              ctx.now + queue[i].walltime});
  std::sort(ends.begin(), ends.end(),
            [](const RunningJob& a, const RunningJob& b) {
              return a.expected_end < b.expected_end;
            });
  std::int64_t avail = free_nodes;
  TimePoint shadow = ctx.now;
  const std::int64_t head_need = queue[head].request.nnodes;
  for (const RunningJob& rj : ends) {
    if (avail >= head_need) break;
    avail += rj.nnodes;
    shadow = rj.expected_end;
  }
  if (avail < head_need) return out;  // cannot even eventually fit (caller
                                      // rejects infeasible jobs up front)
  const std::int64_t spare_at_shadow = avail - head_need;

  // Backfill: a later job may start if it fits now AND will not delay the
  // reservation (finishes before the shadow time, or fits into the spare
  // nodes at the shadow time).
  for (std::size_t i = head + 1; i < queue.size(); ++i) {
    const PendingJob& job = queue[i];
    const ResourceRequest& r = job.request;
    if (r.nnodes > free_nodes || r.power_w > power_left ||
        r.io_bw_gbs > io_left)
      continue;
    const bool finishes_before = ctx.now + job.walltime <= shadow;
    const bool within_spare = r.nnodes <= spare_at_shadow;
    if (!finishes_before && !within_spare) continue;
    out.push_back(i);
    free_nodes -= r.nnodes;
    power_left -= r.power_w;
    io_left -= r.io_bw_gbs;
  }
  return out;
}

std::unique_ptr<Policy> make_policy(std::string_view policy_name) {
  if (policy_name == "fcfs") return std::make_unique<FcfsPolicy>();
  if (policy_name == "firstfit") return std::make_unique<FirstFitPolicy>();
  if (policy_name == "easy") return std::make_unique<EasyBackfillPolicy>();
  throw std::invalid_argument("unknown policy: " + std::string(policy_name));
}

}  // namespace flux
