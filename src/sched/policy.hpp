// Scheduling policies.
//
// §III: "higher-level schedulers must allow a site to impose site-wide
// policies ... while lower-level schedulers should allow efficient use of
// any subsets of resources in accordance with workload types." Policies are
// pluggable per instance; FCFS (strict), first-fit, and EASY backfill are
// provided.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "exec/executor.hpp"
#include "resource/pool.hpp"

namespace flux {

struct PendingJob {
  std::uint64_t jobid = 0;
  ResourceRequest request;
  Duration walltime{0};
  TimePoint submit_time{0};
  int priority = 0;
};

struct RunningJob {
  std::uint64_t jobid = 0;
  std::int64_t nnodes = 0;
  TimePoint expected_end{0};
};

struct SchedContext {
  const ResourcePool& pool;
  TimePoint now{0};
  const std::vector<RunningJob>& running;
};

class Policy {
 public:
  virtual ~Policy() = default;
  [[nodiscard]] virtual std::string_view name() const = 0;
  /// Queue positions (ascending FIFO order input) to start now, in start
  /// order. The scheduler re-checks fits_now before each start.
  [[nodiscard]] virtual std::vector<std::size_t> select(
      const std::vector<PendingJob>& queue, const SchedContext& ctx) const = 0;
};

/// Strict FCFS: start jobs in order; stop at the first that does not fit.
class FcfsPolicy final : public Policy {
 public:
  [[nodiscard]] std::string_view name() const override { return "fcfs"; }
  [[nodiscard]] std::vector<std::size_t> select(
      const std::vector<PendingJob>& queue,
      const SchedContext& ctx) const override;
};

/// First-fit: scan the whole queue, starting anything that fits (can starve
/// wide jobs — kept as a baseline for the backfill comparison).
class FirstFitPolicy final : public Policy {
 public:
  [[nodiscard]] std::string_view name() const override { return "firstfit"; }
  [[nodiscard]] std::vector<std::size_t> select(
      const std::vector<PendingJob>& queue,
      const SchedContext& ctx) const override;
};

/// EASY backfill: the head job gets a node-count reservation at the shadow
/// time; later jobs may start only if they fit now and either finish before
/// the shadow time or leave the reservation intact.
class EasyBackfillPolicy final : public Policy {
 public:
  [[nodiscard]] std::string_view name() const override { return "easy"; }
  [[nodiscard]] std::vector<std::size_t> select(
      const std::vector<PendingJob>& queue,
      const SchedContext& ctx) const override;
};

/// Factory by name ("fcfs", "firstfit", "easy").
std::unique_ptr<Policy> make_policy(std::string_view policy_name);

}  // namespace flux
