#include "sched/scheduler.hpp"

#include <algorithm>

#include "base/log.hpp"

namespace flux {

Scheduler::Scheduler(Executor& ex, ResourcePool& pool,
                     std::unique_ptr<Policy> policy, CostModel cost)
    : ex_(ex), pool_(pool), policy_(std::move(policy)), cost_(cost) {}

Expected<std::uint64_t> Scheduler::submit(ResourceRequest request,
                                          Duration walltime, int priority,
                                          bool manual_completion) {
  if (!pool_.feasible(request))
    return Error(errc::no_spc, "submit: request can never fit this pool");
  PendingJob job;
  job.jobid = next_jobid_++;
  job.request = request;
  job.walltime = walltime;
  job.submit_time = ex_.now();
  job.priority = priority;
  const std::uint64_t jobid = job.jobid;
  // Priority-ordered queue: insert before the first lower-priority entry
  // (stable — equal priorities keep submission order, so the default
  // priority 0 preserves pure FCFS and the policies, which respect queue
  // order, compose with priority for free).
  auto pos = std::find_if(
      queue_.begin(), queue_.end(),
      [priority](const PendingJob& j) { return j.priority < priority; });
  queue_.insert(pos, std::move(job));
  manual_[jobid] = manual_completion;
  ++stats_.submitted;
  if (bound_.submitted) bound_.submitted->inc();
  kick();
  return jobid;
}

Status Scheduler::cancel(std::uint64_t jobid) {
  auto it = std::find_if(queue_.begin(), queue_.end(),
                         [jobid](const PendingJob& j) { return j.jobid == jobid; });
  if (it == queue_.end())
    return Error(errc::noent, "cancel: job not pending");
  queue_.erase(it);
  manual_.erase(jobid);
  ++stats_.canceled;
  if (bound_.canceled) bound_.canceled->inc();
  check_idle();
  return {};
}

void Scheduler::bind_stats(obs::StatsRegistry& registry,
                           const std::string& prefix) {
  bound_.submitted = &registry.counter(prefix + ".submitted");
  bound_.started = &registry.counter(prefix + ".started");
  bound_.completed = &registry.counter(prefix + ".completed");
  bound_.canceled = &registry.counter(prefix + ".canceled");
  bound_.passes = &registry.counter(prefix + ".passes");
  bound_.wait_ns = &registry.histogram(prefix + ".wait_ns");
}

void Scheduler::finish(std::uint64_t jobid) { complete(jobid); }

void Scheduler::kick() {
  if (pass_scheduled_) return;
  pass_scheduled_ = true;
  // A pass costs virtual time and passes serialize per scheduler — the
  // centralized-scheduler bottleneck the paper's hierarchy removes.
  const Duration cost =
      cost_.pass_base +
      cost_.per_queued_job * static_cast<Duration::rep>(queue_.size()) +
      cost_.per_free_node * static_cast<Duration::rep>(pool_.free_nodes());
  const TimePoint start = std::max(ex_.now(), busy_until_);
  busy_until_ = start + cost;
  stats_.sched_busy += cost;
  ex_.post_at(busy_until_,
              [this, tok = std::weak_ptr<const bool>(alive_)] {
                if (tok.expired()) return;  // scheduler destroyed (restart)
                pass();
              });
}

void Scheduler::pass() {
  pass_scheduled_ = false;
  ++stats_.passes;
  if (bound_.passes) bound_.passes->inc();
  if (queue_.empty()) {
    check_idle();
    return;
  }

  std::vector<RunningJob> running;
  running.reserve(running_.size());
  for (const auto& [jobid, r] : running_)
    running.push_back(RunningJob{jobid, r.nnodes, r.expected_end});
  const SchedContext ctx{pool_, ex_.now(), running};
  const std::vector<std::size_t> picks = policy_->select(queue_, ctx);

  // Collect picked jobs first (indices shift as we erase).
  std::vector<PendingJob> to_start;
  to_start.reserve(picks.size());
  std::vector<bool> picked(queue_.size(), false);
  for (std::size_t i : picks)
    if (i < queue_.size()) picked[i] = true;
  std::vector<PendingJob> remaining;
  remaining.reserve(queue_.size());
  for (std::size_t i = 0; i < queue_.size(); ++i) {
    if (picked[i])
      to_start.push_back(std::move(queue_[i]));
    else
      remaining.push_back(std::move(queue_[i]));
  }
  queue_ = std::move(remaining);

  for (PendingJob& job : to_start) {
    auto alloc = pool_.allocate(job.request);
    if (!alloc) {
      // Policy raced pool state; requeue at the front to preserve order.
      log::debug("sched", "allocation failed after select for job ", job.jobid);
      queue_.insert(queue_.begin(), std::move(job));
      continue;
    }
    Running r;
    r.alloc_id = alloc->id;
    r.nnodes = job.request.nnodes;
    r.expected_end = ex_.now() + job.walltime;
    r.manual = manual_[job.jobid];
    manual_.erase(job.jobid);
    running_.emplace(job.jobid, r);
    ++stats_.started;
    stats_.wait_time_total += ex_.now() - job.submit_time;
    if (bound_.started) bound_.started->inc();
    if (bound_.wait_ns) bound_.wait_ns->record(ex_.now() - job.submit_time);
    if (on_start_) on_start_(job.jobid, *alloc);
    if (!r.manual) {
      const std::uint64_t jobid = job.jobid;
      ex_.post_after(job.walltime,
                     [this, jobid, tok = std::weak_ptr<const bool>(alive_)] {
                       if (tok.expired()) return;
                       complete(jobid);
                     });
    }
  }
  check_idle();
}

void Scheduler::complete(std::uint64_t jobid) {
  auto it = running_.find(jobid);
  if (it == running_.end()) return;
  pool_.release(it->second.alloc_id).value();
  running_.erase(it);
  ++stats_.completed;
  if (bound_.completed) bound_.completed->inc();
  if (on_end_) on_end_(jobid);
  if (!queue_.empty()) kick();
  check_idle();
}

void Scheduler::check_idle() {
  if (idle() && on_idle_) on_idle_();
}

const Allocation* Scheduler::allocation_of(std::uint64_t jobid) const {
  auto it = running_.find(jobid);
  return it == running_.end() ? nullptr : pool_.lookup(it->second.alloc_id);
}

std::vector<std::uint64_t> Scheduler::running_jobs() const {
  std::vector<std::uint64_t> out;
  out.reserve(running_.size());
  for (const auto& [jobid, r] : running_) out.push_back(jobid);
  return out;
}

}  // namespace flux
