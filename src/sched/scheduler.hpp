// Event-driven per-instance scheduler.
//
// Each Flux instance runs one Scheduler over its (bounded) ResourcePool.
// The scheduler is a reactor citizen: submissions and job completions kick a
// scheduling pass, and each pass *costs virtual time* (base + per-queued-job
// + per-free-node), serialized per scheduler — which is what makes the
// centralized-vs-hierarchical comparison meaningful: a single center-wide
// scheduler's passes serialize, while sibling instances' schedulers run
// concurrently in virtual time ("scheduler parallelism", §II/§III).
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <vector>

#include "exec/executor.hpp"
#include "obs/stats.hpp"
#include "sched/policy.hpp"

namespace flux {

/// Virtual-time cost of a scheduling pass (at namespace scope: gcc 12
/// rejects `= {}` default arguments for nested aggregates with NSDMIs).
struct SchedCostModel {
  Duration pass_base{std::chrono::microseconds(10)};
  Duration per_queued_job{std::chrono::nanoseconds(400)};
  Duration per_free_node{std::chrono::nanoseconds(80)};
};

class Scheduler {
 public:
  using CostModel = SchedCostModel;

  using StartFn =
      std::function<void(std::uint64_t jobid, const Allocation& alloc)>;
  using EndFn = std::function<void(std::uint64_t jobid)>;
  using IdleFn = std::function<void()>;

  Scheduler(Executor& ex, ResourcePool& pool, std::unique_ptr<Policy> policy,
            CostModel cost = {});

  /// Submit; returns the job id. Infeasible requests are rejected. With
  /// `manual_completion` the job does NOT auto-complete after walltime — the
  /// owner calls finish() (instance jobs end when the child goes quiescent;
  /// walltime then only informs backfill planning).
  Expected<std::uint64_t> submit(ResourceRequest request, Duration walltime,
                                 int priority = 0,
                                 bool manual_completion = false);

  /// Cancel a pending job (running jobs complete normally).
  Status cancel(std::uint64_t jobid);

  /// Owner signals that a manually-completed job is done.
  void finish(std::uint64_t jobid);

  void on_start(StartFn fn) { on_start_ = std::move(fn); }
  void on_end(EndFn fn) { on_end_ = std::move(fn); }
  /// Fires whenever queue and running set both become empty.
  void on_idle(IdleFn fn) { on_idle_ = std::move(fn); }

  /// Request a scheduling pass (coalesced; costs virtual time).
  void kick();

  [[nodiscard]] std::size_t queue_length() const noexcept { return queue_.size(); }
  [[nodiscard]] std::size_t running_count() const noexcept { return running_.size(); }
  [[nodiscard]] bool idle() const noexcept {
    return queue_.empty() && running_.empty();
  }
  [[nodiscard]] ResourcePool& pool() noexcept { return pool_; }
  [[nodiscard]] const Policy& policy() const noexcept { return *policy_; }

  struct Stats {
    std::uint64_t submitted = 0;
    std::uint64_t started = 0;
    std::uint64_t completed = 0;
    std::uint64_t canceled = 0;
    std::uint64_t passes = 0;
    Duration sched_busy{0};       ///< total virtual time spent deciding
    Duration wait_time_total{0};  ///< sum of queue wait across started jobs
  };
  [[nodiscard]] const Stats& stats() const noexcept { return stats_; }

  /// Mirror the counters above into a StatsRegistry (so module stats RPCs
  /// expose them): creates `<prefix>.{submitted,started,completed,canceled,
  /// passes}` counters and a `<prefix>.wait_ns` queue-wait histogram, all
  /// incremented alongside stats_.
  void bind_stats(obs::StatsRegistry& registry, const std::string& prefix);

  /// Expose running jobs (allocation ids) for elasticity operations.
  [[nodiscard]] const Allocation* allocation_of(std::uint64_t jobid) const;
  [[nodiscard]] std::vector<std::uint64_t> running_jobs() const;

 private:
  struct Running {
    std::uint64_t alloc_id = 0;
    std::int64_t nnodes = 0;
    TimePoint expected_end{0};
    bool manual = false;
  };

  void pass();
  void complete(std::uint64_t jobid);
  void check_idle();

  Executor& ex_;
  ResourcePool& pool_;
  std::unique_ptr<Policy> policy_;
  CostModel cost_;
  std::uint64_t next_jobid_ = 1;
  std::vector<PendingJob> queue_;
  std::map<std::uint64_t, bool> manual_;  // jobid -> manual completion
  std::map<std::uint64_t, Running> running_;
  bool pass_scheduled_ = false;
  TimePoint busy_until_{0};
  // Timers are not cancelable; the owning module can be destroyed (broker
  // restart) with a pass or walltime completion still queued. Callbacks hold
  // a weak_ptr to this token and no-op once the scheduler is gone.
  std::shared_ptr<const bool> alive_ = std::make_shared<const bool>(true);
  StartFn on_start_;
  EndFn on_end_;
  IdleFn on_idle_;
  Stats stats_;

  // Optional registry mirror (bind_stats); null when unbound.
  struct BoundStats {
    obs::Counter* submitted = nullptr;
    obs::Counter* started = nullptr;
    obs::Counter* completed = nullptr;
    obs::Counter* canceled = nullptr;
    obs::Counter* passes = nullptr;
    obs::Histogram* wait_ns = nullptr;
  };
  BoundStats bound_;
};

}  // namespace flux
