// Shared test scaffolding: a simulated session plus helpers to run client
// coroutines to completion deterministically.
#pragma once

#include <gtest/gtest.h>

#include <exception>
#include <memory>
#include <optional>

#include "api/handle.hpp"
#include "broker/session.hpp"
#include "exec/sim_executor.hpp"
#include "kvs/kvs_client.hpp"

namespace flux::testing {

/// A wired-up simulated session.
class SimSession {
 public:
  static SessionConfig default_config(std::uint32_t size = 8,
                                      std::uint32_t arity = 2) {
    SessionConfig cfg;
    cfg.size = size;
    cfg.tree_arity = arity;
    return cfg;
  }

  explicit SimSession(SessionConfig cfg = default_config()) {
    session_ = Session::create_sim(ex_, std::move(cfg));
    wireup_ = session_->run_until_online();
  }

  [[nodiscard]] SimExecutor& ex() noexcept { return ex_; }
  [[nodiscard]] Session& session() noexcept { return *session_; }
  [[nodiscard]] Duration wireup() const noexcept { return wireup_; }

  std::unique_ptr<Handle> attach(NodeId rank) { return session_->attach(rank); }

  /// Run a client coroutine until it completes; rethrows its exception.
  /// Fails the test (throws) if the simulator goes idle first.
  template <class T>
  T run(Task<T> task) {
    std::optional<T> out;
    std::exception_ptr error;
    bool done = false;
    co_spawn(ex_, wrap(std::move(task), &out, &error, &done), "test-task");
    ex_.run();
    if (error) std::rethrow_exception(error);
    if (!done) throw std::runtime_error("test task stalled (simulator idle)");
    return std::move(*out);
  }

  void run(Task<void> task) {
    std::exception_ptr error;
    bool done = false;
    co_spawn(ex_, wrap_void(std::move(task), &error, &done), "test-task");
    ex_.run();
    if (error) std::rethrow_exception(error);
    if (!done) throw std::runtime_error("test task stalled (simulator idle)");
  }

  /// Let background (daemon-driven) activity proceed for simulated time d.
  void settle(Duration d) { ex_.run_for(d); }

 private:
  template <class T>
  static Task<void> wrap(Task<T> task, std::optional<T>* out,
                         std::exception_ptr* error, bool* done) {
    try {
      out->emplace(co_await std::move(task));
    } catch (...) {
      *error = std::current_exception();
    }
    *done = true;
  }

  static Task<void> wrap_void(Task<void> task, std::exception_ptr* error,
                              bool* done) {
    try {
      co_await std::move(task);
    } catch (...) {
      *error = std::current_exception();
    }
    *done = true;
  }

  SimExecutor ex_;
  std::unique_ptr<Session> session_;
  Duration wireup_{0};
};

}  // namespace flux::testing
