// Base utilities: errors, hex, rng, logging.
#include <gtest/gtest.h>

#include <set>

#include "base/error.hpp"
#include "base/hex.hpp"
#include "base/log.hpp"
#include "base/rng.hpp"

namespace flux {
namespace {

TEST(Error, NamesAndMessages) {
  EXPECT_EQ(errc_name(errc::noent), "ENOENT");
  EXPECT_EQ(errc_name(errc::nosys), "ENOSYS");
  EXPECT_EQ(Error(errc::timeout).to_string(), "ETIMEDOUT");
  EXPECT_EQ(Error(errc::inval, "bad key").to_string(), "EINVAL: bad key");
  EXPECT_TRUE(Error().ok());
  EXPECT_FALSE(Error(errc::perm).ok());
}

TEST(Error, JobDomainCodesRoundTrip) {
  // Wire values are POSIX errno values and stable forever.
  EXPECT_EQ(static_cast<int>(errc::job_unknown), 3);           // ESRCH
  EXPECT_EQ(static_cast<int>(errc::job_canceled), 4);          // EINTR
  EXPECT_EQ(static_cast<int>(errc::job_rejected), 13);         // EACCES
  EXPECT_EQ(static_cast<int>(errc::alloc_unsatisfiable), 34);  // ERANGE

  EXPECT_EQ(errc_name(errc::job_unknown), "ESRCH");
  EXPECT_EQ(errc_name(errc::job_canceled), "EINTR");
  EXPECT_EQ(errc_name(errc::job_rejected), "EACCES");
  EXPECT_EQ(errc_name(errc::alloc_unsatisfiable), "ERANGE");

  // int -> errc -> error_code -> message round-trips through the category
  // (the path a wire errnum takes back into a typed error).
  for (errc e : {errc::job_unknown, errc::job_canceled, errc::job_rejected,
                 errc::alloc_unsatisfiable}) {
    const std::error_code ec = make_error_code(static_cast<errc>(
        static_cast<int>(e)));
    EXPECT_EQ(ec.value(), static_cast<int>(e));
    EXPECT_EQ(&ec.category(), &flux_category());
    EXPECT_FALSE(ec.message().empty());
    EXPECT_EQ(ec, e);  // is_error_code_enum comparison
  }
  // No collision with any pre-existing code name.
  std::set<int> values;
  for (errc e : {errc::ok, errc::nosys, errc::noent, errc::exist, errc::inval,
                 errc::proto, errc::host_down, errc::timeout, errc::not_dir,
                 errc::is_dir, errc::perm, errc::again, errc::no_spc,
                 errc::canceled, errc::overflow, errc::job_unknown,
                 errc::job_canceled, errc::job_rejected,
                 errc::alloc_unsatisfiable})
    EXPECT_TRUE(values.insert(static_cast<int>(e)).second)
        << "duplicate wire value " << static_cast<int>(e);
}

TEST(Expected, ValueAndErrorPaths) {
  Expected<int> good(5);
  ASSERT_TRUE(good.has_value());
  EXPECT_EQ(*good, 5);
  EXPECT_EQ(good.value_or(9), 5);

  Expected<int> bad(Error(errc::noent, "missing"));
  EXPECT_FALSE(bad.has_value());
  EXPECT_EQ(bad.error().code, errc::noent);
  EXPECT_EQ(bad.value_or(9), 9);
  EXPECT_THROW((void)bad.value(), FluxException);
}

TEST(Expected, StatusSemantics) {
  Status ok;
  EXPECT_TRUE(ok.has_value());
  EXPECT_NO_THROW(ok.value());
  Status fail(Error(errc::again));
  EXPECT_FALSE(fail.has_value());
  EXPECT_THROW(fail.value(), FluxException);
}

TEST(Hex, EncodeDecodeRoundTrip) {
  const std::vector<std::uint8_t> bytes{0x00, 0x01, 0xab, 0xff, 0x10};
  const std::string hex = hex_encode(bytes);
  EXPECT_EQ(hex, "0001abff10");
  auto back = hex_decode(hex);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, bytes);
  // Upper case accepted.
  EXPECT_EQ(*hex_decode("AB"), (std::vector<std::uint8_t>{0xab}));
}

TEST(Hex, DecodeRejectsBadInput) {
  EXPECT_FALSE(hex_decode("abc").has_value());   // odd length
  EXPECT_FALSE(hex_decode("zz").has_value());    // non-hex
  EXPECT_TRUE(hex_decode("").has_value());       // empty is valid (empty)
}

TEST(Rng, DeterministicPerSeed) {
  Rng a(42), b(42), c(43);
  for (int i = 0; i < 100; ++i) {
    const auto va = a();
    EXPECT_EQ(va, b());
    (void)c();
  }
  Rng a2(42), c2(43);
  EXPECT_NE(a2(), c2());
}

TEST(Rng, BelowIsInRangeAndCoversValues) {
  Rng rng(7);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 2000; ++i) {
    const auto v = rng.below(10);
    ASSERT_LT(v, 10u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 10u);
  EXPECT_EQ(rng.below(0), 0u);
  EXPECT_EQ(rng.below(1), 0u);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(9);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 10000, 0.5, 0.02);
}

TEST(Rng, BytesLengthAndPrintable) {
  Rng rng(11);
  for (std::size_t n : {0u, 1u, 7u, 64u, 1000u}) {
    const std::string s = rng.bytes(n);
    ASSERT_EQ(s.size(), n);
    for (char ch : s) ASSERT_TRUE(std::isprint(static_cast<unsigned char>(ch)));
  }
}

TEST(Log, SinkCapturesAboveThreshold) {
  std::vector<std::string> captured;
  log::set_sink([&](log::Level, std::string_view comp, std::string_view msg) {
    captured.push_back(std::string(comp) + ": " + std::string(msg));
  });
  const auto old = log::level();
  log::set_level(log::Level::Warn);
  log::debug("t", "invisible");
  log::warn("t", "visible ", 42);
  log::error("t", "also visible");
  log::set_level(old);
  log::reset_sink();
  ASSERT_EQ(captured.size(), 2u);
  EXPECT_EQ(captured[0], "t: visible 42");
}

}  // namespace
}  // namespace flux
