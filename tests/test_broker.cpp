// CMB broker: wire-up, routing on all three planes, events, module depth.
#include <gtest/gtest.h>

#include "sim_fixture.hpp"

namespace flux {
namespace {

using testing::SimSession;

TEST(Session, WiresUpAndReportsOnline) {
  SimSession s(SimSession::default_config(16));
  EXPECT_TRUE(s.session().all_online());
  EXPECT_GT(s.wireup().count(), 0);
  for (NodeId r = 0; r < 16; ++r)
    EXPECT_TRUE(s.session().broker(r).online()) << "rank " << r;
}

TEST(Session, WireupScalesSubLinearly) {
  auto wireup_of = [](std::uint32_t n) {
    SimSession s(SimSession::default_config(n));
    return s.wireup();
  };
  const auto w16 = wireup_of(16);
  const auto w256 = wireup_of(256);
  // 16x the brokers should cost far less than 16x the wire-up time
  // (tree-parallel hello reduction).
  EXPECT_LT(w256.count(), w16.count() * 16);
}

TEST(Broker, RingAddressedPing) {
  SimSession s(SimSession::default_config(8));
  auto h = s.attach(2);
  Json pong = s.run(h->ping(5));
  EXPECT_EQ(pong.get_int("rank"), 5);
  EXPECT_EQ(pong.get_int("from"), 2);
  EXPECT_GT(s.session().broker(3).stats().ring_forwarded, 0u);
}

TEST(Broker, PingUnknownRankFails) {
  SimSession s(SimSession::default_config(4));
  auto h = s.attach(0);
  EXPECT_THROW(s.run(h->ping(99)), FluxException);
}

TEST(Broker, CmbInfo) {
  SimSession s(SimSession::default_config(8));
  auto h = s.attach(6);
  Message resp = s.run(h->request("cmb.info").call());
  EXPECT_EQ(resp.payload().get_int("rank"), 6);
  EXPECT_EQ(resp.payload().get_int("size"), 8);
  EXPECT_EQ(resp.payload().get_int("depth"), 2);
  EXPECT_TRUE(resp.payload().get_bool("online"));
}

TEST(Broker, CmbLsmodListsTableOneModules) {
  SimSession s;
  auto h = s.attach(0);
  Message resp = s.run(h->request("cmb.lsmod").call());
  std::set<std::string> mods;
  for (const Json& m : resp.payload().at("modules").as_array())
    mods.insert(m.as_string());
  for (const char* want :
       {"hb", "live", "log", "mon", "group", "barrier", "kvs", "wexec", "resvc"})
    EXPECT_TRUE(mods.contains(want)) << want;
}

TEST(Broker, UnmatchedServiceGetsEnosysFromRoot) {
  SimSession s(SimSession::default_config(8));
  auto h = s.attach(7);
  Message resp = s.run([](Handle* hd) -> Task<Message> {
    Message r = co_await hd->request("nosuch.service").send();
    co_return r;
  }(h.get()));
  EXPECT_EQ(resp.errnum, static_cast<int>(errc::nosys));
}

TEST(Broker, UnknownMethodGetsEnosysFromModule) {
  SimSession s;
  auto h = s.attach(0);
  Message resp = s.run([](Handle* hd) -> Task<Message> {
    Message r = co_await hd->request("kvs.frobnicate").send();
    co_return r;
  }(h.get()));
  EXPECT_EQ(resp.errnum, static_cast<int>(errc::nosys));
}

TEST(Broker, RpcTimeoutFires) {
  // barrier.enter with an impossible nprocs never completes -> timeout.
  SimSession s(SimSession::default_config(4));
  auto h = s.attach(1);
  bool timed_out = false;
  s.run([](Handle* hd, bool* out) -> Task<void> {
    Json payload = Json::object({{"name", "never"}, {"nprocs", 9999}});
    try {
      (void)co_await hd->request("barrier.enter")
          .payload(std::move(payload))
          .timeout(std::chrono::milliseconds(10));
    } catch (const FluxException& e) {
      *out = (e.error().code == errc::timeout);
    }
  }(h.get(), &timed_out));
  EXPECT_TRUE(timed_out);
}

TEST(Broker, EventsAreGloballySequencedAndOrdered) {
  SimSession s(SimSession::default_config(8));
  auto pub = s.attach(5);
  auto sub = s.attach(3);
  std::vector<std::uint64_t> seqs;
  std::vector<std::string> topics;
  Subscription watch = sub->subscribe("test", [&](const Message& ev) {
    seqs.push_back(ev.seq);
    topics.push_back(ev.topic);
  });
  for (int i = 0; i < 5; ++i)
    pub->publish("test.ev" + std::to_string(i));
  s.ex().run();
  ASSERT_EQ(topics.size(), 5u);
  for (int i = 0; i < 5; ++i)
    EXPECT_EQ(topics[static_cast<std::size_t>(i)], "test.ev" + std::to_string(i));
  for (std::size_t i = 1; i < seqs.size(); ++i)
    EXPECT_GT(seqs[i], seqs[i - 1]);
}

TEST(Broker, EventsReachEveryRankAndPrefixFilter) {
  SimSession s(SimSession::default_config(8));
  std::vector<std::unique_ptr<Handle>> handles;
  std::vector<Subscription> subs;
  int hits = 0, misses = 0;
  for (NodeId r = 0; r < 8; ++r) {
    handles.push_back(s.attach(r));
    subs.push_back(
        handles.back()->subscribe("aaa", [&](const Message&) { ++hits; }));
    subs.push_back(
        handles.back()->subscribe("zzz", [&](const Message&) { ++misses; }));
  }
  handles[4]->publish("aaa.hello");
  s.ex().run();
  EXPECT_EQ(hits, 8);
  EXPECT_EQ(misses, 0);
}

TEST(Broker, UnsubscribeStopsDelivery) {
  SimSession s(SimSession::default_config(4));
  auto h = s.attach(2);
  int count = 0;
  Subscription sub = h->subscribe("t", [&](const Message&) { ++count; });
  h->publish("t.one");
  s.ex().run();
  sub.reset();
  h->publish("t.two");
  s.ex().run();
  EXPECT_EQ(count, 1);
}

TEST(Broker, ModuleDepthLimitedStillServes) {
  // kvs loaded only at depth <= 1 of a 16-broker binary tree; leaves route
  // kvs requests upstream transparently (paper: "loaded at a configurable
  // tree depth").
  SessionConfig cfg = SimSession::default_config(16);
  cfg.module_max_depth["kvs"] = 1;
  SimSession s(cfg);
  EXPECT_EQ(s.session().broker(15).find_module("kvs"), nullptr);
  EXPECT_NE(s.session().broker(1).find_module("kvs"), nullptr);

  auto h = s.attach(15);  // a leaf without local kvs
  s.run([](Handle* hd) -> Task<void> {
    KvsClient kvs(*hd);
    co_await kvs.put("depth.test", 99);
    co_await kvs.commit();
    Json v = co_await kvs.get("depth.test");
    if (v != Json(99))
      throw FluxException(Error(errc::proto, "unexpected value"));
  }(h.get()));
}

TEST(Broker, BarrierAcrossAllRanks) {
  SimSession s(SimSession::default_config(8));
  std::vector<std::unique_ptr<Handle>> handles;
  int done = 0;
  for (NodeId r = 0; r < 8; ++r) {
    handles.push_back(s.attach(r));
    co_spawn(s.ex(), [](Handle* hd, int* d) -> Task<void> {
      co_await hd->barrier("b1", 8);
      ++*d;
    }(handles.back().get(), &done));
  }
  s.ex().run();
  EXPECT_EQ(done, 8);
}

TEST(Broker, BarrierDoesNotReleaseEarly) {
  SimSession s(SimSession::default_config(4));
  auto h0 = s.attach(0);
  auto h1 = s.attach(1);
  int done = 0;
  co_spawn(s.ex(), [](Handle* hd, int* d) -> Task<void> {
    co_await hd->barrier("b2", 2);
    ++*d;
  }(h0.get(), &done));
  s.ex().run();
  EXPECT_EQ(done, 0);  // only 1 of 2 entered
  co_spawn(s.ex(), [](Handle* hd, int* d) -> Task<void> {
    co_await hd->barrier("b2", 2);
    ++*d;
  }(h1.get(), &done));
  s.ex().run();
  EXPECT_EQ(done, 2);
}

TEST(Broker, BarrierNameReusableAfterCompletion) {
  SimSession s(SimSession::default_config(4));
  auto h = s.attach(3);
  s.run([](Handle* hd) -> Task<void> {
    co_await hd->barrier("again", 1);
    co_await hd->barrier("again", 1);
    co_await hd->barrier("again", 1);
  }(h.get()));
}

class BrokerArity : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(BrokerArity, KvsAndBarrierWorkAtEveryArity) {
  SessionConfig cfg = SimSession::default_config(27, GetParam());
  SimSession s(cfg);
  auto h = s.attach(26);
  s.run([](Handle* hd) -> Task<void> {
    KvsClient kvs(*hd);
    co_await kvs.put("arity.x", "v");
    co_await kvs.commit();
    Json v = co_await kvs.get("arity.x");
    if (v != Json("v")) throw FluxException(Error(errc::proto, "bad value"));
    co_await hd->barrier("arity", 1);
  }(h.get()));
}

INSTANTIATE_TEST_SUITE_P(Arities, BrokerArity,
                         ::testing::Values(1u, 2u, 3u, 4u, 8u));

}  // namespace
}  // namespace flux
