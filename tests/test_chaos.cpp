// Chaos suite: seed-driven deterministic fault schedules against live
// sessions. Every seeded run must terminate — each fence/commit/get either
// completes or fails with a typed FluxException (errc::timeout, host_down,
// ...) — and replaying a seed must reproduce the run bit-for-bit.
//
// Categories (50 distinct seeds total, based at FLUX_TEST_SEED, default 1):
//   base+0..9    broker crashes (no recovery)
//   base+10..19  crashes + restarts with tree rejoin and KVS resync
//   base+20..29  lossy links (probabilistic drop + delay)
//   base+30..39  message corruption
//   base+40..49  sharded-KVS master crash with hb-driven failover
//
// A hang shows up as SimSession::run/ex().run() never finishing a writer
// (`completed == false`) rather than wedging the harness: every client RPC
// runs under the session-wide RetryPolicy deadline.
#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "base/rng.hpp"
#include "fault/plan.hpp"
#include "kvs/kvs_module.hpp"
#include "sim_fixture.hpp"
#include "test_seed.hpp"

namespace flux {
namespace {

using fault::FaultPlan;
using testing::SimSession;

constexpr int kWriters = 4;
constexpr int kRounds = 4;

/// Seeds per category (50 total at the default of 10). FLUX_CHAOS_SEEDS dials
/// the sweep up for soak runs; seed values are just RNG keys, so ranges from
/// different categories overlapping is harmless.
/// Category ranges are based at FLUX_TEST_SEED (test_seed.hpp), so one knob
/// re-rolls every seeded suite; each failure's SCOPED_TRACE names the exact
/// seed to replay.
std::uint64_t chaos_base(std::uint64_t offset) {
  return testing::test_seed() + offset;
}

std::uint64_t seeds_per_category() {
  if (const char* env = std::getenv("FLUX_CHAOS_SEEDS")) {
    const long n = std::atol(env);
    if (n > 0) return static_cast<std::uint64_t>(n);
  }
  return 10;
}

/// Everything observable about one chaos run; two runs of the same seed must
/// compare equal (the determinism contract).
struct ChaosOutcome {
  bool completed = false;  ///< all writers finished (no hang)
  int ok = 0;
  int failed = 0;
  int unexpected = 0;  ///< non-FluxException escapes (always a bug)
  std::vector<std::string> codes;
  std::uint64_t injected = 0;
  std::uint64_t version = 0;

  bool operator==(const ChaosOutcome&) const = default;
};

SessionConfig chaos_config(std::uint32_t size, Json kvs = Json::object()) {
  SessionConfig cfg = SimSession::default_config(size);
  cfg.module_config =
      Json::object({{"hb", Json::object({{"period_us", 100}})},
                    {"live", Json::object({{"missed_max", 3}})},
                    {"kvs", std::move(kvs)}});
  // The no-hang safety net: every client RPC gets a deadline plus retries
  // unless a request overrides it.
  cfg.rpc = RetryPolicy{std::chrono::milliseconds(2), 3,
                        std::chrono::microseconds(100)};
  return cfg;
}

Task<void> chaos_writer(Handle* h, int id, ChaosOutcome* out, int* done) {
  KvsClient kvs(*h);
  for (int round = 0; round < kRounds; ++round) {
    try {
      co_await h->sleep(std::chrono::microseconds(400 + 150 * id));
      co_await kvs.put(
          "chaos.w" + std::to_string(id) + ".r" + std::to_string(round),
          id * 100 + round);
      co_await kvs.fence("chaos.r" + std::to_string(round), kWriters);
      Json peer = co_await kvs.get("chaos.w" + std::to_string((id + 1) % kWriters) +
                                   ".r" + std::to_string(round));
      (void)peer;
      ++out->ok;
    } catch (const FluxException& e) {
      // Clean taint: the operation failed with a typed error instead of
      // hanging or corrupting state.
      ++out->failed;
      out->codes.push_back(std::string(errc_name(e.error().code)));
    } catch (const std::exception&) {
      ++out->unexpected;
    }
  }
  ++*done;
}

/// Arm `plan` on a wired-up session, run the standard writer workload to
/// completion, let hb-driven recovery land, and collect the outcome.
ChaosOutcome run_chaos_workload(SimSession& s, FaultPlan& plan) {
  plan.arm(s.session());
  const std::uint32_t size = s.session().broker(0).size();
  ChaosOutcome out;
  int done = 0;
  std::vector<std::unique_ptr<Handle>> handles;
  for (int w = 0; w < kWriters; ++w) {
    handles.push_back(
        s.attach(static_cast<NodeId>(static_cast<std::uint32_t>(w) * 5 + 1) % size));
    co_spawn(s.ex(), chaos_writer(handles.back().get(), w, &out, &done),
             "chaos-writer");
  }
  s.ex().run();
  out.completed = (done == kWriters);
  s.settle(std::chrono::milliseconds(5));  // heal / failover promotion epochs
  s.ex().run();                            // late restarts, rejoin traffic
  out.injected = plan.faults_injected();

  // Final authoritative KVS version from the root (never crashed by plans).
  auto reader = s.attach(0);
  try {
    out.version = s.run([](Handle* h) -> Task<std::uint64_t> {
      KvsClient kvs(*h);
      co_return co_await kvs.get_version();
    }(reader.get()));
  } catch (const FluxException& e) {
    out.codes.push_back("final:" + std::string(errc_name(e.error().code)));
  }
  return out;
}

void expect_clean(const ChaosOutcome& out) {
  EXPECT_TRUE(out.completed) << "writer workload hung";
  EXPECT_EQ(out.unexpected, 0) << "untyped exception escaped";
  EXPECT_EQ(out.ok + out.failed, kWriters * kRounds);
}

// ---------------------------------------------------------------------------
// Seeded schedule categories
// ---------------------------------------------------------------------------

TEST(Chaos, CrashOnlySeeds) {
  for (std::uint64_t seed = chaos_base(0); seed < chaos_base(0) + seeds_per_category(); ++seed) {
    SCOPED_TRACE(::testing::Message() << "chaos seed " << seed);
    FaultPlan::RandomOptions opt;
    opt.size = 12;
    opt.horizon = std::chrono::milliseconds(8);
    opt.crashes = true;
    opt.max_crashes = 2;
    SimSession s(chaos_config(opt.size));
    FaultPlan plan = FaultPlan::random(seed, opt);
    const ChaosOutcome out = run_chaos_workload(s, plan);
    expect_clean(out);
  }
}

TEST(Chaos, CrashRestartSeeds) {
  for (std::uint64_t seed = chaos_base(10); seed < chaos_base(10) + seeds_per_category(); ++seed) {
    SCOPED_TRACE(::testing::Message() << "chaos seed " << seed);
    FaultPlan::RandomOptions opt;
    opt.size = 12;
    opt.horizon = std::chrono::milliseconds(8);
    opt.crashes = true;
    opt.restarts = true;
    opt.max_crashes = 2;
    SimSession s(chaos_config(opt.size));
    FaultPlan plan = FaultPlan::random(seed, opt);
    const ChaosOutcome out = run_chaos_workload(s, plan);
    expect_clean(out);
    // Every broker the schedule restarted must have rejoined the session.
    for (const fault::NodeEvent& ev : plan.events()) {
      if (ev.kind != fault::NodeEvent::Kind::restart) continue;
      EXPECT_TRUE(s.session().broker(ev.rank).online())
          << "rank " << ev.rank << " did not rejoin";
      EXPECT_FALSE(s.session().broker(ev.rank).failed());
    }
  }
}

TEST(Chaos, LossyLinkSeeds) {
  for (std::uint64_t seed = chaos_base(20); seed < chaos_base(20) + seeds_per_category(); ++seed) {
    SCOPED_TRACE(::testing::Message() << "chaos seed " << seed);
    FaultPlan::RandomOptions opt;
    opt.size = 10;
    opt.drops = true;
    opt.delays = true;
    SimSession s(chaos_config(opt.size));
    FaultPlan plan = FaultPlan::random(seed, opt);
    const ChaosOutcome out = run_chaos_workload(s, plan);
    expect_clean(out);
    EXPECT_GT(plan.messages_seen(), 0u);
  }
}

TEST(Chaos, CorruptionSeeds) {
  for (std::uint64_t seed = chaos_base(30); seed < chaos_base(30) + seeds_per_category(); ++seed) {
    SCOPED_TRACE(::testing::Message() << "chaos seed " << seed);
    FaultPlan::RandomOptions opt;
    opt.size = 10;
    opt.corruption = true;
    SimSession s(chaos_config(opt.size));
    FaultPlan plan = FaultPlan::random(seed, opt);
    const ChaosOutcome out = run_chaos_workload(s, plan);
    expect_clean(out);
  }
}

TEST(Chaos, ShardMasterFailoverSeeds) {
  for (std::uint64_t seed = chaos_base(40); seed < chaos_base(40) + seeds_per_category(); ++seed) {
    SCOPED_TRACE(::testing::Message() << "chaos seed " << seed);
    SimSession s(chaos_config(
        12, Json::object({{"shards", 3}, {"failover", true}})));
    auto* kvs0 =
        dynamic_cast<KvsModule*>(s.session().broker(0).find_module("kvs"));
    ASSERT_NE(kvs0, nullptr);
    const std::vector<NodeId> before = kvs0->shard_masters();
    std::vector<NodeId> candidates;
    for (NodeId m : before)
      if (m != 0 &&
          std::find(candidates.begin(), candidates.end(), m) == candidates.end())
        candidates.push_back(m);
    ASSERT_FALSE(candidates.empty());

    // The schedule itself is seed-derived: which master dies, when, and
    // whether it comes back.
    Rng pick(seed);
    const NodeId victim = candidates[pick.below(candidates.size())];
    FaultPlan plan(seed);
    plan.crash_at(victim, std::chrono::microseconds(
                              1500 + static_cast<std::int64_t>(pick.below(1500))));
    if (pick.uniform() < 0.4)
      plan.restart_at(victim, std::chrono::milliseconds(8));

    const ChaosOutcome out = run_chaos_workload(s, plan);
    expect_clean(out);

    // Every shard the victim mastered must have a new master.
    const std::vector<NodeId>& after = kvs0->shard_masters();
    for (std::size_t sh = 0; sh < before.size(); ++sh) {
      if (before[sh] != victim) continue;
      EXPECT_NE(after[sh], victim) << "shard " << sh << " not failed over";
    }
    // Live ranks agree on the post-failover master map.
    for (NodeId r : {1u, 6u, 11u}) {
      if (s.session().broker(r).failed()) continue;
      auto* k =
          dynamic_cast<KvsModule*>(s.session().broker(r).find_module("kvs"));
      ASSERT_NE(k, nullptr);
      EXPECT_EQ(k->shard_masters(), after) << "rank " << r;
    }
  }
}

// ---------------------------------------------------------------------------
// Determinism
// ---------------------------------------------------------------------------

TEST(Chaos, SameSeedSynthesizesSameSchedule) {
  FaultPlan::RandomOptions opt;
  opt.size = 12;
  opt.crashes = true;
  opt.restarts = true;
  opt.drops = true;
  opt.delays = true;
  opt.corruption = true;
  opt.max_crashes = 3;
  for (std::uint64_t seed : {testing::test_seed() + 2, testing::test_seed() + 98,
                             testing::test_seed() + 12344}) {
    const FaultPlan a = FaultPlan::random(seed, opt);
    const FaultPlan b = FaultPlan::random(seed, opt);
    ASSERT_EQ(a.events().size(), b.events().size()) << "seed " << seed;
    for (std::size_t i = 0; i < a.events().size(); ++i) {
      EXPECT_EQ(a.events()[i].kind, b.events()[i].kind);
      EXPECT_EQ(a.events()[i].rank, b.events()[i].rank);
      EXPECT_EQ(a.events()[i].at.count(), b.events()[i].at.count());
    }
    // Different seeds must not collide on the same schedule.
    const FaultPlan c = FaultPlan::random(seed + 1, opt);
    bool differs = c.events().size() != a.events().size();
    for (std::size_t i = 0; !differs && i < a.events().size(); ++i)
      differs = c.events()[i].rank != a.events()[i].rank ||
                c.events()[i].at.count() != a.events()[i].at.count();
    EXPECT_TRUE(differs) << "seed " << seed;
  }
}

TEST(Chaos, SameSeedReplaysIdentically) {
  const std::uint64_t base = testing::test_seed();
  for (std::uint64_t seed : {base + 12, base + 24, base + 36}) {
    SCOPED_TRACE(::testing::Message() << "chaos seed " << seed);
    const auto once = [seed, base] {
      FaultPlan::RandomOptions opt;
      opt.size = 10;
      opt.horizon = std::chrono::milliseconds(8);
      opt.crashes = seed == base + 12;
      opt.restarts = seed == base + 12;
      opt.drops = seed == base + 24;
      opt.delays = seed == base + 24;
      opt.corruption = seed == base + 36;
      SimSession s(chaos_config(opt.size));
      FaultPlan plan = FaultPlan::random(seed, opt);
      return run_chaos_workload(s, plan);
    };
    const ChaosOutcome first = once();
    const ChaosOutcome second = once();
    EXPECT_TRUE(first == second)
        << "seed " << seed << " diverged: ok " << first.ok << "/" << second.ok
        << " failed " << first.failed << "/" << second.failed << " injected "
        << first.injected << "/" << second.injected << " version "
        << first.version << "/" << second.version;
  }
}

// ---------------------------------------------------------------------------
// Directed recovery scenarios
// ---------------------------------------------------------------------------

TEST(Chaos, RpcToCrashedRankResolvesTimeoutAfterRetries) {
  SimSession s(chaos_config(8));
  s.session().fail(5);
  s.settle(std::chrono::microseconds(10));
  auto h = s.attach(1);
  const TimePoint t0 = s.ex().now();
  try {
    s.run([](Handle* hd) -> Task<void> {
      co_await hd->request("cmb.ping")
          .to(5)
          .timeout(std::chrono::milliseconds(1))
          .retry(2, std::chrono::microseconds(50))
          .call();
      ADD_FAILURE() << "rpc to crashed rank succeeded";
    }(h.get()));
    FAIL() << "expected FluxException";
  } catch (const FluxException& e) {
    EXPECT_EQ(e.error().code, errc::timeout) << e.what();
    EXPECT_EQ(e.code(), make_error_code(errc::timeout));
  }
  // Three attempts (1 + 2 retries), each under a 1ms deadline.
  EXPECT_GE(s.ex().now() - t0, std::chrono::milliseconds(3));
}

TEST(Chaos, SurgicalNthDropIsRetriedToSuccess) {
  SimSession s(chaos_config(4));
  FaultPlan plan(7);
  // Ranks 1 -> 2 only ever talk over the ring plane here, so the first such
  // message is exactly the forwarded ping below.
  plan.drop_nth(1, 2, 1);
  plan.arm(s.session());
  auto h = s.attach(1);
  Json pong = s.run([](Handle* hd) -> Task<Json> {
    co_return co_await hd->ping(3);
  }(h.get()));
  EXPECT_EQ(pong.get_int("rank", -1), 3);
  EXPECT_EQ(plan.faults_injected(), 1u);
}

// ---------------------------------------------------------------------------
// Batched kvs.load under fire: a dropped or corrupted batch fault must be
// retried by the module's session RetryPolicy or surface as a typed taint —
// never hang the reader.
// ---------------------------------------------------------------------------

TEST(Chaos, DroppedBatchedLoadIsRetried) {
  SimSession s(chaos_config(4));
  auto w = s.attach(0);
  s.run([](Handle* hd) -> Task<void> {
    KvsClient kvs(*hd);
    co_await kvs.put("batch.a.b", "survives");
    co_await kvs.commit();
  }(w.get()));

  FaultPlan plan(11);
  // Swallow the leaf's first batched chain fault (3 -> tree parent 1).
  plan.drop_nth(3, 1, 1, "kvs.load");
  plan.arm(s.session());

  auto reader = s.attach(3);
  Json v = s.run([](Handle* hd) -> Task<Json> {
    KvsClient kvs(*hd);
    co_return co_await kvs.get("batch.a.b");
  }(reader.get()));
  EXPECT_EQ(v.as_string(), "survives");
  EXPECT_EQ(plan.faults_injected(), 1u);
  // The lost batch shows up as an extra upstream round-trip, not a hang.
  auto* leaf = dynamic_cast<KvsModule*>(s.session().broker(3).find_module("kvs"));
  ASSERT_NE(leaf, nullptr);
  EXPECT_GE(leaf->op_stats().faults_issued, 2u);
}

TEST(Chaos, CorruptedBatchedLoadIsRetried) {
  SimSession s(chaos_config(4));
  auto w = s.attach(0);
  s.run([](Handle* hd) -> Task<void> {
    KvsClient kvs(*hd);
    co_await kvs.put("batch.c.d", 99);
    co_await kvs.commit();
  }(w.get()));

  FaultPlan plan(12);
  plan.corrupt_nth(3, 1, 1, "kvs.load");
  plan.arm(s.session());

  auto reader = s.attach(3);
  // A mangled frame either fails to decode (link drop -> module retry, get
  // succeeds) or decodes to an altered request whose useless answer taints
  // the get with a typed error. Both terminate; neither may hang.
  try {
    Json v = s.run([](Handle* hd) -> Task<Json> {
      KvsClient kvs(*hd);
      co_return co_await kvs.get("batch.c.d");
    }(reader.get()));
    EXPECT_EQ(v, Json(99));
  } catch (const FluxException& e) {
    EXPECT_TRUE(e.error().code == errc::timeout ||
                e.error().code == errc::noent ||
                e.error().code == errc::proto)
        << "untyped corruption fallout: " << e.error().to_string();
  }
  EXPECT_EQ(plan.faults_injected(), 1u);
}

TEST(Chaos, FullyDroppedBatchedLoadTaintsNeverHangs) {
  SimSession s(chaos_config(4));
  auto w = s.attach(0);
  s.run([](Handle* hd) -> Task<void> {
    KvsClient kvs(*hd);
    co_await kvs.put("batch.e.f", "unreachable");
    co_await kvs.commit();
  }(w.get()));

  FaultPlan plan(13);
  // Swallow every batched fault the leaf can issue within its retry budget
  // (module attempts plus client-retry-triggered reissues). A fired rule
  // consumes its message before later rules count it, so 32 first-match
  // rules drop the first 32 kvs.load sends on the link.
  for (int n = 0; n < 32; ++n) plan.drop_nth(3, 1, 1, "kvs.load");
  plan.arm(s.session());

  auto reader = s.attach(3);
  bool typed_taint = false;
  try {
    (void)s.run([](Handle* hd) -> Task<Json> {
      KvsClient kvs(*hd);
      co_return co_await kvs.get("batch.e.f");
    }(reader.get()));
  } catch (const FluxException& e) {
    typed_taint = e.error().code == errc::timeout ||
                  e.error().code == errc::noent;
  }
  // The run() returning at all proves no hang; the error must be typed.
  EXPECT_TRUE(typed_taint) << "expected timeout/noent taint";
}

TEST(Chaos, RestartedBrokerRejoinsAndResyncsKvs) {
  SimSession s(chaos_config(8));
  auto w = s.attach(0);
  s.run([](Handle* hd) -> Task<void> {
    KvsClient kvs(*hd);
    co_await kvs.put("boot.key", "v1");
    co_await kvs.commit();
  }(w.get()));

  s.session().fail(5);
  s.settle(std::chrono::milliseconds(2));  // detection + heal
  s.session().restart(5);
  s.settle(std::chrono::milliseconds(3));  // rejoin + resync

  EXPECT_TRUE(s.session().broker(5).online());
  EXPECT_FALSE(s.session().broker(5).failed());

  auto back = s.attach(5);
  Json v = s.run([](Handle* hd) -> Task<Json> {
    KvsClient kvs(*hd);
    co_return co_await kvs.get("boot.key");
  }(back.get()));
  EXPECT_EQ(v.as_string(), "v1");

  auto* k5 = dynamic_cast<KvsModule*>(s.session().broker(5).find_module("kvs"));
  auto* k0 = dynamic_cast<KvsModule*>(s.session().broker(0).find_module("kvs"));
  ASSERT_NE(k5, nullptr);
  ASSERT_NE(k0, nullptr);
  EXPECT_EQ(k5->root_version(), k0->root_version());
}

// ---------------------------------------------------------------------------
// Master crash vs. the apply batch
// ---------------------------------------------------------------------------

/// Resolve `key` in the hash tree at `root` using only `store`; nullopt when
/// any component is missing. Lets the test audit the master's final tree
/// directly, after the broker serving reads has been crashed.
std::optional<Json> resolve_in_store(const ContentStore& store,
                                     const Sha1& root, std::string_view key) {
  ObjPtr cur = store.get(root);
  for (const std::string& part : split_key(key)) {
    if (!cur || cur->doc.get_string("t") != "dir") return std::nullopt;
    const Json& entries = cur->doc.at("e");
    if (!entries.contains(part)) return std::nullopt;
    auto ref = Sha1::parse(entries.at(part).as_string());
    if (!ref) return std::nullopt;
    cur = store.get(*ref);
  }
  if (!cur || cur->doc.get_string("t") != "val") return std::nullopt;
  return cur->doc.at("d");
}

constexpr int kKeysPerTxn = 3;

Task<void> batch_txn_writer(Handle* h, int id, ChaosOutcome* out,
                            bool (*acked)[kRounds], int* done) {
  KvsClient kvs(*h);
  for (int round = 0; round < kRounds; ++round) {
    try {
      co_await h->sleep(std::chrono::microseconds(150 + 20 * id));
      const std::string base =
          "batch.w" + std::to_string(id) + ".r" + std::to_string(round);
      for (int k = 0; k < kKeysPerTxn; ++k)
        co_await kvs.put(base + ".k" + std::to_string(k),
                         id * 1000 + round * 10 + k);
      co_await kvs.commit();
      acked[id][round] = true;
      ++out->ok;
    } catch (const FluxException& e) {
      ++out->failed;
      out->codes.push_back(std::string(errc_name(e.error().code)));
    } catch (const std::exception&) {
      ++out->unexpected;
    }
  }
  ++*done;
}

TEST(Chaos, MasterCrashMidBatchNeverHalfApplies) {
  // The master coalesces same-turn commits into one apply batch; a crash
  // landing anywhere around that window — before the flush, mid-fence
  // accumulation, after the ack — must leave every transaction all-or-none
  // in the master's tree and every unacked committer with a typed error.
  // The crash instant is seed-swept across the commit window so some
  // schedules hit each phase.
  std::uint64_t batches_seen = 0;
  for (std::uint64_t seed = chaos_base(50);
       seed < chaos_base(50) + seeds_per_category(); ++seed) {
    SCOPED_TRACE(::testing::Message() << "chaos seed " << seed);
    SimSession s(chaos_config(6));
    Rng rng(seed);
    const auto crash_at = std::chrono::microseconds(100 + rng.below(2400));

    ChaosOutcome out;
    int done = 0;
    bool acked[kWriters][kRounds] = {};
    std::vector<std::unique_ptr<Handle>> handles;
    for (int w = 0; w < kWriters; ++w) {
      handles.push_back(s.attach(static_cast<NodeId>(1 + w)));
      co_spawn(s.ex(),
               batch_txn_writer(handles.back().get(), w, &out, acked, &done),
               "batch-writer");
    }
    auto killer = s.attach(1);
    co_spawn(s.ex(),
             [](Handle* h, Session* sess, Duration at) -> Task<void> {
               co_await h->sleep(at);
               sess->fail(0);
             }(killer.get(), &s.session(), crash_at),
             "master-killer");
    s.ex().run();

    EXPECT_EQ(done, kWriters) << "writer hung after master crash";
    EXPECT_EQ(out.unexpected, 0) << "untyped exception escaped";
    EXPECT_EQ(out.ok + out.failed, kWriters * kRounds);

    // fail() settles RPCs but keeps module state (only restart destroys
    // it), so the master's final tree is still auditable in-process.
    auto* k0 =
        dynamic_cast<KvsModule*>(s.session().broker(0).find_module("kvs"));
    ASSERT_NE(k0, nullptr);
    batches_seen += k0->op_stats().apply_batches;
    for (int w = 0; w < kWriters; ++w) {
      for (int r = 0; r < kRounds; ++r) {
        const std::string base =
            "batch.w" + std::to_string(w) + ".r" + std::to_string(r);
        int present = 0;
        for (int k = 0; k < kKeysPerTxn; ++k)
          if (resolve_in_store(k0->store(), k0->root_ref(),
                               base + ".k" + std::to_string(k)))
            ++present;
        EXPECT_TRUE(present == 0 || present == kKeysPerTxn)
            << base << ": " << present << "/" << kKeysPerTxn
            << " keys applied (half-applied transaction)";
        if (acked[w][r]) {
          EXPECT_EQ(present, kKeysPerTxn)
              << base << ": acked commit missing from the master tree";
        }
      }
    }
  }
  EXPECT_GT(batches_seen, 0u) << "sweep never exercised the apply batch";
}

TEST(Chaos, WindowedApplyCoalescesWithoutLosingAckedCommits) {
  // With an explicit coalescing window, commits landing at distinct sim
  // instants share one deferred apply flush and one setroot announce. The
  // batching must be visible in the stats AND invisible to the oracle:
  // every acked transaction is present whole in the master tree.
  SimSession s(chaos_config(6, Json::object({{"announce_window_us", 60}})));
  ChaosOutcome out;
  int done = 0;
  bool acked[kWriters][kRounds] = {};
  std::vector<std::unique_ptr<Handle>> handles;
  for (int w = 0; w < kWriters; ++w) {
    handles.push_back(s.attach(static_cast<NodeId>(1 + w)));
    co_spawn(s.ex(),
             batch_txn_writer(handles.back().get(), w, &out, acked, &done),
             "windowed-writer");
  }
  s.ex().run();

  EXPECT_EQ(done, kWriters);
  EXPECT_EQ(out.unexpected, 0);
  EXPECT_EQ(out.ok, kWriters * kRounds) << "no faults injected, no failures";

  auto* k0 =
      dynamic_cast<KvsModule*>(s.session().broker(0).find_module("kvs"));
  ASSERT_NE(k0, nullptr);
  const auto& ops = k0->op_stats();
  // All 16 writer commits (plus any module boot-time commit) flowed through
  // the batch path, and the window must have merged concurrent ones:
  // strictly fewer root transitions and announces than fences applied.
  EXPECT_GE(ops.apply_batched_fences, static_cast<std::uint64_t>(kWriters) * kRounds);
  EXPECT_LT(ops.apply_batches, ops.apply_batched_fences)
      << "window never coalesced an apply";
  EXPECT_LT(ops.announces, ops.announced_fences)
      << "window never coalesced an announce";
  for (int w = 0; w < kWriters; ++w) {
    for (int r = 0; r < kRounds; ++r) {
      ASSERT_TRUE(acked[w][r]);
      const std::string base =
          "batch.w" + std::to_string(w) + ".r" + std::to_string(r);
      for (int k = 0; k < kKeysPerTxn; ++k)
        EXPECT_TRUE(resolve_in_store(k0->store(), k0->root_ref(),
                                     base + ".k" + std::to_string(k)))
            << base << ".k" << k << ": acked key missing";
    }
  }
}

TEST(Chaos, WindowedApplyCrashRestartLeavesNoStaleTimer) {
  // A root bounce while the apply/announce timer is armed destroys the
  // KvsModule instance with the timer still due: the stale callback must
  // degrade to a no-op (weak liveness token — ThreadExecutor timers are not
  // cancelable) and the pending batch dies whole. The restart lands INSIDE
  // the window (30 µs after the crash, window 60 µs) so seeds split between
  // timer-fires-on-failed-broker and timer-fires-after-destruction; ASan
  // turns any stale-timer dereference into a hard failure. Root restart is
  // session-fatal by design (plans spare rank 0), so no post-restart
  // service is asserted — only typed settlement and no-UAF.
  for (std::uint64_t seed = chaos_base(60);
       seed < chaos_base(60) + seeds_per_category(); ++seed) {
    SCOPED_TRACE(::testing::Message() << "chaos seed " << seed);
    SimSession s(chaos_config(6, Json::object({{"announce_window_us", 60}})));
    Rng rng(seed);
    const auto crash_at = std::chrono::microseconds(120 + rng.below(600));

    ChaosOutcome out;
    int done = 0;
    bool acked[kWriters][kRounds] = {};
    std::vector<std::unique_ptr<Handle>> handles;
    for (int w = 0; w < kWriters; ++w) {
      handles.push_back(s.attach(static_cast<NodeId>(1 + w)));
      co_spawn(s.ex(),
               batch_txn_writer(handles.back().get(), w, &out, acked, &done),
               "windowed-writer");
    }
    auto killer = s.attach(1);
    co_spawn(s.ex(),
             [](Handle* h, Session* sess, Duration at) -> Task<void> {
               co_await h->sleep(at);
               sess->fail(0);
               co_await h->sleep(std::chrono::microseconds(30));
               sess->restart(0);
             }(killer.get(), &s.session(), crash_at),
             "master-bouncer");
    s.ex().run();

    EXPECT_EQ(done, kWriters) << "writer hung across master bounce";
    EXPECT_EQ(out.unexpected, 0) << "untyped exception escaped";
    EXPECT_EQ(out.ok + out.failed, kWriters * kRounds);
  }
}

// ---------------------------------------------------------------------------
// Plan construction
// ---------------------------------------------------------------------------

TEST(Chaos, FaultPlanFromJsonParsesSchedule) {
  Json crash = Json::object({{"kind", "crash"}, {"rank", 3}, {"at_us", 2000}});
  Json restart =
      Json::object({{"kind", "restart"}, {"rank", 3}, {"at_us", 9000}});
  Json link = Json::object({{"from", -1}, {"to", -1}, {"drop", 0.5}});
  Json nth = Json::object(
      {{"from", 0}, {"to", 1}, {"n", 7}, {"action", "drop"}});
  Json j = Json::object({{"events", Json::array({crash, restart})},
                         {"links", Json::array({link})},
                         {"nth", Json::array({nth})}});
  const FaultPlan plan = FaultPlan::from_json(j);
  ASSERT_EQ(plan.events().size(), 2u);
  EXPECT_EQ(plan.events()[0].kind, fault::NodeEvent::Kind::crash);
  EXPECT_EQ(plan.events()[0].rank, 3u);
  EXPECT_EQ(plan.events()[0].at, std::chrono::microseconds(2000));
  EXPECT_EQ(plan.events()[1].kind, fault::NodeEvent::Kind::restart);
  EXPECT_EQ(plan.events()[1].at, std::chrono::microseconds(9000));
}

TEST(Chaos, FaultPlanFromJsonRejectsMalformed) {
  try {
    FaultPlan::from_json(Json::object({{"events", Json("nope")}}));
    FAIL() << "events-not-an-array accepted";
  } catch (const FluxException& e) {
    EXPECT_EQ(e.error().code, errc::inval);
  }
  Json bad_kind = Json::object({{"kind", "explode"}, {"rank", 1}});
  Json j = Json::object({{"events", Json::array({bad_kind})}});
  try {
    FaultPlan::from_json(j);
    FAIL() << "unknown event kind accepted";
  } catch (const FluxException& e) {
    EXPECT_EQ(e.error().code, errc::inval);
  }
}

}  // namespace
}  // namespace flux
