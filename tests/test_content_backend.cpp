// Durable content log: golden on-disk format vectors + recovery units.
//
// The golden cases pin the byte layout of the persistence format — header,
// record framing, and the three record payload shapes — as committed hex
// dumps under tests/golden/, the same contract the wire codec has in
// test_golden_wire.cpp: a layout change must be a deliberate, reviewed
// golden update, because files written by an old build must recover under a
// new one. Regenerate after an intentional change with:
//   FLUX_UPDATE_GOLDEN=1 ./flux_tests --gtest_filter='GoldenContentLog.*'
//
// The unit cases cover the recovery contract directly on FileLogBackend:
// fresh files, append/sync/recover round-trips, unsynced-tail loss, torn
// tails (partial flush), mid-file corruption, checkpoints, and compaction.

#include <gtest/gtest.h>

#include <unistd.h>

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <span>
#include <string>
#include <vector>

#include "base/error.hpp"
#include "base/hex.hpp"
#include "kvs/content_backend.hpp"
#include "kvs/content_store.hpp"
#include "kvs/treeobj.hpp"

namespace flux {
namespace {

std::string to_hex(std::string_view bytes) {
  return hex_encode(std::span(
      reinterpret_cast<const std::uint8_t*>(bytes.data()), bytes.size()));
}

// -- golden format vectors ---------------------------------------------------

struct GoldenCase {
  std::string name;
  std::string bytes;
};

std::vector<GoldenCase> golden_cases() {
  std::vector<GoldenCase> cases;
  cases.push_back({"content_header", contentlog::header_bytes()});
  {
    // An object record is the object's canonical serialization, framed.
    const ObjPtr obj = make_val_object(Json::object({{"v", "hello"}}));
    cases.push_back(
        {"content_record_object",
         contentlog::frame(contentlog::RecordType::object, obj->bytes)});
  }
  {
    const Sha1 ref = *Sha1::parse("da39a3ee5e6b4b0d3255bfef95601890afd80709");
    cases.push_back({"content_record_root",
                     contentlog::frame(contentlog::RecordType::root,
                                       contentlog::root_payload(0, 9, ref))});
  }
  {
    const std::vector<Sha1> roots = {Sha1::of("shard0"), Sha1::of("shard1")};
    cases.push_back(
        {"content_record_checkpoint",
         contentlog::frame(contentlog::RecordType::checkpoint,
                           contentlog::checkpoint_payload(roots, {3, 7}))});
  }
  return cases;
}

// Content-log vectors live in their own subdirectory: the top level of
// tests/golden/ is the wire-frame corpus, which test_json.cpp sweeps with
// the message decoder.
std::filesystem::path golden_path(const std::string& name) {
  return std::filesystem::path(FLUX_GOLDEN_DIR) / "content" / (name + ".hex");
}

std::string read_golden(const std::string& name) {
  std::ifstream in(golden_path(name));
  std::string hex;
  in >> hex;
  return hex;
}

TEST(GoldenContentLog, OnDiskBytesAreStable) {
  const bool update = std::getenv("FLUX_UPDATE_GOLDEN") != nullptr;
  for (const GoldenCase& c : golden_cases()) {
    SCOPED_TRACE(c.name);
    const std::string hex = to_hex(c.bytes);
    if (update) {
      std::ofstream out(golden_path(c.name));
      out << hex << "\n";
      ASSERT_TRUE(out.good()) << "failed writing " << golden_path(c.name);
      continue;
    }
    const std::string want = read_golden(c.name);
    ASSERT_FALSE(want.empty())
        << "missing golden file " << golden_path(c.name)
        << " (regenerate with FLUX_UPDATE_GOLDEN=1)";
    EXPECT_EQ(hex, want) << "on-disk layout changed; if intentional, "
                            "regenerate goldens with FLUX_UPDATE_GOLDEN=1";
  }
}

TEST(GoldenContentLog, GoldenFilesStillRecover) {
  // A file assembled from the committed hex dumps — exactly what an old
  // build wrote — must recover: object replayed, root + checkpoint adopted.
  if (std::getenv("FLUX_UPDATE_GOLDEN") != nullptr)
    GTEST_SKIP() << "regenerating goldens";
  std::string data;
  for (const char* name : {"content_header", "content_record_object",
                           "content_record_root",
                           "content_record_checkpoint"}) {
    const std::string hex = read_golden(name);
    ASSERT_FALSE(hex.empty()) << "missing golden file " << golden_path(name);
    const auto bytes = hex_decode(hex);
    ASSERT_TRUE(bytes.has_value()) << "golden file is not valid hex";
    data.append(reinterpret_cast<const char*>(bytes->data()), bytes->size());
  }
  const std::string path =
      (std::filesystem::temp_directory_path() /
       ("flux-golden-recover-" + std::to_string(::getpid()) + ".log"))
          .string();
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out << data;
  }
  ContentStore store;
  FileLogBackend backend(path);
  const ContentBackend::Recovered rec = backend.recover(store);
  EXPECT_EQ(rec.objects, 1u);
  EXPECT_TRUE(rec.found_checkpoint);
  ASSERT_EQ(rec.versions.size(), 2u);  // checkpoint supersedes the root
  EXPECT_EQ(rec.versions[0], 3u);
  EXPECT_EQ(rec.versions[1], 7u);
  EXPECT_EQ(rec.truncated_bytes, 0u);
  const ObjPtr obj = make_val_object(Json::object({{"v", "hello"}}));
  EXPECT_TRUE(store.contains(obj->id));
  std::filesystem::remove(path);
}

// -- FileLogBackend units ----------------------------------------------------

class ContentBackendTest : public ::testing::Test {
 protected:
  std::string temp_log() {
    static std::atomic<int> counter{0};
    auto p = (std::filesystem::temp_directory_path() /
              ("flux-backend-test-" + std::to_string(::getpid()) + "-" +
               std::to_string(counter.fetch_add(1)) + ".log"))
                 .string();
    paths_.push_back(p);
    return p;
  }
  void TearDown() override {
    for (const std::string& p : paths_) {
      std::filesystem::remove(p);
      std::filesystem::remove(p + ".tmp");
    }
  }
  std::vector<std::string> paths_;
};

TEST_F(ContentBackendTest, FreshFileRecoversEmptyAndWritesHeader) {
  const std::string path = temp_log();
  ContentStore store;
  FileLogBackend backend(path);
  const ContentBackend::Recovered rec = backend.recover(store);
  EXPECT_EQ(rec.objects, 0u);
  EXPECT_FALSE(rec.found_checkpoint);
  EXPECT_FALSE(rec.has_root(0));
  EXPECT_EQ(std::filesystem::file_size(path), contentlog::kHeaderSize);
}

TEST_F(ContentBackendTest, AppendSyncRecoverRoundTrip) {
  const std::string path = temp_log();
  const ObjPtr a = make_val_object(Json::object({{"x", std::int64_t{1}}}));
  const ObjPtr b = make_val_object(Json::object({{"x", std::int64_t{2}}}));
  {
    ContentStore store;
    FileLogBackend backend(path);
    (void)backend.recover(store);
    backend.append_object(*a);
    backend.append_object(*b);
    backend.append_root(0, 1, b->id);
    EXPECT_GT(backend.unsynced_bytes(), 0u);
    backend.sync();
    EXPECT_EQ(backend.unsynced_bytes(), 0u);
    backend.close();
  }
  ContentStore store;
  FileLogBackend backend(path);
  const ContentBackend::Recovered rec = backend.recover(store);
  EXPECT_EQ(rec.objects, 2u);
  ASSERT_TRUE(rec.has_root(0));
  EXPECT_EQ(rec.versions[0], 1u);
  EXPECT_EQ(rec.roots[0], b->id);
  EXPECT_TRUE(store.contains(a->id));
  EXPECT_TRUE(store.contains(b->id));
  EXPECT_EQ(rec.truncated_bytes, 0u);
}

TEST_F(ContentBackendTest, UnsyncedTailIsLostOnCrash) {
  const std::string path = temp_log();
  const ObjPtr a = make_val_object(Json::object({{"acked", true}}));
  const ObjPtr b = make_val_object(Json::object({{"acked", false}}));
  {
    ContentStore store;
    FileLogBackend backend(path);
    (void)backend.recover(store);
    backend.append_object(*a);
    backend.append_root(0, 1, a->id);
    backend.sync();  // v1 acked
    backend.append_object(*b);
    backend.append_root(0, 2, b->id);
    backend.crash(0);  // v2 never synced: clean tail loss
  }
  ContentStore store;
  FileLogBackend backend(path);
  const ContentBackend::Recovered rec = backend.recover(store);
  ASSERT_TRUE(rec.has_root(0));
  EXPECT_EQ(rec.versions[0], 1u);
  EXPECT_TRUE(store.contains(a->id));
  EXPECT_FALSE(store.contains(b->id));
}

TEST_F(ContentBackendTest, TornTailIsTruncatedAtLastIntactRecord) {
  const std::string path = temp_log();
  const ObjPtr a = make_val_object(Json::object({{"k", "durable"}}));
  const ObjPtr b = make_val_object(Json::object({{"k", "torn-away"}}));
  std::uint64_t half = 0;
  {
    ContentStore store;
    FileLogBackend backend(path);
    (void)backend.recover(store);
    backend.append_object(*a);
    backend.append_root(0, 1, a->id);
    backend.sync();
    backend.append_object(*b);
    backend.append_root(0, 2, b->id);
    half = backend.unsynced_bytes() / 2;
    ASSERT_GT(half, 0u);
    backend.crash(half);  // a torn partial flush reached the disk
  }
  ContentStore store;
  FileLogBackend backend(path);
  const ContentBackend::Recovered rec = backend.recover(store);
  ASSERT_TRUE(rec.has_root(0));
  EXPECT_EQ(rec.versions[0], 1u);  // the acked root survives the torn tail
  EXPECT_TRUE(store.contains(a->id));
  EXPECT_GT(rec.truncated_bytes, 0u);

  // Recovery physically truncated the damage: a second recovery is clean.
  ContentStore store2;
  FileLogBackend backend2(path);
  const ContentBackend::Recovered rec2 = backend2.recover(store2);
  EXPECT_EQ(rec2.truncated_bytes, 0u);
  ASSERT_TRUE(rec2.has_root(0));
  EXPECT_EQ(rec2.versions[0], 1u);
}

TEST_F(ContentBackendTest, CorruptedRecordStopsTheScan) {
  const std::string path = temp_log();
  const ObjPtr a = make_val_object(Json::object({{"n", std::int64_t{1}}}));
  {
    ContentStore store;
    FileLogBackend backend(path);
    (void)backend.recover(store);
    backend.append_object(*a);
    backend.append_root(0, 1, a->id);
    backend.append_root(0, 2, a->id);
    backend.sync();
    backend.close();
  }
  {
    // Flip one bit in the last record's checksum region.
    std::fstream f(path, std::ios::binary | std::ios::in | std::ios::out);
    f.seekg(0, std::ios::end);
    const auto size = static_cast<std::streamoff>(f.tellg());
    f.seekg(size - 1);
    char c = 0;
    f.read(&c, 1);
    c = static_cast<char>(c ^ 0x01);
    f.seekp(size - 1);
    f.write(&c, 1);
  }
  ContentStore store;
  FileLogBackend backend(path);
  const ContentBackend::Recovered rec = backend.recover(store);
  ASSERT_TRUE(rec.has_root(0));
  EXPECT_EQ(rec.versions[0], 1u);  // v2's record failed its checksum
  EXPECT_GT(rec.truncated_bytes, 0u);
  EXPECT_TRUE(store.contains(a->id));
}

TEST_F(ContentBackendTest, CheckpointSupersedesRootRecords) {
  const std::string path = temp_log();
  const ObjPtr a = make_val_object(Json::object({{"s", std::int64_t{0}}}));
  const ObjPtr b = make_val_object(Json::object({{"s", std::int64_t{1}}}));
  {
    ContentStore store;
    FileLogBackend backend(path);
    (void)backend.recover(store);
    backend.append_object(*a);
    backend.append_object(*b);
    backend.append_root(0, 3, a->id);
    backend.append_checkpoint({a->id, b->id}, {5, 7});
    backend.sync();
    backend.close();
  }
  ContentStore store;
  FileLogBackend backend(path);
  const ContentBackend::Recovered rec = backend.recover(store);
  EXPECT_TRUE(rec.found_checkpoint);
  ASSERT_EQ(rec.versions.size(), 2u);
  EXPECT_EQ(rec.versions[0], 5u);
  EXPECT_EQ(rec.versions[1], 7u);
  EXPECT_EQ(rec.roots[0], a->id);
  EXPECT_EQ(rec.roots[1], b->id);
}

TEST_F(ContentBackendTest, CompactRewritesToLiveContents) {
  const std::string path = temp_log();
  ContentStore store;
  FileLogBackend backend(path);
  (void)backend.recover(store);
  store.attach_backend(&backend);
  std::vector<ObjPtr> objs;
  for (int i = 0; i < 16; ++i) {
    objs.push_back(make_val_object(Json::object({{"i", std::int64_t{i}}})));
    store.put(objs.back());
  }
  backend.append_root(0, 1, objs.back()->id);
  backend.sync();
  const std::uint64_t before = backend.durable_bytes();

  // GC swept most of the store; compaction reclaims their log space.
  for (int i = 0; i < 12; ++i) store.erase(objs[static_cast<std::size_t>(i)]->id);
  backend.compact(store, {objs.back()->id}, {1});
  EXPECT_LT(backend.durable_bytes(), before);
  EXPECT_GT(backend.stats().compactions, 0u);
  store.attach_backend(nullptr);
  backend.close();

  ContentStore store2;
  FileLogBackend backend2(path);
  const ContentBackend::Recovered rec = backend2.recover(store2);
  EXPECT_EQ(rec.objects, 4u);
  EXPECT_TRUE(rec.found_checkpoint);
  ASSERT_TRUE(rec.has_root(0));
  EXPECT_EQ(rec.versions[0], 1u);
  EXPECT_EQ(rec.roots[0], objs.back()->id);
  for (int i = 12; i < 16; ++i)
    EXPECT_TRUE(store2.contains(objs[static_cast<std::size_t>(i)]->id));
}

TEST_F(ContentBackendTest, BadMagicThrowsTyped) {
  const std::string path = temp_log();
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out << "NOTAFLUXCASFILE-GARBAGE-GARBAGE";
  }
  ContentStore store;
  FileLogBackend backend(path);
  try {
    (void)backend.recover(store);
    FAIL() << "expected FluxException";
  } catch (const FluxException& e) {
    EXPECT_EQ(e.error().code, errc::inval);
  }
}

}  // namespace
}  // namespace flux
