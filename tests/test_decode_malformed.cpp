// Malformed-input decode tests: hostile bytes must come back as typed errors
// (errc::proto), never crash or over-read. Complements the basic truncation /
// bad-magic coverage in test_msg.cpp with the structured frames it skips:
// ObjectBundle bodies, oversized length fields deep inside a rich frame, the
// attachment-registry path, and exhaustive byte-corruption sweeps. The whole
// file is most valuable under the asan preset, where an over-read is a hard
// failure instead of a silent lucky pass.

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "base/error.hpp"
#include "base/rng.hpp"
#include "kvs/object_bundle.hpp"
#include "kvs/treeobj.hpp"
#include "msg/codec.hpp"
#include "msg/message.hpp"

namespace flux {
namespace {

void put_u32le(std::string& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) out.push_back(static_cast<char>(v >> (8 * i)));
}

void patch_u16le(std::vector<std::uint8_t>& wire, std::size_t off,
                 std::uint16_t v) {
  wire[off] = static_cast<std::uint8_t>(v & 0xff);
  wire[off + 1] = static_cast<std::uint8_t>(v >> 8);
}

void patch_u32le(std::vector<std::uint8_t>& wire, std::size_t off,
                 std::uint32_t v) {
  for (int i = 0; i < 4; ++i)
    wire[off + static_cast<std::size_t>(i)] =
        static_cast<std::uint8_t>(v >> (8 * i));
}

std::string bundle_bytes() {
  const ObjectBundle b(std::vector<ObjPtr>{
      make_val_object(Json::object({{"v", std::int64_t{1}}})),
      empty_dir_object()});
  return b.serialize();
}

void expect_proto(const Expected<std::shared_ptr<const Attachment>>& r,
                  const char* what) {
  ASSERT_FALSE(r.has_value()) << what;
  EXPECT_EQ(r.error().code, errc::proto) << r.error().to_string();
}

// -- ObjectBundle::deserialize ------------------------------------------------

TEST(BundleMalformed, EmptyBodyIsTruncatedCount) {
  expect_proto(ObjectBundle::deserialize(""), "empty body");
}

TEST(BundleMalformed, EveryTruncationIsRejected) {
  const std::string body = bundle_bytes();
  for (std::size_t len = 0; len < body.size(); ++len) {
    SCOPED_TRACE(len);
    expect_proto(ObjectBundle::deserialize(body.substr(0, len)), "truncation");
  }
}

TEST(BundleMalformed, OversizedLengthsAreRejected) {
  std::string body = bundle_bytes();
  // Object count far beyond the body.
  std::string bad = body;
  bad[0] = '\xff';
  bad[1] = '\xff';
  expect_proto(ObjectBundle::deserialize(bad), "oversized count");
  // First object's length field claims 4 GiB.
  bad = body;
  for (std::size_t i = 4; i < 8; ++i) bad[i] = '\xff';
  expect_proto(ObjectBundle::deserialize(bad), "oversized object length");
}

TEST(BundleMalformed, TrailingBytesAreRejected) {
  expect_proto(ObjectBundle::deserialize(bundle_bytes() + "x"),
               "trailing bytes");
}

TEST(BundleMalformed, MalformedObjectDocumentsAreRejected) {
  // Well-formed framing around bytes that are not a treeobj document.
  for (const std::string obj : {std::string("not json at all"),
                                std::string(R"({"t":"bogus"})"),
                                std::string(R"([1,2,3])")}) {
    SCOPED_TRACE(obj);
    std::string body;
    put_u32le(body, 1);
    put_u32le(body, static_cast<std::uint32_t>(obj.size()));
    body += obj;
    expect_proto(ObjectBundle::deserialize(body), "malformed object");
  }
}

TEST(BundleMalformed, ByteCorruptionSweepNeverCrashes) {
  const std::string body = bundle_bytes();
  for (std::size_t i = 0; i < body.size(); ++i) {
    std::string bad = body;
    bad[i] = static_cast<char>(bad[i] ^ 0xff);
    // Must not crash or over-read; a typed error (or, for a flip that lands
    // harmlessly inside a value, success) are both acceptable.
    auto r = ObjectBundle::deserialize(bad);
    if (!r.has_value()) EXPECT_NE(r.error().code, errc::ok);
  }
}

// -- wire-frame length fields -------------------------------------------------

// A message exercising every frame: topic, route, trace, payload, data,
// attachment.
Message rich_message() {
  ObjectBundle::register_codec();
  Message m = Message::request(
      "kvs.stage", Json::object({{"k", "a.b"}, {"n", std::int64_t{2}}}));
  m.matchtag = 9;
  m.flags = kMsgFlagTrace;
  m.route = {RouteHop{RouteHop::Kind::Client, 1, 7},
             RouteHop{RouteHop::Kind::Broker, 1, 0}};
  m.trace = {TraceHop{1, TraceHop::Plane::Local, 100}};
  m.set_data(std::make_shared<const std::string>("bulk"));
  m.set_attachment(std::make_shared<const ObjectBundle>(
      std::vector<ObjPtr>{make_val_object(Json("x"))}));
  return m;
}

// Offsets per the layout in codec.hpp (fixed header is 26 bytes).
struct FrameOffsets {
  std::size_t topic_len;  // u16
  std::size_t route_len;  // u16
  std::size_t trace_len;  // u16
  std::size_t json_len;   // u32
  std::size_t data_len;   // u32
  std::size_t att_len;    // u32
  std::size_t att_tag;    // tag bytes
};

FrameOffsets offsets_of(const Message& m) {
  FrameOffsets o{};
  o.topic_len = 26;
  o.route_len = o.topic_len + 2 + m.topic.size();
  o.trace_len = o.route_len + 2 + 13 * m.route.size();
  o.json_len = o.trace_len + 2 + 13 * m.trace.size();
  o.data_len = o.json_len + 4 + m.payload().dump().size();
  const std::size_t tag_len_off = o.data_len + 4 + m.data_size();
  o.att_tag = tag_len_off + 1;
  o.att_len = o.att_tag + m.attachment()->tag().size();
  return o;
}

void expect_proto_decode(std::span<const std::uint8_t> wire, const char* what) {
  auto r = decode(wire);
  ASSERT_FALSE(r.has_value()) << what;
  EXPECT_EQ(r.error().code, errc::proto) << r.error().to_string();
}

TEST(WireMalformed, OversizedLengthFieldsAreRejected) {
  const Message m = rich_message();
  const std::vector<std::uint8_t> wire = encode(m);
  const FrameOffsets o = offsets_of(m);

  // Sanity: the offset map is consistent with the real frame (the attachment
  // tag sits where we computed it).
  ASSERT_EQ(std::string(wire.begin() + static_cast<std::ptrdiff_t>(o.att_tag),
                        wire.begin() + static_cast<std::ptrdiff_t>(o.att_len)),
            "kvsobj");

  auto bad = wire;
  patch_u16le(bad, o.topic_len, 0xffff);
  expect_proto_decode(bad, "oversized topic length");

  bad = wire;
  patch_u16le(bad, o.route_len, 0xffff);
  expect_proto_decode(bad, "oversized route length");

  bad = wire;
  patch_u16le(bad, o.trace_len, 0xffff);
  expect_proto_decode(bad, "oversized trace length");

  bad = wire;
  patch_u32le(bad, o.json_len, 0xffffffffu);
  expect_proto_decode(bad, "oversized json length");

  bad = wire;
  patch_u32le(bad, o.data_len, 0xffffffffu);
  expect_proto_decode(bad, "oversized data length");

  bad = wire;
  patch_u32le(bad, o.att_len, 0xffffffffu);
  expect_proto_decode(bad, "oversized attachment length");
}

TEST(WireMalformed, UnknownAttachmentTagIsRejected) {
  const Message m = rich_message();
  std::vector<std::uint8_t> wire = encode(m);
  const FrameOffsets o = offsets_of(m);
  for (std::size_t i = o.att_tag; i < o.att_len; ++i) wire[i] = 'z';
  expect_proto_decode(wire, "unknown attachment tag");
}

TEST(WireMalformed, ShortenedAttachmentLeavesTrailingBytes) {
  const Message m = rich_message();
  std::vector<std::uint8_t> wire = encode(m);
  const FrameOffsets o = offsets_of(m);
  const std::uint32_t att_len =
      static_cast<std::uint32_t>(m.attachment()->serialize().size());
  ASSERT_GT(att_len, 0u);
  patch_u32le(wire, o.att_len, att_len - 1);
  expect_proto_decode(wire, "shortened attachment");
}

TEST(WireMalformed, ByteCorruptionSweepNeverCrashes) {
  const std::vector<std::uint8_t> wire = encode(rich_message());
  for (std::size_t i = 0; i < wire.size(); ++i) {
    auto bad = wire;
    bad[i] ^= 0xff;
    auto r = decode(bad);
    if (!r.has_value()) EXPECT_NE(r.error().code, errc::ok);
  }
}

TEST(WireMalformed, RandomBitFlipsNeverCrash) {
  const std::vector<std::uint8_t> wire = encode(rich_message());
  Rng rng(0x5eed);
  for (int n = 0; n < 500; ++n) {
    auto bad = wire;
    const int flips = 1 + static_cast<int>(rng.below(4));
    for (int f = 0; f < flips; ++f)
      bad[rng.below(bad.size())] ^=
          static_cast<std::uint8_t>(1u << rng.below(8));
    (void)decode(bad);  // typed error or lucky success; never a crash
  }
}

TEST(WireMalformed, DecodeSharedRejectsTruncatedFrame) {
  const Message m = rich_message();
  const WireFrame full = encode_shared(m);
  // decode_shared on the intact frame works...
  auto ok = decode_shared(full);
  ASSERT_TRUE(ok.has_value()) << ok.error().to_string();
  // ...and every truncation comes back as a typed error.
  for (std::size_t len : {std::size_t{0}, std::size_t{10}, full->size() - 1}) {
    auto frame = std::make_shared<const std::vector<std::uint8_t>>(
        full->begin(), full->begin() + static_cast<std::ptrdiff_t>(len));
    auto r = decode_shared(frame);
    ASSERT_FALSE(r.has_value()) << "truncated to " << len;
    EXPECT_EQ(r.error().code, errc::proto);
  }
}

}  // namespace
}  // namespace flux
