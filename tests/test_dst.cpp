// Deterministic-simulation tests (ctest -L dst).
//
// Three layers, matching DESIGN.md §5:
//   1. exploration — sweep seeds through the standard DST workload (clean,
//      sharded, fault-injected) and require the consistency oracle to pass
//      every schedule. FLUX_DST_SEEDS scales the per-config sweep width;
//      FLUX_TEST_SEED shifts the base seed of every sweep.
//   2. teeth — for each property the oracle claims to check, enable the one
//      test-only mutation that breaks exactly that property and require the
//      oracle to flag it. An oracle that passes a mutated run is blind.
//   3. repro — the shrinker minimizes a seeded failure to a small Repro, and
//      every JSON repro committed under tests/repro/ replays as a failure
//      with its recorded violations, forever.

#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "check/explorer.hpp"
#include "check/mutation.hpp"
#include "check/shrink.hpp"
#include "test_seed.hpp"

namespace flux::check {
namespace {

using flux::testing::test_seed;

/// Per-config sweep width; FLUX_DST_SEEDS overrides (e.g. 500 for a soak).
int sweep(int dflt) {
  if (const char* env = std::getenv("FLUX_DST_SEEDS")) {
    const int v = std::atoi(env);
    if (v > 0) return v;
  }
  return dflt;
}

std::string describe(const DstResult& r) {
  std::ostringstream os;
  os << "seed " << r.seed << ": ";
  if (r.workload_error) os << "workload error: " << r.error << "; ";
  if (r.stalled_clients > 0) os << r.stalled_clients << " stalled; ";
  os << r.report.to_string();
  for (const std::string& v : r.job_violations) os << "\n  job oracle: " << v;
  if (!r.fault_plan.is_null()) os << "\nfault plan: " << r.fault_plan.dump();
  return os.str();
}

void expect_all_pass(std::uint64_t base, int n, const DstOptions& opt) {
  const std::vector<DstResult> failures = explore(base, n, opt);
  for (const DstResult& f : failures) ADD_FAILURE() << describe(f);
  EXPECT_TRUE(failures.empty())
      << failures.size() << "/" << n << " schedules failed (replay with "
      << "FLUX_TEST_SEED; first failing seed printed above)";
}

// -- 1. exploration -----------------------------------------------------------

TEST(DstExplore, CleanSchedulesPass) {
  DstOptions opt;
  expect_all_pass(test_seed(), sweep(80), opt);
}

TEST(DstExplore, ShardedSchedulesPass) {
  DstOptions opt;
  opt.size = 5;
  opt.shards = 2;
  expect_all_pass(test_seed() + 0x10000, sweep(80), opt);
}

TEST(DstExplore, FaultedSchedulesPass) {
  DstOptions opt;
  opt.faults = true;
  opt.drops = true;
  opt.delays = true;
  expect_all_pass(test_seed() + 0x20000, sweep(60), opt);
}

TEST(DstExplore, CrashSchedulesPass) {
  DstOptions opt;
  opt.faults = true;
  opt.crashes = true;
  opt.restarts = true;
  opt.delays = true;
  expect_all_pass(test_seed() + 0x30000, sweep(20), opt);
}

TEST(DstExplore, JobLifecycleSchedulesPass) {
  // Submit / cancel / complete through the full pipeline concurrently with
  // the KVS workload; the jobid-monotonicity, terminal-state, disjoint
  // per-rank allocation, and no-orphan oracles must hold on every schedule.
  DstOptions opt;
  opt.jobs = true;
  opt.size = 6;
  expect_all_pass(test_seed() + 0x60000, sweep(20), opt);
}

TEST(DstExplore, JobLifecycleSurvivesBrokerCrashes) {
  // The chaos acceptance run: a broker crash mid-dispatch (victim chosen by
  // the seeded plan, never rank 0) must end every affected job in Failed or
  // re-queued-then-terminal, with its allocation returned — never an
  // orphaned allocation in resvc or a never-terminal job in the KVS.
  DstOptions opt;
  opt.jobs = true;
  opt.size = 6;
  opt.faults = true;
  opt.crashes = true;
  expect_all_pass(test_seed() + 0x70000, sweep(10), opt);
}

TEST(DstExplore, SameSeedIsDeterministic) {
  DstOptions opt;
  opt.faults = true;
  opt.drops = true;
  opt.delays = true;
  const std::uint64_t seed = test_seed() + 0x40000;
  const DstResult a = run_schedule(seed, opt);
  const DstResult b = run_schedule(seed, opt);
  EXPECT_EQ(a.history_len, b.history_len);
  EXPECT_EQ(a.failed(), b.failed());
  EXPECT_EQ(a.report.to_string(), b.report.to_string());
  EXPECT_EQ(a.fault_plan.dump(), b.fault_plan.dump());
}

// -- 2. mutation teeth --------------------------------------------------------

/// Enable `name` and require some schedule in a short sweep to violate
/// exactly the property the mutation targets. Most mutations fire on the
/// first seed; the small sweep keeps the assertion robust to workload timing.
void expect_mutation_caught(const char* name, const char* property,
                            const DstOptions& opt) {
  SCOPED_TRACE(name);
  const MutationGuard guard(name);
  const std::uint64_t base = test_seed() + 0x50000;
  std::ostringstream seen;
  for (int i = 0; i < 8; ++i) {
    const DstResult r = run_schedule(base + static_cast<std::uint64_t>(i), opt);
    if (r.report.violates(property)) return;  // caught — oracle has teeth
    seen << "  " << describe(r) << "\n";
  }
  ADD_FAILURE() << "oracle never flagged '" << property
                << "' under mutation '" << name << "' (8 seeds):\n"
                << seen.str();
}

TEST(DstMutation, RegressedRootIsCaughtAsMonotonicReads) {
  expect_mutation_caught("kvs.regress_root", "monotonic-reads", DstOptions{});
}

TEST(DstMutation, SkippedApplyIsCaughtAsReadYourWrites) {
  expect_mutation_caught("kvs.skip_apply", "read-your-writes", DstOptions{});
}

TEST(DstMutation, EarlyFenceFuseIsCaughtAsFenceAtomicity) {
  DstOptions opt;
  opt.size = 5;
  opt.shards = 2;
  expect_mutation_caught("kvs.fence_fuse_early", "fence-atomicity", opt);
}

TEST(DstMutation, SkippedVersionBumpIsCaughtAsSetrootSequence) {
  expect_mutation_caught("kvs.skip_version_bump", "setroot-sequence",
                         DstOptions{});
}

TEST(DstMutation, WatchRefireIsCaughtAsWatchOrder) {
  expect_mutation_caught("kvs.watch_refire", "watch-order", DstOptions{});
}

// -- 3. shrinker + committed repros ------------------------------------------

std::size_t plan_components(const Json& plan) {
  if (!plan.is_object()) return 0;
  return plan.at("events").size() + plan.at("links").size() +
         plan.at("nth").size();
}

TEST(DstShrink, MinimizesASeededFailure) {
  // Seed a real failure: a faulted sharded run with the early-fuse mutation
  // enabled. The mutation (not the fault plan) causes the violation, so the
  // shrinker should strip the plan down and drop the jitter.
  DstOptions opt;
  opt.size = 5;
  opt.shards = 2;
  opt.faults = true;
  opt.drops = true;
  opt.delays = true;

  const std::uint64_t base = test_seed() + 0x60000;
  Repro failing;
  bool found = false;
  {
    const MutationGuard guard("kvs.fence_fuse_early");
    for (int i = 0; i < 8 && !found; ++i) {
      const std::uint64_t seed = base + static_cast<std::uint64_t>(i);
      const DstResult r = run_schedule(seed, opt);
      if (!r.failed()) continue;
      failing.seed = seed;
      failing.opt = opt;
      failing.fault_plan = r.fault_plan;
      failing.mutations = {"kvs.fence_fuse_early"};
      found = true;
    }
  }
  ASSERT_TRUE(found) << "no failing seed in 8 tries";

  const std::size_t before = plan_components(failing.fault_plan);
  ASSERT_TRUE(replay(failing).failed());

  const Repro small = shrink(failing);
  const DstResult r = replay(small);
  EXPECT_TRUE(r.failed()) << "shrunk repro no longer fails";
  EXPECT_LE(plan_components(small.fault_plan), before);
  // The mutation alone causes this failure, so the shrinker must make real
  // progress on at least one axis.
  const bool progressed = plan_components(small.fault_plan) < before ||
                          small.opt.rounds < opt.rounds ||
                          small.opt.jitter_max.count() == 0;
  EXPECT_TRUE(progressed) << "shrinker made no progress at all";
  EXPECT_FALSE(small.expect.empty());

  // The repro round-trips through its JSON form.
  const Repro reloaded = Repro::from_json(small.to_json());
  EXPECT_TRUE(replay(reloaded).failed());

  // FLUX_UPDATE_REPRO=1 commits this run's shrunk repro under tests/repro/
  // (the FLUX_UPDATE_GOLDEN idiom), where DstRepro replays it forever.
  if (std::getenv("FLUX_UPDATE_REPRO") != nullptr) {
    const std::filesystem::path path =
        std::filesystem::path(FLUX_REPRO_DIR) / "fence_fuse_early.json";
    std::ofstream out(path);
    out << small.to_json().dump_pretty() << "\n";
    ASSERT_TRUE(out.good()) << "failed writing " << path;
  }
}

TEST(DstRepro, CommittedReprosStillReproduce) {
  const std::filesystem::path dir(FLUX_REPRO_DIR);
  ASSERT_TRUE(std::filesystem::is_directory(dir)) << dir;
  int n = 0;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    if (entry.path().extension() != ".json") continue;
    SCOPED_TRACE(entry.path().filename().string());
    ++n;
    std::ifstream in(entry.path());
    std::stringstream buf;
    buf << in.rdbuf();
    auto parsed = Json::parse(buf.str());
    ASSERT_TRUE(parsed.has_value()) << parsed.error().to_string();
    const Repro repro = Repro::from_json(*parsed);
    const DstResult r = replay(repro);
    EXPECT_TRUE(r.failed()) << "committed repro no longer fails";
    for (const std::string& property : repro.expect)
      EXPECT_TRUE(r.report.violates(property))
          << "expected violation '" << property << "' missing: "
          << r.report.to_string();
  }
  EXPECT_GE(n, 1) << "no committed repros under " << dir;
}

}  // namespace
}  // namespace flux::check
